package fault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func writeTemp(t *testing.T, fsys FS, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob.bin")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return path
}

func TestOSPassthrough(t *testing.T) {
	path := writeTemp(t, OS, []byte("hello world"))
	f, err := OS.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatalf("readat: %v", err)
	}
	if string(buf) != "world" {
		t.Fatalf("got %q", buf)
	}
}

func TestNthReadEIO(t *testing.T) {
	inj := NewInjector(OS, 1, Rule{Op: OpRead, Kind: KindEIO, Nth: 2})
	path := writeTemp(t, inj, []byte("0123456789"))
	f, err := inj.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 1 should pass: %v", err)
	}
	_, err = f.ReadAt(buf, 0)
	var pe *os.PathError
	if !errors.As(err, &pe) || pe.Err != syscall.EIO {
		t.Fatalf("read 2 want EIO, got %v", err)
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read 3 should pass: %v", err)
	}
	if got := inj.FiredTotal(); got != 1 {
		t.Fatalf("fired = %d, want 1", got)
	}
	if inj.Fired()["read:eio"] != 1 {
		t.Fatalf("fired map = %v", inj.Fired())
	}
}

func TestEveryWriteENOSPC(t *testing.T) {
	inj := NewInjector(OS, 1, Rule{Op: OpWrite, Kind: KindENOSPC, Every: 3})
	path := filepath.Join(t.TempDir(), "w.bin")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	var failures int
	for i := 0; i < 9; i++ {
		if _, err := f.WriteAt([]byte("x"), int64(i)); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("want ENOSPC, got %v", err)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3", failures)
	}
}

func TestShortRead(t *testing.T) {
	inj := NewInjector(OS, 1, Rule{Op: OpRead, Kind: KindShort, Nth: 1})
	path := writeTemp(t, inj, []byte("0123456789abcdef"))
	f, err := inj.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got n=%d err=%v", n, err)
	}
	if n >= len(buf) {
		t.Fatalf("short read returned %d of %d bytes", n, len(buf))
	}
}

func TestTornWrite(t *testing.T) {
	inj := NewInjector(OS, 1, Rule{Op: OpWrite, Kind: KindTorn, Nth: 1})
	path := filepath.Join(t.TempDir(), "torn.bin")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.WriteAt(payload, 0)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if n == 0 || n >= len(payload) {
		t.Fatalf("torn write wrote %d of %d bytes; want a strict prefix", n, len(payload))
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if len(got) != n {
		t.Fatalf("on-disk %d bytes, write reported %d", len(got), n)
	}
}

func TestProbDeterministic(t *testing.T) {
	run := func() uint64 {
		inj := NewInjector(OS, 42, Rule{Op: OpRead, Kind: KindEIO, Prob: 0.3})
		path := writeTemp(t, inj, make([]byte, 64))
		f, err := inj.Open(path)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer f.Close()
		buf := make([]byte, 4)
		for i := 0; i < 100; i++ {
			f.ReadAt(buf, 0)
		}
		return inj.FiredTotal()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault counts: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("prob=0.3 fired %d/100 times", a)
	}
}

func TestPathFilter(t *testing.T) {
	inj := NewInjector(OS, 1, Rule{Op: OpRead, Kind: KindEIO, Every: 1, Path: "target"})
	dir := t.TempDir()
	for _, name := range []string{"target.bin", "other.bin"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 4)
	f, _ := inj.Open(filepath.Join(dir, "other.bin"))
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("other.bin should pass: %v", err)
	}
	f.Close()
	f, _ = inj.Open(filepath.Join(dir, "target.bin"))
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("target.bin want EIO, got %v", err)
	}
	f.Close()
}

func TestLatency(t *testing.T) {
	inj := NewInjector(OS, 1, Rule{Op: OpSync, Kind: KindLatency, Every: 1, Delay: 20 * time.Millisecond})
	path := filepath.Join(t.TempDir(), "slow.bin")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("sync returned in %v; want injected ~20ms latency", d)
	}
}

func TestRenameAndSyncFaults(t *testing.T) {
	inj := NewInjector(OS, 1,
		Rule{Op: OpRename, Kind: KindEIO, Nth: 1},
		Rule{Op: OpSync, Kind: KindEIO, Nth: 1},
	)
	path := writeTemp(t, inj, []byte("x"))
	if err := inj.Rename(path, path+".new"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename want EIO, got %v", err)
	}
	// The failed rename must not have moved the file.
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("source vanished after failed rename: %v", err)
	}
	f, err := inj.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync want EIO, got %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("read:eio:nth=4, write:enospc:every=9,read:short:prob=0.05,sync:latency:delay=5ms:path=spill,open:torn")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rules) != 5 {
		t.Fatalf("got %d rules", len(rules))
	}
	want := []Rule{
		{Op: OpRead, Kind: KindEIO, Nth: 4},
		{Op: OpWrite, Kind: KindENOSPC, Every: 9},
		{Op: OpRead, Kind: KindShort, Prob: 0.05},
		{Op: OpSync, Kind: KindLatency, Delay: 5 * time.Millisecond, Path: "spill", Nth: 1},
		{Op: OpOpen, Kind: KindTorn, Nth: 1}, // bare rule defaults to nth=1
	}
	for i, w := range want {
		if rules[i] != w {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], w)
		}
	}
	for _, bad := range []string{"read", "read:bogus", "bogus:eio", "read:eio:nth", "read:eio:nth=x", "read:eio:zz=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
	if rules, err := ParseSpec(""); err != nil || len(rules) != 0 {
		t.Fatalf("empty spec: %v %v", rules, err)
	}
}

func TestIsDiskFault(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{pathErr("read", "x", syscall.EIO), true},
		{pathErr("write", "x", syscall.ENOSPC), true},
		{io.ErrUnexpectedEOF, true},
		{errors.New("logic bug"), false},
		{os.ErrNotExist, false},
	}
	for _, c := range cases {
		if got := IsDiskFault(c.err); got != c.want {
			t.Fatalf("IsDiskFault(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
