// Package fault provides an injectable filesystem seam for crash-safety
// testing. Production code paths take a fault.FS (defaulting to fault.OS,
// a thin passthrough to the os package); tests and the chaos CLI flags
// wrap it in an Injector that delivers scripted failures — short reads,
// torn writes, ENOSPC, EIO, added latency — on a deterministic Nth-call,
// every-Kth-call, or seeded probabilistic schedule.
package fault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the subset of *os.File the storage and model layers use.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Closer
	Sync() error
	Name() string
	Stat() (os.FileInfo, error)
}

// FS is the subset of the os package the storage and model layers use.
// Implementations must be safe for concurrent use.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chmod(name string, mode os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
}

// OS is the passthrough FS backed by the real os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)             { return os.Open(name) }
func (osFS) CreateTemp(dir, pat string) (File, error)   { return os.CreateTemp(dir, pat) }
func (osFS) Rename(o, n string) error                   { return os.Rename(o, n) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Chmod(name string, m os.FileMode) error     { return os.Chmod(name, m) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Op identifies the I/O operation a Rule matches.
type Op uint8

const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpRename
	OpClose
	OpRemove
)

var opNames = [...]string{"open", "read", "write", "sync", "rename", "close", "remove"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// Kind is the failure mode a Rule delivers when it fires.
type Kind uint8

const (
	// KindEIO fails the call with EIO.
	KindEIO Kind = iota
	// KindENOSPC fails the call with ENOSPC.
	KindENOSPC
	// KindShort returns fewer bytes than requested from a read
	// (with io.ErrUnexpectedEOF, per the io.ReaderAt contract).
	KindShort
	// KindTorn writes a prefix of the buffer, then fails with EIO —
	// the on-disk state is a torn write.
	KindTorn
	// KindLatency delays the call by Rule.Delay, then lets it through.
	KindLatency
)

var kindNames = [...]string{"eio", "enospc", "short", "torn", "latency"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Rule schedules one failure mode against one operation. Exactly one of
// Nth / Every / Prob should be set; an unset schedule (all zero) never
// fires. Path, when non-empty, restricts the rule to files whose path
// contains it as a substring.
type Rule struct {
	Op    Op
	Kind  Kind
	Nth   int           // fire once, on the Nth matching call (1-based)
	Every int           // fire on every Every-th matching call
	Prob  float64       // fire each matching call with this probability
	Path  string        // substring filter on the file path ("" = all)
	Delay time.Duration // KindLatency only; defaults to 1ms
}

type armedRule struct {
	Rule
	calls int // matching calls seen so far (under Injector.mu)
}

// Injector wraps an FS and applies scripted Rules. The zero schedule is
// deterministic: given the same seed and the same sequence of calls, the
// same faults fire. Safe for concurrent use.
type Injector struct {
	inner FS

	mu    sync.Mutex
	rng   *rand.Rand
	rules []*armedRule
	fired map[string]uint64 // "op:kind" → count
}

// NewInjector wraps inner with the given rules. The seed drives
// probabilistic rules only; Nth/Every rules are schedule-exact.
func NewInjector(inner FS, seed int64, rules ...Rule) *Injector {
	inj := &Injector{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		fired: make(map[string]uint64),
	}
	for _, r := range rules {
		if r.Kind == KindLatency && r.Delay == 0 {
			r.Delay = time.Millisecond
		}
		inj.rules = append(inj.rules, &armedRule{Rule: r})
	}
	return inj
}

// Fired reports how many faults have fired, keyed by "op:kind".
func (in *Injector) Fired() map[string]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// FiredTotal reports the total number of faults that have fired.
func (in *Injector) FiredTotal() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, v := range in.fired {
		n += v
	}
	return n
}

// FiredString renders the fired-fault counts as a stable one-line summary.
func (in *Injector) FiredString() string {
	m := in.Fired()
	if len(m) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// hit decides whether any rule fires for (op, path) and returns it.
func (in *Injector) hit(op Op, path string) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.calls++
		fire := false
		switch {
		case r.Nth > 0:
			fire = r.calls == r.Nth
		case r.Every > 0:
			fire = r.calls%r.Every == 0
		case r.Prob > 0:
			fire = in.rng.Float64() < r.Prob
		}
		if fire {
			in.fired[r.Op.String()+":"+r.Kind.String()]++
			rc := r.Rule
			return &rc
		}
	}
	return nil
}

func pathErr(op, path string, errno syscall.Errno) error {
	return &os.PathError{Op: op, Path: path, Err: errno}
}

// errFor converts a fired rule into the error the call should return.
// KindLatency sleeps and returns nil (the call proceeds).
func errFor(r *Rule, op, path string) error {
	switch r.Kind {
	case KindENOSPC:
		return pathErr(op, path, syscall.ENOSPC)
	case KindLatency:
		time.Sleep(r.Delay)
		return nil
	default:
		return pathErr(op, path, syscall.EIO)
	}
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := in.hit(OpOpen, name); r != nil {
		if err := errFor(r, "open", name); err != nil {
			return nil, err
		}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{File: f, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if r := in.hit(OpOpen, name); r != nil {
		if err := errFor(r, "open", name); err != nil {
			return nil, err
		}
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{File: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := in.hit(OpOpen, dir); r != nil {
		if err := errFor(r, "open", dir); err != nil {
			return nil, err
		}
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{File: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if r := in.hit(OpRename, newpath); r != nil {
		if err := errFor(r, "rename", newpath); err != nil {
			return err
		}
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if r := in.hit(OpRemove, name); r != nil {
		if err := errFor(r, "remove", name); err != nil {
			return err
		}
	}
	return in.inner.Remove(name)
}

func (in *Injector) Chmod(name string, mode os.FileMode) error {
	return in.inner.Chmod(name, mode)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	return in.inner.ReadDir(name)
}

// injFile applies read/write/sync/close rules to one open file.
type injFile struct {
	File
	in *Injector
}

func (f *injFile) readFault(p []byte, read func([]byte) (int, error)) (int, error) {
	r := f.in.hit(OpRead, f.Name())
	if r == nil {
		return read(p)
	}
	switch r.Kind {
	case KindShort:
		if len(p) <= 1 {
			return 0, io.ErrUnexpectedEOF
		}
		n, err := read(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrUnexpectedEOF
	case KindLatency:
		time.Sleep(r.Delay)
		return read(p)
	default:
		if err := errFor(r, "read", f.Name()); err != nil {
			return 0, err
		}
		return read(p)
	}
}

func (f *injFile) Read(p []byte) (int, error) {
	return f.readFault(p, f.File.Read)
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	return f.readFault(p, func(q []byte) (int, error) { return f.File.ReadAt(q, off) })
}

func (f *injFile) writeFault(p []byte, write func([]byte) (int, error)) (int, error) {
	r := f.in.hit(OpWrite, f.Name())
	if r == nil {
		return write(p)
	}
	switch r.Kind {
	case KindTorn:
		n := 0
		if len(p) > 1 {
			n, _ = write(p[:len(p)/2])
		}
		return n, pathErr("write", f.Name(), syscall.EIO)
	case KindLatency:
		time.Sleep(r.Delay)
		return write(p)
	default:
		if err := errFor(r, "write", f.Name()); err != nil {
			return 0, err
		}
		return write(p)
	}
}

func (f *injFile) Write(p []byte) (int, error) {
	return f.writeFault(p, f.File.Write)
}

func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	return f.writeFault(p, func(q []byte) (int, error) { return f.File.WriteAt(q, off) })
}

func (f *injFile) Sync() error {
	if r := f.in.hit(OpSync, f.Name()); r != nil {
		if err := errFor(r, "sync", f.Name()); err != nil {
			return err
		}
	}
	return f.File.Sync()
}

func (f *injFile) Close() error {
	if r := f.in.hit(OpClose, f.Name()); r != nil {
		if err := errFor(r, "close", f.Name()); err != nil {
			f.File.Close() // release the descriptor regardless
			return err
		}
	}
	return f.File.Close()
}

// ParseSpec parses a comma-separated fault schedule of the form
//
//	op:kind[:key=value[:key=value...]]
//
// where op ∈ {open,read,write,sync,rename,close,remove}, kind ∈
// {eio,enospc,short,torn,latency}, and keys are nth=N, every=K,
// prob=P, path=SUBSTR, delay=DUR. Example:
//
//	read:eio:nth=4,write:enospc:every=9,read:short:prob=0.05
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("fault: rule %q: want op:kind[:key=value...]", part)
		}
		var r Rule
		op, err := parseOp(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		r.Op = op
		kind, err := parseKind(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: %w", part, err)
		}
		r.Kind = kind
		scheduled := false
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: bad key=value %q", part, kv)
			}
			switch key {
			case "nth":
				r.Nth, err = strconv.Atoi(val)
				scheduled = true
			case "every":
				r.Every, err = strconv.Atoi(val)
				scheduled = true
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				scheduled = true
			case "path":
				r.Path = val
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown key %q", part, key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: %s: %w", part, key, err)
			}
		}
		if !scheduled {
			r.Nth = 1 // bare op:kind fires on the first matching call
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseOp(s string) (Op, error) {
	for i, n := range opNames {
		if s == n {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("unknown op %q", s)
}

func parseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

// IsDiskFault reports whether err looks like an injected or real disk-level
// failure (EIO/ENOSPC/short read) as opposed to a logic error.
func IsDiskFault(err error) bool {
	if err == nil {
		return false
	}
	var pe *fs.PathError
	if errors.As(err, &pe) {
		return pe.Err == syscall.EIO || pe.Err == syscall.ENOSPC
	}
	return errors.Is(err, io.ErrUnexpectedEOF)
}
