// Package obs is the repository's telemetry core: allocation-free counters,
// gauges, latency histograms, and phase spans behind a Prometheus-text-format
// registry. It exists so the serving, storage, and training layers can answer
// "why is p99 high right now" and "is the segment cache thrashing" from a
// live process instead of an offline bench rerun.
//
// The design constraint that shapes everything here is the serving tier's
// zero-allocation contract: the steady-state /predict path must stay at
// 0 allocs/op with metrics enabled (TestServeAllocations and benchgate's
// -zero-alloc gate are the proof). So recording is a few atomic adds — no
// label-map lookups, no interface boxing, no time formatting — and every
// metric is resolved to a concrete pointer at registration time, never at
// record time. Exposition (/metrics, /stats) is the cold path and may
// allocate freely.
//
// Concurrency: counters are sharded across cache-line-padded cells so writers
// on different cores don't serialize on one line; the hot call sites pass a
// cheap distribution hint (segment index, pooled-scratch id, in-flight rank)
// that is already in hand. Reads sum the shards — monotonic, but a reader
// racing writers may observe a value between two adds, which is exactly the
// Prometheus counter contract.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterShards is the stripe count of a Counter. Eight 64-byte cells cover
// the core counts this system serves on while keeping an idle counter at half
// a kilobyte; the hint distributes writers, so more stripes only pay off past
// ~8 hammering cores.
const (
	counterShards = 8
	counterMask   = counterShards - 1
)

// ccell is one counter stripe, padded to a cache line so neighboring stripes
// (and neighboring counters in a metrics struct) never false-share.
type ccell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value is
// usable but unregistered; create through a Registry to expose it.
type Counter struct {
	shards [counterShards]ccell
}

// Add increments the counter by n on the default stripe. Use AddHint on paths
// hot enough that concurrent writers would serialize on one cache line.
func (c *Counter) Add(n uint64) { c.shards[0].n.Add(n) }

// Inc adds one on the default stripe.
func (c *Counter) Inc() { c.shards[0].n.Add(1) }

// AddHint increments by n on the stripe selected by hint. The hint is any
// cheap value that distributes concurrent callers — a segment index, a pooled
// scratch id, an in-flight rank; correctness never depends on it.
func (c *Counter) AddHint(hint uint, n uint64) { c.shards[hint&counterMask].n.Add(n) }

// IncHint adds one on the stripe selected by hint.
func (c *Counter) IncHint(hint uint) { c.shards[hint&counterMask].n.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() uint64 {
	var v uint64
	for i := range c.shards {
		v += c.shards[i].n.Load()
	}
	return v
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value loads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered exposition unit. kind drives the # TYPE line;
// sample values are appended at scrape time.
type metric struct {
	family string // series name without const labels
	labels string // `k="v",...` const labels, empty when none
	help   string
	kind   string // "counter" | "gauge" | "histogram"

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text format.
// Registration is startup-path (may allocate, panics on duplicates — a
// duplicate name is a programming error, not an operational condition);
// recording through the returned pointers is allocation-free.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// Default is the process-wide registry. Package-level instrumentation
// (storage counters, training spans) registers here once at init; per-server
// metrics live on per-server registries so tests can build servers freely.
var Default = NewRegistry()

// splitName separates `family{k="v"}` into family and label body. A name
// without braces has no const labels.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func (r *Registry) register(m *metric, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// NewCounter registers and returns a counter. The name may carry const
// labels: `hamlet_http_requests_total{endpoint="predict"}`.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	family, labels := splitName(name)
	r.register(&metric{family: family, labels: labels, help: help, kind: "counter", counter: c}, name)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	family, labels := splitName(name)
	r.register(&metric{family: family, labels: labels, help: help, kind: "gauge", gauge: g}, name)
	return g
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time —
// for quantities another subsystem already tracks (resident bytes, history
// depth, uptime).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	family, labels := splitName(name)
	r.register(&metric{family: family, labels: labels, help: help, kind: "gauge", gaugeFn: fn}, name)
}

// NewHistogram registers and returns a fixed-bucket log-scale histogram (see
// Histogram for the bucket layout and error bounds).
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	family, labels := splitName(name)
	r.register(&metric{family: family, labels: labels, help: help, kind: "histogram", hist: h}, name)
	return h
}

// Value is one scraped sample: a fully qualified series name and its value.
// Histograms contribute their _count and _sum series (buckets are exposition
// detail; use Histogram.Quantile for percentiles).
type Value struct {
	Name string
	V    float64
}

// Values snapshots every registered series — the shared source /stats reads,
// so the JSON blob and the Prometheus exposition can never disagree.
func (r *Registry) Values() []Value {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make([]Value, 0, len(metrics))
	for _, m := range metrics {
		name := m.family
		if m.labels != "" {
			name += "{" + m.labels + "}"
		}
		switch {
		case m.counter != nil:
			out = append(out, Value{name, float64(m.counter.Value())})
		case m.gaugeFn != nil:
			out = append(out, Value{name, m.gaugeFn()})
		case m.gauge != nil:
			out = append(out, Value{name, float64(m.gauge.Value())})
		case m.hist != nil:
			count, sum := m.hist.CountSum()
			out = append(out,
				Value{seriesName(m.family+"_count", m.labels, ""), float64(count)},
				Value{seriesName(m.family+"_sum", m.labels, ""), float64(sum)})
		}
	}
	return out
}

// seriesName assembles family plus const labels plus an optional extra label.
func seriesName(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	default:
		return family + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): # HELP and # TYPE once per family, series sorted by name
// within a family, histogram buckets cumulative with a closing +Inf. Cold
// path — called per scrape, never per request.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	// Group by family, preserving registration order of first appearance so
	// related series render together.
	type family struct {
		name, help, kind string
		members          []*metric
	}
	var fams []*family
	byName := map[string]*family{}
	for _, m := range metrics {
		f := byName[m.family]
		if f == nil {
			f = &family{name: m.family, help: m.help, kind: m.kind}
			byName[m.family] = f
			fams = append(fams, f)
		}
		f.members = append(f.members, m)
	}

	var b []byte
	for _, f := range fams {
		if f.help != "" {
			b = append(b, "# HELP "...)
			b = append(b, f.name...)
			b = append(b, ' ')
			b = append(b, f.help...)
			b = append(b, '\n')
		}
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind...)
		b = append(b, '\n')
		// Histogram buckets must stay in ascending-le order, so histogram
		// families render member by member; scalar families sort their
		// series by name for stable scrapes.
		if f.kind == "histogram" {
			for _, m := range f.members {
				for _, ln := range m.render() {
					b = append(b, ln...)
					b = append(b, '\n')
				}
			}
		} else {
			lines := make([]string, 0, len(f.members))
			for _, m := range f.members {
				lines = append(lines, m.render()...)
			}
			sort.Strings(lines)
			for _, ln := range lines {
				b = append(b, ln...)
				b = append(b, '\n')
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// render returns one metric's sample lines (unsorted, no trailing newline).
func (m *metric) render() []string {
	name := m.family
	if m.labels != "" {
		name += "{" + m.labels + "}"
	}
	switch {
	case m.counter != nil:
		return []string{fmt.Sprintf("%s %d", name, m.counter.Value())}
	case m.gaugeFn != nil:
		return []string{fmt.Sprintf("%s %v", name, m.gaugeFn())}
	case m.gauge != nil:
		return []string{fmt.Sprintf("%s %d", name, m.gauge.Value())}
	case m.hist != nil:
		return m.hist.renderProm(m.family, m.labels)
	}
	return nil
}
