package obs

import (
	"sync"
	"time"
)

// Span is a lightweight phase timer for coarse training stages: cumulative
// nanoseconds and call count, both plain counters. A span is recorded with
//
//	t0 := time.Now()
//	defer sp.ObserveSince(t0)
//
// — two clock reads and two atomic adds per phase, no closure, no
// allocation. Spans are deliberately coarse (per Fit, per Gram build, per
// epoch), so their overhead is invisible next to the work they time; per-row
// instrumentation belongs in a profiler (hamletd -pprof), not here.
type Span struct {
	ns    *Counter
	calls *Counter
}

// NewSpan registers a span as a counter pair:
//
//	<family>_ns_total{phase="<phase>"}
//	<family>_calls_total{phase="<phase>"}
func (r *Registry) NewSpan(family, phase, help string) *Span {
	label := `phase="` + phase + `"`
	return &Span{
		ns:    r.NewCounter(family+"_ns_total{"+label+"}", help+" (cumulative nanoseconds)"),
		calls: r.NewCounter(family+"_calls_total{"+label+"}", help+" (times entered)"),
	}
}

// ObserveSince adds the elapsed time since t0 and one call.
func (s *Span) ObserveSince(t0 time.Time) {
	s.ns.Add(uint64(time.Since(t0)))
	s.calls.Inc()
}

// Totals returns the accumulated nanoseconds and call count.
func (s *Span) Totals() (ns uint64, calls uint64) {
	return s.ns.Value(), s.calls.Value()
}

// TrainPhaseFamily is the series family every training-phase span shares, so
// consumers (hamlet -timings, artifact provenance meta) can select all
// phases by prefix.
const TrainPhaseFamily = "hamlet_train_phase"

// TrainSpan registers a training-phase span on the Default registry — the
// one-liner the learner packages use at init:
//
//	var spanGram = obs.TrainSpan("gram_build", "SVM kernel Gram-matrix build")
func TrainSpan(phase, help string) *Span {
	sp := Default.NewSpan(TrainPhaseFamily, phase, help)
	trainMu.Lock()
	trainSpans[phase] = sp
	trainMu.Unlock()
	return sp
}

var (
	trainMu    sync.Mutex
	trainSpans = map[string]*Span{}
)

// PhaseTotals is one training phase's accumulated wall time and entry count.
type PhaseTotals struct {
	Ns    uint64
	Calls uint64
}

// TrainPhases snapshots every registered training-phase span, keyed by phase
// name. hamlet -timings prints the snapshot after training; core.BuildArtifact
// diffs two snapshots around Train to embed per-phase timings in artifact
// provenance meta.
func TrainPhases() map[string]PhaseTotals {
	trainMu.Lock()
	defer trainMu.Unlock()
	out := make(map[string]PhaseTotals, len(trainSpans))
	for phase, sp := range trainSpans {
		ns, calls := sp.Totals()
		out[phase] = PhaseTotals{Ns: ns, Calls: calls}
	}
	return out
}
