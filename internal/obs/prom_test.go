package obs

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a validating Prometheus text-format (0.0.4) reader: it
// checks comment structure, line grammar, and per-family TYPE declarations,
// and returns every sample keyed by its fully qualified series name. The
// /metrics endpoint and hamletload -scrape both depend on this grammar, so
// the conformance test parses rather than substring-matches.
func parseExposition(t *testing.T, b []byte) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(b))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("unknown TYPE %q in %q", fields[3], line)
				}
				if _, dup := types[fields[2]]; dup {
					t.Fatalf("family %q declared twice", fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unbalanced label braces in %q", name)
			}
			for _, kv := range strings.Split(name[i+1:len(name)-1], ",") {
				k, val, ok := strings.Cut(kv, "=")
				if !ok || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' || k == "" {
					t.Fatalf("malformed label %q in %q", kv, name)
				}
			}
		}
		family := name
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		base := family
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if h := strings.TrimSuffix(family, suf); h != family && types[h] == "histogram" {
				base = h
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", name)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("series %q emitted twice", name)
		}
		samples[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestPrometheusConformance renders a mixed registry and validates the
// exposition: grammar, label syntax, histogram bucket monotonicity, and
// count/sum consistency.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounter(`http_requests_total{endpoint="predict"}`, "requests by endpoint")
	reqsB := r.NewCounter(`http_requests_total{endpoint="predict_batch"}`, "requests by endpoint")
	depth := r.NewGauge("queue_depth", "instantaneous queue depth")
	r.NewGaugeFunc("uptime_seconds", "seconds since boot", func() float64 { return 12.25 })
	lat := r.NewHistogram(`request_ns{endpoint="predict"}`, "request latency")
	sp := r.NewSpan("train_phase", "scan", "column scan")

	reqs.Add(5)
	reqsB.Add(2)
	depth.Set(3)
	for _, v := range []int64{1, 3, 17, 17, 900, 1 << 20} {
		lat.Observe(v)
	}
	sp.ns.Add(1000)
	sp.calls.Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.Bytes())

	if samples[`http_requests_total{endpoint="predict"}`] != 5 ||
		samples[`http_requests_total{endpoint="predict_batch"}`] != 2 {
		t.Fatalf("counter samples wrong: %v", samples)
	}
	if samples["queue_depth"] != 3 || samples["uptime_seconds"] != 12.25 {
		t.Fatalf("gauge samples wrong: %v", samples)
	}
	if samples[`train_phase_ns_total{phase="scan"}`] != 1000 ||
		samples[`train_phase_calls_total{phase="scan"}`] != 1 {
		t.Fatalf("span samples wrong: %v", samples)
	}

	// Histogram: cumulative buckets must be monotone in ascending le order as
	// emitted, and the +Inf bucket must equal _count; _sum must match the
	// observed total.
	var lastCum float64 = -1
	var infSeen bool
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `request_ns_bucket{`) {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, _ := strconv.ParseFloat(line[sp+1:], 64)
		if v < lastCum {
			t.Fatalf("bucket counts not cumulative at %q (prev %v)", line, lastCum)
		}
		lastCum = v
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if v != samples[`request_ns_count{endpoint="predict"}`] {
				t.Fatalf("+Inf bucket %v != count %v", v, samples[`request_ns_count{endpoint="predict"}`])
			}
		}
	}
	if !infSeen {
		t.Fatal("histogram missing +Inf bucket")
	}
	if want := float64(1 + 3 + 17 + 17 + 900 + 1<<20); samples[`request_ns_sum{endpoint="predict"}`] != want {
		t.Fatalf("histogram sum = %v, want %v", samples[`request_ns_sum{endpoint="predict"}`], want)
	}
	if samples[`request_ns_count{endpoint="predict"}`] != 6 {
		t.Fatalf("histogram count = %v, want 6", samples[`request_ns_count{endpoint="predict"}`])
	}

	// Every quantile from the exposition's buckets must bound the recorded
	// values the way Histogram.Quantile documents.
	if q := lat.Quantile(0.99); q < float64(1<<20) {
		t.Fatalf("p99 %v below max observed value", q)
	}

	// HELP text renders once per family even with several members.
	if n := bytes.Count(buf.Bytes(), []byte("# HELP http_requests_total")); n != 1 {
		t.Fatalf("HELP for http_requests_total rendered %d times", n)
	}
}
