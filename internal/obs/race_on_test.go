//go:build race

package obs

// raceEnabled mirrors internal/serve's convention: allocation-count tests
// skip under the race detector, whose instrumentation allocates.
const raceEnabled = true
