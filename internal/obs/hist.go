package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log2 octaves subdivided into 4 linear sub-buckets.
//
// Values 0..3 get exact unit buckets. A value v >= 4 lands in octave
// e = floor(log2 v) and sub-bucket (v >> (e-2)) & 3, i.e. bucket index
// 4*e - 4 + sub. Each bucket then spans 2^(e-2) — a quarter of its octave —
// so any quantile read from bucket upper bounds overestimates the true value
// by at most 25% (and small integer values are exact). That bound holds for
// every bucket at every scale, which is the property a fixed-bucket layout
// buys over hand-picked boundaries: nanosecond spans and minute-long spans
// share one 248-bucket array, 2 KiB per histogram, no per-event allocation.
//
// Recording is two atomic adds (bucket, sum); count derives from the bucket
// totals at read time so the exposition's cumulative buckets and _count can
// never disagree with each other.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits // 4 sub-buckets per octave
	// 62 octaves cover every positive int64; with 4 unit buckets in front
	// the last index is 4*62 - 4 + 3 = 247.
	histBuckets = 248
)

// Histogram is a fixed-bucket log-scale latency histogram. Observe with
// nanosecond durations; negative values clamp to zero. The zero value is
// ready to use (create through Registry.NewHistogram to expose it).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	sub := int(v>>(uint(e)-histSubBits)) & (histSub - 1)
	return histSub*e - histSub + sub
}

// bucketUpper returns the inclusive upper bound of bucket i — the `le` value
// of its Prometheus bucket line.
func bucketUpper(i int) float64 {
	if i < histSub {
		return float64(i)
	}
	e := uint(i+histSub) / histSub // octave of bucket i
	sub := uint(i+histSub) % histSub
	// Bucket covers [ (4+sub) << (e-2), (4+sub+1) << (e-2) ); le is the
	// last contained integer. Unsigned: the top octave's bound is 2^63.
	return float64((uint64(histSub+sub+1) << (e - histSubBits)) - 1)
}

// Observe records one value (nanoseconds for latency histograms).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// CountSum returns the total observation count (summed from buckets) and the
// accumulated value sum. Under concurrent writers the two are each atomically
// correct but may reflect slightly different instants — the standard
// lock-free histogram contract.
func (h *Histogram) CountSum() (count uint64, sum int64) {
	for i := range h.buckets {
		count += h.buckets[i].Load()
	}
	return count, h.sum.Load()
}

// Quantile estimates the q-quantile (0 < q <= 1) from bucket counts: the
// upper bound of the first bucket at which the cumulative count reaches
// q * total. The estimate never undershoots the true quantile's bucket and
// overestimates by at most 25% (exact for values < 4). Returns 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileFromBuckets(counts[:], total, q)
}

// quantileFromBuckets is the bucket-walk shared by the live histogram and
// scrape-delta consumers (hamletload -scrape re-runs it over counter deltas).
func quantileFromBuckets(counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	// Ceiling rank: the q-quantile is the smallest value with at least
	// ceil(q*n) observations at or below it (p99 of 6 samples is the 6th).
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(len(counts) - 1)
}

// QuantileFromCumulative computes the q-quantile from Prometheus-style
// cumulative bucket pairs — les ascending, cums[i] = observations with value
// <= les[i] — exactly what a scraper recovers from `_bucket` lines (or from
// the delta of two scrapes). The final pair is treated as +Inf: its count is
// the total and its le is returned when the rank lands in the open tail.
// Same ceiling-rank, upper-bound semantics as Histogram.Quantile, so a
// scrape-side consumer agrees with the live histogram.
func QuantileFromCumulative(les []float64, cums []uint64, q float64) float64 {
	if len(les) == 0 || len(les) != len(cums) {
		return 0
	}
	total := cums[len(cums)-1]
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	for i, c := range cums {
		if c >= rank {
			return les[i]
		}
	}
	return les[len(les)-1]
}

// renderProm emits the histogram's cumulative bucket lines, sum, and count.
// Empty buckets are skipped (cumulative counts keep the semantics); the +Inf
// bucket always closes the series.
func (h *Histogram) renderProm(family, labels string) []string {
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	sum := h.sum.Load()
	out := make([]string, 0, 16)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, fmt.Sprintf("%s %d",
			seriesName(family+"_bucket", labels, fmt.Sprintf("le=%q", formatLe(bucketUpper(i)))), cum))
	}
	out = append(out,
		fmt.Sprintf("%s %d", seriesName(family+"_bucket", labels, `le="+Inf"`), total),
		fmt.Sprintf("%s %d", seriesName(family+"_sum", labels, ""), sum),
		fmt.Sprintf("%s %d", seriesName(family+"_count", labels, ""), total))
	return out
}

// formatLe renders a bucket bound the way Prometheus clients conventionally
// do: integral bounds without exponent notation.
func formatLe(v float64) string {
	return fmt.Sprintf("%d", uint64(v))
}
