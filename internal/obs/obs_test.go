package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent proves counter adds are lost-update-free across
// goroutines and hint stripes — the -race run doubles as the memory-model
// proof for the sharded layout.
func TestCounterConcurrent(t *testing.T) {
	const workers, perWorker = 16, 10000
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0:
					c.Inc()
				case 1:
					c.AddHint(uint(w), 1)
				default:
					c.IncHint(uint(i))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge = %d, want 40", g.Value())
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks the count and sum survive intact.
func TestHistogramConcurrent(t *testing.T) {
	const workers, perWorker = 8, 20000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	count, sum := h.CountSum()
	if count != workers*perWorker {
		t.Fatalf("count = %d, want %d", count, workers*perWorker)
	}
	var want int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			want += int64(w*1000 + i)
		}
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// TestBucketLayout pins the bucket math: indices are monotone in the value,
// every value falls at or under its bucket's upper bound, and upper bounds
// strictly increase — the monotonicity the /metrics bucket lines inherit.
func TestBucketLayout(t *testing.T) {
	prev := -1.0
	for i := 0; i < histBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %v <= bucketUpper(%d) = %v", i, u, i-1, prev)
		}
		prev = u
	}
	last := 0
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 999, 1000, 4095, 4096,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 + 12345, 1<<63 - 1} {
		i := bucketIndex(v)
		if i < last {
			t.Fatalf("bucketIndex(%d) = %d below previous %d", v, i, last)
		}
		last = i
		if u := bucketUpper(i); float64(v) > u {
			t.Fatalf("value %d above its bucket bound %v (bucket %d)", v, u, i)
		}
		if i > 0 {
			if u := bucketUpper(i - 1); float64(v) <= u {
				t.Fatalf("value %d fits the previous bucket (bound %v)", v, u)
			}
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// TestQuantileAccuracy checks the documented error bound: the estimate never
// undershoots the true quantile and overshoots by at most 25% (exactly for
// values below 4). Exercised over a wide log-spread so every octave size is
// hit.
func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	var values []int64
	v := int64(1)
	for len(values) < 4096 {
		values = append(values, v, v+v/3, v+2*v/3)
		v = v * 5 / 4
		if v > 1<<40 {
			v = 1
		}
	}
	for _, x := range values {
		h.Observe(x)
	}
	// values was built sorted per cycle but cycles interleave; sort a copy.
	sorted := append([]int64(nil), values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		rank := int(q * float64(len(sorted)))
		if rank < 1 {
			rank = 1
		}
		exact := float64(sorted[rank-1])
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%v: estimate %v undershoots exact %v", q, got, exact)
		}
		if limit := exact*1.25 + 3; got > limit {
			t.Errorf("q=%v: estimate %v above error bound %v (exact %v)", q, got, limit, exact)
		}
	}
	if h.Quantile(0.5) == 0 {
		t.Fatal("sanity: non-empty histogram must yield a nonzero quantile")
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	sp := r.NewSpan("test_phase", "warm", "warm phase")
	t0 := time.Now().Add(-time.Millisecond)
	sp.ObserveSince(t0)
	sp.ObserveSince(t0)
	ns, calls := sp.Totals()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if ns < 2*uint64(time.Millisecond) {
		t.Fatalf("ns = %d, want >= 2ms", ns)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.NewCounter("dup_total", "")
}

// TestValuesSnapshot proves /stats' data source: every registered series
// appears with its live value under its fully qualified name.
func TestValuesSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter(`reqs_total{endpoint="predict"}`, "")
	g := r.NewGauge("depth", "")
	r.NewGaugeFunc("uptime", "", func() float64 { return 7.5 })
	h := r.NewHistogram("lat_ns", "")
	c.Add(3)
	g.Set(-2)
	h.Observe(10)
	h.Observe(20)
	got := map[string]float64{}
	for _, v := range r.Values() {
		got[v.Name] = v.V
	}
	want := map[string]float64{
		`reqs_total{endpoint="predict"}`: 3,
		"depth":                          -2,
		"uptime":                         7.5,
		"lat_ns_count":                   2,
		"lat_ns_sum":                     30,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Values[%q] = %v, want %v (all: %v)", k, got[k], v, got)
		}
	}
}

// TestRecordingAllocations pins the telemetry primitives at zero allocations
// per record — the property that lets the serving hot path carry metrics
// without breaking its 0 allocs/op contract.
func TestRecordingAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are proven in the non-race run")
	}
	r := NewRegistry()
	c := r.NewCounter("alloc_probe_total", "")
	h := r.NewHistogram("alloc_probe_ns", "")
	sp := r.NewSpan("alloc_probe_phase", "x", "")
	g := r.NewGauge("alloc_probe_gauge", "")
	if avg := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.AddHint(3, 2)
		g.Set(1)
		h.Observe(12345)
		t0 := time.Now()
		sp.ObserveSince(t0)
	}); avg != 0 {
		t.Errorf("recording path: %v allocs/op, want 0", avg)
	}
}

// TestQuantileFromCumulative pins the scrape-side quantile walk against the
// live histogram: feeding it the histogram's own rendered cumulative buckets
// must reproduce Quantile exactly, and hand-built pairs exercise the rank
// edges.
func TestQuantileFromCumulative(t *testing.T) {
	// Hand-built: 10 observations <= 100, 89 more <= 1000, 1 in the tail.
	les := []float64{100, 1000, math.Inf(1)}
	cums := []uint64{10, 99, 100}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.10, 100},          // rank 10 lands exactly on the first bucket
		{0.50, 1000},         // rank 50
		{0.99, 1000},         // rank 99 is still inside the second bucket
		{0.999, math.Inf(1)}, // rank 100: the open tail
	} {
		if got := QuantileFromCumulative(les, cums, tc.q); got != tc.want {
			t.Errorf("q=%v: got %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := QuantileFromCumulative(nil, nil, 0.5); got != 0 {
		t.Errorf("empty input: got %v, want 0", got)
	}
	if got := QuantileFromCumulative([]float64{1}, []uint64{0}, 0.5); got != 0 {
		t.Errorf("zero total: got %v, want 0", got)
	}

	// Live-histogram agreement: scrape-style pairs built from the histogram's
	// own buckets must agree with Quantile at every probed q.
	h := NewRegistry().NewHistogram("t_q_cum", "")
	rng := uint64(1)
	for i := 0; i < 5000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		h.Observe(int64(rng >> 44)) // ~[0, 1M)
	}
	var les2 []float64
	var cums2 []uint64
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			cum += c
			les2 = append(les2, bucketUpper(i))
			cums2 = append(cums2, cum)
		}
	}
	les2 = append(les2, math.Inf(1))
	cums2 = append(cums2, cum)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, want := QuantileFromCumulative(les2, cums2, q), h.Quantile(q); got != want {
			t.Errorf("q=%v: scrape-side %v != live %v", q, got, want)
		}
	}
}
