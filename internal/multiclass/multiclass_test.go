package multiclass

import (
	"testing"

	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
	"repro/internal/tree"
)

// ordinalDataset builds a 3-class problem: class = value of feature 0
// (with noise), feature 1 is noise.
func ordinalDataset(n int, noise float64, seed uint64) *Dataset {
	r := rng.New(seed)
	d := &Dataset{
		Features: []ml.Feature{
			{Name: "sig", Cardinality: 3},
			{Name: "noise", Cardinality: 4},
		},
		K: 3,
	}
	for i := 0; i < n; i++ {
		x0 := r.Intn(3)
		y := x0
		if r.Bernoulli(noise) {
			y = r.Intn(3)
		}
		d.X = append(d.X, relational.Value(x0), relational.Value(r.Intn(4)))
		d.Y = append(d.Y, y)
	}
	return d
}

func TestBinarizeClass(t *testing.T) {
	d := ordinalDataset(50, 0, 1)
	bin, err := d.Binarize(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumExamples(); i++ {
		want := int8(0)
		if d.Y[i] == 2 {
			want = 1
		}
		if bin.Y[i] != want {
			t.Fatalf("binarize wrong at %d", i)
		}
	}
	if _, err := d.Binarize(5); err == nil {
		t.Fatal("out-of-range class must error")
	}
}

func TestBinarizeOrdinalHalves(t *testing.T) {
	// K=3: mid = 1, so classes {1,2} → 1, class 0 → 0 (the paper's
	// lower/upper halves grouping).
	d := ordinalDataset(30, 0, 2)
	bin := d.BinarizeOrdinalHalves()
	for i := range d.Y {
		want := int8(0)
		if d.Y[i] >= 1 {
			want = 1
		}
		if bin.Y[i] != want {
			t.Fatalf("halves binarization wrong at %d", i)
		}
	}
}

func TestOneVsRestWithTrees(t *testing.T) {
	train := ordinalDataset(600, 0.05, 3)
	test := ordinalDataset(300, 0.05, 4)
	ovr := &OneVsRest{
		NewClassifier: func(int) (ml.Classifier, error) {
			return tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 5, CP: 1e-3}), nil
		},
	}
	if err := ovr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := ovr.Accuracy(test); acc < 0.85 {
		t.Fatalf("one-vs-rest tree accuracy %v, want >= 0.85 (Bayes ≈ 0.97)", acc)
	}
}

func TestOneVsRestUsesDecisionScores(t *testing.T) {
	// Logistic regression exposes Decision; multi-class accuracy should
	// beat hard voting on a dataset where calibrated scores matter.
	train := ordinalDataset(900, 0.1, 5)
	test := ordinalDataset(400, 0.1, 6)
	ovr := &OneVsRest{
		NewClassifier: func(c int) (ml.Classifier, error) {
			return linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-4, Seed: uint64(c + 1)}), nil
		},
	}
	if err := ovr.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := ovr.Accuracy(test); acc < 0.8 {
		t.Fatalf("one-vs-rest LR accuracy %v too low", acc)
	}
	// The Scorer interface must actually be hit for LR.
	var m ml.Classifier = linear.NewLogReg(linear.LogRegConfig{})
	if _, ok := m.(Scorer); !ok {
		t.Fatal("LogReg must satisfy Scorer via Decision")
	}
}

func TestOneVsRestValidation(t *testing.T) {
	ovr := &OneVsRest{}
	if err := ovr.Fit(ordinalDataset(10, 0, 7)); err == nil {
		t.Fatal("missing factory must error")
	}
	ovr.NewClassifier = func(int) (ml.Classifier, error) {
		return tree.New(tree.Config{}), nil
	}
	if err := ovr.Fit(&Dataset{K: 3}); err == nil {
		t.Fatal("empty training set must error")
	}
	one := ordinalDataset(10, 0, 8)
	one.K = 1
	if err := ovr.Fit(one); err == nil {
		t.Fatal("K < 2 must error")
	}
}

func TestAvoidingJoinsHoldsForMulticlass(t *testing.T) {
	// Extension check: the NoJoin≈JoinAll phenomenon carries over to a
	// 3-class target determined through an FK-determined latent value.
	r := rng.New(11)
	const nR = 30
	latent := make([]int, nR)
	for i := range latent {
		latent[i] = r.Intn(3)
	}
	gen := func(withXr bool, n int, rr *rng.RNG) *Dataset {
		fs := []ml.Feature{{Name: "FK", Cardinality: nR, IsFK: true}}
		if withXr {
			fs = append(fs, ml.Feature{Name: "Xr", Cardinality: 3})
		}
		d := &Dataset{Features: fs, K: 3}
		for i := 0; i < n; i++ {
			fk := rr.Intn(nR)
			y := latent[fk]
			if rr.Bernoulli(0.05) {
				y = rr.Intn(3)
			}
			d.X = append(d.X, relational.Value(fk))
			if withXr {
				d.X = append(d.X, relational.Value(latent[fk]))
			}
			d.Y = append(d.Y, y)
		}
		return d
	}
	mk := func() *OneVsRest {
		return &OneVsRest{NewClassifier: func(int) (ml.Classifier, error) {
			return tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 5, CP: 1e-3}), nil
		}}
	}
	joinTrain, joinTest := gen(true, 900, rng.New(13)), gen(true, 400, rng.New(17))
	noTrain, noTest := gen(false, 900, rng.New(13)), gen(false, 400, rng.New(17))
	join, no := mk(), mk()
	if err := join.Fit(joinTrain); err != nil {
		t.Fatal(err)
	}
	if err := no.Fit(noTrain); err != nil {
		t.Fatal(err)
	}
	ja, nj := join.Accuracy(joinTest), no.Accuracy(noTest)
	if ja < 0.85 || nj < 0.85 {
		t.Fatalf("accuracies too low: %v %v", ja, nj)
	}
	if diff := ja - nj; diff > 0.03 || diff < -0.03 {
		t.Fatalf("multi-class NoJoin %v must track JoinAll %v", nj, ja)
	}
}
