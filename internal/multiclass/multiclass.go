// Package multiclass extends the binary study to multi-class targets via
// one-vs-rest reduction. The paper's seven datasets mostly carry ordinal
// multi-class targets that it binarizes for ease of comparison (§3.1,
// footnote 2), noting that the ideas "can be easily applied to multi-class
// targets as well" (§2.2); this package is that application: each class
// gets one binary classifier trained on class-vs-rest labels, and
// prediction takes the class whose classifier is most confident (falling
// back to a fixed class order for plain 0/1 votes).
package multiclass

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/relational"
)

// Dataset is a supervised problem with K classes. X layout matches
// ml.Dataset; Y holds class indices in [0, K).
type Dataset struct {
	Features []ml.Feature
	K        int
	X        []relational.Value
	Y        []int
}

// NumExamples returns n.
func (d *Dataset) NumExamples() int { return len(d.Y) }

// Row returns example i's feature codes.
func (d *Dataset) Row(i int) []relational.Value {
	k := len(d.Features)
	return d.X[i*k : (i+1)*k : (i+1)*k]
}

// Binarize produces the one-vs-rest binary dataset for a class: label 1 for
// the class, 0 for the rest.
func (d *Dataset) Binarize(class int) (*ml.Dataset, error) {
	if class < 0 || class >= d.K {
		return nil, fmt.Errorf("multiclass: class %d outside [0,%d)", class, d.K)
	}
	out := &ml.Dataset{
		Features: d.Features,
		X:        d.X,
		Y:        make([]int8, len(d.Y)),
	}
	for i, y := range d.Y {
		if y == class {
			out.Y[i] = 1
		}
	}
	return out, nil
}

// BinarizeOrdinalHalves groups ordinal classes into lower and upper halves —
// exactly the paper's binarization of its ordinal targets ("grouping
// ordinal targets into lower and upper halves").
func (d *Dataset) BinarizeOrdinalHalves() *ml.Dataset {
	out := &ml.Dataset{
		Features: d.Features,
		X:        d.X,
		Y:        make([]int8, len(d.Y)),
	}
	mid := d.K / 2
	for i, y := range d.Y {
		if y >= mid {
			out.Y[i] = 1
		}
	}
	return out
}

// Scorer is the shared real-valued-confidence interface, re-exported from ml
// (the SVM and logistic regression already satisfy it); classifiers without
// it contribute hard ±1 votes.
type Scorer = ml.Scorer

// OneVsRest trains one binary classifier per class.
type OneVsRest struct {
	// NewClassifier constructs a fresh untrained binary classifier for
	// class k (so per-class seeds or parameters are possible).
	NewClassifier func(class int) (ml.Classifier, error)

	models []ml.Classifier
	k      int
}

// Fit trains K binary classifiers on class-vs-rest problems.
func (o *OneVsRest) Fit(train *Dataset) error {
	if o.NewClassifier == nil {
		return fmt.Errorf("multiclass: NewClassifier not set")
	}
	if train.NumExamples() == 0 {
		return fmt.Errorf("multiclass: empty training set")
	}
	if train.K < 2 {
		return fmt.Errorf("multiclass: need at least 2 classes, got %d", train.K)
	}
	o.k = train.K
	o.models = make([]ml.Classifier, train.K)
	for c := 0; c < train.K; c++ {
		bin, err := train.Binarize(c)
		if err != nil {
			return err
		}
		m, err := o.NewClassifier(c)
		if err != nil {
			return fmt.Errorf("multiclass: class %d: %w", c, err)
		}
		if err := m.Fit(bin); err != nil {
			return fmt.Errorf("multiclass: class %d: %w", c, err)
		}
		o.models[c] = m
	}
	return nil
}

// Models returns the per-class fitted binary classifiers in class order
// (nil before Fit). The model codec serializes a one-vs-rest ensemble as its
// sub-models; FromModels is the inverse.
func (o *OneVsRest) Models() []ml.Classifier { return o.models }

// NumClasses returns K (0 before Fit).
func (o *OneVsRest) NumClasses() int { return o.k }

// FromModels reconstructs a fitted one-vs-rest ensemble from per-class
// binary classifiers — the decoding path of model persistence. The resulting
// ensemble can Predict but has no NewClassifier factory; calling Fit on it
// returns an error unless one is installed.
func FromModels(models []ml.Classifier) (*OneVsRest, error) {
	if len(models) < 2 {
		return nil, fmt.Errorf("multiclass: need at least 2 class models, got %d", len(models))
	}
	return &OneVsRest{models: models, k: len(models)}, nil
}

// Predict returns the class with the highest confidence. Scorer-capable
// models vote with their real-valued score; others vote 1 for a positive
// prediction and −1 otherwise. Ties break to the lowest class index.
func (o *OneVsRest) Predict(row []relational.Value) int {
	best, bestScore := 0, -1e300
	for c, m := range o.models {
		var s float64
		if sc, ok := m.(Scorer); ok {
			s = sc.Decision(row)
		} else if m.Predict(row) == 1 {
			s = 1
		} else {
			s = -1
		}
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// Accuracy computes multi-class accuracy on ds.
func (o *OneVsRest) Accuracy(ds *Dataset) float64 {
	if ds.NumExamples() == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < ds.NumExamples(); i++ {
		if o.Predict(ds.Row(i)) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.NumExamples())
}
