package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/relational"
)

// ErrUnknownModel is returned when a request names a model slot the registry
// does not hold.
var ErrUnknownModel = errors.New("serve: unknown model")

// ErrUnknownVersion is returned when a rollback names a version that never
// existed or has aged out of the slot's bounded history.
var ErrUnknownVersion = errors.New("serve: unknown version")

// keepVersions bounds each slot's rollback history (including the live
// version). Old engines past the bound are released to the collector.
const keepVersions = 8

// Snapshot is one immutable (model name, version, engine) binding. Handlers
// resolve a snapshot once per request and score against it for the request's
// whole lifetime, so a concurrent Swap never mixes versions inside one
// response — the same immutable-segment discipline the storage engine uses
// for readers vs. compaction.
type Snapshot struct {
	Name    string
	Version int
	Engine  *Engine
	// Swapped records when this version went live.
	Swapped time.Time
}

// Slot is one named model with a hot-swappable current version. The current
// snapshot is an atomic pointer (lock-free reads on the request path);
// version transitions serialize on mu.
type Slot struct {
	name string
	cur  atomic.Pointer[Snapshot]
	coal *Coalescer

	mu      sync.Mutex
	nextVer int
	history []*Snapshot
}

// Name returns the slot's registry key.
func (s *Slot) Name() string { return s.name }

// Snapshot returns the live version. The result is immutable; callers may
// score against it indefinitely even across swaps.
func (s *Slot) Snapshot() *Snapshot { return s.cur.Load() }

// Coalescer returns the slot's request coalescer.
func (s *Slot) Coalescer() *Coalescer { return s.coal }

// Predict resolves the live snapshot once and scores the request against it
// through the slot's coalescer.
func (s *Slot) Predict(req []relational.Value) (Prediction, error) {
	return s.coal.Predict(s.cur.Load(), req)
}

// install makes snap the live version and trims history to the bound.
// Callers hold s.mu.
func (s *Slot) install(snap *Snapshot) {
	s.history = append(s.history, snap)
	if len(s.history) > keepVersions {
		s.history = s.history[len(s.history)-keepVersions:]
	}
	s.cur.Store(snap)
}

// Versions lists the slot's retained history, oldest first; the last entry
// is the live version.
func (s *Slot) Versions() []*Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Snapshot(nil), s.history...)
}

// Registry holds the server's model slots: versioned engines keyed by name,
// with atomic hot-swap and bounded rollback. Slot lookup is lock-free
// (copy-on-write map behind an atomic pointer); mutations serialize on mu.
type Registry struct {
	mu      sync.Mutex
	slots   atomic.Pointer[map[string]*Slot]
	def     atomic.Pointer[Slot]
	ccfg    CoalescerConfig
	metrics *Metrics
}

// NewRegistry builds an empty registry whose slots will coalesce requests
// under cfg.
func NewRegistry(cfg CoalescerConfig) *Registry {
	r := &Registry{ccfg: cfg, metrics: newMetrics()}
	empty := map[string]*Slot{}
	r.slots.Store(&empty)
	return r
}

// Metrics returns the registry's serving telemetry (shared by its slots'
// coalescers and the HTTP front end).
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Register adds a new slot serving e as version 1. The first slot registered
// becomes the default (the slot unnamed requests resolve to). Duplicate
// names are rejected — replacing a live model is Swap's job, so it is
// versioned and rollbackable.
func (r *Registry) Register(name string, e *Engine) (*Slot, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := *r.slots.Load()
	if _, ok := old[name]; ok {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	coal := NewCoalescer(r.ccfg)
	coal.m = r.metrics
	s := &Slot{name: name, coal: coal, nextVer: 2}
	s.install(&Snapshot{Name: name, Version: 1, Engine: e, Swapped: time.Now()})
	next := make(map[string]*Slot, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = s
	r.slots.Store(&next)
	r.def.CompareAndSwap(nil, s)
	return s, nil
}

// Slot resolves a model name; the empty name resolves to the default slot.
func (r *Registry) Slot(name string) (*Slot, bool) {
	if name == "" {
		s := r.def.Load()
		return s, s != nil
	}
	s, ok := (*r.slots.Load())[name]
	return s, ok
}

// Slots lists all slots sorted by name.
func (r *Registry) Slots() []*Slot {
	m := *r.slots.Load()
	out := make([]*Slot, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Swap builds an engine for m against the slot's star schema and installs it
// as the next version. In-flight requests that already resolved the old
// snapshot finish against it; new requests see the new version atomically.
// A model that does not fit the schema is rejected with the engine's typed
// *model.SchemaMismatchError and the slot is left untouched.
func (r *Registry) Swap(name string, m *model.Model) (*Snapshot, error) {
	s, ok := r.Slot(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := NewEngine(m, s.cur.Load().Engine.star)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Name: s.name, Version: s.nextVer, Engine: e, Swapped: time.Now()}
	s.nextVer++
	s.install(snap)
	r.metrics.swaps.Inc()
	return snap, nil
}

// Rollback reinstalls a retained historical version's engine as a *new*
// version — roll-forward semantics, so the audit trail stays monotonic and a
// rollback is itself rollbackable.
func (r *Registry) Rollback(name string, version int) (*Snapshot, error) {
	s, ok := r.Slot(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var old *Snapshot
	for _, h := range s.history {
		if h.Version == version {
			old = h
			break
		}
	}
	if old == nil {
		return nil, fmt.Errorf("%w: %s@%d (history keeps %d)", ErrUnknownVersion, s.name, version, keepVersions)
	}
	snap := &Snapshot{Name: s.name, Version: s.nextVer, Engine: old.Engine, Swapped: time.Now()}
	s.nextVer++
	s.install(snap)
	r.metrics.rollbacks.Inc()
	return snap, nil
}
