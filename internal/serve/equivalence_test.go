package serve

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/ann"
	"repro/internal/dataset"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
	"repro/internal/svm"
)

// star generates one of the paper's star schemas at a test-friendly scale.
func star(t testing.TB, name string, scale int) *relational.StarSchema {
	t.Helper()
	spec, err := dataset.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, scale, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// joinAllDataset builds the JoinAll training dataset over the zero-copy
// join view of a star schema.
func joinAllDataset(t testing.TB, ss *relational.StarSchema) (*ml.Dataset, relational.Relation) {
	t.Helper()
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	targetCol := jv.Schema().ColumnsOfKind(relational.KindTarget)[0]
	ds, err := ml.ViewDataset(jv, targetCol, ml.JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds, jv
}

// trainLinearFamily fits the three linear-family learners of the
// equivalence criterion on a JoinAll dataset.
func trainLinearFamily(t testing.TB, train *ml.Dataset) map[string]ml.Classifier {
	t.Helper()
	out := map[string]ml.Classifier{}

	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	out["naive-bayes"] = nbc

	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-3, Epochs: 3, Seed: 5})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	out["logreg"] = lr

	s, err := svm.New(svm.Config{Kernel: svm.Linear, C: 1, Seed: 3, SubsampleCap: 150})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(train); err != nil {
		t.Fatal(err)
	}
	out["linear-svm"] = s
	return out
}

// TestFactorizedBitIdenticalToJoined is the tentpole equivalence test: for
// NB, logistic regression, and the linear SVM, on multiple generated star
// schemas (including one with an open-domain FK, exercising auxiliary
// inputs), the factorized score of every fact row is bit-identical to the
// gather path's score over the eagerly assembled joined row, and the
// predicted class matches the classifier's own Predict over the eagerly
// materialized joined dataset. The model additionally round-trips through
// the codec first, so the test pins the full train → save → load → serve
// pipeline.
//
// The score bit-identity holds by construction (both paths fold the same
// weights in the same grouped order). The Predict agreement is
// mathematically exact but fold-order-sensitive in the last ulp — the
// learner sums weights in its own order — so it could only diverge on a
// decision margin within rounding error of zero; with these fixed seeds
// the assertion is deterministic, and a failure after a scoring change
// means grouped and flat folds landed on opposite sides of zero for some
// row (i.e. a real knife-edge, not flakiness).
func TestFactorizedBitIdenticalToJoined(t *testing.T) {
	schemas := map[string]*relational.StarSchema{
		"Flights": star(t, "Flights", 512),
		"Yelp":    star(t, "Yelp", 2048),
		"Expedia": star(t, "Expedia", 8192), // Searches FK is open-domain
	}
	for schemaName, ss := range schemas {
		t.Run(schemaName, func(t *testing.T) {
			train, _ := joinAllDataset(t, ss)
			eagerJoined, err := relational.Join(ss)
			if err != nil {
				t.Fatal(err)
			}
			targetCol := eagerJoined.Schema().ColumnsOfKind(relational.KindTarget)[0]
			eager, err := ml.ViewDataset(eagerJoined, targetCol, ml.JoinAll, nil)
			if err != nil {
				t.Fatal(err)
			}
			for name, cls := range trainLinearFamily(t, train) {
				t.Run(name, func(t *testing.T) {
					m, err := model.New(cls, train.Features, nil)
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := model.Encode(&buf, m); err != nil {
						t.Fatal(err)
					}
					loaded, err := model.Decode(&buf)
					if err != nil {
						t.Fatal(err)
					}
					engine, err := NewEngine(loaded, ss)
					if err != nil {
						t.Fatal(err)
					}
					if !engine.Factorized() {
						t.Fatalf("%s did not produce a factorized engine", name)
					}
					served, _ := loaded.Classifier()

					n := ss.Fact.NumRows()
					req := make([]relational.Value, len(engine.InputFeatures()))
					rowBuf := make([]relational.Value, train.NumFeatures())
					for i := 0; i < n; i++ {
						engine.RequestFromFactRow(req, ss.Fact.Row(i))
						pf, err := engine.PredictFactorized(req)
						if err != nil {
							t.Fatal(err)
						}
						pj, err := engine.PredictJoined(req)
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(pf.Score) != math.Float64bits(pj.Score) {
							t.Fatalf("row %d: factorized score %v != joined score %v", i, pf.Score, pj.Score)
						}
						if pf.Class != pj.Class {
							t.Fatalf("row %d: factorized class %d != joined class %d", i, pf.Class, pj.Class)
						}
						if want := served.Predict(eager.RowInto(rowBuf, i)); pf.Class != want {
							t.Fatalf("row %d: factorized class %d != eager-join Predict %d", i, pf.Class, want)
						}
					}
				})
			}
		})
	}
}

// TestBatchMatchesSingle pins the morsel-parallel batch path to the
// sequential one, bit for bit, on both factorized and fallback engines.
func TestBatchMatchesSingle(t *testing.T) {
	ss := star(t, "Walmart", 2048)
	train, _ := joinAllDataset(t, ss)
	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := model.New(nbc, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	n := min(ss.Fact.NumRows(), 300)
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	batch, err := engine.PredictBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		p, err := engine.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if p != batch[i] {
			t.Fatalf("request %d: batch %+v != single %+v", i, batch[i], p)
		}
	}
}

// TestBatchMatchesSingleANN pins the batched-forward gather path (the MLP
// implements ml.BatchPredictor, so PredictBatch assembles rows and runs one
// GEMM forward) to the per-request Predict path, class for class.
func TestBatchMatchesSingleANN(t *testing.T) {
	ss := star(t, "Movies", 1024)
	train, _ := joinAllDataset(t, ss)
	mlp := ann.New(ann.Config{Hidden1: 8, Hidden2: 4, LearningRate: 1e-2, Epochs: 2, Seed: 5})
	if err := mlp.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := model.New(mlp, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Factorized() {
		t.Fatal("MLP must serve through the gather path")
	}
	n := min(ss.Fact.NumRows(), 200)
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	batch, err := engine.PredictBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		p, err := engine.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Class != p.Class {
			t.Fatalf("request %d: batch class %d != single class %d", i, batch[i].Class, p.Class)
		}
		if batch[i].Scored {
			t.Fatalf("request %d: MLP predictions must not carry scores", i)
		}
	}
}
