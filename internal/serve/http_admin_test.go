package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
)

// saveModel persists m and returns its artifact path.
func saveModel(t *testing.T, m *model.Model) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.bin")
	if err := model.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestHTTPModelsAndSwap exercises the admin surface end to end: listing,
// hot-swapping to a new artifact, rolling back, and every error status.
func TestHTTPModelsAndSwap(t *testing.T) {
	srv, engine, ss := testServer(t)

	var listed struct {
		Models []struct {
			Name       string `json:"name"`
			Version    int    `json:"version"`
			Kind       string `json:"kind"`
			Factorized bool   `json:"factorized"`
			Inputs     []struct {
				Name        string `json:"name"`
				Cardinality int    `json:"cardinality"`
			} `json:"inputs"`
			Versions []int `json:"versions"`
		} `json:"models"`
	}
	resp, err := http.Get(srv.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Models) != 1 {
		t.Fatalf("models = %+v", listed.Models)
	}
	got := listed.Models[0]
	if got.Name != "default" || got.Version != 1 || !got.Factorized ||
		len(got.Inputs) != len(engine.InputFeatures()) || len(got.Versions) != 1 {
		t.Fatalf("model entry %+v", got)
	}
	for i, f := range engine.InputFeatures() {
		if got.Inputs[i].Name != f.Name || got.Inputs[i].Cardinality != f.Cardinality {
			t.Fatalf("input %d: %+v vs %+v", i, got.Inputs[i], f)
		}
	}

	// Swap to a logreg trained on the same schema; predictions must now come
	// from the new model.
	train, _ := joinAllDataset(t, ss)
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-3, Epochs: 3, Seed: 5})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	lrm, err := model.New(lr, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	lrPath := saveModel(t, lrm)
	resp, body := postJSON(t, srv.URL+"/swap", map[string]any{"path": lrPath})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/swap: %d %s", resp.StatusCode, body)
	}
	var swapped struct {
		Model   string `json:"model"`
		Version int    `json:"version"`
		Kind    string `json:"kind"`
	}
	if err := json.Unmarshal(body, &swapped); err != nil {
		t.Fatal(err)
	}
	if swapped.Version != 2 || swapped.Kind != model.KindLogReg {
		t.Fatalf("swap response %+v", swapped)
	}
	lrEngine, err := NewEngine(lrm, ss)
	if err != nil {
		t.Fatal(err)
	}
	req := lrEngine.RequestFromFactRow(make([]relational.Value, len(lrEngine.InputFeatures())), ss.Fact.Row(0))
	want, err := lrEngine.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, srv.URL+"/predict", map[string]any{"input": inputObject(lrEngine, ss.Fact.Row(0))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict after swap: %d %s", resp.StatusCode, body)
	}
	var pr struct {
		Prediction int8     `json:"prediction"`
		Score      *float64 `json:"score"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Prediction != want.Class || pr.Score == nil || *pr.Score != want.Score {
		t.Fatalf("post-swap response %s, want %+v", body, want)
	}

	// Rollback to version 1 installs the old engine as version 3.
	resp, body = postJSON(t, srv.URL+"/swap", map[string]any{"version": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &swapped); err != nil {
		t.Fatal(err)
	}
	if swapped.Version != 3 || swapped.Kind != model.KindNaiveBayes {
		t.Fatalf("rollback response %+v", swapped)
	}

	// Error statuses.
	for _, tc := range []struct {
		name string
		body map[string]any
		code int
	}{
		{"unknown slot", map[string]any{"model": "nope", "path": lrPath}, http.StatusNotFound},
		{"unknown version", map[string]any{"version": 99}, http.StatusNotFound},
		{"mismatched artifact", map[string]any{"path": mismatchedArtifact(t)}, http.StatusConflict},
		{"unreadable path", map[string]any{"path": "/nonexistent/m.bin"}, http.StatusBadRequest},
		{"path and version", map[string]any{"path": lrPath, "version": 1}, http.StatusBadRequest},
		{"neither", map[string]any{}, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, srv.URL+"/swap", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.code, body)
		}
	}
	if resp, _ := http.Get(srv.URL + "/swap"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /swap: %d", resp.StatusCode)
	}
}

// mismatchedArtifact trains an NB model on a different star schema, so
// swapping it into the test server's Walmart slot must 409.
func mismatchedArtifact(t *testing.T) string {
	t.Helper()
	ss := star(t, "Movies", 2048)
	train, _ := joinAllDataset(t, ss)
	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := model.New(nbc, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	return saveModel(t, m)
}

// TestHTTPSwapUnderLoad hammers /predict while /swap flips the slot between
// two artifacts. Every response body must be byte-identical to one model's
// quiescent response — wholly old or wholly new, never a mix. Run with -race
// in CI's race job.
func TestHTTPSwapUnderLoad(t *testing.T) {
	srv, engine, ss := testServer(t)
	train, _ := joinAllDataset(t, ss)
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-3, Epochs: 3, Seed: 5})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	lrm, err := model.New(lr, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	lrPath := saveModel(t, lrm)
	nbm := engine.Model()
	nbPath := saveModel(t, nbm)

	const rows = 16
	wantByRow := make([]map[string]bool, rows)
	for i := 0; i < rows; i++ {
		wantByRow[i] = map[string]bool{}
	}
	record := func() {
		for i := 0; i < rows; i++ {
			resp, body := postJSON(t, srv.URL+"/predict", map[string]any{"input": inputObject(engine, ss.Fact.Row(i))})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("quiescent predict: %d %s", resp.StatusCode, body)
			}
			wantByRow[i][string(body)] = true
		}
	}
	record() // NB answers
	if resp, body := postJSON(t, srv.URL+"/swap", map[string]any{"path": lrPath}); resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: %d %s", resp.StatusCode, body)
	}
	record() // logreg answers

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				row := (w + i) % rows
				resp, body := postJSON(t, srv.URL+"/predict", map[string]any{"input": inputObject(engine, ss.Fact.Row(row))})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
				if !wantByRow[row][string(body)] {
					errs <- fmt.Errorf("worker %d row %d: response %s matches neither model", w, row, body)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		path := nbPath
		if i%2 == 0 {
			path = lrPath
		}
		if resp, body := postJSON(t, srv.URL+"/swap", map[string]any{"path": path}); resp.StatusCode != http.StatusOK {
			t.Fatalf("swap %d: %d %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHTTPRequestLimits pins the structured 413/400 contract of the bounded
// decoder: oversized bodies and over-long batches are refused with JSON
// errors, and the stream decoder rejects malformed framing.
func TestHTTPRequestLimits(t *testing.T) {
	_, engine, ss := testServer(t)
	reg := NewRegistry(DefaultCoalescerConfig())
	if _, err := reg.Register("default", engine); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewRegistryServer(reg, ServerConfig{MaxBodyBytes: 2048, MaxBatchLen: 4}).Handler())
	defer srv.Close()

	obj := inputObject(engine, ss.Fact.Row(0))

	// A batch one over the cap: 413 naming the limit.
	over := make([]map[string]int32, 5)
	for i := range over {
		over[i] = obj
	}
	resp, body := postJSON(t, srv.URL+"/predict_batch", map[string]any{"inputs": over})
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(body), "4 inputs") {
		t.Fatalf("over-long batch: %d %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("413 body not structured: %s", body)
	}

	// At the cap: accepted.
	resp, body = postJSON(t, srv.URL+"/predict_batch", map[string]any{"inputs": over[:4]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("at-cap batch: %d %s", resp.StatusCode, body)
	}

	// Oversized /predict body: 413.
	big := fmt.Sprintf(`{"input":{"pad":"%s"}}`, strings.Repeat("x", 4096))
	resp2, err := http.Post(srv.URL+"/predict", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d", resp2.StatusCode)
	}

	// Oversized /predict_batch body (valid JSON would exceed the byte cap
	// mid-stream): 413.
	var sb strings.Builder
	sb.WriteString(`{"inputs":[`)
	rawObj, _ := json.Marshal(obj)
	for i := 0; sb.Len() < 4096; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.Write(rawObj)
	}
	sb.WriteString(`]}`)
	resp2, err = http.Post(srv.URL+"/predict_batch", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch body: %d", resp2.StatusCode)
	}

	// Malformed framing through the stream decoder: 400 with a JSON error.
	for _, bad := range []string{
		`{"inputs": 7}`,
		`{"inputs": [7]}`,
		`[1,2,3]`,
		`{"inputs": [{"x": "y"}]}`,
		`{}`,
		`{"inputs": []}`,
	} {
		resp2, err := http.Post(srv.URL+"/predict_batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		out.ReadFrom(resp2.Body)
		resp2.Body.Close()
		if resp2.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", bad, resp2.StatusCode, out.Bytes())
		}
		if err := json.Unmarshal(out.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: unstructured error body %s", bad, out.Bytes())
		}
	}

	// Unknown top-level keys are skipped, like encoding/json field matching.
	resp, body = postJSON(t, srv.URL+"/predict_batch",
		map[string]any{"extra": map[string]any{"deep": []int{1, 2}}, "inputs": over[:2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown-key batch: %d %s", resp.StatusCode, body)
	}

	// Unknown model query: 404.
	resp, body = postJSON(t, srv.URL+"/predict?model=nope", map[string]any{"input": obj})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d %s", resp.StatusCode, body)
	}
}
