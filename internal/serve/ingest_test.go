package serve

import (
	"bytes"
	"testing"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
)

// TestIngestedSegmentedServesIdentical walks the full ingestion pipeline end
// to end: star-schema tables dumped to CSV, the joined view re-ingested
// through ReadCSVInto into a spilled segmented table, NB trained over the
// segmented (out-of-core) backing, the artifact round-tripped through the
// codec, and predictions served against the CSV-rebuilt star schema. Every
// stage is pinned against the single-slab reference: the artifact must be
// byte-identical to one trained on the in-memory join view, and every
// served fact-row prediction must match the reference engine bit for bit.
func TestIngestedSegmentedServesIdentical(t *testing.T) {
	ss := star(t, "Walmart", 1024)

	// CSV round-trip every base table and rebuild the star schema from the
	// ingested copies.
	reload := func(src *relational.Table) *relational.Table {
		var buf bytes.Buffer
		if err := relational.WriteCSV(&buf, src); err != nil {
			t.Fatal(err)
		}
		got, err := relational.ReadCSV(&buf, src.Name, src.Schema())
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	dims := make([]*relational.Table, 0, len(ss.Dimensions))
	for _, d := range ss.Dimensions {
		dims = append(dims, reload(d))
	}
	ingested, err := relational.NewStarSchema(reload(ss.Fact), dims...)
	if err != nil {
		t.Fatal(err)
	}

	// Re-ingest the joined view through the segmented bulk path, spilled to
	// disk under a cache budget far below the table footprint.
	train, jv := joinAllDataset(t, ss)
	var joinedCSV bytes.Buffer
	if err := relational.WriteCSV(&joinedCSV, jv); err != nil {
		t.Fatal(err)
	}
	st, err := relational.NewSegmentedTable("joined", jv.Schema(), relational.SegmentOptions{
		SegmentSize: 256,
		SpillDir:    t.TempDir(),
		CacheBytes:  8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := relational.ReadCSVInto(&joinedCSV, st); err != nil {
		t.Fatal(err)
	}
	if !st.Spilled() {
		t.Fatal("segmented ingest did not spill; out-of-core path untested")
	}
	if st.NumRows() != jv.NumRows() {
		t.Fatalf("ingested %d rows, want %d", st.NumRows(), jv.NumRows())
	}

	// Train NB on the spilled segmented backing and on the in-memory slab.
	targetCol := st.Schema().ColumnsOfKind(relational.KindTarget)[0]
	segTrain, err := ml.ViewDataset(st, targetCol, ml.JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	fit := func(ds *ml.Dataset) []byte {
		c := nb.New(nb.Config{})
		if err := c.Fit(ds); err != nil {
			t.Fatal(err)
		}
		m, err := model.New(c, ds.Features, nil)
		if err != nil {
			t.Fatal(err)
		}
		var raw bytes.Buffer
		if err := model.Encode(&raw, m); err != nil {
			t.Fatal(err)
		}
		return raw.Bytes()
	}
	segBytes, slabBytes := fit(segTrain), fit(train)
	if !bytes.Equal(segBytes, slabBytes) {
		t.Fatal("segmented-trained artifact differs from the single-slab artifact")
	}

	// Serve the segmented-trained artifact over the CSV-rebuilt schema and
	// pin every fact-row prediction to the slab-trained reference engine.
	load := func(raw []byte, schema *relational.StarSchema) *Engine {
		m, err := model.Decode(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(m, schema)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	segEngine := load(segBytes, ingested)
	refEngine := load(slabBytes, ss)
	n := ss.Fact.NumRows()
	req := make([]relational.Value, len(segEngine.InputFeatures()))
	refReq := make([]relational.Value, len(refEngine.InputFeatures()))
	for i := 0; i < n; i++ {
		segEngine.RequestFromFactRow(req, ingested.Fact.Row(i))
		refEngine.RequestFromFactRow(refReq, ss.Fact.Row(i))
		got, err := segEngine.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refEngine.Predict(refReq)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("row %d: ingested pipeline served %+v, reference served %+v", i, got, want)
		}
	}
}
