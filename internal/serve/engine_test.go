package serve

import (
	"errors"
	"testing"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/relational"
	"repro/internal/tree"
)

// TestFallbackMatchesEagerPredict covers the gather path: a decision tree
// (no linear form) served through JoinView row assembly must predict
// exactly what the tree predicts on the eagerly joined dataset.
func TestFallbackMatchesEagerPredict(t *testing.T) {
	ss := star(t, "Movies", 4096)
	train, _ := joinAllDataset(t, ss)
	tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 4, CP: 1e-3})
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := model.New(tr, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	if engine.Factorized() {
		t.Fatal("tree engine claims a factorized form")
	}
	if _, err := engine.PredictFactorized(make([]relational.Value, len(engine.InputFeatures()))); err == nil {
		t.Fatal("PredictFactorized on a tree engine did not error")
	}

	eagerJoined, err := relational.Join(ss)
	if err != nil {
		t.Fatal(err)
	}
	targetCol := eagerJoined.Schema().ColumnsOfKind(relational.KindTarget)[0]
	eager, err := ml.ViewDataset(eagerJoined, targetCol, ml.JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := make([]relational.Value, len(engine.InputFeatures()))
	rowBuf := make([]relational.Value, train.NumFeatures())
	for i := 0; i < ss.Fact.NumRows(); i++ {
		engine.RequestFromFactRow(req, ss.Fact.Row(i))
		p, err := engine.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		if want := tr.Predict(eager.RowInto(rowBuf, i)); p.Class != want {
			t.Fatalf("row %d: served class %d != eager Predict %d", i, p.Class, want)
		}
	}
}

// TestEngineRejectsMismatchedSchema pins the typed rejection when a model is
// bound to a star schema it was not trained on.
func TestEngineRejectsMismatchedSchema(t *testing.T) {
	ss := star(t, "Movies", 4096)
	other := star(t, "Flights", 1024)
	train, _ := joinAllDataset(t, ss)
	cls := &ml.ConstantClassifier{Class: 1}
	m, err := model.New(cls, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(m, ss); err != nil {
		t.Fatalf("matching schema rejected: %v", err)
	}
	_, err = NewEngine(m, other)
	var sme *model.SchemaMismatchError
	if !errors.As(err, &sme) {
		t.Fatalf("got %v, want *model.SchemaMismatchError", err)
	}

	// Same columns, resized domain: a model whose recorded cardinality
	// drifted from the live schema must be rejected too.
	resized := append([]ml.Feature(nil), train.Features...)
	resized[len(resized)-1].Cardinality++
	m2, err := model.New(cls, resized, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEngine(m2, ss)
	if !errors.As(err, &sme) {
		t.Fatalf("resized domain: got %v, want *model.SchemaMismatchError", err)
	}
}

// TestValidateRejectsBadRequests covers request-level validation.
func TestValidateRejectsBadRequests(t *testing.T) {
	ss := star(t, "Movies", 4096)
	train, _ := joinAllDataset(t, ss)
	m, err := model.New(&ml.ConstantClassifier{Class: 0}, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Validate(make([]relational.Value, 1)); err == nil {
		t.Fatal("short request accepted")
	}
	req := make([]relational.Value, len(engine.InputFeatures()))
	if err := engine.Validate(req); err != nil {
		t.Fatalf("zero request rejected: %v", err)
	}
	req[0] = relational.Value(engine.InputFeatures()[0].Cardinality)
	if err := engine.Validate(req); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	req[0] = -1
	if err := engine.Validate(req); err == nil {
		t.Fatal("negative value accepted")
	}
}

// TestOpenFKBecomesAuxInput: Expedia's Searches FK is open-domain — excluded
// from the model's features — yet its dimension columns are features, so the
// engine must demand the FK as an auxiliary input.
func TestOpenFKBecomesAuxInput(t *testing.T) {
	ss := star(t, "Expedia", 8192)
	train, _ := joinAllDataset(t, ss)
	for _, f := range train.Features {
		if f.Name == "FK_Searches" {
			t.Fatal("open FK leaked into the feature view")
		}
	}
	m, err := model.New(&ml.ConstantClassifier{Class: 1}, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	aux := 0
	for _, in := range engine.InputFeatures() {
		if in.Aux {
			aux++
			if in.Name != "FK_Searches" || in.Dim != "Searches" {
				t.Fatalf("unexpected aux input %+v", in)
			}
		}
	}
	if aux != 1 {
		t.Fatalf("got %d aux inputs, want 1", aux)
	}
}
