package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
)

// hardenedServer builds a registry server over a Naive Bayes Walmart engine
// with the given hardening config, plus a deck of valid requests.
func hardenedServer(t *testing.T, cfg ServerConfig) (*Server, *Engine, [][]relational.Value, *relational.StarSchema) {
	t.Helper()
	ss := star(t, "Walmart", 1024)
	train, _ := joinAllDataset(t, ss)
	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := model.New(nbc, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(DefaultCoalescerConfig())
	if _, err := reg.Register("default", e); err != nil {
		t.Fatal(err)
	}
	srv := NewRegistryServer(reg, cfg)
	n := min(ss.Fact.NumRows(), 64)
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = e.RequestFromFactRow(make([]relational.Value, len(e.InputFeatures())), ss.Fact.Row(i))
	}
	return srv, e, reqs, ss
}

// errBody decodes the structured error shape fail() writes.
func errBody(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("response body %q is not a structured error", body)
	}
	return e.Error
}

// TestAdmissionGateSheds pins the overload contract: with the gate full, a
// predict request is rejected immediately with 429 + Retry-After and a
// structured body, the shed and err429 counters move, and — once the gate
// drains — the same request succeeds.
func TestAdmissionGateSheds(t *testing.T) {
	srv, e, _, ss := hardenedServer(t, ServerConfig{MaxInflight: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Occupy both gate slots as two in-flight requests would.
	srv.gate <- struct{}{}
	srv.gate <- struct{}{}

	resp, body := postJSON(t, hs.URL+"/predict", map[string]any{"input": inputObject(e, ss.Fact.Row(0))})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full gate: status %d, want 429 (body %q)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if msg := errBody(t, body); !strings.Contains(msg, "capacity") {
		t.Fatalf("shed error %q does not mention capacity", msg)
	}
	m := srv.Registry().Metrics()
	if m.shed.Value() != 1 || m.err429.Value() != 1 {
		t.Fatalf("shed=%d err429=%d, want 1/1", m.shed.Value(), m.err429.Value())
	}

	<-srv.gate
	<-srv.gate
	resp, body = postJSON(t, hs.URL+"/predict", map[string]any{"input": inputObject(e, ss.Fact.Row(0))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained gate: status %d (body %q), want 200", resp.StatusCode, body)
	}
	if m.shed.Value() != 1 {
		t.Fatalf("successful request moved the shed counter to %d", m.shed.Value())
	}
}

// TestAdmissionUnlimited: a negative MaxInflight disables the gate entirely.
func TestAdmissionUnlimited(t *testing.T) {
	srv, _, reqs, _ := hardenedServer(t, ServerConfig{MaxInflight: -1})
	if srv.gate != nil {
		t.Fatal("MaxInflight < 0 still built an admission gate")
	}
	slot, _ := srv.Registry().Slot("")
	if _, err := srv.Predict(slot, reqs[0]); err != nil {
		t.Fatalf("ungated Predict: %v", err)
	}
}

// TestChaosPanicRecovered drives a server that panics on every predict and
// requires every response to be a structured 500 — never a dropped
// connection, never a 429. The absence of 429s is the gate-release proof:
// with MaxInflight=2 and panics on every request, a leaked slot would
// exhaust the gate within two requests and every later one would shed.
func TestChaosPanicRecovered(t *testing.T) {
	srv, e, _, ss := hardenedServer(t, ServerConfig{MaxInflight: 2, ChaosPanicEvery: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const n = 16
	for i := 0; i < n; i++ {
		resp, body := postJSON(t, hs.URL+"/predict", map[string]any{"input": inputObject(e, ss.Fact.Row(i))})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d (body %q), want structured 500", i, resp.StatusCode, body)
		}
		if msg := errBody(t, body); !strings.Contains(msg, "internal error") {
			t.Fatalf("request %d: error %q", i, msg)
		}
	}
	m := srv.Registry().Metrics()
	if got := m.panics.Value(); got != n {
		t.Fatalf("panics_recovered = %d, want %d", got, n)
	}
	if got := m.err500.Value(); got != n {
		t.Fatalf("err500 = %d, want %d", got, n)
	}
	if got := m.shed.Value(); got != 0 {
		t.Fatalf("%d requests shed — a panic leaked its gate slot", got)
	}
}

// TestServerPredictHardened covers the in-process hardened entry: normal
// scoring matches the engine, a full gate returns ErrShed, and a panic on
// the path comes back as an error with the counter moved.
func TestServerPredictHardened(t *testing.T) {
	srv, e, reqs, _ := hardenedServer(t, ServerConfig{MaxInflight: 1})
	slot, _ := srv.Registry().Slot("")

	want, err := e.Predict(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Predict(slot, reqs[0])
	if err != nil || got != want {
		t.Fatalf("Predict = %+v, %v; want %+v", got, err, want)
	}

	srv.gate <- struct{}{}
	if _, err := srv.Predict(slot, reqs[0]); !errors.Is(err, ErrShed) {
		t.Fatalf("full gate: err = %v, want ErrShed", err)
	}
	<-srv.gate

	// A nil slot panics inside the hardened region; the recovery turns it
	// into an error and the gate slot comes back (the follow-up succeeds).
	if _, err := srv.Predict(nil, reqs[0]); err == nil || !strings.Contains(err.Error(), "recovered panic") {
		t.Fatalf("nil slot: err = %v, want recovered panic", err)
	}
	if got := srv.Registry().Metrics().panics.Value(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	if _, err := srv.Predict(slot, reqs[0]); err != nil {
		t.Fatalf("after recovered panic: %v — gate slot leaked?", err)
	}
}

// TestPredictCtxAbandonment: a waiter whose context expires while its batch
// is pending returns ctx.Err() promptly, the batch still flushes on its
// window, and a co-waiter with a background context gets the correct result.
func TestPredictCtxAbandonment(t *testing.T) {
	_, hid, reqs := moviesEngines(t)
	want, err := hid.Predict(reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoalescer(CoalescerConfig{MaxBatch: 64, Window: 300 * time.Millisecond})
	snap := &Snapshot{Name: "m", Version: 1, Engine: hid}
	// Force the next call past the direct-path heuristic so it opens a batch.
	c.mu.Lock()
	c.streak = c.probeAt
	c.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := c.PredictCtx(ctx, snap, reqs[0])
		abandoned <- err
	}()
	// Wait until the abandoner has opened the batch, then join it with a
	// background-context waiter.
	for {
		c.mu.Lock()
		open := c.cur != nil
		c.mu.Unlock()
		if open {
			break
		}
		time.Sleep(time.Millisecond)
	}
	followed := make(chan Prediction, 1)
	go func() {
		p, err := c.Predict(snap, reqs[1])
		if err != nil {
			t.Error(err)
		}
		followed <- p
	}()
	// Give the follower time to enqueue, then expire the abandoner.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-abandoned:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoned waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(200 * time.Millisecond):
		t.Fatal("abandoned waiter did not return before the batch window")
	}
	if d := time.Since(start); d > 150*time.Millisecond {
		t.Fatalf("abandonment took %s — waited out the window instead", d)
	}
	if p := <-followed; p != want {
		t.Fatalf("co-waiter got %+v, want %+v — abandonment corrupted the batch", p, want)
	}
	if st := c.Stats(); st.Batches != 1 || st.Coalesced != 2 {
		t.Fatalf("stats %+v, want 1 batch of 2", st)
	}
}

// TestRegistryErrorPaths pins the typed registry errors: rolling back a
// fresh slot (history holds only the live version), swapping or rolling
// back an unknown slot, and rolling back to a never-existed version.
func TestRegistryErrorPaths(t *testing.T) {
	lin, _, _ := moviesEngines(t)
	reg := NewRegistry(DefaultCoalescerConfig())
	slot, err := reg.Register("m", lin)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh slot: version 1 is live and the only history entry. There is no
	// previous version to return to.
	if _, err := reg.Rollback("m", 0); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("rollback to version 0: err = %v, want ErrUnknownVersion", err)
	}
	if _, err := reg.Rollback("m", 2); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("rollback to future version: err = %v, want ErrUnknownVersion", err)
	}
	if _, err := reg.Swap("ghost", lin.Model()); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("swap unknown slot: err = %v, want ErrUnknownModel", err)
	}
	if _, err := reg.Rollback("ghost", 1); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("rollback unknown slot: err = %v, want ErrUnknownModel", err)
	}
	// Rolling back to the live version is legal (roll-forward semantics: it
	// reinstalls the same engine as a new version).
	snap, err := reg.Rollback("m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || snap.Engine != slot.Versions()[0].Engine {
		t.Fatalf("self-rollback produced %+v", snap)
	}
}

// TestRegistryConcurrentSwapRollback hammers Swap and Rollback on one slot
// from several goroutines while predictors score through it, under -race.
// Every mutation must either succeed or fail with a typed error (a rollback
// target can age out of the bounded history mid-race), and every predict
// must succeed.
func TestRegistryConcurrentSwapRollback(t *testing.T) {
	lin, _, reqs := moviesEngines(t)
	reg := NewRegistry(DefaultCoalescerConfig())
	slot, err := reg.Register("m", lin)
	if err != nil {
		t.Fatal(err)
	}
	m := lin.Model()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				snap, err := reg.Swap("m", m)
				if err != nil {
					errs <- fmt.Errorf("swap: %v", err)
					return
				}
				if _, err := reg.Rollback("m", snap.Version); err != nil && !errors.Is(err, ErrUnknownVersion) {
					errs <- fmt.Errorf("rollback: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := slot.Predict(reqs[(w+i)%len(reqs)]); err != nil {
					errs <- fmt.Errorf("predict: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(slot.Versions()) != keepVersions {
		t.Fatalf("history holds %d versions, want the %d bound", len(slot.Versions()), keepVersions)
	}
}

// TestServerPredictAllocations extends the zero-alloc proof to the hardened
// in-process path: admission gate plus panic recovery must add nothing to
// the factorized linear steady state.
func TestServerPredictAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are proven in the non-race run")
	}
	srv, _, reqs, _ := hardenedServer(t, ServerConfig{MaxInflight: 64})
	slot, _ := srv.Registry().Slot("")
	req := reqs[0]
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := srv.Predict(slot, req); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("hardened Server.Predict: %v allocs/op, want 0", avg)
	}
}
