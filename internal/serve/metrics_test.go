package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns every sample keyed by fully qualified
// series name, failing on anything that does not parse as exposition text.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if _, dup := samples[line[:sp]]; dup {
			t.Fatalf("series %q emitted twice", line[:sp])
		}
		samples[line[:sp]] = v
	}
	return samples
}

// TestMetricsEndpoint drives traffic (successes and a structured error)
// through a live server and checks the scrape against ground truth: request
// counters match requests sent, the latency histogram count matches the
// success count, errors land in their by-code counter, and /stats — which
// reads the same obs counters — agrees with the exposition.
func TestMetricsEndpoint(t *testing.T) {
	srv, engine, ss := testServer(t)
	const good = 7
	for i := 0; i < good; i++ {
		resp, body := postJSON(t, srv.URL+"/predict", map[string]any{"input": inputObject(engine, ss.Fact.Row(i))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// One structured error: an unknown model is a 404.
	if resp, _ := postJSON(t, srv.URL+"/predict?model=nope", map[string]any{"input": map[string]int32{}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}

	samples := scrape(t, srv.URL)
	if got := samples[`hamlet_http_requests_total{endpoint="predict"}`]; got != good+1 {
		t.Fatalf("request counter = %v, want %d", got, good+1)
	}
	if got := samples[`hamlet_http_errors_total{code="404"}`]; got != 1 {
		t.Fatalf("404 counter = %v, want 1", got)
	}
	if got := samples[`hamlet_http_request_ns_count{endpoint="predict"}`]; got != good {
		t.Fatalf("latency histogram count = %v, want %d (errors must not contribute)", got, good)
	}
	for _, phase := range []string{"decode", "score", "encode"} {
		name := `hamlet_http_phase_ns_count{endpoint="predict",phase="` + phase + `"}`
		if got := samples[name]; got != good {
			t.Fatalf("%s = %v, want %d", name, got, good)
		}
	}
	// The storage families registered on obs.Default must appear in the same
	// scrape (values depend on prior tests in the process; presence is the
	// contract).
	for _, name := range []string{"hamlet_segcache_hits_total", "hamlet_segcache_misses_total"} {
		if _, ok := samples[name]; !ok {
			t.Fatalf("scrape missing process-wide series %q", name)
		}
	}

	// /stats reads the same counters: its request/error totals and segcache
	// block must agree with the exposition just scraped (no new traffic in
	// between — scrapes themselves hit /metrics, not /predict).
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Requests float64           `json:"requests"`
		Errors   float64           `json:"errors"`
		History  map[string][]int  `json:"history"`
		SegCache map[string]uint64 `json:"segcache"`
		ZoneMap  map[string]uint64 `json:"zonemap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	wantReqs := samples[`hamlet_http_requests_total{endpoint="predict"}`] +
		samples[`hamlet_http_requests_total{endpoint="predict_batch"}`]
	if stats.Requests != wantReqs {
		t.Fatalf("/stats requests = %v, /metrics sum = %v", stats.Requests, wantReqs)
	}
	if stats.Errors != 1 {
		t.Fatalf("/stats errors = %v, want 1", stats.Errors)
	}
	if vs := stats.History["default"]; len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("/stats history = %v, want default:[1]", stats.History)
	}
	if stats.SegCache["hits"] != uint64(samples["hamlet_segcache_hits_total"]) {
		t.Fatalf("/stats segcache hits %d != scraped %v", stats.SegCache["hits"], samples["hamlet_segcache_hits_total"])
	}
	if _, ok := stats.ZoneMap["segments_skipped"]; !ok {
		t.Fatalf("/stats zonemap block missing: %v", stats.ZoneMap)
	}
}

// TestMetricsSwapCounters pins the registry-transition counters: a swap and a
// rollback each bump their labeled series.
func TestMetricsSwapCounters(t *testing.T) {
	srv, engine, _ := testServer(t)
	path := saveModel(t, engine.Model())
	if resp, body := postJSON(t, srv.URL+"/swap", map[string]any{"path": path}); resp.StatusCode != http.StatusOK {
		t.Fatalf("swap: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, srv.URL+"/swap", map[string]any{"version": 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback: status %d: %s", resp.StatusCode, body)
	}
	samples := scrape(t, srv.URL)
	if got := samples[`hamlet_registry_transitions_total{kind="swap"}`]; got != 1 {
		t.Fatalf("swap counter = %v, want 1", got)
	}
	if got := samples[`hamlet_registry_transitions_total{kind="rollback"}`]; got != 1 {
		t.Fatalf("rollback counter = %v, want 1", got)
	}
}
