package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/relational"
)

// Server is the HTTP front end over a model Registry:
//
//	POST /predict        {"input": {"Home0": 1, "FK_Users": 3, ...}}
//	POST /predict_batch  {"inputs": [{...}, {...}, ...]}
//	GET  /models
//	POST /swap           {"model": "default", "path": "artifact.json"}
//	                     {"model": "default", "version": 2}
//	GET  /healthz
//	GET  /stats
//
// Inputs are JSON objects mapping input feature names (see
// Engine.InputFeatures) to integer category codes. Responses carry the
// predicted class, and the decision score where the model exposes one. Query
// parameters: "model" selects a registry slot (default: the first
// registered), "mode" ("factorized" or "joined") forces a scoring path for
// A/B checks.
//
// Every request resolves its slot's Snapshot exactly once and scores
// entirely against it, so a concurrent /swap never mixes model versions
// inside one response. Single predicts flow through the slot's coalescer;
// steady-state handling reuses pooled scratch (request vectors, decode maps,
// response buffers) so the serving tier itself allocates almost nothing on
// top of the score.
type Server struct {
	reg      *Registry
	maxBody  int64
	maxBatch int
	start    time.Time

	// gate is the bounded in-flight admission semaphore for the predict
	// endpoints: acquire is a non-blocking channel send, so a full server
	// sheds with 429 + Retry-After instead of queueing without bound. Nil
	// means unlimited.
	gate chan struct{}
	// chaosEvery > 0 panics every Nth admitted predict request — the CI
	// chaos job's way of proving the recovery middleware turns handler
	// panics into structured 500s under load.
	chaosEvery int64
	chaosTick  atomic.Int64

	examples atomic.Int64
	batchMax atomic.Int64
	mux      *http.ServeMux
	root     http.Handler
	scratch  sync.Pool
	m        *Metrics
}

// ServerConfig bounds the HTTP surface.
type ServerConfig struct {
	// MaxBodyBytes caps any request body; larger bodies get 413.
	MaxBodyBytes int64
	// MaxBatchLen caps /predict_batch input count; longer batches get 413
	// as soon as the limit is crossed mid-stream.
	MaxBatchLen int
	// MaxInflight bounds concurrently admitted /predict + /predict_batch
	// requests; excess load sheds with 429 + Retry-After. 0 means the
	// default (1024); negative disables admission control.
	MaxInflight int
	// ChaosPanicEvery, when positive, panics every Nth admitted predict
	// request. Test/CI only — it proves panic recovery under load.
	ChaosPanicEvery int
}

// DefaultMaxInflight bounds admitted predict requests when MaxInflight is 0.
const DefaultMaxInflight = 1024

// DefaultServerConfig allows bodies to 8 MiB, batches to 4096 inputs, and
// 1024 in-flight predict requests.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{MaxBodyBytes: 8 << 20, MaxBatchLen: 4096, MaxInflight: DefaultMaxInflight}
}

// hscratch is one request's pooled working set.
type hscratch struct {
	body  []byte
	obj   map[string]int32
	req   []relational.Value
	out   []byte
	reqs  [][]relational.Value
	flat  []relational.Value
	preds []Prediction
}

// NewServer wraps a single engine in a fresh registry (slot "default") with
// default limits — the one-artifact deployment cmd/hamletd boots into.
func NewServer(e *Engine) *Server {
	reg := NewRegistry(DefaultCoalescerConfig())
	if _, err := reg.Register("default", e); err != nil {
		panic(err) // fresh registry; unreachable
	}
	return NewRegistryServer(reg, DefaultServerConfig())
}

// NewRegistryServer builds the HTTP front end over an existing registry.
func NewRegistryServer(reg *Registry, cfg ServerConfig) *Server {
	def := DefaultServerConfig()
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	if cfg.MaxBatchLen <= 0 {
		cfg.MaxBatchLen = def.MaxBatchLen
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	s := &Server{
		reg:        reg,
		maxBody:    cfg.MaxBodyBytes,
		maxBatch:   cfg.MaxBatchLen,
		chaosEvery: int64(cfg.ChaosPanicEvery),
		start:      time.Now(),
		m:          reg.Metrics(),
	}
	if cfg.MaxInflight > 0 {
		s.gate = make(chan struct{}, cfg.MaxInflight)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/predict", s.admit(s.handlePredict))
	s.mux.HandleFunc("/predict_batch", s.admit(s.handlePredictBatch))
	s.mux.HandleFunc("/models", s.handleModels)
	s.mux.HandleFunc("/swap", s.handleSwap)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.root = s.withRecovery(s.mux)
	return s
}

// admit wraps a predict handler in the bounded in-flight admission gate.
// Acquire is a non-blocking send into a buffered channel: when the server
// is already running MaxInflight predict requests, the excess request is
// shed immediately with 429 + Retry-After instead of joining an unbounded
// queue — under overload, fast rejection keeps the admitted requests' tail
// latency sane and gives clients an honest backpressure signal to retry on.
// The chaos hook panics inside the gated region, so recovery provably
// releases the slot (the load smoke would deadlock within seconds if not).
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.gate != nil {
			select {
			case s.gate <- struct{}{}:
				defer func() { <-s.gate }()
			default:
				s.m.shed.Inc()
				w.Header().Set("Retry-After", "1")
				s.fail(w, nil, http.StatusTooManyRequests,
					"server at capacity (%d requests in flight)", cap(s.gate))
				return
			}
		}
		if s.chaosEvery > 0 && s.chaosTick.Add(1)%s.chaosEvery == 0 {
			panic(fmt.Sprintf("chaos: injected handler panic (request %d)", s.chaosTick.Load()))
		}
		h(w, r)
	}
}

// withRecovery is the outermost middleware: a panicking handler becomes a
// structured 500 instead of a killed connection, and the panic is counted.
// http.ErrAbortHandler keeps its net/http meaning (abort silently).
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.m.panics.Inc()
			// Best effort: if the handler already wrote a header this is a
			// no-op body append; panics virtually always fire before that.
			s.fail(w, nil, http.StatusInternalServerError, "internal error: %v", rec)
		}()
		next.ServeHTTP(w, r)
	})
}

// Handler returns the root handler (mountable under httptest or net/http):
// the mux wrapped in panic recovery, with admission control on the predict
// endpoints.
func (s *Server) Handler() http.Handler { return s.root }

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// ErrShed reports a request rejected by the admission gate on the
// in-process Predict path (the HTTP path renders it as 429 + Retry-After).
var ErrShed = errors.New("serve: server at capacity")

// Predict scores one request through the hardened in-process path: the same
// admission gate and panic-to-error recovery the HTTP predict handlers run
// behind, plus the slot's coalescer, without HTTP parsing. It is the entry
// the hardened zero-alloc benchmark drives — the steady-state path must add
// no allocations over the bare coalescer.
func (s *Server) Predict(slot *Slot, req []relational.Value) (p Prediction, err error) {
	if s.gate != nil {
		select {
		case s.gate <- struct{}{}:
		default:
			s.m.shed.Inc()
			return Prediction{}, ErrShed
		}
	}
	defer func() {
		if s.gate != nil {
			<-s.gate
		}
		if rec := recover(); rec != nil {
			s.m.panics.Inc()
			err = fmt.Errorf("serve: recovered panic: %v", rec)
		}
	}()
	snap := slot.Snapshot()
	if snap.Engine.Factorized() {
		return snap.Engine.PredictFactorized(req)
	}
	return slot.Coalescer().Predict(snap, req)
}

// Engine returns the default slot's live engine.
func (s *Server) Engine() *Engine {
	slot, ok := s.reg.Slot("")
	if !ok {
		return nil
	}
	return slot.Snapshot().Engine
}

func (s *Server) getScratch() *hscratch {
	if sc, ok := s.scratch.Get().(*hscratch); ok {
		return sc
	}
	return &hscratch{obj: make(map[string]int32, 16)}
}

func (s *Server) putScratch(sc *hscratch) {
	for i := range sc.reqs {
		sc.reqs[i] = nil
	}
	sc.reqs = sc.reqs[:0]
	s.scratch.Put(sc)
}

func (s *Server) fail(w http.ResponseWriter, sc *hscratch, code int, format string, args ...any) {
	s.m.errCounter(code).Inc()
	var buf []byte
	if sc != nil {
		buf = sc.out[:0]
	}
	buf = append(buf, `{"error":`...)
	buf = appendJSONString(buf, fmt.Sprintf(format, args...))
	buf = append(buf, "}\n"...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf)
	if sc != nil {
		sc.out = buf
	}
}

// readBody drains the request body into the pooled buffer, bounded by the
// server's body cap. A body over the cap reports 413 via *MaxBytesError.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *hscratch) ([]byte, error) {
	lr := http.MaxBytesReader(w, r.Body, s.maxBody)
	defer lr.Close()
	buf := sc.body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.body = buf
			return buf, nil
		}
		if err != nil {
			sc.body = buf
			return nil, err
		}
	}
}

// failRead maps body-read errors: over-cap bodies are 413, the rest 400.
func (s *Server) failRead(w http.ResponseWriter, sc *hscratch, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.fail(w, sc, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return
	}
	s.fail(w, sc, http.StatusBadRequest, "reading body: %v", err)
}

// resolve picks the request's slot and snapshot, and the forced scoring mode
// if any. Everything downstream uses the snapshot, never the slot's current.
func (s *Server) resolve(r *http.Request) (*Slot, *Snapshot, bool, error) {
	q := r.URL.Query()
	slot, ok := s.reg.Slot(q.Get("model"))
	if !ok {
		return nil, nil, false, fmt.Errorf("%w: %q", ErrUnknownModel, q.Get("model"))
	}
	snap := slot.Snapshot()
	e := snap.Engine
	switch m := q.Get("mode"); m {
	case "":
		return slot, snap, e.Factorized(), nil
	case "factorized":
		if !e.Factorized() {
			return nil, nil, false, fmt.Errorf("model kind %q has no factorized form", e.Model().Kind)
		}
		return slot, snap, true, nil
	case "joined":
		return slot, snap, false, nil
	default:
		return nil, nil, false, fmt.Errorf("unknown mode %q (want factorized or joined)", m)
	}
}

// parseRequestInto converts a name→code object into the engine's positional
// request layout, requiring exactly the engine's inputs (unknown names are
// rejected rather than ignored — a misspelled feature must not silently
// score as zero). Domain validation is left to the engine's entry points,
// which all validate before scoring.
func parseRequestInto(e *Engine, dst []relational.Value, obj map[string]int32) ([]relational.Value, error) {
	n := len(e.InputFeatures())
	if cap(dst) < n {
		dst = make([]relational.Value, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	seen := 0
	for name, v := range obj {
		i, ok := e.InputIndex(name)
		if !ok {
			return dst, fmt.Errorf("unknown input feature %q", name)
		}
		dst[i] = v
		seen++
	}
	if seen != n {
		for _, f := range e.InputFeatures() {
			if _, ok := obj[f.Name]; !ok {
				return dst, fmt.Errorf("missing input feature %q", f.Name)
			}
		}
	}
	return dst, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	// Phase timing happens here, at µs handler granularity — four clock
	// reads and a few atomic adds per request, never inside the ~16ns
	// factorized score. Error returns skip the latency histograms; they are
	// counted by code in fail().
	t0 := time.Now()
	s.m.reqPredict.Inc()
	sc := s.getScratch()
	defer s.putScratch(sc)
	if r.Method != http.MethodPost {
		s.fail(w, sc, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := s.readBody(w, r, sc)
	if err != nil {
		s.failRead(w, sc, err)
		return
	}
	clear(sc.obj)
	wrap := struct {
		Input map[string]int32 `json:"input"`
	}{Input: sc.obj}
	if err := json.Unmarshal(body, &wrap); err != nil {
		s.fail(w, sc, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	slot, snap, factorized, err := s.resolve(r)
	if err != nil {
		s.failResolve(w, sc, err)
		return
	}
	sc.req, err = parseRequestInto(snap.Engine, sc.req, wrap.Input)
	if err != nil {
		s.fail(w, sc, http.StatusBadRequest, "%v", err)
		return
	}
	tDec := time.Now()
	var p Prediction
	switch {
	case factorized:
		p, err = snap.Engine.PredictFactorized(sc.req)
	case snap.Engine.Factorized() || r.URL.Query().Get("mode") == "joined":
		// Forced joined mode really exercises the gather path.
		p, err = snap.Engine.PredictJoined(sc.req)
	default:
		// Default path for non-factorized engines: through the coalescer,
		// which micro-batches concurrent callers when the engine benefits.
		// The request context rides along: a waiter whose client gave up
		// abandons its batch slot instead of blocking a dead connection.
		p, err = slot.Coalescer().PredictCtx(r.Context(), snap, sc.req)
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone or out of time; 503 documents the abort in
			// the error counters (the body rarely reaches anyone).
			s.fail(w, sc, http.StatusServiceUnavailable, "request abandoned: %v", err)
			return
		}
		s.fail(w, sc, http.StatusBadRequest, "%v", err)
		return
	}
	tScore := time.Now()
	s.examples.Add(1)
	sc.out = appendPredictResponse(sc.out[:0], p, factorized)
	w.Header().Set("Content-Type", "application/json")
	w.Write(sc.out)
	end := time.Now()
	s.m.predictDecode.Observe(int64(tDec.Sub(t0)))
	s.m.predictScore.Observe(int64(tScore.Sub(tDec)))
	s.m.predictEncode.Observe(int64(end.Sub(tScore)))
	s.m.predictTotal.Observe(int64(end.Sub(t0)))
}

// failResolve maps slot/mode resolution errors: unknown slots are 404, bad
// modes 400.
func (s *Server) failResolve(w http.ResponseWriter, sc *hscratch, err error) {
	if errors.Is(err, ErrUnknownModel) {
		s.fail(w, sc, http.StatusNotFound, "%v", err)
		return
	}
	s.fail(w, sc, http.StatusBadRequest, "%v", err)
}

// decodeBatch stream-decodes {"inputs": [...]} from dec, converting each
// object through the engine's layout as it arrives — the batch is bounded by
// maxBatch and rejected the moment it crosses the cap, not after buffering
// an arbitrarily long array. Returns (reqs, http status, error).
func (s *Server) decodeBatch(dec *json.Decoder, e *Engine, sc *hscratch) ([][]relational.Value, int, error) {
	expect := func(want json.Delim) error {
		t, err := dec.Token()
		if err != nil {
			return fmt.Errorf("bad JSON: %v", err)
		}
		if d, ok := t.(json.Delim); !ok || d != want {
			return fmt.Errorf("bad JSON: expected %q, got %v", want.String(), t)
		}
		return nil
	}
	if err := expect('{'); err != nil {
		return nil, http.StatusBadRequest, err
	}
	reqs := sc.reqs[:0]
	n := len(e.InputFeatures())
	seenInputs := false
	for dec.More() {
		t, err := dec.Token()
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err)
		}
		key, ok := t.(string)
		if !ok {
			return nil, http.StatusBadRequest, fmt.Errorf("bad JSON: non-string key %v", t)
		}
		if key != "inputs" {
			// Skip unknown top-level fields wholesale, like encoding/json's
			// object decoding does.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err)
			}
			continue
		}
		seenInputs = true
		if err := expect('['); err != nil {
			return nil, http.StatusBadRequest, err
		}
		for dec.More() {
			if len(reqs) >= s.maxBatch {
				return nil, http.StatusRequestEntityTooLarge,
					fmt.Errorf("batch exceeds %d inputs", s.maxBatch)
			}
			clear(sc.obj)
			obj := sc.obj
			if err := dec.Decode(&obj); err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("input %d: bad JSON: %v", len(reqs), err)
			}
			// Requests are carved out of one flat backing array, appended
			// per batch and reused across batches.
			if len(sc.flat) < (len(reqs)+1)*n {
				sc.flat = append(sc.flat, make([]relational.Value, n)...)
			}
			req := sc.flat[len(reqs)*n : (len(reqs)+1)*n]
			req, err := parseRequestInto(e, req, obj)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("input %d: %v", len(reqs), err)
			}
			reqs = append(reqs, req)
		}
		if err := expect(']'); err != nil {
			return nil, http.StatusBadRequest, err
		}
	}
	if err := expect('}'); err != nil {
		return nil, http.StatusBadRequest, err
	}
	sc.reqs = reqs
	if !seenInputs || len(reqs) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("empty batch")
	}
	return reqs, 0, nil
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.m.reqBatch.Inc()
	sc := s.getScratch()
	defer s.putScratch(sc)
	if r.Method != http.MethodPost {
		s.fail(w, sc, http.StatusMethodNotAllowed, "POST required")
		return
	}
	_, snap, factorized, err := s.resolve(r)
	if err != nil {
		s.failResolve(w, sc, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	defer body.Close()
	dec := json.NewDecoder(body)
	reqs, code, err := s.decodeBatch(dec, snap.Engine, sc)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.fail(w, sc, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return
		}
		s.fail(w, sc, code, "%v", err)
		return
	}
	tDec := time.Now()
	var preds []Prediction
	if factorized == snap.Engine.Factorized() {
		preds, err = snap.Engine.PredictBatch(reqs)
	} else {
		// Forced joined mode on a linear engine: score sequentially through
		// the gather path so the A/B comparison really exercises it.
		preds = make([]Prediction, len(reqs))
		for i, req := range reqs {
			preds[i], err = snap.Engine.PredictJoined(req)
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		s.fail(w, sc, http.StatusBadRequest, "%v", err)
		return
	}
	tScore := time.Now()
	s.examples.Add(int64(len(preds)))
	for n := int64(len(preds)); ; {
		cur := s.batchMax.Load()
		if n <= cur || s.batchMax.CompareAndSwap(cur, n) {
			break
		}
	}
	s.m.batchMax.Set(s.batchMax.Load())
	sc.out = appendBatchResponse(sc.out[:0], preds, factorized)
	w.Header().Set("Content-Type", "application/json")
	w.Write(sc.out)
	end := time.Now()
	s.m.batchDecode.Observe(int64(tDec.Sub(t0)))
	s.m.batchScore.Observe(int64(tScore.Sub(tDec)))
	s.m.batchEncode.Observe(int64(end.Sub(tScore)))
	s.m.batchTotal.Observe(int64(end.Sub(t0)))
}

// predictResponse documents /predict's wire shape; the hot path encodes it
// field-for-field via appendPredictResponse rather than reflection.
type predictResponse struct {
	Prediction int8     `json:"prediction"`
	Score      *float64 `json:"score,omitempty"`
	Mode       string   `json:"mode"`
}

// batchResponse documents /predict_batch's wire shape; encoded by
// appendBatchResponse.
type batchResponse struct {
	Predictions []int8    `json:"predictions"`
	Scores      []float64 `json:"scores,omitempty"`
	N           int       `json:"n"`
	Mode        string    `json:"mode"`
}

// modelInfo is one slot's /models entry.
type modelInfo struct {
	Name       string      `json:"name"`
	Version    int         `json:"version"`
	Kind       string      `json:"kind"`
	Factorized bool        `json:"factorized"`
	Batched    bool        `json:"batched"`
	Inputs     []inputInfo `json:"inputs"`
	Versions   []int       `json:"versions"`
	Swapped    time.Time   `json:"swapped"`
}

type inputInfo struct {
	Name        string `json:"name"`
	Cardinality int    `json:"cardinality"`
	IsFK        bool   `json:"is_fk,omitempty"`
	Dim         string `json:"dim,omitempty"`
	Aux         bool   `json:"aux,omitempty"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, nil, http.StatusMethodNotAllowed, "GET required")
		return
	}
	slots := s.reg.Slots()
	infos := make([]modelInfo, 0, len(slots))
	for _, slot := range slots {
		snap := slot.Snapshot()
		e := snap.Engine
		mi := modelInfo{
			Name:       slot.Name(),
			Version:    snap.Version,
			Kind:       e.Model().Kind,
			Factorized: e.Factorized(),
			Batched:    e.BatchServeable(),
			Swapped:    snap.Swapped,
		}
		for _, f := range e.InputFeatures() {
			mi.Inputs = append(mi.Inputs, inputInfo{
				Name: f.Name, Cardinality: f.Cardinality,
				IsFK: f.IsFK, Dim: f.Dim, Aux: f.Aux,
			})
		}
		for _, h := range slot.Versions() {
			mi.Versions = append(mi.Versions, h.Version)
		}
		infos = append(infos, mi)
	}
	writeJSON(w, map[string]any{"models": infos})
}

// handleSwap hot-swaps a slot to a new artifact ({"model", "path"}) or rolls
// it back to a retained version ({"model", "version"}). The model name may
// be empty for the default slot. Swap and rollback are admin operations —
// cold path, plain encoding/json.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, nil, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		Model   string `json:"model"`
		Path    string `json:"path"`
		Version *int   `json:"version"`
	}
	lr := http.MaxBytesReader(w, r.Body, s.maxBody)
	defer lr.Close()
	if err := json.NewDecoder(lr).Decode(&body); err != nil {
		s.fail(w, nil, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	var (
		snap *Snapshot
		err  error
	)
	switch {
	case body.Path != "" && body.Version != nil:
		s.fail(w, nil, http.StatusBadRequest, "path and version are mutually exclusive")
		return
	case body.Path != "":
		var m *model.Model
		m, err = model.Load(body.Path)
		if err != nil {
			s.fail(w, nil, http.StatusBadRequest, "loading artifact: %v", err)
			return
		}
		snap, err = s.reg.Swap(body.Model, m)
	case body.Version != nil:
		snap, err = s.reg.Rollback(body.Model, *body.Version)
	default:
		s.fail(w, nil, http.StatusBadRequest, "need path (swap) or version (rollback)")
		return
	}
	if err != nil {
		var sme *model.SchemaMismatchError
		switch {
		case errors.Is(err, ErrUnknownModel) || errors.Is(err, ErrUnknownVersion):
			s.fail(w, nil, http.StatusNotFound, "%v", err)
		case errors.As(err, &sme):
			s.fail(w, nil, http.StatusConflict, "%v", err)
		default:
			s.fail(w, nil, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, map[string]any{
		"model":      snap.Name,
		"version":    snap.Version,
		"kind":       snap.Engine.Model().Kind,
		"factorized": snap.Engine.Factorized(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"status\":\"ok\"}\n")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e := s.Engine()
	slot, _ := s.reg.Slot("")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	coal := map[string]CoalescerStats{}
	history := map[string][]int{}
	for _, sl := range s.reg.Slots() {
		coal[sl.Name()] = sl.Coalescer().Stats()
		var versions []int
		for _, h := range sl.Versions() {
			versions = append(versions, h.Version)
		}
		history[sl.Name()] = versions
	}
	// The segment-cache and zone-map blocks read the same obs counters the
	// Prometheus exposition renders, so /stats and /metrics cannot disagree.
	writeJSON(w, map[string]any{
		"model":       e.Model().Kind,
		"version":     slot.Snapshot().Version,
		"fingerprint": e.Model().Fingerprint().String(),
		"factorized":  e.Factorized(),
		"dimensions":  e.NumDimensions(),
		"inputs":      len(e.InputFeatures()),
		"requests":    s.m.requestsTotal(),
		"examples":    s.examples.Load(),
		"errors":      s.m.errorsTotal(),
		"batch_max":   s.batchMax.Load(),
		"uptime_ms":   time.Since(s.start).Milliseconds(),
		"mallocs":     ms.Mallocs,
		"coalescer":   coal,
		"meta":        e.Model().Meta,
		"history":     history,
		"swaps":       s.m.swaps.Value(),
		"rollbacks":   s.m.rollbacks.Value(),
		"robustness": map[string]uint64{
			"requests_shed":       s.m.shed.Value(),
			"panics_recovered":    s.m.panics.Value(),
			"corruption_detected": relational.StorageCorruptionDetected.Value(),
		},
		"segcache": map[string]uint64{
			"hits":          relational.SegCacheHits.Value(),
			"misses":        relational.SegCacheMisses.Value(),
			"evictions":     relational.SegCacheEvictions.Value(),
			"faulted_bytes": relational.SegCacheFaultedBytes.Value(),
		},
		"zonemap": map[string]uint64{
			"segments_skipped": relational.ZoneSegmentsSkipped.Value(),
			"segments_scanned": relational.ZoneSegmentsScanned.Value(),
		},
	})
}

// handleMetrics renders the Prometheus text exposition: the registry's
// serving metrics (per-endpoint latency, coalescer, registry transitions)
// followed by the process-wide obs.Default (segment cache, zone maps,
// training-phase spans). One scrape covers all three layers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, nil, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.m.Obs.WritePrometheus(w); err != nil {
		return
	}
	obs.Default.WritePrometheus(w)
}
