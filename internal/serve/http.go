package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/relational"
)

// Server wraps an Engine with the HTTP API:
//
//	POST /predict        {"input": {"Home0": 1, "FK_Users": 3, ...}}
//	POST /predict_batch  {"inputs": [{...}, {...}, ...]}
//	GET  /healthz
//	GET  /stats
//
// Inputs are JSON objects mapping input feature names (see
// Engine.InputFeatures) to integer category codes. Responses carry the
// predicted class, and the decision score where the model exposes one. A
// "mode" query parameter ("factorized" or "joined") selects the scoring
// path for A/B checks; the default is the engine's fastest correct path.
type Server struct {
	engine *Engine
	start  time.Time

	requests atomic.Int64
	examples atomic.Int64
	errors   atomic.Int64
	batchMax atomic.Int64
	inputPos map[string]int
	mux      *http.ServeMux
}

// NewServer builds the HTTP front end for an engine.
func NewServer(e *Engine) *Server {
	s := &Server{
		engine:   e,
		start:    time.Now(),
		inputPos: make(map[string]int, len(e.InputFeatures())),
	}
	for i, f := range e.InputFeatures() {
		s.inputPos[f.Name] = i
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/predict_batch", s.handlePredictBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Handler returns the root handler (mountable under httptest or net/http).
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the wrapped engine.
func (s *Server) Engine() *Engine { return s.engine }

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// parseRequest converts a name→code object into the engine's positional
// request layout, requiring exactly the engine's inputs (unknown names are
// rejected rather than ignored — a misspelled feature must not silently
// score as zero). Domain validation is left to the engine's Predict*
// entry points, which all validate before scoring — checking here too
// would scan every request twice.
func (s *Server) parseRequest(obj map[string]int32) ([]relational.Value, error) {
	req := make([]relational.Value, len(s.inputPos))
	seen := 0
	for name, v := range obj {
		i, ok := s.inputPos[name]
		if !ok {
			return nil, fmt.Errorf("unknown input feature %q", name)
		}
		req[i] = v
		seen++
	}
	if seen != len(req) {
		for _, f := range s.engine.InputFeatures() {
			if _, ok := obj[f.Name]; !ok {
				return nil, fmt.Errorf("missing input feature %q", f.Name)
			}
		}
	}
	return req, nil
}

// mode resolves the scoring-path override from the query string.
func (s *Server) mode(r *http.Request) (factorized bool, err error) {
	switch m := r.URL.Query().Get("mode"); m {
	case "":
		return s.engine.Factorized(), nil
	case "factorized":
		if !s.engine.Factorized() {
			return false, fmt.Errorf("model kind %q has no factorized form", s.engine.Model().Kind)
		}
		return true, nil
	case "joined":
		return false, nil
	default:
		return false, fmt.Errorf("unknown mode %q (want factorized or joined)", m)
	}
}

type predictResponse struct {
	Prediction int8     `json:"prediction"`
	Score      *float64 `json:"score,omitempty"`
	Mode       string   `json:"mode"`
}

func response(p Prediction, factorized bool) predictResponse {
	resp := predictResponse{Prediction: p.Class, Mode: "joined"}
	if factorized {
		resp.Mode = "factorized"
	}
	if p.Scored {
		score := p.Score
		resp.Score = &score
	}
	return resp
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		Input map[string]int32 `json:"input"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	req, err := s.parseRequest(body.Input)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	factorized, err := s.mode(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	var p Prediction
	if factorized {
		p, err = s.engine.PredictFactorized(req)
	} else {
		p, err = s.engine.PredictJoined(req)
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.examples.Add(1)
	writeJSON(w, response(p, factorized))
}

type batchResponse struct {
	Predictions []int8    `json:"predictions"`
	Scores      []float64 `json:"scores,omitempty"`
	N           int       `json:"n"`
	Mode        string    `json:"mode"`
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body struct {
		Inputs []map[string]int32 `json:"inputs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.fail(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(body.Inputs) == 0 {
		s.fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	reqs := make([][]relational.Value, len(body.Inputs))
	for i, obj := range body.Inputs {
		req, err := s.parseRequest(obj)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "input %d: %v", i, err)
			return
		}
		reqs[i] = req
	}
	factorized, err := s.mode(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	var preds []Prediction
	if factorized == s.engine.Factorized() {
		preds, err = s.engine.PredictBatch(reqs)
	} else {
		// Forced joined mode on a linear engine: score sequentially through
		// the gather path so the A/B comparison really exercises it.
		preds = make([]Prediction, len(reqs))
		for i, req := range reqs {
			preds[i], err = s.engine.PredictJoined(req)
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.examples.Add(int64(len(preds)))
	for n := int64(len(preds)); ; {
		cur := s.batchMax.Load()
		if n <= cur || s.batchMax.CompareAndSwap(cur, n) {
			break
		}
	}
	resp := batchResponse{Predictions: make([]int8, len(preds)), N: len(preds)}
	resp.Mode = "joined"
	if factorized {
		resp.Mode = "factorized"
	}
	scored := true
	for i, p := range preds {
		resp.Predictions[i] = p.Class
		scored = scored && p.Scored
	}
	if scored {
		resp.Scores = make([]float64, len(preds))
		for i, p := range preds {
			resp.Scores[i] = p.Score
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e := s.engine
	writeJSON(w, map[string]any{
		"model":       e.Model().Kind,
		"fingerprint": e.Model().Fingerprint().String(),
		"factorized":  e.Factorized(),
		"dimensions":  e.NumDimensions(),
		"inputs":      len(e.InputFeatures()),
		"requests":    s.requests.Load(),
		"examples":    s.examples.Load(),
		"errors":      s.errors.Load(),
		"batch_max":   s.batchMax.Load(),
		"uptime_ms":   time.Since(s.start).Milliseconds(),
		"meta":        e.Model().Meta,
	})
}
