package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/linear"
	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
)

// moviesEngines trains one linear (NB) and one hidden-factorized (MLP)
// engine on the same Movies star schema and returns them with a deck of
// valid requests drawn from the fact table.
func moviesEngines(t testing.TB) (*Engine, *Engine, [][]relational.Value) {
	t.Helper()
	ss := star(t, "Movies", 2048)
	train, _ := joinAllDataset(t, ss)

	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	nbm, err := model.New(nbc, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := NewEngine(nbm, ss)
	if err != nil {
		t.Fatal(err)
	}

	mlp := ann.New(ann.Config{Hidden1: 32, Hidden2: 16, LearningRate: 1e-2, Epochs: 2, Seed: 7})
	if err := mlp.Fit(train); err != nil {
		t.Fatal(err)
	}
	annm, err := model.New(mlp, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	hid, err := NewEngine(annm, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !hid.HiddenFactorized() || !hid.BatchServeable() {
		t.Fatalf("MLP engine not hidden-factorized (hidden=%v batch=%v)",
			hid.HiddenFactorized(), hid.BatchServeable())
	}

	n := min(ss.Fact.NumRows(), 512)
	reqs := make([][]relational.Value, n)
	for i := range reqs {
		reqs[i] = lin.RequestFromFactRow(make([]relational.Value, len(lin.InputFeatures())), ss.Fact.Row(i))
	}
	return lin, hid, reqs
}

// TestHiddenFactorizedMatchesPredict pins the factorized-first-layer batch
// path to the per-request gather path: for every request, PredictBatch's
// class (precomputed per-dimension hidden partials + dense tail) must equal
// PredictJoined's (full gather + the model's own Predict).
func TestHiddenFactorizedMatchesPredict(t *testing.T) {
	_, hid, reqs := moviesEngines(t)
	got, err := hid.PredictBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for i, req := range reqs {
		want, err := hid.PredictJoined(req)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Class != want.Class {
			t.Fatalf("request %d: batch class %d, per-request class %d", i, got[i].Class, want.Class)
		}
		ones += int(want.Class)
	}
	if ones == 0 || ones == len(reqs) {
		t.Fatalf("degenerate predictions (%d/%d positive) — test has no discriminating power", ones, len(reqs))
	}
}

// TestCoalescerDeterminism drives many concurrent predicts through the
// coalescer and requires every response — class, score, scoredness, and the
// encoded response bytes — to be identical to the sequential Predict of the
// same request. Runs both engine families: the linear engine exercises the
// direct fallthrough, the MLP the batched flush.
func TestCoalescerDeterminism(t *testing.T) {
	lin, hid, reqs := moviesEngines(t)
	for name, e := range map[string]*Engine{"linear": lin, "hidden": hid} {
		t.Run(name, func(t *testing.T) {
			want := make([]Prediction, len(reqs))
			wantBytes := make([][]byte, len(reqs))
			for i, req := range reqs {
				p, err := e.Predict(req)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = p
				wantBytes[i] = appendPredictResponse(nil, p, e.Factorized())
			}
			c := NewCoalescer(DefaultCoalescerConfig())
			snap := &Snapshot{Name: name, Version: 1, Engine: e}
			const workers = 32
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < 4; r++ {
						for i := w; i < len(reqs); i += workers {
							got, err := c.Predict(snap, reqs[i])
							if err != nil {
								errs <- fmt.Errorf("request %d: %v", i, err)
								return
							}
							if got != want[i] {
								errs <- fmt.Errorf("request %d: coalesced %+v, sequential %+v", i, got, want[i])
								return
							}
							if gb := appendPredictResponse(nil, got, e.Factorized()); string(gb) != string(wantBytes[i]) {
								errs <- fmt.Errorf("request %d: response bytes %q != %q", i, gb, wantBytes[i])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			st := c.Stats()
			if st.Batches+st.Direct == 0 {
				t.Fatal("coalescer served nothing")
			}
			t.Logf("%s: %d batches, %d coalesced, %d direct", name, st.Batches, st.Coalesced, st.Direct)
		})
	}
}

// TestCoalescerLowLoadFallthrough: a lone request must take the direct path
// (no window wait), and a linear engine must never be batched at all.
func TestCoalescerLowLoadFallthrough(t *testing.T) {
	lin, hid, reqs := moviesEngines(t)
	for name, e := range map[string]*Engine{"linear": lin, "hidden": hid} {
		c := NewCoalescer(CoalescerConfig{MaxBatch: 64, Window: time.Hour})
		snap := &Snapshot{Engine: e}
		start := time.Now()
		if _, err := c.Predict(snap, reqs[0]); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("%s: lone request waited %s — fell into the window", name, d)
		}
		st := c.Stats()
		if st.Direct != 1 || st.Batches != 0 {
			t.Fatalf("%s: lone request stats %+v, want direct=1 batches=0", name, st)
		}
	}
}

// TestCoalescerDisabledWindow: Window <= 0 must disable batching entirely.
func TestCoalescerDisabledWindow(t *testing.T) {
	_, hid, reqs := moviesEngines(t)
	c := NewCoalescer(CoalescerConfig{MaxBatch: 64, Window: 0})
	snap := &Snapshot{Engine: hid}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 64; i += 8 {
				if _, err := c.Predict(snap, reqs[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Batches != 0 || st.Direct != 64 {
		t.Fatalf("disabled coalescer stats %+v", st)
	}
}

// TestCoalescerInvalidRequestIsolation: malformed requests must fail with
// the engine's validation error without poisoning concurrent valid traffic.
func TestCoalescerInvalidRequestIsolation(t *testing.T) {
	_, hid, reqs := moviesEngines(t)
	c := NewCoalescer(DefaultCoalescerConfig())
	snap := &Snapshot{Engine: hid}
	bad := make([]relational.Value, len(reqs[0]))
	bad[0] = -1
	var wg sync.WaitGroup
	var badErrs, goodErrs atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if (w+i)%3 == 0 {
					if _, err := c.Predict(snap, bad); err != nil {
						badErrs.Add(1)
					}
					continue
				}
				if _, err := c.Predict(snap, reqs[(w*32+i)%len(reqs)]); err != nil {
					goodErrs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if goodErrs.Load() != 0 {
		t.Fatalf("%d valid requests failed alongside invalid ones", goodErrs.Load())
	}
	if badErrs.Load() == 0 {
		t.Fatal("invalid requests did not error")
	}
}

// TestRegistryHotSwapRace is the snapshot-consistency test: workers hammer a
// slot through the full serving path (snapshot resolve + coalescer) while
// the main goroutine swaps between two models and rolls back, under -race.
// Every response must exactly equal one model's sequential answer for that
// request — a response that matches neither would mean a request was scored
// by a mix of versions.
func TestRegistryHotSwapRace(t *testing.T) {
	ss := star(t, "Movies", 2048)
	train, _ := joinAllDataset(t, ss)
	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-3, Epochs: 3, Seed: 5})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	ma, err := model.New(nbc, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := model.New(lr, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := NewEngine(ma, ss)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEngine(mb, ss)
	if err != nil {
		t.Fatal(err)
	}

	n := min(ss.Fact.NumRows(), 256)
	reqs := make([][]relational.Value, n)
	wantA := make([]Prediction, n)
	wantB := make([]Prediction, n)
	for i := range reqs {
		reqs[i] = ea.RequestFromFactRow(make([]relational.Value, len(ea.InputFeatures())), ss.Fact.Row(i))
		if wantA[i], err = ea.Predict(reqs[i]); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = eb.Predict(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Both linear, but trained differently: scores must differ somewhere or
	// a version mix would be undetectable.
	distinct := false
	for i := range wantA {
		if wantA[i] != wantB[i] {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("the two models answer identically — race test has no power")
	}

	reg := NewRegistry(DefaultCoalescerConfig())
	slot, err := reg.Register("m", ea)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				j := rng.Intn(n)
				got, err := slot.Predict(reqs[j])
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if got != wantA[j] && got != wantB[j] {
					errs <- fmt.Errorf("worker %d req %d: response %+v matches neither version (%+v / %+v)",
						w, j, got, wantA[j], wantB[j])
					return
				}
			}
		}(w)
	}
	for i := 0; i < 40; i++ {
		m := mb
		if i%2 == 1 {
			m = ma
		}
		if _, err := reg.Swap("m", m); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := reg.Rollback("m", slot.Snapshot().Version-1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := slot.Snapshot().Version; v != 42 {
		t.Fatalf("final version %d, want 42 (1 + 40 swaps + 1 rollback)", v)
	}
}

// TestRegistrySemantics covers registration, lookup, history bounding, and
// the typed error paths.
func TestRegistrySemantics(t *testing.T) {
	lin, _, _ := moviesEngines(t)
	reg := NewRegistry(DefaultCoalescerConfig())
	if _, err := reg.Register("", lin); err == nil {
		t.Fatal("empty name accepted")
	}
	slot, err := reg.Register("a", lin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("a", lin); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if def, ok := reg.Slot(""); !ok || def != slot {
		t.Fatal("first registration is not the default slot")
	}
	if _, ok := reg.Slot("nope"); ok {
		t.Fatal("unknown slot resolved")
	}
	if _, err := reg.Swap("nope", lin.Model()); err == nil {
		t.Fatal("swap on unknown slot accepted")
	}
	if _, err := reg.Rollback("a", 99); err == nil {
		t.Fatal("rollback to unknown version accepted")
	}
	// Drive versions past the history bound; early versions age out.
	for i := 0; i < keepVersions+3; i++ {
		if _, err := reg.Swap("a", lin.Model()); err != nil {
			t.Fatal(err)
		}
	}
	hist := slot.Versions()
	if len(hist) != keepVersions {
		t.Fatalf("history holds %d versions, want %d", len(hist), keepVersions)
	}
	if _, err := reg.Rollback("a", 1); err == nil {
		t.Fatal("rollback to aged-out version accepted")
	}
	if _, err := reg.Rollback("a", hist[0].Version); err != nil {
		t.Fatalf("rollback to retained version: %v", err)
	}
	if b, err := reg.Register("b", lin); err != nil {
		t.Fatal(err)
	} else if got := reg.Slots(); len(got) != 2 || got[0] != slot || got[1] != b {
		t.Fatalf("Slots() = %v", got)
	}
}

// TestPredictBatchErrors pins the batch error contract: the first invalid
// request fails the whole batch with its index, and nothing is returned.
func TestPredictBatchErrors(t *testing.T) {
	lin, hid, reqs := moviesEngines(t)
	for name, e := range map[string]*Engine{"linear": lin, "hidden": hid} {
		t.Run(name, func(t *testing.T) {
			bad := append([]relational.Value(nil), reqs[0]...)
			bad[0] = -1
			out, err := e.PredictBatch([][]relational.Value{reqs[0], bad, reqs[1]})
			if err == nil || out != nil {
				t.Fatalf("invalid request accepted: out=%v err=%v", out, err)
			}
			if want := "request 1"; !contains(err.Error(), want) {
				t.Fatalf("error %q does not name the failing index", err)
			}
			short := reqs[0][:len(reqs[0])-1]
			if _, err := e.PredictBatch([][]relational.Value{short}); err == nil {
				t.Fatal("short request accepted")
			}
			var bs batchScratch
			dst := make([]Prediction, 3)
			if err := e.predictBatchInto(dst, [][]relational.Value{reqs[0], bad, reqs[1]}, &bs); err == nil {
				t.Fatal("predictBatchInto accepted invalid request")
			}
			if out, err := e.PredictBatch(nil); err != nil || len(out) != 0 {
				t.Fatalf("empty batch: out=%v err=%v", out, err)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestServeAllocations is the zero-alloc proof: the factorized linear path
// allocates nothing per request — neither directly nor through the slot's
// coalescer — and the pooled gather/batched paths amortize to well under one
// allocation per request in steady state (a GC clearing the pool may force
// an occasional refill, hence the <1 bound rather than ==0).
func TestServeAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are proven in the non-race run")
	}
	lin, hid, reqs := moviesEngines(t)
	req := reqs[0]

	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := lin.PredictFactorized(req); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("PredictFactorized: %v allocs/op, want 0", avg)
	}

	reg := NewRegistry(DefaultCoalescerConfig())
	slot, err := reg.Register("lin", lin)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := slot.Predict(req); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("slot.Predict (factorized linear): %v allocs/op, want 0", avg)
	}

	// The gather path's scratch is pooled; the linear engine isolates that
	// (the MLP's per-row Predict allocates inside the model itself, which is
	// exactly why the batched hidden path below exists).
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := lin.PredictJoined(req); err != nil {
			t.Fatal(err)
		}
	}); avg >= 1 {
		t.Errorf("PredictJoined (pooled scratch): %v allocs/op, want <1", avg)
	}

	var bs batchScratch
	dst := make([]Prediction, len(reqs))
	if avg := testing.AllocsPerRun(100, func() {
		if err := hid.predictBatchInto(dst, reqs, &bs); err != nil {
			t.Fatal(err)
		}
	}); avg/float64(len(reqs)) >= 1 {
		t.Errorf("predictBatchInto (hidden): %v allocs per batch of %d", avg, len(reqs))
	}

	// The instrumented hot path: exactly the telemetry sequence handlePredict
	// adds around a request (endpoint counter, three phase observations plus
	// the total) must record without allocating — the property that lets
	// /metrics coexist with the zero-alloc serving contract.
	m := reg.Metrics()
	if avg := testing.AllocsPerRun(1000, func() {
		t0 := time.Now()
		m.reqPredict.Inc()
		if _, err := slot.Predict(req); err != nil {
			t.Fatal(err)
		}
		m.predictDecode.Observe(int64(time.Since(t0)))
		m.predictScore.Observe(int64(time.Since(t0)))
		m.predictEncode.Observe(int64(time.Since(t0)))
		m.predictTotal.Observe(int64(time.Since(t0)))
	}); avg != 0 {
		t.Errorf("instrumented predict path: %v allocs/op, want 0", avg)
	}
}
