package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relational"
)

// CoalescerConfig tunes the adaptive request coalescer.
type CoalescerConfig struct {
	// MaxBatch caps how many concurrent requests one flush scores; a batch
	// that fills flushes immediately without waiting for the window.
	MaxBatch int
	// Window is the maximum time the first request of a batch waits for
	// company before the batch flushes anyway. Window <= 0 disables
	// coalescing entirely: every request takes the direct path.
	Window time.Duration
}

// DefaultCoalescerConfig is the serving default: a window two orders of
// magnitude below a human-visible latency budget but long enough for a busy
// listener to accumulate tens of requests, and a batch cap matching the
// engine's morsel size.
func DefaultCoalescerConfig() CoalescerConfig {
	return CoalescerConfig{MaxBatch: 64, Window: 50 * time.Microsecond}
}

// cbatch is one micro-batch under construction, pinned to the Snapshot its
// first request scored against — the invariant that keeps coalesced serving
// hot-swap consistent: a request is only ever scored by the exact engine its
// caller resolved.
//
// The handoff is a single broadcast: the flusher writes preds/err and closes
// done once; every waiter wakes, reads its own slot by index, and the last
// reader (readers hits zero) recycles the batch. This replaces a per-call
// result channel — under a full 64-request batch that design made the flusher
// perform 64 serialized channel sends, which dominated the coalescer's
// per-request overhead.
type cbatch struct {
	snap    *Snapshot
	done    chan struct{}
	reqs    [][]relational.Value
	preds   []Prediction
	err     error
	readers atomic.Int32
	timer   *time.Timer
	opened  time.Time // when the batch was opened; flush observes the residency
	bs      batchScratch
}

// Coalescer micro-batches concurrent Predict calls into one
// Engine.predictBatchInto flush — the serving analogue of batched training
// kernels. Amortization only pays when the per-request score is expensive
// (Engine.BatchServeable); cheap factorized-linear scores and lone requests
// fall through to the direct path so the unloaded p50 never regresses.
//
// Mechanics: the first request under load opens a batch and arms a
// per-batch timer; followers append until MaxBatch fills the batch (the
// filler flushes, stopping the timer) or the window expires (the timer
// goroutine flushes). Every waiter blocks on the batch's done channel, which
// on a loaded machine is exactly what lets the other request goroutines run
// and fill the batch. A request that fails validation is rejected before it
// can join a batch, so one malformed request can never poison its neighbors.
//
// Load detection is adaptive. A request batches whenever overlap is
// observable — another call is mid-flight or a batch is already open — but
// on a saturated single core overlap never shows: each non-blocking direct
// call runs to completion before the next goroutine is scheduled, so
// everyone looks alone and coalescing would never ignite. So after probeAt
// consecutive direct calls the next one probes: it opens a batch and waits
// the window. Under real concurrent load the probe's block frees the core,
// the other request goroutines run into the open batch, and batching becomes
// self-sustaining (every waiter's block admits the next). A truly sequential
// client just times the probe out alone, and probeAt doubles — the wasted
// windows decay geometrically, so a scalar caller's amortized cost tends
// to zero.
type Coalescer struct {
	cfg CoalescerConfig

	mu       sync.Mutex
	cur      *cbatch
	streak   int // consecutive direct calls since the last batch
	probeAt  int // direct-streak length that triggers the next probe
	inflight atomic.Int64

	batchPool sync.Pool

	// Monotonic counters for /stats: flushed batches, requests scored
	// through a batch, and requests served on the direct path.
	batches   atomic.Uint64
	coalesced atomic.Uint64
	direct    atomic.Uint64

	// m carries the owning registry's telemetry (batch-fill and residency
	// histograms, flush-reason counters). Nil for a bare NewCoalescer — the
	// flush path guards once per batch, never per request.
	m *Metrics
}

// minProbeStreak is the direct-call streak before the first batching probe;
// maxProbeStreak caps the back-off so a long-idle coalescer still re-probes.
const (
	minProbeStreak = 64
	maxProbeStreak = 8192
)

// NewCoalescer builds a coalescer; zero or negative MaxBatch falls back to
// the default cap.
func NewCoalescer(cfg CoalescerConfig) *Coalescer {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultCoalescerConfig().MaxBatch
	}
	return &Coalescer{cfg: cfg, probeAt: minProbeStreak}
}

// CoalescerStats is a point-in-time counter snapshot.
type CoalescerStats struct {
	Batches   uint64 `json:"batches"`
	Coalesced uint64 `json:"coalesced"`
	Direct    uint64 `json:"direct"`
}

// Stats returns the counters accumulated since construction.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{
		Batches:   c.batches.Load(),
		Coalesced: c.coalesced.Load(),
		Direct:    c.direct.Load(),
	}
}

// newBatch opens a batch pinned to snap and arms its flush timer. The timer
// closure captures the batch itself, so a stale fire (the batch already
// flushed by its filler) is detected by identity in flushExpired and
// becomes a no-op — no generation counters needed.
func (c *Coalescer) newBatch(snap *Snapshot) *cbatch {
	b, ok := c.batchPool.Get().(*cbatch)
	if !ok {
		b = &cbatch{}
	}
	b.snap = snap
	b.done = make(chan struct{})
	b.opened = time.Now()
	b.timer = time.AfterFunc(c.cfg.Window, func() { c.flushExpired(b) })
	return b
}

// putBatch recycles a flushed batch. Only the last reader calls it (readers
// reached zero), so no waiter can still be reading preds. reqs are cleared so
// the pool never retains caller request slices.
func (c *Coalescer) putBatch(b *cbatch) {
	b.snap = nil
	b.done = nil
	b.err = nil
	b.timer = nil
	for i := range b.reqs {
		b.reqs[i] = nil
	}
	b.reqs = b.reqs[:0]
	c.batchPool.Put(b)
}

// Predict scores one request against snap, micro-batching with concurrent
// callers when that pays. Results are indistinguishable from
// snap.Engine.Predict: same classes and scores, same validation errors, and
// always from snap's engine regardless of hot-swaps racing this call.
func (c *Coalescer) Predict(snap *Snapshot, req []relational.Value) (Prediction, error) {
	return c.PredictCtx(context.Background(), snap, req)
}

// PredictCtx is Predict with per-request deadline propagation. A waiter
// whose context expires while its batch is in flight abandons its slot and
// returns ctx.Err(): its request still gets scored with the batch (the
// flusher owns the shared reqs slice and is never interrupted), but nobody
// waits for the result. The abandoner decrements the reader count like a
// normal waiter; the batch is recycled only when the flush is observably
// complete, so an abandonment can never hand a batch back to the pool while
// the flusher is still writing into it — at worst the batch is dropped for
// the GC instead of reused. A background context costs one nil check over
// Predict.
func (c *Coalescer) PredictCtx(ctx context.Context, snap *Snapshot, req []relational.Value) (Prediction, error) {
	e := snap.Engine
	if c.cfg.Window <= 0 || !e.BatchServeable() {
		c.direct.Add(1)
		return e.Predict(req)
	}
	if err := e.Validate(req); err != nil {
		return Prediction{}, err
	}
	alone := c.inflight.Add(1) == 1
	defer c.inflight.Add(-1)

	c.mu.Lock()
	if alone && c.cur == nil && c.streak < c.probeAt {
		// Low load: nobody else is observably in flight and no batch is
		// pending, so waiting out a window would buy nothing and cost its
		// full length. The bounded streak makes this self-correcting on a
		// saturated single core, where overlap is real but never observable.
		c.streak++
		c.mu.Unlock()
		c.direct.Add(1)
		return e.Predict(req)
	}
	if b := c.cur; b != nil && b.snap != snap {
		// A hot-swap landed between these callers' snapshot resolutions.
		// Flush the old-snapshot batch now (swaps are rare; the latency
		// lands on one request) rather than ever mixing engines in a batch.
		c.cur = nil
		c.mu.Unlock()
		b.timer.Stop()
		if c.m != nil {
			c.m.flushSwap.Inc()
		}
		c.flush(b)
		c.mu.Lock()
	}
	b := c.cur
	if b == nil {
		b = c.newBatch(snap)
		c.cur = b
	}
	idx := len(b.reqs)
	b.reqs = append(b.reqs, req)
	b.readers.Add(1)
	full := len(b.reqs) >= c.cfg.MaxBatch
	if full {
		c.cur = nil
	}
	c.mu.Unlock()

	if full {
		b.timer.Stop()
		if c.m != nil {
			c.m.flushFull.Inc()
		}
		c.flush(b)
	}
	if done := ctx.Done(); done == nil {
		<-b.done
	} else {
		select {
		case <-b.done:
		case <-done:
			if b.readers.Add(-1) == 0 {
				select {
				case <-b.done:
					// Flush already completed; safe to recycle.
					c.putBatch(b)
				default:
					// The flusher still owns the batch (it will close done
					// after writing preds). Leave it for the GC.
				}
			}
			return Prediction{}, ctx.Err()
		}
	}
	pred, err := b.preds[idx], b.err
	if b.readers.Add(-1) == 0 {
		c.putBatch(b)
	}
	return pred, err
}

// flushExpired is the timer path: flush b only if it is still the pending
// batch — a filler or snapshot-mismatch flush may have raced the timer.
func (c *Coalescer) flushExpired(b *cbatch) {
	c.mu.Lock()
	if c.cur != b {
		c.mu.Unlock()
		return
	}
	c.cur = nil
	c.mu.Unlock()
	if c.m != nil {
		c.m.flushWindow.Inc()
	}
	c.flush(b)
}

// flush scores a detached batch and wakes its waiters with one broadcast
// close. Requests were validated at enqueue, so predictBatchInto cannot fail
// on input; an error is still fanned out to every waiter rather than
// swallowed.
func (c *Coalescer) flush(b *cbatch) {
	n := len(b.reqs)
	if cap(b.preds) < n {
		b.preds = make([]Prediction, n)
	}
	preds := b.preds[:n]
	b.err = b.snap.Engine.predictBatchInto(preds, b.reqs, &b.bs)
	c.batches.Add(1)
	c.coalesced.Add(uint64(n))
	if c.m != nil {
		// Amortized per batch, not per request: one fill sample and one
		// residency sample (open → flush, an upper bound on any waiter's
		// queue time) per flush.
		c.m.coalFill.Observe(int64(n))
		c.m.coalWait.Observe(int64(time.Since(b.opened)))
	}
	c.mu.Lock()
	c.streak = 0
	if n > 1 {
		// Company arrived: load is coalescable, probe eagerly again.
		c.probeAt = minProbeStreak
	} else if c.probeAt < maxProbeStreak {
		// A probe (or a drained batch) timed out alone: back off.
		c.probeAt *= 2
	}
	c.mu.Unlock()
	close(b.done)
}
