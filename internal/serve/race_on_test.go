//go:build race

package serve

// raceEnabled gates allocation-count assertions, which the race detector's
// instrumentation invalidates.
const raceEnabled = true
