// Package serve is the online inference subsystem: it scores rows of a star
// schema's fact table against a persisted model *without materializing the
// KFK join* — the prediction-time counterpart of the paper's training-time
// thesis.
//
// A request carries only what the fact table knows: home attributes and
// foreign-key ids. For models that are linear in the one-hot features
// (Naive Bayes, logistic regression, linear-kernel SVM — the
// ml.LinearExporter surface), each dimension table's entire contribution to
// the decision score is a per-dimension-row constant, so the engine
// precomputes one partial score per dimension row at load time and serving
// degenerates to one array lookup per dimension table per request:
//
//	score = bias + Σ_{fact features} w[j, x_j] + Σ_{dims} partial[d][fk_d]
//
// This is FDB-style factorized evaluation applied at serving time: O(d_S+q)
// per request instead of O(d_S + Σ d_R) plus the gather. Models that are not
// linear in the features (trees, kNN, ANN, non-linear SVM kernels) fall back
// to gather-based row assembly through relational.JoinView.AssembleRow — the
// same per-dimension plans the training-time zero-copy join uses.
//
// The factorized and gather paths compute bit-identical scores by
// construction: both fold the fact-feature weights in model order and each
// dimension group's weights in model order (the precomputed partial is
// exactly that fold, hoisted per dimension row), so choosing the fast path
// never changes a prediction.
package serve

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/relational"
)

// InputFeature describes one value an inference request must carry, in
// request order: the model's fact-local features (home attributes and
// foreign keys), plus auxiliary foreign keys that are not model features but
// are needed to resolve a dimension's features (open-domain FKs, which the
// feature views exclude as features while keeping their dimensions' columns).
type InputFeature struct {
	Name        string
	Cardinality int
	IsFK        bool
	// Dim names the referenced dimension table for foreign keys.
	Dim string
	// Aux marks a foreign key that only resolves dimension features and
	// carries no weight of its own.
	Aux bool
}

// factSlot maps one fact-local model feature to its request position.
type factSlot struct {
	modelIdx int
	input    int
}

// dimFeat is one dimension-table feature of the model: its model position
// and the column in the dimension table it reads.
type dimFeat struct {
	modelIdx int
	dimCol   int
}

// dimGroup collects one dimension table's model features. In linear mode,
// partials[r] is the dimension's full score contribution for dimension row
// r — the factorized lookup table.
type dimGroup struct {
	name     string
	dim      *relational.Table
	fkInput  int
	feats    []dimFeat
	partials []float64
	// hpartial is the hidden-factorized sibling of partials: row r holds the
	// dimension's h-wide contribution to the first-layer pre-activation.
	hpartial []float64
}

// Engine scores requests against one model over one star schema. It is
// immutable after construction and safe for concurrent use.
type Engine struct {
	mdl    *model.Model
	cls    ml.Classifier
	scorer ml.Scorer
	star   *relational.StarSchema
	jv     *relational.JoinView

	inputs       []InputFeature
	inputIndex   map[string]int
	inputFactCol []int
	factFeats    []factSlot
	groups       []dimGroup
	modelCols    []int // model feature -> joined-schema column
	factW        int
	joinedW      int

	linear bool
	bias   float64
	w      []float64
	enc    *ml.Encoder

	// hidden marks the factorized-first-layer path for models whose input
	// layer is linear in the one-hot features (the MLP): hb/hw are the
	// exported layer (bias + one hwidth-wide row per one-hot dimension) and
	// each dimGroup.hpartial hoists a dimension's whole first-layer
	// contribution into a per-row vector, so a batched forward pass never
	// gathers dimension rows at all.
	hidden bool
	hf     ml.HiddenLinearExporter
	hb     []float64
	hw     []float64
	hwidth int

	bp ml.BatchPredictor // non-nil when the classifier batch-classifies

	scratchPool sync.Pool
}

// joinAllFeatures derives the JoinAll feature schema of a star schema's
// joined relation — what a model trained on this schema would carry.
func joinAllFeatures(jv *relational.JoinView) []ml.Feature {
	schema := jv.Schema()
	cols := ml.ViewColumns(jv, ml.JoinAll, nil)
	feats := make([]ml.Feature, len(cols))
	for j, c := range cols {
		col := schema.Cols[c]
		feats[j] = ml.Feature{
			Name:        col.Name,
			Cardinality: col.Domain.Size,
			IsFK:        col.Kind == relational.KindForeignKey,
		}
	}
	return feats
}

// NewEngine binds a persisted model to the star schema it will serve,
// resolving every model feature to a fact column or a dimension column and —
// for linear models — precomputing the per-dimension-row partial scores.
// Any unresolvable or mismatched feature is rejected with a typed
// *model.SchemaMismatchError.
func NewEngine(m *model.Model, ss *relational.StarSchema) (*Engine, error) {
	cls, ok := m.Classifier()
	if !ok {
		return nil, fmt.Errorf("serve: model kind %q is not a binary classifier", m.Kind)
	}
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		mdl:       m,
		cls:       cls,
		star:      ss,
		jv:        jv,
		modelCols: make([]int, len(m.Features)),
		factW:     ss.Fact.Schema().Width(),
		joinedW:   jv.Schema().Width(),
	}
	e.scorer, _ = cls.(ml.Scorer)

	mismatch := func(format string, args ...any) error {
		return &model.SchemaMismatchError{
			Want:   m.Fingerprint(),
			Got:    model.FingerprintFeatures(joinAllFeatures(jv)),
			Detail: fmt.Sprintf(format, args...),
		}
	}

	factSchema := ss.Fact.Schema()
	jschema := jv.Schema()
	groupOf := map[string]int{}   // dim name -> index in e.groups
	fkInputOf := map[string]int{} // dim name -> FK input index
	for j, f := range m.Features {
		jcol := jschema.Index(f.Name)
		if jcol < 0 {
			return nil, mismatch("model feature %q does not exist in the star schema's join", f.Name)
		}
		e.modelCols[j] = jcol
		if dim, featName, isDim := splitDimFeature(ss, f.Name); isDim {
			if f.IsFK {
				return nil, mismatch("model feature %q is flagged as a foreign key but names a dimension column", f.Name)
			}
			dcol := dim.Schema().Index(featName)
			if dcol < 0 || dim.Schema().Cols[dcol].Kind != relational.KindFeature {
				return nil, mismatch("model feature %q has no feature column %q in dimension %q", f.Name, featName, dim.Name)
			}
			if size := dim.Schema().Cols[dcol].Domain.Size; size != f.Cardinality {
				return nil, mismatch("model feature %q has domain size %d, dimension column has %d", f.Name, f.Cardinality, size)
			}
			gi, ok := groupOf[dim.Name]
			if !ok {
				gi = len(e.groups)
				groupOf[dim.Name] = gi
				e.groups = append(e.groups, dimGroup{name: dim.Name, dim: dim, fkInput: -1})
			}
			e.groups[gi].feats = append(e.groups[gi].feats, dimFeat{modelIdx: j, dimCol: dcol})
			continue
		}
		fcol := factSchema.Index(f.Name)
		if fcol < 0 {
			return nil, mismatch("model feature %q does not exist in the fact table", f.Name)
		}
		c := factSchema.Cols[fcol]
		switch c.Kind {
		case relational.KindForeignKey:
			if !f.IsFK {
				return nil, mismatch("model feature %q is a foreign key in the fact table but not in the model", f.Name)
			}
			if c.Domain.Size != f.Cardinality {
				return nil, mismatch("foreign key %q has domain size %d, fact column has %d", f.Name, f.Cardinality, c.Domain.Size)
			}
			fkInputOf[c.Refs] = len(e.inputs)
			e.factFeats = append(e.factFeats, factSlot{modelIdx: j, input: len(e.inputs)})
			e.inputs = append(e.inputs, InputFeature{Name: f.Name, Cardinality: f.Cardinality, IsFK: true, Dim: c.Refs})
			e.inputFactCol = append(e.inputFactCol, fcol)
		case relational.KindFeature:
			if f.IsFK {
				return nil, mismatch("model feature %q is flagged as a foreign key but is a plain fact column", f.Name)
			}
			if c.Domain.Size != f.Cardinality {
				return nil, mismatch("model feature %q has domain size %d, fact column has %d", f.Name, f.Cardinality, c.Domain.Size)
			}
			e.factFeats = append(e.factFeats, factSlot{modelIdx: j, input: len(e.inputs)})
			e.inputs = append(e.inputs, InputFeature{Name: f.Name, Cardinality: f.Cardinality})
			e.inputFactCol = append(e.inputFactCol, fcol)
		default:
			return nil, mismatch("model feature %q is a %v column in the fact table", f.Name, c.Kind)
		}
	}

	// Wire every dimension group to its foreign-key request slot. A group
	// whose FK is not a model feature (open-domain FKs) still needs the id
	// to resolve its columns, so the FK becomes an auxiliary input.
	for gi := range e.groups {
		g := &e.groups[gi]
		if in, ok := fkInputOf[g.name]; ok {
			g.fkInput = in
			continue
		}
		fcol := -1
		for _, c := range factSchema.ColumnsOfKind(relational.KindForeignKey) {
			if factSchema.Cols[c].Refs == g.name {
				fcol = c
				break
			}
		}
		if fcol < 0 {
			return nil, mismatch("dimension %q contributes model features but no fact foreign key references it", g.name)
		}
		g.fkInput = len(e.inputs)
		e.inputs = append(e.inputs, InputFeature{
			Name:        factSchema.Cols[fcol].Name,
			Cardinality: factSchema.Cols[fcol].Domain.Size,
			IsFK:        true,
			Dim:         g.name,
			Aux:         true,
		})
		e.inputFactCol = append(e.inputFactCol, fcol)
	}

	// Linear mode: export the one-hot weights and hoist each dimension's
	// score contribution into a per-row lookup table. The fold order per row
	// is exactly scoreRow's, which is what makes the two paths bit-identical.
	if le, ok := cls.(ml.LinearExporter); ok {
		if bias, w, ok := le.ExportLinear(m.Features); ok {
			e.linear = true
			e.bias = bias
			e.w = w
			e.enc = ml.NewEncoder(m.Features)
			for gi := range e.groups {
				g := &e.groups[gi]
				g.partials = make([]float64, g.dim.NumRows())
				for r := range g.partials {
					p := 0.0
					for _, f := range g.feats {
						p += e.w[e.enc.Offsets[f.modelIdx]+int(g.dim.At(r, f.dimCol))]
					}
					g.partials[r] = p
				}
			}
		}
	}

	// Hidden-factorized mode: the same per-dimension hoist one layer into a
	// network whose *input* layer is linear in the features (the MLP). Each
	// dimension row's embedding-row sum collapses into one precomputed
	// hwidth-vector, folded in model order per group — the first-layer
	// analogue of the linear partials. Only taken for pure classifiers
	// (no Scorer): the batched forward emits classes, and dropping a score
	// the per-request path would have carried must never depend on load.
	if !e.linear && e.scorer == nil {
		if hf, ok := cls.(ml.HiddenLinearExporter); ok {
			if hb, hw, h, ok := hf.ExportHiddenLinear(m.Features); ok && h > 0 {
				e.hidden = true
				e.hf = hf
				e.hb, e.hw, e.hwidth = hb, hw, h
				e.enc = ml.NewEncoder(m.Features)
				for gi := range e.groups {
					g := &e.groups[gi]
					g.hpartial = make([]float64, g.dim.NumRows()*h)
					for r := 0; r < g.dim.NumRows(); r++ {
						row := g.hpartial[r*h : (r+1)*h]
						for _, f := range g.feats {
							w := e.hw[(e.enc.Offsets[f.modelIdx]+int(g.dim.At(r, f.dimCol)))*h:][:h]
							for u := range row {
								row[u] += w[u]
							}
						}
					}
				}
			}
		}
	}
	if bp, ok := cls.(ml.BatchPredictor); ok {
		e.bp = bp
	}
	e.inputIndex = make(map[string]int, len(e.inputs))
	for i, f := range e.inputs {
		e.inputIndex[f.Name] = i
	}
	return e, nil
}

// splitDimFeature reports whether a model feature name is "<dim>.<col>" for
// a dimension of the star schema.
func splitDimFeature(ss *relational.StarSchema, name string) (*relational.Table, string, bool) {
	i := strings.IndexByte(name, '.')
	if i <= 0 {
		return nil, "", false
	}
	dim, ok := ss.Dimensions[name[:i]]
	if !ok {
		return nil, "", false
	}
	return dim, name[i+1:], true
}

// Model returns the served model.
func (e *Engine) Model() *model.Model { return e.mdl }

// Factorized reports whether the engine scores through precomputed
// per-dimension partials (linear models) rather than per-request gathers.
func (e *Engine) Factorized() bool { return e.linear }

// HiddenFactorized reports whether batched scoring folds precomputed
// per-dimension first-layer partials (the MLP path) instead of gathering
// dimension rows per request.
func (e *Engine) HiddenFactorized() bool { return e.hidden }

// BatchServeable reports whether batching concurrent requests into one call
// buys this engine anything: a factorized first layer or a batch-classifying
// model. Linear engines are excluded on purpose — their factorized score is
// a handful of adds, far cheaper than any batching handoff — as are gather
// fallbacks with no batch form (tree, kNN). The coalescer scores any engine
// correctly; this is the routing hint for when it should be in the path.
func (e *Engine) BatchServeable() bool {
	return e.hidden || (e.bp != nil && !e.linear && e.scorer == nil)
}

// InputFeatures returns the request layout: one value per entry, in order.
func (e *Engine) InputFeatures() []InputFeature { return e.inputs }

// InputIndex resolves an input feature name to its request position.
func (e *Engine) InputIndex(name string) (int, bool) {
	i, ok := e.inputIndex[name]
	return i, ok
}

// NumDimensions returns the number of dimension tables the model reads
// features from.
func (e *Engine) NumDimensions() int { return len(e.groups) }

// RequestFromFactRow extracts a request vector from a fact-table-shaped row
// (the natural source of serving traffic in tests, benchmarks, and replay).
// dst must have len >= len(InputFeatures()).
func (e *Engine) RequestFromFactRow(dst []relational.Value, factRow []relational.Value) []relational.Value {
	dst = dst[:len(e.inputs)]
	for i, c := range e.inputFactCol {
		dst[i] = factRow[c]
	}
	return dst
}

// Validate checks a request against the input layout: length and per-value
// domain membership (which also guarantees every FK resolves to an existing
// dimension row, since FK domains equal dimension cardinalities).
func (e *Engine) Validate(req []relational.Value) error {
	if len(req) != len(e.inputs) {
		return fmt.Errorf("serve: request has %d values, model needs %d", len(req), len(e.inputs))
	}
	for i, v := range req {
		if v < 0 || int(v) >= e.inputs[i].Cardinality {
			return fmt.Errorf("serve: input %q = %d outside domain [0,%d)", e.inputs[i].Name, v, e.inputs[i].Cardinality)
		}
	}
	return nil
}

// Prediction is one scored request.
type Prediction struct {
	Class int8
	// Score is the real-valued decision (>= 0 predicts class 1) when Scored.
	Score  float64
	Scored bool
}

// scoreFactorized is the factorized hot path: fact-feature weights in model
// order, then one partial lookup per dimension group. No per-request
// allocation, no dimension-row access.
func (e *Engine) scoreFactorized(req []relational.Value) float64 {
	acc := e.bias
	for _, fs := range e.factFeats {
		acc += e.w[e.enc.Offsets[fs.modelIdx]+int(req[fs.input])]
	}
	for gi := range e.groups {
		g := &e.groups[gi]
		acc += g.partials[req[g.fkInput]]
	}
	return acc
}

// scoreRow computes the same canonical grouped score from a fully assembled
// model row: fact-feature weights in model order, then each dimension
// group's weights folded in model order. Bit-identical to scoreFactorized
// because the precomputed partial is exactly the per-group fold.
func (e *Engine) scoreRow(row []relational.Value) float64 {
	acc := e.bias
	for _, fs := range e.factFeats {
		acc += e.w[e.enc.Offsets[fs.modelIdx]+int(row[fs.modelIdx])]
	}
	for gi := range e.groups {
		g := &e.groups[gi]
		p := 0.0
		for _, f := range g.feats {
			p += e.w[e.enc.Offsets[f.modelIdx]+int(row[f.modelIdx])]
		}
		acc += p
	}
	return acc
}

// scratch holds the per-request buffers of the gather path. The factorized
// path needs none — that asymmetry is the point.
type scratch struct {
	factRow  []relational.Value
	joined   []relational.Value
	modelRow []relational.Value
}

func (e *Engine) newScratch() *scratch {
	return &scratch{
		factRow:  make([]relational.Value, e.factW),
		joined:   make([]relational.Value, e.joinedW),
		modelRow: make([]relational.Value, len(e.mdl.Features)),
	}
}

// getScratch checks a scratch out of the engine's pool so steady-state
// gather-path requests allocate nothing; putScratch returns it.
func (e *Engine) getScratch() *scratch {
	if sc, ok := e.scratchPool.Get().(*scratch); ok {
		return sc
	}
	return e.newScratch()
}

func (e *Engine) putScratch(sc *scratch) { e.scratchPool.Put(sc) }

// assembleModelRow materializes the joined row for a request through the
// JoinView's per-dimension plans, then projects it to model feature order.
func (e *Engine) assembleModelRow(sc *scratch, req []relational.Value) []relational.Value {
	for i := range sc.factRow {
		sc.factRow[i] = 0
	}
	for i, c := range e.inputFactCol {
		sc.factRow[c] = req[i]
	}
	joined := e.jv.AssembleRow(sc.joined, sc.factRow)
	for j, c := range e.modelCols {
		sc.modelRow[j] = joined[c]
	}
	return sc.modelRow
}

func classOf(score float64) int8 {
	if score >= 0 {
		return 1
	}
	return 0
}

// PredictFactorized scores a request on the factorized path. It errors for
// models that do not export linear weights — callers select with
// Factorized() or use Predict for automatic dispatch.
func (e *Engine) PredictFactorized(req []relational.Value) (Prediction, error) {
	if !e.linear {
		return Prediction{}, fmt.Errorf("serve: model kind %q has no factorized form", e.mdl.Kind)
	}
	if err := e.Validate(req); err != nil {
		return Prediction{}, err
	}
	s := e.scoreFactorized(req)
	return Prediction{Class: classOf(s), Score: s, Scored: true}, nil
}

// PredictJoined scores a request on the gather path: the joined row is
// materialized per request (the cost a join-at-serving-time deployment
// pays), then scored — through the canonical grouped sum for linear models,
// or through the classifier's own Predict otherwise.
func (e *Engine) PredictJoined(req []relational.Value) (Prediction, error) {
	if err := e.Validate(req); err != nil {
		return Prediction{}, err
	}
	sc := e.getScratch()
	p := e.predictJoinedInto(sc, req)
	e.putScratch(sc)
	return p, nil
}

// predictJoinedInto is PredictJoined after validation, with caller scratch.
func (e *Engine) predictJoinedInto(sc *scratch, req []relational.Value) Prediction {
	row := e.assembleModelRow(sc, req)
	if e.linear {
		s := e.scoreRow(row)
		return Prediction{Class: classOf(s), Score: s, Scored: true}
	}
	p := Prediction{Class: e.cls.Predict(row)}
	if e.scorer != nil {
		p.Score = e.scorer.Decision(row)
		p.Scored = true
	}
	return p
}

// Predict scores a request on the fastest correct path: factorized for
// linear models, gather otherwise.
func (e *Engine) Predict(req []relational.Value) (Prediction, error) {
	if e.linear {
		return e.PredictFactorized(req)
	}
	return e.PredictJoined(req)
}

// predictBatchMorsel is the per-worker chunk size of PredictBatch: large
// enough to amortize goroutine handoff, small enough to spread a modest
// batch across the pool.
const predictBatchMorsel = 64

// PredictBatch scores a batch of requests, fanning morsel-sized chunks
// across the worker pool (ml.ParallelFor — the same fan-out the training
// paths use). Each output slot is written exactly once, so results are
// deterministic and identical to a sequential loop. Requests are validated
// up front; the first invalid request fails the whole batch and nothing is
// scored.
//
// Linear models keep the per-request scalar fold: the factorized score is
// already one addend per fact feature plus one per dimension, and batching
// it through an index-matrix kernel was measured strictly slower (two extra
// memory operations per addend; see the ServeBatch bench pair's history).
// The batch win lands on the gather path instead: for fallback models that
// implement ml.BatchPredictor (the MLP's GEMM forward), the chunks only
// assemble the joined rows into one dense block, and a single batched
// forward pass classifies the whole batch — replacing a per-request
// Probability call that allocates both hidden layers per row. The batch
// classes equal the model's per-row Predict (ml.BatchPredictor's contract),
// so the response is unchanged.
func (e *Engine) PredictBatch(reqs [][]relational.Value) ([]Prediction, error) {
	for i, req := range reqs {
		if err := e.Validate(req); err != nil {
			return nil, fmt.Errorf("serve: request %d: %w", i, err)
		}
	}
	out := make([]Prediction, len(reqs))
	chunks := (len(reqs) + predictBatchMorsel - 1) / predictBatchMorsel
	if e.hidden {
		// Factorized first layer: each chunk builds its block of first-layer
		// pre-activations straight from the request vectors (bias + fact
		// embedding rows + one hoisted partial vector per dimension — no
		// gather), then one dense tail pass classifies the block.
		ml.ParallelFor(chunks, func(c int) {
			lo := c * predictBatchMorsel
			hi := min(lo+predictBatchMorsel, len(reqs))
			z := make([]float64, (hi-lo)*e.hwidth)
			cls := make([]int8, hi-lo)
			e.buildHiddenInto(z, reqs, lo, hi)
			e.hf.ClassifyHidden(cls, z, hi-lo)
			for i := lo; i < hi; i++ {
				out[i] = Prediction{Class: cls[i-lo]}
			}
		})
		return out, nil
	}
	if bp := e.bp; bp != nil && !e.linear && e.scorer == nil {
		w := len(e.mdl.Features)
		block := make([]relational.Value, len(reqs)*w)
		ml.ParallelFor(chunks, func(c int) {
			lo := c * predictBatchMorsel
			hi := min(lo+predictBatchMorsel, len(reqs))
			sc := e.getScratch()
			for i := lo; i < hi; i++ {
				copy(block[i*w:(i+1)*w], e.assembleModelRow(sc, reqs[i]))
			}
			e.putScratch(sc)
		})
		ds := &ml.Dataset{Features: e.mdl.Features, X: block, Y: make([]int8, len(reqs))}
		for i, cls := range bp.PredictBatch(ds) {
			out[i] = Prediction{Class: cls}
		}
		return out, nil
	}
	ml.ParallelFor(chunks, func(c int) {
		lo := c * predictBatchMorsel
		hi := min(lo+predictBatchMorsel, len(reqs))
		if e.linear {
			for i := lo; i < hi; i++ {
				s := e.scoreFactorized(reqs[i])
				out[i] = Prediction{Class: classOf(s), Score: s, Scored: true}
			}
			return
		}
		sc := e.getScratch()
		for i := lo; i < hi; i++ {
			out[i] = e.predictJoinedInto(sc, reqs[i])
		}
		e.putScratch(sc)
	})
	return out, nil
}

// buildHiddenInto fills dst with the first-layer pre-activations of requests
// [lo, hi): for each, the layer bias, the embedding rows of the fact-local
// features in model order, then one precomputed hpartial vector per
// dimension group — the canonical grouped fold, hoisted per dimension row
// exactly like scoreFactorized's scalar partials.
func (e *Engine) buildHiddenInto(dst []float64, reqs [][]relational.Value, lo, hi int) {
	h := e.hwidth
	fused := len(e.factFeats)+len(e.groups) == 4
	for i := lo; i < hi; i++ {
		row := dst[(i-lo)*h : (i-lo+1)*h]
		req := reqs[i]
		if fused {
			// The star-schema common case: four embedding rows to fold
			// (fact-local features plus one hpartial per dimension group,
			// e.g. two of each). Collecting them and summing in one fused
			// pass does 5 loads and 1 store per element instead of the
			// copy-then-add-each chain's 9 loads and 5 stores — this loop
			// is a top cost of a batch flush. The element-wise sum
			// associates left to right in exactly the sequential fold
			// order, so every result bit matches the general path below.
			var srcs [4][]float64
			ns := 0
			for _, fs := range e.factFeats {
				srcs[ns] = e.hw[(e.enc.Offsets[fs.modelIdx]+int(req[fs.input]))*h:][:h]
				ns++
			}
			for gi := range e.groups {
				g := &e.groups[gi]
				srcs[ns] = g.hpartial[int(req[g.fkInput])*h:][:h]
				ns++
			}
			s0, s1, s2, s3 := srcs[0], srcs[1][:h], srcs[2][:h], srcs[3][:h]
			for u := range row {
				row[u] = e.hb[u] + s0[u] + s1[u] + s2[u] + s3[u]
			}
			continue
		}
		copy(row, e.hb)
		for _, fs := range e.factFeats {
			w := e.hw[(e.enc.Offsets[fs.modelIdx]+int(req[fs.input]))*h:][:h]
			for u := range row {
				row[u] += w[u]
			}
		}
		for gi := range e.groups {
			g := &e.groups[gi]
			p := g.hpartial[int(req[g.fkInput])*h:][:h]
			for u := range row {
				row[u] += p[u]
			}
		}
	}
}

// batchScratch carries the reusable buffers of predictBatchInto so a
// steady-state coalescer flush allocates nothing on the factorized paths.
type batchScratch struct {
	z   []float64
	cls []int8
}

// predictBatchInto is the coalescer's flush kernel: it scores reqs into dst
// (len(dst) >= len(reqs)) sequentially — micro-batches are far below the
// fan-out's break-even — choosing the same path per engine as PredictBatch.
// Requests are validated up front; the first invalid one fails the whole
// batch and nothing is scored (the coalescer pre-validates at enqueue, so a
// mixed batch of strangers can never be poisoned by one bad request).
func (e *Engine) predictBatchInto(dst []Prediction, reqs [][]relational.Value, bs *batchScratch) error {
	for i, req := range reqs {
		if err := e.Validate(req); err != nil {
			return fmt.Errorf("serve: request %d: %w", i, err)
		}
	}
	n := len(reqs)
	switch {
	case e.linear:
		for i := 0; i < n; i++ {
			s := e.scoreFactorized(reqs[i])
			dst[i] = Prediction{Class: classOf(s), Score: s, Scored: true}
		}
	case e.hidden:
		if need := n * e.hwidth; cap(bs.z) < need {
			bs.z = make([]float64, need)
		}
		if cap(bs.cls) < n {
			bs.cls = make([]int8, n)
		}
		z, cls := bs.z[:n*e.hwidth], bs.cls[:n]
		e.buildHiddenInto(z, reqs, 0, n)
		e.hf.ClassifyHidden(cls, z, n)
		for i := 0; i < n; i++ {
			dst[i] = Prediction{Class: cls[i]}
		}
	default:
		sc := e.getScratch()
		for i := 0; i < n; i++ {
			dst[i] = e.predictJoinedInto(sc, reqs[i])
		}
		e.putScratch(sc)
	}
	return nil
}
