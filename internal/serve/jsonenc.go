package serve

import (
	"math"
	"strconv"
)

// Append-style JSON encoders for the hot response shapes. encoding/json is
// kept for the cold admin endpoints; the per-request paths build their
// responses into pooled buffers with zero intermediate allocation. The float
// format replicates encoding/json's floatEncoder exactly ('f' for the
// human-scale range, 'e' outside it, with the two-digit negative exponent
// compacted), so switching a handler between the two encoders never changes
// a byte on the wire.

func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

func modeString(factorized bool) string {
	if factorized {
		return "factorized"
	}
	return "joined"
}

// appendPredictResponse encodes predictResponse: the class, the score when
// the model exposes one, and the path that produced it. Trailing newline
// matches json.Encoder.Encode.
func appendPredictResponse(b []byte, p Prediction, factorized bool) []byte {
	b = append(b, `{"prediction":`...)
	b = strconv.AppendInt(b, int64(p.Class), 10)
	if p.Scored {
		b = append(b, `,"score":`...)
		b = appendJSONFloat(b, p.Score)
	}
	b = append(b, `,"mode":"`...)
	b = append(b, modeString(factorized)...)
	b = append(b, "\"}\n"...)
	return b
}

// appendBatchResponse encodes batchResponse; scores are emitted only when
// every prediction carries one (mixed batches cannot happen — the path is
// uniform per engine — but the guard keeps the encoder total).
func appendBatchResponse(b []byte, preds []Prediction, factorized bool) []byte {
	b = append(b, `{"predictions":[`...)
	scored := true
	for i, p := range preds {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(p.Class), 10)
		scored = scored && p.Scored
	}
	b = append(b, ']')
	if scored && len(preds) > 0 {
		b = append(b, `,"scores":[`...)
		for i, p := range preds {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, p.Score)
		}
		b = append(b, ']')
	}
	b = append(b, `,"n":`...)
	b = strconv.AppendInt(b, int64(len(preds)), 10)
	b = append(b, `,"mode":"`...)
	b = append(b, modeString(factorized)...)
	b = append(b, "\"}\n"...)
	return b
}

// appendJSONString encodes s with the subset of escaping the error paths
// need (quotes, backslashes, control bytes); non-ASCII passes through as
// UTF-8, like encoding/json without HTML escaping of user text.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
