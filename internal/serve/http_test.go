package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/model"
	"repro/internal/nb"
	"repro/internal/relational"
)

// testServer spins up an httptest server over a Naive Bayes engine on the
// Walmart schema.
func testServer(t *testing.T) (*httptest.Server, *Engine, *relational.StarSchema) {
	t.Helper()
	ss := star(t, "Walmart", 2048)
	train, _ := joinAllDataset(t, ss)
	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := model.New(nbc, train.Features, map[string]string{"dataset": "Walmart"})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewEngine(m, ss)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(engine).Handler())
	t.Cleanup(srv.Close)
	return srv, engine, ss
}

// inputObject renders fact row i as the JSON request object.
func inputObject(e *Engine, factRow []relational.Value) map[string]int32 {
	req := e.RequestFromFactRow(make([]relational.Value, len(e.InputFeatures())), factRow)
	obj := make(map[string]int32, len(req))
	for i, f := range e.InputFeatures() {
		obj[f.Name] = req[i]
	}
	return obj
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestHTTPPredict covers the single-prediction endpoint in both modes and
// pins the HTTP result to the engine's.
func TestHTTPPredict(t *testing.T) {
	srv, engine, ss := testServer(t)
	req := engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(0))
	want, err := engine.PredictFactorized(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"", "?mode=factorized", "?mode=joined"} {
		resp, body := postJSON(t, srv.URL+"/predict"+mode, map[string]any{"input": inputObject(engine, ss.Fact.Row(0))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %q: status %d: %s", mode, resp.StatusCode, body)
		}
		var got predictResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Prediction != want.Class {
			t.Fatalf("mode %q: prediction %d, want %d", mode, got.Prediction, want.Class)
		}
		if got.Score == nil || *got.Score != want.Score {
			t.Fatalf("mode %q: score %v, want %v", mode, got.Score, want.Score)
		}
	}
}

// TestHTTPPredictBatch covers the batch endpoint and its agreement with the
// engine across modes.
func TestHTTPPredictBatch(t *testing.T) {
	srv, engine, ss := testServer(t)
	const n = 97 // not a multiple of the morsel size
	inputs := make([]map[string]int32, n)
	reqs := make([][]relational.Value, n)
	for i := 0; i < n; i++ {
		inputs[i] = inputObject(engine, ss.Fact.Row(i))
		reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
	}
	want, err := engine.PredictBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"", "?mode=joined"} {
		resp, body := postJSON(t, srv.URL+"/predict_batch"+mode, map[string]any{"inputs": inputs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %q: status %d: %s", mode, resp.StatusCode, body)
		}
		var got batchResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.N != n || len(got.Predictions) != n || len(got.Scores) != n {
			t.Fatalf("mode %q: got %d/%d/%d results, want %d", mode, got.N, len(got.Predictions), len(got.Scores), n)
		}
		for i := range want {
			if got.Predictions[i] != want[i].Class || got.Scores[i] != want[i].Score {
				t.Fatalf("mode %q row %d: (%d, %v), want (%d, %v)",
					mode, i, got.Predictions[i], got.Scores[i], want[i].Class, want[i].Score)
			}
		}
	}
}

// TestHTTPErrors covers the rejection paths: bad method, bad JSON, unknown
// and missing features, out-of-domain values, unknown mode, empty batch.
func TestHTTPErrors(t *testing.T) {
	srv, engine, ss := testServer(t)
	ok := inputObject(engine, ss.Fact.Row(0))

	get, err := http.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: status %d", get.StatusCode)
	}

	cases := map[string]any{
		"unknown feature": map[string]any{"input": map[string]int32{"nope": 1}},
		"missing feature": map[string]any{"input": map[string]int32{}},
		"out of domain":   map[string]any{"input": withValue(ok, engine.InputFeatures()[0].Name, 9999)},
		"negative value":  map[string]any{"input": withValue(ok, engine.InputFeatures()[0].Name, -1)},
	}
	for name, body := range cases {
		resp, raw := postJSON(t, srv.URL+"/predict", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, raw)
		}
	}

	resp, _ := postJSON(t, srv.URL+"/predict?mode=quantum", map[string]any{"input": ok})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/predict_batch", map[string]any{"inputs": []any{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
}

func withValue(base map[string]int32, key string, v int32) map[string]int32 {
	out := make(map[string]int32, len(base))
	for k, val := range base {
		out[k] = val
	}
	out[key] = v
	return out
}

// TestHTTPHealthzAndStats covers the operational endpoints.
func TestHTTPHealthzAndStats(t *testing.T) {
	srv, engine, ss := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}

	// Generate one prediction and one error, then read the counters.
	if resp, body := postJSON(t, srv.URL+"/predict", map[string]any{"input": inputObject(engine, ss.Fact.Row(0))}); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d: %s", resp.StatusCode, body)
	}
	postJSON(t, srv.URL+"/predict", map[string]any{"input": map[string]int32{"nope": 1}})

	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["model"] != model.KindNaiveBayes {
		t.Fatalf("stats model = %v", stats["model"])
	}
	if stats["factorized"] != true {
		t.Fatalf("stats factorized = %v", stats["factorized"])
	}
	if fp := fmt.Sprint(stats["fingerprint"]); fp != engine.Model().Fingerprint().String() {
		t.Fatalf("stats fingerprint = %s", fp)
	}
	if stats["requests"].(float64) < 2 || stats["errors"].(float64) < 1 || stats["examples"].(float64) < 1 {
		t.Fatalf("stats counters off: %v", stats)
	}
}

// TestHTTPConcurrentRequests hammers the server from many goroutines — the
// engine is immutable and must be race-free (run under -race in CI).
func TestHTTPConcurrentRequests(t *testing.T) {
	srv, engine, ss := testServer(t)
	want := make([]Prediction, 16)
	for i := range want {
		req := engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), ss.Fact.Row(i))
		p, err := engine.Predict(req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 8; i++ {
				row := (g*8 + i) % 16
				_, body := postJSONQuiet(srv.URL+"/predict", map[string]any{"input": inputObject(engine, ss.Fact.Row(row))})
				var got predictResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- err
					return
				}
				if got.Prediction != want[row].Class {
					errs <- fmt.Errorf("row %d: prediction %d, want %d", row, got.Prediction, want[row].Class)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func postJSONQuiet(url string, body any) (*http.Response, []byte) {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}
