package serve

import (
	"net/http"

	"repro/internal/obs"
)

// Metrics is one registry's serving telemetry. Every Registry (and so every
// Server) owns a private obs.Registry — tests build servers freely without
// tripping duplicate-registration panics — and the /metrics endpoint renders
// it next to obs.Default (storage counters, training spans), so one scrape
// covers all three layers.
//
// Everything here obeys the hot-path contract: each metric is resolved to a
// concrete pointer at construction, and recording is a handful of atomic adds
// plus µs-scale clock reads at HTTP handler granularity. Nothing times inside
// the ~16ns factorized score itself.
type Metrics struct {
	// Obs is the backing registry; Values() is /stats' data source and
	// WritePrometheus /metrics', so the two surfaces can never disagree.
	Obs *obs.Registry

	reqPredict *obs.Counter
	reqBatch   *obs.Counter

	// Structured errors by HTTP status — the codes fail() actually emits,
	// resolved by switch, never by map.
	err400, err404, err405, err409, err413, err429, err500, errOther *obs.Counter

	// Robustness events: requests shed by the admission gate (every one also
	// counted under err429) and handler panics converted to structured 500s.
	shed   *obs.Counter
	panics *obs.Counter

	// Per-endpoint request latency, total plus decode/score/encode phases.
	// Queue wait (coalescer residency) is observed separately per batch.
	predictTotal, predictDecode, predictScore, predictEncode *obs.Histogram
	batchTotal, batchDecode, batchScore, batchEncode         *obs.Histogram

	// Coalescer behavior: time a batch stays open, how full it got, and why
	// it flushed.
	coalWait                          *obs.Histogram
	coalFill                          *obs.Histogram
	flushFull, flushWindow, flushSwap *obs.Counter

	// Registry lifecycle events.
	swaps, rollbacks *obs.Counter

	// batchMax mirrors the server's high-water batch length as a gauge.
	batchMax *obs.Gauge
}

func newMetrics() *Metrics {
	r := obs.NewRegistry()
	h := func(name, help string) *obs.Histogram { return r.NewHistogram(name, help) }
	c := func(name, help string) *obs.Counter { return r.NewCounter(name, help) }
	return &Metrics{
		Obs: r,

		reqPredict: c(`hamlet_http_requests_total{endpoint="predict"}`, "requests by endpoint"),
		reqBatch:   c(`hamlet_http_requests_total{endpoint="predict_batch"}`, "requests by endpoint"),

		err400:   c(`hamlet_http_errors_total{code="400"}`, "structured errors by HTTP status"),
		err404:   c(`hamlet_http_errors_total{code="404"}`, "structured errors by HTTP status"),
		err405:   c(`hamlet_http_errors_total{code="405"}`, "structured errors by HTTP status"),
		err409:   c(`hamlet_http_errors_total{code="409"}`, "structured errors by HTTP status"),
		err413:   c(`hamlet_http_errors_total{code="413"}`, "structured errors by HTTP status"),
		err429:   c(`hamlet_http_errors_total{code="429"}`, "structured errors by HTTP status"),
		err500:   c(`hamlet_http_errors_total{code="500"}`, "structured errors by HTTP status"),
		errOther: c(`hamlet_http_errors_total{code="other"}`, "structured errors by HTTP status"),

		shed: c("hamlet_requests_shed_total",
			"requests rejected 429 by the bounded in-flight admission gate"),
		panics: c("hamlet_panics_recovered_total",
			"handler panics recovered into structured 500 responses"),

		predictTotal:  h(`hamlet_http_request_ns{endpoint="predict"}`, "request wall time, nanoseconds"),
		predictDecode: h(`hamlet_http_phase_ns{endpoint="predict",phase="decode"}`, "read body + JSON parse + input layout"),
		predictScore:  h(`hamlet_http_phase_ns{endpoint="predict",phase="score"}`, "engine scoring (includes any coalescer wait)"),
		predictEncode: h(`hamlet_http_phase_ns{endpoint="predict",phase="encode"}`, "response encode + write"),
		batchTotal:    h(`hamlet_http_request_ns{endpoint="predict_batch"}`, "request wall time, nanoseconds"),
		batchDecode:   h(`hamlet_http_phase_ns{endpoint="predict_batch",phase="decode"}`, "read body + JSON parse + input layout"),
		batchScore:    h(`hamlet_http_phase_ns{endpoint="predict_batch",phase="score"}`, "engine scoring"),
		batchEncode:   h(`hamlet_http_phase_ns{endpoint="predict_batch",phase="encode"}`, "response encode + write"),

		coalWait: h("hamlet_coalescer_wait_ns", "batch residency: open to flush"),
		coalFill: h("hamlet_coalescer_batch_fill", "requests per flushed batch"),
		flushFull: c(`hamlet_coalescer_flushes_total{reason="full"}`,
			"batch flushes by trigger"),
		flushWindow: c(`hamlet_coalescer_flushes_total{reason="window"}`,
			"batch flushes by trigger"),
		flushSwap: c(`hamlet_coalescer_flushes_total{reason="swap"}`,
			"batch flushes by trigger"),

		swaps:     c(`hamlet_registry_transitions_total{kind="swap"}`, "slot version transitions"),
		rollbacks: c(`hamlet_registry_transitions_total{kind="rollback"}`, "slot version transitions"),

		batchMax: r.NewGauge("hamlet_http_batch_max", "largest /predict_batch input count seen"),
	}
}

// requestsTotal and errorsTotal fold the labeled counters back into the
// scalar totals /stats reports — derived from the exposition's own series,
// so the two surfaces cannot drift.
func (m *Metrics) requestsTotal() uint64 {
	return m.reqPredict.Value() + m.reqBatch.Value()
}

func (m *Metrics) errorsTotal() uint64 {
	return m.err400.Value() + m.err404.Value() + m.err405.Value() +
		m.err409.Value() + m.err413.Value() + m.err429.Value() +
		m.err500.Value() + m.errOther.Value()
}

// errCounter maps an HTTP status to its structured-error counter.
func (m *Metrics) errCounter(code int) *obs.Counter {
	switch code {
	case http.StatusBadRequest:
		return m.err400
	case http.StatusNotFound:
		return m.err404
	case http.StatusMethodNotAllowed:
		return m.err405
	case http.StatusConflict:
		return m.err409
	case http.StatusRequestEntityTooLarge:
		return m.err413
	case http.StatusTooManyRequests:
		return m.err429
	case http.StatusInternalServerError:
		return m.err500
	default:
		return m.errOther
	}
}
