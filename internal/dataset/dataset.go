// Package dataset generates synthetic stand-ins for the seven real-world
// star-schema datasets of the paper's Table 1 (Expedia, Movies, Yelp,
// Walmart, LastFM, Books, Flights).
//
// Substitution note (see DESIGN.md §2): the originals are Kaggle/GroupLens/
// openflights/last.fm dumps we cannot ship. The paper's §5 analysis
// attributes every observed JoinAll/NoJoin/NoFK effect to four controllable
// properties — the FD FK → X_R, the tuple ratio n_S/n_R, where the true
// distribution lives, and FK skew. Each generator therefore reproduces its
// dataset's *shape*: the number of dimension tables q, home/foreign feature
// counts d_S/d_R, the tuple ratio of every dimension table (Table 1's
// column), open-domain FKs where the paper marks them N/A, and a planted
// distribution with two kinds of per-dimension signal:
//
//   - latent signal, carried by the dimension row identity itself and NOT
//     visible in X_R — only the FK can capture it (this is why NoFK loses
//     badly on Flights/LastFM/Books in the paper);
//   - feature signal, carried by X_R — recoverable through the FK only when
//     the tuple ratio is high enough (this is why Yelp's users table, ratio
//     2.5, makes NoJoin drop).
//
// The Scale parameter shrinks n_S and every n_R together, preserving all
// tuple ratios, so the full study runs at laptop scale.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/relational"
	"repro/internal/rng"
)

// DimSpec describes one dimension table of a generated star schema.
type DimSpec struct {
	Name string
	// NR is the unscaled cardinality from Table 1.
	NR int
	// DR is the number of foreign feature columns.
	DR int
	// Card is the per-feature domain size (foreign features).
	Card int
	// LatentW weights the dimension's hidden per-row signal (visible only
	// through FK).
	LatentW float64
	// FeatW weights the signal carried by the first foreign feature.
	FeatW float64
	// Open marks the FK as open-domain (unusable as a feature; the paper's
	// N/A rows).
	Open bool
}

// Spec describes one generated dataset.
type Spec struct {
	Name string
	// NS is the unscaled fact cardinality from Table 1.
	NS int
	// DS is the number of home features.
	DS int
	// HomeCard is the per-feature domain size for home features.
	HomeCard int
	// HomeW weights the signal of the first home feature (0 when DS == 0).
	HomeW float64
	// Noise is the standard deviation of the Gaussian perturbation added to
	// the decision score; larger values lower all accuracies.
	Noise float64
	Dims  []DimSpec
}

// Specs returns the seven datasets in the paper's Table 1 order with the
// original cardinalities. Signal weights are calibrated so the generated
// data reproduces the paper's qualitative results (see package comment).
func Specs() []Spec {
	return []Spec{
		{
			Name: "Expedia", NS: 942142, DS: 1, HomeCard: 4, HomeW: 0.4, Noise: 0.9,
			Dims: []DimSpec{
				{Name: "Hotels", NR: 11939, DR: 8, Card: 4, LatentW: 0.8, FeatW: 0.5},
				{Name: "Searches", NR: 37021, DR: 14, Card: 4, LatentW: 0, FeatW: 0.2, Open: true},
			},
		},
		{
			Name: "Movies", NS: 1000209, DS: 0, Noise: 0.8,
			Dims: []DimSpec{
				{Name: "Users", NR: 6040, DR: 4, Card: 4, LatentW: 0.7, FeatW: 0.4},
				{Name: "Movies", NR: 3706, DR: 21, Card: 4, LatentW: 0.7, FeatW: 0.4},
			},
		},
		{
			Name: "Yelp", NS: 215879, DS: 0, Noise: 0.7,
			Dims: []DimSpec{
				{Name: "Businesses", NR: 11535, DR: 32, Card: 4, LatentW: 0.5, FeatW: 0.5},
				// Users: tuple ratio 2.5, strong X_R signal, no latent —
				// the one table that is NOT safe to avoid.
				{Name: "Users", NR: 43873, DR: 6, Card: 4, LatentW: 0, FeatW: 1.6},
			},
		},
		{
			Name: "Walmart", NS: 421570, DS: 1, HomeCard: 8, HomeW: 0.8, Noise: 0.5,
			Dims: []DimSpec{
				{Name: "Stores", NR: 2340, DR: 9, Card: 4, LatentW: 0.9, FeatW: 0.4},
				{Name: "Indicators", NR: 45, DR: 2, Card: 4, LatentW: 0.4, FeatW: 0.4},
			},
		},
		{
			Name: "LastFM", NS: 343747, DS: 0, Noise: 0.6,
			Dims: []DimSpec{
				{Name: "Users", NR: 4099, DR: 7, Card: 4, LatentW: 1.0, FeatW: 0.3},
				{Name: "Artists", NR: 50000, DR: 4, Card: 4, LatentW: 0.5, FeatW: 0.3},
			},
		},
		{
			Name: "Books", NS: 253120, DS: 0, Noise: 0.9,
			Dims: []DimSpec{
				{Name: "Readers", NR: 27876, DR: 2, Card: 4, LatentW: 0.6, FeatW: 0.3},
				{Name: "Books", NR: 49972, DR: 4, Card: 4, LatentW: 0.4, FeatW: 0.3},
			},
		},
		{
			Name: "Flights", NS: 66548, DS: 20, HomeCard: 4, HomeW: 0.5, Noise: 0.4,
			Dims: []DimSpec{
				{Name: "Airlines", NR: 540, DR: 5, Card: 4, LatentW: 1.2, FeatW: 0.4},
				{Name: "SrcAirports", NR: 3167, DR: 6, Card: 4, LatentW: 0.6, FeatW: 0.3},
				{Name: "DstAirports", NR: 3170, DR: 6, Card: 4, LatentW: 0.6, FeatW: 0.3},
			},
		},
	}
}

// SpecByName finds a dataset spec by (case-sensitive) name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Generate materializes the star schema at the given scale (e.g. 16 divides
// every cardinality by 16) using the seed. Minimum cardinalities are clamped
// so tiny scales stay valid.
func Generate(spec Spec, scale int, seed uint64) (*relational.StarSchema, error) {
	if scale < 1 {
		return nil, fmt.Errorf("dataset: scale must be >= 1, got %d", scale)
	}
	r := rng.New(seed)
	nS := maxInt(spec.NS/scale, 64)

	type dimState struct {
		spec   DimSpec
		nR     int
		table  *relational.Table
		latent []float64 // per-row latent signal in {-1,+1}
		feat   []float64 // per-row X_R-derived signal in {-1,+1}
		keyDom *relational.Domain
	}
	states := make([]*dimState, len(spec.Dims))
	for di, d := range spec.Dims {
		nR := maxInt(d.NR/scale, 8)
		if nR > nS {
			nR = nS
		}
		st := &dimState{spec: d, nR: nR}
		st.keyDom = relational.NewDomain(d.Name+"ID", nR)
		cols := []relational.Column{{Name: d.Name + "ID", Kind: relational.KindPrimaryKey, Domain: st.keyDom}}
		featDom := relational.NewDomain(d.Name+"Feat", d.Card)
		for j := 0; j < d.DR; j++ {
			cols = append(cols, relational.Column{
				Name: fmt.Sprintf("%sF%d", d.Name, j), Kind: relational.KindFeature, Domain: featDom,
			})
		}
		st.table = relational.NewTable(d.Name, relational.MustSchema(cols...), nR)
		st.latent = make([]float64, nR)
		st.feat = make([]float64, nR)
		w := len(cols)
		block := make([]relational.Value, nR*w)
		for k := 0; k < nR; k++ {
			row := block[k*w : (k+1)*w]
			row[0] = relational.Value(k)
			for j := 0; j < d.DR; j++ {
				row[1+j] = relational.Value(r.Intn(d.Card))
			}
			st.latent[k] = pm(r.Bool())
			// Feature signal: derived from the first foreign feature so the
			// signal is visible in X_R (and, via the FD, through FK).
			if d.DR > 0 {
				st.feat[k] = pm(int(row[1]) < d.Card/2)
			}
		}
		st.table.MustAppendRows(block)
		states[di] = st
	}

	fcols := []relational.Column{{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)}}
	homeDom := relational.NewDomain("HomeFeat", maxInt(spec.HomeCard, 2))
	for j := 0; j < spec.DS; j++ {
		fcols = append(fcols, relational.Column{Name: fmt.Sprintf("Home%d", j), Kind: relational.KindFeature, Domain: homeDom})
	}
	for di, d := range spec.Dims {
		fcols = append(fcols, relational.Column{
			Name: "FK_" + d.Name, Kind: relational.KindForeignKey,
			Domain: states[di].keyDom, Refs: d.Name, Open: d.Open,
		})
	}
	fact := relational.NewTable(spec.Name, relational.MustSchema(fcols...), nS)
	fact.Reserve(nS)
	// Rows are staged through the bulk-ingestion path: per-column domain
	// validation, bounded staging buffer.
	bulk := relational.NewBulkAppender(fact, nS)
	frow := make([]relational.Value, len(fcols))
	for i := 0; i < nS; i++ {
		score := r.NormFloat64() * spec.Noise
		for j := 0; j < spec.DS; j++ {
			v := relational.Value(r.Intn(homeDom.Size))
			frow[1+j] = v
			if j == 0 {
				score += spec.HomeW * pm(int(v) < homeDom.Size/2)
			}
		}
		at := 1 + spec.DS
		for di := range spec.Dims {
			st := states[di]
			fk := r.Intn(st.nR)
			frow[at+di] = relational.Value(fk)
			score += st.spec.LatentW*st.latent[fk] + st.spec.FeatW*st.feat[fk]
		}
		if score > 0 {
			frow[0] = 1
		} else {
			frow[0] = 0
		}
		bulk.MustAppend(frow)
	}
	bulk.MustFlush()
	dims := make([]*relational.Table, len(states))
	for i, st := range states {
		dims[i] = st.table
	}
	return relational.NewStarSchema(fact, dims...)
}

// Stats describes a generated dataset the way Table 1 does.
type Stats struct {
	Name string
	NS   int
	DS   int
	Q    int
	Dims []DimStats
}

// DimStats is the per-dimension block of Table 1.
type DimStats struct {
	Name string
	NR   int
	DR   int
	// TupleRatio is 50% × n_S / n_R as the paper reports (the training
	// fraction of the tuple ratio).
	TupleRatio float64
	Open       bool
}

// Describe computes the Table 1 row for a generated star schema.
func Describe(name string, ss *relational.StarSchema) Stats {
	st := Stats{
		Name: name,
		NS:   ss.Fact.NumRows(),
		DS:   len(ss.Fact.Schema().ColumnsOfKind(relational.KindFeature)),
		Q:    len(ss.DimensionNames()),
	}
	for _, fkCol := range ss.Fact.Schema().ColumnsOfKind(relational.KindForeignKey) {
		c := ss.Fact.Schema().Cols[fkCol]
		dim := ss.Dimensions[c.Refs]
		tr, _ := ss.TupleRatio(c.Refs)
		st.Dims = append(st.Dims, DimStats{
			Name:       c.Refs,
			NR:         dim.NumRows(),
			DR:         len(dim.Schema().ColumnsOfKind(relational.KindFeature)),
			TupleRatio: 0.5 * tr,
			Open:       c.Open,
		})
	}
	return st
}

// pm maps a boolean to ±1.
func pm(b bool) float64 {
	if b {
		return 1
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// roundRatio is used by tests to compare tuple ratios robustly.
func roundRatio(x float64) float64 { return math.Round(x*10) / 10 }
