package dataset

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/tree"
)

func TestSpecsCoverTableOne(t *testing.T) {
	specs := Specs()
	if len(specs) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(specs))
	}
	want := map[string]struct {
		q  int
		ds int
	}{
		"Expedia": {2, 1}, "Movies": {2, 0}, "Yelp": {2, 0},
		"Walmart": {2, 1}, "LastFM": {2, 0}, "Books": {2, 0},
		"Flights": {3, 20},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Name)
		}
		if len(s.Dims) != w.q {
			t.Fatalf("%s: q = %d, want %d", s.Name, len(s.Dims), w.q)
		}
		if s.DS != w.ds {
			t.Fatalf("%s: dS = %d, want %d", s.Name, s.DS, w.ds)
		}
	}
	if _, err := SpecByName("Yelp"); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestGenerateValidStarSchema(t *testing.T) {
	for _, s := range Specs() {
		ss, err := Generate(s, 256, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		joined, err := relational.Join(ss)
		if err != nil {
			t.Fatalf("%s: join: %v", s.Name, err)
		}
		if err := relational.VerifyKFKFDs(joined, ss); err != nil {
			t.Fatalf("%s: FD: %v", s.Name, err)
		}
		// Class balance must not be degenerate.
		pos := 0
		for i := 0; i < ss.Fact.NumRows(); i++ {
			if ss.Fact.At(i, 0) == 1 {
				pos++
			}
		}
		frac := float64(pos) / float64(ss.Fact.NumRows())
		if frac < 0.15 || frac > 0.85 {
			t.Fatalf("%s: degenerate class balance %v", s.Name, frac)
		}
	}
}

func TestTupleRatiosPreservedUnderScale(t *testing.T) {
	// Table 1's Yelp users ratio is 2.5 (with the 50% training factor).
	spec, err := SpecByName("Yelp")
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []int{16, 64} {
		ss, err := Generate(spec, scale, 2)
		if err != nil {
			t.Fatal(err)
		}
		st := Describe("Yelp", ss)
		var usersRatio float64
		for _, d := range st.Dims {
			if d.Name == "Users" {
				usersRatio = d.TupleRatio
			}
		}
		if math.Abs(usersRatio-2.5) > 0.4 {
			t.Fatalf("scale %d: users tuple ratio %v, want ≈2.5", scale, usersRatio)
		}
	}
}

func TestExpediaOpenFK(t *testing.T) {
	spec, _ := SpecByName("Expedia")
	ss, err := Generate(spec, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := Describe("Expedia", ss)
	foundOpen := false
	for _, d := range st.Dims {
		if d.Name == "Searches" && d.Open {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Fatal("Expedia's Searches FK must be open-domain (Table 1's N/A)")
	}
	// The open FK must not appear in any feature view.
	joined, err := relational.Join(ss)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin} {
		for _, c := range ml.ViewColumns(joined, v, nil) {
			col := joined.Schema().Cols[c]
			if col.Kind == relational.KindForeignKey && col.Refs == "Searches" {
				t.Fatalf("open FK leaked into view %v", v)
			}
		}
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Specs()[0], 0, 1); err == nil {
		t.Fatal("scale 0 must error")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	spec, _ := SpecByName("Walmart")
	a, err := Generate(spec, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fact.NumRows() != b.Fact.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < a.Fact.NumRows(); i++ {
		for j := 0; j < a.Fact.Schema().Width(); j++ {
			if a.Fact.At(i, j) != b.Fact.At(i, j) {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestPlantedSignalsAreLearnable(t *testing.T) {
	// A gini tree on JoinAll must beat the majority baseline comfortably on
	// a moderately scaled Flights (strong latent signal).
	spec, _ := SpecByName("Flights")
	ss, err := Generate(spec, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := relational.Join(ss)
	if err != nil {
		t.Fatal(err)
	}
	targetCol := joined.Schema().ColumnsOfKind(relational.KindTarget)[0]
	ds, err := ml.ViewDataset(joined, targetCol, ml.JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	maj := &ml.ConstantClassifier{}
	_ = maj.Fit(ds)
	if ml.Accuracy(tr, ds) < ml.Accuracy(maj, ds)+0.1 {
		t.Fatalf("planted signal not learnable: tree %v vs majority %v",
			ml.Accuracy(tr, ds), ml.Accuracy(maj, ds))
	}
}

func TestRoundRatio(t *testing.T) {
	if roundRatio(2.54) != 2.5 || roundRatio(2.55) != 2.6 {
		t.Fatal("roundRatio wrong")
	}
}
