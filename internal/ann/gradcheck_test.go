package ann

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// lossAt computes the batch cross-entropy loss of the current parameters on
// a dataset (no regularization), used by the finite-difference check.
func lossAt(m *MLP, ds *ml.Dataset) float64 {
	loss := 0.0
	for i := 0; i < ds.NumExamples(); i++ {
		p := m.Probability(ds.Row(i))
		// Clamp for numerical safety.
		if p < 1e-12 {
			p = 1e-12
		}
		if p > 1-1e-12 {
			p = 1 - 1e-12
		}
		if ds.Label(i) == 1 {
			loss += -math.Log(p)
		} else {
			loss += -math.Log(1 - p)
		}
	}
	return loss / float64(ds.NumExamples())
}

// TestGradientDescentDecreasesLoss verifies end-to-end that training reduces
// the cross-entropy loss — the integrated consequence of correct gradients.
func TestGradientDescentDecreasesLoss(t *testing.T) {
	r := rng.New(1)
	ds := &ml.Dataset{Features: []ml.Feature{
		{Name: "a", Cardinality: 3},
		{Name: "b", Cardinality: 3},
	}}
	for i := 0; i < 200; i++ {
		a, b := r.Intn(3), r.Intn(3)
		y := int8(0)
		if (a+b)%2 == 0 {
			y = 1
		}
		ds.X = append(ds.X, relational.Value(a), relational.Value(b))
		ds.Y = append(ds.Y, y)
	}
	cfg := Config{Hidden1: 12, Hidden2: 6, LearningRate: 1e-2, Epochs: 1, BatchSize: 16, Seed: 3}

	m0 := New(cfg)
	if err := m0.Fit(ds); err != nil {
		t.Fatal(err)
	}
	after1 := lossAt(m0, ds)

	cfg.Epochs = 40
	m1 := New(cfg)
	if err := m1.Fit(ds); err != nil {
		t.Fatal(err)
	}
	after40 := lossAt(m1, ds)
	if after40 >= after1 {
		t.Fatalf("loss must fall with more epochs: 1 epoch %v vs 40 epochs %v", after1, after40)
	}
	if after40 > 0.3 {
		t.Fatalf("parity task should be nearly solved, loss %v", after40)
	}
}

// TestFiniteDifferenceGradient checks the analytic output-layer gradient
// against central finite differences on a tiny fixed network.
func TestFiniteDifferenceGradient(t *testing.T) {
	ds := &ml.Dataset{
		Features: []ml.Feature{{Name: "x", Cardinality: 2}},
		X:        []relational.Value{0, 1},
		Y:        []int8{0, 1},
	}
	cfg := Config{Hidden1: 4, Hidden2: 3, LearningRate: 1e-9, Epochs: 1, BatchSize: 2, Seed: 7}
	m := New(cfg)
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// With a vanishing learning rate the parameters are ≈ the init; compute
	// the analytic gradient of the loss w.r.t. w3[v] by hand:
	// dL/dw3[v] = mean_i (p_i − y_i) · z2_i[v]; compare to central FD.
	const eps = 1e-5
	for v := 0; v < cfg.Hidden2; v++ {
		orig := m.w3[v]
		m.w3[v] = orig + eps
		lp := lossAt(m, ds)
		m.w3[v] = orig - eps
		lm := lossAt(m, ds)
		m.w3[v] = orig
		fd := (lp - lm) / (2 * eps)

		// Analytic gradient at the current parameters.
		analytic := 0.0
		for i := 0; i < ds.NumExamples(); i++ {
			row := ds.Row(i)
			p := m.Probability(row)
			// Recompute z2[v] for this row: forward pass up to layer 2.
			z2v := m.hiddenActivation(row, v)
			analytic += (p - float64(ds.Label(i))) * z2v
		}
		analytic /= float64(ds.NumExamples())
		if math.Abs(fd-analytic) > 1e-6*(1+math.Abs(fd)) {
			t.Fatalf("w3[%d]: finite diff %v vs analytic %v", v, fd, analytic)
		}
	}
}
