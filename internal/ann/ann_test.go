package ann

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

// smallCfg uses a reduced network so tests stay fast; the architecture is
// still two ReLU layers + sigmoid output, as in the paper.
func smallCfg(seed uint64) Config {
	return Config{Hidden1: 16, Hidden2: 8, LearningRate: 1e-2, Epochs: 40, BatchSize: 16, Seed: seed}
}

func TestFitRejectsEmpty(t *testing.T) {
	if err := New(smallCfg(1)).Fit(&ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected error")
	}
}

func TestLearnsLinearSignal(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 3)}
	r := rng.New(2)
	for i := 0; i < 400; i++ {
		x0 := relational.Value(r.Intn(2))
		ds.X = append(ds.X, x0, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, int8(x0))
	}
	m := New(smallCfg(3))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc < 0.99 {
		t.Fatalf("separable accuracy %v, want ~1", acc)
	}
}

func TestLearnsXOR(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 2)}
	pts := [][]relational.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []int8{0, 1, 1, 0}
	for rep := 0; rep < 40; rep++ {
		for i, p := range pts {
			ds.X = append(ds.X, p...)
			ds.Y = append(ds.Y, ys[i])
		}
	}
	m := New(smallCfg(5))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc != 1.0 {
		t.Fatalf("XOR accuracy %v, want 1.0", acc)
	}
}

func TestFKMemorization(t *testing.T) {
	// The mechanism behind the paper's ANN result: the net can memorize a
	// moderate FK domain through its embedding-like first layer.
	r := rng.New(7)
	const nR = 30
	labelOf := make([]int8, nR)
	for i := range labelOf {
		labelOf[i] = int8(r.Intn(2))
	}
	labelOf[0], labelOf[1] = 0, 1
	ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: nR, IsFK: true}}}
	for i := 0; i < nR*10; i++ {
		fk := relational.Value(i % nR)
		ds.X = append(ds.X, fk)
		ds.Y = append(ds.Y, labelOf[fk])
	}
	m := New(smallCfg(9))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for v := 0; v < nR; v++ {
		if m.Predict([]relational.Value{relational.Value(v)}) != labelOf[v] {
			wrong++
		}
	}
	if wrong > 1 {
		t.Fatalf("FK memorization failed on %d/%d values", wrong, nR)
	}
}

func TestProbabilityRange(t *testing.T) {
	ds := &ml.Dataset{Features: feats(3)}
	r := rng.New(11)
	for i := 0; i < 60; i++ {
		ds.X = append(ds.X, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, int8(r.Intn(2)))
	}
	m := New(smallCfg(13))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		p := m.Probability([]relational.Value{relational.Value(v)})
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	ds := &ml.Dataset{Features: feats(4)}
	r := rng.New(15)
	for i := 0; i < 80; i++ {
		v := relational.Value(r.Intn(4))
		ds.X = append(ds.X, v)
		ds.Y = append(ds.Y, int8(int(v)%2))
	}
	fit := func() float64 {
		m := New(smallCfg(17))
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		return m.Probability(ds.Row(0))
	}
	if fit() != fit() {
		t.Fatal("same seed must reproduce the model")
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2)}
	r := rng.New(19)
	for i := 0; i < 200; i++ {
		x := relational.Value(r.Intn(2))
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, int8(x))
	}
	norm := func(l2 float64) float64 {
		cfg := smallCfg(21)
		cfg.L2 = l2
		m := New(cfg)
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, w := range m.w1 {
			s += w * w
		}
		for _, w := range m.w2 {
			s += w * w
		}
		return s
	}
	if norm(0.1) >= norm(0) {
		t.Fatal("L2 regularization should shrink weight norms")
	}
}

func TestColumnarMatchesRowPath(t *testing.T) {
	// The columnar epoch path (one ScanFeature pass into the active-index
	// matrix) must produce a bit-identical network to the historical
	// example-at-a-time gathers: identical indices and labels feed an
	// unchanged forward/backward sequence.
	r := rng.New(41)
	base := &ml.Dataset{Features: feats(2, 5, 3)}
	for i := 0; i < 400; i++ {
		a, b, c := r.Intn(2), r.Intn(5), r.Intn(3)
		base.X = append(base.X, relational.Value(a), relational.Value(b), relational.Value(c))
		base.Y = append(base.Y, int8((a+c)%2))
	}
	sub := make([]int, 250)
	for i := range sub {
		sub[i] = r.Intn(400)
	}
	for name, ds := range map[string]*ml.Dataset{"dense": base, "view": base.Subset(sub)} {
		cfg := smallCfg(43)
		rowCfg := cfg
		rowCfg.RowAtATime = true
		row, col := New(rowCfg), New(cfg)
		if err := row.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if err := col.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if row.b3 != col.b3 {
			t.Fatalf("%s: output bias diverged: %v vs %v", name, row.b3, col.b3)
		}
		for layer, pair := range map[string][2][]float64{
			"w1": {row.w1, col.w1}, "b1": {row.b1, col.b1},
			"w2": {row.w2, col.w2}, "b2": {row.b2, col.b2},
			"w3": {row.w3, col.w3},
		} {
			for i := range pair[0] {
				if pair[0][i] != pair[1][i] {
					t.Fatalf("%s: %s[%d] diverged: %v vs %v", name, layer, i, pair[0][i], pair[1][i])
				}
			}
		}
		buf := make([]relational.Value, ds.NumFeatures())
		for i := 0; i < ds.NumExamples(); i++ {
			rowi := ds.RowInto(buf, i)
			if row.Probability(rowi) != col.Probability(rowi) {
				t.Fatalf("%s: probability diverged on example %d", name, i)
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := New(Config{})
	if m.cfg.Hidden1 != 256 || m.cfg.Hidden2 != 64 {
		t.Fatalf("paper architecture defaults not applied: %+v", m.cfg)
	}
	if m.Name() != "ANN(MLP)" {
		t.Fatal("name wrong")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	// The batched GEMM forward pass must classify exactly as the per-row
	// Probability path: the dense sums only add exact ±0 terms where the
	// scalar loops skip inactive units, so classes agree example for
	// example (and probabilities bit for bit).
	r := rng.New(83)
	ds := &ml.Dataset{Features: feats(3, 5)}
	for i := 0; i < 400; i++ {
		a, b := r.Intn(3), r.Intn(5)
		ds.X = append(ds.X, relational.Value(a), relational.Value(b))
		ds.Y = append(ds.Y, int8((a+b)%2))
	}
	m := New(smallCfg(89))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	got := m.PredictBatch(ds)
	buf := make([]relational.Value, ds.NumFeatures())
	for i := range got {
		if want := m.Predict(ds.RowInto(buf, i)); got[i] != want {
			t.Fatalf("example %d: batch class %d != Predict %d", i, got[i], want)
		}
	}
}
