package ann

import "repro/internal/obs"

// epochSpan times each MLP training epoch on both the batched and the
// row-at-a-time path — same phase name, so a scrape compares them directly.
var epochSpan = obs.TrainSpan("ann_epoch", "one MLP training epoch")
