// Package ann implements the multilayer perceptron the paper trains through
// Keras/TensorFlow (§3.2): two hidden layers of 256 and 64 ReLU units, a
// sigmoid output with cross-entropy loss, L2 regularization on layer
// weights, and the Adam optimizer with tunable learning rate.
//
// Inputs are one-hot encoded categorical vectors. Rather than materialize a
// (possibly enormous, FK-domain-sized) dense input, the first layer treats
// its weight matrix as an embedding table: the forward pass sums one row per
// active (feature, value) pair, and the backward pass updates only those
// rows. Adam's per-parameter state for the first layer is updated lazily
// with the standard sparse-Adam correction (decay applied on touch).
package ann

import (
	"fmt"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// Config holds MLP hyper-parameters. The paper's grid tunes L2 ∈
// {1e-4, 1e-3, 1e-2} and LearningRate ∈ {1e-3, 1e-2, 1e-1}; Adam moment
// decays stay at their defaults.
type Config struct {
	Hidden1 int     // default 256
	Hidden2 int     // default 64
	L2      float64 // weight decay coefficient
	// LearningRate is Adam's step size (default 1e-3).
	LearningRate float64
	// Epochs over the training set (default 20).
	Epochs int
	// BatchSize for mini-batch updates (default 32).
	BatchSize int
	// Seed drives weight init and shuffling.
	Seed uint64
	// RowAtATime forces the historical example-at-a-time access path (one
	// row gather + Encoder.ActiveIndices per example per epoch) instead of
	// the batched column-at-a-time path, which scans every feature once per
	// Fit into a dense active-index matrix and amortizes that pass over all
	// epochs. Forward/backward arithmetic is unchanged, so the fitted
	// network is bit-identical; the flag exists for A/B benchmarks and
	// equivalence tests.
	RowAtATime bool
	// FusedAdam selects the approximate dense-Adam optimizer: parameters,
	// gradients, and Adam moments live in two contiguous slabs ([w1|w2|w3]
	// and [b1|b2|b3]) and every mini-batch updates each slab in a single
	// fused mat.AdamStep pass, with the input layer's gradient accumulated
	// densely instead of as per-row sparse chains. This is textbook dense
	// Adam: an embedding row untouched by the batch still sees moment decay
	// and L2 shrinkage, and a row active for several batch examples is
	// updated once with the summed gradient rather than once per example —
	// so the optimization trajectory diverges from the bit-identical
	// default and the path is gated by the accuracy-level equivalence
	// harness (core.VerifyAccuracy), not bit-equality. Implies the batched
	// epoch loop (RowAtATime is ignored). Default off.
	FusedAdam bool
}

func (c *Config) fillDefaults() {
	if c.Hidden1 <= 0 {
		c.Hidden1 = 256
	}
	if c.Hidden2 <= 0 {
		c.Hidden2 = 64
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 1e-3
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
}

// adamState carries first and second moment estimates for one parameter
// block.
type adamState struct {
	m, v []float64
}

func newAdam(n int) adamState {
	return adamState{m: make([]float64, n), v: make([]float64, n)}
}

const (
	beta1 = 0.9
	beta2 = 0.999
	eps   = 1e-8
)

// MLP is the multilayer perceptron classifier.
type MLP struct {
	cfg Config
	enc *ml.Encoder

	// w1 is the sparse input layer: one row of Hidden1 weights per one-hot
	// dimension. b1, w2, b2, w3, b3 are dense.
	w1 []float64 // dims × h1
	b1 []float64 // h1
	w2 []float64 // h1 × h2
	b2 []float64 // h2
	w3 []float64 // h2
	b3 float64

	a1, a2       adamState
	a1b, a2b, a3 adamState
	a3b          adamState
	step         int

	// slabs is non-nil only while fitting with Config.FusedAdam: the
	// contiguous parameter/gradient/moment storage the fused updates sweep.
	slabs *fusedSlabs
}

// fusedSlabs is the Config.FusedAdam storage layout: all weight blocks in
// one contiguous slab ([w1|w2|w3], L2-regularized) and all biases in another
// ([b1|b2|b3], no L2), each paired with same-shape gradient and Adam moment
// slabs so one mat.AdamStep call per slab updates the whole network.
type fusedSlabs struct {
	w, gw, mw, vw []float64 // dims·h1 + h1·h2 + h2
	b, gb, mb, vb []float64 // h1 + h2 + 1
}

// New returns an unfitted MLP.
func New(cfg Config) *MLP {
	cfg.fillDefaults()
	return &MLP{cfg: cfg}
}

// Name implements ml.Named.
func (m *MLP) Name() string { return "ANN(MLP)" }

// Fit trains the network with mini-batch Adam.
//
// The default path processes each mini-batch as dense linear algebra over
// the one-pass active-index matrix (ml.ScanActiveIndices): the forward pass
// is one mat.SpGemmOneHot (the sparse input layer) plus one mat.Gemm and one
// mat.Gemv, and the backward pass accumulates the weight gradients through
// mat.GemmTA/GemvT with per-element mat.Dot for the ReLU-masked deltas. The
// kernels keep every output element's accumulation sequential and in the
// same order as the historical example-at-a-time loops (mat's bit-identity
// contract), and the shared applyAdam step is untouched, so the fitted
// network is bit-identical to the historical path, which Config.RowAtATime
// restores.
func (m *MLP) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("ann: empty training set")
	}
	m.enc = ml.NewEncoder(train.Features)
	h1, h2 := m.cfg.Hidden1, m.cfg.Hidden2
	dims := m.enc.Dims
	r := rng.New(m.cfg.Seed)

	// He initialization scaled by fan-in; the effective fan-in of the
	// sparse input layer is the number of features (active one-hots).
	d := train.NumFeatures()
	initRow := func(w []float64, fanIn int) {
		s := math.Sqrt(2 / float64(fanIn))
		for i := range w {
			w[i] = r.NormFloat64() * s
		}
	}
	if m.cfg.FusedAdam {
		// Fused storage: the weight blocks are slices of one contiguous
		// slab (likewise the biases), so the fused optimizer sweeps each
		// slab in a single pass while the forward/backward code reads the
		// blocks through the same m.w1/m.w2/… names.
		nw := dims*h1 + h1*h2 + h2
		nb := h1 + h2 + 1
		s := &fusedSlabs{
			w: make([]float64, nw), gw: make([]float64, nw),
			mw: make([]float64, nw), vw: make([]float64, nw),
			b: make([]float64, nb), gb: make([]float64, nb),
			mb: make([]float64, nb), vb: make([]float64, nb),
		}
		m.slabs = s
		m.w1 = s.w[:dims*h1]
		m.w2 = s.w[dims*h1 : dims*h1+h1*h2]
		m.w3 = s.w[dims*h1+h1*h2:]
		m.b1 = s.b[:h1]
		m.b2 = s.b[h1 : h1+h2]
	} else {
		m.slabs = nil
		m.w1 = make([]float64, dims*h1)
		m.b1 = make([]float64, h1)
		m.w2 = make([]float64, h1*h2)
		m.b2 = make([]float64, h2)
		m.w3 = make([]float64, h2)
		m.a1 = newAdam(dims * h1)
		m.a1b = newAdam(h1)
		m.a2 = newAdam(h1 * h2)
		m.a2b = newAdam(h2)
		m.a3 = newAdam(h2)
		m.a3b = newAdam(1)
	}
	// Same RNG draw order on both storage layouts, so the fused path starts
	// from bit-identical initial weights and any divergence is the
	// optimizer's alone.
	initRow(m.w1, d)
	initRow(m.w2, h1)
	initRow(m.w3, h2)
	m.b3 = 0
	m.step = 0

	n := train.NumExamples()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	if m.cfg.RowAtATime && !m.cfg.FusedAdam {
		m.fitRows(train, r, order)
	} else {
		m.fitBatched(train, r, order)
	}
	return nil
}

// sparseGrad is one pending input-layer update: the gradient w.r.t. one
// active embedding row. The row path copies each example's delta into a
// private slice; the batch path points every entry at its example's row of
// the delta matrix — same values either way.
type sparseGrad struct {
	row  int
	grad []float64
}

// fitRows is the historical example-at-a-time epoch loop, preserved verbatim
// as the Config.RowAtATime reference the batched path is pinned against.
func (m *MLP) fitRows(train *ml.Dataset, r *rng.RNG, order []int) {
	h1, h2 := m.cfg.Hidden1, m.cfg.Hidden2
	n := train.NumExamples()

	// exampleAt yields example ei's active one-hot indices and label through
	// per-call scratch-row gathers.
	exampleAt := ml.ExampleAccessor(train, m.enc, true)

	// Gradient accumulators reused across batches.
	gW2 := make([]float64, h1*h2)
	gB2 := make([]float64, h2)
	gW3 := make([]float64, h2)
	gB1 := make([]float64, h1)
	z1 := make([]float64, h1)
	z2 := make([]float64, h2)
	d1 := make([]float64, h1)
	d2 := make([]float64, h2)
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		epochT0 := time.Now()
		r.ShuffleInts(order)
		for at := 0; at < n; at += m.cfg.BatchSize {
			end := at + m.cfg.BatchSize
			if end > n {
				end = n
			}
			bs := float64(end - at)
			for i := range gW2 {
				gW2[i] = 0
			}
			for i := range gB2 {
				gB2[i] = 0
			}
			for i := range gW3 {
				gW3[i] = 0
			}
			for i := range gB1 {
				gB1[i] = 0
			}
			gB3 := 0.0
			var sparse []sparseGrad
			for _, ei := range order[at:end] {
				idx, y := exampleAt(ei)
				// Forward.
				copy(z1, m.b1)
				for _, k := range idx {
					w := m.w1[int(k)*h1 : (int(k)+1)*h1]
					for u := range z1 {
						z1[u] += w[u]
					}
				}
				for u := range z1 {
					if z1[u] < 0 {
						z1[u] = 0
					}
				}
				copy(z2, m.b2)
				for u := 0; u < h1; u++ {
					if z1[u] == 0 {
						continue
					}
					w := m.w2[u*h2 : (u+1)*h2]
					a := z1[u]
					for v := range z2 {
						z2[v] += a * w[v]
					}
				}
				for v := range z2 {
					if z2[v] < 0 {
						z2[v] = 0
					}
				}
				z3 := m.b3
				for v := 0; v < h2; v++ {
					z3 += z2[v] * m.w3[v]
				}
				p := sigmoid(z3)
				g3 := (p - y) / bs // dL/dz3, batch-averaged

				// Backward.
				gB3 += g3
				for v := 0; v < h2; v++ {
					gW3[v] += g3 * z2[v]
					if z2[v] > 0 {
						d2[v] = g3 * m.w3[v]
					} else {
						d2[v] = 0
					}
				}
				for u := 0; u < h1; u++ {
					d1u := 0.0
					if z1[u] > 0 {
						w := m.w2[u*h2 : (u+1)*h2]
						for v := 0; v < h2; v++ {
							d1u += d2[v] * w[v]
						}
					}
					d1[u] = d1u
				}
				for u := 0; u < h1; u++ {
					if z1[u] == 0 {
						continue
					}
					a := z1[u]
					gw := gW2[u*h2 : (u+1)*h2]
					for v := 0; v < h2; v++ {
						gw[v] += d2[v] * a
					}
				}
				for v := 0; v < h2; v++ {
					gB2[v] += d2[v]
				}
				// Input layer: gradient w.r.t. each active embedding row is
				// d1 (the one-hot activation is 1), and b1 accumulates d1
				// once per example.
				for u := range gB1 {
					gB1[u] += d1[u]
				}
				g := make([]float64, h1)
				copy(g, d1)
				for _, k := range idx {
					sparse = append(sparse, sparseGrad{row: int(k), grad: g})
				}
			}
			m.applyAdam(gW2, gB2, gW3, gB3, gB1, sparse)
		}
		epochSpan.ObserveSince(epochT0)
	}
}

// fitBatched runs the default epoch loop: each mini-batch moves through the
// network as dense matrices over the one-pass active-index materialization.
// Forward is one SpGemmOneHot (B×h1), one Gemm (B×h2), and one Gemv (B);
// backward accumulates gW3/gW2 through GemvT/GemmTA — whose per-element sums
// run over the batch in ascending example order, exactly as the historical
// loop interleaved them — and the ReLU-masked deltas come from per-element
// sequential Dots, skipping masked elements just as the row path does.
// Gradient values and fold orders are identical to fitRows (the Gemm/GemmTA
// full-dense sums only add exact ±0 products where the row path skipped
// zero activations), so the trained parameters match the row path bit for
// bit — TestColumnarMatchesRowPath pins it.
func (m *MLP) fitBatched(train *ml.Dataset, r *rng.RNG, order []int) {
	h1, h2 := m.cfg.Hidden1, m.cfg.Hidden2
	n := train.NumExamples()
	d := train.NumFeatures()
	idxMat, labels := ml.ScanActiveIndices(train, m.enc)

	B := m.cfg.BatchSize
	if B > n {
		B = n
	}
	// Batch scratch: index block, labels, activations, deltas — reused
	// across batches; slices of the leading bs rows are passed to the
	// kernels when the last batch runs short.
	bidx := make([]int32, B*d)
	yb := make([]float64, B)
	z1 := make([]float64, B*h1)
	z2 := make([]float64, B*h2)
	z3 := make([]float64, B)
	g3 := make([]float64, B)
	d2 := make([]float64, B*h2)
	d1 := make([]float64, B*h1)
	// Gradient accumulators: on the fused path they are slices of the slab
	// gradient storage (mat.AdamStep consumes and clears them in place); on
	// the default path they are the historical private buffers feeding
	// applyAdam, plus the sparse input-layer chains.
	fused := m.slabs != nil
	var gW1, gW2, gB2, gW3, gB1 []float64
	var sparse []sparseGrad
	if fused {
		s := m.slabs
		dims := m.enc.Dims
		gW1 = s.gw[:dims*h1]
		gW2 = s.gw[dims*h1 : dims*h1+h1*h2]
		gW3 = s.gw[dims*h1+h1*h2:]
		gB1 = s.gb[:h1]
		gB2 = s.gb[h1 : h1+h2]
	} else {
		gW2 = make([]float64, h1*h2)
		gB2 = make([]float64, h2)
		gW3 = make([]float64, h2)
		gB1 = make([]float64, h1)
		sparse = make([]sparseGrad, 0, B*d)
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		epochT0 := time.Now()
		r.ShuffleInts(order)
		for at := 0; at < n; at += m.cfg.BatchSize {
			end := at + m.cfg.BatchSize
			if end > n {
				end = n
			}
			bs := end - at
			bsf := float64(bs)

			// Gather the batch's active-index rows and labels in shuffled
			// order; row t of every batch matrix is example order[at+t].
			for t := 0; t < bs; t++ {
				ei := order[at+t]
				copy(bidx[t*d:(t+1)*d], idxMat[ei*d:(ei+1)*d])
				yb[t] = float64(labels[ei])
			}

			// Forward: Z1 = 1·b1ᵀ + OneHot·W1, ReLU.
			mat.SpGemmOneHot(z1[:bs*h1], h1, bidx[:bs*d], d, m.w1, h1, bs, d, h1, m.b1)
			for i, v := range z1[:bs*h1] {
				if v < 0 {
					z1[i] = 0
				}
			}
			// Z2 = 1·b2ᵀ + Z1·W2, ReLU.
			for t := 0; t < bs; t++ {
				copy(z2[t*h2:(t+1)*h2], m.b2)
			}
			mat.Gemm(z2[:bs*h2], h2, z1[:bs*h1], h1, m.w2, h2, bs, h2, h1)
			for i, v := range z2[:bs*h2] {
				if v < 0 {
					z2[i] = 0
				}
			}
			// z3 = b3 + Z2·w3, then the batch-averaged output delta.
			for t := 0; t < bs; t++ {
				z3[t] = m.b3
			}
			mat.Gemv(z3[:bs], z2, h2, m.w3, bs, h2)
			gB3 := 0.0
			for t := 0; t < bs; t++ {
				g3[t] = (sigmoid(z3[t]) - yb[t]) / bsf
				gB3 += g3[t]
			}

			// gW3 = Z2ᵀ·g3; D2 = g3 ⊗ w3 masked by the ReLU.
			for i := range gW3 {
				gW3[i] = 0
			}
			mat.GemvT(gW3, z2, h2, g3[:bs], bs, h2)
			for t := 0; t < bs; t++ {
				g := g3[t]
				zrow := z2[t*h2 : (t+1)*h2]
				drow := d2[t*h2 : (t+1)*h2]
				for v := range drow {
					if zrow[v] > 0 {
						drow[v] = g * m.w3[v]
					} else {
						drow[v] = 0
					}
				}
			}
			for i := range gB2 {
				gB2[i] = 0
			}
			for t := 0; t < bs; t++ {
				drow := d2[t*h2 : (t+1)*h2]
				for v, dv := range drow {
					gB2[v] += dv
				}
			}
			// gW2 = Z1ᵀ·D2; D1 = D2·W2ᵀ masked by the first ReLU.
			for i := range gW2 {
				gW2[i] = 0
			}
			mat.GemmTA(gW2, h2, z1[:bs*h1], h1, d2[:bs*h2], h2, h1, h2, bs)
			for t := 0; t < bs; t++ {
				zrow := z1[t*h1 : (t+1)*h1]
				d2row := d2[t*h2 : (t+1)*h2]
				drow := d1[t*h1 : (t+1)*h1]
				for u := range drow {
					if zrow[u] > 0 {
						drow[u] = mat.Dot(d2row, m.w2[u*h2:(u+1)*h2])
					} else {
						drow[u] = 0
					}
				}
			}
			for i := range gB1 {
				gB1[i] = 0
			}
			for t := 0; t < bs; t++ {
				drow := d1[t*h1 : (t+1)*h1]
				for u, dv := range drow {
					gB1[u] += dv
				}
			}
			if fused {
				// Dense input-layer grads: scatter-add D1 row t into the
				// slab row of every active embedding (the slab region was
				// cleared by the previous AdamStep's consuming pass), then
				// update both slabs in one fused sweep each.
				for t := 0; t < bs; t++ {
					grad := d1[t*h1 : (t+1)*h1]
					for _, kx := range bidx[t*d : (t+1)*d] {
						mat.Axpy(1, grad, gW1[int(kx)*h1:(int(kx)+1)*h1])
					}
				}
				m.applyAdamFused(gB3)
			} else {
				// Sparse input-layer grads: D1 row t is the gradient of
				// every embedding row active for example t, in the row
				// path's example-major append order.
				sparse = sparse[:0]
				for t := 0; t < bs; t++ {
					grad := d1[t*h1 : (t+1)*h1]
					for _, kx := range bidx[t*d : (t+1)*d] {
						sparse = append(sparse, sparseGrad{row: int(kx), grad: grad})
					}
				}
				m.applyAdam(gW2, gB2, gW3, gB3, gB1, sparse)
			}
		}
		epochSpan.ObserveSince(epochT0)
	}
}

// applyAdam folds one mini-batch's accumulated gradients into the
// parameters. Moved verbatim from the historical epoch loop; both epoch
// paths call it, so their update arithmetic is identical by construction.
func (m *MLP) applyAdam(gW2, gB2, gW3 []float64, gB3 float64, gB1 []float64, sparse []sparseGrad) {
	h1 := m.cfg.Hidden1
	m.step++
	lr := m.cfg.LearningRate
	c1 := 1 - math.Pow(beta1, float64(m.step))
	c2 := 1 - math.Pow(beta2, float64(m.step))
	update := func(w, g []float64, st adamState, l2 float64) {
		for i := range w {
			gi := g[i] + l2*w[i]
			st.m[i] = beta1*st.m[i] + (1-beta1)*gi
			st.v[i] = beta2*st.v[i] + (1-beta2)*gi*gi
			w[i] -= lr * (st.m[i] / c1) / (math.Sqrt(st.v[i]/c2) + eps)
		}
	}
	update(m.w2, gW2, m.a2, m.cfg.L2)
	update(m.b2, gB2, m.a2b, 0)
	update(m.w3, gW3, m.a3, m.cfg.L2)
	m.a3b.m[0] = beta1*m.a3b.m[0] + (1-beta1)*gB3
	m.a3b.v[0] = beta2*m.a3b.v[0] + (1-beta2)*gB3*gB3
	m.b3 -= lr * (m.a3b.m[0] / c1) / (math.Sqrt(m.a3b.v[0]/c2) + eps)
	update(m.b1, gB1, m.a1b, 0)
	// Sparse rows of w1.
	for _, sg := range sparse {
		base := sg.row * h1
		w := m.w1[base : base+h1]
		mm := m.a1.m[base : base+h1]
		vv := m.a1.v[base : base+h1]
		for u := 0; u < h1; u++ {
			gi := sg.grad[u] + m.cfg.L2*w[u]
			mm[u] = beta1*mm[u] + (1-beta1)*gi
			vv[u] = beta2*vv[u] + (1-beta2)*gi*gi
			w[u] -= lr * (mm[u] / c1) / (math.Sqrt(vv[u]/c2) + eps)
		}
	}
}

// applyAdamFused folds one mini-batch's gradients into the parameters on the
// Config.FusedAdam path: the scalar output-bias gradient is stored into its
// slab cell, then each slab (weights with L2, biases without) updates through
// one mat.AdamStep pass over contiguous memory. AdamStep clears the gradient
// slabs as it consumes them, so the next batch's accumulation starts from
// zero. The element-wise arithmetic matches applyAdam's update closure; the
// trajectory diverges only because the input layer is treated densely (see
// Config.FusedAdam).
func (m *MLP) applyAdamFused(gB3 float64) {
	s := m.slabs
	s.gb[len(s.gb)-1] = gB3
	m.step++
	lr := m.cfg.LearningRate
	c1 := 1 - math.Pow(beta1, float64(m.step))
	c2 := 1 - math.Pow(beta2, float64(m.step))
	mat.AdamStep(s.w, s.gw, s.mw, s.vw, lr, m.cfg.L2, beta1, beta2, eps, c1, c2)
	mat.AdamStep(s.b, s.gb, s.mb, s.vb, lr, 0, beta1, beta2, eps, c1, c2)
	// The forward pass reads the scalar field; keep it synced with the
	// slab's last cell.
	m.b3 = s.b[len(s.b)-1]
}

// Probability returns P(Y=1 | row).
func (m *MLP) Probability(row []relational.Value) float64 {
	h1, h2 := m.cfg.Hidden1, m.cfg.Hidden2
	z1 := make([]float64, h1)
	copy(z1, m.b1)
	for j, v := range row {
		k := m.enc.Index(j, v)
		w := m.w1[k*h1 : (k+1)*h1]
		for u := range z1 {
			z1[u] += w[u]
		}
	}
	for u := range z1 {
		if z1[u] < 0 {
			z1[u] = 0
		}
	}
	z2 := make([]float64, h2)
	copy(z2, m.b2)
	for u := 0; u < h1; u++ {
		if z1[u] == 0 {
			continue
		}
		w := m.w2[u*h2 : (u+1)*h2]
		a := z1[u]
		for v := range z2 {
			z2[v] += a * w[v]
		}
	}
	z3 := m.b3
	for v := 0; v < h2; v++ {
		if z2[v] > 0 {
			z3 += z2[v] * m.w3[v]
		}
	}
	return sigmoid(z3)
}

// hiddenActivation returns the post-ReLU activation of second-hidden-layer
// unit v for a row; the finite-difference gradient test uses it to form the
// analytic output-layer gradient.
func (m *MLP) hiddenActivation(row []relational.Value, v int) float64 {
	h1 := m.cfg.Hidden1
	z1 := make([]float64, h1)
	copy(z1, m.b1)
	for j, val := range row {
		k := m.enc.Index(j, val)
		w := m.w1[k*h1 : (k+1)*h1]
		for u := range z1 {
			z1[u] += w[u]
		}
	}
	z2v := m.b2[v]
	for u := 0; u < h1; u++ {
		if z1[u] > 0 {
			z2v += z1[u] * m.w2[u*m.cfg.Hidden2+v]
		}
	}
	if z2v < 0 {
		return 0
	}
	return z2v
}

// Predict classifies one example.
func (m *MLP) Predict(row []relational.Value) int8 {
	if m.Probability(row) >= 0.5 {
		return 1
	}
	return 0
}

// predictChunk is the per-task extent of PredictBatch: big enough that the
// GEMM amortizes its setup, small enough that a chunk's activations stay
// cache-resident and a modest batch still spreads across the pool.
const predictChunk = 256

// PredictBatch implements ml.BatchPredictor: one batched forward pass per
// chunk (SpGemmOneHot + Gemm + Gemv over the dataset's active-index matrix)
// instead of a per-example Probability call that allocates both hidden
// layers per row. Chunks fan out across ml.ParallelFor with disjoint output
// slots and private scratch, so results are deterministic; each example's
// decision value folds in the same order as Probability's loops (the dense
// sums only add exact ±0 terms where Probability skips inactive units), so
// the classes agree with Predict example for example.
func (m *MLP) PredictBatch(ds *ml.Dataset) []int8 {
	n := ds.NumExamples()
	out := make([]int8, n)
	if n == 0 {
		return out
	}
	h1, h2 := m.cfg.Hidden1, m.cfg.Hidden2
	d := ds.NumFeatures()
	idxMat, _ := ml.ScanActiveIndices(ds, m.enc)
	chunks := (n + predictChunk - 1) / predictChunk
	ml.ParallelFor(chunks, func(c int) {
		lo := c * predictChunk
		hi := min(lo+predictChunk, n)
		bs := hi - lo
		z1 := make([]float64, bs*h1)
		z2 := make([]float64, bs*h2)
		z3 := make([]float64, bs)
		mat.SpGemmOneHot(z1, h1, idxMat[lo*d:hi*d], d, m.w1, h1, bs, d, h1, m.b1)
		for i, v := range z1 {
			if v < 0 {
				z1[i] = 0
			}
		}
		for t := 0; t < bs; t++ {
			copy(z2[t*h2:(t+1)*h2], m.b2)
		}
		mat.Gemm(z2, h2, z1, h1, m.w2, h2, bs, h2, h1)
		for i, v := range z2 {
			if v < 0 {
				z2[i] = 0
			}
		}
		for t := 0; t < bs; t++ {
			z3[t] = m.b3
		}
		mat.Gemv(z3, z2, h2, m.w3, bs, h2)
		for t := 0; t < bs; t++ {
			if sigmoid(z3[t]) >= 0.5 {
				out[lo+t] = 1
			}
		}
	})
	return out
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
