package ann

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func fusedCfg(seed uint64) Config {
	c := smallCfg(seed)
	c.FusedAdam = true
	return c
}

// TestFusedAdamLearnsSignal holds the fused dense-Adam path to the same
// learning bar as the default optimizer on a separable problem.
func TestFusedAdamLearnsSignal(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 3)}
	r := rng.New(2)
	for i := 0; i < 400; i++ {
		x0 := relational.Value(r.Intn(2))
		ds.X = append(ds.X, x0, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, int8(x0))
	}
	m := New(fusedCfg(3))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc < 0.99 {
		t.Fatalf("separable accuracy %v, want ~1", acc)
	}
}

// TestFusedAdamLearnsXOR checks the fused path still trains through both
// hidden layers (XOR needs the nonlinearity, not just the input embedding).
func TestFusedAdamLearnsXOR(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 2)}
	pts := [][]relational.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for rep := 0; rep < 50; rep++ {
		for _, p := range pts {
			ds.X = append(ds.X, p...)
			ds.Y = append(ds.Y, int8(p[0]^p[1]))
		}
	}
	m := New(fusedCfg(4))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc < 0.99 {
		t.Fatalf("XOR accuracy %v, want ~1", acc)
	}
}

// TestFusedAdamDivergesFromReference pins that the flag actually changes
// the optimizer: with L2 active, dense Adam decays embedding rows the
// sparse reference leaves untouched, so some fitted parameter must differ.
// (A refactor that silently routed FusedAdam back through the sparse chains
// would pass every accuracy test; this catches it.)
func TestFusedAdamDivergesFromReference(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 3)}
	r := rng.New(6)
	for i := 0; i < 200; i++ {
		x0 := relational.Value(r.Intn(2))
		ds.X = append(ds.X, x0, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, int8(x0))
	}
	cfg := smallCfg(7)
	cfg.L2 = 1e-2
	ref := New(cfg)
	if err := ref.Fit(ds); err != nil {
		t.Fatal(err)
	}
	cfg.FusedAdam = true
	fused := New(cfg)
	if err := fused.Fit(ds); err != nil {
		t.Fatal(err)
	}
	rp, err := ref.ExportParams()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := fused.ExportParams()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp.W1 {
		if rp.W1[i] != fp.W1[i] {
			return
		}
	}
	t.Fatal("fused Adam produced bit-identical w1; the dense path is not being exercised")
}

// TestFusedAdamBatchPredictConsistency keeps the slab-backed parameters
// compatible with the batched scorer: PredictBatch must agree with
// per-example Predict on a fused-trained model.
func TestFusedAdamBatchPredictConsistency(t *testing.T) {
	ds := &ml.Dataset{Features: feats(3, 2, 4)}
	r := rng.New(9)
	for i := 0; i < 300; i++ {
		x0 := relational.Value(r.Intn(3))
		ds.X = append(ds.X, x0, relational.Value(r.Intn(2)), relational.Value(r.Intn(4)))
		ds.Y = append(ds.Y, int8(boolToInt(x0 > 0)))
	}
	m := New(fusedCfg(10))
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	batch := m.PredictBatch(ds)
	buf := make([]relational.Value, ds.NumFeatures())
	for i := 0; i < ds.NumExamples(); i++ {
		if one := m.Predict(ds.RowInto(buf, i)); one != batch[i] {
			t.Fatalf("example %d: Predict=%d PredictBatch=%d", i, one, batch[i])
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
