package ann

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Params is the serializable state of a fitted MLP: layer shapes and all
// weight blocks. Optimizer state (Adam moments) is training-only and not
// persisted; a decoded model predicts identically but cannot resume
// training.
type Params struct {
	Hidden1, Hidden2 int
	W1, B1           []float64
	W2, B2           []float64
	W3               []float64
	B3               float64
}

// ExportParams snapshots the fitted network (slices are copies).
func (m *MLP) ExportParams() (Params, error) {
	if m.enc == nil {
		return Params{}, fmt.Errorf("ann: export before Fit")
	}
	return Params{
		Hidden1: m.cfg.Hidden1,
		Hidden2: m.cfg.Hidden2,
		W1:      append([]float64(nil), m.w1...),
		B1:      append([]float64(nil), m.b1...),
		W2:      append([]float64(nil), m.w2...),
		B2:      append([]float64(nil), m.b2...),
		W3:      append([]float64(nil), m.w3...),
		B3:      m.b3,
	}, nil
}

// FromParams reconstructs a fitted network; block lengths are validated
// against the layer shapes and the encoder implied by the feature list.
func FromParams(features []ml.Feature, p Params) (*MLP, error) {
	enc := ml.NewEncoder(features)
	h1, h2 := p.Hidden1, p.Hidden2
	if h1 <= 0 || h2 <= 0 {
		return nil, fmt.Errorf("ann: hidden sizes must be positive, got %d/%d", h1, h2)
	}
	check := func(name string, got, want int) error {
		if got != want {
			return fmt.Errorf("ann: %s has %d entries, want %d", name, got, want)
		}
		return nil
	}
	if err := check("w1", len(p.W1), enc.Dims*h1); err != nil {
		return nil, err
	}
	if err := check("b1", len(p.B1), h1); err != nil {
		return nil, err
	}
	if err := check("w2", len(p.W2), h1*h2); err != nil {
		return nil, err
	}
	if err := check("b2", len(p.B2), h2); err != nil {
		return nil, err
	}
	if err := check("w3", len(p.W3), h2); err != nil {
		return nil, err
	}
	m := New(Config{Hidden1: h1, Hidden2: h2})
	m.enc = enc
	m.w1 = append([]float64(nil), p.W1...)
	m.b1 = append([]float64(nil), p.B1...)
	m.w2 = append([]float64(nil), p.W2...)
	m.b2 = append([]float64(nil), p.B2...)
	m.w3 = append([]float64(nil), p.W3...)
	m.b3 = p.B3
	return m, nil
}

// ExportHiddenLinear implements ml.HiddenLinearExporter: the MLP's input
// layer is exactly the exported form — one Hidden1-wide embedding row per
// one-hot dimension plus the layer bias — and everything after it is a dense
// function of that hidden vector. The returned slices are copies.
func (m *MLP) ExportHiddenLinear(features []ml.Feature) ([]float64, []float64, int, bool) {
	if m.enc == nil || len(features) != len(m.enc.Offsets) || ml.NewEncoder(features).Dims != m.enc.Dims {
		return nil, nil, 0, false
	}
	return append([]float64(nil), m.b1...), append([]float64(nil), m.w1...), m.cfg.Hidden1, true
}

// ClassifyHidden implements ml.HiddenLinearExporter: given n first-layer
// pre-activations packed row-major in z (clobbered as scratch), it applies
// ReLU, the dense layers (mat.Gemm/Gemv, whose sequential k-accumulation
// makes each output element bit-identical to Probability's loops for
// identical z), and classifies on the sign of the logit — sigmoid is
// monotone with sigmoid(0) = 0.5, so z3 >= 0 is exactly Probability >= 0.5.
func (m *MLP) ClassifyHidden(dst []int8, z []float64, n int) {
	if n == 0 {
		return
	}
	h1, h2 := m.cfg.Hidden1, m.cfg.Hidden2
	for i, v := range z[:n*h1] {
		if v < 0 {
			z[i] = 0
		}
	}
	z2 := make([]float64, n*h2)
	for t := 0; t < n; t++ {
		copy(z2[t*h2:(t+1)*h2], m.b2)
	}
	mat.Gemm(z2, h2, z, h1, m.w2, h2, n, h2, h1)
	for i, v := range z2 {
		if v < 0 {
			z2[i] = 0
		}
	}
	z3 := make([]float64, n)
	for t := range z3 {
		z3[t] = m.b3
	}
	mat.Gemv(z3, z2, h2, m.w3, n, h2)
	for t := 0; t < n; t++ {
		if z3[t] >= 0 {
			dst[t] = 1
		} else {
			dst[t] = 0
		}
	}
}
