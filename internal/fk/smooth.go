package fk

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// RandomSmoother reassigns an unseen FK value to a uniformly chosen value
// that was seen during training — the unsupervised baseline of §6.2. It
// implements tree.Smoother.
type RandomSmoother struct {
	seen [][]relational.Value // per feature: values observed in training
	r    *rng.RNG
}

// NewRandomSmoother records the seen-value sets of every feature of the
// training split.
func NewRandomSmoother(train *ml.Dataset, seed uint64) (*RandomSmoother, error) {
	if train.NumExamples() == 0 {
		return nil, fmt.Errorf("fk: empty training set")
	}
	s := &RandomSmoother{r: rng.New(seed)}
	s.seen = seenValues(train)
	return s, nil
}

// seenValues collects, per feature, the sorted distinct values present.
func seenValues(ds *ml.Dataset) [][]relational.Value {
	d := ds.NumFeatures()
	sets := make([]map[relational.Value]bool, d)
	for j := range sets {
		sets[j] = make(map[relational.Value]bool)
	}
	for i := 0; i < ds.NumExamples(); i++ {
		for j, v := range ds.Row(i) {
			sets[j][v] = true
		}
	}
	out := make([][]relational.Value, d)
	for j, set := range sets {
		vals := make([]relational.Value, 0, len(set))
		for v := relational.Value(0); int(v) < ds.Features[j].Cardinality; v++ {
			if set[v] {
				vals = append(vals, v)
			}
		}
		out[j] = vals
	}
	return out
}

// Remap implements tree.Smoother: unseen values map to a random seen value;
// seen values pass through.
func (s *RandomSmoother) Remap(feature int, v relational.Value) relational.Value {
	vals := s.seen[feature]
	for _, sv := range vals {
		if sv == v {
			return v
		}
	}
	if len(vals) == 0 {
		return v
	}
	return vals[s.r.Intn(len(vals))]
}

// XRSmoother is the paper's dimension-table-aware reassignment (§6.2): an
// unseen FK value is mapped to the *seen* FK value whose foreign-feature
// vector X_R has minimum l0 distance (count of mismatched features) to the
// unseen value's X_R. The dimension table provides the X_R rows — this is
// the "side information" use of foreign features: R helps smooth FK even
// when its features are not used for learning.
type XRSmoother struct {
	// xrRows[v] is the X_R feature vector of dimension row v.
	xrRows [][]relational.Value
	// seenFK lists FK values present in training, ascending.
	seenFK []relational.Value
	// fkFeature is the dataset feature index this smoother applies to;
	// Remap passes other features through untouched.
	fkFeature int
	r         *rng.RNG
}

// NewXRSmoother builds the smoother for the FK feature at index fkFeature
// of the training dataset. dim must be the referenced dimension table; its
// KindFeature columns form X_R.
func NewXRSmoother(train *ml.Dataset, fkFeature int, dim *relational.Table, seed uint64) (*XRSmoother, error) {
	if fkFeature < 0 || fkFeature >= train.NumFeatures() {
		return nil, fmt.Errorf("fk: feature index %d out of range", fkFeature)
	}
	card := train.Features[fkFeature].Cardinality
	if dim.NumRows() != card {
		return nil, fmt.Errorf("fk: dimension table has %d rows, FK domain is %d", dim.NumRows(), card)
	}
	featIdx := dim.Schema().ColumnsOfKind(relational.KindFeature)
	if len(featIdx) == 0 {
		return nil, fmt.Errorf("fk: dimension table %q has no feature columns", dim.Name)
	}
	s := &XRSmoother{fkFeature: fkFeature, r: rng.New(seed)}
	s.xrRows = make([][]relational.Value, card)
	for v := 0; v < card; v++ {
		row := make([]relational.Value, len(featIdx))
		for j, c := range featIdx {
			row[j] = dim.At(v, c)
		}
		s.xrRows[v] = row
	}
	seen := make(map[relational.Value]bool)
	for i := 0; i < train.NumExamples(); i++ {
		seen[train.At(i, fkFeature)] = true
	}
	for v := relational.Value(0); int(v) < card; v++ {
		if seen[v] {
			s.seenFK = append(s.seenFK, v)
		}
	}
	if len(s.seenFK) == 0 {
		return nil, fmt.Errorf("fk: no FK values seen in training")
	}
	return s, nil
}

// Remap implements tree.Smoother: an unseen FK value maps to the seen value
// minimizing the l0 distance between X_R vectors; ties break uniformly at
// random among the minimizers. Other features pass through.
func (s *XRSmoother) Remap(feature int, v relational.Value) relational.Value {
	if feature != s.fkFeature {
		return v
	}
	if int(v) < 0 || int(v) >= len(s.xrRows) {
		return s.seenFK[0]
	}
	for _, sv := range s.seenFK {
		if sv == v {
			return v
		}
	}
	target := s.xrRows[v]
	bestDist := len(target) + 1
	var ties []relational.Value
	for _, sv := range s.seenFK {
		cand := s.xrRows[sv]
		dist := 0
		for j := range target {
			if cand[j] != target[j] {
				dist++
			}
		}
		if dist < bestDist {
			bestDist = dist
			ties = ties[:0]
			ties = append(ties, sv)
		} else if dist == bestDist {
			ties = append(ties, sv)
		}
	}
	return ties[s.r.Intn(len(ties))]
}
