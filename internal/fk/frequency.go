package fk

import (
	"fmt"
	"sort"

	"repro/internal/ml"
	"repro/internal/relational"
)

// FrequencyBased compresses an FK domain by keeping the l−1 most frequent
// values (by training count) as singleton buckets and collapsing everything
// else into one "Others" bucket — the materialized form of the paper's §2.2
// "Others" placeholder convention, offered as a third compression strategy
// next to RandomHash and SortBased. Rare FK values contribute the most
// variance per unit of information, so folding the tail often loses little
// accuracy while shrinking the domain drastically under Zipfian skew.
type FrequencyBased struct {
	table  []relational.Value
	budget int
}

// NewFrequencyBased fits the compressor on the training split: fkCol is the
// FK feature index, l the total budget (including the Others bucket).
// Bucket l−1 is Others; values never seen in training land there too.
func NewFrequencyBased(train *ml.Dataset, fkCol, l int) (*FrequencyBased, error) {
	if fkCol < 0 || fkCol >= train.NumFeatures() {
		return nil, fmt.Errorf("fk: feature index %d out of range", fkCol)
	}
	m := train.Features[fkCol].Cardinality
	if l < 1 {
		return nil, fmt.Errorf("fk: budget must be positive, got %d", l)
	}
	if l > m {
		l = m
	}
	counts := make([]int, m)
	for i := 0; i < train.NumExamples(); i++ {
		counts[train.At(i, fkCol)]++
	}
	type vc struct {
		v relational.Value
		n int
	}
	vals := make([]vc, m)
	for v := range counts {
		vals[v] = vc{v: relational.Value(v), n: counts[v]}
	}
	sort.Slice(vals, func(a, b int) bool {
		if vals[a].n != vals[b].n {
			return vals[a].n > vals[b].n
		}
		return vals[a].v < vals[b].v
	})
	table := make([]relational.Value, m)
	others := relational.Value(l - 1)
	for i := range table {
		table[i] = others
	}
	for rank := 0; rank < l-1 && rank < len(vals); rank++ {
		table[vals[rank].v] = relational.Value(rank)
	}
	return &FrequencyBased{table: table, budget: l}, nil
}

// Map implements Compressor.
func (f *FrequencyBased) Map(v relational.Value) relational.Value {
	if int(v) < 0 || int(v) >= len(f.table) {
		return relational.Value(f.budget - 1) // unknown → Others
	}
	return f.table[v]
}

// Budget implements Compressor.
func (f *FrequencyBased) Budget() int { return f.budget }
