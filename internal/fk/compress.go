// Package fk implements the two practicality techniques for foreign-key
// features from the paper's §6: lossy domain compression (to make trees
// that split on huge FK domains interpretable) and smoothing of FK values
// unseen during training (R's trees simply crash on them).
package fk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// Compressor maps an FK domain [m] onto a smaller budget domain [l].
type Compressor interface {
	// Map returns the compressed code of v, always in [0, Budget()).
	Map(v relational.Value) relational.Value
	// Budget returns l, the compressed domain size.
	Budget() int
}

// RandomHash is the unsupervised baseline (§6.1): the "hashing trick" —
// each original value is assigned a uniform random bucket in [l].
type RandomHash struct {
	table  []relational.Value
	budget int
}

// NewRandomHash builds a random mapping from a domain of size m to [l].
func NewRandomHash(m, l int, r *rng.RNG) (*RandomHash, error) {
	if l < 1 || m < 1 {
		return nil, fmt.Errorf("fk: invalid compression m=%d l=%d", m, l)
	}
	if l > m {
		l = m
	}
	t := make([]relational.Value, m)
	for v := range t {
		t[v] = relational.Value(r.Intn(l))
	}
	return &RandomHash{table: t, budget: l}, nil
}

// Map implements Compressor.
func (h *RandomHash) Map(v relational.Value) relational.Value { return h.table[v] }

// Budget implements Compressor.
func (h *RandomHash) Budget() int { return h.budget }

// SortBased is the paper's supervised heuristic (§6.1): sort the FK values
// by the conditional entropy H(Y | FK = v) estimated on training data,
// compute differences between adjacent values, and cut at the l−1 largest
// differences, yielding an l-partition that groups values with comparable
// informativeness about Y.
type SortBased struct {
	table  []relational.Value
	budget int
}

// NewSortBased fits the compressor on the training split: fkCol is the FK
// feature's index within the dataset. Values that never occur in training
// are assigned by their prior-less entropy (treated as maximally uncertain,
// landing them in the bucket holding H = 1 values, or the last bucket).
func NewSortBased(train *ml.Dataset, fkCol, l int, r *rng.RNG) (*SortBased, error) {
	if fkCol < 0 || fkCol >= train.NumFeatures() {
		return nil, fmt.Errorf("fk: feature index %d out of range", fkCol)
	}
	m := train.Features[fkCol].Cardinality
	if l < 1 {
		return nil, fmt.Errorf("fk: budget must be positive, got %d", l)
	}
	if l > m {
		l = m
	}
	// Estimate H(Y | FK = v) per value.
	counts := make([][2]int, m)
	for i := 0; i < train.NumExamples(); i++ {
		v := train.At(i, fkCol)
		counts[v][int(train.Label(i))]++
	}
	type ventry struct {
		v relational.Value
		h float64
	}
	entries := make([]ventry, m)
	for v := range counts {
		n := counts[v][0] + counts[v][1]
		h := 1.0 // unseen values: maximal uncertainty
		if n > 0 {
			p := float64(counts[v][1]) / float64(n)
			h = binaryEntropy(p)
		}
		entries[v] = ventry{v: relational.Value(v), h: h}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].h != entries[b].h {
			return entries[a].h < entries[b].h
		}
		return entries[a].v < entries[b].v
	})
	// Adjacent differences; pick top l−1 boundaries (ties broken by a
	// seeded shuffle of equal candidates, per the paper "ties broken
	// randomly").
	type boundary struct {
		at   int // cut between entries[at] and entries[at+1]
		diff float64
	}
	bs := make([]boundary, 0, m-1)
	for i := 0; i+1 < len(entries); i++ {
		bs = append(bs, boundary{at: i, diff: entries[i+1].h - entries[i].h})
	}
	r.Shuffle(len(bs), func(i, j int) { bs[i], bs[j] = bs[j], bs[i] })
	sort.SliceStable(bs, func(a, b int) bool { return bs[a].diff > bs[b].diff })
	cuts := make([]int, 0, l-1)
	for i := 0; i < l-1 && i < len(bs); i++ {
		cuts = append(cuts, bs[i].at)
	}
	sort.Ints(cuts)

	table := make([]relational.Value, m)
	bucket := relational.Value(0)
	ci := 0
	for i, e := range entries {
		table[e.v] = bucket
		if ci < len(cuts) && cuts[ci] == i {
			bucket++
			ci++
		}
	}
	return &SortBased{table: table, budget: l}, nil
}

// Map implements Compressor.
func (s *SortBased) Map(v relational.Value) relational.Value { return s.table[v] }

// Budget implements Compressor.
func (s *SortBased) Budget() int { return s.budget }

// CompressFeature rewrites feature fkCol of a dataset through the
// compressor, returning a new dataset whose feature cardinality is the
// budget. The same fitted compressor must be applied to train, validation,
// and test (the paper fits f on the training split and compresses the whole
// dataset). The result is dense: a value-rewriting transform has to own its
// storage, so this is the one copy the compression pipeline pays regardless
// of whether the input is a view.
func CompressFeature(ds *ml.Dataset, fkCol int, c Compressor) (*ml.Dataset, error) {
	if fkCol < 0 || fkCol >= ds.NumFeatures() {
		return nil, fmt.Errorf("fk: feature index %d out of range", fkCol)
	}
	n := ds.NumExamples()
	d := ds.NumFeatures()
	out := &ml.Dataset{
		Features: append([]ml.Feature(nil), ds.Features...),
		X:        make([]relational.Value, n*d),
		Y:        make([]int8, n),
	}
	out.Features[fkCol].Cardinality = c.Budget()
	for i := 0; i < n; i++ {
		row := out.X[i*d : (i+1)*d]
		ds.RowInto(row, i)
		row[fkCol] = c.Map(row[fkCol])
		out.Y[i] = ds.Label(i)
	}
	return out, nil
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}
