package fk

import (
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

func TestRandomHashValidation(t *testing.T) {
	if _, err := NewRandomHash(0, 5, rng.New(1)); err == nil {
		t.Fatal("m=0 must error")
	}
	if _, err := NewRandomHash(10, 0, rng.New(1)); err == nil {
		t.Fatal("l=0 must error")
	}
}

func TestRandomHashRange(t *testing.T) {
	f := func(seed uint64, mRaw, lRaw uint8) bool {
		m := int(mRaw%200) + 1
		l := int(lRaw%50) + 1
		h, err := NewRandomHash(m, l, rng.New(seed))
		if err != nil {
			return false
		}
		for v := 0; v < m; v++ {
			mapped := h.Map(relational.Value(v))
			if int(mapped) < 0 || int(mapped) >= h.Budget() {
				return false
			}
		}
		return h.Budget() <= m && h.Budget() <= l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHashBudgetClampedToDomain(t *testing.T) {
	h, err := NewRandomHash(3, 10, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if h.Budget() != 3 {
		t.Fatalf("budget %d, want clamp to 3", h.Budget())
	}
}

// fkDataset builds a dataset with one FK feature where values [0, m/2) are
// pure class 0 and [m/2, m) are pure class 1.
func fkDataset(m, n int, r *rng.RNG) *ml.Dataset {
	ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: m, IsFK: true}}}
	for i := 0; i < n; i++ {
		v := r.Intn(m)
		ds.X = append(ds.X, relational.Value(v))
		y := int8(0)
		if v >= m/2 {
			y = 1
		}
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestSortBasedGroupsByConditionalEntropy(t *testing.T) {
	// Values split into pure-0 and pure-1 halves: with budget 2 the
	// sort-based compressor must separate classes almost perfectly, because
	// H(Y|v)=0 for all values but P(Y=1|v) differs. Note Sort-based sorts
	// by H, which is 0 for both halves — so the paper's heuristic groups
	// them together! This is the known limitation; with budget 2 the split
	// between the halves depends on tie-breaking. Instead verify the
	// well-posedness properties: mapping is total, within budget, and
	// deterministic given a seed.
	ds := fkDataset(40, 2000, rng.New(3))
	sb, err := NewSortBased(ds, 0, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 40; v++ {
		mv := sb.Map(relational.Value(v))
		if int(mv) < 0 || int(mv) >= sb.Budget() {
			t.Fatalf("mapped value %d out of budget", mv)
		}
	}
	sb2, _ := NewSortBased(ds, 0, 5, rng.New(7))
	for v := 0; v < 40; v++ {
		if sb.Map(relational.Value(v)) != sb2.Map(relational.Value(v)) {
			t.Fatal("sort-based mapping not deterministic under same seed")
		}
	}
}

func TestSortBasedSeparatesNoisyFromClean(t *testing.T) {
	// Clean values (H≈0) and coin-flip values (H≈1) must land in different
	// buckets with budget 2.
	r := rng.New(5)
	ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: 20, IsFK: true}}}
	for i := 0; i < 4000; i++ {
		v := r.Intn(20)
		var y int8
		if v < 10 {
			y = 1 // clean: always class 1
		} else {
			y = int8(r.Intn(2)) // noisy
		}
		ds.X = append(ds.X, relational.Value(v))
		ds.Y = append(ds.Y, y)
	}
	sb, err := NewSortBased(ds, 0, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cleanBucket := sb.Map(0)
	for v := 1; v < 10; v++ {
		if sb.Map(relational.Value(v)) != cleanBucket {
			t.Fatalf("clean value %d not grouped with other clean values", v)
		}
	}
	noisyBucket := sb.Map(10)
	if noisyBucket == cleanBucket {
		t.Fatal("noisy and clean values must separate with budget 2")
	}
	for v := 11; v < 20; v++ {
		if sb.Map(relational.Value(v)) != noisyBucket {
			t.Fatalf("noisy value %d not grouped with other noisy values", v)
		}
	}
}

func TestSortBasedValidation(t *testing.T) {
	ds := fkDataset(10, 100, rng.New(1))
	if _, err := NewSortBased(ds, 5, 2, rng.New(1)); err == nil {
		t.Fatal("bad feature index must error")
	}
	if _, err := NewSortBased(ds, 0, 0, rng.New(1)); err == nil {
		t.Fatal("zero budget must error")
	}
}

func TestCompressFeature(t *testing.T) {
	ds := fkDataset(40, 200, rng.New(11))
	h, err := NewRandomHash(40, 5, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	out, err := CompressFeature(ds, 0, h)
	if err != nil {
		t.Fatal(err)
	}
	if out.Features[0].Cardinality != 5 {
		t.Fatalf("cardinality %d, want 5", out.Features[0].Cardinality)
	}
	for i := 0; i < out.NumExamples(); i++ {
		if v := out.Row(i)[0]; int(v) >= 5 {
			t.Fatalf("row %d carries uncompressed value %d", i, v)
		}
		if out.Row(i)[0] != h.Map(ds.Row(i)[0]) {
			t.Fatal("compression mapping not applied consistently")
		}
	}
	// Original untouched.
	if ds.Features[0].Cardinality != 40 {
		t.Fatal("CompressFeature must not mutate its input")
	}
	if _, err := CompressFeature(ds, 9, h); err == nil {
		t.Fatal("bad index must error")
	}
}

func TestRandomSmootherPassThroughAndRemap(t *testing.T) {
	ds := &ml.Dataset{
		Features: feats(10),
		X:        []relational.Value{1, 3, 5},
		Y:        []int8{0, 1, 0},
	}
	s, err := NewRandomSmoother(ds, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Seen values pass through.
	for _, v := range []relational.Value{1, 3, 5} {
		if s.Remap(0, v) != v {
			t.Fatalf("seen value %d must pass through", v)
		}
	}
	// Unseen values map to a seen one.
	for _, v := range []relational.Value{0, 2, 9} {
		got := s.Remap(0, v)
		if got != 1 && got != 3 && got != 5 {
			t.Fatalf("unseen %d remapped to unseen %d", v, got)
		}
	}
	if _, err := NewRandomSmoother(&ml.Dataset{Features: feats(2)}, 1); err == nil {
		t.Fatal("empty train must error")
	}
}

// buildDim builds a dimension table with the given X_R rows.
func buildDim(t *testing.T, xr [][]relational.Value) *relational.Table {
	t.Helper()
	n := len(xr)
	keyDom := relational.NewDomain("RID", n)
	cols := []relational.Column{{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom}}
	for j := range xr[0] {
		cols = append(cols, relational.Column{
			Name: "XR" + string(rune('a'+j)), Kind: relational.KindFeature,
			Domain: relational.NewDomain("xr", 4),
		})
	}
	dim := relational.NewTable("R", relational.MustSchema(cols...), n)
	row := make([]relational.Value, len(cols))
	for k := 0; k < n; k++ {
		row[0] = relational.Value(k)
		copy(row[1:], xr[k])
		dim.MustAppendRow(row)
	}
	return dim
}

func TestXRSmootherPicksMinL0(t *testing.T) {
	// Dimension rows: 0:(0,0) 1:(1,1) 2:(0,1). Training saw FK ∈ {0,1}.
	// Unseen FK=2 has X_R (0,1): distance 1 to both; ties break randomly
	// among {0,1} — check membership. Then make row 2 = (1,1): distance 0
	// to row 1 → must map to 1.
	dim := buildDim(t, [][]relational.Value{{0, 0}, {1, 1}, {0, 1}})
	train := &ml.Dataset{
		Features: []ml.Feature{{Name: "FK", Cardinality: 3, IsFK: true}},
		X:        []relational.Value{0, 1, 0},
		Y:        []int8{0, 1, 0},
	}
	s, err := NewXRSmoother(train, 0, dim, 19)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Remap(0, 2)
	if got != 0 && got != 1 {
		t.Fatalf("tie must resolve among minimizers, got %d", got)
	}
	// Exact-match case.
	dim2 := buildDim(t, [][]relational.Value{{0, 0}, {1, 1}, {1, 1}})
	s2, err := NewXRSmoother(train, 0, dim2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Remap(0, 2); got != 1 {
		t.Fatalf("identical X_R must map to its twin, got %d", got)
	}
	// Seen values pass through; other features pass through.
	if s.Remap(0, 1) != 1 || s.Remap(3, 2) != 2 {
		t.Fatal("pass-through broken")
	}
}

func TestXRSmootherValidation(t *testing.T) {
	dim := buildDim(t, [][]relational.Value{{0, 0}, {1, 1}})
	train := &ml.Dataset{
		Features: []ml.Feature{{Name: "FK", Cardinality: 3, IsFK: true}},
		X:        []relational.Value{0},
		Y:        []int8{1},
	}
	if _, err := NewXRSmoother(train, 0, dim, 1); err == nil {
		t.Fatal("row/domain mismatch must error")
	}
	if _, err := NewXRSmoother(train, 7, dim, 1); err == nil {
		t.Fatal("bad feature index must error")
	}
}

func TestFrequencyBasedKeepsHeadValues(t *testing.T) {
	// Zipf-ish counts: value 0 dominates, then 1, then a long tail.
	ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: 10, IsFK: true}}}
	add := func(v relational.Value, n int) {
		for i := 0; i < n; i++ {
			ds.X = append(ds.X, v)
			ds.Y = append(ds.Y, int8(i%2))
		}
	}
	add(0, 50)
	add(1, 20)
	for v := relational.Value(2); v < 10; v++ {
		add(v, 2)
	}
	f, err := NewFrequencyBased(ds, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Budget() != 3 {
		t.Fatalf("budget %d", f.Budget())
	}
	// Head values get singleton buckets 0 and 1; everything else → 2.
	if f.Map(0) != 0 || f.Map(1) != 1 {
		t.Fatalf("head mapping wrong: %d %d", f.Map(0), f.Map(1))
	}
	for v := relational.Value(2); v < 10; v++ {
		if f.Map(v) != 2 {
			t.Fatalf("tail value %d not in Others bucket: %d", v, f.Map(v))
		}
	}
	// Out-of-range values also fall into Others.
	if f.Map(99) != 2 {
		t.Fatal("unknown value must map to Others")
	}
}

func TestFrequencyBasedValidation(t *testing.T) {
	ds := fkDataset(10, 50, rng.New(91))
	if _, err := NewFrequencyBased(ds, 5, 2); err == nil {
		t.Fatal("bad feature index must error")
	}
	if _, err := NewFrequencyBased(ds, 0, 0); err == nil {
		t.Fatal("zero budget must error")
	}
	// Budget beyond domain clamps.
	f, err := NewFrequencyBased(ds, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if f.Budget() != 10 {
		t.Fatalf("budget must clamp to domain size, got %d", f.Budget())
	}
}

func TestFrequencyBasedWithCompressFeature(t *testing.T) {
	ds := fkDataset(40, 400, rng.New(93))
	f, err := NewFrequencyBased(ds, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := CompressFeature(ds, 0, f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Features[0].Cardinality != 5 {
		t.Fatalf("cardinality %d", out.Features[0].Cardinality)
	}
	for i := 0; i < out.NumExamples(); i++ {
		if int(out.Row(i)[0]) >= 5 {
			t.Fatal("uncompressed value leaked")
		}
	}
}
