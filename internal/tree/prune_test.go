package tree

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// noisyFKDataset builds train/validation sets where a wide FK carries weak
// signal drowned in noise — exactly the regime where a fully grown tree
// overfits and pruning should help.
func noisyFKDataset(n int, seed uint64) *ml.Dataset {
	r := rng.New(seed)
	const nR = 150
	ds := &ml.Dataset{Features: []ml.Feature{
		{Name: "FK", Cardinality: nR, IsFK: true},
		{Name: "sig", Cardinality: 2},
	}}
	for i := 0; i < n; i++ {
		fk := r.Intn(nR)
		sig := r.Intn(2)
		y := int8(sig)
		if r.Bernoulli(0.25) {
			y = 1 - y
		}
		ds.X = append(ds.X, relational.Value(fk), relational.Value(sig))
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestPruneCCPImprovesValidation(t *testing.T) {
	train := noisyFKDataset(600, 1)
	val := noisyFKDataset(300, 2)
	test := noisyFKDataset(1000, 3)

	grown := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := grown.Fit(train); err != nil {
		t.Fatal(err)
	}
	beforeNodes := grown.NumNodes()
	beforeVal := ml.Accuracy(grown, val)

	cuts, err := grown.PruneCCP(train, val)
	if err != nil {
		t.Fatal(err)
	}
	if cuts == 0 {
		t.Fatal("a fully grown tree on 25%-noise data should prune something")
	}
	afterVal := ml.Accuracy(grown, val)
	if afterVal < beforeVal {
		t.Fatalf("pruning must not hurt validation accuracy: %v -> %v", beforeVal, afterVal)
	}
	if grown.NumNodes() != beforeNodes {
		t.Fatal("node slice must not be reallocated, only rewritten")
	}
	// Structural invariant: collapse bookkeeping is fully baked in.
	if grown.collapseSet != nil || grown.collapseOrder != nil {
		t.Fatal("collapse state must be cleared after pruning")
	}
	// The pruned tree should generalize at least as well as majority and
	// be close to the Bayes accuracy of 0.75.
	if acc := ml.Accuracy(grown, test); acc < 0.70 {
		t.Fatalf("pruned test accuracy %v, want >= 0.70", acc)
	}
}

func TestPruneCCPLeavesCountFalls(t *testing.T) {
	train := noisyFKDataset(500, 5)
	val := noisyFKDataset(250, 6)
	grown := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := grown.Fit(train); err != nil {
		t.Fatal(err)
	}
	before := grown.NumLeaves()
	if _, err := grown.PruneCCP(train, val); err != nil {
		t.Fatal(err)
	}
	if grown.NumLeaves() > before {
		t.Fatalf("leaves rose from %d to %d", before, grown.NumLeaves())
	}
}

func TestPruneCCPValidation(t *testing.T) {
	if _, err := New(Config{}).PruneCCP(nil, nil); err == nil {
		t.Fatal("unfitted prune must error")
	}
	ds := noisyFKDataset(50, 7)
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PruneCCP(ds, &ml.Dataset{Features: ds.Features}); err == nil {
		t.Fatal("empty validation must error")
	}
}

func TestPruneCCPOnPureTreeIsNoop(t *testing.T) {
	// A single-leaf tree has nothing to prune.
	ds := mkDataset(feats(2), [][]relational.Value{{0}, {1}}, []int8{1, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	cuts, err := tr.PruneCCP(ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if cuts != 0 {
		t.Fatalf("pure tree pruned %d nodes", cuts)
	}
}
