package tree

import (
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// TestRelabelInvariance checks a defining property of categorical learners:
// renaming a feature's value codes by any permutation must not change any
// prediction, because categorical codes carry no order. This is exactly why
// a foreign key — an arbitrary identifier — can act as a feature at all.
func TestRelabelInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const card = 8
		n := r.Intn(120) + 40
		ds := &ml.Dataset{Features: []ml.Feature{
			{Name: "a", Cardinality: card},
			{Name: "b", Cardinality: 3},
		}}
		for i := 0; i < n; i++ {
			a := r.Intn(card)
			ds.X = append(ds.X, relational.Value(a), relational.Value(r.Intn(3)))
			y := int8(a % 2)
			if r.Bernoulli(0.1) {
				y = 1 - y
			}
			ds.Y = append(ds.Y, y)
		}
		// Permute feature 0's codes.
		perm := r.Perm(card)
		relabeled := &ml.Dataset{
			Features: ds.Features,
			X:        append([]relational.Value(nil), ds.X...),
			Y:        ds.Y,
		}
		for i := 0; i < n; i++ {
			relabeled.X[i*2] = relational.Value(perm[ds.X[i*2]])
		}

		t1 := New(Config{Criterion: Gini, MinSplit: 5, CP: 1e-3})
		t2 := New(Config{Criterion: Gini, MinSplit: 5, CP: 1e-3})
		if err := t1.Fit(ds); err != nil {
			return false
		}
		if err := t2.Fit(relabeled); err != nil {
			return false
		}
		// Every original row and its relabeled twin must classify alike.
		for i := 0; i < n; i++ {
			if t1.Predict(ds.Row(i)) != t2.Predict(relabeled.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictionsMatchLeafMajorities: every training example must land in a
// leaf predicting that leaf's training majority — the structural invariant
// the grow procedure maintains.
func TestPredictionsMatchLeafMajorities(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(150) + 30
		ds := &ml.Dataset{Features: []ml.Feature{
			{Name: "a", Cardinality: 6},
			{Name: "b", Cardinality: 4},
		}}
		for i := 0; i < n; i++ {
			ds.X = append(ds.X, relational.Value(r.Intn(6)), relational.Value(r.Intn(4)))
			ds.Y = append(ds.Y, int8(r.Intn(2)))
		}
		tr := New(Config{Criterion: InfoGain, MinSplit: 1, CP: 0})
		if err := tr.Fit(ds); err != nil {
			return false
		}
		// Group examples by predicted leaf outcome: with cp=0/minsplit=1 the
		// tree partitions until purity or indistinguishability, so within any
		// set of identical rows the prediction must be that set's majority.
		type key [2]relational.Value
		counts := map[key][2]int{}
		for i := 0; i < n; i++ {
			k := key{ds.Row(i)[0], ds.Row(i)[1]}
			c := counts[k]
			c[ds.Label(i)]++
			counts[k] = c
		}
		for k, c := range counts {
			row := []relational.Value{k[0], k[1]}
			pred := tr.Predict(row)
			if c[pred] < c[1-pred] {
				return false // predicted the minority of an identical-row group
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
