package tree

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Dump writes a human-readable rendering of the fitted tree, one node per
// line, children indented under parents. Split nodes print the feature
// index and the set of values routed left (elided past maxValues entries —
// exactly the §6.1 interpretability problem: a foreign-key split can carry
// thousands of values, which is what domain compression exists to fix).
//
// featureNames optionally labels features; nil falls back to indices.
func (t *Tree) Dump(w io.Writer, featureNames []string, maxValues int) error {
	if len(t.nodes) == 0 {
		_, err := fmt.Fprintln(w, "(unfitted tree)")
		return err
	}
	if maxValues < 1 {
		maxValues = 8
	}
	name := func(f int) string {
		if featureNames != nil && f < len(featureNames) {
			return featureNames[f]
		}
		return fmt.Sprintf("x%d", f)
	}
	var rec func(i, depth int) error
	rec = func(i, depth int) error {
		nd := &t.nodes[i]
		indent := strings.Repeat("  ", depth)
		if nd.feature < 0 {
			_, err := fmt.Fprintf(w, "%spredict %d (n=%d)\n", indent, nd.prediction, nd.n)
			return err
		}
		left := make([]int, 0, len(nd.goLeft))
		for v, l := range nd.goLeft {
			if l {
				left = append(left, int(v))
			}
		}
		sort.Ints(left)
		shown := make([]string, 0, maxValues)
		for k, v := range left {
			if k == maxValues {
				shown = append(shown, fmt.Sprintf("…(+%d more)", len(left)-maxValues))
				break
			}
			shown = append(shown, fmt.Sprint(v))
		}
		if _, err := fmt.Fprintf(w, "%s%s in {%s}? (n=%d)\n",
			indent, name(nd.feature), strings.Join(shown, ","), nd.n); err != nil {
			return err
		}
		if err := rec(nd.leftChild, depth+1); err != nil {
			return err
		}
		return rec(nd.rightChild, depth+1)
	}
	return rec(0, 0)
}

// DumpDOT writes the tree in Graphviz DOT format for external rendering.
func (t *Tree) DumpDOT(w io.Writer, featureNames []string) error {
	if _, err := fmt.Fprintln(w, "digraph tree {"); err != nil {
		return err
	}
	name := func(f int) string {
		if featureNames != nil && f < len(featureNames) {
			return featureNames[f]
		}
		return fmt.Sprintf("x%d", f)
	}
	for i := range t.nodes {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			if _, err := fmt.Fprintf(w, "  n%d [shape=box,label=\"predict %d\\nn=%d\"];\n",
				i, nd.prediction, nd.n); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\\nn=%d\"];\n", i, name(nd.feature), nd.n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"in\"];\n", i, nd.leftChild); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"out\"];\n", i, nd.rightChild); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
