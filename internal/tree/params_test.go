package tree

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
)

// TestFromParamsRejectsMalformedTrees pins the decode-side hardening: a
// payload that passed the container checks must still be refused when its
// node graph could crash or hang Predict.
func TestFromParamsRejectsMalformedTrees(t *testing.T) {
	leaf := NodeParams{Feature: -1, LeftChild: -1, RightChild: -1}
	base := Params{NFeatures: 2, Nodes: []NodeParams{
		{Feature: 0, LeftChild: 1, RightChild: 2,
			SplitValues: []relational.Value{0, 1}, SplitLeft: []bool{true, false}},
		leaf, leaf,
	}}
	if _, err := FromParams(2, base); err != nil {
		t.Fatalf("well-formed tree rejected: %v", err)
	}
	cases := map[string]func(p *Params){
		"schema feature count mismatch": func(p *Params) { p.NFeatures = 5 },
		"feature out of range":          func(p *Params) { p.Nodes[0].Feature = 2 },
		"self cycle":                    func(p *Params) { p.Nodes[0].LeftChild = 0 },
		"backward edge":                 func(p *Params) { p.Nodes[0].RightChild = 0 },
		"child out of range":            func(p *Params) { p.Nodes[0].LeftChild = 9 },
		"split mask length mismatch":    func(p *Params) { p.Nodes[0].SplitLeft = p.Nodes[0].SplitLeft[:1] },
		"no nodes":                      func(p *Params) { p.Nodes = nil },
	}
	for name, mutate := range cases {
		p := Params{NFeatures: base.NFeatures, Nodes: append([]NodeParams(nil), base.Nodes...)}
		p.Nodes[0].SplitValues = append([]relational.Value(nil), base.Nodes[0].SplitValues...)
		p.Nodes[0].SplitLeft = append([]bool(nil), base.Nodes[0].SplitLeft...)
		mutate(&p)
		if _, err := FromParams(2, p); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// TestExportImportRoundTrip pins Params export/import at the package level
// (the model codec adds the byte layer on top).
func TestExportImportRoundTrip(t *testing.T) {
	features := []ml.Feature{{Name: "a", Cardinality: 4}, {Name: "b", Cardinality: 3}}
	ds := &ml.Dataset{
		Features: features,
		X: []relational.Value{
			0, 0, 1, 0, 2, 1, 3, 1, 0, 2, 1, 2, 2, 0, 3, 2,
		},
		Y: []int8{0, 0, 1, 1, 0, 1, 1, 0},
	}
	tr := New(Config{Criterion: Gini, MinSplit: 2, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	p, err := tr.ExportParams()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromParams(len(features), p)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]relational.Value, 2)
	for a := relational.Value(0); a < 4; a++ {
		for b := relational.Value(0); b < 3; b++ {
			row[0], row[1] = a, b
			if tr.Predict(row) != got.Predict(row) {
				t.Fatalf("(%d,%d): prediction changed across export/import", a, b)
			}
		}
	}
}
