package tree

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// TestZoneSkipMatchesFullSearch pins the zone-map feature skip: over a
// segmented relation carrying constant columns, the batched split search
// with the skip enabled (default) must fit a bit-identical tree to the
// search with NoZoneSkip — a constant feature can never win a split, so
// proving it constant from statistics and never gathering it changes cost,
// not output.
func TestZoneSkipMatchesFullSearch(t *testing.T) {
	r := rng.New(77)
	keyDom := relational.NewDomain("RID", 60)
	schema := relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"},
		relational.Column{Name: "const1", Kind: relational.KindFeature, Domain: relational.NewDomain("c1", 16)},
		relational.Column{Name: "a", Kind: relational.KindFeature, Domain: relational.NewDomain("a", 5)},
		relational.Column{Name: "const2", Kind: relational.KindFeature, Domain: relational.NewDomain("c2", 300)},
	)
	tab := relational.NewTable("S", schema, 0)
	n := 2 * parallelSplitThreshold
	for i := 0; i < n; i++ {
		fk := relational.Value(r.Intn(60))
		a := relational.Value(r.Intn(5))
		y := relational.Value((int(fk)/10 + int(a)) % 2)
		if r.Intn(12) == 0 {
			y = 1 - y
		}
		tab.MustAppendRow([]relational.Value{y, fk, 7, a, 250})
	}
	st, err := relational.MaterializeSegmented(tab, "seg", relational.SegmentOptions{SegmentSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ml.FromRelation(st, []int{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := ds.FeatureRange(1); !ok || lo != 7 || hi != 7 {
		t.Fatalf("const1 FeatureRange = [%d,%d] ok=%v, want constant 7", lo, hi, ok)
	}

	cfg := Config{Criterion: Gini, MinSplit: 20, CP: 1e-4}
	skip := New(cfg)
	if err := skip.Fit(ds); err != nil {
		t.Fatal(err)
	}
	cfg.NoZoneSkip = true
	full := New(cfg)
	if err := full.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if sn, fn := len(skip.nodes), len(full.nodes); sn != fn {
		t.Fatalf("node counts diverged: skip %d vs full %d", sn, fn)
	}
	for k := range skip.nodes {
		snd, fnd := &skip.nodes[k], &full.nodes[k]
		if snd.feature != fnd.feature || snd.leftChild != fnd.leftChild ||
			snd.rightChild != fnd.rightChild || snd.prediction != fnd.prediction ||
			snd.n != fnd.n || snd.nLeft != fnd.nLeft {
			t.Fatalf("node %d diverged: %+v vs %+v", k, snd, fnd)
		}
	}
	// The constant features (dataset positions 1 and 3) must split nowhere.
	for f := range skip.FeatureUsage() {
		if f == 1 || f == 3 {
			t.Fatalf("constant feature %d used for a split", f)
		}
	}
	if skip.NumLeaves() < 2 {
		t.Fatal("tree learned nothing; the equivalence check is vacuous")
	}
}
