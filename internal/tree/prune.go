package tree

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// PruneCCP applies cost-complexity (weakest-link) post-pruning, the second
// half of the CART/rpart procedure: grow a large tree (low cp), then walk
// the nested sequence of subtrees obtained by repeatedly collapsing the
// internal node with the smallest
//
//	α = (errors(node as leaf) − errors(subtree)) / (leaves(subtree) − 1)
//
// computed on the training set, and keep the subtree with the best accuracy
// on the validation set (rpart selects by cross-validation error; a held-out
// validation split is this repository's equivalent, since the paper's
// datasets come pre-split).
//
// The tree is modified in place. PruneCCP returns the number of split nodes
// collapsed. Calling it on an unfitted tree is an error.
func (t *Tree) PruneCCP(train, validation *ml.Dataset) (int, error) {
	if len(t.nodes) == 0 {
		return 0, fmt.Errorf("tree: prune called before Fit")
	}
	if validation.NumExamples() == 0 {
		return 0, fmt.Errorf("tree: empty validation set")
	}

	// Training misclassification count per node when the node predicts its
	// own majority class; filled by routing every training example.
	n := len(t.nodes)
	wrongAsLeaf := make([]int, n)
	for i := 0; i < train.NumExamples(); i++ {
		row := train.Row(i)
		y := train.Label(i)
		at := 0
		for {
			nd := &t.nodes[at]
			if nd.prediction != y {
				wrongAsLeaf[at]++
			}
			if nd.feature < 0 || t.collapsed(at) {
				break
			}
			left, seen := nd.goLeft[row[nd.feature]]
			if !seen {
				left = nd.nLeft*2 >= nd.n
			}
			if left {
				at = nd.leftChild
			} else {
				at = nd.rightChild
			}
		}
	}

	bestAcc := ml.Accuracy(t, validation)
	bestCut := 0 // number of collapses in the best subtree so far
	cuts := 0

	for {
		// Subtree stats under the current collapse set.
		leaves, wrongSub := t.subtreeStats(wrongAsLeaf)
		// Find the weakest link among active internal nodes.
		weakest, weakestAlpha := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			nd := &t.nodes[i]
			if nd.feature < 0 || t.collapsed(i) {
				continue
			}
			denom := float64(leaves[i] - 1)
			if denom <= 0 {
				continue
			}
			alpha := float64(wrongAsLeaf[i]-wrongSub[i]) / denom
			if alpha < weakestAlpha {
				weakestAlpha = alpha
				weakest = i
			}
		}
		if weakest < 0 {
			break // only the root leaf remains
		}
		if t.collapseSet == nil {
			t.collapseSet = make(map[int]bool)
		}
		t.collapseSet[weakest] = true
		t.collapseOrder = append(t.collapseOrder, weakest)
		cuts++
		if acc := ml.Accuracy(t, validation); acc >= bestAcc {
			bestAcc = acc
			bestCut = cuts
		}
	}

	// Replay the collapse sequence up to the best prefix: collapses were
	// recorded in order in collapseOrder via collapseSet insertion order —
	// rebuild deterministically by re-running the loop is overkill; instead
	// we tracked insertion order below.
	t.truncateCollapses(bestCut)
	return bestCut, nil
}

// collapseSet marks internal nodes that now behave as leaves; collapseOrder
// records insertion order so a prefix can be kept.
func (t *Tree) collapsed(i int) bool {
	return t.collapseSet[i]
}

// subtreeStats computes, for every node under the current collapse set, the
// number of effective leaves and the training misclassifications of the
// (possibly collapsed) subtree rooted there.
func (t *Tree) subtreeStats(wrongAsLeaf []int) (leaves, wrongSub []int) {
	n := len(t.nodes)
	leaves = make([]int, n)
	wrongSub = make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		nd := &t.nodes[i]
		if nd.feature < 0 || t.collapsed(i) {
			leaves[i] = 1
			wrongSub[i] = wrongAsLeaf[i]
			return
		}
		rec(nd.leftChild)
		rec(nd.rightChild)
		leaves[i] = leaves[nd.leftChild] + leaves[nd.rightChild]
		wrongSub[i] = wrongSub[nd.leftChild] + wrongSub[nd.rightChild]
	}
	rec(0)
	return leaves, wrongSub
}

// truncateCollapses keeps only the first k collapses and physically rewrites
// the kept ones into leaves so Predict needs no collapse lookups afterwards.
func (t *Tree) truncateCollapses(k int) {
	kept := t.collapseOrder
	if k < len(kept) {
		kept = kept[:k]
	}
	t.collapseSet = nil
	t.collapseOrder = nil
	for _, i := range kept {
		nd := &t.nodes[i]
		nd.feature = -1
		nd.goLeft = nil
		nd.leftChild = -1
		nd.rightChild = -1
	}
}
