// Package tree implements a CART-style binary decision tree for categorical
// features, mirroring the configuration the paper drives through R's rpart
// (gini and information-gain splits) and CORElearn (gain ratio):
//
//   - minsplit: the minimum number of examples a node must hold before a
//     split is even attempted;
//   - cp: the complexity parameter — a split is kept only if it improves the
//     whole-tree impurity by at least cp × (root impurity), which is rpart's
//     pre-pruning rule.
//
// Categorical splits are binary subset splits. For a binary target and any
// concave impurity (gini, entropy), the optimal subset split is found by
// sorting the categories by P(Y=1 | value) and scanning the |D|−1 boundary
// partitions (Breiman et al., 1984), which makes large-domain foreign-key
// features — the heart of the paper — tractable: cost O(|D| log |D|) rather
// than O(2^|D|).
//
// Unseen values: the paper notes that R's tree implementations simply crash
// when a foreign-key value that never occurred in training shows up at test
// time (§6.2). The tree makes that policy explicit and pluggable via
// UnseenPolicy; the Figure 11 smoothing experiments install a Smoother.
package tree

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/ml"
	"repro/internal/relational"
)

// Criterion selects the impurity function used to score splits.
type Criterion int

const (
	// Gini is the CART gini index (rpart's default).
	Gini Criterion = iota
	// InfoGain is entropy reduction (rpart's "information" split).
	InfoGain
	// GainRatio is information gain normalized by the split's intrinsic
	// information (Quinlan's C4.5 criterion; the paper uses CORElearn's).
	GainRatio
)

func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case InfoGain:
		return "information"
	case GainRatio:
		return "gain-ratio"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// UnseenPolicy decides what Predict does when a test example carries a
// feature value that never reached a split node during training.
type UnseenPolicy int

const (
	// UnseenMajority routes the example to the branch holding the majority
	// of the node's training examples (the default; a standard heuristic).
	UnseenMajority UnseenPolicy = iota
	// UnseenError makes Predict panic, reproducing the R behaviour the
	// paper complains about. Use only in tests.
	UnseenError
	// UnseenSmooth invokes the configured Smoother to remap the value to a
	// value seen during training, then routes normally (Figure 11).
	UnseenSmooth
)

// Smoother remaps an unseen value of feature j to a value that was seen in
// training. Implementations live in internal/fk.
type Smoother interface {
	Remap(feature int, v relational.Value) relational.Value
}

// Config holds the tunable hyper-parameters, matching the paper's grid:
// minsplit ∈ {1,10,100,1000}, cp ∈ {1e-4,1e-3,0.01,0.1,0}.
type Config struct {
	Criterion Criterion
	MinSplit  int
	CP        float64
	MaxDepth  int // 0 means unlimited
	Unseen    UnseenPolicy
	Smoother  Smoother
	// RowAtATime forces the historical cell-at-a-time split search (per-node
	// map tallies via Dataset.At) instead of the batched column-scan path.
	// The two are bit-identical; the flag exists for A/B benchmarks and
	// equivalence tests.
	RowAtATime bool
	// NoZoneSkip disables the zone-map feature skip in the batched split
	// search (a feature proven constant by the storage engine's statistics is
	// never gathered — it cannot split). The skip is bit-identical to
	// tallying the constant column, since a single-valued feature yields
	// fewer than two distinct tallies and is discarded anyway; the flag
	// exists for A/B benchmarks and equivalence tests.
	NoZoneSkip bool
}

// DefaultConfig mirrors rpart defaults closely enough for tests.
func DefaultConfig() Config {
	return Config{Criterion: Gini, MinSplit: 20, CP: 0.01}
}

// node is one tree node. Leaves have leftChild == -1.
type node struct {
	// feature is the split feature index; goLeft[v] is true when value v
	// routes left. Values absent from goLeft's map were unseen at this node.
	feature    int
	goLeft     map[relational.Value]bool
	leftChild  int
	rightChild int
	// prediction and counts are populated for every node so that unseen
	// routing can fall back mid-path.
	prediction int8
	n          int
	nLeft      int
}

// Tree is a fitted decision tree classifier. The zero value is unusable;
// construct with New and call Fit.
type Tree struct {
	cfg       Config
	nodes     []node
	nFeatures int
	// batch holds the columnar split-search scratch while Fit runs; nil
	// afterwards (and always nil under Config.RowAtATime).
	batch *batchState
	// collapseSet/collapseOrder track internal nodes temporarily treated as
	// leaves during cost-complexity pruning; truncateCollapses bakes the
	// chosen prefix into the node array and clears both.
	collapseSet   map[int]bool
	collapseOrder []int
}

// Batch split-search tuning. A node's examples are processed in morsel-sized
// gather+tally steps; nodes at least parallelSplitThreshold examples wide
// fan their morsel spans out across goroutines (bounded by
// ml.MaxParallelism; ml.ParallelFor additionally degrades nested fan-outs to
// sequential, so a Fit inside a grid-search worker never stacks pools). The
// tallies are integer sums, so the reduction is deterministic regardless of
// scheduling; smaller nodes stay sequential to keep goroutine overhead away
// from the deep, narrow part of the tree.
const (
	batchMorsel            = 4096
	parallelSplitThreshold = 4096
)

// batchState is the per-Fit scratch of the columnar split search. All
// buffers are allocated once per Fit and reused at every (node, feature)
// pair; per-value state (cnt, seen) is cleared via the distinct-value list,
// so a small node never pays O(domain) for a large-cardinality feature.
type batchState struct {
	labels   []int8             // per-example labels, scanned once per Fit
	nodeY    []int8             // node-local labels aligned to the node's idx
	vals     []relational.Value // gathered feature column, node-local
	cnt      [][]int32          // per-span tallies: cnt[s][2v] = count, cnt[s][2v+1] = positives
	seen     []bool             // distinct-value marks, len = max cardinality
	distinct []relational.Value // distinct values of the current column
	tallies  []vc               // merged per-value tallies handed to evalFeature
}

func newBatchState(train *ml.Dataset) *batchState {
	n := train.NumExamples()
	maxCard := 2
	for _, f := range train.Features {
		if f.Cardinality > maxCard {
			maxCard = f.Cardinality
		}
	}
	spans := ml.Parallelism((n + batchMorsel - 1) / batchMorsel)
	if spans < 1 {
		spans = 1
	}
	bs := &batchState{
		labels: make([]int8, n),
		nodeY:  make([]int8, n),
		vals:   make([]relational.Value, n),
		cnt:    make([][]int32, spans),
		seen:   make([]bool, maxCard),
	}
	train.ScanLabels(bs.labels, 0)
	for s := range bs.cnt {
		bs.cnt[s] = make([]int32, 2*maxCard)
	}
	return bs
}

// New returns an unfitted tree with the given configuration.
func New(cfg Config) *Tree {
	if cfg.MinSplit < 1 {
		cfg.MinSplit = 1
	}
	return &Tree{cfg: cfg}
}

// Name implements ml.Named.
func (t *Tree) Name() string { return "DecisionTree(" + t.cfg.Criterion.String() + ")" }

// impurity computes the node impurity for (pos, n) under the configured
// criterion. GainRatio uses entropy here; the ratio normalization happens at
// split scoring.
func (t *Tree) impurity(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	switch t.cfg.Criterion {
	case Gini:
		return 2 * p * (1 - p)
	default: // InfoGain, GainRatio
		return binaryEntropy(p)
	}
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// split describes a candidate split during search. gain is the tree-level
// weighted impurity decrease used by the cp test; score is the selection
// criterion value (raw decrease, or the ratio for GainRatio).
type split struct {
	feature int
	goLeft  map[relational.Value]bool
	gain    float64
	score   float64
	nLeft   int
}

// Fit grows the tree on train. It never returns an error for well-formed
// datasets; an empty dataset is rejected.
//
// The split search runs on the batched column path by default (see
// bestSplitBatch); Config.RowAtATime restores the historical per-cell
// search. Both produce bit-identical trees — the batch path changes the
// order work is done, not the arithmetic.
func (t *Tree) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("tree: empty training set")
	}
	t.nFeatures = train.NumFeatures()
	t.nodes = t.nodes[:0]
	if !t.cfg.RowAtATime {
		t.batch = newBatchState(train)
	}
	idx := make([]int, train.NumExamples())
	for i := range idx {
		idx[i] = i
	}
	rootImpurity := t.impurity(t.countPos(train, idx), len(idx))
	if rootImpurity == 0 {
		rootImpurity = 1 // degenerate pure root; cp threshold is irrelevant
	}
	growT0 := time.Now()
	t.grow(train, idx, rootImpurity, 0)
	splitSpan.ObserveSince(growT0)
	t.batch = nil
	return nil
}

// countPos counts positive labels in the node's example set, reading the
// label vector cached at Fit time when the batch path is active.
func (t *Tree) countPos(ds *ml.Dataset, idx []int) int {
	pos := 0
	if t.batch != nil {
		for _, i := range idx {
			pos += int(t.batch.labels[i])
		}
		return pos
	}
	for _, i := range idx {
		if ds.Label(i) == 1 {
			pos++
		}
	}
	return pos
}

// grow recursively builds the subtree over idx and returns its node index.
func (t *Tree) grow(ds *ml.Dataset, idx []int, rootImpurity float64, depth int) int {
	pos := t.countPos(ds, idx)
	me := len(t.nodes)
	pred := int8(0)
	if 2*pos >= len(idx) {
		pred = 1
	}
	t.nodes = append(t.nodes, node{
		feature: -1, leftChild: -1, rightChild: -1,
		prediction: pred, n: len(idx),
	})

	if pos == 0 || pos == len(idx) {
		return me // pure
	}
	if len(idx) < t.cfg.MinSplit {
		return me
	}
	if t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth {
		return me
	}
	best := t.bestSplit(ds, idx)
	if best == nil {
		return me
	}
	// rpart's cp rule: keep the split only if the tree-level impurity
	// improvement is at least cp × root impurity. gain here is already the
	// node-local impurity decrease weighted by the node's example share.
	if t.cfg.CP > 0 && best.gain < t.cfg.CP*rootImpurity {
		return me
	}

	left := make([]int, 0, best.nLeft)
	right := make([]int, 0, len(idx)-best.nLeft)
	if t.batch != nil {
		// Batch path: one gather of the winning feature column, then route.
		// Wide nodes shard the gather's morsel ranges across the pool (each
		// span writes a disjoint slice of vals); routing itself stays a
		// sequential order-preserving pass, so the children's example order —
		// and therefore the fitted tree — is identical at any worker count.
		vals := t.batch.vals[:len(idx)]
		if n := len(idx); n >= parallelSplitThreshold {
			spans := ml.Parallelism((n + batchMorsel - 1) / batchMorsel)
			ml.ParallelFor(spans, func(s int) {
				lo, hi := n*s/spans, n*(s+1)/spans
				for m := lo; m < hi; m += batchMorsel {
					mh := min(m+batchMorsel, hi)
					ds.GatherFeature(vals[m:mh], best.feature, idx[m:mh])
				}
			})
		} else {
			ds.GatherFeature(vals, best.feature, idx)
		}
		for k, i := range idx {
			if best.goLeft[vals[k]] {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
	} else {
		for _, i := range idx {
			if best.goLeft[ds.At(i, best.feature)] {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return me
	}
	t.nodes[me].feature = best.feature
	t.nodes[me].goLeft = best.goLeft
	t.nodes[me].nLeft = len(left)
	lc := t.grow(ds, left, rootImpurity, depth+1)
	rc := t.grow(ds, right, rootImpurity, depth+1)
	t.nodes[me].leftChild = lc
	t.nodes[me].rightChild = rc
	return me
}

// vc is one present value's tally at a node: occurrence count, positive
// count, and the positive rate the optimal-partition sort keys on.
type vc struct {
	v    relational.Value
	n    int
	pos  int
	rate float64
}

// bestSplit searches all features for the best binary subset split,
// dispatching to the batched column-scan search or the historical per-cell
// search. Both tally identical (value → count, positives) statistics and
// share evalFeature, so the chosen split is bit-identical either way.
func (t *Tree) bestSplit(ds *ml.Dataset, idx []int) *split {
	if t.batch != nil {
		return t.bestSplitBatch(ds, idx)
	}
	return t.bestSplitRows(ds, idx)
}

// bestSplitRows is the row-at-a-time search: per feature, a map tally over
// the node's examples via per-cell At.
func (t *Tree) bestSplitRows(ds *ml.Dataset, idx []int) *split {
	var best *split
	nodeN := len(idx)
	nodePos := t.countPos(ds, idx)
	nodeImp := t.impurity(nodePos, nodeN)
	totalN := float64(ds.NumExamples())

	for j := 0; j < ds.NumFeatures(); j++ {
		card := ds.Features[j].Cardinality
		// Tally per-value (count, positives) over the node's examples.
		cnt := make(map[relational.Value][2]int, min(card, nodeN))
		for _, i := range idx {
			v := ds.At(i, j)
			c := cnt[v]
			c[0]++
			if ds.Label(i) == 1 {
				c[1]++
			}
			cnt[v] = c
		}
		if len(cnt) < 2 {
			continue
		}
		vals := make([]vc, 0, len(cnt))
		for v, c := range cnt {
			vals = append(vals, vc{v: v, n: c[0], pos: c[1], rate: float64(c[1]) / float64(c[0])})
		}
		best = t.evalFeature(j, vals, nodeN, nodePos, nodeImp, totalN, best)
	}
	return best
}

// bestSplitBatch is the columnar search. Per candidate feature it gathers
// the feature's column for the node's examples in morsel-sized chunks —
// fanned out across goroutines for wide nodes — tallies into dense
// per-span count arrays, and merges the spans over the distinct-value list.
// The per-(node, feature) cost is O(|node| + distinct), independent of the
// feature's domain size, and every inner loop is a devirtualized array walk.
func (t *Tree) bestSplitBatch(ds *ml.Dataset, idx []int) *split {
	bs := t.batch
	nodeN := len(idx)
	nodeY := bs.nodeY[:nodeN]
	nodePos := 0
	for k, i := range idx {
		y := bs.labels[i]
		nodeY[k] = y
		nodePos += int(y)
	}
	nodeImp := t.impurity(nodePos, nodeN)
	totalN := float64(ds.NumExamples())

	spans := 1
	if nodeN >= parallelSplitThreshold {
		spans = ml.Parallelism((nodeN + batchMorsel - 1) / batchMorsel)
		if spans > len(bs.cnt) {
			spans = len(bs.cnt)
		}
		if spans < 1 {
			spans = 1
		}
	}

	var best *split
	vals := bs.vals[:nodeN]
	for j := 0; j < ds.NumFeatures(); j++ {
		if !t.cfg.NoZoneSkip {
			// Zone-map skip: a feature whose storage-level [min, max] proves
			// it constant can never produce two tally buckets — skip the
			// gather entirely. Same outcome as tallying (len(tallies) < 2),
			// so the fitted tree is unchanged.
			if lo, hi, ok := ds.FeatureRange(j); ok && lo == hi {
				continue
			}
		}
		ml.ParallelFor(spans, func(s int) {
			lo := nodeN * s / spans
			hi := nodeN * (s + 1) / spans
			cnt := bs.cnt[s]
			for m := lo; m < hi; m += batchMorsel {
				mh := min(m+batchMorsel, hi)
				ds.GatherFeature(vals[m:mh], j, idx[m:mh])
				for k := m; k < mh; k++ {
					v := vals[k]
					cnt[2*v]++
					cnt[2*v+1] += int32(nodeY[k])
				}
			}
		})
		// Enumerate distinct values (first-occurrence order — the sort in
		// evalFeature canonicalizes it), merge the span tallies, and clear
		// the touched slots for the next feature.
		distinct := bs.distinct[:0]
		for _, v := range vals {
			if !bs.seen[v] {
				bs.seen[v] = true
				distinct = append(distinct, v)
			}
		}
		tallies := bs.tallies[:0]
		for _, v := range distinct {
			var cn, cp int32
			for s := 0; s < spans; s++ {
				cn += bs.cnt[s][2*v]
				cp += bs.cnt[s][2*v+1]
				bs.cnt[s][2*v], bs.cnt[s][2*v+1] = 0, 0
			}
			bs.seen[v] = false
			tallies = append(tallies, vc{v: v, n: int(cn), pos: int(cp), rate: float64(cp) / float64(cn)})
		}
		bs.distinct = distinct[:0]
		bs.tallies = tallies[:0]
		if len(tallies) < 2 {
			continue
		}
		best = t.evalFeature(j, tallies, nodeN, nodePos, nodeImp, totalN, best)
	}
	return best
}

// evalFeature sorts one feature's value tallies by P(Y=1 | v) and scans the
// |D|−1 boundary partitions (Breiman's optimal binary subset split for a
// binary target), returning the better of the incoming best and this
// feature's best candidate. Shared by both search paths so their float
// arithmetic — and therefore the fitted tree — is identical.
func (t *Tree) evalFeature(j int, vals []vc, nodeN, nodePos int, nodeImp, totalN float64, best *split) *split {
	sort.Slice(vals, func(a, b int) bool {
		if vals[a].rate != vals[b].rate {
			return vals[a].rate < vals[b].rate
		}
		return vals[a].v < vals[b].v
	})
	leftN, leftPos := 0, 0
	for cut := 0; cut < len(vals)-1; cut++ {
		leftN += vals[cut].n
		leftPos += vals[cut].pos
		rightN := nodeN - leftN
		rightPos := nodePos - leftPos
		wl := float64(leftN) / float64(nodeN)
		wr := float64(rightN) / float64(nodeN)
		childImp := wl*t.impurity(leftPos, leftN) + wr*t.impurity(rightPos, rightN)
		decrease := nodeImp - childImp
		score := decrease
		if t.cfg.Criterion == GainRatio {
			// Normalize by the split's intrinsic information.
			ii := binaryEntropy(wl)
			if ii < 1e-9 {
				continue
			}
			score = decrease / ii
		}
		if score < 0 {
			continue
		}
		// Zero-gain splits are allowed (a fully grown cp=0 tree keeps
		// partitioning until purity, which is how CART learns XOR-like
		// interactions whose first split has no marginal gain); the cp
		// rule prunes them whenever cp > 0.
		// Tree-level weighted gain used for the cp test. For gain
		// ratio the selection uses the ratio but the cp test still
		// uses raw decrease, matching CORElearn's pruning semantics.
		gain := decrease * float64(nodeN) / totalN
		if best == nil || score > best.score {
			goLeft := make(map[relational.Value]bool, len(vals))
			for k := 0; k <= cut; k++ {
				goLeft[vals[k].v] = true
			}
			for k := cut + 1; k < len(vals); k++ {
				goLeft[vals[k].v] = false
			}
			best = &split{feature: j, goLeft: goLeft, gain: gain, score: score, nLeft: leftN}
		}
	}
	return best
}

// Predict classifies one example.
func (t *Tree) Predict(row []relational.Value) int8 {
	if len(t.nodes) == 0 {
		return 0
	}
	at := 0
	for {
		nd := &t.nodes[at]
		if nd.feature < 0 || t.collapseSet[at] {
			return nd.prediction
		}
		v := row[nd.feature]
		left, seen := nd.goLeft[v]
		if !seen {
			switch t.cfg.Unseen {
			case UnseenError:
				panic(fmt.Sprintf("tree: value %d of feature %d unseen during training", v, nd.feature))
			case UnseenSmooth:
				if t.cfg.Smoother != nil {
					rv := t.cfg.Smoother.Remap(nd.feature, v)
					if l, ok := nd.goLeft[rv]; ok {
						left = l
						break
					}
				}
				left = nd.nLeft*2 >= nd.n
			default: // UnseenMajority
				left = nd.nLeft*2 >= nd.n
			}
		}
		if left {
			at = nd.leftChild
		} else {
			at = nd.rightChild
		}
	}
}

// NumNodes returns the number of allocated nodes (pruning rewrites nodes in
// place, so orphaned descendants still occupy slots; use NumLeaves and
// Depth for the logical tree shape).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaf nodes reachable from the root.
func (t *Tree) NumLeaves() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var rec func(i int) int
	rec = func(i int) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 1
		}
		return rec(nd.leftChild) + rec(nd.rightChild)
	}
	return rec(0)
}

// Depth returns the maximum root-to-leaf depth (root = 0). An unfitted tree
// has depth -1.
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return -1
	}
	var rec func(i int) int
	rec = func(i int) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 0
		}
		l, r := rec(nd.leftChild), rec(nd.rightChild)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(0)
}

// FeatureUsage counts how many reachable split nodes test each feature. The
// paper inspects this to observe that FK is "used heavily for partitioning
// and seldom was a feature from X_R" (§4.1).
func (t *Tree) FeatureUsage() map[int]int {
	out := make(map[int]int)
	if len(t.nodes) == 0 {
		return out
	}
	var rec func(i int)
	rec = func(i int) {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return
		}
		out[nd.feature]++
		rec(nd.leftChild)
		rec(nd.rightChild)
	}
	rec(0)
	return out
}
