// Package tree implements a CART-style binary decision tree for categorical
// features, mirroring the configuration the paper drives through R's rpart
// (gini and information-gain splits) and CORElearn (gain ratio):
//
//   - minsplit: the minimum number of examples a node must hold before a
//     split is even attempted;
//   - cp: the complexity parameter — a split is kept only if it improves the
//     whole-tree impurity by at least cp × (root impurity), which is rpart's
//     pre-pruning rule.
//
// Categorical splits are binary subset splits. For a binary target and any
// concave impurity (gini, entropy), the optimal subset split is found by
// sorting the categories by P(Y=1 | value) and scanning the |D|−1 boundary
// partitions (Breiman et al., 1984), which makes large-domain foreign-key
// features — the heart of the paper — tractable: cost O(|D| log |D|) rather
// than O(2^|D|).
//
// Unseen values: the paper notes that R's tree implementations simply crash
// when a foreign-key value that never occurred in training shows up at test
// time (§6.2). The tree makes that policy explicit and pluggable via
// UnseenPolicy; the Figure 11 smoothing experiments install a Smoother.
package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/relational"
)

// Criterion selects the impurity function used to score splits.
type Criterion int

const (
	// Gini is the CART gini index (rpart's default).
	Gini Criterion = iota
	// InfoGain is entropy reduction (rpart's "information" split).
	InfoGain
	// GainRatio is information gain normalized by the split's intrinsic
	// information (Quinlan's C4.5 criterion; the paper uses CORElearn's).
	GainRatio
)

func (c Criterion) String() string {
	switch c {
	case Gini:
		return "gini"
	case InfoGain:
		return "information"
	case GainRatio:
		return "gain-ratio"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// UnseenPolicy decides what Predict does when a test example carries a
// feature value that never reached a split node during training.
type UnseenPolicy int

const (
	// UnseenMajority routes the example to the branch holding the majority
	// of the node's training examples (the default; a standard heuristic).
	UnseenMajority UnseenPolicy = iota
	// UnseenError makes Predict panic, reproducing the R behaviour the
	// paper complains about. Use only in tests.
	UnseenError
	// UnseenSmooth invokes the configured Smoother to remap the value to a
	// value seen during training, then routes normally (Figure 11).
	UnseenSmooth
)

// Smoother remaps an unseen value of feature j to a value that was seen in
// training. Implementations live in internal/fk.
type Smoother interface {
	Remap(feature int, v relational.Value) relational.Value
}

// Config holds the tunable hyper-parameters, matching the paper's grid:
// minsplit ∈ {1,10,100,1000}, cp ∈ {1e-4,1e-3,0.01,0.1,0}.
type Config struct {
	Criterion Criterion
	MinSplit  int
	CP        float64
	MaxDepth  int // 0 means unlimited
	Unseen    UnseenPolicy
	Smoother  Smoother
}

// DefaultConfig mirrors rpart defaults closely enough for tests.
func DefaultConfig() Config {
	return Config{Criterion: Gini, MinSplit: 20, CP: 0.01}
}

// node is one tree node. Leaves have leftChild == -1.
type node struct {
	// feature is the split feature index; goLeft[v] is true when value v
	// routes left. Values absent from goLeft's map were unseen at this node.
	feature    int
	goLeft     map[relational.Value]bool
	leftChild  int
	rightChild int
	// prediction and counts are populated for every node so that unseen
	// routing can fall back mid-path.
	prediction int8
	n          int
	nLeft      int
}

// Tree is a fitted decision tree classifier. The zero value is unusable;
// construct with New and call Fit.
type Tree struct {
	cfg       Config
	nodes     []node
	nFeatures int
	// collapseSet/collapseOrder track internal nodes temporarily treated as
	// leaves during cost-complexity pruning; truncateCollapses bakes the
	// chosen prefix into the node array and clears both.
	collapseSet   map[int]bool
	collapseOrder []int
}

// New returns an unfitted tree with the given configuration.
func New(cfg Config) *Tree {
	if cfg.MinSplit < 1 {
		cfg.MinSplit = 1
	}
	return &Tree{cfg: cfg}
}

// Name implements ml.Named.
func (t *Tree) Name() string { return "DecisionTree(" + t.cfg.Criterion.String() + ")" }

// impurity computes the node impurity for (pos, n) under the configured
// criterion. GainRatio uses entropy here; the ratio normalization happens at
// split scoring.
func (t *Tree) impurity(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	switch t.cfg.Criterion {
	case Gini:
		return 2 * p * (1 - p)
	default: // InfoGain, GainRatio
		return binaryEntropy(p)
	}
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// split describes a candidate split during search. gain is the tree-level
// weighted impurity decrease used by the cp test; score is the selection
// criterion value (raw decrease, or the ratio for GainRatio).
type split struct {
	feature int
	goLeft  map[relational.Value]bool
	gain    float64
	score   float64
	nLeft   int
}

// Fit grows the tree on train. It never returns an error for well-formed
// datasets; an empty dataset is rejected.
func (t *Tree) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("tree: empty training set")
	}
	t.nFeatures = train.NumFeatures()
	t.nodes = t.nodes[:0]
	idx := make([]int, train.NumExamples())
	for i := range idx {
		idx[i] = i
	}
	rootImpurity := t.impurity(countPos(train, idx), len(idx))
	if rootImpurity == 0 {
		rootImpurity = 1 // degenerate pure root; cp threshold is irrelevant
	}
	t.grow(train, idx, rootImpurity, 0)
	return nil
}

func countPos(ds *ml.Dataset, idx []int) int {
	pos := 0
	for _, i := range idx {
		if ds.Label(i) == 1 {
			pos++
		}
	}
	return pos
}

// grow recursively builds the subtree over idx and returns its node index.
func (t *Tree) grow(ds *ml.Dataset, idx []int, rootImpurity float64, depth int) int {
	pos := countPos(ds, idx)
	me := len(t.nodes)
	pred := int8(0)
	if 2*pos >= len(idx) {
		pred = 1
	}
	t.nodes = append(t.nodes, node{
		feature: -1, leftChild: -1, rightChild: -1,
		prediction: pred, n: len(idx),
	})

	if pos == 0 || pos == len(idx) {
		return me // pure
	}
	if len(idx) < t.cfg.MinSplit {
		return me
	}
	if t.cfg.MaxDepth > 0 && depth >= t.cfg.MaxDepth {
		return me
	}
	best := t.bestSplit(ds, idx)
	if best == nil {
		return me
	}
	// rpart's cp rule: keep the split only if the tree-level impurity
	// improvement is at least cp × root impurity. gain here is already the
	// node-local impurity decrease weighted by the node's example share.
	if t.cfg.CP > 0 && best.gain < t.cfg.CP*rootImpurity {
		return me
	}

	left := make([]int, 0, best.nLeft)
	right := make([]int, 0, len(idx)-best.nLeft)
	for _, i := range idx {
		if best.goLeft[ds.At(i, best.feature)] {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return me
	}
	t.nodes[me].feature = best.feature
	t.nodes[me].goLeft = best.goLeft
	t.nodes[me].nLeft = len(left)
	lc := t.grow(ds, left, rootImpurity, depth+1)
	rc := t.grow(ds, right, rootImpurity, depth+1)
	t.nodes[me].leftChild = lc
	t.nodes[me].rightChild = rc
	return me
}

// bestSplit searches all features for the best binary subset split.
func (t *Tree) bestSplit(ds *ml.Dataset, idx []int) *split {
	var best *split
	nodeN := len(idx)
	nodePos := countPos(ds, idx)
	nodeImp := t.impurity(nodePos, nodeN)
	totalN := float64(ds.NumExamples())

	for j := 0; j < ds.NumFeatures(); j++ {
		card := ds.Features[j].Cardinality
		// Tally per-value (count, positives) over the node's examples.
		cnt := make(map[relational.Value][2]int, min(card, nodeN))
		for _, i := range idx {
			v := ds.At(i, j)
			c := cnt[v]
			c[0]++
			if ds.Label(i) == 1 {
				c[1]++
			}
			cnt[v] = c
		}
		if len(cnt) < 2 {
			continue
		}
		// Sort present values by P(Y=1 | v); scan boundary partitions.
		type vc struct {
			v    relational.Value
			n    int
			pos  int
			rate float64
		}
		vals := make([]vc, 0, len(cnt))
		for v, c := range cnt {
			vals = append(vals, vc{v: v, n: c[0], pos: c[1], rate: float64(c[1]) / float64(c[0])})
		}
		sort.Slice(vals, func(a, b int) bool {
			if vals[a].rate != vals[b].rate {
				return vals[a].rate < vals[b].rate
			}
			return vals[a].v < vals[b].v
		})
		leftN, leftPos := 0, 0
		for cut := 0; cut < len(vals)-1; cut++ {
			leftN += vals[cut].n
			leftPos += vals[cut].pos
			rightN := nodeN - leftN
			rightPos := nodePos - leftPos
			wl := float64(leftN) / float64(nodeN)
			wr := float64(rightN) / float64(nodeN)
			childImp := wl*t.impurity(leftPos, leftN) + wr*t.impurity(rightPos, rightN)
			decrease := nodeImp - childImp
			score := decrease
			if t.cfg.Criterion == GainRatio {
				// Normalize by the split's intrinsic information.
				ii := binaryEntropy(wl)
				if ii < 1e-9 {
					continue
				}
				score = decrease / ii
			}
			if score < 0 {
				continue
			}
			// Zero-gain splits are allowed (a fully grown cp=0 tree keeps
			// partitioning until purity, which is how CART learns XOR-like
			// interactions whose first split has no marginal gain); the cp
			// rule prunes them whenever cp > 0.
			// Tree-level weighted gain used for the cp test. For gain
			// ratio the selection uses the ratio but the cp test still
			// uses raw decrease, matching CORElearn's pruning semantics.
			gain := decrease * float64(nodeN) / totalN
			if best == nil || score > best.score {
				goLeft := make(map[relational.Value]bool, len(vals))
				for k := 0; k <= cut; k++ {
					goLeft[vals[k].v] = true
				}
				for k := cut + 1; k < len(vals); k++ {
					goLeft[vals[k].v] = false
				}
				best = &split{feature: j, goLeft: goLeft, gain: gain, score: score, nLeft: leftN}
			}
		}
	}
	return best
}

// Predict classifies one example.
func (t *Tree) Predict(row []relational.Value) int8 {
	if len(t.nodes) == 0 {
		return 0
	}
	at := 0
	for {
		nd := &t.nodes[at]
		if nd.feature < 0 || t.collapseSet[at] {
			return nd.prediction
		}
		v := row[nd.feature]
		left, seen := nd.goLeft[v]
		if !seen {
			switch t.cfg.Unseen {
			case UnseenError:
				panic(fmt.Sprintf("tree: value %d of feature %d unseen during training", v, nd.feature))
			case UnseenSmooth:
				if t.cfg.Smoother != nil {
					rv := t.cfg.Smoother.Remap(nd.feature, v)
					if l, ok := nd.goLeft[rv]; ok {
						left = l
						break
					}
				}
				left = nd.nLeft*2 >= nd.n
			default: // UnseenMajority
				left = nd.nLeft*2 >= nd.n
			}
		}
		if left {
			at = nd.leftChild
		} else {
			at = nd.rightChild
		}
	}
}

// NumNodes returns the number of allocated nodes (pruning rewrites nodes in
// place, so orphaned descendants still occupy slots; use NumLeaves and
// Depth for the logical tree shape).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaf nodes reachable from the root.
func (t *Tree) NumLeaves() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var rec func(i int) int
	rec = func(i int) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 1
		}
		return rec(nd.leftChild) + rec(nd.rightChild)
	}
	return rec(0)
}

// Depth returns the maximum root-to-leaf depth (root = 0). An unfitted tree
// has depth -1.
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return -1
	}
	var rec func(i int) int
	rec = func(i int) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return 0
		}
		l, r := rec(nd.leftChild), rec(nd.rightChild)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return rec(0)
}

// FeatureUsage counts how many reachable split nodes test each feature. The
// paper inspects this to observe that FK is "used heavily for partitioning
// and seldom was a feature from X_R" (§4.1).
func (t *Tree) FeatureUsage() map[int]int {
	out := make(map[int]int)
	if len(t.nodes) == 0 {
		return out
	}
	var rec func(i int)
	rec = func(i int) {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return
		}
		out[nd.feature]++
		rec(nd.leftChild)
		rec(nd.rightChild)
	}
	rec(0)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
