package tree

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// mkDataset builds a dataset from explicit rows.
func mkDataset(features []ml.Feature, rows [][]relational.Value, ys []int8) *ml.Dataset {
	d := &ml.Dataset{Features: features}
	for _, r := range rows {
		d.X = append(d.X, r...)
	}
	d.Y = append(d.Y, ys...)
	return d
}

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

func TestFitRejectsEmpty(t *testing.T) {
	tr := New(Config{Criterion: Gini, MinSplit: 1})
	if err := tr.Fit(&ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected error on empty dataset")
	}
}

func TestLearnsSingleFeatureRule(t *testing.T) {
	// y = (x == 1), separable with one split.
	for _, crit := range []Criterion{Gini, InfoGain, GainRatio} {
		ds := mkDataset(feats(2),
			[][]relational.Value{{0}, {0}, {1}, {1}, {0}, {1}},
			[]int8{0, 0, 1, 1, 0, 1})
		tr := New(Config{Criterion: crit, MinSplit: 1, CP: 0})
		if err := tr.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if acc := ml.Accuracy(tr, ds); acc != 1.0 {
			t.Fatalf("%v: train accuracy %v, want 1.0", crit, acc)
		}
		if tr.Depth() != 1 {
			t.Fatalf("%v: depth %d, want 1", crit, tr.Depth())
		}
	}
}

func TestLearnsXOR(t *testing.T) {
	// XOR requires depth 2; a linear model cannot represent it.
	rows := [][]relational.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []int8{0, 1, 1, 0}
	// Replicate so minsplit permits splitting.
	var allRows [][]relational.Value
	var allYs []int8
	for rep := 0; rep < 5; rep++ {
		allRows = append(allRows, rows...)
		allYs = append(allYs, ys...)
	}
	ds := mkDataset(feats(2, 2), allRows, allYs)
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(tr, ds); acc != 1.0 {
		t.Fatalf("XOR train accuracy %v, want 1.0", acc)
	}
}

func TestPureNodeStopsGrowing(t *testing.T) {
	ds := mkDataset(feats(2), [][]relational.Value{{0}, {1}, {0}, {1}}, []int8{1, 1, 1, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("pure dataset must yield a single leaf, got %d nodes", tr.NumNodes())
	}
	if tr.Predict([]relational.Value{0}) != 1 {
		t.Fatal("pure-class prediction wrong")
	}
}

func TestMinSplitStopsGrowth(t *testing.T) {
	ds := mkDataset(feats(2),
		[][]relational.Value{{0}, {0}, {1}, {1}},
		[]int8{0, 0, 1, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 100, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Fatalf("minsplit=100 on 4 rows must not split, got %d nodes", tr.NumNodes())
	}
}

func TestCPPrunesWeakSplits(t *testing.T) {
	// Nearly-pure dataset: only 1 of 100 rows deviates; with a huge cp the
	// weak split must be rejected.
	var rows [][]relational.Value
	var ys []int8
	for i := 0; i < 100; i++ {
		v := relational.Value(i % 2)
		y := int8(0)
		if i == 0 {
			y = 1
		}
		rows = append(rows, []relational.Value{v})
		ys = append(ys, y)
	}
	ds := mkDataset(feats(2), rows, ys)
	pruned := New(Config{Criterion: Gini, MinSplit: 1, CP: 0.5})
	if err := pruned.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() != 1 {
		t.Fatalf("cp=0.5 must prune, got %d nodes", pruned.NumNodes())
	}
	grown := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := grown.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if grown.NumNodes() == 1 {
		t.Fatal("cp=0 should allow the split")
	}
}

func TestMaxDepth(t *testing.T) {
	r := rng.New(5)
	var rows [][]relational.Value
	var ys []int8
	for i := 0; i < 200; i++ {
		a, b, c := r.Intn(2), r.Intn(2), r.Intn(2)
		rows = append(rows, []relational.Value{relational.Value(a), relational.Value(b), relational.Value(c)})
		ys = append(ys, int8((a^b)&c))
	}
	ds := mkDataset(feats(2, 2, 2), rows, ys)
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0, MaxDepth: 1})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 1 {
		t.Fatalf("depth %d exceeds MaxDepth 1", tr.Depth())
	}
}

func TestLargeDomainFKRepresentative(t *testing.T) {
	// The paper's core mechanism: an FK with a large domain functionally
	// determines a hidden binary X_r that alone decides Y. A tree trained
	// only on [noise, FK] (NoJoin) must reach the same accuracy as one
	// trained on [noise, FK, Xr] (JoinAll).
	r := rng.New(7)
	const nR = 40
	const nS = 2000
	xr := make([]relational.Value, nR)
	for i := range xr {
		xr[i] = relational.Value(r.Intn(2))
	}
	build := func(withXr bool) *ml.Dataset {
		fs := []ml.Feature{
			{Name: "noise", Cardinality: 4},
			{Name: "FK", Cardinality: nR, IsFK: true},
		}
		if withXr {
			fs = append(fs, ml.Feature{Name: "Xr", Cardinality: 2})
		}
		d := &ml.Dataset{Features: fs}
		rr := rng.New(11)
		for i := 0; i < nS; i++ {
			fk := relational.Value(rr.Intn(nR))
			noise := relational.Value(rr.Intn(4))
			y := int8(xr[fk])
			if rr.Bernoulli(0.05) {
				y = 1 - y
			}
			d.X = append(d.X, noise, fk)
			if withXr {
				d.X = append(d.X, xr[fk])
			}
			d.Y = append(d.Y, y)
		}
		return d
	}
	joinAll := build(true)
	noJoin := build(false)

	trJoin := New(Config{Criterion: Gini, MinSplit: 10, CP: 0.001})
	trNo := New(Config{Criterion: Gini, MinSplit: 10, CP: 0.001})
	if err := trJoin.Fit(joinAll); err != nil {
		t.Fatal(err)
	}
	if err := trNo.Fit(noJoin); err != nil {
		t.Fatal(err)
	}
	accJoin := ml.Accuracy(trJoin, joinAll)
	accNo := ml.Accuracy(trNo, noJoin)
	if accJoin < 0.90 || accNo < 0.90 {
		t.Fatalf("accuracies too low: JoinAll %v NoJoin %v", accJoin, accNo)
	}
	if diff := accJoin - accNo; diff > 0.02 || diff < -0.02 {
		t.Fatalf("NoJoin must track JoinAll: %v vs %v", accNo, accJoin)
	}
	// FK should dominate partitioning in the NoJoin tree.
	usage := trNo.FeatureUsage()
	if usage[1] == 0 {
		t.Fatal("FK never used for splitting")
	}
}

func TestUnseenMajorityRouting(t *testing.T) {
	ds := mkDataset(feats(4),
		[][]relational.Value{{0}, {0}, {0}, {1}},
		[]int8{0, 0, 0, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0, Unseen: UnseenMajority})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// Value 3 unseen: must route with the majority (value 0 side, class 0).
	if got := tr.Predict([]relational.Value{3}); got != 0 {
		t.Fatalf("unseen value routed to %d, want majority class 0", got)
	}
}

func TestUnseenErrorPanics(t *testing.T) {
	ds := mkDataset(feats(4),
		[][]relational.Value{{0}, {0}, {1}, {1}},
		[]int8{0, 0, 1, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0, Unseen: UnseenError})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UnseenError must panic, mirroring R's behaviour")
		}
	}()
	tr.Predict([]relational.Value{3})
}

// mapSmoother remaps via a fixed table.
type mapSmoother map[relational.Value]relational.Value

func (m mapSmoother) Remap(_ int, v relational.Value) relational.Value {
	if rv, ok := m[v]; ok {
		return rv
	}
	return v
}

func TestUnseenSmoothUsesSmoother(t *testing.T) {
	ds := mkDataset(feats(4),
		[][]relational.Value{{0}, {0}, {1}, {1}},
		[]int8{0, 0, 1, 1})
	tr := New(Config{
		Criterion: Gini, MinSplit: 1, CP: 0,
		Unseen:   UnseenSmooth,
		Smoother: mapSmoother{3: 1},
	})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]relational.Value{3}); got != 1 {
		t.Fatalf("smoothing remap 3→1 should predict 1, got %d", got)
	}
}

func TestGainRatioPenalizesUnbalancedSplits(t *testing.T) {
	// A feature with a huge domain where each value isolates one example
	// gives high raw info gain; gain ratio should still work (not crash,
	// produce a usable tree) and the gain-ratio tree should not be worse
	// than majority.
	r := rng.New(13)
	var rows [][]relational.Value
	var ys []int8
	for i := 0; i < 300; i++ {
		big := relational.Value(r.Intn(150))
		good := relational.Value(r.Intn(2))
		rows = append(rows, []relational.Value{big, good})
		y := int8(good)
		if r.Bernoulli(0.1) {
			y = 1 - y
		}
		ys = append(ys, y)
	}
	ds := mkDataset(feats(150, 2), rows, ys)
	tr := New(Config{Criterion: GainRatio, MinSplit: 10, CP: 0.001})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(tr, ds); acc < 0.85 {
		t.Fatalf("gain-ratio accuracy %v too low", acc)
	}
}

func TestDeterministicFit(t *testing.T) {
	r := rng.New(17)
	var rows [][]relational.Value
	var ys []int8
	for i := 0; i < 500; i++ {
		a, b := r.Intn(8), r.Intn(5)
		rows = append(rows, []relational.Value{relational.Value(a), relational.Value(b)})
		ys = append(ys, int8((a+b)%2))
	}
	ds := mkDataset(feats(8, 5), rows, ys)
	t1 := New(Config{Criterion: InfoGain, MinSplit: 5, CP: 0})
	t2 := New(Config{Criterion: InfoGain, MinSplit: 5, CP: 0})
	if err := t1.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if err := t2.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if t1.NumNodes() != t2.NumNodes() {
		t.Fatal("fits differ across runs")
	}
	for i := 0; i < 100; i++ {
		row := []relational.Value{relational.Value(i % 8), relational.Value(i % 5)}
		if t1.Predict(row) != t2.Predict(row) {
			t.Fatal("predictions differ across identical fits")
		}
	}
}

// Property: training accuracy with cp=0, minsplit=1 is always >= majority
// baseline, and predictions are always valid classes.
func TestTreeBeatsOrMatchesMajorityQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(80) + 20
		card := r.Intn(6) + 2
		ds := &ml.Dataset{Features: feats(card, 3)}
		for i := 0; i < n; i++ {
			ds.X = append(ds.X, relational.Value(r.Intn(card)), relational.Value(r.Intn(3)))
			ds.Y = append(ds.Y, int8(r.Intn(2)))
		}
		tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
		if err := tr.Fit(ds); err != nil {
			return false
		}
		maj := &ml.ConstantClassifier{}
		_ = maj.Fit(ds)
		if ml.Accuracy(tr, ds) < ml.Accuracy(maj, ds) {
			return false
		}
		for i := 0; i < n; i++ {
			p := tr.Predict(ds.Row(i))
			if p != 0 && p != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNumLeavesAndUsage(t *testing.T) {
	ds := mkDataset(feats(2, 2),
		[][]relational.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 0}, {1, 1}},
		[]int8{0, 1, 1, 0, 0, 0})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != tr.NumNodes()-len(tr.FeatureUsage()) {
		// #internal nodes = total usage count (each split node counted once)
		total := 0
		for _, c := range tr.FeatureUsage() {
			total += c
		}
		if tr.NumLeaves() != tr.NumNodes()-total {
			t.Fatalf("leaves %d, nodes %d, splits %d inconsistent", tr.NumLeaves(), tr.NumNodes(), total)
		}
	}
	if New(Config{}).Depth() != -1 {
		t.Fatal("unfitted depth must be -1")
	}
	if New(Config{Criterion: GainRatio}).Name() != "DecisionTree(gain-ratio)" {
		t.Fatal("Name wrong")
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || InfoGain.String() != "information" || GainRatio.String() != "gain-ratio" {
		t.Fatal("criterion names wrong")
	}
	if Criterion(42).String() == "" {
		t.Fatal("unknown criterion must render")
	}
}

func TestDumpRendersTree(t *testing.T) {
	ds := mkDataset(feats(20, 2),
		[][]relational.Value{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 0}, {5, 1}},
		[]int8{0, 0, 1, 1, 0, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := tr.Dump(&buf, []string{"FK", "x"}, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FK in {") {
		t.Fatalf("dump missing split line:\n%s", out)
	}
	if !strings.Contains(out, "predict") {
		t.Fatalf("dump missing leaf line:\n%s", out)
	}
	// maxValues=2 must elide the third left value.
	if !strings.Contains(out, "more)") && strings.Count(out, ",") > 2 {
		t.Fatalf("large value sets must be elided:\n%s", out)
	}
	// Unfitted tree renders a placeholder.
	var empty strings.Builder
	if err := New(Config{}).Dump(&empty, nil, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "unfitted") {
		t.Fatal("unfitted dump wrong")
	}
}

func TestDumpDOT(t *testing.T) {
	ds := mkDataset(feats(2),
		[][]relational.Value{{0}, {0}, {1}, {1}},
		[]int8{0, 0, 1, 1})
	tr := New(Config{Criterion: Gini, MinSplit: 1, CP: 0})
	if err := tr.Fit(ds); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := tr.DumpDOT(&buf, []string{"f"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph tree {", "n0 ->", "predict", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestBatchSplitMatchesRowAtATime pins the columnar split search to the
// historical per-cell search: bit-identical trees on datasets large enough
// to cross parallelSplitThreshold (so the morsel fan-out and its
// deterministic reduction are exercised), over a large-cardinality FK-style
// feature and small categoricals, for all three criteria.
func TestBatchSplitMatchesRowAtATime(t *testing.T) {
	r := rng.New(23)
	n := 3 * parallelSplitThreshold
	ds := &ml.Dataset{Features: []ml.Feature{
		{Name: "FK", Cardinality: 900, IsFK: true},
		{Name: "a", Cardinality: 4},
		{Name: "b", Cardinality: 2},
	}}
	for i := 0; i < n; i++ {
		fk := relational.Value(r.Intn(900))
		a := relational.Value(r.Intn(4))
		b := relational.Value(r.Intn(2))
		ds.X = append(ds.X, fk, a, b)
		y := int8((int(fk)/30 + int(a)) % 2)
		if r.Intn(10) == 0 {
			y = 1 - y
		}
		ds.Y = append(ds.Y, y)
	}
	for _, crit := range []Criterion{Gini, InfoGain, GainRatio} {
		cfg := Config{Criterion: crit, MinSplit: 20, CP: 1e-4}
		batch := New(cfg)
		if err := batch.Fit(ds); err != nil {
			t.Fatalf("%v: batch fit: %v", crit, err)
		}
		cfg.RowAtATime = true
		rows := New(cfg)
		if err := rows.Fit(ds); err != nil {
			t.Fatalf("%v: row fit: %v", crit, err)
		}
		if bn, rn := len(batch.nodes), len(rows.nodes); bn != rn {
			t.Fatalf("%v: node counts diverged: %d vs %d", crit, bn, rn)
		}
		for k := range batch.nodes {
			bnd, rnd := &batch.nodes[k], &rows.nodes[k]
			if bnd.feature != rnd.feature || bnd.leftChild != rnd.leftChild ||
				bnd.rightChild != rnd.rightChild || bnd.prediction != rnd.prediction ||
				bnd.n != rnd.n || bnd.nLeft != rnd.nLeft {
				t.Fatalf("%v: node %d diverged: %+v vs %+v", crit, k, bnd, rnd)
			}
			if len(bnd.goLeft) != len(rnd.goLeft) {
				t.Fatalf("%v: node %d goLeft sizes diverged", crit, k)
			}
			for v, l := range bnd.goLeft {
				if rl, ok := rnd.goLeft[v]; !ok || rl != l {
					t.Fatalf("%v: node %d goLeft[%d] diverged", crit, k, v)
				}
			}
		}
	}
}

// TestBatchSplitOnRelationViews runs the batch search through the full view
// stack — a dataset over a split-style SelectView over a JoinView — and
// checks the fitted tree matches the row-at-a-time search
// prediction-for-prediction and in shape.
func TestBatchSplitOnRelationViews(t *testing.T) {
	r := rng.New(41)
	nR := 40
	keyDom := relational.NewDomain("RID", nR)
	dim := relational.NewTable("R", relational.MustSchema(
		relational.Column{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom},
		relational.Column{Name: "xr", Kind: relational.KindFeature, Domain: relational.NewDomain("xr", 4)},
	), nR)
	for i := 0; i < nR; i++ {
		dim.MustAppendRow([]relational.Value{relational.Value(i), relational.Value(r.Intn(4))})
	}
	nS := 800
	fact := relational.NewTable("S", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "xs", Kind: relational.KindFeature, Domain: relational.NewDomain("xs", 3)},
		relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"},
	), nS)
	for i := 0; i < nS; i++ {
		fk := r.Intn(nR)
		y := int8(fk % 2)
		if r.Intn(8) == 0 {
			y = 1 - y
		}
		fact.MustAppendRow([]relational.Value{relational.Value(y), relational.Value(r.Intn(3)), relational.Value(fk)})
	}
	ss, err := relational.NewStarSchema(fact, dim)
	if err != nil {
		t.Fatal(err)
	}
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 500)
	for i := range idx {
		idx[i] = r.Intn(nS)
	}
	sel, err := relational.NewSelectView(jv, idx)
	if err != nil {
		t.Fatal(err)
	}
	train, err := ml.FromRelation(sel, []int{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Criterion: Gini, MinSplit: 5, CP: 1e-4}
	batch := New(cfg)
	if err := batch.Fit(train); err != nil {
		t.Fatal(err)
	}
	cfg.RowAtATime = true
	rows := New(cfg)
	if err := rows.Fit(train); err != nil {
		t.Fatal(err)
	}
	buf := make([]relational.Value, train.NumFeatures())
	for i := 0; i < train.NumExamples(); i++ {
		row := train.RowInto(buf, i)
		if batch.Predict(row) != rows.Predict(row) {
			t.Fatalf("prediction %d diverged", i)
		}
	}
	if batch.NumLeaves() != rows.NumLeaves() || batch.Depth() != rows.Depth() {
		t.Fatalf("tree shapes diverged: (%d,%d) vs (%d,%d)",
			batch.NumLeaves(), batch.Depth(), rows.NumLeaves(), rows.Depth())
	}
}

// TestBatchSplitSequentialForced pins the batch path under MaxParallelism=1:
// forcing sequential morsel processing must still match the row-at-a-time
// search.
func TestBatchSplitSequentialForced(t *testing.T) {
	// MaxParallelism=1 must keep the batch path deterministic and identical.
	old := ml.MaxParallelism
	ml.MaxParallelism = 1
	defer func() { ml.MaxParallelism = old }()

	r := rng.New(31)
	n := parallelSplitThreshold + 100
	ds := &ml.Dataset{Features: feats(50, 3)}
	for i := 0; i < n; i++ {
		a := relational.Value(r.Intn(50))
		b := relational.Value(r.Intn(3))
		ds.X = append(ds.X, a, b)
		ds.Y = append(ds.Y, int8(int(a)%2))
	}
	cfg := Config{Criterion: Gini, MinSplit: 10, CP: 1e-3}
	batch := New(cfg)
	if err := batch.Fit(ds); err != nil {
		t.Fatal(err)
	}
	cfg.RowAtATime = true
	rows := New(cfg)
	if err := rows.Fit(ds); err != nil {
		t.Fatal(err)
	}
	buf := make([]relational.Value, 2)
	for i := 0; i < n; i++ {
		row := ds.RowInto(buf, i)
		if batch.Predict(row) != rows.Predict(row) {
			t.Fatalf("prediction %d diverged", i)
		}
	}
}
