package tree

import (
	"fmt"
	"sort"

	"repro/internal/relational"
)

// NodeParams is one serialized tree node. Split routing is stored as the
// sorted list of values seen at the node with a parallel go-left mask —
// a deterministic encoding of the goLeft map.
type NodeParams struct {
	// Feature is the split feature index, or -1 for a leaf.
	Feature    int
	LeftChild  int
	RightChild int
	Prediction int8
	N          int
	NLeft      int
	// SplitValues are the feature values seen at this node during training,
	// ascending; SplitLeft[i] reports whether SplitValues[i] routes left.
	SplitValues []relational.Value
	SplitLeft   []bool
}

// Params is the serializable state of a fitted decision tree. The unseen
// policy travels with the model (it is prediction-time behaviour); a
// Smoother does not — trees configured with UnseenSmooth and a live smoother
// refuse to export, since the smoother's state lives in another component.
type Params struct {
	Criterion int
	MinSplit  int
	CP        float64
	MaxDepth  int
	Unseen    int
	NFeatures int
	Nodes     []NodeParams
}

// ExportParams snapshots the fitted tree with goLeft maps flattened into
// sorted value lists (deterministic bytes for identical trees).
func (t *Tree) ExportParams() (Params, error) {
	if len(t.nodes) == 0 {
		return Params{}, fmt.Errorf("tree: export before Fit")
	}
	if t.cfg.Smoother != nil {
		return Params{}, fmt.Errorf("tree: cannot export a tree with an attached Smoother")
	}
	if len(t.collapseSet) > 0 {
		return Params{}, fmt.Errorf("tree: cannot export mid-prune (pending collapses)")
	}
	p := Params{
		Criterion: int(t.cfg.Criterion),
		MinSplit:  t.cfg.MinSplit,
		CP:        t.cfg.CP,
		MaxDepth:  t.cfg.MaxDepth,
		Unseen:    int(t.cfg.Unseen),
		NFeatures: t.nFeatures,
		Nodes:     make([]NodeParams, len(t.nodes)),
	}
	for i := range t.nodes {
		nd := &t.nodes[i]
		np := NodeParams{
			Feature:    nd.feature,
			LeftChild:  nd.leftChild,
			RightChild: nd.rightChild,
			Prediction: nd.prediction,
			N:          nd.n,
			NLeft:      nd.nLeft,
		}
		if nd.goLeft != nil {
			np.SplitValues = make([]relational.Value, 0, len(nd.goLeft))
			for v := range nd.goLeft {
				np.SplitValues = append(np.SplitValues, v)
			}
			sort.Slice(np.SplitValues, func(a, b int) bool { return np.SplitValues[a] < np.SplitValues[b] })
			np.SplitLeft = make([]bool, len(np.SplitValues))
			for k, v := range np.SplitValues {
				np.SplitLeft[k] = nd.goLeft[v]
			}
		}
		p.Nodes[i] = np
	}
	return p, nil
}

// FromParams reconstructs a fitted tree. Node links are validated — in
// range and strictly forward-pointing (Fit appends children after their
// parent, so any valid export satisfies this) — so Predict on a decoded
// tree can neither walk out of the array nor loop forever, and nFeatures
// must match the feature schema the artifact carries.
func FromParams(nFeatures int, p Params) (*Tree, error) {
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("tree: no nodes")
	}
	if p.NFeatures != nFeatures {
		return nil, fmt.Errorf("tree: payload claims %d features, schema has %d", p.NFeatures, nFeatures)
	}
	if c := Criterion(p.Criterion); c != Gini && c != InfoGain && c != GainRatio {
		return nil, fmt.Errorf("tree: unknown criterion %d", p.Criterion)
	}
	if u := UnseenPolicy(p.Unseen); u != UnseenMajority && u != UnseenError && u != UnseenSmooth {
		return nil, fmt.Errorf("tree: unknown unseen policy %d", p.Unseen)
	}
	t := New(Config{
		Criterion: Criterion(p.Criterion),
		MinSplit:  p.MinSplit,
		CP:        p.CP,
		MaxDepth:  p.MaxDepth,
		Unseen:    UnseenPolicy(p.Unseen),
	})
	t.nFeatures = p.NFeatures
	t.nodes = make([]node, len(p.Nodes))
	for i, np := range p.Nodes {
		if np.Prediction != 0 && np.Prediction != 1 {
			return nil, fmt.Errorf("tree: node %d predicts class %d outside {0,1}", i, np.Prediction)
		}
		nd := node{
			feature:    np.Feature,
			leftChild:  np.LeftChild,
			rightChild: np.RightChild,
			prediction: np.Prediction,
			n:          np.N,
			nLeft:      np.NLeft,
		}
		if np.Feature >= 0 {
			if np.Feature >= p.NFeatures {
				return nil, fmt.Errorf("tree: node %d splits feature %d of %d", i, np.Feature, p.NFeatures)
			}
			if np.LeftChild <= i || np.LeftChild >= len(p.Nodes) || np.RightChild <= i || np.RightChild >= len(p.Nodes) {
				return nil, fmt.Errorf("tree: node %d has invalid children %d/%d (must point forward within [%d,%d))",
					i, np.LeftChild, np.RightChild, i+1, len(p.Nodes))
			}
			if len(np.SplitValues) != len(np.SplitLeft) {
				return nil, fmt.Errorf("tree: node %d has %d split values but %d masks", i, len(np.SplitValues), len(np.SplitLeft))
			}
			nd.goLeft = make(map[relational.Value]bool, len(np.SplitValues))
			for k, v := range np.SplitValues {
				nd.goLeft[v] = np.SplitLeft[k]
			}
		}
		t.nodes[i] = nd
	}
	return t, nil
}
