package tree

import "repro/internal/obs"

// splitSpan times the recursive split search — a decision tree's entire grow
// phase, observed once per Fit.
var splitSpan = obs.TrainSpan("tree_split", "decision-tree split search (grow)")
