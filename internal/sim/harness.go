package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ml"
	"repro/internal/rng"
)

// Learner wraps a model family for the simulation harness: Train must fit
// (and, if it wants, tune on the validation set) and return a classifier.
type Learner struct {
	Name  string
	Train func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error)
}

// ViewResult aggregates a Monte-Carlo run for one feature view.
type ViewResult struct {
	View ml.View
	Decomposition
}

// RunResult is the outcome of a Monte-Carlo study of one learner on one
// scenario configuration.
type RunResult struct {
	Scenario string
	Learner  string
	Runs     int
	Views    [3]ViewResult
}

// MonteCarlo samples one *pinned* test set from the scenario, then trains
// the learner on `runs` independently sampled training/validation sets and
// evaluates every fitted model on the pinned test set. Holding the test
// points fixed while the training sets vary is what makes the Domingos
// decomposition well defined: the pointwise majority ("main prediction") is
// taken over models, at the same x. This is the paper's §4 protocol with
// the run count as a parameter (the paper uses 100).
func MonteCarlo(sc Scenario, learner Learner, runs int, seed uint64) (RunResult, error) {
	if runs < 1 {
		return RunResult{}, fmt.Errorf("sim: need at least one run")
	}
	res := RunResult{Scenario: sc.Name(), Learner: learner.Name, Runs: runs}
	root := rng.New(seed)

	pinned, err := sc.Sample(root.Split())
	if err != nil {
		return RunResult{}, fmt.Errorf("sim: sampling pinned test set: %w", err)
	}

	// Each run gets its own pre-split RNG stream, so results are identical
	// whether runs execute sequentially or on a worker pool.
	streams := make([]*rng.RNG, runs)
	for run := range streams {
		streams[run] = root.Split()
	}
	outs := make([]runOut, runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range next {
				outs[run] = oneRun(sc, learner, streams[run], pinned)
			}
		}()
	}
	for run := 0; run < runs; run++ {
		next <- run
	}
	close(next)
	wg.Wait()

	var preds, bayes, observed [3][][]int8
	for run := 0; run < runs; run++ {
		if outs[run].err != nil {
			return RunResult{}, fmt.Errorf("sim: run %d: %w", run, outs[run].err)
		}
		for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
			preds[v] = append(preds[v], outs[run].preds[v])
			observed[v] = append(observed[v], outs[run].observed[v])
			bayes[v] = append(bayes[v], pinned.BayesTest)
		}
	}
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
		d, err := Decompose(preds[v], bayes[v], observed[v])
		if err != nil {
			return RunResult{}, err
		}
		res.Views[v] = ViewResult{View: v, Decomposition: d}
	}
	return res, nil
}

// runOut carries one Monte-Carlo run's per-view predictions on the pinned
// test set.
type runOut struct {
	preds, observed [3][]int8
	err             error
}

// oneRun executes a single Monte-Carlo run: sample a fresh training trial,
// train one model per view, and predict the pinned test set.
func oneRun(sc Scenario, learner Learner, r *rng.RNG, pinned *TrialData) (out runOut) {
	trial, err := sc.Sample(r)
	if err != nil {
		out.err = err
		return out
	}
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
		c, err := learner.Train(trial.Train[v], trial.Val[v], r.Uint64())
		if err != nil {
			out.err = fmt.Errorf("view %v: %w", v, err)
			return out
		}
		test := pinned.Test[v]
		p := make([]int8, test.NumExamples())
		o := make([]int8, test.NumExamples())
		for i := 0; i < test.NumExamples(); i++ {
			p[i] = c.Predict(test.Row(i))
			o[i] = test.Label(i)
		}
		out.preds[v] = p
		out.observed[v] = o
	}
	return out
}

// SweepPoint is one x-axis point of a figure: the swept parameter value and
// the Monte-Carlo result there.
type SweepPoint struct {
	Param float64
	RunResult
}

// Sweep runs MonteCarlo at each scenario produced by mk(param) over the
// given parameter values — the shape of every Figure 2–9 panel.
func Sweep(params []float64, mk func(param float64) (Scenario, error), learner Learner, runs int, seed uint64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(params))
	for i, p := range params {
		sc, err := mk(p)
		if err != nil {
			return nil, fmt.Errorf("sim: sweep param %v: %w", p, err)
		}
		rr, err := MonteCarlo(sc, learner, runs, seed+uint64(i)*1_000_003)
		if err != nil {
			return nil, fmt.Errorf("sim: sweep param %v: %w", p, err)
		}
		out = append(out, SweepPoint{Param: p, RunResult: rr})
	}
	return out, nil
}
