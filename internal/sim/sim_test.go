package sim

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/tree"
)

// treeLearner is the gini decision tree with fixed mid-grid parameters,
// fast enough for unit tests.
func treeLearner() Learner {
	return Learner{
		Name: "tree-gini",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 10, CP: 1e-3})
			if err := tr.Fit(train); err != nil {
				return nil, err
			}
			return tr, nil
		},
	}
}

func TestOneXrValidation(t *testing.T) {
	if _, err := NewOneXr(4, 40, 4, 4, 0.1, 2, Skew{}, 1); err == nil {
		t.Fatal("nS too small must be rejected")
	}
	if _, err := NewOneXr(100, 40, 4, 4, 1.5, 2, Skew{}, 1); err == nil {
		t.Fatal("p outside [0,1] must be rejected")
	}
	if _, err := NewOneXr(100, 40, 4, 0, 0.1, 2, Skew{}, 1); err == nil {
		t.Fatal("dR < 1 must be rejected")
	}
}

func TestOneXrShapes(t *testing.T) {
	sc, err := NewOneXr(200, 20, 3, 4, 0.1, 2, Skew{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := sc.Sample(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// JoinAll: dS + 1 FK + dR features.
	if got := trial.Train[ml.JoinAll].NumFeatures(); got != 3+1+4 {
		t.Fatalf("JoinAll features = %d, want 8", got)
	}
	if got := trial.Train[ml.NoJoin].NumFeatures(); got != 3+1 {
		t.Fatalf("NoJoin features = %d, want 4", got)
	}
	if got := trial.Train[ml.NoFK].NumFeatures(); got != 3+4 {
		t.Fatalf("NoFK features = %d, want 7", got)
	}
	if trial.Train[ml.JoinAll].NumExamples() != 200 {
		t.Fatalf("train size %d", trial.Train[ml.JoinAll].NumExamples())
	}
	if trial.Val[ml.JoinAll].NumExamples() != 50 || trial.Test[ml.JoinAll].NumExamples() != 50 {
		t.Fatal("val/test must be nS/4 each")
	}
	if len(trial.BayesTest) != 50 {
		t.Fatal("BayesTest size wrong")
	}
}

func TestOneXrBayesConsistency(t *testing.T) {
	// With p = 0 the observed test labels must equal the Bayes labels.
	sc, err := NewOneXr(200, 20, 2, 2, 0, 2, Skew{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := sc.Sample(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	test := trial.Test[ml.JoinAll]
	for i := 0; i < test.NumExamples(); i++ {
		if test.Label(i) != trial.BayesTest[i] {
			t.Fatalf("noise-free labels must match Bayes at %d", i)
		}
	}
}

func TestOneXrNoiseRate(t *testing.T) {
	// With p = 0.2 about 20% of labels should disagree with Bayes.
	sc, err := NewOneXr(4000, 40, 2, 2, 0.2, 2, Skew{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := sc.Sample(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	test := trial.Test[ml.JoinAll]
	flips := 0
	for i := 0; i < test.NumExamples(); i++ {
		if test.Label(i) != trial.BayesTest[i] {
			flips++
		}
	}
	rate := float64(flips) / float64(test.NumExamples())
	if math.Abs(rate-0.2) > 0.05 {
		t.Fatalf("noise rate %v, want ≈0.2", rate)
	}
}

func TestOneXrSkewSamplers(t *testing.T) {
	for _, skew := range []Skew{
		{Kind: SkewZipf, Param: 2},
		{Kind: SkewNeedle, Param: 0.5},
	} {
		sc, err := NewOneXr(400, 40, 2, 2, 0.1, 2, skew, 13)
		if err != nil {
			t.Fatal(err)
		}
		trial, err := sc.Sample(rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		// FK is the last NoJoin feature; check head value dominates.
		ds := trial.Train[ml.NoJoin]
		fkIdx := ds.NumFeatures() - 1
		counts := map[int]int{}
		for i := 0; i < ds.NumExamples(); i++ {
			counts[int(ds.Row(i)[fkIdx])]++
		}
		if counts[0] < ds.NumExamples()/5 {
			t.Fatalf("%v skew head mass too small: %d/%d", skew.Kind, counts[0], ds.NumExamples())
		}
	}
}

func TestXSXRValidation(t *testing.T) {
	if _, err := NewXSXR(100, 10, 12, 12, 1); err == nil {
		t.Fatal("oversized TPT must be rejected")
	}
	if _, err := NewXSXR(4, 10, 2, 2, 1); err == nil {
		t.Fatal("tiny nS must be rejected")
	}
}

func TestXSXRNoiseFree(t *testing.T) {
	sc, err := NewXSXR(400, 20, 3, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := sc.Sample(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// H(Y|X) = 0: observed test labels equal Bayes labels.
	test := trial.Test[ml.JoinAll]
	for i := 0; i < test.NumExamples(); i++ {
		if test.Label(i) != trial.BayesTest[i] {
			t.Fatalf("XSXR must be noise-free, mismatch at %d", i)
		}
	}
	if got := test.NumFeatures(); got != 3+1+3 {
		t.Fatalf("JoinAll width %d", got)
	}
}

func TestXSXRFDHolds(t *testing.T) {
	// Same FK always brings the same X_R: check on the joined training view.
	sc, err := NewXSXR(600, 15, 2, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := sc.Sample(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ds := trial.Train[ml.JoinAll]
	// Features: XS0 XS1 FK XR0 XR1 XR2 — FK at index 2.
	fkIdx := 2
	seen := map[int32][3]int32{}
	for i := 0; i < ds.NumExamples(); i++ {
		row := ds.Row(i)
		xr := [3]int32{row[3], row[4], row[5]}
		if prev, ok := seen[row[fkIdx]]; ok && prev != xr {
			t.Fatalf("FD FK→XR violated for FK=%d", row[fkIdx])
		}
		seen[row[fkIdx]] = xr
	}
}

func TestRepOneXrReplication(t *testing.T) {
	sc, err := NewRepOneXr(200, 20, 2, 5, 0.1, Skew{}, 23)
	if err != nil {
		t.Fatal(err)
	}
	trial, err := sc.Sample(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	ds := trial.Train[ml.JoinAll]
	// Features: XS0 XS1 FK Xr XR1 XR2 XR3 XR4 — all XR equal Xr.
	for i := 0; i < ds.NumExamples(); i++ {
		row := ds.Row(i)
		xr := row[3]
		for j := 4; j < 8; j++ {
			if row[j] != xr {
				t.Fatalf("RepOneXr features must replicate Xr at row %d", i)
			}
		}
	}
	if sc.Name() != "RepOneXr" {
		t.Fatal("name wrong")
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(nil, nil, nil); err == nil {
		t.Fatal("no runs must error")
	}
	if _, err := Decompose([][]int8{{}}, [][]int8{{}}, [][]int8{{}}); err == nil {
		t.Fatal("empty test set must error")
	}
	if _, err := Decompose([][]int8{{1, 0}}, [][]int8{{1}}, [][]int8{{1, 0}}); err == nil {
		t.Fatal("inconsistent sizes must error")
	}
}

func TestDecomposeHandExample(t *testing.T) {
	// 2 test points, 4 runs. Point 0: preds all 1, bayes 1 → bias 0, var 0.
	// Point 1: preds {1,1,1,0}, bayes 0 → main=1 ≠ 0: bias 1, var 0.25.
	preds := [][]int8{{1, 1}, {1, 1}, {1, 1}, {1, 0}}
	bayes := [][]int8{{1, 0}, {1, 0}, {1, 0}, {1, 0}}
	obs := bayes
	d, err := Decompose(preds, bayes, obs)
	if err != nil {
		t.Fatal(err)
	}
	if d.AvgBias != 0.5 {
		t.Fatalf("AvgBias %v, want 0.5", d.AvgBias)
	}
	if math.Abs(d.BiasedVar-0.125) > 1e-12 { // 0.25 variance on 1 of 2 points
		t.Fatalf("BiasedVar %v, want 0.125", d.BiasedVar)
	}
	if d.UnbiasedVar != 0 {
		t.Fatalf("UnbiasedVar %v, want 0", d.UnbiasedVar)
	}
	if math.Abs(d.NetVariance+0.125) > 1e-12 {
		t.Fatalf("NetVariance %v, want -0.125", d.NetVariance)
	}
	// Errors: point0 never wrong; point1 wrong in 3/4 runs → 3/8 overall.
	if math.Abs(d.AvgTestError-0.375) > 1e-12 {
		t.Fatalf("AvgTestError %v, want 0.375", d.AvgTestError)
	}
}

func TestMonteCarloTreeOneXr(t *testing.T) {
	// Integration: on OneXr at a healthy tuple ratio (1000/40 = 25), the
	// decision tree's NoJoin error must track JoinAll within 0.02 — the
	// paper's central simulation finding (§4.1, Figure 2).
	sc, err := NewOneXr(1000, 40, 4, 4, 0.1, 2, Skew{}, 31)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MonteCarlo(sc, treeLearner(), 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	join := res.Views[ml.JoinAll].AvgTestError
	noJoin := res.Views[ml.NoJoin].AvgTestError
	if math.Abs(join-noJoin) > 0.02 {
		t.Fatalf("NoJoin %v must track JoinAll %v", noJoin, join)
	}
	// Both should be near the Bayes error 0.1.
	if join > 0.2 || noJoin > 0.2 {
		t.Fatalf("errors too far above Bayes: %v %v", join, noJoin)
	}
	if res.Runs != 5 || res.Scenario != "OneXr" {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestSweep(t *testing.T) {
	pts, err := Sweep([]float64{20, 40}, func(nr float64) (Scenario, error) {
		return NewOneXr(300, int(nr), 2, 2, 0.1, 2, Skew{}, 37)
	}, treeLearner(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Param != 20 || pts[1].Param != 40 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
}

func TestMonteCarloRejectsZeroRuns(t *testing.T) {
	sc, _ := NewOneXr(100, 10, 2, 2, 0.1, 2, Skew{}, 1)
	if _, err := MonteCarlo(sc, treeLearner(), 0, 1); err == nil {
		t.Fatal("zero runs must error")
	}
}

func TestSkewKindString(t *testing.T) {
	if SkewNone.String() != "uniform" || SkewZipf.String() != "zipf" || SkewNeedle.String() != "needle" {
		t.Fatal("skew names wrong")
	}
	if SkewKind(9).String() == "" {
		t.Fatal("unknown skew must render")
	}
}
