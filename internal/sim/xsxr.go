package sim

import (
	"fmt"

	"repro/internal/relational"
	"repro/internal/rng"
)

// XSXR is the paper's second scenario (§4.2): a noise-free true distribution
// over the full joint [X_S, X_R] (all binary), built from an explicit "true
// probability table" (TPT). The construction follows the paper's six steps:
//
//  1. assign a random probability to every [X_S, X_R] combination;
//  2. assign each entry a random Y, so H(Y | X) = 0;
//  3. marginalize to P(X_R) and sample the n_R dimension rows from it;
//  4. zero the TPT entries whose X_R never made it into R;
//  5. renormalize and sample the fact rows from the remaining entries;
//  6. give each fact row a FK chosen uniformly among the RIDs whose X_R
//     matches (the implicit join).
//
// X_S and X_R value combinations are encoded as bitmasks, so the TPT is a
// flat slice of 2^(dS+dR) probabilities.
type XSXR struct {
	NS int
	NR int
	DS int
	DR int

	// Fixed true distribution.
	tpt      []float64          // joint probability per (xs<<dR | xr), after steps 3-5
	yOf      []int8             // Y per TPT entry (step 2)
	xrOf     []relational.Value // X_R bitmask of each dimension row (step 3)
	ridsByXR map[int][]int      // X_R bitmask → dimension RIDs carrying it
}

// NewXSXR fixes the true distribution with initSeed.
func NewXSXR(nS, nR, dS, dR int, initSeed uint64) (*XSXR, error) {
	if nS < 8 || nR < 1 || dS < 1 || dR < 1 {
		return nil, fmt.Errorf("sim: invalid XSXR dimensions (nS=%d nR=%d dS=%d dR=%d)", nS, nR, dS, dR)
	}
	if dS+dR > 22 {
		return nil, fmt.Errorf("sim: XSXR TPT of 2^%d entries is too large", dS+dR)
	}
	s := &XSXR{NS: nS, NR: nR, DS: dS, DR: dR}
	r := rng.New(initSeed)
	entries := 1 << (dS + dR)

	// Steps 1–2.
	s.tpt = make([]float64, entries)
	s.yOf = make([]int8, entries)
	total := 0.0
	for e := range s.tpt {
		s.tpt[e] = r.Float64()
		total += s.tpt[e]
		s.yOf[e] = int8(r.Intn(2))
	}
	for e := range s.tpt {
		s.tpt[e] /= total
	}

	// Step 3: P(X_R) and the dimension rows.
	xrMass := make([]float64, 1<<dR)
	mask := (1 << dR) - 1
	for e, p := range s.tpt {
		xrMass[e&mask] += p
	}
	s.xrOf = make([]relational.Value, nR)
	s.ridsByXR = make(map[int][]int)
	for k := 0; k < nR; k++ {
		xr := r.Categorical(xrMass)
		s.xrOf[k] = relational.Value(xr)
		s.ridsByXR[xr] = append(s.ridsByXR[xr], k)
	}

	// Step 4–5: zero entries whose X_R is absent, renormalize.
	total = 0.0
	for e := range s.tpt {
		if _, ok := s.ridsByXR[e&mask]; !ok {
			s.tpt[e] = 0
		}
		total += s.tpt[e]
	}
	if total == 0 {
		return nil, fmt.Errorf("sim: XSXR degenerate — no TPT mass survived dimension sampling")
	}
	for e := range s.tpt {
		s.tpt[e] /= total
	}
	return s, nil
}

// Name implements Scenario.
func (s *XSXR) Name() string { return "XSXR" }

// Sample implements Scenario.
func (s *XSXR) Sample(r *rng.RNG) (*TrialData, error) {
	keyDom := relational.NewDomain("RID", s.NR)
	binDom := relational.NewDomain("bit", 2)
	cols := []relational.Column{{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom}}
	for j := 0; j < s.DR; j++ {
		cols = append(cols, relational.Column{Name: fmt.Sprintf("XR%d", j), Kind: relational.KindFeature, Domain: binDom})
	}
	dim := relational.NewTable("R", relational.MustSchema(cols...), s.NR)
	dw := len(cols)
	dblock := make([]relational.Value, s.NR*dw)
	for k := 0; k < s.NR; k++ {
		row := dblock[k*dw : (k+1)*dw]
		row[0] = relational.Value(k)
		unpackBits(int(s.xrOf[k]), row[1:1+s.DR])
	}
	dim.MustAppendRows(dblock)

	fcols := []relational.Column{{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)}}
	for j := 0; j < s.DS; j++ {
		fcols = append(fcols, relational.Column{Name: fmt.Sprintf("XS%d", j), Kind: relational.KindFeature, Domain: binDom})
	}
	fcols = append(fcols, relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"})
	total := s.NS + 2*(s.NS/4)
	fact := relational.NewTable("S", relational.MustSchema(fcols...), total)
	fw := len(fcols)
	bulk := relational.NewBulkAppender(fact, total)
	frow := make([]relational.Value, fw)
	mask := (1 << s.DR) - 1
	// bayes per fact row is deterministic: Y of the sampled entry.
	bayesByRow := make([]int8, 0, total)
	for i := 0; i < total; i++ {
		e := r.Categorical(s.tpt) // steps 5–6
		xs := e >> s.DR
		xr := e & mask
		unpackBits(xs, frow[1:1+s.DS])
		rids := s.ridsByXR[xr]
		frow[fw-1] = relational.Value(rids[r.Intn(len(rids))])
		frow[0] = relational.Value(s.yOf[e])
		bayesByRow = append(bayesByRow, s.yOf[e])
		bulk.MustAppend(frow)
	}
	bulk.MustFlush()
	ss, err := relational.NewStarSchema(fact, dim)
	if err != nil {
		return nil, err
	}
	// The Bayes label is the sampled Y itself (noise-free scenario).
	rowAt := 0
	rowBayes := func([]relational.Value, int) int8 {
		b := bayesByRow[s.NS+s.NS/4+rowAt]
		rowAt++
		return b
	}
	return buildTrial(ss, s.NS, rowBayes)
}

// unpackBits writes the low bits of v into dst (LSB first).
func unpackBits(v int, dst []relational.Value) {
	for i := range dst {
		dst[i] = relational.Value((v >> i) & 1)
	}
}

// RepOneXr is the paper's third scenario (§4.3): like OneXr, but every
// foreign feature replicates Xr — X_R is the same value repeated dR times,
// maximizing the redundancy between FK and X_R while keeping the FD intact.
type RepOneXr struct {
	inner *OneXr
}

// NewRepOneXr fixes the true distribution with initSeed.
func NewRepOneXr(nS, nR, dS, dR int, p float64, skew Skew, initSeed uint64) (*RepOneXr, error) {
	inner, err := NewOneXr(nS, nR, dS, dR, p, 2, skew, initSeed)
	if err != nil {
		return nil, err
	}
	// Replicate Xr into the remaining foreign features.
	for k := range inner.restR {
		for j := range inner.restR[k] {
			inner.restR[k][j] = inner.xr[k]
		}
	}
	return &RepOneXr{inner: inner}, nil
}

// Name implements Scenario.
func (s *RepOneXr) Name() string { return "RepOneXr" }

// Sample implements Scenario.
func (s *RepOneXr) Sample(r *rng.RNG) (*TrialData, error) { return s.inner.Sample(r) }
