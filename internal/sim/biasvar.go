package sim

import "fmt"

// Decomposition is the Domingos (2000) bias–variance decomposition of 0-1
// loss over a fixed test set and L training sets, the quantity the paper
// plots in Figure 4 to explain where NoJoin's extra error comes from.
//
// For each test point x with Bayes-optimal label y*(x) and predictions
// ŷ_1..ŷ_L across runs:
//
//	main(x)     = majority vote of ŷ_1..ŷ_L
//	bias(x)     = 1 if main(x) ≠ y*(x), else 0
//	variance(x) = (1/L) Σ_l 1[ŷ_l ≠ main(x)]
//
// and the aggregate terms average over test points, with net variance
// adding variance on unbiased points and subtracting it on biased points
// (where variance pushes predictions back toward the optimum):
//
//	NetVariance = E_x[variance | bias=0]·P(bias=0) − E_x[variance | bias=1]·P(bias=1)
type Decomposition struct {
	AvgBias        float64
	UnbiasedVar    float64
	BiasedVar      float64
	NetVariance    float64
	AvgTestError   float64 // mean 0-1 loss against the *observed* labels
	AvgOptimalLoss float64 // mean 0-1 loss of predictions vs Bayes labels
}

// Decompose computes the decomposition.
//
// preds[l][i] is run l's prediction on test point i; bayes[l][i] is the
// Bayes-optimal label and observed[l][i] the sampled (possibly noisy) label
// of test point i. MonteCarlo pins one test set, so bayes and observed are
// identical across runs; the per-run slices are accepted so the function is
// also usable with run-varying test sets (where it pools by position).
func Decompose(preds [][]int8, bayes [][]int8, observed [][]int8) (Decomposition, error) {
	var d Decomposition
	L := len(preds)
	if L == 0 {
		return d, fmt.Errorf("sim: no runs to decompose")
	}
	n := len(preds[0])
	if n == 0 {
		return d, fmt.Errorf("sim: empty test set")
	}
	for l := 0; l < L; l++ {
		if len(preds[l]) != n || len(bayes[l]) != n || len(observed[l]) != n {
			return d, fmt.Errorf("sim: run %d has inconsistent test-set size", l)
		}
	}

	nUnb, nBias := 0, 0
	sumVarUnb, sumVarBias := 0.0, 0.0
	errSum, optSum := 0.0, 0.0
	for i := 0; i < n; i++ {
		ones := 0
		for l := 0; l < L; l++ {
			if preds[l][i] == 1 {
				ones++
			}
			if preds[l][i] != observed[l][i] {
				errSum++
			}
			if preds[l][i] != bayes[l][i] {
				optSum++
			}
		}
		main := int8(0)
		if 2*ones >= L {
			main = 1
		}
		variance := 0.0
		for l := 0; l < L; l++ {
			if preds[l][i] != main {
				variance++
			}
		}
		variance /= float64(L)
		// The Bayes label can vary across runs only through resampled test
		// rows; pool by majority of the per-run Bayes labels at position i.
		bOnes := 0
		for l := 0; l < L; l++ {
			if bayes[l][i] == 1 {
				bOnes++
			}
		}
		bMain := int8(0)
		if 2*bOnes >= L {
			bMain = 1
		}
		if main != bMain {
			nBias++
			sumVarBias += variance
		} else {
			nUnb++
			sumVarUnb += variance
		}
	}
	total := float64(n)
	d.AvgBias = float64(nBias) / total
	d.UnbiasedVar = sumVarUnb / total
	d.BiasedVar = sumVarBias / total
	d.NetVariance = d.UnbiasedVar - d.BiasedVar
	d.AvgTestError = errSum / (total * float64(L))
	d.AvgOptimalLoss = optSum / (total * float64(L))
	return d, nil
}
