// Package sim implements the paper's Monte-Carlo simulation study (§4):
// synthetic two-table KFK joins with controlled "true" distributions, the
// three scenarios OneXr / XSXR / RepOneXr, foreign-key skew variants, and
// the Domingos bias–variance decomposition used to quantify the extra
// overfitting avoiding a join can cause.
//
// Every scenario produces a TrialData: the three feature views (JoinAll,
// NoJoin, NoFK) over freshly sampled train/validation/test splits, plus the
// Bayes-optimal labels of the test rows so noise can be separated from bias
// and variance. A fixed Scenario instance pins the true distribution (the
// dimension table and the target function); successive Sample calls draw
// independent training sets from it, which is exactly the paper's
// 100-training-sets protocol.
package sim

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// SkewKind selects the foreign-key skew model for OneXr (Figure 5).
type SkewKind int

const (
	// SkewNone samples FK uniformly (the base OneXr procedure, step 3).
	SkewNone SkewKind = iota
	// SkewZipf samples FK from a Zipf distribution with parameter Param.
	SkewZipf
	// SkewNeedle allocates probability mass Param to one FK value and
	// spreads the rest uniformly ("needle-and-thread").
	SkewNeedle
)

func (k SkewKind) String() string {
	switch k {
	case SkewNone:
		return "uniform"
	case SkewZipf:
		return "zipf"
	case SkewNeedle:
		return "needle"
	default:
		return fmt.Sprintf("SkewKind(%d)", int(k))
	}
}

// Skew pairs a skew kind with its parameter.
type Skew struct {
	Kind  SkewKind
	Param float64
}

// TrialData is one sampled train/validation/test triple under all three
// feature views, plus ground truth for the decomposition.
type TrialData struct {
	// Views indexed by ml.View (JoinAll, NoJoin, NoFK).
	Train [3]*ml.Dataset
	Val   [3]*ml.Dataset
	Test  [3]*ml.Dataset
	// BayesTest[i] is the Bayes-optimal prediction for test row i (the
	// noise-free label); identical across views.
	BayesTest []int8
}

// Scenario generates trials from a fixed true distribution.
type Scenario interface {
	// Sample draws one independent trial using the provided stream.
	Sample(r *rng.RNG) (*TrialData, error)
	// Name identifies the scenario in reports.
	Name() string
}

// OneXr is the paper's worst-case-for-linear-models scenario (§4.1): a lone
// foreign feature Xr ∈ X_R probabilistically determines Y; every other
// feature is noise — but FK functionally determines Xr, so FK is a (much
// wider) proxy for the signal.
type OneXr struct {
	NS int // training examples; validation and test are NS/4 each
	NR int // |D_FK| = dimension table cardinality
	DS int // number of home features (binary)
	DR int // number of foreign features (binary); Xr is the first
	P  float64
	// DomXr is the domain size of Xr (Figure 2F varies it; default 2).
	DomXr int
	Skew  Skew

	// xr[k] is the Xr value of dimension row k: the fixed part of the true
	// distribution. Populated by Init.
	xr    []relational.Value
	restR [][]relational.Value // remaining dR-1 foreign features per row
}

// NewOneXr fixes the true distribution (the dimension table contents) using
// initSeed. P is the flip probability: Y = (Xr mod 2) flipped with
// probability P, so the Bayes error is min(P, 1−P).
func NewOneXr(nS, nR, dS, dR int, p float64, domXr int, skew Skew, initSeed uint64) (*OneXr, error) {
	if nS < 8 || nR < 2 || dS < 0 || dR < 1 {
		return nil, fmt.Errorf("sim: invalid OneXr dimensions (nS=%d nR=%d dS=%d dR=%d)", nS, nR, dS, dR)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("sim: flip probability %v outside [0,1]", p)
	}
	if domXr < 2 {
		domXr = 2
	}
	s := &OneXr{NS: nS, NR: nR, DS: dS, DR: dR, P: p, DomXr: domXr, Skew: skew}
	r := rng.New(initSeed)
	s.xr = make([]relational.Value, nR)
	s.restR = make([][]relational.Value, nR)
	for k := 0; k < nR; k++ {
		s.xr[k] = relational.Value(r.Intn(domXr))
		rest := make([]relational.Value, dR-1)
		for j := range rest {
			rest[j] = relational.Value(r.Intn(2))
		}
		s.restR[k] = rest
	}
	return s, nil
}

// Name implements Scenario.
func (s *OneXr) Name() string { return "OneXr" }

// bayes returns the Bayes-optimal label for dimension row k.
func (s *OneXr) bayes(k int) int8 {
	y := int8(s.xr[k] % 2)
	if s.P > 0.5 {
		return 1 - y
	}
	return y
}

// sampleFK draws a foreign key according to the configured skew.
func (s *OneXr) fkSampler(r *rng.RNG) func() int {
	switch s.Skew.Kind {
	case SkewZipf:
		z := rng.NewZipf(s.NR, s.Skew.Param)
		return func() int { return z.Sample(r) }
	case SkewNeedle:
		d := rng.NewNeedleAndThread(s.NR, s.Skew.Param)
		return func() int { return d.Sample(r) }
	default:
		return func() int { return r.Intn(s.NR) }
	}
}

// Dimension materializes the scenario's fixed dimension table R. The
// Figure 11 smoothing experiments use it as side information for X_R-based
// FK reassignment.
func (s *OneXr) Dimension() *relational.Table {
	keyDom := relational.NewDomain("RID", s.NR)
	cols := []relational.Column{{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom}}
	xrDom := relational.NewDomain("Xr", s.DomXr)
	cols = append(cols, relational.Column{Name: "Xr", Kind: relational.KindFeature, Domain: xrDom})
	binDom := relational.NewDomain("bit", 2)
	for j := 1; j < s.DR; j++ {
		cols = append(cols, relational.Column{Name: fmt.Sprintf("XR%d", j), Kind: relational.KindFeature, Domain: binDom})
	}
	dim := relational.NewTable("R", relational.MustSchema(cols...), s.NR)
	block := make([]relational.Value, 0, s.NR*len(cols))
	for k := 0; k < s.NR; k++ {
		block = append(block, relational.Value(k), s.xr[k])
		block = append(block, s.restR[k]...)
	}
	dim.MustAppendRows(block)
	return dim
}

// Sample implements Scenario. It materializes the star schema, joins it, and
// carves the three views with the paper's n_S / n_S/4 / n_S/4 sizes.
func (s *OneXr) Sample(r *rng.RNG) (*TrialData, error) {
	ss, err := s.buildStar(r)
	if err != nil {
		return nil, err
	}
	return buildTrial(ss, s.NS, func(factRow []relational.Value, fkCol int) int8 {
		return s.bayes(int(factRow[fkCol]))
	})
}

// buildStar materializes the dimension table and a freshly sampled fact
// table with nS + nS/4 + nS/4 rows.
func (s *OneXr) buildStar(r *rng.RNG) (*relational.StarSchema, error) {
	dim := s.Dimension()
	keyDom := dim.Schema().Cols[0].Domain
	binDom := relational.NewDomain("bit", 2)

	fcols := []relational.Column{{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)}}
	for j := 0; j < s.DS; j++ {
		fcols = append(fcols, relational.Column{Name: fmt.Sprintf("XS%d", j), Kind: relational.KindFeature, Domain: binDom})
	}
	fcols = append(fcols, relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"})
	total := s.NS + 2*(s.NS/4)
	fact := relational.NewTable("S", relational.MustSchema(fcols...), total)
	w := len(fcols)
	bulk := relational.NewBulkAppender(fact, total)
	frow := make([]relational.Value, w)
	nextFK := s.fkSampler(r)
	for i := 0; i < total; i++ {
		for j := 0; j < s.DS; j++ {
			frow[1+j] = relational.Value(r.Intn(2))
		}
		fk := nextFK()
		frow[w-1] = relational.Value(fk)
		y := s.bayes(fk)
		if r.Bernoulli(bayesFlip(s.P)) {
			y = 1 - y
		}
		frow[0] = relational.Value(y)
		bulk.MustAppend(frow)
	}
	bulk.MustFlush()
	return relational.NewStarSchema(fact, dim)
}

// bayesFlip converts the raw flip probability into the probability of
// disagreeing with the Bayes-optimal prediction: min(p, 1−p).
func bayesFlip(p float64) float64 {
	if p > 0.5 {
		return 1 - p
	}
	return p
}

// buildTrial joins a star schema, slices the paper's nS / nS/4 / nS/4
// ranges, and produces the three feature views. bayesOf maps a fact row to
// its Bayes label (it receives the raw fact row and its FK column index).
func buildTrial(ss *relational.StarSchema, nS int, bayesOf func(row []relational.Value, fkCol int) int8) (*TrialData, error) {
	// Factorized: the trial's nine datasets (3 views × train/val/test) are
	// all index/column remaps over this one join view; the only physical
	// data in a trial is the sampled fact table plus the dimension table.
	joined, err := relational.NewJoinView(ss)
	if err != nil {
		return nil, err
	}
	nVal := nS / 4
	trainIdx := rangeIdx(0, nS)
	valIdx := rangeIdx(nS, nS+nVal)
	testIdx := rangeIdx(nS+nVal, nS+2*nVal)

	td := &TrialData{}
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
		full, err := ml.ViewDataset(joined, ss.TargetCol, v, nil)
		if err != nil {
			return nil, err
		}
		td.Train[v] = full.Subset(trainIdx)
		td.Val[v] = full.Subset(valIdx)
		td.Test[v] = full.Subset(testIdx)
	}
	fkCols := ss.Fact.Schema().ColumnsOfKind(relational.KindForeignKey)
	fkCol := fkCols[0]
	td.BayesTest = make([]int8, len(testIdx))
	for i, ti := range testIdx {
		td.BayesTest[i] = bayesOf(ss.Fact.Row(ti), fkCol)
	}
	return td, nil
}

func rangeIdx(from, to int) []int {
	out := make([]int, to-from)
	for i := range out {
		out[i] = from + i
	}
	return out
}
