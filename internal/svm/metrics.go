package svm

import "repro/internal/obs"

var (
	// gramSpan times the full n×n kernel Gram-matrix build (blocked or
	// per-pair), the dominant pre-pass of a cached SMO fit.
	gramSpan = obs.TrainSpan("gram_build", "SVM kernel Gram-matrix build")
	// smoPassSpan times each full SMO pass over the examples, so a scrape
	// separates "many cheap converged passes" from "few expensive ones".
	smoPassSpan = obs.TrainSpan("smo_pass", "one full SMO optimization pass")
)
