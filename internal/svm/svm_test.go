package svm

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

func TestKernelsMatchExplicitOneHot(t *testing.T) {
	// Property: match-count kernels equal kernels computed on explicit
	// one-hot encodings.
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw%6) + 1
		r := rng.New(seed)
		fs := make([]ml.Feature, d)
		for j := range fs {
			fs[j] = ml.Feature{Name: "f", Cardinality: r.Intn(4) + 2}
		}
		enc := ml.NewEncoder(fs)
		a := make([]relational.Value, d)
		b := make([]relational.Value, d)
		for j := range a {
			a[j] = relational.Value(r.Intn(fs[j].Cardinality))
			b[j] = relational.Value(r.Intn(fs[j].Cardinality))
		}
		oneHot := func(row []relational.Value) []float64 {
			v := make([]float64, enc.Dims)
			for j, val := range row {
				v[enc.Index(j, val)] = 1
			}
			return v
		}
		va, vb := oneHot(a), oneHot(b)
		dot, sq := 0.0, 0.0
		for i := range va {
			dot += va[i] * vb[i]
			diff := va[i] - vb[i]
			sq += diff * diff
		}
		gamma := 0.3
		lin, _ := NewKernel(Linear, 0, d)
		quad, _ := NewKernel(Quadratic, gamma, d)
		rbf, _ := NewKernel(RBF, gamma, d)
		ok := math.Abs(lin.Eval(a, b)-dot) < 1e-12 &&
			math.Abs(quad.Eval(a, b)-(gamma*dot)*(gamma*dot)) < 1e-12 &&
			math.Abs(rbf.Eval(a, b)-math.Exp(-gamma*sq)) < 1e-12
		// Self-consistency.
		ok = ok && math.Abs(lin.Self()-lin.Eval(a, a)) < 1e-12 &&
			math.Abs(quad.Self()-quad.Eval(a, a)) < 1e-12 &&
			math.Abs(rbf.Self()-rbf.Eval(a, a)) < 1e-12
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewKernel(RBF, 0, 3); err == nil {
		t.Fatal("RBF needs gamma > 0")
	}
	if _, err := NewKernel(Linear, 0, 0); err == nil {
		t.Fatal("d must be positive")
	}
	if _, err := New(Config{Kernel: Linear, C: 0}); err == nil {
		t.Fatal("C must be positive")
	}
}

func TestLinearlySeparable(t *testing.T) {
	// y = (x0 == 1): separable by a linear kernel on one-hot features.
	ds := &ml.Dataset{Features: feats(2, 3)}
	r := rng.New(1)
	for i := 0; i < 60; i++ {
		x0 := relational.Value(i % 2)
		ds.X = append(ds.X, x0, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, int8(x0))
	}
	for _, kind := range []KernelKind{Linear, Quadratic, RBF} {
		cfg := Config{Kernel: kind, C: 10, Gamma: 0.5, Seed: 7}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if acc := ml.Accuracy(s, ds); acc != 1.0 {
			t.Fatalf("%v: separable accuracy %v, want 1.0", kind, acc)
		}
	}
}

func TestRBFLearnsXOR(t *testing.T) {
	// XOR: not linearly separable on one-hot features of 2 binary features
	// (one-hot makes it 4 dims where it IS separable... so use matching
	// parity over two trinary features to require a nonlinear boundary on
	// match counts). Simpler: verify RBF gets XOR right with enough C.
	ds := &ml.Dataset{Features: feats(2, 2)}
	pts := [][]relational.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []int8{0, 1, 1, 0}
	for rep := 0; rep < 10; rep++ {
		for i, p := range pts {
			ds.X = append(ds.X, p...)
			ds.Y = append(ds.Y, ys[i])
		}
	}
	s, err := New(Config{Kernel: RBF, C: 100, Gamma: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(s, ds); acc != 1.0 {
		t.Fatalf("RBF XOR accuracy %v, want 1.0", acc)
	}
}

func TestSingleClassDegenerate(t *testing.T) {
	ds := &ml.Dataset{
		Features: feats(2),
		X:        []relational.Value{0, 1, 0},
		Y:        []int8{1, 1, 1},
	}
	s, err := New(Config{Kernel: RBF, C: 1, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if s.Predict([]relational.Value{1}) != 1 {
		t.Fatal("single-class fit must predict that class")
	}
}

func TestEmptyTrainRejected(t *testing.T) {
	s, err := New(Config{Kernel: Linear, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(&ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected empty-train error")
	}
}

func TestSubsampleCap(t *testing.T) {
	r := rng.New(5)
	ds := &ml.Dataset{Features: feats(2, 4)}
	for i := 0; i < 500; i++ {
		x0 := relational.Value(i % 2)
		ds.X = append(ds.X, x0, relational.Value(r.Intn(4)))
		ds.Y = append(ds.Y, int8(x0))
	}
	s, err := New(Config{Kernel: RBF, C: 10, Gamma: 0.5, SubsampleCap: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if s.NumSupportVectors() > 100 {
		t.Fatalf("cap violated: %d support vectors", s.NumSupportVectors())
	}
	if acc := ml.Accuracy(s, ds); acc < 0.99 {
		t.Fatalf("capped fit should still separate: accuracy %v", acc)
	}
}

func TestFKMemorization(t *testing.T) {
	// The §5 mechanism: FK functionally determines the label (via hidden
	// Xr); with several training examples per FK value, the RBF-SVM on
	// [FK] alone classifies seen FK values correctly.
	r := rng.New(13)
	const nR = 20
	labelOf := make([]int8, nR)
	for i := range labelOf {
		labelOf[i] = int8(r.Intn(2))
	}
	// ensure both classes exist
	labelOf[0], labelOf[1] = 0, 1
	ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: nR, IsFK: true}}}
	for i := 0; i < nR*8; i++ {
		fk := relational.Value(i % nR)
		ds.X = append(ds.X, fk)
		ds.Y = append(ds.Y, labelOf[fk])
	}
	s, err := New(Config{Kernel: RBF, C: 100, Gamma: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fit(ds); err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for v := 0; v < nR; v++ {
		if s.Predict([]relational.Value{relational.Value(v)}) != labelOf[v] {
			wrong++
		}
	}
	if wrong > 0 {
		t.Fatalf("FK memorization failed on %d/%d values", wrong, nR)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	r := rng.New(19)
	ds := &ml.Dataset{Features: feats(3, 3)}
	for i := 0; i < 80; i++ {
		a, b := r.Intn(3), r.Intn(3)
		ds.X = append(ds.X, relational.Value(a), relational.Value(b))
		ds.Y = append(ds.Y, int8((a+b)%2))
	}
	fit := func() []int8 {
		s, err := New(Config{Kernel: RBF, C: 10, Gamma: 0.5, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Fit(ds); err != nil {
			t.Fatal(err)
		}
		var preds []int8
		for i := 0; i < ds.NumExamples(); i++ {
			preds = append(preds, s.Predict(ds.Row(i)))
		}
		return preds
	}
	a, b := fit(), fit()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce predictions")
		}
	}
}

func TestColumnarMatchesRowPath(t *testing.T) {
	// The columnar path (batched column scans + the morsel-parallel
	// match-count cache build) must produce a bit-identical model to the
	// historical row-pair path: identical pinned rows, identical kernel
	// cache floats, so an identical SMO trajectory.
	r := rng.New(31)
	base := &ml.Dataset{Features: feats(3, 4, 2)}
	for i := 0; i < 500; i++ {
		a, b, c := r.Intn(3), r.Intn(4), r.Intn(2)
		base.X = append(base.X, relational.Value(a), relational.Value(b), relational.Value(c))
		base.Y = append(base.Y, int8((a+b)%2))
	}
	sub := make([]int, 300)
	for i := range sub {
		sub[i] = r.Intn(500)
	}
	for name, ds := range map[string]*ml.Dataset{"dense": base, "view": base.Subset(sub)} {
		for _, kind := range []KernelKind{Linear, RBF} {
			cfg := Config{Kernel: kind, C: 10, Gamma: 0.5, SubsampleCap: 200, Seed: 33}
			rowCfg := cfg
			rowCfg.RowAtATime = true
			row, err := New(rowCfg)
			if err != nil {
				t.Fatal(err)
			}
			col, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := row.Fit(ds); err != nil {
				t.Fatal(err)
			}
			if err := col.Fit(ds); err != nil {
				t.Fatal(err)
			}
			if row.b != col.b {
				t.Fatalf("%s/%v: bias diverged: %v vs %v", name, kind, row.b, col.b)
			}
			if len(row.svAlphaY) != len(col.svAlphaY) {
				t.Fatalf("%s/%v: support set sizes diverged: %d vs %d", name, kind, len(row.svAlphaY), len(col.svAlphaY))
			}
			for i := range row.svAlphaY {
				if row.svAlphaY[i] != col.svAlphaY[i] {
					t.Fatalf("%s/%v: alpha[%d] diverged: %v vs %v", name, kind, i, row.svAlphaY[i], col.svAlphaY[i])
				}
				for j := range row.svRows[i] {
					if row.svRows[i][j] != col.svRows[i][j] {
						t.Fatalf("%s/%v: support row %d diverged", name, kind, i)
					}
				}
			}
			buf := make([]relational.Value, ds.NumFeatures())
			for i := 0; i < ds.NumExamples(); i++ {
				rowi := ds.RowInto(buf, i)
				if row.Decision(rowi) != col.Decision(rowi) {
					t.Fatalf("%s/%v: decision diverged on example %d", name, kind, i)
				}
			}
		}
	}
}

func TestNameAndKindString(t *testing.T) {
	s, _ := New(Config{Kernel: Quadratic, C: 1, Gamma: 1})
	if s.Name() != "SVM(quadratic)" {
		t.Fatalf("Name = %q", s.Name())
	}
	if Linear.String() != "linear" || RBF.String() != "rbf" || KernelKind(9).String() == "" {
		t.Fatal("kind names wrong")
	}
}

func TestGramBlockedMatchesGramRows(t *testing.T) {
	// The blocked match-count Gram build (mat.MatchCounts + lookup table,
	// parallel i-blocks) must reproduce the per-pair Eval build bit for bit
	// for every kernel kind, across sizes that exercise partial blocks.
	r := rng.New(97)
	for _, n := range []int{1, 5, 31, 70} {
		const d = 6
		block := make([]relational.Value, n*d)
		for i := range block {
			block[i] = relational.Value(r.Intn(4))
		}
		rows := make([][]relational.Value, n)
		for i := range rows {
			rows[i] = block[i*d : (i+1)*d]
		}
		for _, kind := range []KernelKind{Linear, Quadratic, RBF} {
			k, err := NewKernel(kind, 0.3, d)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float32, n*n)
			k.GramRows(want, rows)
			got := make([]float32, n*n)
			k.GramBlocked(got, block, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v n=%d: entry (%d,%d) diverged: blocked %v vs rows %v",
						kind, n, i/n, i%n, got[i], want[i])
				}
			}
		}
	}
}
