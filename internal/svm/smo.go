package svm

import (
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// Config holds the SVM hyper-parameters matching the paper's grid:
// C ∈ {0.1, 1, 10, 100, 1000}, γ ∈ {1e-4 … 10}.
type Config struct {
	Kernel KernelKind
	C      float64
	Gamma  float64
	// Tol is the KKT violation tolerance (default 1e-3, as in Platt's SMO
	// and libsvm).
	Tol float64
	// MaxPasses bounds the number of full passes without any multiplier
	// change before convergence is declared (default 5).
	MaxPasses int
	// MaxIter caps total SMO iterations as a safety valve (default 200 *
	// number of examples).
	MaxIter int
	// SubsampleCap, when positive, limits the training set to at most this
	// many examples via a seeded uniform subsample. SMO has quadratic cost,
	// and the paper's comparisons are within-dataset, so the cap applies
	// identically to JoinAll and NoJoin.
	SubsampleCap int
	// Seed drives SMO's second-multiplier randomization and subsampling.
	Seed uint64
	// RowAtATime forces the historical access path: rows pinned one at a
	// time through MaterializedRows and the kernel cache built from
	// row-pair match counts. The default consumes features column-at-a-time
	// (one batched scan per feature, morsel-parallel cache build); both
	// paths produce bit-identical models — the flag exists for A/B
	// benchmarks and equivalence tests.
	RowAtATime bool
	// ErrorCache selects the approximate SMO loop: the prediction-error
	// vector E[i] = f(i) − y[i] is maintained incrementally across α steps
	// (two kernel rows plus the bias delta per successful update) and each
	// iteration optimizes the maximal violating pair chosen over the cached
	// errors (Keerthi's b_up/b_low selection), replacing the default loop's
	// full f(i) recomputation per KKT check and randomized second choice.
	// The optimization visits a different sequence of pairs and stops on a
	// duality-gap criterion, so the fitted multipliers diverge from the
	// bit-identical default; the path is gated by the accuracy-level
	// equivalence harness (core.VerifyAccuracy), not bit-equality. Default
	// off.
	ErrorCache bool
}

// gramCacheCap bounds the training-set size for which Fit materializes the
// full n×n Gram cache (n² float32 ≈ 64 MiB at the cap); beyond it both SMO
// loops fall back to on-demand kernel evaluation. A variable so tests can
// exercise the cacheless branches at small n.
var gramCacheCap = 4096

// SVM is a kernel support vector classifier. Construct with New, then Fit.
type SVM struct {
	cfg    Config
	kernel *Kernel

	// Support set after training: rows (categorical codes), labels (±1),
	// multipliers, and bias.
	svRows   [][]relational.Value
	svAlphaY []float64
	b        float64
}

// New returns an unfitted SVM.
func New(cfg Config) (*SVM, error) {
	if cfg.C <= 0 {
		return nil, fmt.Errorf("svm: C must be positive, got %v", cfg.C)
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = 5
	}
	return &SVM{cfg: cfg}, nil
}

// Name implements ml.Named.
func (s *SVM) Name() string { return "SVM(" + s.cfg.Kernel.String() + ")" }

// Fit trains the SVM with sequential minimal optimization.
func (s *SVM) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("svm: empty training set")
	}
	r := rng.New(s.cfg.Seed)

	// Optional subsample for tractability on large datasets.
	ds := train
	if s.cfg.SubsampleCap > 0 && train.NumExamples() > s.cfg.SubsampleCap {
		perm := r.Perm(train.NumExamples())
		ds = train.Subset(perm[:s.cfg.SubsampleCap])
	}
	n := ds.NumExamples()
	d := ds.NumFeatures()

	// Pin every training row once — the kernel loops read two rows at a
	// time and the support set must outlive Fit. On the default columnar
	// path every feature is pulled in one batched column scan scattered
	// straight into the row-major block (ml.ScanRowMajor; under a
	// subsample view the scan bottoms out in the relation's column
	// gather), replacing n×d single-cell view accesses with d sequential
	// scans — and the block then feeds the Gram build's blocked match-count
	// kernel directly. Config.RowAtATime restores the historical per-row
	// materialization; cell values are identical either way.
	columnar := !s.cfg.RowAtATime
	var rows [][]relational.Value
	var block []relational.Value
	var labels []int8
	if columnar {
		b, l := ml.ScanRowMajor(ds)
		block, labels = b, l
		rows = make([][]relational.Value, n)
		for i := range rows {
			rows[i] = block[i*d : (i+1)*d : (i+1)*d]
		}
	} else {
		rows = ds.MaterializedRows()
		labels = make([]int8, n)
		for i := range labels {
			labels[i] = ds.Label(i)
		}
	}

	k, err := NewKernel(s.cfg.Kernel, s.cfg.Gamma, d)
	if err != nil {
		return err
	}
	s.kernel = k

	y := make([]float64, n)
	allSame := true
	for i := 0; i < n; i++ {
		if labels[i] == 1 {
			y[i] = 1
		} else {
			y[i] = -1
		}
		if i > 0 && y[i] != y[0] {
			allSame = false
		}
	}
	if allSame {
		// Degenerate: decision is a constant at the lone class.
		s.svRows = nil
		s.svAlphaY = nil
		s.b = y[0]
		return nil
	}

	alpha := make([]float64, n)
	b := 0.0
	C := s.cfg.C
	tol := s.cfg.Tol
	maxIter := s.cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * n
	}

	// Cache kernel rows lazily? For the paper's scales (n ≤ a few thousand
	// after capping) a full n×n cache is affordable and much faster. The
	// columnar build is a blocked X·Xᵀ over the pinned row-major block
	// (mat.MatchCounts per i-block, kernel values from a match-count lookup
	// table, i-blocks fanned across ml.ParallelFor with disjoint writes);
	// GramBlocked documents why it is bit-identical to the per-pair
	// GramRows build the historical path keeps.
	var kcache []float32
	cacheOK := n <= gramCacheCap
	if cacheOK {
		kcache = make([]float32, n*n)
		t0 := time.Now()
		if columnar {
			k.GramBlocked(kcache, block, n)
		} else {
			k.GramRows(kcache, rows)
		}
		gramSpan.ObserveSince(t0)
	}
	kij := func(i, j int) float64 {
		if cacheOK {
			return float64(kcache[i*n+j])
		}
		if i == j {
			return k.Self()
		}
		return k.Eval(rows[i], rows[j])
	}

	// ay[j] caches α_j·y_j for f's hot loop, and activeMask tracks the
	// nonzero-α set as a bitmap (bit j ⟺ α_j > 0). Each ay entry is
	// refreshed from the same two operands the historical `alpha[j] * y[j]`
	// recomputed per term, so every product f folds carries identical bits,
	// and the mask is exactly the historical `alpha[j] != 0` skip set.
	ay := make([]float64, n)
	activeMask := make([]uint64, (n+63)/64)
	setActive := func(j int, on bool) {
		if on {
			activeMask[j>>6] |= 1 << (j & 63)
		} else {
			activeMask[j>>6] &^= 1 << (j & 63)
		}
	}

	// f(i) = Σ_j α_j y_j k(i,j) + b — the read every SMO iteration pays.
	// With the cache present it walks the active bitmap (TrailingZeros
	// yields ascending j, so the fold order is the historical one) against
	// the raw float32 cache row: a sweep early in training, when almost
	// every α is zero, costs n/64 word loads instead of n load-and-tests.
	// Without the cache, the historical kij fold is unchanged.
	f := func(i int) float64 {
		sum := 0.0
		if kcache != nil {
			krow := kcache[i*n : (i+1)*n]
			for wi, word := range activeMask {
				base := wi << 6
				for word != 0 {
					j := base + bits.TrailingZeros64(word)
					word &= word - 1
					sum += ay[j] * float64(krow[j])
				}
			}
		} else {
			for j := 0; j < n; j++ {
				if alpha[j] != 0 {
					sum += alpha[j] * y[j] * kij(i, j)
				}
			}
		}
		return sum + b
	}

	if s.cfg.ErrorCache {
		// Approximate tier: incremental-E working-set loop (errorcache.go).
		// One smoPassSpan observation covers the whole optimization — the
		// loop has no full-sweep passes to time individually.
		t0 := time.Now()
		b = smoErrorCache(n, y, alpha, C, tol, maxIter, kcache, k, rows)
		smoPassSpan.ObserveSince(t0)
		s.retainSupport(rows, alpha, y, b)
		return nil
	}

	passes, iter := 0, 0
	for passes < s.cfg.MaxPasses && iter < maxIter {
		passT0 := time.Now()
		changed := 0
		for i := 0; i < n && iter < maxIter; i++ {
			iter++
			Ei := f(i) - y[i]
			if !((y[i]*Ei < -tol && alpha[i] < C) || (y[i]*Ei > tol && alpha[i] > 0)) {
				continue
			}
			// Pick j != i at random (simplified SMO's second choice).
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			Ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var L, H float64
			if y[i] != y[j] {
				L = max(0, aj-ai)
				H = min(C, C+aj-ai)
			} else {
				L = max(0, ai+aj-C)
				H = min(C, ai+aj)
			}
			if L == H {
				continue
			}
			eta := 2*kij(i, j) - kij(i, i) - kij(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(Ei-Ej)/eta
			if ajNew > H {
				ajNew = H
			} else if ajNew < L {
				ajNew = L
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			b1 := b - Ei - y[i]*(aiNew-ai)*kij(i, i) - y[j]*(ajNew-aj)*kij(i, j)
			b2 := b - Ej - y[i]*(aiNew-ai)*kij(i, j) - y[j]*(ajNew-aj)*kij(j, j)
			switch {
			case aiNew > 0 && aiNew < C:
				b = b1
			case ajNew > 0 && ajNew < C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			ay[i], ay[j] = aiNew*y[i], ajNew*y[j]
			setActive(i, aiNew > 0)
			setActive(j, ajNew > 0)
			changed++
		}
		smoPassSpan.ObserveSince(passT0)
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	s.retainSupport(rows, alpha, y, b)
	return nil
}

// retainSupport keeps the rows with nonzero multipliers as the fitted
// support set; both the exact and the error-cache loops end here.
func (s *SVM) retainSupport(rows [][]relational.Value, alpha, y []float64, b float64) {
	s.svRows = s.svRows[:0]
	s.svAlphaY = s.svAlphaY[:0]
	for i := range rows {
		if alpha[i] > 0 {
			s.svRows = append(s.svRows, rows[i])
			s.svAlphaY = append(s.svAlphaY, alpha[i]*y[i])
		}
	}
	s.b = b
}

// Decision returns the signed decision value Σ αᵢyᵢ k(xᵢ, x) + b.
func (s *SVM) Decision(row []relational.Value) float64 {
	sum := s.b
	for i, sv := range s.svRows {
		sum += s.svAlphaY[i] * s.kernel.Eval(sv, row)
	}
	return sum
}

// Predict classifies one example.
func (s *SVM) Predict(row []relational.Value) int8 {
	if s.kernel == nil {
		// Degenerate single-class fit stored the class sign in b.
		if s.b >= 0 {
			return 1
		}
		return 0
	}
	if s.Decision(row) >= 0 {
		return 1
	}
	return 0
}

// NumSupportVectors returns the size of the retained support set.
func (s *SVM) NumSupportVectors() int { return len(s.svRows) }
