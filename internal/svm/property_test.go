package svm

import (
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// TestDecisionSignMatchesPredict: Predict must be exactly the sign of the
// decision function (≥ 0 → class 1) for every fitted model and input.
func TestDecisionSignMatchesPredict(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(60) + 20
		ds := &ml.Dataset{Features: feats(4, 3)}
		hasBoth := false
		for i := 0; i < n; i++ {
			a := r.Intn(4)
			ds.X = append(ds.X, relational.Value(a), relational.Value(r.Intn(3)))
			y := int8(a % 2)
			ds.Y = append(ds.Y, y)
			if i > 0 && y != ds.Y[0] {
				hasBoth = true
			}
		}
		if !hasBoth {
			return true // degenerate sample; nothing to check
		}
		s, err := New(Config{Kernel: RBF, C: 10, Gamma: 0.5, Seed: seed})
		if err != nil {
			return false
		}
		if err := s.Fit(ds); err != nil {
			return false
		}
		for a := 0; a < 4; a++ {
			for b := 0; b < 3; b++ {
				row := []relational.Value{relational.Value(a), relational.Value(b)}
				wantPos := s.Decision(row) >= 0
				got := s.Predict(row) == 1
				if wantPos != got {
					return false
				}
			}
		}
		return s.NumSupportVectors() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRelabelInvariance: like the tree, the SVM's kernels see only match
// counts, so a consistent permutation of a feature's codes cannot change
// any prediction.
func TestRelabelInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const card = 5
		n := r.Intn(60) + 30
		ds := &ml.Dataset{Features: feats(card, 3)}
		for i := 0; i < n; i++ {
			a := r.Intn(card)
			ds.X = append(ds.X, relational.Value(a), relational.Value(r.Intn(3)))
			ds.Y = append(ds.Y, int8(a%2))
		}
		perm := r.Perm(card)
		relabeled := &ml.Dataset{
			Features: ds.Features,
			X:        append([]relational.Value(nil), ds.X...),
			Y:        ds.Y,
		}
		for i := 0; i < n; i++ {
			relabeled.X[i*2] = relational.Value(perm[ds.X[i*2]])
		}
		mk := func(d *ml.Dataset) (*SVM, error) {
			s, err := New(Config{Kernel: RBF, C: 10, Gamma: 0.5, Seed: 7})
			if err != nil {
				return nil, err
			}
			return s, s.Fit(d)
		}
		s1, err := mk(ds)
		if err != nil {
			return false
		}
		s2, err := mk(relabeled)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if s1.Predict(ds.Row(i)) != s2.Predict(relabeled.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
