package svm

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// noisyDataset builds a mostly-separable two-feature set: feature 0 carries
// the label with flip-noise, feature 1 is irrelevant. Duplicated rows are
// guaranteed (tiny domains, many examples), so the error-cache loop's
// zero-curvature handling is exercised, not just its happy path.
func noisyDataset(n int, seed uint64) *ml.Dataset {
	ds := &ml.Dataset{Features: feats(2, 4)}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		x0 := relational.Value(r.Intn(2))
		y := int8(x0)
		if r.Float64() < 0.1 {
			y = 1 - y
		}
		ds.X = append(ds.X, x0, relational.Value(r.Intn(4)))
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func fitPair(t *testing.T, ds *ml.Dataset, mutate func(*Config)) (exact, approx *SVM) {
	t.Helper()
	cfg := Config{Kernel: RBF, C: 10, Gamma: 0.5, Seed: 11}
	mutate(&cfg)
	var err error
	if exact, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	if err = exact.Fit(ds); err != nil {
		t.Fatal(err)
	}
	cfg.ErrorCache = true
	if approx, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	if err = approx.Fit(ds); err != nil {
		t.Fatal(err)
	}
	return exact, approx
}

// TestErrorCacheMatchesExactQuality holds the approximate loop to the exact
// loop's training quality on noisy, duplicate-heavy data — the same
// equivalence the full accuracy gate enforces on the real datasets, at unit
// scale.
func TestErrorCacheMatchesExactQuality(t *testing.T) {
	ds := noisyDataset(400, 3)
	exact, approx := fitPair(t, ds, func(*Config) {})
	accExact := ml.Accuracy(exact, ds)
	accApprox := ml.Accuracy(approx, ds)
	if accExact < 0.85 {
		t.Fatalf("exact reference underfits: %v", accExact)
	}
	if diff := accExact - accApprox; diff > 0.03 || diff < -0.03 {
		t.Fatalf("accuracy diverged: exact %v vs error-cache %v", accExact, accApprox)
	}
	if approx.NumSupportVectors() == 0 {
		t.Fatal("error-cache fit retained no support vectors")
	}
}

// TestErrorCacheWithoutGramCache forces the on-demand kernel-row branch by
// dropping the cache threshold below n.
func TestErrorCacheWithoutGramCache(t *testing.T) {
	old := gramCacheCap
	gramCacheCap = 8
	defer func() { gramCacheCap = old }()

	ds := noisyDataset(200, 5)
	exact, approx := fitPair(t, ds, func(*Config) {})
	accExact := ml.Accuracy(exact, ds)
	accApprox := ml.Accuracy(approx, ds)
	if diff := accExact - accApprox; diff > 0.05 || diff < -0.05 {
		t.Fatalf("cacheless accuracy diverged: exact %v vs error-cache %v", accExact, accApprox)
	}
}

// TestErrorCacheDegenerateSingleClass keeps the constant-decision shortcut
// intact under the flag.
func TestErrorCacheDegenerateSingleClass(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2)}
	for i := 0; i < 8; i++ {
		ds.X = append(ds.X, relational.Value(i%2))
		ds.Y = append(ds.Y, 1)
	}
	m, err := New(Config{Kernel: Linear, C: 1, ErrorCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]relational.Value{0, 0}); got != 1 {
		t.Fatalf("single-class fit predicts %d, want 1", got)
	}
}

// TestErrorCacheRespectsMaxIter pins the safety valve: a one-iteration
// budget must terminate immediately and still produce a usable model.
func TestErrorCacheRespectsMaxIter(t *testing.T) {
	ds := noisyDataset(100, 7)
	m, err := New(Config{Kernel: RBF, C: 10, Gamma: 0.5, MaxIter: 1, ErrorCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// One pair step moves exactly two multipliers.
	if sv := m.NumSupportVectors(); sv > 2 {
		t.Fatalf("MaxIter=1 retained %d support vectors, want ≤2", sv)
	}
}
