package svm

import (
	"math"

	"repro/internal/relational"
)

// smoErrorCache is the approximate SMO loop behind Config.ErrorCache.
//
// The exact loop pays a full f(i) = Σ_j α_j y_j k(i,j) + b fold for every
// KKT check — the dominant cost of a capped fit once the Gram cache is
// built. Here the prediction errors E[i] = f(i) − y[i] are state: α = 0 and
// b = 0 give E[i] = −y[i] up front, and each successful α step updates the
// whole vector incrementally from the two kernel rows it read anyway,
//
//	E[t] += Δ(α_i y_i)·k(i,t) + Δ(α_j y_j)·k(j,t) + Δb,
//
// so a KKT check is one slice read instead of an O(n·active) fold.
//
// With E cached, working-set selection upgrades from simplified SMO's
// random second choice to the maximal violating pair (Keerthi et al.'s
// b_up/b_low rule): i is the largest error over I_low = {α_i < C, y_i = −1}
// ∪ {α_i > 0, y_i = +1}, j the smallest over I_up = {α_i < C, y_i = +1} ∪
// {α_i > 0, y_i = −1}, and the loop stops when the violation gap
// max_low E − min_up E drops to 2·tol — a duality-gap criterion, where the
// exact loop counts quiet full passes.
//
// Two deliberate approximations keep this fast, and are why the result is
// accuracy-gated rather than bit-identical: the trajectory visits a
// different pair sequence than the reference, and E accumulates float32
// kernel terms incrementally instead of being recomputed from α, so it
// carries rounding drift of its own. Both effects move the fitted
// multipliers, not the learned decision quality — core.VerifyAccuracy holds
// the held-out delta inside tolerance.
//
// kcache is the n×n Gram cache when present; otherwise kernel rows are
// recomputed into scratch on demand (two rows per step, same as the cost
// the exact loop pays per update attempt at that scale).
//
// When the maximal pair cannot progress (identical rows drive eta to 0, or
// the box clips the step), the loop tries i against every other violating j
// before excluding i from selection; exclusions reset on the next
// successful step, and if every candidate i is excluded the loop declares
// convergence. Each iteration therefore either moves an α pair or shrinks
// the candidate set, so termination needs no pass counting; maxIter stays
// as the safety valve.
func smoErrorCache(n int, y, alpha []float64, C, tol float64, maxIter int, kcache []float32, k *Kernel, rows [][]relational.Value) float64 {
	E := make([]float64, n)
	for i := range E {
		E[i] = -y[i]
	}
	b := 0.0

	var scratchI, scratchJ []float32
	if kcache == nil {
		scratchI = make([]float32, n)
		scratchJ = make([]float32, n)
	}
	krow := func(i int, scratch []float32) []float32 {
		if kcache != nil {
			return kcache[i*n : (i+1)*n]
		}
		for j := range scratch {
			if j == i {
				scratch[j] = float32(k.Self())
			} else {
				scratch[j] = float32(k.Eval(rows[i], rows[j]))
			}
		}
		return scratch
	}

	// step optimizes the pair (i, j) analytically; it reports false when
	// the box or curvature admits no move, leaving all state untouched.
	step := func(i, j int) bool {
		Ei, Ej := E[i], E[j]
		ai, aj := alpha[i], alpha[j]
		var L, H float64
		if y[i] != y[j] {
			L = max(0, aj-ai)
			H = min(C, C+aj-ai)
		} else {
			L = max(0, ai+aj-C)
			H = min(C, ai+aj)
		}
		if L == H {
			return false
		}
		rowI := krow(i, scratchI)
		kii := float64(rowI[i])
		kij := float64(rowI[j])
		rowJ := krow(j, scratchJ)
		kjj := float64(rowJ[j])
		// Curvature along the pair direction. Categorical data is full of
		// duplicate rows, and a duplicate pair has k(i,j) = k(i,i) so quad
		// collapses to 0; flooring it (libsvm's TAU) turns the analytic
		// step into a huge one the box clip resolves, letting the pair make
		// bound-to-bound progress instead of stalling. The exact loop
		// rejects such pairs and draws a fresh random partner — one more
		// trajectory difference the accuracy gate absorbs.
		quad := kii + kjj - 2*kij
		if quad <= 0 {
			quad = 1e-12
		}
		ajNew := aj + y[j]*(Ei-Ej)/quad
		if ajNew > H {
			ajNew = H
		} else if ajNew < L {
			ajNew = L
		}
		if math.Abs(ajNew-aj) < 1e-7 {
			return false
		}
		aiNew := ai + y[i]*y[j]*(aj-ajNew)
		// Snap to the box: a clipped partner lands within rounding of a
		// bound (aiNew is derived arithmetically, not clipped), and an α
		// that is 1e-16 shy of C stays in the selection index sets forever,
		// wedging the max-violating-pair rule on a step too small to take.
		// libsvm does the same snap when reconstructing bound status.
		if aiNew < 1e-8 {
			aiNew = 0
		} else if aiNew > C-1e-8 {
			aiNew = C
		}
		if ajNew < 1e-8 {
			ajNew = 0
		} else if ajNew > C-1e-8 {
			ajNew = C
		}
		b1 := b - Ei - y[i]*(aiNew-ai)*kii - y[j]*(ajNew-aj)*kij
		b2 := b - Ej - y[i]*(aiNew-ai)*kij - y[j]*(ajNew-aj)*kjj
		var bNew float64
		switch {
		case aiNew > 0 && aiNew < C:
			bNew = b1
		case ajNew > 0 && ajNew < C:
			bNew = b2
		default:
			bNew = (b1 + b2) / 2
		}
		dai := (aiNew - ai) * y[i]
		daj := (ajNew - aj) * y[j]
		db := bNew - b
		alpha[i], alpha[j] = aiNew, ajNew
		b = bNew
		for t := 0; t < n; t++ {
			E[t] += dai*float64(rowI[t]) + daj*float64(rowJ[t]) + db
		}
		return true
	}

	excl := make([]bool, n)
	anyExcl := false
	for iter := 0; iter < maxIter; iter++ {
		// Maximal violating pair over the cached errors.
		up, lo := -1, -1
		minUpE := math.Inf(1)
		maxLoE := math.Inf(-1)
		for t := 0; t < n; t++ {
			if (y[t] > 0 && alpha[t] < C) || (y[t] < 0 && alpha[t] > 0) {
				if E[t] < minUpE {
					minUpE, up = E[t], t
				}
			}
			if excl[t] {
				continue
			}
			if (y[t] < 0 && alpha[t] < C) || (y[t] > 0 && alpha[t] > 0) {
				if E[t] > maxLoE {
					maxLoE, lo = E[t], t
				}
			}
		}
		if up < 0 || lo < 0 || maxLoE-minUpE <= 2*tol {
			break
		}
		if step(lo, up) {
			if anyExcl {
				clear(excl)
				anyExcl = false
			}
			continue
		}
		// The maximal pair is stuck; try lo against the remaining violating
		// partners before writing it off.
		progressed := false
		for t := 0; t < n && !progressed; t++ {
			if t == up {
				continue
			}
			if (y[t] > 0 && alpha[t] < C) || (y[t] < 0 && alpha[t] > 0) {
				if maxLoE-E[t] > 2*tol && step(lo, t) {
					progressed = true
				}
			}
		}
		if progressed {
			if anyExcl {
				clear(excl)
				anyExcl = false
			}
			continue
		}
		excl[lo] = true
		anyExcl = true
	}
	return b
}
