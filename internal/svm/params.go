package svm

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/relational"
)

// Params is the serializable state of a fitted SVM: the kernel
// configuration and the support set. A degenerate single-class fit has no
// kernel and stores the class sign in B (matching Predict's fallback).
type Params struct {
	Kernel KernelKind
	Gamma  float64
	// Dims is the categorical feature count d the kernel was built with.
	Dims int
	// HasKernel distinguishes a trained support set from the degenerate
	// single-class model.
	HasKernel bool
	// SVRows holds the support vectors' categorical codes, row-major
	// (len = NumSV × Dims).
	SVRows []relational.Value
	// SVAlphaY holds α_i·y_i per support vector.
	SVAlphaY []float64
	B        float64
}

// ExportParams snapshots the fitted support set (slices are copies).
func (s *SVM) ExportParams() (Params, error) {
	p := Params{Kernel: s.cfg.Kernel, Gamma: s.cfg.Gamma, B: s.b}
	if s.kernel == nil {
		// Fit stores a degenerate single-class model with kernel == nil; an
		// SVM that was never fitted looks the same, so require Fit evidence.
		if s.svRows != nil || s.svAlphaY != nil {
			return Params{}, fmt.Errorf("svm: inconsistent degenerate state")
		}
		if s.b != 1 && s.b != -1 {
			return Params{}, fmt.Errorf("svm: export before Fit")
		}
		return p, nil
	}
	p.HasKernel = true
	p.Dims = s.kernel.dims
	p.SVAlphaY = append([]float64(nil), s.svAlphaY...)
	p.SVRows = make([]relational.Value, 0, len(s.svRows)*p.Dims)
	for _, row := range s.svRows {
		if len(row) != p.Dims {
			return Params{}, fmt.Errorf("svm: support vector width %d != kernel dims %d", len(row), p.Dims)
		}
		p.SVRows = append(p.SVRows, row...)
	}
	return p, nil
}

// FromParams reconstructs a fitted SVM from an exported support set.
func FromParams(p Params) (*SVM, error) {
	s := &SVM{cfg: Config{Kernel: p.Kernel, C: 1, Gamma: p.Gamma}, b: p.B}
	if !p.HasKernel {
		if p.B != 1 && p.B != -1 {
			return nil, fmt.Errorf("svm: degenerate model must store a class sign, got b=%v", p.B)
		}
		return s, nil
	}
	k, err := NewKernel(p.Kernel, p.Gamma, p.Dims)
	if err != nil {
		return nil, err
	}
	s.kernel = k
	if p.Dims <= 0 || len(p.SVRows)%p.Dims != 0 {
		return nil, fmt.Errorf("svm: support block of %d values is not a multiple of dims %d", len(p.SVRows), p.Dims)
	}
	nSV := len(p.SVRows) / p.Dims
	if nSV != len(p.SVAlphaY) {
		return nil, fmt.Errorf("svm: %d support rows but %d multipliers", nSV, len(p.SVAlphaY))
	}
	s.svAlphaY = append([]float64(nil), p.SVAlphaY...)
	block := append([]relational.Value(nil), p.SVRows...)
	s.svRows = make([][]relational.Value, nSV)
	for i := range s.svRows {
		s.svRows[i] = block[i*p.Dims : (i+1)*p.Dims : (i+1)*p.Dims]
	}
	return s, nil
}

// ExportLinear implements ml.LinearExporter for the linear kernel: the
// decision Σ_i α_i y_i (x_i·x) + b over one-hot vectors folds into one
// weight per (feature, value) pair, w[j,v] = Σ_{i: x_i[j]=v} α_i y_i —
// which is what lets serving score without touching the support set. The
// fold iterates support vectors in retention order, so an encode/decode
// round trip exports bit-identical weights. Non-linear kernels return
// ok == false; the degenerate single-class model exports zero weights with
// the class sign as bias.
func (s *SVM) ExportLinear(features []ml.Feature) (float64, []float64, bool) {
	enc := ml.NewEncoder(features)
	if s.kernel == nil {
		if s.svRows == nil && (s.b == 1 || s.b == -1) {
			return s.b, make([]float64, enc.Dims), true
		}
		return 0, nil, false
	}
	if s.cfg.Kernel != Linear || s.kernel.dims != len(features) {
		return 0, nil, false
	}
	w := make([]float64, enc.Dims)
	for i, row := range s.svRows {
		ay := s.svAlphaY[i]
		for j, v := range row {
			w[enc.Index(j, v)] += ay
		}
	}
	return s.b, w, true
}
