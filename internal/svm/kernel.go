// Package svm implements support vector machine classification trained with
// Platt's SMO algorithm, covering the three kernels the paper evaluates
// through R's e1071 (§3.2): linear, polynomial of degree 2 ("quadratic"),
// and Gaussian RBF.
//
// Because all inputs are one-hot encoded categorical vectors, every kernel
// is a function of the match count m(x,z) = #features where x and z agree:
//
//	linear     k(x,z) = x·z = m
//	quadratic  k(x,z) = (γ·x·z)² = (γ·m)²
//	RBF        k(x,z) = exp(−γ‖x−z‖²) = exp(−2γ(d−m))
//
// so the implementation never materializes one-hot vectors. The equivalence
// is unit-tested against explicit encodings.
package svm

import (
	"fmt"
	"math"

	"repro/internal/ml"
	"repro/internal/relational"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// Linear is the plain dot-product kernel.
	Linear KernelKind = iota
	// Quadratic is e1071's polynomial kernel with degree 2 and coef0 = 0.
	Quadratic
	// RBF is the Gaussian radial basis function kernel.
	RBF
)

func (k KernelKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	case RBF:
		return "rbf"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// Kernel evaluates k(x, z) on categorical rows.
type Kernel struct {
	Kind  KernelKind
	Gamma float64
	dims  int // number of categorical features d
}

// NewKernel constructs a kernel for rows with d categorical features.
// Gamma is ignored by Linear.
func NewKernel(kind KernelKind, gamma float64, d int) (*Kernel, error) {
	if kind != Linear && gamma <= 0 {
		return nil, fmt.Errorf("svm: %v kernel requires gamma > 0, got %v", kind, gamma)
	}
	if d <= 0 {
		return nil, fmt.Errorf("svm: kernel requires d > 0 features, got %d", d)
	}
	return &Kernel{Kind: kind, Gamma: gamma, dims: d}, nil
}

// Eval computes k(a, b).
func (k *Kernel) Eval(a, b []relational.Value) float64 {
	m := float64(ml.MatchCount(a, b))
	switch k.Kind {
	case Linear:
		return m
	case Quadratic:
		g := k.Gamma * m
		return g * g
	case RBF:
		return math.Exp(-2 * k.Gamma * (float64(k.dims) - m))
	default:
		panic("svm: unknown kernel kind")
	}
}

// Self computes k(x, x), needed by SMO's eta term.
func (k *Kernel) Self() float64 {
	d := float64(k.dims)
	switch k.Kind {
	case Linear:
		return d
	case Quadratic:
		g := k.Gamma * d
		return g * g
	case RBF:
		return 1
	default:
		panic("svm: unknown kernel kind")
	}
}
