// Package svm implements support vector machine classification trained with
// Platt's SMO algorithm, covering the three kernels the paper evaluates
// through R's e1071 (§3.2): linear, polynomial of degree 2 ("quadratic"),
// and Gaussian RBF.
//
// Because all inputs are one-hot encoded categorical vectors, every kernel
// is a function of the match count m(x,z) = #features where x and z agree:
//
//	linear     k(x,z) = x·z = m
//	quadratic  k(x,z) = (γ·x·z)² = (γ·m)²
//	RBF        k(x,z) = exp(−γ‖x−z‖²) = exp(−2γ(d−m))
//
// so the implementation never materializes one-hot vectors. The equivalence
// is unit-tested against explicit encodings.
package svm

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/relational"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// Linear is the plain dot-product kernel.
	Linear KernelKind = iota
	// Quadratic is e1071's polynomial kernel with degree 2 and coef0 = 0.
	Quadratic
	// RBF is the Gaussian radial basis function kernel.
	RBF
)

func (k KernelKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Quadratic:
		return "quadratic"
	case RBF:
		return "rbf"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// Kernel evaluates k(x, z) on categorical rows.
type Kernel struct {
	Kind  KernelKind
	Gamma float64
	dims  int // number of categorical features d
}

// NewKernel constructs a kernel for rows with d categorical features.
// Gamma is ignored by Linear.
func NewKernel(kind KernelKind, gamma float64, d int) (*Kernel, error) {
	if kind != Linear && gamma <= 0 {
		return nil, fmt.Errorf("svm: %v kernel requires gamma > 0, got %v", kind, gamma)
	}
	if d <= 0 {
		return nil, fmt.Errorf("svm: kernel requires d > 0 features, got %d", d)
	}
	return &Kernel{Kind: kind, Gamma: gamma, dims: d}, nil
}

// Eval computes k(a, b).
func (k *Kernel) Eval(a, b []relational.Value) float64 {
	return k.OfMatch(float64(ml.MatchCount(a, b)))
}

// OfMatch computes the kernel value from a match count m — every kernel of
// this study is a function of m alone, which is what makes the Gram matrix a
// blocked X·Xᵀ over match counts followed by a (d+1)-entry lookup table.
func (k *Kernel) OfMatch(m float64) float64 {
	switch k.Kind {
	case Linear:
		return m
	case Quadratic:
		g := k.Gamma * m
		return g * g
	case RBF:
		return math.Exp(-2 * k.Gamma * (float64(k.dims) - m))
	default:
		panic("svm: unknown kernel kind")
	}
}

// GramRows fills the n×n row-major Gram matrix dst with k evaluated on every
// row pair through per-pair Eval calls — the historical row-at-a-time build
// (diagonal from Self, strict upper triangle mirrored as it is computed).
func (k *Kernel) GramRows(dst []float32, rows [][]relational.Value) {
	n := len(rows)
	for i := 0; i < n; i++ {
		dst[i*n+i] = float32(k.Self())
		for j := i + 1; j < n; j++ {
			v := float32(k.Eval(rows[i], rows[j]))
			dst[i*n+j] = v
			dst[j*n+i] = v
		}
	}
}

// gramBlockRows is the i-extent of one GramBlocked task: one task's match
// counts (gramBlockRows × n int32) stay a few hundred KiB even at the 4096
// cache cap, and a full cache build yields enough tasks to saturate the pool.
const gramBlockRows = 32

// GramBlocked fills the n×n Gram matrix from a dense row-major block of n
// categorical rows (block[i*d:(i+1)*d] is row i, d = the kernel's feature
// count): the match counts of an i-block against columns [i0, n) come from
// one blocked mat.MatchCounts call — the X·Xᵀ product of the one-hot
// encodings, never expanded — and kernel values are a (d+1)-entry lookup
// table indexed by count, since every kernel is a function of the match
// count alone. i-blocks fan out across ml.ParallelFor writing disjoint row
// ranges of the strict upper triangle (deterministic regardless of
// scheduling), and the lower triangle is mirrored afterwards.
//
// Each entry is float32(k.OfMatch(m)) for the same integer m the per-pair
// build computes, so the cache is bit-identical to GramRows on the same rows.
func (k *Kernel) GramBlocked(dst []float32, block []relational.Value, n int) {
	d := k.dims
	lut := make([]float32, d+1)
	for m := 0; m <= d; m++ {
		lut[m] = float32(k.OfMatch(float64(m)))
	}
	self := float32(k.Self())

	// Pack rows to 16-bit lanes when the codes fit (they do whenever the
	// feature domains do — dictionary codes are dense): the SWAR kernel
	// compares four features per uint64 with half the memory traffic, and
	// counts are exact integers either way.
	words := mat.PackedWords(d)
	packed := make([]uint64, n*words)
	usePacked := mat.PackU16Rows(packed, block, n, d)

	blocks := (n + gramBlockRows - 1) / gramBlockRows
	ml.ParallelFor(blocks, func(bi int) {
		i0 := bi * gramBlockRows
		i1 := min(i0+gramBlockRows, n)
		// Count rows [i0,i1) against columns [i0,n): the strict upper
		// triangle of the block's rows plus a small discarded wedge.
		w := n - i0
		cnt := make([]int32, (i1-i0)*w)
		if usePacked {
			mat.MatchCountsU16(cnt, w, packed[i0*words:i1*words], packed[i0*words:n*words], i1-i0, w, d)
		} else {
			mat.MatchCounts(cnt, w, block[i0*d:i1*d], d, block[i0*d:n*d], d, i1-i0, w, d)
		}
		for i := i0; i < i1; i++ {
			row := dst[i*n : (i+1)*n]
			crow := cnt[(i-i0)*w : (i-i0+1)*w]
			for j := i + 1; j < n; j++ {
				row[j] = lut[crow[j-i0]]
			}
			row[i] = self
		}
	})

	// Mirror the upper triangle in square tiles: reads walk tile rows that
	// stay cache-resident and writes land in contiguous runs, instead of
	// one column-strided write (a fresh cache line each) per entry.
	const mirrorTile = 64
	for i0 := 0; i0 < n; i0 += mirrorTile {
		i1 := min(i0+mirrorTile, n)
		for j0 := i0; j0 < n; j0 += mirrorTile {
			j1 := min(j0+mirrorTile, n)
			for j := max(j0, i0+1); j < j1; j++ {
				row := dst[j*n:]
				hi := min(i1, j)
				for i := i0; i < hi; i++ {
					row[i] = dst[i*n+j]
				}
			}
		}
	}
}

// Self computes k(x, x), needed by SMO's eta term.
func (k *Kernel) Self() float64 {
	d := float64(k.dims)
	switch k.Kind {
	case Linear:
		return d
	case Quadratic:
		g := k.Gamma * d
		return g * g
	case RBF:
		return 1
	default:
		panic("svm: unknown kernel kind")
	}
}
