// Package mat is a small dependency-free micro-BLAS for the learners' dense
// hot loops: register-blocked GEMM/GEMV kernels over row-major []float64
// blocks, plus the sparse kernels the one-hot feature encoding calls for
// (SpGemmOneHot over an active-index matrix, MatchCounts for the kernel-SVM
// Gram build).
//
// # Bit-identity contract
//
// Every kernel keeps the k-accumulation of each output element sequential and
// in ascending k order — the same order as the per-row scalar loops the
// learners historically ran — so swapping a scalar loop for a mat call
// changes *no result bit*. Register blocking only groups independent output
// elements (adjacent i rows, 4x-unrolled j columns); it never reorders the
// additions that feed one element, and unrolled dot products accumulate
// through a single chain (Go does not reassociate floating-point expressions,
// so `s + a + b` is evaluated as `(s + a) + b`). FuzzMatEquivalence pins
// every kernel bit-identical to its naive triple-loop reference across
// shapes and strides.
//
// All matrices are row-major with an explicit leading dimension (the stride
// between consecutive rows), so callers can address sub-blocks of a larger
// allocation without copying.
package mat

import "math/bits"

// Dot returns the inner product of x and y, accumulated sequentially through
// a single chain (4x-unrolled, never reassociated), so it is bit-identical
// to the obvious scalar loop. y must be at least as long as x.
func Dot(x, y []float64) float64 {
	return dotFrom(0, x, y)
}

// dotFrom continues an accumulation chain: it returns s plus the inner
// product of x and y, adding each product to the running sum in index order
// starting from s — the shape of the learners' `acc := bias; acc += x·y`
// loops, which Gemv must reproduce bit for bit.
func dotFrom(s float64, x, y []float64) float64 {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s = s + x[i]*y[i] + x[i+1]*y[i+1] + x[i+2]*y[i+2] + x[i+3]*y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy accumulates y += alpha*x element-wise (4x-unrolled; each element is
// independent, so unrolling cannot change any bit). y must be at least as
// long as x.
func Axpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// addTo accumulates y += x element-wise — Axpy with alpha fixed to one,
// without the multiply (1*x is bit-exact, but the learners' historical loops
// add the row directly, so the kernel does too).
func addTo(x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += x[i]
		y[i+1] += x[i+1]
		y[i+2] += x[i+2]
		y[i+3] += x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += x[i]
	}
}

// Gemv accumulates y += A·x for a row-major m×n matrix A with leading
// dimension lda. Each output continues its accumulation chain from the
// existing y[i] (products added in ascending j order), so the result is
// bit-identical to a scalar `acc := y[i]; acc += a[j]*x[j]` loop — not to a
// separately summed dot product added at the end.
func Gemv(y []float64, a []float64, lda int, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		y[i] = dotFrom(y[i], a[i*lda:i*lda+n], x[:n])
	}
}

// GemvT accumulates y += Aᵀ·x for a row-major m×n matrix A (y has length n,
// x length m). Row i's contribution x[i]*A[i,:] lands before row i+1's, so
// each y[j] sums in ascending i order — the order a per-example accumulation
// loop produces.
func GemvT(y []float64, a []float64, lda int, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		Axpy(x[i], a[i*lda:i*lda+n], y[:n])
	}
}

// Gemm accumulates C += A·B for row-major A (m×k, lda), B (k×n, ldb), and
// C (m×n, ldc). The loop nest is i-blocked two rows at a time (both share
// each streamed B row) with the j loop 4x-unrolled inside Axpy; the k loop
// stays outermost-per-element and ascending, so every C[i,j] accumulates its
// k terms in exactly the order of the scalar dot-product loop.
func Gemm(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, n, k int) {
	if n <= smallGemmN {
		gemmSmallN(c, ldc, a, lda, b, ldb, m, n, k)
		return
	}
	i := 0
	for ; i+2 <= m; i += 2 {
		c0 := c[i*ldc : i*ldc+n]
		c1 := c[(i+1)*ldc : (i+1)*ldc+n]
		a0 := a[i*lda : i*lda+k]
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		for kk := 0; kk < k; kk++ {
			bk := b[kk*ldb : kk*ldb+n]
			av0, av1 := a0[kk], a1[kk]
			j := 0
			for ; j+4 <= n; j += 4 {
				c0[j] += av0 * bk[j]
				c0[j+1] += av0 * bk[j+1]
				c0[j+2] += av0 * bk[j+2]
				c0[j+3] += av0 * bk[j+3]
				c1[j] += av1 * bk[j]
				c1[j+1] += av1 * bk[j+1]
				c1[j+2] += av1 * bk[j+2]
				c1[j+3] += av1 * bk[j+3]
			}
			for ; j < n; j++ {
				c0[j] += av0 * bk[j]
				c1[j] += av1 * bk[j]
			}
		}
	}
	for ; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		ai := a[i*lda : i*lda+k]
		for kk := 0; kk < k; kk++ {
			Axpy(ai[kk], b[kk*ldb:kk*ldb+n], ci)
		}
	}
}

// smallGemmN is the C width at or below which Gemm switches to the
// register-accumulator kernel. Narrow C is the serving tail's shape (a wide
// hidden layer funneling into a few output units): the streaming kernel
// loads and stores every C element once per k step, so for n this small the
// memory traffic on C dwarfs the flops. Measured on the reference box, the
// crossover sits between 8 and 16 columns.
const smallGemmN = 8

// gemmSmallN computes the same C += A·B for narrow C with the k loop
// innermost and the accumulation held in registers: each C element is read
// and written exactly once instead of k times. The i loop is blocked two
// rows at a time so both rows share each streamed B row, and the j loop four
// columns at a time. Every C[i,j] still sums its k terms in ascending k
// order through a single chain, so the result is bit-identical to the
// streaming kernel (FuzzMatEquivalence pins this).
func gemmSmallN(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, n, k int) {
	if k == 0 {
		return
	}
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[i*lda : i*lda+k]
		a1 := a[(i+1)*lda : (i+1)*lda+k]
		c0 := c[i*ldc : i*ldc+n]
		c1 := c[(i+1)*ldc : (i+1)*ldc+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s00, s01, s02, s03 := c0[j], c0[j+1], c0[j+2], c0[j+3]
			s10, s11, s12, s13 := c1[j], c1[j+1], c1[j+2], c1[j+3]
			bj := b[j:]
			for kk, av0 := range a0 {
				bk := bj[kk*ldb : kk*ldb+4]
				av1 := a1[kk]
				s00 += av0 * bk[0]
				s01 += av0 * bk[1]
				s02 += av0 * bk[2]
				s03 += av0 * bk[3]
				s10 += av1 * bk[0]
				s11 += av1 * bk[1]
				s12 += av1 * bk[2]
				s13 += av1 * bk[3]
			}
			c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
			c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		}
		for ; j < n; j++ {
			s0, s1 := c0[j], c1[j]
			bj := b[j:]
			for kk, av0 := range a0 {
				bv := bj[kk*ldb]
				s0 += av0 * bv
				s1 += a1[kk] * bv
			}
			c0[j], c1[j] = s0, s1
		}
	}
	for ; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s0, s1, s2, s3 := ci[j], ci[j+1], ci[j+2], ci[j+3]
			bj := b[j:]
			for kk, av := range ai {
				bk := bj[kk*ldb : kk*ldb+4]
				s0 += av * bk[0]
				s1 += av * bk[1]
				s2 += av * bk[2]
				s3 += av * bk[3]
			}
			ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			s := ci[j]
			bj := b[j:]
			for kk, av := range ai {
				s += av * bj[kk*ldb]
			}
			ci[j] = s
		}
	}
}

// GemmTA accumulates C += Aᵀ·B for row-major A (k×m, lda), B (k×n, ldb), and
// C (m×n, ldc) — the shape of a batch's weight-gradient accumulation
// (activationsᵀ · deltas). The k loop is outermost, so every C[u,v] sums its
// per-example terms in ascending example order, exactly as the historical
// example-at-a-time loop accumulated them.
func GemmTA(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, n, k int) {
	for kk := 0; kk < k; kk++ {
		ak := a[kk*lda : kk*lda+m]
		bk := b[kk*ldb : kk*ldb+n]
		u := 0
		for ; u+2 <= m; u += 2 {
			av0, av1 := ak[u], ak[u+1]
			c0 := c[u*ldc : u*ldc+n]
			c1 := c[(u+1)*ldc : (u+1)*ldc+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				c0[j] += av0 * bk[j]
				c0[j+1] += av0 * bk[j+1]
				c0[j+2] += av0 * bk[j+2]
				c0[j+3] += av0 * bk[j+3]
				c1[j] += av1 * bk[j]
				c1[j+1] += av1 * bk[j+1]
				c1[j+2] += av1 * bk[j+2]
				c1[j+3] += av1 * bk[j+3]
			}
			for ; j < n; j++ {
				c0[j] += av0 * bk[j]
				c1[j] += av1 * bk[j]
			}
		}
		for ; u < m; u++ {
			Axpy(ak[u], bk, c[u*ldc:u*ldc+n])
		}
	}
}

// GatherSum returns init + w[idx[0]] + w[idx[1]] + … accumulated in index
// order starting from init — the inner product of a one-hot-encoded row with
// a weight vector, without expanding the one-hot form, continuing the
// caller's `score := bias` accumulation chain so the result is bit-identical
// to the linear models' historical per-example loops. It is the h=1 form of
// SpGemmOneHot.
func GatherSum(init float64, w []float64, idx []int32) float64 {
	s := init
	for _, k := range idx {
		s += w[k]
	}
	return s
}

// SpGemmOneHot computes C = 1·biasᵀ + OneHot(idx)·W without expanding the
// one-hot matrix: row i of C is bias plus the sum of the W rows named by
// idx[i,:], added in column order — the exact accumulation order of the
// historical per-example embedding loops. idx is m×d (leading dimension
// ldi), W has h columns (leading dimension ldw), C is m×h (leading dimension
// ldc), and bias has length h. C rows are overwritten, not accumulated.
//
// With h == 1 the kernel degenerates to the linear models' batched scorer:
// c[i*ldc] = bias[0] + Σ_j w[idx[i,j]].
func SpGemmOneHot(c []float64, ldc int, idx []int32, ldi int, w []float64, ldw int, m, d, h int, bias []float64) {
	if h == 1 {
		b := bias[0]
		for i := 0; i < m; i++ {
			row := idx[i*ldi : i*ldi+d]
			s := b
			for _, k := range row {
				s += w[int(k)*ldw]
			}
			c[i*ldc] = s
		}
		return
	}
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+h]
		copy(ci, bias[:h])
		for _, k := range idx[i*ldi : i*ldi+d] {
			addTo(w[int(k)*ldw:int(k)*ldw+h], ci)
		}
	}
}

// u16Lanes is the packing width of the SWAR match kernel: four 16-bit
// feature codes per uint64 word.
const u16Lanes = 4

// PackedWords returns the uint64 words one packed row of d features needs.
func PackedWords(d int) int { return (d + u16Lanes - 1) / u16Lanes }

// PackU16Rows packs n rows of d int32 feature codes (row-major in block)
// into dst, four 16-bit lanes per uint64 word, padding the last word's
// unused lanes with zero — identical padding in every row, so padded lanes
// always compare equal and MatchCountsU16 can account for them exactly. It
// reports false (leaving dst unspecified) when any value falls outside
// [0, 65536), in which case the caller must keep the int32 path; dictionary
// codes fit whenever the feature's domain does, so in practice packing only
// fails on degenerate schemas.
func PackU16Rows(dst []uint64, block []int32, n, d int) bool {
	words := PackedWords(d)
	for i := 0; i < n; i++ {
		row := block[i*d : (i+1)*d]
		out := dst[i*words : (i+1)*words]
		for w := range out {
			var word uint64
			base := w * u16Lanes
			for l := 0; l < u16Lanes && base+l < d; l++ {
				v := row[base+l]
				if uint32(v) > 0xffff {
					return false
				}
				word |= uint64(uint16(v)) << (16 * l)
			}
			out[w] = word
		}
	}
	return true
}

const (
	swarLo7 = 0x7fff7fff7fff7fff
	swarHi  = 0x8000800080008000
)

// nonzeroLanes16 counts the nonzero 16-bit lanes of x without branches:
// adding 0x7fff to the low 15 bits of a lane carries into its high bit
// exactly when those bits are nonzero (0x7fff+0x7fff = 0xfffe, so the carry
// never crosses a lane), OR-ing x back in catches lanes whose own high bit
// is set, and the popcount of the high-bit mask is the nonzero-lane count.
func nonzeroLanes16(x uint64) int32 {
	y := (x&swarLo7 + swarLo7) | x
	return int32(bits.OnesCount64(y & swarHi))
}

// MatchCountsU16 is MatchCounts over rows packed by PackU16Rows: dst[i*ldd+j]
// counts the features where packed row i of a equals packed row j of b. Each
// uint64 word compares four features at once (XOR + SWAR zero-lane popcount),
// and since padded lanes always match, the count is d minus the mismatching
// lanes — the same exact integer the int32 kernel produces, just ~4x fewer
// operations and half the memory traffic. a is m rows, b is n rows, both of
// PackedWords(d) words.
func MatchCountsU16(dst []int32, ldd int, a []uint64, b []uint64, m, n, d int) {
	words := PackedWords(d)
	for i := 0; i < m; i++ {
		ai := a[i*words : (i+1)*words]
		di := dst[i*ldd : i*ldd+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b[j*words : (j+1)*words]
			b1 := b[(j+1)*words : (j+2)*words]
			var nz0, nz1 int32
			for w, aw := range ai {
				nz0 += nonzeroLanes16(aw ^ b0[w])
				nz1 += nonzeroLanes16(aw ^ b1[w])
			}
			di[j], di[j+1] = int32(d)-nz0, int32(d)-nz1
		}
		for ; j < n; j++ {
			bj := b[j*words : (j+1)*words]
			var nz int32
			for w, aw := range ai {
				nz += nonzeroLanes16(aw ^ bj[w])
			}
			di[j] = int32(d) - nz
		}
	}
}

// matchEq returns 1 when a == b and 0 otherwise, branch-free: the sign bit
// of x|−x is set exactly when x != 0.
func matchEq(a, b int32) int32 {
	x := uint32(a ^ b)
	return int32(1 ^ ((x | -x) >> 31))
}

// MatchCounts fills dst[i*ldd+j] with the number of positions where row i of
// a equals row j of b — the one-hot dot product a_i·b_j computed without
// expanding either one-hot matrix, i.e. the blocked X·Xᵀ kernel of the
// categorical SVM's Gram build. a is m×k (lda), b is n×k (ldb), dst is m×n
// (ldd). The inner comparison is branch-free and j is blocked four rows at a
// time so each a value loads once per block; counts are exact integers, so
// blocking cannot change them.
func MatchCounts(dst []int32, ldd int, a []int32, lda int, b []int32, ldb int, m, n, k int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		di := dst[i*ldd : i*ldd+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*ldb : j*ldb+k]
			b1 := b[(j+1)*ldb : (j+1)*ldb+k]
			b2 := b[(j+2)*ldb : (j+2)*ldb+k]
			b3 := b[(j+3)*ldb : (j+3)*ldb+k]
			var c0, c1, c2, c3 int32
			for f, av := range ai {
				c0 += matchEq(av, b0[f])
				c1 += matchEq(av, b1[f])
				c2 += matchEq(av, b2[f])
				c3 += matchEq(av, b3[f])
			}
			di[j], di[j+1], di[j+2], di[j+3] = c0, c1, c2, c3
		}
		for ; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			var cnt int32
			for f, av := range ai {
				cnt += matchEq(av, bj[f])
			}
			di[j] = cnt
		}
	}
}
