package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// naiveAdam is the historical per-block update loop the fused kernel
// replaces (ann.applyAdam's update closure), kept verbatim as the
// bit-identity reference.
func naiveAdam(w, g, m, v []float64, lr, l2, beta1, beta2, eps, c1, c2 float64) {
	for i := range w {
		gi := g[i] + l2*w[i]
		m[i] = beta1*m[i] + (1-beta1)*gi
		v[i] = beta2*v[i] + (1-beta2)*gi*gi
		w[i] -= lr * (m[i] / c1) / (math.Sqrt(v[i]/c2) + eps)
	}
}

// TestAdamStepMatchesNaive pins the fused kernel bit-identical to the scalar
// reference across several steps (moments accumulate, so drift would
// compound and be caught) and checks the gradient slab is cleared.
func TestAdamStepMatchesNaive(t *testing.T) {
	const n = 257
	r := rng.New(5)
	wa := make([]float64, n)
	ma := make([]float64, n)
	va := make([]float64, n)
	wb := make([]float64, n)
	mb := make([]float64, n)
	vb := make([]float64, n)
	ga := make([]float64, n)
	gb := make([]float64, n)
	for i := range wa {
		wa[i] = r.NormFloat64()
		wb[i] = wa[i]
	}
	const lr, l2, beta1, beta2, eps = 1e-2, 1e-3, 0.9, 0.999, 1e-8
	for step := 1; step <= 5; step++ {
		for i := range ga {
			ga[i] = r.NormFloat64()
			gb[i] = ga[i]
		}
		c1 := 1 - math.Pow(beta1, float64(step))
		c2 := 1 - math.Pow(beta2, float64(step))
		naiveAdam(wa, ga, ma, va, lr, l2, beta1, beta2, eps, c1, c2)
		AdamStep(wb, gb, mb, vb, lr, l2, beta1, beta2, eps, c1, c2)
		for i := range wa {
			if wa[i] != wb[i] || ma[i] != mb[i] || va[i] != vb[i] {
				t.Fatalf("step %d index %d: fused (w=%v m=%v v=%v) != naive (w=%v m=%v v=%v)",
					step, i, wb[i], mb[i], vb[i], wa[i], ma[i], va[i])
			}
			if gb[i] != 0 {
				t.Fatalf("step %d index %d: gradient not cleared: %v", step, i, gb[i])
			}
		}
	}
}
