package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// naiveGemm is the reference triple loop: per output element, k ascending.
func naiveGemm(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c[i*ldc+j]
			for kk := 0; kk < k; kk++ {
				s += a[i*lda+kk] * b[kk*ldb+j]
			}
			c[i*ldc+j] = s
		}
	}
}

// naiveGemmTA accumulates C += Aᵀ·B with the per-element k loop ascending.
func naiveGemmTA(c []float64, ldc int, a []float64, lda int, b []float64, ldb int, m, n, k int) {
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			s := c[u*ldc+v]
			for kk := 0; kk < k; kk++ {
				s += a[kk*lda+u] * b[kk*ldb+v]
			}
			c[u*ldc+v] = s
		}
	}
}

func naiveGemv(y []float64, a []float64, lda int, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		s := y[i]
		for j := 0; j < n; j++ {
			s += a[i*lda+j] * x[j]
		}
		y[i] = s
	}
}

func naiveGemvT(y []float64, a []float64, lda int, x []float64, m, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			y[j] += x[i] * a[i*lda+j]
		}
	}
}

func naiveSpGemmOneHot(c []float64, ldc int, idx []int32, ldi int, w []float64, ldw int, m, d, h int, bias []float64) {
	for i := 0; i < m; i++ {
		for u := 0; u < h; u++ {
			c[i*ldc+u] = bias[u]
		}
		for j := 0; j < d; j++ {
			row := int(idx[i*ldi+j]) * ldw
			for u := 0; u < h; u++ {
				c[i*ldc+u] += w[row+u]
			}
		}
	}
}

func naiveMatchCounts(dst []int32, ldd int, a []int32, lda int, b []int32, ldb int, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var cnt int32
			for f := 0; f < k; f++ {
				if a[i*lda+f] == b[j*ldb+f] {
					cnt++
				}
			}
			dst[i*ldd+j] = cnt
		}
	}
}

// fillRand populates a slice with a reproducible mix of magnitudes, signs,
// and exact zeros so cancellation-order bugs surface.
func fillRand(r *rng.RNG, dst []float64) {
	for i := range dst {
		switch r.Intn(8) {
		case 0:
			dst[i] = 0
		case 1:
			dst[i] = r.NormFloat64() * 1e9
		case 2:
			dst[i] = r.NormFloat64() * 1e-9
		default:
			dst[i] = r.NormFloat64()
		}
	}
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d diverged: got %v (%#x) want %v (%#x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// checkKernels runs every kernel against its naive reference for one shape
// and stride set, requiring bit-identical outputs. Shared by the table test
// and the fuzzer.
func checkKernels(t *testing.T, seed uint64, m, n, k, lda, ldb, ldc int) {
	t.Helper()
	if lda < k {
		lda = k
	}
	if ldb < n {
		ldb = n
	}
	if ldc < n {
		ldc = n
	}
	r := rng.New(seed)
	a := make([]float64, m*lda+1)
	b := make([]float64, k*ldb+1)
	fillRand(r, a)
	fillRand(r, b)
	c0 := make([]float64, m*ldc+1)
	fillRand(r, c0)
	c1 := append([]float64(nil), c0...)
	Gemm(c0, ldc, a, lda, b, ldb, m, n, k)
	naiveGemm(c1, ldc, a, lda, b, ldb, m, n, k)
	bitsEqual(t, "Gemm", c0, c1)

	// GemmTA: A is k×m with leading dimension ldta.
	ldta := lda
	if ldta < m {
		ldta = m
	}
	at := make([]float64, k*ldta+1)
	fillRand(r, at)
	c0 = make([]float64, m*ldc+1)
	fillRand(r, c0)
	c1 = append([]float64(nil), c0...)
	GemmTA(c0, ldc, at, ldta, b, ldb, m, n, k)
	naiveGemmTA(c1, ldc, at, ldta, b, ldb, m, n, k)
	bitsEqual(t, "GemmTA", c0, c1)

	// Gemv / GemvT over the m×k matrix a.
	x := make([]float64, k)
	fillRand(r, x)
	y0 := make([]float64, m)
	fillRand(r, y0)
	y1 := append([]float64(nil), y0...)
	Gemv(y0, a, lda, x, m, k)
	naiveGemv(y1, a, lda, x, m, k)
	bitsEqual(t, "Gemv", y0, y1)

	xt := make([]float64, m)
	fillRand(r, xt)
	yt0 := make([]float64, k)
	fillRand(r, yt0)
	yt1 := append([]float64(nil), yt0...)
	GemvT(yt0, a, lda, xt, m, k)
	naiveGemvT(yt1, a, lda, xt, m, k)
	bitsEqual(t, "GemvT", yt0, yt1)

	// Dot and Axpy on dedicated k- and n-length vectors.
	dx := make([]float64, k)
	dy := make([]float64, k)
	fillRand(r, dx)
	fillRand(r, dy)
	if got, want := Dot(dx, dy), func() float64 {
		s := 0.0
		for i := 0; i < k; i++ {
			s += dx[i] * dy[i]
		}
		return s
	}(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Dot diverged: got %v want %v", got, want)
	}
	alpha := r.NormFloat64()
	axx := make([]float64, n)
	fillRand(r, axx)
	ax0 := make([]float64, n)
	fillRand(r, ax0)
	ax1 := append([]float64(nil), ax0...)
	Axpy(alpha, axx, ax0)
	for i := 0; i < n; i++ {
		ax1[i] += alpha * axx[i]
	}
	bitsEqual(t, "Axpy", ax0, ax1)

	// SpGemmOneHot: the weight table has m*k rows so any idx < m*k is valid;
	// exercise both the h>1 row-add path and the h==1 scalar path.
	d := k
	wrows := m*k + 1
	for _, h := range []int{1, n} {
		if h == 0 {
			continue
		}
		ldw := h
		w := make([]float64, wrows*ldw)
		fillRand(r, w)
		bias := make([]float64, h)
		fillRand(r, bias)
		idx := make([]int32, m*d+1)
		for i := range idx {
			idx[i] = int32(r.Intn(wrows))
		}
		s0 := make([]float64, m*ldc+1)
		s1 := make([]float64, m*ldc+1)
		fillRand(r, s0)
		copy(s1, s0)
		SpGemmOneHot(s0, ldc, idx, d, w, ldw, m, d, h, bias)
		naiveSpGemmOneHot(s1, ldc, idx, d, w, ldw, m, d, h, bias)
		bitsEqual(t, "SpGemmOneHot", s0, s1)
	}

	// GatherSum against the plain loop, continuing from a bias term.
	{
		w := make([]float64, m*k+1)
		fillRand(r, w)
		idx := make([]int32, k)
		for i := range idx {
			idx[i] = int32(r.Intn(len(w)))
		}
		bias := r.NormFloat64()
		want := bias
		for _, ix := range idx {
			want += w[ix]
		}
		if got := GatherSum(bias, w, idx); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("GatherSum diverged: got %v want %v", got, want)
		}
	}

	// MatchCounts on small-domain codes so matches actually occur. Both
	// operands are rows of length k, so they share the ≥k stride lda.
	ca := make([]int32, m*lda+1)
	cb := make([]int32, n*lda+1)
	for i := range ca {
		ca[i] = int32(r.Intn(3))
	}
	for i := range cb {
		cb[i] = int32(r.Intn(3))
	}
	mc0 := make([]int32, m*ldc+1)
	mc1 := make([]int32, m*ldc+1)
	MatchCounts(mc0, ldc, ca, lda, cb, lda, m, n, k)
	naiveMatchCounts(mc1, ldc, ca, lda, cb, lda, m, n, k)
	for i := range mc1 {
		if mc0[i] != mc1[i] {
			t.Fatalf("MatchCounts: element %d diverged: got %d want %d", i, mc0[i], mc1[i])
		}
	}

	// MatchCountsU16 must reproduce the int32 counts exactly on packed rows
	// (contiguous rows, so both packs use stride k). Mix in values near the
	// 16-bit boundary so lane packing is exercised, not just tiny codes.
	da := make([]int32, m*k)
	db := make([]int32, n*k)
	for i := range da {
		da[i] = int32(r.Intn(4)) * 21845 // 0, 21845, 43690, 65535
	}
	for i := range db {
		db[i] = int32(r.Intn(4)) * 21845
	}
	pa := make([]uint64, m*PackedWords(k))
	pb := make([]uint64, n*PackedWords(k))
	if !PackU16Rows(pa, da, m, k) || !PackU16Rows(pb, db, n, k) {
		t.Fatal("PackU16Rows rejected in-range codes")
	}
	pc0 := make([]int32, m*ldc+1)
	pc1 := make([]int32, m*ldc+1)
	MatchCountsU16(pc0, ldc, pa, pb, m, n, k)
	naiveMatchCounts(pc1, ldc, da, k, db, k, m, n, k)
	for i := range pc1 {
		if pc0[i] != pc1[i] {
			t.Fatalf("MatchCountsU16: element %d diverged: got %d want %d", i, pc0[i], pc1[i])
		}
	}
}

func TestPackU16RowsRejectsWideCodes(t *testing.T) {
	dst := make([]uint64, PackedWords(3))
	if PackU16Rows(dst, []int32{1, 70000, 2}, 1, 3) {
		t.Fatal("expected rejection of a code above 65535")
	}
	if PackU16Rows(dst, []int32{1, -1, 2}, 1, 3) {
		t.Fatal("expected rejection of a negative code")
	}
}

// TestKernelsMatchNaive sweeps the shapes the learners actually use (odd
// remainders for every unroll width, degenerate empty extents, strides wider
// than the row) and requires bit-identical agreement with the references.
func TestKernelsMatchNaive(t *testing.T) {
	cases := []struct{ m, n, k, lda, ldb, ldc int }{
		{1, 1, 1, 0, 0, 0},
		{2, 4, 8, 0, 0, 0},
		{3, 5, 7, 0, 0, 0},
		{4, 4, 4, 9, 11, 13},
		{5, 3, 2, 2, 3, 3},
		{7, 17, 33, 40, 20, 19},
		{8, 16, 32, 0, 0, 0},
		{1, 4, 0, 1, 1, 4}, // k == 0: pure bias/accumulator pass-through
		{0, 3, 3, 3, 3, 3}, // m == 0: nothing to do
	}
	for i, tc := range cases {
		checkKernels(t, uint64(100+i), tc.m, tc.n, tc.k, tc.lda, tc.ldb, tc.ldc)
	}
}

// FuzzMatEquivalence fuzzes every mat kernel against its naive triple-loop
// reference, pinning bit-identical outputs across random shapes, strides,
// and value mixes — the CI fuzz smoke runs it alongside the codec fuzzers.
func FuzzMatEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(3), uint8(4), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(7), uint8(1), uint8(1), uint8(1), uint8(5), uint8(5), uint8(5))
	f.Add(uint64(9), uint8(16), uint8(8), uint8(4), uint8(2), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, seed uint64, m, n, k, sa, sb, sc uint8) {
		// Bound extents so a fuzz iteration stays tiny; strides are offsets
		// on top of the minimum legal leading dimension.
		mi, ni, ki := int(m%24), int(n%24), int(k%24)
		checkKernels(t, seed, mi, ni, ki, ki+int(sa%5), ni+int(sb%5), ni+int(sc%5))
	})
}
