package mat

import "math"

// AdamStep applies one bias-corrected Adam update in a single fused pass over
// contiguous parameter, gradient, and moment slabs:
//
//	gi   = g[i] + l2·w[i]
//	m[i] = beta1·m[i] + (1−beta1)·gi
//	v[i] = beta2·v[i] + (1−beta2)·gi²
//	w[i] −= lr · (m[i]/c1) / (√(v[i]/c2) + eps)
//
// where c1 = 1−beta1^t and c2 = 1−beta2^t are the caller's bias-correction
// terms for step t (hoisted: the kernel never calls math.Pow). The gradient
// slab is cleared as it is consumed, so the caller's next accumulation pass
// starts from zero without a separate memclr over the slab.
//
// All four slabs must have identical length. One parameter's update reads
// and writes only its own index, so the per-element arithmetic is exactly
// the scalar update loop's — fusing buys the single pass over contiguous
// memory, not a reassociation.
func AdamStep(w, g, m, v []float64, lr, l2, beta1, beta2, eps, c1, c2 float64) {
	_ = g[len(w)-1] // bounds-check hoist
	_ = m[len(w)-1]
	_ = v[len(w)-1]
	for i := range w {
		gi := g[i] + l2*w[i]
		g[i] = 0
		mi := beta1*m[i] + (1-beta1)*gi
		vi := beta2*v[i] + (1-beta2)*gi*gi
		m[i] = mi
		v[i] = vi
		w[i] -= lr * (mi / c1) / (math.Sqrt(vi/c2) + eps)
	}
}
