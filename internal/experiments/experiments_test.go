package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ml"
)

// tinyOptions shrinks everything for unit tests: smallest datasets, fast
// grids, few Monte-Carlo runs.
func tinyOptions(buf *bytes.Buffer) Options {
	return Options{
		Scale:  1024,
		Effort: core.EffortFast,
		SVMCap: 80,
		Runs:   2,
		Seed:   1,
		Out:    buf,
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	stats, err := Table1(tinyOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(stats))
	}
	out := buf.String()
	for _, name := range []string{"Expedia", "Movies", "Yelp", "Walmart", "LastFM", "Books", "Flights"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 output missing %s:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "N/A") {
		t.Fatal("open-domain FK must print N/A")
	}
}

func TestTable2CellsAndRendering(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	cells, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	// 7 datasets × (3 trees × 3 views + 1-NN × 2 views) = 7 × 11 = 77.
	if len(cells) != 77 {
		t.Fatalf("got %d cells, want 77", len(cells))
	}
	for _, c := range cells {
		if c.TestAcc < 0.2 || c.TestAcc > 1 || c.TrainAcc < 0.2 || c.TrainAcc > 1 {
			t.Fatalf("implausible cell %+v", c)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("table title missing")
	}
	// Table 5 renders train accuracy from the same cells.
	buf.Reset()
	if err := Table5(o, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("Table 5 title missing")
	}
}

func TestTreeNoJoinTracksJoinAllAcrossDatasets(t *testing.T) {
	// The headline reproduction check at unit scale: for the gini tree,
	// NoJoin accuracy stays within a few points of JoinAll on most
	// datasets (Yelp, with its 2.5 tuple ratio, is allowed to drop).
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Scale = 256 // a bit more data for stability
	cells, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	acc := map[string]map[ml.View]float64{}
	for _, c := range cells {
		if c.Model != "DecisionTree(gini)" {
			continue
		}
		if acc[c.Dataset] == nil {
			acc[c.Dataset] = map[ml.View]float64{}
		}
		acc[c.Dataset][c.View] = c.TestAcc
	}
	badGap := 0
	for ds, views := range acc {
		gap := views[ml.JoinAll] - views[ml.NoJoin]
		if ds == "Yelp" {
			continue // the known not-safe-to-avoid case
		}
		if gap > 0.05 {
			badGap++
			t.Logf("dataset %s: JoinAll %v vs NoJoin %v", ds, views[ml.JoinAll], views[ml.NoJoin])
		}
	}
	if badGap > 1 {
		t.Fatalf("%d datasets show NoJoin >> JoinAll gaps; the tree should be robust", badGap)
	}
}

func TestTable4Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table4(tinyOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Rows) < 4 {
			t.Fatalf("%s: sweep too small (%d rows)", r.Dataset, len(r.Rows))
		}
	}
	if !strings.Contains(buf.String(), "NoJoin") {
		t.Fatal("sweep output must mark the NoJoin row")
	}
}

func TestFigure2SinglePanel(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	panels, err := Figure2(o, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 1 || panels[0].Label != "C" {
		t.Fatalf("panel selection broken: %+v", panels)
	}
	if len(panels[0].Points) != 4 {
		t.Fatalf("dS sweep should have 4 points, got %d", len(panels[0].Points))
	}
	for _, pt := range panels[0].Points {
		ja := pt.Views[ml.JoinAll].AvgTestError
		nj := pt.Views[ml.NoJoin].AvgTestError
		if ja < 0 || ja > 1 || nj < 0 || nj > 1 {
			t.Fatalf("implausible errors %v %v", ja, nj)
		}
		// Central claim at tuple ratio 25: gap small.
		if math.Abs(ja-nj) > 0.06 {
			t.Fatalf("tree NoJoin %v deviates from JoinAll %v at healthy tuple ratio", nj, ja)
		}
	}
}

func TestFigure10Compression(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Scale = 256
	panels, err := Figure10(o, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("want Flights and Yelp panels, got %d", len(panels))
	}
	for _, p := range panels {
		if len(p.Points) == 0 {
			t.Fatalf("%s: no compression points", p.Dataset)
		}
		for _, pt := range p.Points {
			if pt.RandomAcc < 0.3 || pt.SortAcc < 0.3 {
				t.Fatalf("%s budget %d: implausible accuracies %+v", p.Dataset, pt.Budget, pt)
			}
		}
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Fatal("figure title missing")
	}
}

func TestFigure11Smoothing(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	panels, err := Figure11(o, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("want random and xr panels, got %d", len(panels))
	}
	for _, p := range panels {
		if p.Strategy != "random" && p.Strategy != "xr" {
			t.Fatalf("unknown strategy %q", p.Strategy)
		}
		if len(p.Points) != 2 {
			t.Fatalf("want 2 gamma points, got %d", len(p.Points))
		}
		// Errors grow (or stay flat) as gamma rises for NoJoin.
		if p.Points[1].Errors[ml.NoJoin]+0.15 < p.Points[0].Errors[ml.NoJoin] {
			t.Fatalf("%s: error should not collapse as gamma rises: %+v", p.Strategy, p.Points)
		}
	}
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Fatal("figure title missing")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 64 || o.SVMCap != 400 || o.Runs != 10 || o.Out == nil {
		t.Fatalf("defaults wrong: %+v", o)
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("Yelp") != hashName("Yelp") {
		t.Fatal("hashName must be deterministic")
	}
	if hashName("Yelp") == hashName("Books") {
		t.Fatal("hashName should distinguish dataset names")
	}
}

func TestDatasetNamesOrder(t *testing.T) {
	names := DatasetNames()
	if len(names) != 7 || names[0] != "Expedia" || names[6] != "Flights" {
		t.Fatalf("DatasetNames = %v", names)
	}
}

func TestShortModel(t *testing.T) {
	if shortModel("DecisionTree(gain-ratio)") != "DT(gr)" {
		t.Fatalf("shortModel = %q", shortModel("DecisionTree(gain-ratio)"))
	}
	if shortModel("LogisticRegression(L1)") != "LR(L1)" {
		t.Fatal("LR abbreviation wrong")
	}
}

func TestPartialJoinTradeoff(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	curve, err := PartialJoinTradeoff(o, "Yelp")
	if err != nil {
		t.Fatal(err)
	}
	// Yelp's widest dimension is Businesses (32 foreign features) → 33 pts.
	if curve.Dimension != "Businesses" {
		t.Fatalf("expected widest dimension Businesses, got %q", curve.Dimension)
	}
	if len(curve.Points) != 33 {
		t.Fatalf("got %d points, want 33", len(curve.Points))
	}
	if !strings.Contains(buf.String(), "Partial-join trade-off") {
		t.Fatal("output title missing")
	}
	if _, err := PartialJoinTradeoff(o, "nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestFigure3And4(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	panels, err := Figure3And4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("want 1-NN and RBF panels, got %d", len(panels))
	}
	// The key shape: at the largest nR (tuple ratio 1), NoJoin error
	// exceeds JoinAll error for the unstable 1-NN.
	knnPanel := panels[0]
	last := knnPanel.Points[len(knnPanel.Points)-1]
	if last.Views[ml.NoJoin].AvgTestError <= last.Views[ml.JoinAll].AvgTestError {
		t.Fatalf("1-NN NoJoin must deviate at tuple ratio 1: %v vs %v",
			last.Views[ml.NoJoin].AvgTestError, last.Views[ml.JoinAll].AvgTestError)
	}
}

func TestFigure5(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	panels, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("want panels A-D, got %d", len(panels))
	}
	// Tree gap must stay small at every skew level (panels A and C).
	for _, p := range panels[:1] {
		for _, pt := range p.Points {
			gap := pt.Views[ml.NoJoin].AvgTestError - pt.Views[ml.JoinAll].AvgTestError
			if gap > 0.05 || gap < -0.05 {
				t.Fatalf("panel %s: skew widened the tree gap to %v", p.Label, gap)
			}
		}
	}
}

func TestFigure6(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	panels, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("want panels A-D, got %d", len(panels))
	}
	// Panel A: error falls as nS rises.
	a := panels[0]
	first := a.Points[0].Views[ml.JoinAll].AvgTestError
	lastPt := a.Points[len(a.Points)-1].Views[ml.JoinAll].AvgTestError
	if lastPt >= first {
		t.Fatalf("XSXR error should fall with nS: %v -> %v", first, lastPt)
	}
}

func TestFigures7to9(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	panels, err := Figures7to9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("want 3 figures × 2 ratios, got %d", len(panels))
	}
	// Figure 9 at nR=200 (last panel): 1-NN NoJoin deviates.
	last := panels[5]
	if last.Figure != "9" {
		t.Fatalf("last panel should be figure 9, got %s", last.Figure)
	}
	pt := last.Points[0]
	if pt.Views[ml.NoJoin].AvgTestError <= pt.Views[ml.JoinAll].AvgTestError {
		t.Fatalf("1-NN RepOneXr at ratio 5 must deviate: %v vs %v",
			pt.Views[ml.NoJoin].AvgTestError, pt.Views[ml.JoinAll].AvgTestError)
	}
}

func TestLinearBaselineContrast(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOptions(&buf)
	o.Runs = 3
	panels, err := LinearBaseline(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("want LR and tree panels, got %d", len(panels))
	}
	// At the lowest tuple ratio (nR=330, ratio ≈ 3) the LR NoJoin gap must
	// exceed the tree's — the paper's central contrast with prior work.
	lr := panels[0].Points[len(panels[0].Points)-1]
	tr := panels[1].Points[len(panels[1].Points)-1]
	lrGap := lr.Views[ml.NoJoin].AvgTestError - lr.Views[ml.JoinAll].AvgTestError
	trGap := tr.Views[ml.NoJoin].AvgTestError - tr.Views[ml.JoinAll].AvgTestError
	if lrGap <= trGap {
		t.Fatalf("LR gap (%v) must exceed tree gap (%v) at tuple ratio 3", lrGap, trGap)
	}
	if !strings.Contains(buf.String(), "Linear-baseline contrast") {
		t.Fatal("output title missing")
	}
}
