package experiments

import (
	"fmt"

	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/texttable"
)

// lrLearner returns the logistic-regression simulation learner with a small
// lambda grid tuned on the validation split.
func lrLearner() sim.Learner {
	return sim.Learner{
		Name: "LogisticRegression(L1)",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			grid := ml.NewGrid().Axis("lambda", 0, 1e-3, 1e-2)
			res, err := ml.GridSearch(grid, func(p ml.GridPoint) (ml.Classifier, error) {
				return linear.NewLogReg(linear.LogRegConfig{Lambda: p["lambda"], Seed: seed}), nil
			}, train, val)
			if err != nil {
				return nil, err
			}
			return res.Best, nil
		},
	}
}

// LinearBaseline reruns the Figure 2(B) n_R sweep with L1 logistic
// regression — the prior work's ([26], SIGMOD'16) linear-model behaviour
// that this paper contrasts against: NoJoin error "shoots up" as the tuple
// ratio falls below ≈20, where the decision tree stays flat. The function
// renders both series side by side so the crossover is visible in one
// table.
func LinearBaseline(o Options) ([]Panel, error) {
	o = o.withDefaults()
	params := []float64{2, 8, 32, 64, 128, 330}
	mk := func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, int(x), defDS, defDR, defP, 2, sim.Skew{}, o.Seed+51)
	}
	var out []Panel
	for _, l := range []sim.Learner{lrLearner(), treeLearner(0)} {
		pts, err := sweep(o, params, mk, l)
		if err != nil {
			return nil, err
		}
		p := Panel{Figure: "2B-linear-contrast", Label: l.Name, XName: "nR", Learner: l.Name, Points: pts}
		out = append(out, p)
	}

	fmt.Fprintf(o.Out, "Linear-baseline contrast (prior work vs this paper), OneXr nR sweep, runs=%d\n", o.Runs)
	tab := texttable.New("nR", "tuple ratio",
		"LR JoinAll", "LR NoJoin", "LR gap",
		"Tree JoinAll", "Tree NoJoin", "Tree gap")
	for i, x := range params {
		lr := out[0].Points[i]
		tr := out[1].Points[i]
		lrGap := lr.Views[ml.NoJoin].AvgTestError - lr.Views[ml.JoinAll].AvgTestError
		trGap := tr.Views[ml.NoJoin].AvgTestError - tr.Views[ml.JoinAll].AvgTestError
		tab.Row(int(x), texttable.F2(float64(defNS)/x),
			texttable.F(lr.Views[ml.JoinAll].AvgTestError),
			texttable.F(lr.Views[ml.NoJoin].AvgTestError),
			texttable.F(lrGap),
			texttable.F(tr.Views[ml.JoinAll].AvgTestError),
			texttable.F(tr.Views[ml.NoJoin].AvgTestError),
			texttable.F(trGap))
	}
	if err := tab.Render(o.Out); err != nil {
		return nil, err
	}
	return out, nil
}
