package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fk"
	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/texttable"
	"repro/internal/tree"
)

// CompressionPoint is one budget value of a Figure 10 panel: the NoJoin
// gini-tree accuracy with the FK domain compressed to l buckets, under the
// random-hash and sort-based mappings.
type CompressionPoint struct {
	Budget    int
	RandomAcc float64
	SortAcc   float64
}

// CompressionPanel is one dataset's Figure 10 panel.
type CompressionPanel struct {
	Dataset string
	FKName  string
	Points  []CompressionPoint
}

// Figure10 reproduces the FK domain-compression study on Flights and Yelp:
// fit the compressor on the training split of the NoJoin view (targeting
// the largest-domain usable FK), compress the whole dataset, tune a gini
// tree, and report holdout accuracy per budget. Random hashing is averaged
// over five draws as in the paper.
func Figure10(o Options, budgets []int) ([]CompressionPanel, error) {
	o = o.withDefaults()
	if len(budgets) == 0 {
		budgets = []int{2, 5, 10, 25, 50}
	}
	var out []CompressionPanel
	for _, name := range []string{"Flights", "Yelp"} {
		env, err := envFor(name, o)
		if err != nil {
			return nil, err
		}
		train, val, test, err := env.ViewSplits(ml.NoJoin, nil)
		if err != nil {
			return nil, err
		}
		fkCol := widestFK(train)
		if fkCol < 0 {
			return nil, fmt.Errorf("experiments: %s has no FK feature to compress", name)
		}
		panel := CompressionPanel{Dataset: name, FKName: train.Features[fkCol].Name}
		m := train.Features[fkCol].Cardinality
		for _, l := range budgets {
			if l >= m {
				continue
			}
			// Random hashing: average 5 seeds.
			randSum := 0.0
			const hashRuns = 5
			for h := 0; h < hashRuns; h++ {
				hash, err := fk.NewRandomHash(m, l, rng.New(o.Seed+uint64(100*h+l)))
				if err != nil {
					return nil, err
				}
				acc, err := compressedTreeAccuracy(train, val, test, fkCol, hash, o)
				if err != nil {
					return nil, err
				}
				randSum += acc
			}
			sort, err := fk.NewSortBased(train, fkCol, l, rng.New(o.Seed+uint64(l)))
			if err != nil {
				return nil, err
			}
			sortAcc, err := compressedTreeAccuracy(train, val, test, fkCol, sort, o)
			if err != nil {
				return nil, err
			}
			panel.Points = append(panel.Points, CompressionPoint{
				Budget:    l,
				RandomAcc: randSum / hashRuns,
				SortAcc:   sortAcc,
			})
		}
		out = append(out, panel)

		fmt.Fprintf(o.Out, "Figure 10 (%s): FK domain compression of %s (|D|=%d), NoJoin gini tree\n",
			name, panel.FKName, m)
		tab := texttable.New("budget", "Random", "Sort-based")
		for _, p := range panel.Points {
			tab.Row(p.Budget, texttable.F(p.RandomAcc), texttable.F(p.SortAcc))
		}
		if err := tab.Render(o.Out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// widestFK returns the FK feature with the largest usable domain.
func widestFK(ds *ml.Dataset) int {
	best, bestCard := -1, 0
	for j, f := range ds.Features {
		if f.IsFK && f.Cardinality > bestCard {
			best, bestCard = j, f.Cardinality
		}
	}
	return best
}

// compressedTreeAccuracy applies one compressor to all three splits, tunes a
// gini tree on train/val, and returns holdout accuracy.
func compressedTreeAccuracy(train, val, test *ml.Dataset, fkCol int, c fk.Compressor, o Options) (float64, error) {
	ctrain, err := fk.CompressFeature(train, fkCol, c)
	if err != nil {
		return 0, err
	}
	cval, err := fk.CompressFeature(val, fkCol, c)
	if err != nil {
		return 0, err
	}
	ctest, err := fk.CompressFeature(test, fkCol, c)
	if err != nil {
		return 0, err
	}
	spec := core.TreeSpec(tree.Gini, o.Effort)
	cls, _, _, err := spec.Train(ctrain, cval, o.Seed+21)
	if err != nil {
		return 0, err
	}
	return ml.Accuracy(cls, ctest), nil
}

// SmoothingPoint is one γ value of Figure 11: the average OneXr test error
// when a fraction γ of the FK domain is unseen in training, for JoinAll /
// NoJoin / NoFK under the given smoother.
type SmoothingPoint struct {
	Gamma  float64
	Errors [3]float64 // indexed by ml.View
}

// SmoothingPanel is one smoothing strategy's Figure 11 panel.
type SmoothingPanel struct {
	Strategy string // "random" or "xr"
	Points   []SmoothingPoint
}

// Figure11 reproduces the FK smoothing study on OneXr: γ sweeps the
// fraction of FK values withheld from training; unseen test FKs are
// remapped by the smoother. Panel A uses random reassignment, panel B the
// X_R-based minimum-l0 reassignment (which needs the dimension table as
// side information even under NoJoin).
func Figure11(o Options, gammas []float64) ([]SmoothingPanel, error) {
	o = o.withDefaults()
	if len(gammas) == 0 {
		gammas = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	var out []SmoothingPanel
	for _, strategy := range []string{"random", "xr"} {
		panel := SmoothingPanel{Strategy: strategy}
		for _, g := range gammas {
			errs, err := smoothingErrors(o, g, strategy)
			if err != nil {
				return nil, err
			}
			panel.Points = append(panel.Points, SmoothingPoint{Gamma: g, Errors: errs})
		}
		out = append(out, panel)

		fmt.Fprintf(o.Out, "Figure 11 (%s smoothing): OneXr avg test error vs unseen-FK fraction γ\n", strategy)
		tab := texttable.New("gamma", "JoinAll", "NoJoin", "NoFK")
		for _, p := range panel.Points {
			tab.Row(p.Gamma,
				texttable.F(p.Errors[ml.JoinAll]),
				texttable.F(p.Errors[ml.NoJoin]),
				texttable.F(p.Errors[ml.NoFK]))
		}
		if err := tab.Render(o.Out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// smoothingErrors runs the Monte-Carlo smoothing experiment at one γ.
func smoothingErrors(o Options, gamma float64, strategy string) ([3]float64, error) {
	var sums [3]float64
	sc, err := sim.NewOneXr(defNS, defNR, defDS, defDR, defP, 2, sim.Skew{}, o.Seed+23)
	if err != nil {
		return sums, err
	}
	root := rng.New(o.Seed + 29)
	counts := 0
	for run := 0; run < o.Runs; run++ {
		r := root.Split()
		trial, err := sc.Sample(r)
		if err != nil {
			return sums, err
		}
		// Withhold a γ-fraction of FK values from training by filtering
		// training rows whose FK falls into the withheld set. FK is the
		// last NoJoin feature.
		withheld := withheldSet(defNR, gamma, r)
		for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
			train := trial.Train[v]
			fkIdx := fkIndex(train)
			if fkIdx >= 0 {
				train = filterRows(train, fkIdx, withheld)
			}
			var smoother tree.Smoother
			if fkIdx >= 0 {
				switch strategy {
				case "xr":
					smoother, err = fk.NewXRSmoother(train, fkIdx, sc.Dimension(), r.Uint64())
					if err != nil {
						return sums, err
					}
				default:
					smoother, err = fk.NewRandomSmoother(train, r.Uint64())
					if err != nil {
						return sums, err
					}
				}
			}
			tr := tree.New(tree.Config{
				Criterion: tree.Gini, MinSplit: 10, CP: 1e-3,
				Unseen: tree.UnseenSmooth, Smoother: smoother,
			})
			if err := tr.Fit(train); err != nil {
				return sums, err
			}
			sums[v] += ml.Error(tr, trial.Test[v])
		}
		counts++
	}
	for v := range sums {
		sums[v] /= float64(counts)
	}
	return sums, nil
}

// withheldSet draws ⌊γ·nR⌋ FK values to withhold.
func withheldSet(nR int, gamma float64, r *rng.RNG) map[int32]bool {
	k := int(gamma * float64(nR))
	if k >= nR {
		k = nR - 1 // always keep at least one FK value trainable
	}
	perm := r.Perm(nR)
	out := make(map[int32]bool, k)
	for _, v := range perm[:k] {
		out[int32(v)] = true
	}
	return out
}

// fkIndex finds the FK feature of a dataset view (-1 if absent, e.g. NoFK).
func fkIndex(ds *ml.Dataset) int {
	for j, f := range ds.Features {
		if f.IsFK {
			return j
		}
	}
	return -1
}

// filterRows drops training rows whose FK value is withheld.
func filterRows(ds *ml.Dataset, fkIdx int, withheld map[int32]bool) *ml.Dataset {
	var keep []int
	for i := 0; i < ds.NumExamples(); i++ {
		if !withheld[ds.At(i, fkIdx)] {
			keep = append(keep, i)
		}
	}
	return ds.Subset(keep)
}
