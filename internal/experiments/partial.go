package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/texttable"
	"repro/internal/tree"
)

// PartialCurve is the §5.2 trade-off curve for one dataset/dimension: test
// accuracy as foreign features of the dimension are added back one at a
// time, from NoJoin (0 kept) to a full single-table join (all kept).
type PartialCurve struct {
	Dataset   string
	Dimension string
	Points    []core.PartialPoint
}

// PartialJoinTradeoff explores the paper's open question from §5.2 ("the
// axioms of FDs imply that foreign features can be divided into arbitrary
// subsets before being avoided, which opens up a new trade-off space") on
// the named dataset's widest dimension table, with a gini tree.
func PartialJoinTradeoff(o Options, datasetName string) (PartialCurve, error) {
	o = o.withDefaults()
	env, err := envFor(datasetName, o)
	if err != nil {
		return PartialCurve{}, err
	}
	// Pick the dimension with the most foreign features.
	dims := env.Star.DimensionNames()
	best, bestCount := "", -1
	for _, d := range dims {
		dim := env.Star.Dimensions[d]
		n := len(dim.Schema().FeatureNames())
		if n > bestCount {
			best, bestCount = d, n
		}
	}
	if best == "" {
		return PartialCurve{}, fmt.Errorf("experiments: %s has no dimension tables", datasetName)
	}
	pts, err := core.PartialJoinSweep(env, best, core.TreeSpec(tree.Gini, o.Effort), o.Seed+43)
	if err != nil {
		return PartialCurve{}, err
	}
	curve := PartialCurve{Dataset: datasetName, Dimension: best, Points: pts}

	fmt.Fprintf(o.Out, "Partial-join trade-off (§5.2 extension): %s / %s, gini tree\n",
		datasetName, best)
	tab := texttable.New("foreign features kept", "TestAcc")
	for _, p := range pts {
		tab.Row(p.Kept, texttable.F(p.TestAcc))
	}
	if err := tab.Render(o.Out); err != nil {
		return PartialCurve{}, err
	}
	return curve, nil
}
