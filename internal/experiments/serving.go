package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/relational"
	"repro/internal/serve"
	"repro/internal/svm"
	"repro/internal/texttable"
)

// ServingRow is one model's serving-time comparison: nanoseconds per request
// on the factorized path (per-dimension partial-score lookups) vs the joined
// path (per-request gather through the join view), over the same request
// stream.
type ServingRow struct {
	Model        string
	Factorized   bool
	FactorizedNs float64
	JoinedNs     float64
	TestAcc      float64
	ScoresAgree  bool
}

// Speedup returns joined ns / factorized ns (0 when no factorized form).
func (r ServingRow) Speedup() float64 {
	if !r.Factorized || r.FactorizedNs <= 0 {
		return 0
	}
	return r.JoinedNs / r.FactorizedNs
}

// ServingStudy measures the serving subsystem end to end on one generated
// dataset: train each linear-family spec through the full pipeline
// (tune → fit → artifact), bind a serving engine, replay the fact table as
// request traffic, and time the factorized path against the per-request
// join. It also cross-checks that the two paths score every request
// bit-identically — the serving analogue of the study's accuracy-parity
// tables.
func ServingStudy(o Options) ([]ServingRow, error) {
	o = o.withDefaults()
	env, err := envFor("Movies", o)
	if err != nil {
		return nil, err
	}
	specs := []core.Spec{
		core.NaiveBayesBFSSpec(),
		core.LogRegSpec(o.Effort),
		core.SVMSpec(svm.Linear, o.Effort, o.SVMCap),
	}
	var rows []ServingRow
	for _, spec := range specs {
		m, res, err := core.BuildArtifact(env, spec, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		engine, err := serve.NewEngine(m, env.Star)
		if err != nil {
			return nil, err
		}
		row := ServingRow{Model: spec.Name, Factorized: engine.Factorized(), TestAcc: res.TestAcc, ScoresAgree: true}

		fact := env.Star.Fact
		n := min(fact.NumRows(), 2048)
		reqs := make([][]relational.Value, n)
		for i := range reqs {
			reqs[i] = engine.RequestFromFactRow(make([]relational.Value, len(engine.InputFeatures())), fact.Row(i))
		}
		for _, req := range reqs {
			pj, err := engine.PredictJoined(req)
			if err != nil {
				return nil, err
			}
			if engine.Factorized() {
				pf, err := engine.PredictFactorized(req)
				if err != nil {
					return nil, err
				}
				if math.Float64bits(pf.Score) != math.Float64bits(pj.Score) || pf.Class != pj.Class {
					row.ScoresAgree = false
				}
			}
		}

		const passes = 8
		if engine.Factorized() {
			start := time.Now()
			for p := 0; p < passes; p++ {
				for _, req := range reqs {
					if _, err := engine.PredictFactorized(req); err != nil {
						return nil, err
					}
				}
			}
			row.FactorizedNs = float64(time.Since(start).Nanoseconds()) / float64(passes*n)
		}
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, req := range reqs {
				if _, err := engine.PredictJoined(req); err != nil {
					return nil, err
				}
			}
		}
		row.JoinedNs = float64(time.Since(start).Nanoseconds()) / float64(passes*n)
		rows = append(rows, row)
	}

	tbl := texttable.New("model", "test acc", "factorized ns/req", "joined ns/req", "speedup", "bit-identical")
	for _, r := range rows {
		fns, sp := "n/a", "n/a"
		if r.Factorized {
			fns = fmt.Sprintf("%.0f", r.FactorizedNs)
			sp = fmt.Sprintf("%.1fx", r.Speedup())
		}
		tbl.Row(r.Model, texttable.F(r.TestAcc), fns, fmt.Sprintf("%.0f", r.JoinedNs), sp, fmt.Sprintf("%v", r.ScoresAgree))
	}
	fmt.Fprintln(o.Out, "Serving study (Movies): factorized vs per-request join, fact-table replay")
	if err := tbl.Render(o.Out); err != nil {
		return nil, err
	}
	return rows, nil
}
