// Package experiments regenerates every table and figure of the paper's
// evaluation: Tables 1–6 (dataset statistics, holdout and training
// accuracies, the robustness sweep) and Figures 1–11 (runtimes, the
// simulation study, FK compression and smoothing). The cmd/ binaries and
// the repository's benchmarks are thin wrappers over this package, so the
// same code path backs both interactive runs and `go test -bench`.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/svm"
	"repro/internal/texttable"
	"repro/internal/tree"
)

// Options control the scale/effort of every experiment. Defaults reproduce
// the paper's shapes in minutes on one core; the paper-exact settings
// (Scale=1, EffortFull, Runs=100) are available but take much longer.
type Options struct {
	// Scale divides every dataset cardinality (default 64).
	Scale int
	// Effort selects reduced or paper-exact hyper-parameter grids.
	Effort core.Effort
	// SVMCap bounds SMO training-set size (default 400; 0 = unbounded).
	SVMCap int
	// Runs is the Monte-Carlo repetition count for simulations (default 10;
	// the paper uses 100).
	Runs int
	// Seed fixes all randomness.
	Seed uint64
	// Engine selects the physical storage the experiment Envs read through
	// (core.EngineColumnar, the default since every learner trains
	// column-at-a-time, or core.EngineRow for the zero-copy join view).
	// Results are engine-independent; runtime and memory layout are not.
	Engine core.Engine
	// Out receives the rendered tables (default discards).
	Out io.Writer
}

// withDefaults normalizes an Options value.
func (o Options) withDefaults() Options {
	if o.Scale < 1 {
		o.Scale = 64
	}
	if o.SVMCap == 0 {
		o.SVMCap = 400
	}
	if o.Runs < 1 {
		o.Runs = 10
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// envFor generates and prepares one dataset.
func envFor(name string, o Options) (*core.Env, error) {
	spec, err := dataset.SpecByName(name)
	if err != nil {
		return nil, err
	}
	ss, err := dataset.Generate(spec, o.Scale, o.Seed+hashName(name))
	if err != nil {
		return nil, err
	}
	return core.NewEnvEngine(ss, o.Seed^0x5ca1ab1e, o.Engine)
}

// hashName derives a stable per-dataset seed offset.
func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// DatasetNames lists the seven datasets in Table 1 order.
func DatasetNames() []string {
	names := make([]string, 0, 7)
	for _, s := range dataset.Specs() {
		names = append(names, s.Name)
	}
	return names
}

// Table1 prints the dataset statistics table and returns the stats.
func Table1(o Options) ([]dataset.Stats, error) {
	o = o.withDefaults()
	tab := texttable.New("Dataset", "(nS, dS)", "q", "(nR, dR)", "TupleRatio")
	var all []dataset.Stats
	for _, spec := range dataset.Specs() {
		ss, err := dataset.Generate(spec, o.Scale, o.Seed+hashName(spec.Name))
		if err != nil {
			return nil, err
		}
		st := dataset.Describe(spec.Name, ss)
		all = append(all, st)
		for i, d := range st.Dims {
			name, nsds, q := "", "", ""
			if i == 0 {
				name = st.Name
				nsds = fmt.Sprintf("(%d, %d)", st.NS, st.DS)
				q = fmt.Sprintf("%d", st.Q)
			}
			ratio := texttable.F2(d.TupleRatio)
			if d.Open {
				ratio = "N/A"
			}
			tab.Row(name, nsds, q, fmt.Sprintf("(%d, %d)", d.NR, d.DR), ratio)
		}
	}
	fmt.Fprintln(o.Out, "Table 1: dataset statistics (scaled by 1/"+fmt.Sprint(o.Scale)+")")
	if err := tab.Render(o.Out); err != nil {
		return nil, err
	}
	return all, nil
}

// AccuracyCell is one (dataset, model, view) accuracy pair.
type AccuracyCell struct {
	Dataset  string
	Model    string
	View     ml.View
	TestAcc  float64
	TrainAcc float64
}

// runRoster evaluates the given specs on every dataset under the given
// views, producing cells for Tables 2/3 (test) and 5/6 (train).
func runRoster(o Options, specs []core.Spec, views []ml.View) ([]AccuracyCell, error) {
	var cells []AccuracyCell
	for _, name := range DatasetNames() {
		env, err := envFor(name, o)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			for _, v := range views {
				res, err := core.Run(env, v, spec, o.Seed+7)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s/%v: %w", name, spec.Name, v, err)
				}
				cells = append(cells, AccuracyCell{
					Dataset: name, Model: spec.Name, View: v,
					TestAcc: res.TestAcc, TrainAcc: res.TrainAcc,
				})
			}
		}
	}
	return cells, nil
}

// renderAccuracy prints one Tables-2/3-style block: rows = datasets,
// columns = model × view.
func renderAccuracy(o Options, title string, cells []AccuracyCell, train bool) error {
	// Column order: preserve first-appearance order of (model, view).
	type colKey struct {
		model string
		view  ml.View
	}
	var cols []colKey
	seen := map[colKey]bool{}
	values := map[string]map[colKey]float64{}
	var datasets []string
	for _, c := range cells {
		k := colKey{c.Model, c.View}
		if !seen[k] {
			seen[k] = true
			cols = append(cols, k)
		}
		if values[c.Dataset] == nil {
			values[c.Dataset] = map[colKey]float64{}
			datasets = append(datasets, c.Dataset)
		}
		if train {
			values[c.Dataset][k] = c.TrainAcc
		} else {
			values[c.Dataset][k] = c.TestAcc
		}
	}
	header := []string{"Dataset"}
	for _, k := range cols {
		header = append(header, shortModel(k.model)+"/"+k.view.String())
	}
	tab := texttable.New(header...)
	for _, d := range datasets {
		row := []interface{}{d}
		for _, k := range cols {
			row = append(row, texttable.F(values[d][k]))
		}
		tab.Row(row...)
	}
	fmt.Fprintln(o.Out, title)
	return tab.Render(o.Out)
}

// shortModel compresses model names for column headers.
func shortModel(name string) string {
	r := strings.NewReplacer(
		"DecisionTree", "DT",
		"LogisticRegression", "LR",
		"NaiveBayes", "NB",
		"information", "info",
		"gain-ratio", "gr",
		"quadratic", "quad",
	)
	return r.Replace(name)
}

// Table2 reproduces the decision trees + 1-NN holdout accuracy table.
// Returned cells also carry training accuracy (Table 5).
func Table2(o Options) ([]AccuracyCell, error) {
	o = o.withDefaults()
	specs := []core.Spec{
		core.TreeSpec(tree.Gini, o.Effort),
		core.TreeSpec(tree.InfoGain, o.Effort),
		core.TreeSpec(tree.GainRatio, o.Effort),
	}
	cells, err := runRoster(o, specs, []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK})
	if err != nil {
		return nil, err
	}
	knnCells, err := runRoster(o, []core.Spec{core.OneNNSpec()}, []ml.View{ml.JoinAll, ml.NoJoin})
	if err != nil {
		return nil, err
	}
	cells = append(cells, knnCells...)
	if err := renderAccuracy(o, "Table 2: holdout test accuracy (trees + 1-NN)", cells, false); err != nil {
		return nil, err
	}
	return cells, nil
}

// Table3 reproduces the SVM/ANN/NB/LR holdout accuracy table.
func Table3(o Options) ([]AccuracyCell, error) {
	o = o.withDefaults()
	specs := []core.Spec{
		core.SVMSpec(svm.Linear, o.Effort, o.SVMCap),
		core.SVMSpec(svm.Quadratic, o.Effort, o.SVMCap),
		core.SVMSpec(svm.RBF, o.Effort, o.SVMCap),
		core.ANNSpec(o.Effort),
		core.NaiveBayesBFSSpec(),
		core.LogRegSpec(o.Effort),
	}
	cells, err := runRoster(o, specs, []ml.View{ml.JoinAll, ml.NoJoin})
	if err != nil {
		return nil, err
	}
	if err := renderAccuracy(o, "Table 3: holdout test accuracy (SVMs, ANN, NB, LR)", cells, false); err != nil {
		return nil, err
	}
	return cells, nil
}

// Table4Row is one dataset's robustness sweep.
type Table4Row struct {
	Dataset string
	Rows    []core.RobustnessRow
}

// Table4 reproduces the robustness study: drop dimension tables one (and,
// for Flights, two) at a time with the gini decision tree.
func Table4(o Options) ([]Table4Row, error) {
	o = o.withDefaults()
	spec := core.TreeSpec(tree.Gini, o.Effort)
	var out []Table4Row
	tab := texttable.New("Dataset", "Omitted", "TestAcc")
	for _, name := range DatasetNames() {
		env, err := envFor(name, o)
		if err != nil {
			return nil, err
		}
		rows, err := core.RobustnessSweep(env, spec, o.Seed+11)
		if err != nil {
			return nil, err
		}
		out = append(out, Table4Row{Dataset: name, Rows: rows})
		for _, r := range rows {
			omitted := "(none: JoinAll)"
			if len(r.Omitted) == len(env.Star.DimensionNames()) {
				omitted = "(all: NoJoin)"
			} else if len(r.Omitted) > 0 {
				omitted = strings.Join(r.Omitted, "+")
			}
			tab.Row(name, omitted, texttable.F(r.TestAcc))
		}
	}
	fmt.Fprintln(o.Out, "Table 4: robustness to discarding dimension tables (gini tree)")
	if err := tab.Render(o.Out); err != nil {
		return nil, err
	}
	return out, nil
}

// Table5 renders the training-accuracy companion of Table 2 from its cells.
func Table5(o Options, cells []AccuracyCell) error {
	o = o.withDefaults()
	return renderAccuracy(o, "Table 5: training accuracy (trees + 1-NN)", cells, true)
}

// Table6 renders the training-accuracy companion of Table 3 from its cells.
func Table6(o Options, cells []AccuracyCell) error {
	o = o.withDefaults()
	return renderAccuracy(o, "Table 6: training accuracy (SVMs, ANN, NB, LR)", cells, true)
}

// Figure1Row is one (model, dataset) runtime comparison.
type Figure1Row struct {
	Dataset string
	core.RuntimeComparison
}

// Figure1 reproduces the end-to-end runtime study for the six model
// families the paper plots: gini tree, 1-NN, RBF-SVM, ANN, NB-BFS, LR-L1.
func Figure1(o Options) ([]Figure1Row, error) {
	o = o.withDefaults()
	specs := []core.Spec{
		core.TreeSpec(tree.Gini, o.Effort),
		core.OneNNSpec(),
		core.SVMSpec(svm.RBF, o.Effort, o.SVMCap),
		core.ANNSpec(o.Effort),
		core.NaiveBayesBFSSpec(),
		core.LogRegSpec(o.Effort),
	}
	var rows []Figure1Row
	tab := texttable.New("Model", "Dataset", "JoinAll", "NoJoin", "Speedup")
	for _, spec := range specs {
		for _, name := range DatasetNames() {
			env, err := envFor(name, o)
			if err != nil {
				return nil, err
			}
			rc, err := core.RuntimeStudy(env, spec, o.Seed+13)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure1Row{Dataset: name, RuntimeComparison: rc})
			tab.Row(spec.Name, name, rc.JoinAll, rc.NoJoin, texttable.F2(rc.Speedup())+"x")
		}
	}
	fmt.Fprintln(o.Out, "Figure 1: end-to-end runtimes (tune+train+test), JoinAll vs NoJoin")
	if err := tab.Render(o.Out); err != nil {
		return nil, err
	}
	return rows, nil
}
