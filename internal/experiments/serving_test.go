package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestServingStudy runs the serving comparison at unit-test scale: every
// linear-family model must produce a factorized engine whose scores agree
// with the joined path (ServingStudy errors internally otherwise), and the
// rendered table must reach the writer.
func TestServingStudy(t *testing.T) {
	var buf bytes.Buffer
	rows, err := ServingStudy(tinyOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Factorized {
			t.Fatalf("%s did not serve factorized", r.Model)
		}
		if !r.ScoresAgree {
			t.Fatalf("%s scores diverged between paths", r.Model)
		}
		if r.JoinedNs <= 0 || r.FactorizedNs <= 0 {
			t.Fatalf("%s has empty timings: %+v", r.Model, r)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Serving study") || !strings.Contains(out, "NaiveBayes(BFS)") {
		t.Fatalf("rendered output incomplete:\n%s", out)
	}
}
