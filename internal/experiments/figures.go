package experiments

import (
	"fmt"

	"repro/internal/knn"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/svm"
	"repro/internal/texttable"
	"repro/internal/tree"
)

// Simulation defaults from the paper's §4: (nS, nR, dS, dR, p) =
// (1000, 40, 4, 4, 0.1). SimScale (from Options.Scale relative to the
// default 64) is not applied to simulations — they are already laptop-sized
// — but Runs is.
const (
	defNS = 1000
	defNR = 40
	defDS = 4
	defDR = 4
	defP  = 0.1
)

// treeLearner returns the gini-tree simulation learner with a small tuned
// grid (minsplit × cp), matching the simulation study's use of the tree.
func treeLearner(effort int) sim.Learner {
	return sim.Learner{
		Name: "DecisionTree(gini)",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			grid := ml.NewGrid().Axis("minsplit", 1, 10, 100).Axis("cp", 1e-3, 0.01, 0)
			res, err := ml.GridSearch(grid, func(p ml.GridPoint) (ml.Classifier, error) {
				return tree.New(tree.Config{Criterion: tree.Gini, MinSplit: int(p["minsplit"]), CP: p["cp"]}), nil
			}, train, val)
			if err != nil {
				return nil, err
			}
			return res.Best, nil
		},
	}
}

// knnLearner returns the 1-NN simulation learner.
func knnLearner() sim.Learner {
	return sim.Learner{
		Name: "1-NN",
		Train: func(train, _ *ml.Dataset, _ uint64) (ml.Classifier, error) {
			k := knn.New()
			if err := k.Fit(train); err != nil {
				return nil, err
			}
			return k, nil
		},
	}
}

// svmLearner returns the RBF-SVM simulation learner with a small C×γ grid.
func svmLearner(cap int) sim.Learner {
	return sim.Learner{
		Name: "SVM(rbf)",
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, error) {
			grid := ml.NewGrid().Axis("C", 1, 100).Axis("gamma", 0.1, 1)
			res, err := ml.GridSearch(grid, func(p ml.GridPoint) (ml.Classifier, error) {
				return svm.New(svm.Config{
					Kernel: svm.RBF, C: p["C"], Gamma: p["gamma"],
					SubsampleCap: cap, Seed: seed,
				})
			}, train, val)
			if err != nil {
				return nil, err
			}
			return res.Best, nil
		},
	}
}

// Panel is one figure panel: a swept parameter and its measured series.
type Panel struct {
	Figure  string
	Label   string
	XName   string
	Learner string
	Points  []sim.SweepPoint
}

// renderPanel prints a panel as the series the paper plots: average test
// error per view at each x value.
func renderPanel(o Options, p Panel) error {
	fmt.Fprintf(o.Out, "Figure %s (%s): %s sweep, learner=%s, runs=%d\n",
		p.Figure, p.Label, p.XName, p.Learner, o.Runs)
	tab := texttable.New(p.XName, "JoinAll", "NoJoin", "NoFK", "NetVar(JoinAll)", "NetVar(NoJoin)")
	for _, pt := range p.Points {
		tab.Row(pt.Param,
			texttable.F(pt.Views[ml.JoinAll].AvgTestError),
			texttable.F(pt.Views[ml.NoJoin].AvgTestError),
			texttable.F(pt.Views[ml.NoFK].AvgTestError),
			texttable.F(pt.Views[ml.JoinAll].NetVariance),
			texttable.F(pt.Views[ml.NoJoin].NetVariance),
		)
	}
	return tab.Render(o.Out)
}

// sweep wraps sim.Sweep with the package learner/seed conventions.
func sweep(o Options, params []float64, mk func(float64) (sim.Scenario, error), learner sim.Learner) ([]sim.SweepPoint, error) {
	return sim.Sweep(params, mk, learner, o.Runs, o.Seed+0xF16)
}

// Figure2 reproduces the six OneXr panels (A–F) for the gini tree.
// panels selects a subset by letter; nil runs all six.
func Figure2(o Options, panels []string) ([]Panel, error) {
	o = o.withDefaults()
	learner := treeLearner(0)
	run := map[string]bool{}
	for _, p := range panels {
		run[p] = true
	}
	all := len(panels) == 0
	var out []Panel

	add := func(label, xname string, params []float64, mk func(float64) (sim.Scenario, error)) error {
		if !all && !run[label] {
			return nil
		}
		pts, err := sweep(o, params, mk, learner)
		if err != nil {
			return err
		}
		p := Panel{Figure: "2", Label: label, XName: xname, Learner: learner.Name, Points: pts}
		out = append(out, p)
		return renderPanel(o, p)
	}

	if err := add("A", "nS", []float64{100, 500, 1000, 5000, 10000}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(int(x), defNR, defDS, defDR, defP, 2, sim.Skew{}, o.Seed+2)
	}); err != nil {
		return nil, err
	}
	if err := add("B", "nR", []float64{1 << 1, 1 << 3, 1 << 5, 1 << 7, 330, 1000}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, int(x), defDS, defDR, defP, 2, sim.Skew{}, o.Seed+3)
	}); err != nil {
		return nil, err
	}
	if err := add("C", "dS", []float64{1, 4, 7, 10}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, defNR, int(x), defDR, defP, 2, sim.Skew{}, o.Seed+4)
	}); err != nil {
		return nil, err
	}
	if err := add("D", "dR", []float64{1, 4, 7, 10}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, defNR, defDS, int(x), defP, 2, sim.Skew{}, o.Seed+5)
	}); err != nil {
		return nil, err
	}
	if err := add("E", "p", []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, defNR, defDS, defDR, x, 2, sim.Skew{}, o.Seed+6)
	}); err != nil {
		return nil, err
	}
	if err := add("F", "|DXr|", []float64{2, 10, 20, 40}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, defNR, defDS, defDR, defP, int(x), sim.Skew{}, o.Seed+7)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure3 reproduces the OneXr n_R sweep for 1-NN (A) and RBF-SVM (B); the
// net-variance columns of the same run are Figure 4.
func Figure3And4(o Options) ([]Panel, error) {
	o = o.withDefaults()
	params := []float64{2, 8, 32, 128, 330, 1000}
	mk := func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, int(x), defDS, defDR, defP, 2, sim.Skew{}, o.Seed+8)
	}
	var out []Panel
	for _, l := range []sim.Learner{knnLearner(), svmLearner(o.SVMCap)} {
		pts, err := sweep(o, params, mk, l)
		if err != nil {
			return nil, err
		}
		p := Panel{Figure: "3+4", Label: l.Name, XName: "nR", Learner: l.Name, Points: pts}
		out = append(out, p)
		if err := renderPanel(o, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Figure5 reproduces the FK-skew panels: Zipf parameter sweep (A), n_S sweep
// at Zipf 2 (B), needle probability sweep (C), n_S sweep at needle 0.5 (D).
func Figure5(o Options) ([]Panel, error) {
	o = o.withDefaults()
	learner := treeLearner(0)
	var out []Panel
	add := func(label, xname string, params []float64, mk func(float64) (sim.Scenario, error)) error {
		pts, err := sweep(o, params, mk, learner)
		if err != nil {
			return err
		}
		p := Panel{Figure: "5", Label: label, XName: xname, Learner: learner.Name, Points: pts}
		out = append(out, p)
		return renderPanel(o, p)
	}
	if err := add("A", "zipf", []float64{0, 1, 2, 3, 4}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, defNR, defDS, defDR, defP, 2, sim.Skew{Kind: sim.SkewZipf, Param: x}, o.Seed+9)
	}); err != nil {
		return nil, err
	}
	if err := add("B", "nS", []float64{100, 1000, 10000}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(int(x), defNR, defDS, defDR, defP, 2, sim.Skew{Kind: sim.SkewZipf, Param: 2}, o.Seed+10)
	}); err != nil {
		return nil, err
	}
	if err := add("C", "needleP", []float64{0.1, 0.4, 0.7, 1}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(defNS, defNR, defDS, defDR, defP, 2, sim.Skew{Kind: sim.SkewNeedle, Param: x}, o.Seed+11)
	}); err != nil {
		return nil, err
	}
	if err := add("D", "nS", []float64{100, 1000, 10000}, func(x float64) (sim.Scenario, error) {
		return sim.NewOneXr(int(x), defNR, defDS, defDR, defP, 2, sim.Skew{Kind: sim.SkewNeedle, Param: 0.5}, o.Seed+12)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure6 reproduces the XSXR panels: n_S (A), n_R (B), d_R (C), d_S (D).
func Figure6(o Options) ([]Panel, error) {
	o = o.withDefaults()
	learner := treeLearner(0)
	var out []Panel
	add := func(label, xname string, params []float64, mk func(float64) (sim.Scenario, error)) error {
		pts, err := sweep(o, params, mk, learner)
		if err != nil {
			return err
		}
		p := Panel{Figure: "6", Label: label, XName: xname, Learner: learner.Name, Points: pts}
		out = append(out, p)
		return renderPanel(o, p)
	}
	if err := add("A", "nS", []float64{100, 1000, 5000, 10000}, func(x float64) (sim.Scenario, error) {
		return sim.NewXSXR(int(x), defNR, defDS, defDR, o.Seed+13)
	}); err != nil {
		return nil, err
	}
	if err := add("B", "nR", []float64{2, 8, 32, 128, 1000}, func(x float64) (sim.Scenario, error) {
		return sim.NewXSXR(defNS, int(x), defDS, defDR, o.Seed+14)
	}); err != nil {
		return nil, err
	}
	if err := add("C", "dR", []float64{1, 4, 7, 10}, func(x float64) (sim.Scenario, error) {
		return sim.NewXSXR(defNS, defNR, defDS, int(x), o.Seed+15)
	}); err != nil {
		return nil, err
	}
	if err := add("D", "dS", []float64{1, 4, 7, 10}, func(x float64) (sim.Scenario, error) {
		return sim.NewXSXR(defNS, defNR, int(x), defDR, o.Seed+16)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Figures7to9 reproduce the RepOneXr d_R sweeps at tuple ratios 25× (nR=40)
// and 5× (nR=200) for the tree (Fig 7), RBF-SVM (Fig 8), and 1-NN (Fig 9).
func Figures7to9(o Options) ([]Panel, error) {
	o = o.withDefaults()
	params := []float64{1, 6, 11, 16}
	type cfg struct {
		fig     string
		learner sim.Learner
	}
	var out []Panel
	for _, c := range []cfg{
		{"7", treeLearner(0)},
		{"8", svmLearner(o.SVMCap)},
		{"9", knnLearner()},
	} {
		for _, nr := range []int{40, 200} {
			label := fmt.Sprintf("nR=%d", nr)
			mk := func(x float64) (sim.Scenario, error) {
				return sim.NewRepOneXr(defNS, nr, defDS, int(x), defP, sim.Skew{}, o.Seed+17)
			}
			pts, err := sweep(o, params, mk, c.learner)
			if err != nil {
				return nil, err
			}
			p := Panel{Figure: c.fig, Label: label, XName: "dR", Learner: c.learner.Name, Points: pts}
			out = append(out, p)
			if err := renderPanel(o, p); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
