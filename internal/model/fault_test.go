package model

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/nb"
)

// savedModel fits one Naive Bayes model for the fault scenarios.
func savedModel(t *testing.T) *Model {
	t.Helper()
	train, _ := trainData(t, 9)
	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := New(nbc, train.Features, map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// dirState lists a directory's entries for the no-temp-left-behind checks.
func dirState(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestSaveFaultAtomicity scripts every write-path fault through SaveFS and
// requires the atomic-publish contract each time: the save errors, the
// target path holds exactly what it held before (the old artifact or
// nothing), and no temp file is left behind.
func TestSaveFaultAtomicity(t *testing.T) {
	m := savedModel(t)
	for _, tc := range []struct {
		name string
		rule fault.Rule
	}{
		{"torn-write", fault.Rule{Op: fault.OpWrite, Kind: fault.KindTorn, Nth: 1}},
		{"enospc", fault.Rule{Op: fault.OpWrite, Kind: fault.KindENOSPC, Nth: 1}},
		{"sync-fail", fault.Rule{Op: fault.OpSync, Kind: fault.KindEIO, Nth: 1}},
		{"rename-fail", fault.Rule{Op: fault.OpRename, Kind: fault.KindEIO, Nth: 1}},
		{"create-fail", fault.Rule{Op: fault.OpOpen, Kind: fault.KindENOSPC, Nth: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			target := filepath.Join(dir, "m.bin")

			// Fresh directory: the faulted save must fail and leave it empty.
			inj := fault.NewInjector(fault.OS, 1, tc.rule)
			if err := SaveFS(inj, target, m); err == nil {
				t.Fatal("faulted save succeeded")
			}
			if inj.FiredTotal() == 0 {
				t.Fatal("fault never fired — the scenario tested nothing")
			}
			if got := dirState(t, dir); len(got) != 0 {
				t.Fatalf("failed save left %v behind", got)
			}

			// With a good artifact already published: the faulted save must
			// leave the old bytes readable and identical.
			if err := Save(target, m); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			inj = fault.NewInjector(fault.OS, 1, tc.rule)
			if err := SaveFS(inj, target, m); err == nil {
				t.Fatal("faulted overwrite succeeded")
			}
			after, err := os.ReadFile(target)
			if err != nil {
				t.Fatalf("old artifact unreadable after failed save: %v", err)
			}
			if string(before) != string(after) {
				t.Fatal("failed save modified the published artifact")
			}
			if got := dirState(t, dir); len(got) != 1 || got[0] != "m.bin" {
				t.Fatalf("failed overwrite left %v, want just m.bin", got)
			}
			if _, err := Load(target); err != nil {
				t.Fatalf("old artifact no longer decodes: %v", err)
			}
		})
	}
}

// TestLoadFaults: read-path faults surface as load errors, never as a
// half-decoded model.
func TestLoadFaults(t *testing.T) {
	m := savedModel(t)
	dir := t.TempDir()
	target := filepath.Join(dir, "m.bin")
	if err := Save(target, m); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		rule fault.Rule
	}{
		{"eio", fault.Rule{Op: fault.OpRead, Kind: fault.KindEIO, Nth: 1}},
		{"open-fail", fault.Rule{Op: fault.OpOpen, Kind: fault.KindEIO, Nth: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := fault.NewInjector(fault.OS, 1, tc.rule)
			got, err := LoadFS(inj, target)
			if err == nil || got != nil {
				t.Fatalf("faulted load returned %v, %v", got, err)
			}
			if !strings.Contains(err.Error(), "model: load") {
				t.Fatalf("load error %q lost its context", err)
			}
		})
	}
	// The artifact is still fine through the real filesystem.
	if _, err := Load(target); err != nil {
		t.Fatal(err)
	}
	// A truncated artifact — what a torn write would have published without
	// the temp+fsync+rename dance — must fail to decode, not half-load.
	raw, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.bin")
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := Load(torn); err == nil {
		t.Fatalf("truncated artifact decoded into %v", got)
	}
}

// TestSaveLoadLatency: latency faults delay but do not fail the round trip.
func TestSaveLoadLatency(t *testing.T) {
	m := savedModel(t)
	dir := t.TempDir()
	target := filepath.Join(dir, "m.bin")
	inj := fault.NewInjector(fault.OS, 1,
		fault.Rule{Op: fault.OpWrite, Kind: fault.KindLatency, Every: 1},
		fault.Rule{Op: fault.OpSync, Kind: fault.KindLatency, Every: 1},
	)
	if err := SaveFS(inj, target, m); err != nil {
		t.Fatal(err)
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("latency rules never fired")
	}
	got, err := Load(target)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("round trip through latency faults changed the model: %s vs %s", got.Kind, m.Kind)
	}
}
