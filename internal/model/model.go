// Package model implements versioned, deterministic persistence for every
// trained learner in the repository — the artifact boundary between training
// (cmd/hamlet) and online serving (cmd/hamletd, internal/serve).
//
// An artifact bundles three things: the learner's complete prediction state
// (weights, support sets, tree nodes — exported through each package's
// Params surface), the feature schema it was trained on (names, domain
// cardinalities, foreign-key flags), and free-form provenance metadata. The
// feature schema is fingerprinted (SHA-256 over a canonical rendering), and
// every consumer — decoding, serving, evaluation — verifies the fingerprint
// before accepting inputs, so a model can never silently score rows whose
// columns mean something else. Encoding is fully deterministic: identical
// models produce identical bytes (maps are sorted, floats are stored as IEEE
// bits), which is what makes round-trip equality testable at the bit level.
package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/ml"
)

// Fingerprint identifies a feature schema: SHA-256 over the canonical
// rendering of the feature list (name, domain cardinality, FK flag, in
// order). Two models share a fingerprint exactly when their inputs are
// interchangeable.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits — enough for logs and /stats.
func (f Fingerprint) Short() string { return f.String()[:12] }

// FingerprintFeatures computes the schema fingerprint of a feature list.
func FingerprintFeatures(features []ml.Feature) Fingerprint {
	h := sha256.New()
	h.Write([]byte("hamlet-model-schema-v1\x00"))
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(len(features)))
	h.Write(scratch[:])
	for _, f := range features {
		binary.LittleEndian.PutUint64(scratch[:], uint64(len(f.Name)))
		h.Write(scratch[:])
		h.Write([]byte(f.Name))
		binary.LittleEndian.PutUint64(scratch[:], uint64(f.Cardinality))
		h.Write(scratch[:])
		if f.IsFK {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// SchemaMismatchError is the typed rejection a model raises when asked to
// consume inputs whose feature schema differs from the one it was trained
// on — different names, domains, order, or count.
type SchemaMismatchError struct {
	// Want is the fingerprint of the model's training schema; Got is the
	// fingerprint of the schema offered at decode/serve/eval time.
	Want, Got Fingerprint
	// Detail pinpoints the first difference when one is identifiable.
	Detail string
}

// Error implements error.
func (e *SchemaMismatchError) Error() string {
	msg := fmt.Sprintf("model: schema mismatch: model trained on %s, input schema is %s", e.Want.Short(), e.Got.Short())
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Model is one persisted learner: its kind tag, the feature schema it was
// trained on, free-form provenance metadata, and the live implementation.
type Model struct {
	// Kind tags the learner implementation (see KindOf).
	Kind string
	// Features is the training feature schema, in training column order.
	Features []ml.Feature
	// Meta carries provenance (dataset, scale, seed, spec, accuracies…).
	// Keys and values are free-form strings; encoding sorts keys.
	Meta map[string]string
	// Impl is the fitted learner: one of the pointer types enumerated in
	// KindOf. Use Classifier for the common binary-classifier view.
	Impl any
}

// New packages a fitted learner into a Model, validating that the
// implementation type is a registered kind.
func New(impl any, features []ml.Feature, meta map[string]string) (*Model, error) {
	kind, err := KindOf(impl)
	if err != nil {
		return nil, err
	}
	m := &Model{Kind: kind, Features: append([]ml.Feature(nil), features...), Impl: impl}
	if len(meta) > 0 {
		m.Meta = make(map[string]string, len(meta))
		for k, v := range meta {
			m.Meta[k] = v
		}
	}
	return m, nil
}

// Fingerprint returns the schema fingerprint of the model's feature list.
func (m *Model) Fingerprint() Fingerprint { return FingerprintFeatures(m.Features) }

// Classifier returns the implementation as a binary ml.Classifier when it is
// one (every kind except the one-vs-rest ensemble, whose Predict returns a
// class index rather than an int8).
func (m *Model) Classifier() (ml.Classifier, bool) {
	c, ok := m.Impl.(ml.Classifier)
	return c, ok
}

// CheckFeatures verifies that the offered feature schema matches the model's
// training schema exactly, returning a *SchemaMismatchError naming the first
// difference otherwise. This is the gate every input path goes through.
func (m *Model) CheckFeatures(features []ml.Feature) error {
	want, got := m.Fingerprint(), FingerprintFeatures(features)
	if want == got {
		return nil
	}
	e := &SchemaMismatchError{Want: want, Got: got}
	if len(features) != len(m.Features) {
		e.Detail = fmt.Sprintf("model has %d features, input schema has %d", len(m.Features), len(features))
		return e
	}
	for j := range m.Features {
		a, b := m.Features[j], features[j]
		switch {
		case a.Name != b.Name:
			e.Detail = fmt.Sprintf("feature %d is %q, input schema has %q", j, a.Name, b.Name)
		case a.Cardinality != b.Cardinality:
			e.Detail = fmt.Sprintf("feature %q has domain size %d, input schema has %d", a.Name, a.Cardinality, b.Cardinality)
		case a.IsFK != b.IsFK:
			e.Detail = fmt.Sprintf("feature %q foreign-key flag differs", a.Name)
		default:
			continue
		}
		return e
	}
	return e
}

// Save encodes the model to a file (0644) atomically and durably: the bytes
// go to a temporary sibling, which is fsynced, then renamed over the target
// path. A crash or I/O error at any step leaves either the old artifact or
// none — never a truncated one — and the temp file is removed on every
// error path.
func Save(path string, m *Model) error {
	return SaveFS(fault.OS, path, m)
}

// SaveFS is Save over an injectable filesystem; the fault tests script
// torn writes, ENOSPC, and sync failures through it.
func SaveFS(fsys fault.FS, path string, m *Model) error {
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".model-*")
	if err != nil {
		return fmt.Errorf("model: save: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if err := Encode(tmp, m); err != nil {
		tmp.Close()
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	// Sync before rename: rename is atomic on POSIX filesystems, but without
	// the fsync a crash shortly after could publish a zero-length or partial
	// artifact under the final name.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	if err := fsys.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	return fsys.Rename(tmp.Name(), path)
}

// Load decodes a model from a file.
func Load(path string) (*Model, error) {
	return LoadFS(fault.OS, path)
}

// LoadFS is Load over an injectable filesystem.
func LoadFS(fsys fault.FS, path string) (*Model, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: load: %w", err)
	}
	defer f.Close()
	m, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	return m, nil
}
