package model

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/multiclass"
	"repro/internal/nb"
	"repro/internal/svm"
	"repro/internal/tree"
)

// codecFns is one kind's payload (de)serializer pair. decode receives the
// artifact's feature schema, which several learners need to rebuild their
// one-hot encoders.
type codecFns struct {
	encode func(w *writer, m *Model) error
	decode func(r *reader, features []ml.Feature) (any, error)
}

// Kind tags, one per serializable learner.
const (
	KindNaiveBayes = "nb.NaiveBayes"
	KindTree       = "tree.Tree"
	KindLogReg     = "linear.LogReg"
	KindSVM        = "svm.SVM"
	KindOneNN      = "knn.OneNN"
	KindMLP        = "ann.MLP"
	KindOneVsRest  = "multiclass.OneVsRest"
	KindConstant   = "ml.Constant"
)

// KindOf maps a learner implementation to its kind tag.
func KindOf(impl any) (string, error) {
	switch impl.(type) {
	case *nb.NaiveBayes:
		return KindNaiveBayes, nil
	case *tree.Tree:
		return KindTree, nil
	case *linear.LogReg:
		return KindLogReg, nil
	case *svm.SVM:
		return KindSVM, nil
	case *knn.OneNN:
		return KindOneNN, nil
	case *ann.MLP:
		return KindMLP, nil
	case *multiclass.OneVsRest:
		return KindOneVsRest, nil
	case *ml.ConstantClassifier:
		return KindConstant, nil
	default:
		return "", fmt.Errorf("model: no codec for %T", impl)
	}
}

// kinds is the codec registry. Payload layouts are append-only within a
// container version; a new layout means a new magic. Filled by init — the
// one-vs-rest codec recurses through the registry, which a composite literal
// would turn into an initialization cycle.
var kinds = map[string]codecFns{}

func init() {
	kinds[KindNaiveBayes] = codecFns{encodeNB, decodeNB}
	kinds[KindTree] = codecFns{encodeTree, decodeTree}
	kinds[KindLogReg] = codecFns{encodeLogReg, decodeLogReg}
	kinds[KindSVM] = codecFns{encodeSVM, decodeSVM}
	kinds[KindOneNN] = codecFns{encodeKNN, decodeKNN}
	kinds[KindMLP] = codecFns{encodeMLP, decodeMLP}
	kinds[KindOneVsRest] = codecFns{encodeOVR, decodeOVR}
	kinds[KindConstant] = codecFns{encodeConstant, decodeConstant}
}

func implAs[T any](m *Model) (T, error) {
	impl, ok := m.Impl.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("model: kind %q holds %T", m.Kind, m.Impl)
	}
	return impl, nil
}

func encodeNB(w *writer, m *Model) error {
	c, err := implAs[*nb.NaiveBayes](m)
	if err != nil {
		return err
	}
	p, err := c.ExportParams()
	if err != nil {
		return err
	}
	w.f64(p.Alpha)
	w.f64(p.LogPrior[0])
	w.f64(p.LogPrior[1])
	w.f64s(p.LogLik)
	w.bools(p.Active)
	return nil
}

func decodeNB(r *reader, features []ml.Feature) (any, error) {
	var p nb.Params
	p.Alpha = r.f64()
	p.LogPrior[0] = r.f64()
	p.LogPrior[1] = r.f64()
	p.LogLik = r.f64s()
	p.Active = r.bools()
	if r.err != nil {
		return nil, r.err
	}
	return nb.FromParams(features, p)
}

func encodeTree(w *writer, m *Model) error {
	c, err := implAs[*tree.Tree](m)
	if err != nil {
		return err
	}
	p, err := c.ExportParams()
	if err != nil {
		return err
	}
	w.u32(uint32(p.Criterion))
	w.u32(uint32(p.MinSplit))
	w.f64(p.CP)
	w.u32(uint32(p.MaxDepth))
	w.u32(uint32(p.Unseen))
	w.u32(uint32(p.NFeatures))
	w.u32(uint32(len(p.Nodes)))
	for _, nd := range p.Nodes {
		w.i64(int64(nd.Feature))
		w.i64(int64(nd.LeftChild))
		w.i64(int64(nd.RightChild))
		w.u8(uint8(nd.Prediction))
		w.i64(int64(nd.N))
		w.i64(int64(nd.NLeft))
		w.values(nd.SplitValues)
		w.bools(nd.SplitLeft)
	}
	return nil
}

func decodeTree(r *reader, features []ml.Feature) (any, error) {
	var p tree.Params
	p.Criterion = int(r.u32())
	p.MinSplit = int(r.u32())
	p.CP = r.f64()
	p.MaxDepth = int(r.u32())
	p.Unseen = int(r.u32())
	p.NFeatures = int(r.u32())
	n := r.count("tree node")
	if r.err != nil {
		return nil, r.err
	}
	p.Nodes = make([]tree.NodeParams, n)
	for i := range p.Nodes {
		p.Nodes[i] = tree.NodeParams{
			Feature:    int(r.i64()),
			LeftChild:  int(r.i64()),
			RightChild: int(r.i64()),
			Prediction: int8(r.u8()),
			N:          int(r.i64()),
			NLeft:      int(r.i64()),
		}
		p.Nodes[i].SplitValues = r.values()
		p.Nodes[i].SplitLeft = r.bools()
	}
	if r.err != nil {
		return nil, r.err
	}
	return tree.FromParams(len(features), p)
}

func encodeLogReg(w *writer, m *Model) error {
	c, err := implAs[*linear.LogReg](m)
	if err != nil {
		return err
	}
	p, err := c.ExportParams()
	if err != nil {
		return err
	}
	w.f64(p.Lambda)
	w.f64(p.L2)
	w.f64s(p.W)
	w.f64(p.B)
	return nil
}

func decodeLogReg(r *reader, features []ml.Feature) (any, error) {
	var p linear.Params
	p.Lambda = r.f64()
	p.L2 = r.f64()
	p.W = r.f64s()
	p.B = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	return linear.FromParams(features, p)
}

func encodeSVM(w *writer, m *Model) error {
	c, err := implAs[*svm.SVM](m)
	if err != nil {
		return err
	}
	p, err := c.ExportParams()
	if err != nil {
		return err
	}
	w.u32(uint32(p.Kernel))
	w.f64(p.Gamma)
	w.u32(uint32(p.Dims))
	w.boolean(p.HasKernel)
	w.values(p.SVRows)
	w.f64s(p.SVAlphaY)
	w.f64(p.B)
	return nil
}

func decodeSVM(r *reader, _ []ml.Feature) (any, error) {
	var p svm.Params
	p.Kernel = svm.KernelKind(r.u32())
	p.Gamma = r.f64()
	p.Dims = int(r.u32())
	p.HasKernel = r.boolean()
	p.SVRows = r.values()
	p.SVAlphaY = r.f64s()
	p.B = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	return svm.FromParams(p)
}

func encodeKNN(w *writer, m *Model) error {
	c, err := implAs[*knn.OneNN](m)
	if err != nil {
		return err
	}
	p, err := c.ExportParams()
	if err != nil {
		return err
	}
	w.values(p.X)
	w.u32(uint32(len(p.Y)))
	for _, y := range p.Y {
		w.u8(uint8(y))
	}
	return nil
}

func decodeKNN(r *reader, features []ml.Feature) (any, error) {
	var p knn.Params
	p.X = r.values()
	n := r.count("label")
	if r.err != nil {
		return nil, r.err
	}
	p.Y = make([]int8, n)
	for i := range p.Y {
		p.Y[i] = int8(r.u8())
	}
	if r.err != nil {
		return nil, r.err
	}
	return knn.FromParams(features, p)
}

func encodeMLP(w *writer, m *Model) error {
	c, err := implAs[*ann.MLP](m)
	if err != nil {
		return err
	}
	p, err := c.ExportParams()
	if err != nil {
		return err
	}
	w.u32(uint32(p.Hidden1))
	w.u32(uint32(p.Hidden2))
	w.f64s(p.W1)
	w.f64s(p.B1)
	w.f64s(p.W2)
	w.f64s(p.B2)
	w.f64s(p.W3)
	w.f64(p.B3)
	return nil
}

func decodeMLP(r *reader, features []ml.Feature) (any, error) {
	var p ann.Params
	p.Hidden1 = int(r.u32())
	p.Hidden2 = int(r.u32())
	p.W1 = r.f64s()
	p.B1 = r.f64s()
	p.W2 = r.f64s()
	p.B2 = r.f64s()
	p.W3 = r.f64s()
	p.B3 = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	return ann.FromParams(features, p)
}

// encodeOVR serializes a one-vs-rest ensemble as its per-class sub-models,
// each a nested (kind, payload) frame reusing the same registry. Sub-models
// share the ensemble's feature schema.
func encodeOVR(w *writer, m *Model) error {
	c, err := implAs[*multiclass.OneVsRest](m)
	if err != nil {
		return err
	}
	models := c.Models()
	if len(models) == 0 {
		return fmt.Errorf("model: one-vs-rest export before Fit")
	}
	w.u32(uint32(len(models)))
	for class, sub := range models {
		kind, err := KindOf(sub)
		if err != nil {
			return fmt.Errorf("model: one-vs-rest class %d: %w", class, err)
		}
		if kind == KindOneVsRest {
			return fmt.Errorf("model: one-vs-rest cannot nest another one-vs-rest")
		}
		w.str(kind)
		subModel := &Model{Kind: kind, Features: m.Features, Impl: sub}
		if err := kinds[kind].encode(w, subModel); err != nil {
			return fmt.Errorf("model: one-vs-rest class %d: %w", class, err)
		}
	}
	return nil
}

func decodeOVR(r *reader, features []ml.Feature) (any, error) {
	n := r.count("class model")
	if r.err != nil {
		return nil, r.err
	}
	models := make([]ml.Classifier, n)
	for class := range models {
		kind := r.str()
		if r.err != nil {
			return nil, r.err
		}
		if kind == KindOneVsRest {
			return nil, fmt.Errorf("model: one-vs-rest cannot nest another one-vs-rest")
		}
		fns, ok := kinds[kind]
		if !ok {
			return nil, fmt.Errorf("model: one-vs-rest class %d has unknown kind %q", class, kind)
		}
		impl, err := fns.decode(r, features)
		if err != nil {
			return nil, fmt.Errorf("model: one-vs-rest class %d: %w", class, err)
		}
		cls, ok := impl.(ml.Classifier)
		if !ok {
			return nil, fmt.Errorf("model: one-vs-rest class %d decoded to non-classifier %T", class, impl)
		}
		models[class] = cls
	}
	return multiclass.FromModels(models)
}

func encodeConstant(w *writer, m *Model) error {
	c, err := implAs[*ml.ConstantClassifier](m)
	if err != nil {
		return err
	}
	w.u8(uint8(c.Class))
	return nil
}

func decodeConstant(r *reader, _ []ml.Feature) (any, error) {
	class := int8(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	if class != 0 && class != 1 {
		return nil, fmt.Errorf("model: constant classifier class %d outside {0,1}", class)
	}
	return &ml.ConstantClassifier{Class: class}, nil
}
