package model

import (
	"bytes"
	"testing"

	"repro/internal/ann"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/nb"
	"repro/internal/relational"
	"repro/internal/rng"
	"repro/internal/svm"
	"repro/internal/tree"
)

// FuzzCodecRoundTrip drives the codec with fuzzer-chosen learner kinds and
// hyper-parameters: train a small model, encode, decode, and require
// bit-identical predictions on a held-out batch plus byte-identical
// re-encoding. The seed corpus covers every learner kind, so a plain
// `go test` run already exercises each codec path through this harness.
func FuzzCodecRoundTrip(f *testing.F) {
	for kind := byte(0); kind < 7; kind++ {
		f.Add(kind, byte(1), byte(2), uint64(3))
		f.Add(kind, byte(9), byte(0), uint64(41))
	}
	f.Fuzz(func(t *testing.T, kindB, hp1, hp2 byte, seed uint64) {
		features := []ml.Feature{
			{Name: "x0", Cardinality: 2 + int(hp1%4)},
			{Name: "fk", Cardinality: 3 + int(hp2%5), IsFK: true},
			{Name: "x2", Cardinality: 2},
		}
		r := rng.New(seed)
		const n, h = 60, 24
		d := len(features)
		train := &ml.Dataset{
			Features: features,
			X:        make([]relational.Value, n*d),
			Y:        make([]int8, n),
		}
		fill := func(dst []relational.Value) {
			for j, ft := range features {
				dst[j] = relational.Value(r.Intn(ft.Cardinality))
			}
		}
		for i := 0; i < n; i++ {
			row := train.X[i*d : (i+1)*d]
			fill(row)
			if (int(row[0])+int(row[1]))%2 == 0 {
				train.Y[i] = 1
			}
		}
		heldout := make([][]relational.Value, h)
		for i := range heldout {
			heldout[i] = make([]relational.Value, d)
			fill(heldout[i])
		}

		var cls ml.Classifier
		var err error
		switch kindB % 7 {
		case 0:
			c := nb.New(nb.Config{Alpha: 0.5 + float64(hp1%4)})
			err = c.Fit(train)
			if err == nil && hp2%2 == 0 {
				c.SetActive(int(hp1)%d, false)
			}
			cls = c
		case 1:
			c := tree.New(tree.Config{
				Criterion: tree.Criterion(hp1 % 3),
				MinSplit:  1 + int(hp2%8),
				CP:        float64(hp1%3) * 1e-3,
				MaxDepth:  int(hp2 % 6),
			})
			err = c.Fit(train)
			cls = c
		case 2:
			c := linear.NewLogReg(linear.LogRegConfig{
				Lambda: float64(hp1%3) * 1e-3,
				L2:     float64(hp2%2) * 1e-3,
				Epochs: 1 + int(hp1%3),
				Seed:   seed,
			})
			err = c.Fit(train)
			cls = c
		case 3:
			var s *svm.SVM
			s, err = svm.New(svm.Config{
				Kernel:  svm.KernelKind(hp1 % 3),
				C:       0.5 + float64(hp2%3),
				Gamma:   0.05 + 0.1*float64(hp1%3),
				Seed:    seed,
				MaxIter: 500,
			})
			if err == nil {
				err = s.Fit(train)
			}
			cls = s
		case 4:
			c := knn.New()
			err = c.Fit(train)
			cls = c
		case 5:
			c := ann.New(ann.Config{
				Hidden1: 4 + int(hp1%5),
				Hidden2: 2 + int(hp2%3),
				Epochs:  1,
				Seed:    seed,
			})
			err = c.Fit(train)
			cls = c
		default:
			cls = &ml.ConstantClassifier{Class: int8(hp1 % 2)}
		}
		if err != nil {
			t.Fatalf("fit: %v", err)
		}

		m, err := New(cls, features, map[string]string{"fuzz": "1"})
		if err != nil {
			t.Fatalf("wrap: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("encode: %v", err)
		}
		raw := append([]byte(nil), buf.Bytes()...)
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		decoded, ok := got.Classifier()
		if !ok {
			t.Fatalf("decoded %T is not a classifier", got.Impl)
		}
		for i, row := range heldout {
			if want, have := cls.Predict(row), decoded.Predict(row); want != have {
				t.Fatalf("row %d: prediction %d became %d after round trip", i, want, have)
			}
		}
		var again bytes.Buffer
		if err := Encode(&again, got); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(raw, again.Bytes()) {
			t.Fatal("re-encoded bytes differ: codec is not deterministic")
		}
	})
}

// FuzzDecodeGarbage hammers the decoder with raw bytes: it must never panic,
// only return errors (or succeed on a byte string that happens to be a valid
// artifact, in which case re-encoding must not panic either).
func FuzzDecodeGarbage(f *testing.F) {
	train, _ := trainDataRaw(7)
	c := nb.New(nb.Config{})
	if err := c.Fit(train); err != nil {
		f.Fatal(err)
	}
	m, _ := New(c, train.Features, nil)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		_ = Encode(&out, got)
	})
}
