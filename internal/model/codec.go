package model

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/ml"
	"repro/internal/relational"
)

// The artifact container format, version 1 (all integers little-endian):
//
//	magic   "HMLTMDL1" (8 bytes)
//	meta    u32 count, then per entry: string key, string value (sorted keys)
//	schema  u32 count, then per feature: string name, u32 cardinality, u8 fk
//	fprint  32 bytes — FingerprintFeatures of the schema block (integrity)
//	kind    string
//	payload u64 length, then the kind-specific parameter block
//
// Strings are u32 length + bytes; floats are IEEE-754 bits; bools are one
// byte. The payload is length-framed so a reader can skip kinds it does not
// know, and the fingerprint is recomputed from the decoded schema so a
// corrupted or hand-edited schema block is rejected before any parameters
// are interpreted.
const (
	magic            = "HMLTMDL1"
	maxStrLen        = 1 << 20 // 1 MiB: no name/meta string is legitimately larger
	maxSlice         = 1 << 28 // element-count sanity bound for corrupt headers
	maxHeaderEntries = 1 << 20 // meta pairs / feature columns
	maxPayload       = 1 << 31
)

// writer wraps an io.Writer with the primitive encoders; the first error
// sticks.
type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) u8(v uint8) { w.bytes([]byte{v}) }

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) str(s string) { w.u32(uint32(len(s))); w.bytes([]byte(s)) }

func (w *writer) f64s(xs []float64) {
	w.u32(uint32(len(xs)))
	for _, x := range xs {
		w.f64(x)
	}
}

func (w *writer) values(xs []relational.Value) {
	w.u32(uint32(len(xs)))
	for _, x := range xs {
		w.u32(uint32(x))
	}
}

func (w *writer) bools(xs []bool) {
	w.u32(uint32(len(xs)))
	for _, x := range xs {
		w.boolean(x)
	}
}

// reader wraps an io.Reader with the primitive decoders; the first error
// sticks and subsequent reads return zero values. remaining, when
// non-negative, bounds how many bytes may still be read — counts are checked
// against it before any allocation, so a corrupt header cannot demand a
// gigabyte slice backed by ten real bytes.
type reader struct {
	r         *bufio.Reader
	remaining int64
	err       error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) bytes(b []byte) {
	if r.err != nil {
		return
	}
	if r.remaining >= 0 {
		if int64(len(b)) > r.remaining {
			r.fail(fmt.Errorf("model: truncated input"))
			return
		}
		r.remaining -= int64(len(b))
	}
	_, r.err = io.ReadFull(r.r, b)
}

func (r *reader) u8() uint8 {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("model: invalid boolean byte"))
		return false
	}
}

func (r *reader) str() string {
	n := r.u32()
	if n > maxStrLen {
		r.fail(fmt.Errorf("model: string of %d bytes exceeds sanity bound", n))
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}

// countSized reads an element count and verifies that elemSize bytes per
// element could still be present in the input before the caller allocates.
func (r *reader) countSized(what string, elemSize int64) int {
	n := r.u32()
	if n > maxSlice {
		r.fail(fmt.Errorf("model: %s count %d exceeds sanity bound", what, n))
		return 0
	}
	if r.remaining >= 0 && int64(n)*elemSize > r.remaining {
		r.fail(fmt.Errorf("model: %s count %d exceeds remaining input", what, n))
		return 0
	}
	return int(n)
}

func (r *reader) count(what string) int { return r.countSized(what, 1) }

func (r *reader) f64s() []float64 {
	n := r.countSized("float slice", 8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) values() []relational.Value {
	n := r.countSized("value slice", 4)
	if r.err != nil {
		return nil
	}
	out := make([]relational.Value, n)
	for i := range out {
		out[i] = relational.Value(r.u32())
	}
	return out
}

func (r *reader) bools() []bool {
	n := r.count("bool slice")
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.boolean()
	}
	return out
}

// Encode writes the model artifact. Identical models produce identical
// bytes: metadata keys are sorted and every float is written as its IEEE
// bits.
func Encode(dst io.Writer, m *Model) error {
	enc, ok := kinds[m.Kind]
	if !ok {
		return fmt.Errorf("model: unknown kind %q", m.Kind)
	}
	w := &writer{w: bufio.NewWriter(dst)}
	w.bytes([]byte(magic))

	keys := make([]string, 0, len(m.Meta))
	for k := range m.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(m.Meta[k])
	}

	w.u32(uint32(len(m.Features)))
	for _, f := range m.Features {
		w.str(f.Name)
		w.u32(uint32(f.Cardinality))
		w.boolean(f.IsFK)
	}
	fp := m.Fingerprint()
	w.bytes(fp[:])

	w.str(m.Kind)
	var payload bytes.Buffer
	pw := &writer{w: bufio.NewWriter(&payload)}
	if err := enc.encode(pw, m); err != nil {
		return err
	}
	if pw.err == nil {
		pw.err = pw.w.Flush()
	}
	if pw.err != nil {
		return fmt.Errorf("model: encode %s payload: %w", m.Kind, pw.err)
	}
	w.u64(uint64(payload.Len()))
	w.bytes(payload.Bytes())

	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.err != nil {
		return fmt.Errorf("model: encode: %w", w.err)
	}
	return nil
}

// Decode reads a model artifact, verifying magic, schema fingerprint, and
// payload framing.
func Decode(src io.Reader) (*Model, error) {
	r := &reader{r: bufio.NewReader(src), remaining: -1}
	head := make([]byte, len(magic))
	r.bytes(head)
	if r.err == nil && string(head) != magic {
		return nil, fmt.Errorf("model: bad magic %q (not a model artifact, or an incompatible version)", head)
	}

	m := &Model{}
	n := r.count("meta")
	if r.err == nil && n > maxHeaderEntries {
		return nil, fmt.Errorf("model: meta count %d exceeds sanity bound", n)
	}
	if n > 0 && r.err == nil {
		m.Meta = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := r.str()
			m.Meta[k] = r.str()
		}
	}

	nf := r.count("feature")
	if r.err == nil && nf > maxHeaderEntries {
		return nil, fmt.Errorf("model: feature count %d exceeds sanity bound", nf)
	}
	if r.err == nil {
		m.Features = make([]ml.Feature, nf)
		for i := range m.Features {
			m.Features[i] = ml.Feature{Name: r.str(), Cardinality: int(r.u32()), IsFK: r.boolean()}
		}
	}
	var stored Fingerprint
	r.bytes(stored[:])
	if r.err == nil {
		if got := FingerprintFeatures(m.Features); got != stored {
			return nil, fmt.Errorf("model: corrupt artifact: schema fingerprint %s does not match stored %s", got.Short(), stored.Short())
		}
	}

	m.Kind = r.str()
	payloadLen := r.u64()
	if r.err == nil && payloadLen > maxPayload {
		return nil, fmt.Errorf("model: payload of %d bytes exceeds sanity bound", payloadLen)
	}
	if r.err != nil {
		return nil, fmt.Errorf("model: decode: %w", r.err)
	}
	dec, ok := kinds[m.Kind]
	if !ok {
		return nil, fmt.Errorf("model: unknown kind %q", m.Kind)
	}
	// CopyN grows the buffer as bytes actually arrive, so a corrupt length
	// field on a truncated stream fails without a huge up-front allocation.
	var payload bytes.Buffer
	if _, err := io.CopyN(&payload, r.r, int64(payloadLen)); err != nil {
		return nil, fmt.Errorf("model: decode: truncated payload: %w", err)
	}
	pr := &reader{r: bufio.NewReader(bytes.NewReader(payload.Bytes())), remaining: int64(payload.Len())}
	impl, err := dec.decode(pr, m.Features)
	if err != nil {
		return nil, err
	}
	if pr.err != nil {
		return nil, fmt.Errorf("model: decode %s payload: %w", m.Kind, pr.err)
	}
	m.Impl = impl
	return m, nil
}
