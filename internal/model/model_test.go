package model

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ann"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/multiclass"
	"repro/internal/nb"
	"repro/internal/relational"
	"repro/internal/rng"
	"repro/internal/svm"
	"repro/internal/tree"
)

// trainData builds a small dense dataset with a mix of domain sizes and one
// FK-flagged feature, plus a disjoint held-out batch for prediction
// comparison.
func trainData(t *testing.T, seed uint64) (train *ml.Dataset, heldout [][]relational.Value) {
	t.Helper()
	return trainDataRaw(seed)
}

func trainDataRaw(seed uint64) (*ml.Dataset, [][]relational.Value) {
	features := []ml.Feature{
		{Name: "home", Cardinality: 3},
		{Name: "fk", Cardinality: 6, IsFK: true},
		{Name: "color", Cardinality: 5},
	}
	r := rng.New(seed)
	const n, h = 160, 48
	d := len(features)
	ds := &ml.Dataset{
		Features: features,
		X:        make([]relational.Value, n*d),
		Y:        make([]int8, n),
	}
	row := func(dst []relational.Value) {
		for j, f := range features {
			dst[j] = relational.Value(r.Intn(f.Cardinality))
		}
	}
	for i := 0; i < n; i++ {
		x := ds.X[i*d : (i+1)*d]
		row(x)
		score := float64(x[0]) - 1 + float64(x[1]%2)*2 - 1 + 0.5*r.NormFloat64()
		if score > 0 {
			ds.Y[i] = 1
		}
	}
	heldout := make([][]relational.Value, h)
	for i := range heldout {
		heldout[i] = make([]relational.Value, d)
		row(heldout[i])
	}
	return ds, heldout
}

// fitted returns one fitted instance of every serializable binary learner.
func fitted(t *testing.T, train *ml.Dataset) map[string]ml.Classifier {
	t.Helper()
	out := map[string]ml.Classifier{}

	nbc := nb.New(nb.Config{})
	if err := nbc.Fit(train); err != nil {
		t.Fatal(err)
	}
	nbc.SetActive(2, false) // exercise the backward-selection mask
	out[KindNaiveBayes] = nbc

	tr := tree.New(tree.Config{Criterion: tree.Gini, MinSplit: 4, CP: 1e-3})
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	out[KindTree] = tr

	lr := linear.NewLogReg(linear.LogRegConfig{Lambda: 1e-3, Epochs: 5, Seed: 7})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	out[KindLogReg] = lr

	for _, kind := range []svm.KernelKind{svm.Linear, svm.RBF} {
		s, err := svm.New(svm.Config{Kernel: kind, C: 1, Gamma: 0.1, Seed: 3, MaxIter: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Fit(train); err != nil {
			t.Fatal(err)
		}
		out[KindSVM+"/"+kind.String()] = s
	}

	k := knn.New()
	if err := k.Fit(train); err != nil {
		t.Fatal(err)
	}
	out[KindOneNN] = k

	mlp := ann.New(ann.Config{Hidden1: 8, Hidden2: 4, Epochs: 2, Seed: 5})
	if err := mlp.Fit(train); err != nil {
		t.Fatal(err)
	}
	out[KindMLP] = mlp

	out[KindConstant] = &ml.ConstantClassifier{Class: 1}
	return out
}

func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("encode %s: %v", m.Kind, err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %s: %v", m.Kind, err)
	}
	if got.Kind != m.Kind {
		t.Fatalf("kind %q round-tripped to %q", m.Kind, got.Kind)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("%s: fingerprint changed across round trip", m.Kind)
	}
	// Determinism: re-encoding the decoded model must reproduce the bytes.
	var again bytes.Buffer
	if err := Encode(&again, got); err != nil {
		t.Fatalf("re-encode %s: %v", m.Kind, err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatalf("%s: encoding is not deterministic across a round trip", m.Kind)
	}
	return got
}

// TestRoundTripEveryLearner pins the core persistence contract: encode →
// decode yields a model with bit-identical predictions (and decision scores,
// where exposed) on a held-out batch, for every learner package.
func TestRoundTripEveryLearner(t *testing.T) {
	train, heldout := trainData(t, 1)
	for name, cls := range fitted(t, train) {
		t.Run(name, func(t *testing.T) {
			m, err := New(cls, train.Features, map[string]string{"origin": "test"})
			if err != nil {
				t.Fatal(err)
			}
			got := roundTrip(t, m)
			decoded, ok := got.Classifier()
			if !ok {
				t.Fatalf("decoded %s is not a classifier", name)
			}
			for i, row := range heldout {
				if want, have := cls.Predict(row), decoded.Predict(row); want != have {
					t.Fatalf("row %d: prediction %d became %d after round trip", i, want, have)
				}
			}
			if sc, ok := cls.(ml.Scorer); ok {
				dsc := decoded.(ml.Scorer)
				for i, row := range heldout {
					if want, have := sc.Decision(row), dsc.Decision(row); want != have {
						t.Fatalf("row %d: decision %v became %v after round trip", i, want, have)
					}
				}
			}
			if got.Meta["origin"] != "test" {
				t.Fatalf("metadata lost in round trip: %v", got.Meta)
			}
		})
	}
}

// TestRoundTripOneVsRest covers the multiclass ensemble: nested sub-model
// frames, identical class predictions after decode.
func TestRoundTripOneVsRest(t *testing.T) {
	features := []ml.Feature{
		{Name: "a", Cardinality: 4},
		{Name: "b", Cardinality: 3},
	}
	r := rng.New(9)
	const n, k = 120, 3
	mds := &multiclass.Dataset{
		Features: features,
		K:        k,
		X:        make([]relational.Value, n*2),
		Y:        make([]int, n),
	}
	for i := 0; i < n; i++ {
		mds.X[i*2] = relational.Value(r.Intn(4))
		mds.X[i*2+1] = relational.Value(r.Intn(3))
		mds.Y[i] = (int(mds.X[i*2]) + int(mds.X[i*2+1])) % k
	}
	ovr := &multiclass.OneVsRest{NewClassifier: func(class int) (ml.Classifier, error) {
		return linear.NewLogReg(linear.LogRegConfig{Epochs: 5, Seed: uint64(class)}), nil
	}}
	if err := ovr.Fit(mds); err != nil {
		t.Fatal(err)
	}
	m, err := New(ovr, features, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, m)
	decoded, ok := got.Impl.(*multiclass.OneVsRest)
	if !ok {
		t.Fatalf("decoded to %T", got.Impl)
	}
	if decoded.NumClasses() != k {
		t.Fatalf("decoded %d classes, want %d", decoded.NumClasses(), k)
	}
	buf := make([]relational.Value, 2)
	for a := 0; a < 4; a++ {
		for b := 0; b < 3; b++ {
			buf[0], buf[1] = relational.Value(a), relational.Value(b)
			if want, have := ovr.Predict(buf), decoded.Predict(buf); want != have {
				t.Fatalf("(%d,%d): class %d became %d after round trip", a, b, want, have)
			}
		}
	}
}

// TestSchemaMismatchTyped pins the typed rejection: any drift in the feature
// schema — renamed column, resized domain, flipped FK flag, dropped feature —
// surfaces as a *SchemaMismatchError.
func TestSchemaMismatchTyped(t *testing.T) {
	train, _ := trainData(t, 2)
	cls := &ml.ConstantClassifier{Class: 0}
	m, err := New(cls, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFeatures(train.Features); err != nil {
		t.Fatalf("identical schema rejected: %v", err)
	}
	mutate := map[string]func([]ml.Feature){
		"renamed":     func(f []ml.Feature) { f[0].Name = "away" },
		"resized":     func(f []ml.Feature) { f[1].Cardinality++ },
		"fk-flipped":  func(f []ml.Feature) { f[2].IsFK = true },
		"extra-col":   nil, // handled below
		"dropped-col": nil,
	}
	for name, fn := range mutate {
		feats := append([]ml.Feature(nil), train.Features...)
		switch name {
		case "extra-col":
			feats = append(feats, ml.Feature{Name: "new", Cardinality: 2})
		case "dropped-col":
			feats = feats[:len(feats)-1]
		default:
			fn(feats)
		}
		err := m.CheckFeatures(feats)
		var sme *SchemaMismatchError
		if !errors.As(err, &sme) {
			t.Fatalf("%s: got %v, want *SchemaMismatchError", name, err)
		}
		if sme.Want == sme.Got {
			t.Fatalf("%s: mismatch error carries equal fingerprints", name)
		}
	}
}

// TestDecodeRejectsCorruptSchema flips a byte inside the schema block and
// requires the fingerprint integrity check to refuse the artifact.
func TestDecodeRejectsCorruptSchema(t *testing.T) {
	train, _ := trainData(t, 3)
	m, err := New(&ml.ConstantClassifier{Class: 1}, train.Features, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The first feature name "home" appears right after magic + empty meta.
	at := bytes.Index(raw, []byte("home"))
	if at < 0 {
		t.Fatal("schema block not found")
	}
	raw[at] ^= 0x20
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted schema block decoded without error")
	}
}

// TestDecodeRejectsBadMagic requires a clear error on non-artifact input.
func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a model artifact"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestSaveLoad exercises the file boundary.
func TestSaveLoad(t *testing.T) {
	train, heldout := trainData(t, 4)
	cls := nb.New(nb.Config{})
	if err := cls.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := New(cls, train.Features, map[string]string{"dataset": "unit"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nb.model")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _ := got.Classifier()
	for i, row := range heldout {
		if cls.Predict(row) != decoded.Predict(row) {
			t.Fatalf("row %d: prediction changed across save/load", i)
		}
	}
	if got.Meta["dataset"] != "unit" {
		t.Fatalf("metadata lost: %v", got.Meta)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
