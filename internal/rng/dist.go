package rng

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. A skew parameter s = 0 degenerates to the uniform
// distribution, matching how the paper sweeps the "Zipfian skew parameter"
// from 0 upward in the foreign-key skew experiments (Figure 5 A–B).
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf(s) distribution over n values.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs n > 0")
	}
	if s < 0 {
		panic("rng: Zipf needs s >= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf}
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one value in [0, N).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NeedleAndThread samples integers in [0, n) where one designated value (the
// "needle", index 0) receives probability mass p and the remaining mass 1-p
// is spread uniformly over the other n-1 values (the "thread"). This is the
// second foreign-key skew model from the paper's Figure 5 C–D.
type NeedleAndThread struct {
	n int
	p float64
}

// NewNeedleAndThread constructs the distribution. It panics on invalid
// arguments (n < 2 or p outside [0, 1]).
func NewNeedleAndThread(n int, p float64) *NeedleAndThread {
	if n < 2 {
		panic("rng: NeedleAndThread needs n >= 2")
	}
	if p < 0 || p > 1 {
		panic("rng: needle probability must be in [0,1]")
	}
	return &NeedleAndThread{n: n, p: p}
}

// N returns the domain size.
func (d *NeedleAndThread) N() int { return d.n }

// Sample draws one value; index 0 is the needle.
func (d *NeedleAndThread) Sample(r *RNG) int {
	if r.Bernoulli(d.p) {
		return 0
	}
	return 1 + r.Intn(d.n-1)
}
