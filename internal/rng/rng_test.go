package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must not equal the parent's subsequent stream.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("parent and child streams matched %d/100 draws", equal)
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() []uint64 {
		r := New(99)
		c1 := r.Split()
		c2 := r.Split()
		out := make([]uint64, 0, 20)
		for i := 0; i < 10; i++ {
			out = append(out, c1.Uint64(), c2.Uint64())
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split streams not reproducible at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const k, n = 10, 100000
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("value %d frequency %v deviates from 0.1", v, frac)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermIsPermutationQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(17)
	const n = 50000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		frac := float64(hits) / n
		if math.Abs(frac-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, frac)
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	r := New(19)
	w := []float64{1, 2, 7}
	const n = 70000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-want[i]) > 0.01 {
			t.Fatalf("Categorical index %d frequency %v, want %v", i, frac, want[i])
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	r := New(29)
	const n = 100000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("Zipf(0) value %d frequency %v", v, frac)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	z := NewZipf(100, 2)
	r := New(31)
	const n = 50000
	first := 0
	for i := 0; i < n; i++ {
		if z.Sample(r) == 0 {
			first++
		}
	}
	// With s=2 over 100 values, P(0) = 1/H ≈ 0.62.
	frac := float64(first) / n
	if frac < 0.55 || frac > 0.70 {
		t.Fatalf("Zipf(2) head mass %v, want ≈0.62", frac)
	}
}

func TestZipfMonotoneProbabilities(t *testing.T) {
	z := NewZipf(50, 1.5)
	r := New(37)
	const n = 200000
	counts := make([]int, 50)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Allow small sampling noise but require broad monotone decrease.
	violations := 0
	for i := 1; i < 10; i++ {
		if counts[i] > counts[i-1] {
			violations++
		}
	}
	if violations > 0 {
		t.Fatalf("Zipf head counts not decreasing: %v", counts[:10])
	}
}

func TestNeedleAndThread(t *testing.T) {
	d := NewNeedleAndThread(40, 0.5)
	r := New(41)
	const n = 100000
	needle := 0
	thread := make([]int, 40)
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		thread[v]++
		if v == 0 {
			needle++
		}
	}
	frac := float64(needle) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("needle mass %v, want 0.5", frac)
	}
	// Thread values share the other half ≈ 0.5/39 each.
	for v := 1; v < 40; v++ {
		f := float64(thread[v]) / n
		if math.Abs(f-0.5/39) > 0.005 {
			t.Fatalf("thread value %d mass %v", v, f)
		}
	}
}

func TestNeedleAndThreadExtremes(t *testing.T) {
	r := New(43)
	all := NewNeedleAndThread(5, 1)
	for i := 0; i < 100; i++ {
		if all.Sample(r) != 0 {
			t.Fatal("p=1 must always return the needle")
		}
	}
	none := NewNeedleAndThread(5, 0)
	for i := 0; i < 100; i++ {
		if none.Sample(r) == 0 {
			t.Fatal("p=0 must never return the needle")
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	// Must not panic and must produce variation.
	a, b := r.Uint64(), r.Uint64()
	if a == b {
		t.Fatal("zero-value RNG produced identical consecutive values")
	}
}

func TestShuffleSwapCoverage(t *testing.T) {
	r := New(47)
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	// Same multiset.
	seen := map[string]int{}
	for _, v := range xs {
		seen[v]++
	}
	for _, v := range orig {
		seen[v]--
	}
	for k, c := range seen {
		if c != 0 {
			t.Fatalf("shuffle changed multiset at %q", k)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(10000, 1.2)
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Sample(r)
	}
	_ = sink
}
