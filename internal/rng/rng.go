// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in this repository.
//
// All experiments in the paper reproduction are Monte-Carlo style: the same
// configuration must yield the same datasets, the same train/validation/test
// splits, and the same learned models on every run. The standard library's
// math/rand is seedable but offers no principled way to derive independent
// streams for parallel simulation runs. RNG wraps a SplitMix64 state with a
// Split operation that derives statistically independent child generators,
// so run i of a 100-run simulation always sees the same stream regardless of
// scheduling.
package rng

import "math"

// RNG is a small, fast, splittable pseudo-random generator based on
// SplitMix64 (Steele, Lea, Flood; OOPSLA 2014). The zero value is a valid
// generator seeded with 0; prefer New for explicit seeding.
type RNG struct {
	state uint64
	gamma uint64
}

// goldenGamma is the odd constant used to advance SplitMix64 state.
const goldenGamma = 0x9E3779B97F4A7C15

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed, gamma: goldenGamma}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche of the input.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// mixGamma derives an odd gamma with enough bit transitions to keep the
// derived stream well distributed.
func mixGamma(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCD
	z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53
	z = (z ^ (z >> 33)) | 1
	// Ensure a reasonable number of 01/10 bit pairs; fix up weak gammas.
	if popcount(z^(z>>1)) < 24 {
		z ^= 0xAAAAAAAAAAAAAAAA
	}
	return z
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	if r.gamma == 0 {
		r.gamma = goldenGamma
	}
	r.state += r.gamma
	return mix64(r.state)
}

// Split returns a new generator whose stream is statistically independent of
// the parent's subsequent output. Both parent and child remain usable.
func (r *RNG) Split() *RNG {
	s := r.Uint64()
	g := mixGamma(r.Uint64())
	return &RNG{state: s, gamma: g}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin toss.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes xs in place (Fisher–Yates).
func (r *RNG) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical samples an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise Categorical panics.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: non-positive weight sum")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
