package core

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/svm"
)

// This file is the accuracy-level verification tier: the registry of
// approximate training kernels and the harness that gates each one against
// its bit-exact reference across the paper's dataset × engine matrix. It is
// the single implementation behind the core tests, `hamlet -verify
// accuracy`, and CI's accuracy-gate job — they differ only in how they
// render the cells. ml.CompareClassifiers does the per-pair measurement;
// this layer owns what to train and where the tolerances sit.

// ApproxKernel is one approximate training path registered with the
// accuracy gate: a bit-exact reference constructor, the approximate sibling
// (identical hyper-parameters, approximate algorithm), and the tolerance
// its held-out divergence must stay inside.
type ApproxKernel struct {
	Name        string
	Description string
	Tol         ml.Tolerance
	Ref, Approx func(seed uint64) (ml.Classifier, error)
}

// Verification tolerances, anchored at the gate's standard run (scale 256,
// seed 1; see VerifyOptions defaults).
//
// AccDelta is the primary bound — the paper's comparisons turn on held-out
// accuracy, and the JoinAll-vs-NoJoin gaps it reports span ~5–15 points, so
// a 3-point band keeps "equivalent" an order below "the effect being
// studied". On the smallest holdout in the matrix (Flights, ~66 test rows
// at scale 256) that is two flipped examples of headroom over the measured
// deltas (≤1.5 points, ARCHITECTURE.md "Verification tiers").
//
// Disagreement and LossDelta are backstops for failure modes accuracy
// cannot see: accuracies cancel when a model trades wins for losses, so the
// disagreement bound caps how differently-wrong the two models may be
// (measured: ≤14% of holdout flips, all near the decision boundary; the cap
// rejects the wholesale-flip regime), and the log-loss bound catches
// probability miscalibration behind unchanged argmax classes (measured:
// ≤0.16 mean-NLL delta).
const (
	gateAccDelta     = 0.03
	gateDisagreement = 0.20
	gateLossDelta    = 0.25
)

// approxSVM mirrors the EffortFast SVM grid point the benches use; only
// ErrorCache differs between reference and sibling.
func approxSVM(errorCache bool) func(seed uint64) (ml.Classifier, error) {
	return func(seed uint64) (ml.Classifier, error) {
		return svm.New(svm.Config{
			Kernel:       svm.RBF,
			C:            10,
			Gamma:        0.1,
			SubsampleCap: 400,
			Seed:         seed,
			ErrorCache:   errorCache,
		})
	}
}

// approxANN mirrors the EffortFast ANN shape; only FusedAdam differs.
func approxANN(fused bool) func(seed uint64) (ml.Classifier, error) {
	return func(seed uint64) (ml.Classifier, error) {
		return ann.New(ann.Config{
			Hidden1:      32,
			Hidden2:      16,
			LearningRate: 1e-2,
			Epochs:       10,
			Seed:         seed,
			FusedAdam:    fused,
		}), nil
	}
}

// ApproxKernels returns the registry of approximate kernels the accuracy
// gate covers. Every future approximate path (early stopping, sampling,
// quantized columns) registers here and inherits the full matrix run.
func ApproxKernels() []ApproxKernel {
	return []ApproxKernel{
		{
			Name:        "svm-errorcache",
			Description: "incremental-E SMO with max-violating-pair selection (svm.Config.ErrorCache)",
			Tol:         ml.Tolerance{AccDelta: gateAccDelta, Disagreement: gateDisagreement},
			Ref:         approxSVM(false),
			Approx:      approxSVM(true),
		},
		{
			Name:        "ann-fusedadam",
			Description: "dense fused Adam over contiguous slabs (ann.Config.FusedAdam)",
			Tol:         ml.Tolerance{AccDelta: gateAccDelta, Disagreement: gateDisagreement, LossDelta: gateLossDelta},
			Ref:         approxANN(false),
			Approx:      approxANN(true),
		},
	}
}

// VerifyDatasets is the standard dataset axis of the accuracy gate: the
// three real-world schemas the paper's headline comparisons use.
func VerifyDatasets() []string { return []string{"Flights", "Yelp", "Expedia"} }

// VerifyEngines is the standard engine axis: every storage engine feeds the
// same training kernels, so the gate exercises each scan path.
func VerifyEngines() []Engine { return []Engine{EngineRow, EngineColumnar, EngineSegmented} }

// VerifyCell is one (kernel, dataset, engine) accuracy-gate measurement.
type VerifyCell struct {
	Kernel  string
	Dataset string
	Engine  Engine
	Delta   ml.EquivDelta
	// Err is nil when the divergence is inside the kernel's tolerance.
	Err error
}

// VerifyOptions parameterizes a VerifyAccuracy run; zero values take the
// standard matrix (all registered kernels, VerifyDatasets × VerifyEngines,
// scale 256, seed 1).
type VerifyOptions struct {
	Scale    int
	Seed     uint64
	Datasets []string
	Engines  []Engine
	Kernels  []ApproxKernel
}

func (o *VerifyOptions) fillDefaults() {
	if o.Scale <= 0 {
		o.Scale = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Datasets) == 0 {
		o.Datasets = VerifyDatasets()
	}
	if len(o.Engines) == 0 {
		o.Engines = VerifyEngines()
	}
	if len(o.Kernels) == 0 {
		o.Kernels = ApproxKernels()
	}
}

// VerifyAccuracy trains every registered approximate kernel next to its
// bit-exact reference across the dataset × engine matrix and measures the
// held-out divergence of each pair on the test split. It returns every
// cell (passing and failing, in deterministic matrix order) plus an error
// summarizing the failures, nil when the whole matrix is inside tolerance.
// Infrastructure failures (dataset generation, training) abort the run —
// they are bugs, not gate verdicts.
func VerifyAccuracy(o VerifyOptions) ([]VerifyCell, error) {
	o.fillDefaults()
	var cells []VerifyCell
	failed := 0
	for _, name := range o.Datasets {
		spec, err := dataset.SpecByName(name)
		if err != nil {
			return cells, err
		}
		for _, engine := range o.Engines {
			ss, err := dataset.Generate(spec, o.Scale, o.Seed)
			if err != nil {
				return cells, err
			}
			env, err := NewEnvEngine(ss, o.Seed, engine)
			if err != nil {
				return cells, err
			}
			train, _, test, err := env.ViewSplits(ml.JoinAll, nil)
			if err != nil {
				env.Close()
				return cells, err
			}
			for _, k := range o.Kernels {
				ref, err := k.Ref(o.Seed)
				if err != nil {
					env.Close()
					return cells, fmt.Errorf("%s ref: %w", k.Name, err)
				}
				approx, err := k.Approx(o.Seed)
				if err != nil {
					env.Close()
					return cells, fmt.Errorf("%s approx: %w", k.Name, err)
				}
				if err := ref.Fit(train); err != nil {
					env.Close()
					return cells, fmt.Errorf("%s ref fit on %s/%s: %w", k.Name, name, engine, err)
				}
				if err := approx.Fit(train); err != nil {
					env.Close()
					return cells, fmt.Errorf("%s approx fit on %s/%s: %w", k.Name, name, engine, err)
				}
				delta := ml.CompareClassifiers(ref, approx, test)
				cell := VerifyCell{Kernel: k.Name, Dataset: name, Engine: engine, Delta: delta}
				if err := k.Tol.Check(delta); err != nil {
					cell.Err = fmt.Errorf("%s on %s/%s: %w", k.Name, name, engine, err)
					failed++
				}
				cells = append(cells, cell)
			}
			if err := env.Close(); err != nil {
				return cells, err
			}
		}
	}
	if failed > 0 {
		return cells, fmt.Errorf("accuracy gate: %d of %d cells outside tolerance", failed, len(cells))
	}
	return cells, nil
}
