// Package core is the paper's contribution packaged as a library: deciding —
// from schema metadata alone — whether a key–foreign-key join can be avoided
// before training a classifier, and the experiment harness that validates
// the decision rule (Tables 2–6, Figure 1).
//
// The decision statistic is the tuple ratio n_S / n_R: the number of labeled
// examples per distinct foreign-key value. The paper's empirical findings
// give per-model-family safety thresholds:
//
//	linear models (Naive Bayes, logistic regression, linear SVM): ≈ 20×
//	RBF-SVM:                                                      ≈ 6×
//	decision trees and ANNs:                                      ≈ 3×
//
// Crucially, computing the tuple ratio needs only the dimension table's
// *cardinality* — available from schema metadata or a COUNT(*) — so a data
// scientist can decide whether to procure a table without ever seeing it.
package core

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// recoverCorrupt converts a *relational.CorruptSegmentError panic — the
// storage layer's only way to report a bad segment read through the
// error-less Relation interface — into a returned error at the training and
// eval entry points. Any other panic is re-thrown untouched. ml.ParallelFor
// re-delivers worker panics on the calling goroutine, so this one deferred
// recover covers the morsel-parallel training paths too.
func recoverCorrupt(errp *error) {
	if r := recover(); r != nil {
		if cse, ok := r.(*relational.CorruptSegmentError); ok {
			*errp = cse
			return
		}
		panic(r)
	}
}

// Family groups classifiers by their observed robustness to avoiding joins.
type Family int

const (
	// FamilyLinear covers Naive Bayes, logistic regression, linear SVM.
	FamilyLinear Family = iota
	// FamilyRBFSVM covers kernel SVMs.
	FamilyRBFSVM
	// FamilyTreeANN covers decision trees and multilayer perceptrons.
	FamilyTreeANN
)

func (f Family) String() string {
	switch f {
	case FamilyLinear:
		return "linear"
	case FamilyRBFSVM:
		return "rbf-svm"
	case FamilyTreeANN:
		return "tree/ann"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Threshold returns the tuple-ratio safety threshold for a model family
// (§3.3: "the decision trees and ANN need six times fewer training examples
// and the RBF-SVM needs three times fewer than linear classifiers").
func Threshold(f Family) float64 {
	switch f {
	case FamilyLinear:
		return 20
	case FamilyRBFSVM:
		return 6
	case FamilyTreeANN:
		return 3
	default:
		return 20 // conservative fallback
	}
}

// Advice is the per-dimension-table recommendation of the advisor.
type Advice struct {
	Dimension  string
	TupleRatio float64
	// SafeToAvoid reports whether the join can be skipped for the family.
	SafeToAvoid bool
	// OpenFK marks a dimension reached through an open-domain foreign key:
	// its FK can never act as a representative feature, so the table can
	// never be discarded this way (Expedia's searches table).
	OpenFK bool
}

// Advise evaluates every dimension table of a star schema against the
// family's tuple-ratio threshold. This is the paper's data-sourcing
// "advisor": tables marked SafeToAvoid need not be procured at all.
func Advise(ss *relational.StarSchema, f Family) ([]Advice, error) {
	var out []Advice
	for _, fkCol := range ss.Fact.Schema().ColumnsOfKind(relational.KindForeignKey) {
		c := ss.Fact.Schema().Cols[fkCol]
		tr, err := ss.TupleRatio(c.Refs)
		if err != nil {
			return nil, err
		}
		a := Advice{Dimension: c.Refs, TupleRatio: tr, OpenFK: c.Open}
		a.SafeToAvoid = !c.Open && tr >= Threshold(f)
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: star schema has no foreign keys to advise on")
	}
	return out, nil
}

// Engine selects the physical storage strategy an experiment Env reads its
// joined relation through. All engines produce bit-identical experiment
// results (same split permutation, same cell values); they differ in memory
// layout and therefore in which access pattern is fast. The zero value is
// EngineColumnar: with every learner training column-at-a-time (NB, tree,
// logreg, SVM, ANN), sequential narrow-column scans are the hot access
// pattern, so columnar storage is the default engine.
type Engine int

const (
	// EngineColumnar (the default) evaluates the join once into a
	// width-narrowed struct-of-arrays ColumnarTable. It trades one
	// O(n_S · width) materialization pass (into storage that is typically
	// *smaller* than the fact table's row-major block, since dictionary
	// codes narrow to uint8/uint16) for sequential single-column scans on
	// the learners' batch training path.
	EngineColumnar Engine = iota
	// EngineRow keeps the factorized zero-copy pipeline: the join stays a
	// JoinView over the row-major base tables, nothing is materialized, and
	// cell accesses resolve the FK indirection lazily. It remains the right
	// choice when data is scanned only a bounded number of times and the
	// one-time columnar materialization would dominate.
	EngineRow
	// EngineSegmented evaluates the join into a relational.SegmentedTable:
	// the same width-narrowed columnar storage as EngineColumnar, partitioned
	// into fixed-size immutable segments with per-segment zone maps. Training
	// morsels fan out segment-per-task, selective scans skip segments their
	// zone maps prove irrelevant, and — with SegmentDefaults.SpillDir set —
	// sealed segments spill to a heap file under an LRU cache budget so fact
	// tables larger than RAM still train, bit-identically.
	EngineSegmented
)

func (e Engine) String() string {
	switch e {
	case EngineRow:
		return "row"
	case EngineColumnar:
		return "col"
	case EngineSegmented:
		return "seg"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses the -engine flag values "row", "col", and "seg".
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "row":
		return EngineRow, nil
	case "col", "columnar":
		return EngineColumnar, nil
	case "seg", "segmented":
		return EngineSegmented, nil
	default:
		return EngineColumnar, fmt.Errorf("core: unknown storage engine %q (want row, col, or seg)", s)
	}
}

// SegmentDefaults configures every SegmentedTable the EngineSegmented env
// constructor builds: segment size, spill directory, and cache budget.
// cmd/hamlet's -segsize / -spilldir / -cachebytes flags write it before any
// env exists; the zero value means in-memory segments of
// relational.DefaultSegmentSize rows.
var SegmentDefaults relational.SegmentOptions

// Env is a dataset prepared for experiments: the (factorized) join of a
// star schema and the paper's fixed 50/25/25 train/validation/test split of
// it. Since the columnar flip Joined is a relational.ColumnarTable by
// default — the factorized join is evaluated once into width-narrowed
// struct-of-arrays storage; the split parts are index views over it and
// every batched ScanFeature a learner issues bottoms out in a sequential
// scan of one narrow column. NewEnvRow keeps the zero-copy JoinView pipeline
// (the joined table never exists physically, FK indirection resolves per
// access); NewEnvMaterialized restores the historical eager row-major
// pipeline. All three yield bit-identical results.
type Env struct {
	Star      *relational.StarSchema
	Joined    relational.Relation
	TargetCol int
	Split     relational.Split

	// spillDir/fs are set by NewEnvSegmented when the out-of-core tier is
	// active; Close sweeps the directory for orphaned heap files with them.
	spillDir string
	fs       fault.FS
}

// NewEnv prepares the experiment Env on the default storage engine
// (EngineColumnar). The split is seeded and retained, mirroring the paper's
// "pre-split, retained as is" protocol.
func NewEnv(ss *relational.StarSchema, seed uint64) (*Env, error) {
	return NewEnvColumnar(ss, seed)
}

// NewEnvRow builds the factorized zero-copy pipeline: the join stays a
// relational.JoinView and the lazy split views sit directly on it, so no
// joined storage of any layout is ever materialized.
func NewEnvRow(ss *relational.StarSchema, seed uint64) (*Env, error) {
	joined, err := relational.NewJoinView(ss)
	if err != nil {
		return nil, err
	}
	return newEnvOver(ss, joined, seed)
}

// NewEnvColumnar builds the Env on the columnar storage engine: the
// factorized join is evaluated once into a relational.ColumnarTable and the
// lazy split views sit on top of it, so every ScanFeature a learner issues
// bottoms out in a sequential scan of one narrow column vector.
func NewEnvColumnar(ss *relational.StarSchema, seed uint64) (*Env, error) {
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		return nil, err
	}
	joined := relational.MaterializeColumnar(jv, ss.Fact.Name+"_joined")
	return newEnvOver(ss, joined, seed)
}

// NewEnvSegmented builds the Env on the segmented columnar engine: the
// factorized join is evaluated once, segment-chunk-at-a-time, into a
// relational.SegmentedTable configured by SegmentDefaults. With a spill
// directory the env's joined relation lives mostly on disk; the caller owns
// the table's lifetime (Env.Close releases the heap file and sweeps the
// spill directory for orphans). A failure after the table exists closes it,
// so no error path strands a heap file.
func NewEnvSegmented(ss *relational.StarSchema, seed uint64) (env *Env, err error) {
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		return nil, err
	}
	joined, err := relational.MaterializeSegmented(jv, ss.Fact.Name+"_joined", SegmentDefaults)
	if err != nil {
		return nil, err
	}
	env, err = newEnvOver(ss, joined, seed)
	if err != nil {
		joined.Close()
		return nil, err
	}
	env.spillDir = SegmentDefaults.SpillDir
	env.fs = SegmentDefaults.FS
	return env, nil
}

// NewEnvEngine dispatches on the engine choice — the seam cmd/hamlet's
// -engine flag plugs into.
func NewEnvEngine(ss *relational.StarSchema, seed uint64, engine Engine) (*Env, error) {
	switch engine {
	case EngineRow:
		return NewEnvRow(ss, seed)
	case EngineSegmented:
		return NewEnvSegmented(ss, seed)
	default:
		return NewEnvColumnar(ss, seed)
	}
}

// NewEnvMaterialized is NewEnv with the historical eager pipeline: the join
// output and all three split parts are physical tables. It exists for
// A/B-testing the factorized path (the equivalence tests run one experiment
// config both ways) and for workloads that rescan the splits so many times
// that per-access indirection dominates.
func NewEnvMaterialized(ss *relational.StarSchema, seed uint64) (*Env, error) {
	joined, err := relational.Join(ss)
	if err != nil {
		return nil, err
	}
	env, err := newEnvOver(ss, joined, seed)
	if err != nil {
		return nil, err
	}
	env.Split = env.Split.Materialize(joined.Name)
	return env, nil
}

// newEnvOver splits any joined relation. The seeded permutation depends only
// on seed and row count, so lazy and materialized envs see identical splits.
func newEnvOver(ss *relational.StarSchema, joined relational.Relation, seed uint64) (*Env, error) {
	targetCol := joined.Schema().ColumnsOfKind(relational.KindTarget)[0]
	split, err := relational.PaperSplit(joined, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &Env{Star: ss, Joined: joined, TargetCol: targetCol, Split: split}, nil
}

// Close releases resources the joined relation holds — the segmented
// engine's spill heap file — and, when a spill directory is configured,
// sweeps it for orphaned heap and temp files left by error-aborted or
// crashed earlier runs. Envs on the other engines need no Close and treat
// it as a no-op. The env must not be read afterwards.
func (e *Env) Close() error {
	var err error
	if st, ok := e.Joined.(*relational.SegmentedTable); ok {
		err = st.Close()
	}
	if e.spillDir != "" {
		fsys := e.fs
		if fsys == nil {
			fsys = fault.OS
		}
		if _, serr := relational.SweepOrphans(fsys, e.spillDir); err == nil {
			err = serr
		}
	}
	return err
}

// ViewSplits builds the train/validation/test datasets for a feature view,
// optionally omitting specific dimension tables' foreign features.
func (e *Env) ViewSplits(v ml.View, omitDims map[string]bool) (train, val, test *ml.Dataset, err error) {
	cols := ml.ViewColumns(e.Joined, v, omitDims)
	if len(cols) == 0 {
		return nil, nil, nil, fmt.Errorf("core: view %v selects no features", v)
	}
	tc := e.TargetCol
	if train, err = ml.FromTable(e.Split.Train, cols, tc); err != nil {
		return nil, nil, nil, err
	}
	if val, err = ml.FromTable(e.Split.Validation, cols, tc); err != nil {
		return nil, nil, nil, err
	}
	if test, err = ml.FromTable(e.Split.Test, cols, tc); err != nil {
		return nil, nil, nil, err
	}
	return train, val, test, nil
}

// Result is the outcome of one (model, view) experiment cell — one entry of
// Tables 2/3 (test accuracy) with its Table 5/6 companion (train accuracy)
// and Figure 1 companion (wall-clock).
type Result struct {
	Model     string
	View      ml.View
	TestAcc   float64
	TrainAcc  float64
	ValAcc    float64
	BestPoint ml.GridPoint
	Elapsed   time.Duration
}

// Run executes one experiment cell: hyper-parameter search on the
// train/validation splits of the requested view, then evaluation on the
// holdout test split. Elapsed covers the entire tune+train+test pipeline,
// which is what Figure 1 times.
func Run(e *Env, v ml.View, spec Spec, seed uint64) (Result, error) {
	return RunOmit(e, v, nil, spec, seed)
}

// RunOmit is Run with extra dimension omissions (the Table 4 robustness
// sweep drops dimension tables one and two at a time). A corrupt spilled
// segment surfaces as a returned *relational.CorruptSegmentError, never as
// silently wrong training data.
func RunOmit(e *Env, v ml.View, omitDims map[string]bool, spec Spec, seed uint64) (res Result, err error) {
	defer recoverCorrupt(&err)
	train, val, test, err := e.ViewSplits(v, omitDims)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	c, point, valAcc, err := spec.Train(train, val, seed)
	if err != nil {
		return Result{}, fmt.Errorf("core: %s/%v: %w", spec.Name, v, err)
	}
	testAcc := ml.Accuracy(c, test)
	elapsed := time.Since(start)
	return Result{
		Model:     spec.Name,
		View:      v,
		TestAcc:   testAcc,
		TrainAcc:  ml.Accuracy(c, train),
		ValAcc:    valAcc,
		BestPoint: point,
		Elapsed:   elapsed,
	}, nil
}

// RobustnessRow is one row of the Table 4 sweep: which dimensions were
// omitted and the resulting test accuracy.
type RobustnessRow struct {
	Omitted []string
	TestAcc float64
}

// RobustnessSweep reproduces Table 4: starting from JoinAll, drop dimension
// tables one at a time (and, when the schema has at least three dimensions,
// two at a time, as the paper does for Flights), plus the all-dropped NoJoin
// row and the baseline JoinAll row.
func RobustnessSweep(e *Env, spec Spec, seed uint64) ([]RobustnessRow, error) {
	dims := e.Star.DimensionNames()
	var rows []RobustnessRow

	run := func(omit []string) error {
		omitSet := make(map[string]bool, len(omit))
		for _, d := range omit {
			omitSet[d] = true
		}
		res, err := RunOmit(e, ml.JoinAll, omitSet, spec, seed)
		if err != nil {
			return err
		}
		rows = append(rows, RobustnessRow{Omitted: omit, TestAcc: res.TestAcc})
		return nil
	}

	if err := run(nil); err != nil { // JoinAll baseline
		return nil, err
	}
	for _, d := range dims {
		if err := run([]string{d}); err != nil {
			return nil, err
		}
	}
	if len(dims) >= 3 {
		for i := 0; i < len(dims); i++ {
			for j := i + 1; j < len(dims); j++ {
				if err := run([]string{dims[i], dims[j]}); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := run(append([]string(nil), dims...)); err != nil { // ≡ NoJoin
		return nil, err
	}
	return rows, nil
}

// RuntimeComparison reports the Figure 1 measurement for one model on one
// dataset: end-to-end wall-clock under JoinAll vs NoJoin and the speedup.
type RuntimeComparison struct {
	Model   string
	JoinAll time.Duration
	NoJoin  time.Duration
}

// Speedup returns JoinAll time / NoJoin time.
func (rc RuntimeComparison) Speedup() float64 {
	if rc.NoJoin <= 0 {
		return 0
	}
	return float64(rc.JoinAll) / float64(rc.NoJoin)
}

// RuntimeStudy times the full tune+train+test pipeline under both views.
func RuntimeStudy(e *Env, spec Spec, seed uint64) (RuntimeComparison, error) {
	ja, err := Run(e, ml.JoinAll, spec, seed)
	if err != nil {
		return RuntimeComparison{}, err
	}
	nj, err := Run(e, ml.NoJoin, spec, seed)
	if err != nil {
		return RuntimeComparison{}, err
	}
	return RuntimeComparison{Model: spec.Name, JoinAll: ja.Elapsed, NoJoin: nj.Elapsed}, nil
}
