package core

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
)

// fixedClass predicts one class and ignores Fit (unlike
// ml.ConstantClassifier, which re-learns the training majority) — the
// deterministic disagreement source for the violation-path test.
type fixedClass int8

func (c fixedClass) Fit(*ml.Dataset) error           { return nil }
func (c fixedClass) Predict([]relational.Value) int8 { return int8(c) }

// TestAccuracyGateApproxKernels runs the full accuracy-level verification
// matrix — every registered approximate kernel against its bit-exact
// reference on Flights/Yelp/Expedia under all three storage engines — and
// requires every cell inside tolerance. This is the test-suite face of the
// same harness `hamlet -verify accuracy` and the CI accuracy-gate job run.
func TestAccuracyGateApproxKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset × engine matrix; skipped in -short")
	}
	// The gate's standard run: VerifyOptions' defaults (scale 256, seed 1),
	// the same matrix the CI accuracy-gate job drives through hamlet. The
	// registered tolerances are calibrated at this scale.
	cells, err := VerifyAccuracy(VerifyOptions{})
	for _, c := range cells {
		t.Logf("%-16s %-8s %-9s refAcc=%.4f approxAcc=%.4f disagree=%.4f lossΔ=%.4f",
			c.Kernel, c.Dataset, c.Engine, c.Delta.RefAcc, c.Delta.ApproxAcc,
			c.Delta.Disagreement, c.Delta.LossDelta())
		if c.Err != nil {
			t.Errorf("cell outside tolerance: %v", c.Err)
		}
	}
	if err != nil {
		t.Fatalf("VerifyAccuracy: %v", err)
	}
	want := len(ApproxKernels()) * len(VerifyDatasets()) * len(VerifyEngines())
	if len(cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cells), want)
	}
}

// TestVerifyAccuracyReportsViolations pins the failure path with a stub
// kernel whose "approximate" side deterministically contradicts its
// reference: every cell must fail and the run must surface a summary error,
// while still returning the measured deltas for reporting.
func TestVerifyAccuracyReportsViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a dataset; skipped in -short")
	}
	k := ApproxKernel{
		Name: "stub-flip",
		Tol:  ml.Tolerance{Disagreement: 0.5},
		Ref: func(uint64) (ml.Classifier, error) {
			return fixedClass(0), nil
		},
		Approx: func(uint64) (ml.Classifier, error) {
			return fixedClass(1), nil
		},
	}
	cells, err := VerifyAccuracy(VerifyOptions{
		Scale:    1024,
		Datasets: []string{"Flights"},
		Engines:  []Engine{EngineColumnar},
		Kernels:  []ApproxKernel{k},
	})
	if err == nil {
		t.Fatal("impossible tolerance must produce a gate error")
	}
	if len(cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(cells))
	}
	if cells[0].Err == nil {
		t.Fatal("failing cell must carry its violation")
	}
}
