package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/relational"
)

// segEnvWithFaults builds a spilled segmented env whose pager runs over the
// given injector, restoring SegmentDefaults on cleanup.
func segEnvWithFaults(t *testing.T, fsys fault.FS) (*Env, string) {
	t.Helper()
	spec, err := dataset.SpecByName("Flights")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	old := SegmentDefaults
	SegmentDefaults = relational.SegmentOptions{
		SegmentSize: 128,
		SpillDir:    dir,
		CacheBytes:  1, // evict on every release: every read faults in from disk
		FS:          fsys,
	}
	t.Cleanup(func() { SegmentDefaults = old })
	env, err := NewEnvEngine(ss, 7, EngineSegmented)
	if err != nil {
		t.Fatal(err)
	}
	return env, dir
}

// TestFaultInjectedTrainingTypedError is the chaos contract for out-of-core
// training: with the spill path failing reads, BuildArtifact must return a
// typed *relational.CorruptSegmentError — never panic through the API, never
// train on wrong bytes — and the env must still close cleanly, sweeping its
// spill directory.
func TestFaultInjectedTrainingTypedError(t *testing.T) {
	inj := fault.NewInjector(fault.OS, 1,
		fault.Rule{Op: fault.OpRead, Kind: fault.KindEIO, Every: 1})
	env, dir := segEnvWithFaults(t, inj)

	spec := NaiveBayesBFSSpec()
	m, _, err := BuildArtifact(env, spec, 7, nil)
	if err == nil {
		// The faults never bit (all reads served from cache): the artifact
		// must then be a clean, complete model — but with CacheBytes 1 and
		// EIO on every pread that would mean the training never touched disk,
		// which the injector disproves.
		t.Fatalf("training succeeded despite EIO on every pread (model %v, fired %s)", m, inj.FiredString())
	}
	var cse *relational.CorruptSegmentError
	if !errors.As(err, &cse) {
		t.Fatalf("training error %v (%T), want *relational.CorruptSegmentError", err, err)
	}
	if cse.Table == "" || cse.Err == nil {
		t.Fatalf("corruption error incomplete: %+v", cse)
	}
	if !fault.IsDiskFault(cse.Err) {
		t.Fatalf("underlying error %v is not the injected disk fault", cse.Err)
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("injector never fired")
	}
	if err := env.Close(); err != nil {
		t.Fatalf("closing the faulted env: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty after Close: %v", ents)
	}
}

// TestEvalArtifactRecoversCorruption: the read-only entry point converts the
// same storage panic into a typed error too.
func TestEvalArtifactRecoversCorruption(t *testing.T) {
	// Train cleanly first (no faults) to get a valid artifact.
	cleanEnv, _ := segEnvWithFaults(t, nil)
	m, _, err := BuildArtifact(cleanEnv, NaiveBayesBFSSpec(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cleanEnv.Close(); err != nil {
		t.Fatal(err)
	}

	inj := fault.NewInjector(fault.OS, 1,
		fault.Rule{Op: fault.OpRead, Kind: fault.KindEIO, Every: 1})
	env, _ := segEnvWithFaults(t, inj)
	defer env.Close()
	if _, err := EvalArtifact(env, m); err == nil {
		t.Fatal("eval succeeded despite EIO on every pread")
	} else {
		var cse *relational.CorruptSegmentError
		if !errors.As(err, &cse) {
			t.Fatalf("eval error %v (%T), want *relational.CorruptSegmentError", err, err)
		}
	}
}

// TestEnvCloseSweepsOrphans: Env.Close removes segment artifacts a crashed
// sibling process (or an earlier panicked run) left in the spill directory.
func TestEnvCloseSweepsOrphans(t *testing.T) {
	env, dir := segEnvWithFaults(t, nil)
	for _, name := range []string{"crashed.seg", "crashed.seg.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "unrelated.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "unrelated.txt" {
		t.Fatalf("after Close the spill dir holds %v, want just unrelated.txt", ents)
	}
}

// TestModelDiffAfterFaultedRuns is the byte-identity half of the chaos
// contract: a training run whose injected faults happen never to fire (or
// only to add latency) must produce a bit-identical artifact to a fault-free
// run — fault plumbing alone cannot perturb training.
func TestModelDiffAfterFaultedRuns(t *testing.T) {
	cleanEnv, _ := segEnvWithFaults(t, nil)
	want, _, err := BuildArtifact(cleanEnv, NaiveBayesBFSSpec(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanEnv.Close()

	inj := fault.NewInjector(fault.OS, 1,
		fault.Rule{Op: fault.OpRead, Kind: fault.KindLatency, Every: 3})
	env, _ := segEnvWithFaults(t, inj)
	defer env.Close()
	got, _, err := BuildArtifact(env, NaiveBayesBFSSpec(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("latency faults never fired — the run proved nothing")
	}
	a, b := encodeModel(t, want), encodeModel(t, got)
	if a != b {
		t.Fatal("latency-faulted training produced different artifact bytes")
	}
}

func encodeModel(t *testing.T, m *model.Model) string {
	t.Helper()
	m.Meta = nil
	var buf bytes.Buffer
	if err := model.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
