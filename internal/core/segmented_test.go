package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/relational"
	"repro/internal/tree"
)

// TestSegmentedEngineMatchesColumnar is the acceptance check for the
// segmented storage engine: the same experiment cells run against
// EngineSegmented must produce bit-identical accuracies and grid winners to
// the single-slab columnar engine — segmentation changes morsel boundaries
// and adds zone maps, never cell values or reduction order.
func TestSegmentedEngineMatchesColumnar(t *testing.T) {
	spec, err := dataset.SpecByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewEnvEngine(ss, 7, EngineColumnar)
	if err != nil {
		t.Fatal(err)
	}
	// A small segment size forces multi-segment routing on this tiny env.
	old := SegmentDefaults
	SegmentDefaults = relational.SegmentOptions{SegmentSize: 128}
	defer func() { SegmentDefaults = old }()
	seg, err := NewEnvEngine(ss, 7, EngineSegmented)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	st, ok := seg.Joined.(*relational.SegmentedTable)
	if !ok {
		t.Fatalf("segmented env joined is %T, want *relational.SegmentedTable", seg.Joined)
	}
	if st.NumSegments() < 2 {
		t.Fatalf("only %d segments; the routing paths are untested", st.NumSegments())
	}
	for _, mspec := range []Spec{TreeSpec(tree.Gini, EffortFast), NaiveBayesBFSSpec()} {
		for _, v := range []ml.View{ml.JoinAll, ml.NoJoin} {
			cres, err := Run(col, v, mspec, 11)
			if err != nil {
				t.Fatalf("col %s/%v: %v", mspec.Name, v, err)
			}
			sres, err := Run(seg, v, mspec, 11)
			if err != nil {
				t.Fatalf("seg %s/%v: %v", mspec.Name, v, err)
			}
			if cres.TestAcc != sres.TestAcc || cres.TrainAcc != sres.TrainAcc || cres.ValAcc != sres.ValAcc {
				t.Fatalf("%s/%v diverged across engines: col (test %v train %v val %v) vs seg (test %v train %v val %v)",
					mspec.Name, v, cres.TestAcc, cres.TrainAcc, cres.ValAcc,
					sres.TestAcc, sres.TrainAcc, sres.ValAcc)
			}
			for k, pv := range cres.BestPoint {
				if sres.BestPoint[k] != pv {
					t.Fatalf("%s/%v picked different grid points: %v vs %v",
						mspec.Name, v, cres.BestPoint, sres.BestPoint)
				}
			}
		}
	}
}

// TestOutOfCoreArtifactsBitIdentical is the out-of-core acceptance pin: a
// spilled segmented env whose cache budget holds only a few segments must
// train NB and tree artifacts byte-identical to the fully in-memory columnar
// engine — paging segments through disk mid-training must be invisible at
// the artifact boundary.
func TestOutOfCoreArtifactsBitIdentical(t *testing.T) {
	dspec, err := dataset.SpecByName("Movies")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(dspec, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	old := SegmentDefaults
	SegmentDefaults = relational.SegmentOptions{
		SegmentSize: 256,
		SpillDir:    t.TempDir(),
		CacheBytes:  16 << 10,
	}
	defer func() { SegmentDefaults = old }()
	for _, mspec := range []Spec{TreeSpec(tree.Gini, EffortFast), NaiveBayesBFSSpec()} {
		var encoded [][]byte
		for _, engine := range []Engine{EngineColumnar, EngineSegmented} {
			env, err := NewEnvEngine(ss, 7, engine)
			if err != nil {
				t.Fatal(err)
			}
			if engine == EngineSegmented {
				st, ok := env.Joined.(*relational.SegmentedTable)
				if !ok {
					t.Fatalf("joined is %T, want *relational.SegmentedTable", env.Joined)
				}
				if !st.Spilled() {
					t.Fatal("segmented env did not spill; out-of-core path untested")
				}
			}
			artifact, _, err := BuildArtifact(env, mspec, 7, nil)
			if err != nil {
				t.Fatalf("%s/%v: %v", mspec.Name, engine, err)
			}
			var raw bytes.Buffer
			if err := model.Encode(&raw, artifact); err != nil {
				t.Fatal(err)
			}
			encoded = append(encoded, raw.Bytes())
			if err := env.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(encoded[0], encoded[1]) {
			t.Fatalf("%s: in-memory and out-of-core artifacts differ", mspec.Name)
		}
	}
}
