package core

import (
	"fmt"
	"strconv"

	"repro/internal/ml"
	"repro/internal/model"
)

// Artifact metadata keys written by BuildArtifact and read back by the
// serving binary to locate the star schema a model was trained on.
const (
	MetaDataset = "dataset"
	MetaScale   = "scale"
	MetaSeed    = "seed"
	MetaSpec    = "spec"
	MetaEngine  = "engine"
	MetaView    = "view"
	MetaValAcc  = "val_acc"
	MetaTestAcc = "test_acc"
)

// BuildArtifact runs the train half of the train → save → serve pipeline:
// tune and fit the spec on the env's JoinAll view (train/validation splits),
// evaluate on the holdout test split, and package the fitted classifier with
// its feature schema and provenance metadata into a persistable model. The
// extra metadata map is merged in (caller keys win on conflict).
func BuildArtifact(e *Env, spec Spec, seed uint64, extra map[string]string) (*model.Model, Result, error) {
	train, val, test, err := e.ViewSplits(ml.JoinAll, nil)
	if err != nil {
		return nil, Result{}, err
	}
	c, point, valAcc, err := spec.Train(train, val, seed)
	if err != nil {
		return nil, Result{}, fmt.Errorf("core: %s: %w", spec.Name, err)
	}
	res := Result{
		Model:     spec.Name,
		View:      ml.JoinAll,
		TestAcc:   ml.Accuracy(c, test),
		TrainAcc:  ml.Accuracy(c, train),
		ValAcc:    valAcc,
		BestPoint: point,
	}
	meta := map[string]string{
		MetaSpec:    spec.Name,
		MetaSeed:    strconv.FormatUint(seed, 10),
		MetaView:    ml.JoinAll.String(),
		MetaValAcc:  strconv.FormatFloat(valAcc, 'g', -1, 64),
		MetaTestAcc: strconv.FormatFloat(res.TestAcc, 'g', -1, 64),
	}
	for k, v := range extra {
		meta[k] = v
	}
	m, err := model.New(c, train.Features, meta)
	if err != nil {
		return nil, Result{}, err
	}
	return m, res, nil
}

// EvalArtifact scores a persisted model on the env's holdout test split
// after verifying the feature schema fingerprint — the load half of the
// pipeline. It returns the holdout test accuracy.
func EvalArtifact(e *Env, m *model.Model) (float64, error) {
	_, _, test, err := e.ViewSplits(ml.JoinAll, nil)
	if err != nil {
		return 0, err
	}
	if err := m.CheckFeatures(test.Features); err != nil {
		return 0, err
	}
	c, ok := m.Classifier()
	if !ok {
		return 0, fmt.Errorf("core: model kind %q is not a binary classifier", m.Kind)
	}
	return ml.Accuracy(c, test), nil
}
