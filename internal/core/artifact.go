package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obs"
)

// Artifact metadata keys written by BuildArtifact and read back by the
// serving binary to locate the star schema a model was trained on.
const (
	MetaDataset = "dataset"
	MetaScale   = "scale"
	MetaSeed    = "seed"
	MetaSpec    = "spec"
	MetaEngine  = "engine"
	MetaView    = "view"
	MetaValAcc  = "val_acc"
	MetaTestAcc = "test_acc"
	// MetaTimings holds the per-phase training-span deltas of this artifact's
	// Train call ("phase=ns/calls" pairs, comma-separated, phase-sorted).
	// Written only when EmbedTimings is set, so default artifact bytes stay
	// deterministic.
	MetaTimings = "train_timings"
)

// EmbedTimings gates MetaTimings. Off by default: timing values are
// wall-clock noise, and artifact byte-determinism (cross-engine equality
// tests, -modeldiff) depends on meta not varying run to run. hamlet -timings
// flips it for the one binary whose user asked to see the phase breakdown.
var EmbedTimings = false

// formatTimings renders train-phase deltas (after minus before) as a stable
// "phase=ns/calls,..." string, dropping phases this Train never entered.
func formatTimings(before, after map[string]obs.PhaseTotals) string {
	phases := make([]string, 0, len(after))
	for phase := range after {
		phases = append(phases, phase)
	}
	sort.Strings(phases)
	var b strings.Builder
	for _, phase := range phases {
		d := after[phase]
		if prev, ok := before[phase]; ok {
			d.Ns -= prev.Ns
			d.Calls -= prev.Calls
		}
		if d.Calls == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d/%d", phase, d.Ns, d.Calls)
	}
	return b.String()
}

// BuildArtifact runs the train half of the train → save → serve pipeline:
// tune and fit the spec on the env's JoinAll view (train/validation splits),
// evaluate on the holdout test split, and package the fitted classifier with
// its feature schema and provenance metadata into a persistable model. The
// extra metadata map is merged in (caller keys win on conflict).
// A corrupt spilled segment read during training or evaluation surfaces as
// a returned *relational.CorruptSegmentError.
func BuildArtifact(e *Env, spec Spec, seed uint64, extra map[string]string) (m *model.Model, res Result, err error) {
	defer recoverCorrupt(&err)
	train, val, test, err := e.ViewSplits(ml.JoinAll, nil)
	if err != nil {
		return nil, Result{}, err
	}
	var phasesBefore map[string]obs.PhaseTotals
	if EmbedTimings {
		phasesBefore = obs.TrainPhases()
	}
	c, point, valAcc, err := spec.Train(train, val, seed)
	if err != nil {
		return nil, Result{}, fmt.Errorf("core: %s: %w", spec.Name, err)
	}
	res = Result{
		Model:     spec.Name,
		View:      ml.JoinAll,
		TestAcc:   ml.Accuracy(c, test),
		TrainAcc:  ml.Accuracy(c, train),
		ValAcc:    valAcc,
		BestPoint: point,
	}
	meta := map[string]string{
		MetaSpec:    spec.Name,
		MetaSeed:    strconv.FormatUint(seed, 10),
		MetaView:    ml.JoinAll.String(),
		MetaValAcc:  strconv.FormatFloat(valAcc, 'g', -1, 64),
		MetaTestAcc: strconv.FormatFloat(res.TestAcc, 'g', -1, 64),
	}
	if EmbedTimings {
		if t := formatTimings(phasesBefore, obs.TrainPhases()); t != "" {
			meta[MetaTimings] = t
		}
	}
	for k, v := range extra {
		meta[k] = v
	}
	m, err = model.New(c, train.Features, meta)
	if err != nil {
		return nil, Result{}, err
	}
	return m, res, nil
}

// EvalArtifact scores a persisted model on the env's holdout test split
// after verifying the feature schema fingerprint — the load half of the
// pipeline. It returns the holdout test accuracy.
func EvalArtifact(e *Env, m *model.Model) (acc float64, err error) {
	defer recoverCorrupt(&err)
	_, _, test, err := e.ViewSplits(ml.JoinAll, nil)
	if err != nil {
		return 0, err
	}
	if err := m.CheckFeatures(test.Features); err != nil {
		return 0, err
	}
	c, ok := m.Classifier()
	if !ok {
		return 0, fmt.Errorf("core: model kind %q is not a binary classifier", m.Kind)
	}
	return ml.Accuracy(c, test), nil
}
