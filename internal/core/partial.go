package core

import (
	"fmt"

	"repro/internal/ml"
)

// PartialPoint is one point of the partial-join trade-off curve: how many
// foreign features of the target dimension were kept, and the resulting
// holdout accuracy.
type PartialPoint struct {
	Kept    int
	Feature []string
	TestAcc float64
	Elapsed float64 // seconds, so callers can plot cost vs accuracy
}

// PartialJoinSweep explores the §5.2 trade-off space for one dimension
// table: starting from NoJoin (zero foreign features of dim kept), add the
// dimension's foreign features one at a time (in schema order) and measure
// holdout accuracy at each step. Other dimensions contribute no foreign
// features throughout, isolating the target dimension's curve.
//
// The end points coincide with the paper's named views: Kept == 0 is NoJoin
// restricted to dim, and Kept == d_R is "join only this table".
func PartialJoinSweep(e *Env, dim string, spec Spec, seed uint64) ([]PartialPoint, error) {
	menu := ml.ForeignFeatureNames(e.Joined)
	feats, ok := menu[dim]
	if !ok {
		return nil, fmt.Errorf("core: dimension %q contributes no foreign features", dim)
	}
	var out []PartialPoint
	for k := 0; k <= len(feats); k++ {
		pspec := ml.PartialSpec{dim: feats[:k]}
		cols, err := ml.PartialViewColumns(e.Joined, pspec)
		if err != nil {
			return nil, err
		}
		train, err := ml.FromTable(e.Split.Train, cols, e.TargetCol)
		if err != nil {
			return nil, err
		}
		val, err := ml.FromTable(e.Split.Validation, cols, e.TargetCol)
		if err != nil {
			return nil, err
		}
		test, err := ml.FromTable(e.Split.Test, cols, e.TargetCol)
		if err != nil {
			return nil, err
		}
		c, _, _, err := spec.Train(train, val, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, PartialPoint{
			Kept:    k,
			Feature: append([]string(nil), feats[:k]...),
			TestAcc: ml.Accuracy(c, test),
		})
	}
	return out, nil
}
