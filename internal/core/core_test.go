package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/relational"
	"repro/internal/rng"
	"repro/internal/svm"
	"repro/internal/tree"
)

// smallEnv generates a heavily scaled Walmart-shaped dataset for fast tests.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	spec, err := dataset.SpecByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(ss, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestThresholds(t *testing.T) {
	if Threshold(FamilyLinear) != 20 || Threshold(FamilyRBFSVM) != 6 || Threshold(FamilyTreeANN) != 3 {
		t.Fatal("paper thresholds wrong")
	}
	if Threshold(Family(9)) != 20 {
		t.Fatal("fallback must be conservative")
	}
	if FamilyLinear.String() != "linear" || FamilyRBFSVM.String() != "rbf-svm" || FamilyTreeANN.String() != "tree/ann" {
		t.Fatal("family names wrong")
	}
	if Family(9).String() == "" {
		t.Fatal("unknown family must render")
	}
}

func TestAdviseRespectsThresholdsAndOpenFKs(t *testing.T) {
	// Yelp at scale 64: Businesses ratio ≈ 18.7 (unscaled tuple ratio,
	// advisor uses raw n_S/n_R = 2×Table-1), Users ≈ 4.9.
	spec, err := dataset.SpecByName("Yelp")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Trees tolerate ratio >= 3: both tables avoidable.
	treeAdvice, err := Advise(ss, FamilyTreeANN)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Advice{}
	for _, a := range treeAdvice {
		byName[a.Dimension] = a
	}
	if !byName["Businesses"].SafeToAvoid {
		t.Fatalf("Businesses (ratio %v) must be avoidable for trees", byName["Businesses"].TupleRatio)
	}
	if !byName["Users"].SafeToAvoid {
		t.Fatalf("Users (ratio %v ≈ 5) must be avoidable for trees (threshold 3)", byName["Users"].TupleRatio)
	}
	// Linear models need ratio >= 20: Users must NOT be avoidable.
	linAdvice, err := Advise(ss, FamilyLinear)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range linAdvice {
		if a.Dimension == "Users" && a.SafeToAvoid {
			t.Fatalf("Users ratio %v must not be avoidable for linear models", a.TupleRatio)
		}
	}
	// Open FKs are never avoidable regardless of ratio.
	espec, _ := dataset.SpecByName("Expedia")
	ess, err := dataset.Generate(espec, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	eAdvice, err := Advise(ess, FamilyTreeANN)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range eAdvice {
		if a.Dimension == "Searches" {
			if !a.OpenFK || a.SafeToAvoid {
				t.Fatalf("open-FK dimension must be flagged and not avoidable: %+v", a)
			}
		}
	}
}

func TestAdviseRejectsNoFKSchema(t *testing.T) {
	d2 := relational.NewDomain("Y", 2)
	fact := relational.NewTable("S", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: d2},
		relational.Column{Name: "x", Kind: relational.KindFeature, Domain: d2},
	), 4)
	for i := 0; i < 4; i++ {
		fact.MustAppendRow([]relational.Value{relational.Value(i % 2), relational.Value(i % 2)})
	}
	ss, err := relational.NewStarSchema(fact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(ss, FamilyLinear); err == nil {
		t.Fatal("schema without FKs must error")
	}
}

func TestEnvSplitsAreDisjointSizes(t *testing.T) {
	env := smallEnv(t)
	n := env.Joined.NumRows()
	got := env.Split.Train.NumRows() + env.Split.Validation.NumRows() + env.Split.Test.NumRows()
	if got != n {
		t.Fatalf("splits cover %d of %d rows", got, n)
	}
	frac := float64(env.Split.Train.NumRows()) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("train fraction %v, want 0.5", frac)
	}
}

func TestRunTreeOnAllViews(t *testing.T) {
	env := smallEnv(t)
	spec := TreeSpec(tree.Gini, EffortFast)
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
		res, err := Run(env, v, spec, 11)
		if err != nil {
			t.Fatalf("view %v: %v", v, err)
		}
		if res.TestAcc < 0.5 || res.TestAcc > 1 {
			t.Fatalf("view %v: implausible accuracy %v", v, res.TestAcc)
		}
		if res.Elapsed <= 0 {
			t.Fatalf("view %v: elapsed not measured", v)
		}
		if res.Model != "DecisionTree(gini)" {
			t.Fatalf("model name %q", res.Model)
		}
	}
}

func TestNoJoinTracksJoinAllOnHighTupleRatioData(t *testing.T) {
	// Walmart: both dims have high tuple ratios → tree NoJoin ≈ JoinAll.
	env := smallEnv(t)
	spec := TreeSpec(tree.Gini, EffortFast)
	ja, err := Run(env, ml.JoinAll, spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	nj, err := Run(env, ml.NoJoin, spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(ja.TestAcc - nj.TestAcc); diff > 0.03 {
		t.Fatalf("NoJoin %v must track JoinAll %v (diff %v)", nj.TestAcc, ja.TestAcc, diff)
	}
}

func TestRobustnessSweepShape(t *testing.T) {
	env := smallEnv(t)
	rows, err := RobustnessSweep(env, TreeSpec(tree.Gini, EffortFast), 17)
	if err != nil {
		t.Fatal(err)
	}
	// Walmart has q=2: JoinAll + 2 singles + NoJoin = 4 rows (no pairs).
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if len(rows[0].Omitted) != 0 {
		t.Fatal("first row must be the JoinAll baseline")
	}
	last := rows[len(rows)-1]
	if len(last.Omitted) != 2 {
		t.Fatalf("last row must omit all dimensions, got %v", last.Omitted)
	}
}

func TestRobustnessSweepPairsForThreeDims(t *testing.T) {
	spec, _ := dataset.SpecByName("Flights")
	ss, err := dataset.Generate(spec, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(ss, 19)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RobustnessSweep(env, TreeSpec(tree.Gini, EffortFast), 23)
	if err != nil {
		t.Fatal(err)
	}
	// q=3: 1 baseline + 3 singles + 3 pairs + 1 NoJoin = 8.
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
}

func TestRuntimeStudy(t *testing.T) {
	env := smallEnv(t)
	rc, err := RuntimeStudy(env, TreeSpec(tree.Gini, EffortFast), 29)
	if err != nil {
		t.Fatal(err)
	}
	if rc.JoinAll <= 0 || rc.NoJoin <= 0 {
		t.Fatal("durations must be positive")
	}
	if rc.Speedup() <= 0 {
		t.Fatal("speedup must be positive")
	}
	if (RuntimeComparison{}).Speedup() != 0 {
		t.Fatal("zero-duration speedup must be 0")
	}
}

func TestAllSpecsRoster(t *testing.T) {
	specs := AllSpecs(EffortFast, 200)
	if len(specs) != 10 {
		t.Fatalf("paper evaluates 10 classifiers, roster has %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		names[s.Name] = true
	}
	for _, want := range []string{
		"DecisionTree(gini)", "DecisionTree(information)", "DecisionTree(gain-ratio)",
		"1-NN", "SVM(linear)", "SVM(quadratic)", "SVM(rbf)",
		"ANN(MLP)", "NaiveBayes(BFS)", "LogisticRegression(L1)",
	} {
		if !names[want] {
			t.Fatalf("roster missing %q; has %v", want, names)
		}
	}
	if _, err := SpecByName("SVM(rbf)", EffortFast, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := SpecByName("nope", EffortFast, 100); err == nil {
		t.Fatal("unknown spec must error")
	}
}

func TestEverySpecRunsEndToEnd(t *testing.T) {
	// Integration: every classifier in the roster completes a tuned run on
	// a tiny dataset and produces sane accuracies.
	spec, _ := dataset.SpecByName("Walmart")
	ss, err := dataset.Generate(spec, 1024, 31)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(ss, 37)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSpecs(EffortFast, 150) {
		res, err := Run(env, ml.NoJoin, s, 41)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.TestAcc < 0.3 || res.TestAcc > 1 {
			t.Fatalf("%s: implausible accuracy %v", s.Name, res.TestAcc)
		}
	}
}

func TestFullGridsMatchPaper(t *testing.T) {
	// The EffortFull grids must enumerate the paper's §3.2 axes exactly.
	tr := TreeSpec(tree.Gini, EffortFull)
	_ = tr
	grid := ml.NewGrid().Axis("minsplit", 1, 10, 100, 1000).Axis("cp", 1e-4, 1e-3, 0.01, 0.1, 0)
	if got := len(grid.Points()); got != 20 {
		t.Fatalf("tree grid = %d points, want 20", got)
	}
	svmGrid := ml.NewGrid().Axis("C", 0.1, 1, 10, 100, 1000).Axis("gamma", 1e-4, 1e-3, 0.01, 0.1, 1, 10)
	if got := len(svmGrid.Points()); got != 30 {
		t.Fatalf("svm grid = %d points, want 30", got)
	}
}

func TestRunOmitUnknownViewColumns(t *testing.T) {
	env := smallEnv(t)
	// Omitting every dimension on a dS=1 dataset still leaves home + FKs,
	// so this must succeed; but a NoJoin view omitting nothing more also
	// works. Exercise the error path with an impossible view: NoFK on a
	// schema where NoFK still has features won't error, so instead verify
	// RunOmit omits correctly by comparing accuracies.
	all := map[string]bool{"Stores": true, "Indicators": true}
	res, err := RunOmit(env, ml.JoinAll, all, TreeSpec(tree.Gini, EffortFast), 43)
	if err != nil {
		t.Fatal(err)
	}
	nj, err := Run(env, ml.NoJoin, TreeSpec(tree.Gini, EffortFast), 43)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc != nj.TestAcc {
		t.Fatalf("omitting all dims must equal NoJoin: %v vs %v", res.TestAcc, nj.TestAcc)
	}
}

func TestSVMSpecUsesSubsampleCap(t *testing.T) {
	// Just verify an RBF spec runs on a small env without error and within
	// the cap (indirect: it completes quickly).
	env := smallEnv(t)
	res, err := Run(env, ml.NoJoin, SVMSpec(svm.RBF, EffortFast, 120), 47)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestAcc < 0.3 {
		t.Fatalf("capped SVM accuracy %v implausible", res.TestAcc)
	}
}

func TestNewEnvDeterministicSplit(t *testing.T) {
	spec, _ := dataset.SpecByName("Books")
	ss, err := dataset.Generate(spec, 512, 53)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := NewEnv(ss, 59)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEnv(ss, 59)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Split.Train.At(0, 0) != e2.Split.Train.At(0, 0) {
		t.Fatal("env split not deterministic")
	}
	_ = rng.New(1) // keep import
}

func TestFactorizedPipelineMatchesMaterialized(t *testing.T) {
	// Acceptance check for the zero-copy refactor: the JoinView +
	// view-backed-Dataset pipeline must produce bit-identical accuracies to
	// the historical materialized pipeline — same seeds, same split
	// permutation, same grid winner.
	spec, err := dataset.SpecByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewEnvRow(ss, 7)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := NewEnvMaterialized(ss, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lazy.Joined.(*relational.JoinView); !ok {
		t.Fatalf("lazy env joined is %T, want *relational.JoinView", lazy.Joined)
	}
	if _, ok := eager.Joined.(*relational.Table); !ok {
		t.Fatalf("eager env joined is %T, want *relational.Table", eager.Joined)
	}
	for _, mspec := range []Spec{TreeSpec(tree.Gini, EffortFast), OneNNSpec(), NaiveBayesBFSSpec()} {
		for _, v := range []ml.View{ml.JoinAll, ml.NoJoin} {
			lres, err := Run(lazy, v, mspec, 11)
			if err != nil {
				t.Fatalf("lazy %s/%v: %v", mspec.Name, v, err)
			}
			eres, err := Run(eager, v, mspec, 11)
			if err != nil {
				t.Fatalf("eager %s/%v: %v", mspec.Name, v, err)
			}
			if lres.TestAcc != eres.TestAcc || lres.TrainAcc != eres.TrainAcc || lres.ValAcc != eres.ValAcc {
				t.Fatalf("%s/%v diverged: lazy (test %v train %v val %v) vs eager (test %v train %v val %v)",
					mspec.Name, v, lres.TestAcc, lres.TrainAcc, lres.ValAcc,
					eres.TestAcc, eres.TrainAcc, eres.ValAcc)
			}
			for k, pv := range lres.BestPoint {
				if eres.BestPoint[k] != pv {
					t.Fatalf("%s/%v picked different grid points: %v vs %v",
						mspec.Name, v, lres.BestPoint, eres.BestPoint)
				}
			}
		}
	}
}

func TestPartialJoinSweep(t *testing.T) {
	env := smallEnv(t)
	pts, err := PartialJoinSweep(env, "Stores", TreeSpec(tree.Gini, EffortFast), 61)
	if err != nil {
		t.Fatal(err)
	}
	// Walmart's Stores table has 9 foreign features → 10 sweep points.
	if len(pts) != 10 {
		t.Fatalf("got %d sweep points, want 10", len(pts))
	}
	if pts[0].Kept != 0 || pts[9].Kept != 9 {
		t.Fatalf("endpoints wrong: %+v %+v", pts[0], pts[9])
	}
	for _, p := range pts {
		if p.TestAcc < 0.4 || p.TestAcc > 1 {
			t.Fatalf("kept=%d: implausible accuracy %v", p.Kept, p.TestAcc)
		}
		if len(p.Feature) != p.Kept {
			t.Fatalf("kept=%d but %d feature names recorded", p.Kept, len(p.Feature))
		}
	}
	if _, err := PartialJoinSweep(env, "Nope", TreeSpec(tree.Gini, EffortFast), 61); err == nil {
		t.Fatal("unknown dimension must error")
	}
}

func TestPrunedTreeSpec(t *testing.T) {
	env := smallEnv(t)
	spec := PrunedTreeSpec(tree.Gini)
	res, err := Run(env, ml.NoJoin, spec, 67)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "PrunedDecisionTree(gini)" {
		t.Fatalf("model name %q", res.Model)
	}
	if res.TestAcc < 0.5 {
		t.Fatalf("pruned-tree accuracy %v implausible", res.TestAcc)
	}
	// The pruned tree should not be dramatically worse than the tuned
	// pre-pruned tree on the same view.
	base, err := Run(env, ml.NoJoin, TreeSpec(tree.Gini, EffortFast), 67)
	if err != nil {
		t.Fatal(err)
	}
	if base.TestAcc-res.TestAcc > 0.1 {
		t.Fatalf("post-pruning lost too much: %v vs %v", res.TestAcc, base.TestAcc)
	}
}

func TestColumnarEngineMatchesRowEngine(t *testing.T) {
	// Acceptance check for the columnar storage engine: running the same
	// experiment cells against EngineColumnar must produce bit-identical
	// accuracies and grid winners to the zero-copy row engine — the engines
	// differ only in physical layout, never in cell values or split
	// permutation.
	spec, err := dataset.SpecByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	row, err := NewEnvEngine(ss, 7, EngineRow)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewEnvEngine(ss, 7, EngineColumnar)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := row.Joined.(*relational.JoinView); !ok {
		t.Fatalf("row env joined is %T, want *relational.JoinView", row.Joined)
	}
	if _, ok := col.Joined.(*relational.ColumnarTable); !ok {
		t.Fatalf("columnar env joined is %T, want *relational.ColumnarTable", col.Joined)
	}
	for _, mspec := range []Spec{TreeSpec(tree.Gini, EffortFast), NaiveBayesBFSSpec()} {
		for _, v := range []ml.View{ml.JoinAll, ml.NoJoin} {
			rres, err := Run(row, v, mspec, 11)
			if err != nil {
				t.Fatalf("row %s/%v: %v", mspec.Name, v, err)
			}
			cres, err := Run(col, v, mspec, 11)
			if err != nil {
				t.Fatalf("col %s/%v: %v", mspec.Name, v, err)
			}
			if rres.TestAcc != cres.TestAcc || rres.TrainAcc != cres.TrainAcc || rres.ValAcc != cres.ValAcc {
				t.Fatalf("%s/%v diverged across engines: row (test %v train %v val %v) vs col (test %v train %v val %v)",
					mspec.Name, v, rres.TestAcc, rres.TrainAcc, rres.ValAcc,
					cres.TestAcc, cres.TrainAcc, cres.ValAcc)
			}
			for k, pv := range rres.BestPoint {
				if cres.BestPoint[k] != pv {
					t.Fatalf("%s/%v picked different grid points: %v vs %v",
						mspec.Name, v, rres.BestPoint, cres.BestPoint)
				}
			}
		}
	}
}

func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{
		"row": EngineRow, "col": EngineColumnar, "columnar": EngineColumnar,
		"seg": EngineSegmented, "segmented": EngineSegmented,
	} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("paper"); err == nil {
		t.Fatal("ParseEngine must reject unknown engines")
	}
	if EngineRow.String() != "row" || EngineColumnar.String() != "col" || EngineSegmented.String() != "seg" {
		t.Fatalf("engine names: %v %v %v", EngineRow, EngineColumnar, EngineSegmented)
	}
}

func TestColumnarIsDefaultEngine(t *testing.T) {
	// The default flip: the Engine zero value, NewEnv, and NewEnvEngine's
	// fallback must all select columnar storage; NewEnvRow keeps the
	// zero-copy join view.
	if Engine(0) != EngineColumnar {
		t.Fatal("Engine zero value must be EngineColumnar")
	}
	spec, err := dataset.SpecByName("Walmart")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(spec, 512, 5)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(ss, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Joined.(*relational.ColumnarTable); !ok {
		t.Fatalf("NewEnv joined is %T, want *relational.ColumnarTable", env.Joined)
	}
	rowEnv, err := NewEnvRow(ss, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rowEnv.Joined.(*relational.JoinView); !ok {
		t.Fatalf("NewEnvRow joined is %T, want *relational.JoinView", rowEnv.Joined)
	}
}

// TestIterativeLearnersEngineEquivalence is the acceptance check for the
// columnar epoch paths: the three newly-columnar iterative learners (logreg
// SGD, SMO, the MLP) must produce bit-identical accuracies and grid winners
// on the row and columnar engines across the Flights/Yelp/Expedia schema
// shapes (three dims with pairs sweep, two closed FKs, an open FK).
func TestIterativeLearnersEngineEquivalence(t *testing.T) {
	for dsName, scale := range map[string]int{"Flights": 192, "Yelp": 320, "Expedia": 512} {
		spec, err := dataset.SpecByName(dsName)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := dataset.Generate(spec, scale, 5)
		if err != nil {
			t.Fatal(err)
		}
		row, err := NewEnvEngine(ss, 7, EngineRow)
		if err != nil {
			t.Fatal(err)
		}
		col, err := NewEnvEngine(ss, 7, EngineColumnar)
		if err != nil {
			t.Fatal(err)
		}
		for _, mspec := range []Spec{
			LogRegSpec(EffortFast),
			SVMSpec(svm.Linear, EffortFast, 120),
			ANNSpec(EffortFast),
		} {
			rres, err := Run(row, ml.JoinAll, mspec, 11)
			if err != nil {
				t.Fatalf("%s row %s: %v", dsName, mspec.Name, err)
			}
			cres, err := Run(col, ml.JoinAll, mspec, 11)
			if err != nil {
				t.Fatalf("%s col %s: %v", dsName, mspec.Name, err)
			}
			if rres.TestAcc != cres.TestAcc || rres.TrainAcc != cres.TrainAcc || rres.ValAcc != cres.ValAcc {
				t.Fatalf("%s %s diverged across engines: row (test %v train %v val %v) vs col (test %v train %v val %v)",
					dsName, mspec.Name, rres.TestAcc, rres.TrainAcc, rres.ValAcc,
					cres.TestAcc, cres.TrainAcc, cres.ValAcc)
			}
			for k, pv := range rres.BestPoint {
				if cres.BestPoint[k] != pv {
					t.Fatalf("%s %s picked different grid points: %v vs %v",
						dsName, mspec.Name, rres.BestPoint, cres.BestPoint)
				}
			}
		}
	}
}

// TestArtifactBytesIdenticalAcrossEngines is the end-to-end pin of the
// compute-kernel layer at the artifact boundary: the GEMM learners (ANN,
// SVM, logreg) trained through either storage engine must export
// byte-identical model artifacts — the deterministic codec makes parameter
// bit-equality visible as byte equality, so any kernel-order divergence
// anywhere in the batched paths fails here.
func TestArtifactBytesIdenticalAcrossEngines(t *testing.T) {
	dspec, err := dataset.SpecByName("Movies")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := dataset.Generate(dspec, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, specName := range []string{"ANN(MLP)", "SVM(rbf)", "LogisticRegression(L1)"} {
		spec, err := SpecByName(specName, EffortFast, 100)
		if err != nil {
			t.Fatal(err)
		}
		var encoded [][]byte
		for _, engine := range []Engine{EngineRow, EngineColumnar} {
			env, err := NewEnvEngine(ss, 7, engine)
			if err != nil {
				t.Fatal(err)
			}
			artifact, _, err := BuildArtifact(env, spec, 7, nil)
			if err != nil {
				t.Fatal(err)
			}
			var raw bytes.Buffer
			if err := model.Encode(&raw, artifact); err != nil {
				t.Fatal(err)
			}
			encoded = append(encoded, raw.Bytes())
		}
		if !bytes.Equal(encoded[0], encoded[1]) {
			t.Fatalf("%s: row- and columnar-trained artifacts differ", specName)
		}
	}
}
