package core

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/knn"
	"repro/internal/linear"
	"repro/internal/ml"
	"repro/internal/nb"
	"repro/internal/svm"
	"repro/internal/tree"
)

// Spec describes one classifier family's training procedure: given train and
// validation splits, produce a tuned, fitted classifier. Most specs run the
// paper's grid search; Naive Bayes runs its backward-selection wrapper
// instead.
type Spec struct {
	Name  string
	Train func(train, val *ml.Dataset, seed uint64) (ml.Classifier, ml.GridPoint, float64, error)
}

// Effort scales the hyper-parameter grids. EffortFull is the paper's exact
// grid; EffortFast shrinks each axis to its most useful values so the whole
// study fits in unit-test/bench budgets while exercising the same code.
type Effort int

const (
	// EffortFast uses reduced grids (2–4 points per model).
	EffortFast Effort = iota
	// EffortFull uses the paper's §3.2 grids verbatim.
	EffortFull
)

// gridSearchSpec adapts an ml.Grid + factory into a Spec.
func gridSearchSpec(name string, grid *ml.Grid, factory func(p ml.GridPoint, seed uint64) (ml.Classifier, error)) Spec {
	return Spec{
		Name: name,
		Train: func(train, val *ml.Dataset, seed uint64) (ml.Classifier, ml.GridPoint, float64, error) {
			res, err := ml.GridSearch(grid, func(p ml.GridPoint) (ml.Classifier, error) {
				return factory(p, seed)
			}, train, val)
			if err != nil {
				return nil, nil, 0, err
			}
			return res.Best, res.BestPoint, res.BestValAcc, nil
		},
	}
}

// TreeSpec builds the decision-tree spec for a split criterion with the
// paper's grid: minsplit ∈ {1,10,100,1000}, cp ∈ {1e-4,1e-3,0.01,0.1,0}.
func TreeSpec(criterion tree.Criterion, effort Effort) Spec {
	grid := ml.NewGrid()
	if effort == EffortFull {
		grid.Axis("minsplit", 1, 10, 100, 1000).Axis("cp", 1e-4, 1e-3, 0.01, 0.1, 0)
	} else {
		grid.Axis("minsplit", 10, 100).Axis("cp", 1e-3, 0.01)
	}
	name := "DecisionTree(" + criterion.String() + ")"
	return gridSearchSpec(name, grid, func(p ml.GridPoint, _ uint64) (ml.Classifier, error) {
		return tree.New(tree.Config{
			Criterion: criterion,
			MinSplit:  int(p["minsplit"]),
			CP:        p["cp"],
		}), nil
	})
}

// PrunedTreeSpec grows a large tree (cp = 0) and applies cost-complexity
// post-pruning selected on the validation split — the full CART/rpart
// procedure, offered as an ablation against the paper's grid-tuned
// pre-pruning (TreeSpec).
func PrunedTreeSpec(criterion tree.Criterion) Spec {
	name := "PrunedDecisionTree(" + criterion.String() + ")"
	return Spec{
		Name: name,
		Train: func(train, val *ml.Dataset, _ uint64) (ml.Classifier, ml.GridPoint, float64, error) {
			t := tree.New(tree.Config{Criterion: criterion, MinSplit: 2, CP: 0})
			if err := t.Fit(train); err != nil {
				return nil, nil, 0, err
			}
			if _, err := t.PruneCCP(train, val); err != nil {
				return nil, nil, 0, err
			}
			return t, ml.GridPoint{}, ml.Accuracy(t, val), nil
		},
	}
}

// SVMSpec builds the kernel-SVM spec. The paper's grid is C ∈
// {0.1,1,10,100,1000} and, for non-linear kernels, γ ∈ {1e-4…10}.
// subsampleCap bounds SMO's training-set size (0 disables).
func SVMSpec(kind svm.KernelKind, effort Effort, subsampleCap int) Spec {
	grid := ml.NewGrid()
	if effort == EffortFull {
		grid.Axis("C", 0.1, 1, 10, 100, 1000)
		if kind != svm.Linear {
			grid.Axis("gamma", 1e-4, 1e-3, 0.01, 0.1, 1, 10)
		}
	} else {
		grid.Axis("C", 1, 100)
		if kind != svm.Linear {
			// Include a small gamma so wide feature sets (large d) keep
			// non-trivial kernel values: exp(−2γ(d−m)) vanishes for large
			// d−m unless gamma is small.
			grid.Axis("gamma", 0.01, 0.1, 1)
		}
	}
	name := "SVM(" + kind.String() + ")"
	return gridSearchSpec(name, grid, func(p ml.GridPoint, seed uint64) (ml.Classifier, error) {
		gamma := p["gamma"]
		if kind == svm.Linear {
			gamma = 0
		}
		return svm.New(svm.Config{
			Kernel:       kind,
			C:            p["C"],
			Gamma:        gamma,
			SubsampleCap: subsampleCap,
			Seed:         seed,
		})
	})
}

// ANNSpec builds the multilayer-perceptron spec. The paper's grid tunes
// L2 ∈ {1e-4,1e-3,1e-2} and learning rate ∈ {1e-3,1e-2,1e-1}; hidden sizes
// stay at 256/64. epochs and hidden sizes are scaled down at EffortFast.
func ANNSpec(effort Effort) Spec {
	grid := ml.NewGrid()
	h1, h2, epochs := 256, 64, 20
	if effort == EffortFull {
		grid.Axis("l2", 1e-4, 1e-3, 1e-2).Axis("lr", 1e-3, 1e-2, 1e-1)
	} else {
		grid.Axis("l2", 1e-3).Axis("lr", 1e-2)
		h1, h2, epochs = 32, 16, 10
	}
	return gridSearchSpec("ANN(MLP)", grid, func(p ml.GridPoint, seed uint64) (ml.Classifier, error) {
		return ann.New(ann.Config{
			Hidden1:      h1,
			Hidden2:      h2,
			L2:           p["l2"],
			LearningRate: p["lr"],
			Epochs:       epochs,
			Seed:         seed,
		}), nil
	})
}

// LogRegSpec builds the L1 logistic-regression spec: a small lambda path,
// standing in for glmnet's automatic path.
func LogRegSpec(effort Effort) Spec {
	grid := ml.NewGrid()
	if effort == EffortFull {
		grid.Axis("lambda", 0, 1e-4, 1e-3, 1e-2, 0.1)
	} else {
		grid.Axis("lambda", 1e-4, 1e-2)
	}
	return gridSearchSpec("LogisticRegression(L1)", grid, func(p ml.GridPoint, seed uint64) (ml.Classifier, error) {
		return linear.NewLogReg(linear.LogRegConfig{Lambda: p["lambda"], Seed: seed}), nil
	})
}

// OneNNSpec builds the 1-nearest-neighbour spec (no hyper-parameters).
func OneNNSpec() Spec {
	return Spec{
		Name: "1-NN",
		Train: func(train, val *ml.Dataset, _ uint64) (ml.Classifier, ml.GridPoint, float64, error) {
			k := knn.New()
			if err := k.Fit(train); err != nil {
				return nil, nil, 0, err
			}
			return k, ml.GridPoint{}, ml.Accuracy(k, val), nil
		},
	}
}

// NaiveBayesBFSSpec builds the Naive Bayes + backward-selection spec. The
// wrapper consumes the validation split directly instead of a grid.
func NaiveBayesBFSSpec() Spec {
	return Spec{
		Name: "NaiveBayes(BFS)",
		Train: func(train, val *ml.Dataset, _ uint64) (ml.Classifier, ml.GridPoint, float64, error) {
			m, valAcc, err := nb.BackwardSelect(nb.Config{}, train, val)
			if err != nil {
				return nil, nil, 0, err
			}
			return m, ml.GridPoint{}, valAcc, nil
		},
	}
}

// AllSpecs returns the paper's full classifier roster in Tables 2–3 order:
// three decision trees, 1-NN, three SVMs, ANN, Naive Bayes, and logistic
// regression. svmCap bounds SMO training-set sizes.
func AllSpecs(effort Effort, svmCap int) []Spec {
	return []Spec{
		TreeSpec(tree.Gini, effort),
		TreeSpec(tree.InfoGain, effort),
		TreeSpec(tree.GainRatio, effort),
		OneNNSpec(),
		SVMSpec(svm.Linear, effort, svmCap),
		SVMSpec(svm.Quadratic, effort, svmCap),
		SVMSpec(svm.RBF, effort, svmCap),
		ANNSpec(effort),
		NaiveBayesBFSSpec(),
		LogRegSpec(effort),
	}
}

// SpecByName returns the named spec from AllSpecs.
func SpecByName(name string, effort Effort, svmCap int) (Spec, error) {
	for _, s := range AllSpecs(effort, svmCap) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("core: unknown spec %q", name)
}
