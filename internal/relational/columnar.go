package relational

import "fmt"

// ColumnScanner is the optional batch read interface alongside Relation:
// implementations expose column-at-a-time access so learners can train on
// cache-resident vectors of one feature instead of assembling rows. The
// contract:
//
//	m := r.ScanColumn(col, from, dst)
//
// fills dst[0:m] with the values of column col for rows [from, from+m),
// where m = min(len(dst), NumRows()-from) (0 when from is past the end),
// and returns m. Implementations must be safe for concurrent readers, like
// Relation itself, and must not retain dst.
//
// Every relation in this package implements it: physical tables scan their
// own storage, JoinView turns a foreign-column scan into a gather through
// the FK column, and SelectView/ProjectView forward with their row/column
// remaps. Consumers that accept an arbitrary Relation should fall back to
// an At loop when the assertion fails (ml.Dataset.ScanFeature does).
type ColumnScanner interface {
	ScanColumn(col int, from int, dst []Value) int
}

// ColumnGatherer is the random-access companion of ColumnScanner: it fills
// dst[k] with At(rows[k], col) for every k. len(dst) must be >= len(rows).
// It exists so row-subset consumers (a SelectView split, a decision-tree
// node's example set) can batch-read one column without per-cell interface
// calls; implementations devirtualize the inner loop.
type ColumnGatherer interface {
	GatherColumn(dst []Value, col int, rows []int)
}

// ColumnViaGatherer fuses a two-level row remap into one gather:
// dst[k] = At(idx[rows[k]], col). It is how a stacked remap — a SelectView
// over a join, or an ml.Dataset subset over a relation — batch-reads a
// column without materializing the composed index list or paying a virtual
// At per cell. The physical tables and JoinView implement it.
type ColumnViaGatherer interface {
	GatherColumnVia(dst []Value, col int, idx []int, rows []int)
}

// scanLen clamps a ScanColumn request to the valid row range.
func scanLen(numRows, from, dstLen int) int {
	m := numRows - from
	if m > dstLen {
		m = dstLen
	}
	if m < 0 {
		m = 0
	}
	return m
}

// colData is one column of a ColumnarTable: dictionary codes stored at the
// narrowest width the column's domain fits (exactly one slice is non-nil).
// Narrowing matters twice: a u8 column holds 4x more values per cache line
// than []Value, and the full scan a learner pays per feature becomes a
// sequential walk over n bytes instead of n rows.
type colData struct {
	u8  []uint8
	u16 []uint16
	u32 []Value
}

// newColData picks the storage width for a domain of the given size.
func newColData(domainSize, capHint int) colData {
	switch {
	case domainSize <= 1<<8:
		return colData{u8: make([]uint8, 0, capHint)}
	case domainSize <= 1<<16:
		return colData{u16: make([]uint16, 0, capHint)}
	default:
		return colData{u32: make([]Value, 0, capHint)}
	}
}

// at returns the value at row i, widened back to Value.
func (c *colData) at(i int) Value {
	switch {
	case c.u8 != nil:
		return Value(c.u8[i])
	case c.u16 != nil:
		return Value(c.u16[i])
	default:
		return c.u32[i]
	}
}

// append stores one value (assumed in-domain).
func (c *colData) append(v Value) {
	switch {
	case c.u8 != nil:
		c.u8 = append(c.u8, uint8(v))
	case c.u16 != nil:
		c.u16 = append(c.u16, uint16(v))
	default:
		c.u32 = append(c.u32, v)
	}
}

// reserve grows capacity for n more values.
func (c *colData) reserve(n int) {
	switch {
	case c.u8 != nil && cap(c.u8)-len(c.u8) < n:
		grown := make([]uint8, len(c.u8), len(c.u8)+n)
		copy(grown, c.u8)
		c.u8 = grown
	case c.u16 != nil && cap(c.u16)-len(c.u16) < n:
		grown := make([]uint16, len(c.u16), len(c.u16)+n)
		copy(grown, c.u16)
		c.u16 = grown
	case c.u32 != nil && cap(c.u32)-len(c.u32) < n:
		grown := make([]Value, len(c.u32), len(c.u32)+n)
		copy(grown, c.u32)
		c.u32 = grown
	}
}

// scan widens rows [from, from+len(dst)) into dst.
func (c *colData) scan(from int, dst []Value) {
	switch {
	case c.u8 != nil:
		src := c.u8[from : from+len(dst)]
		for k, v := range src {
			dst[k] = Value(v)
		}
	case c.u16 != nil:
		src := c.u16[from : from+len(dst)]
		for k, v := range src {
			dst[k] = Value(v)
		}
	default:
		copy(dst, c.u32[from:from+len(dst)])
	}
}

// gather widens the given rows into dst.
func (c *colData) gather(dst []Value, rows []int) {
	switch {
	case c.u8 != nil:
		for k, r := range rows {
			dst[k] = Value(c.u8[r])
		}
	case c.u16 != nil:
		for k, r := range rows {
			dst[k] = Value(c.u16[r])
		}
	default:
		for k, r := range rows {
			dst[k] = c.u32[r]
		}
	}
}

// gatherVia widens rows idx[rows[k]] into dst — the double-remap path a
// SelectView stacked on a columnar table uses.
func (c *colData) gatherVia(dst []Value, idx []int, rows []int) {
	switch {
	case c.u8 != nil:
		for k, r := range rows {
			dst[k] = Value(c.u8[idx[r]])
		}
	case c.u16 != nil:
		for k, r := range rows {
			dst[k] = Value(c.u16[idx[r]])
		}
	default:
		for k, r := range rows {
			dst[k] = c.u32[idx[r]]
		}
	}
}

// ColumnarTable is the struct-of-arrays physical relation: one contiguous,
// width-narrowed vector per column. It is the second storage engine next to
// the row-major *Table — same schema/domain rules, same Relation surface,
// bit-identical cell values — chosen when the workload is column scans
// (batched learner training) rather than row assembly. Construct empty with
// NewColumnarTable and fill with AppendRow(s), or evaluate any relation into
// one with MaterializeColumnar.
type ColumnarTable struct {
	Name   string
	schema *Schema
	n      int
	cols   []colData
}

// NewColumnarTable creates an empty columnar table with capacity hint rows.
func NewColumnarTable(name string, schema *Schema, capHint int) *ColumnarTable {
	t := &ColumnarTable{Name: name, schema: schema, cols: make([]colData, schema.Width())}
	for j := range t.cols {
		t.cols[j] = newColData(schema.Cols[j].Domain.Size, capHint)
	}
	return t
}

// Schema implements Relation.
func (t *ColumnarTable) Schema() *Schema { return t.schema }

// NumRows implements Relation.
func (t *ColumnarTable) NumRows() int { return t.n }

// At implements Relation.
func (t *ColumnarTable) At(row, col int) Value { return t.cols[col].at(row) }

// CopyRow implements Relation. Row assembly is the columnar layout's slow
// direction (one strided read per column); consumers that can should use
// ScanColumn instead.
func (t *ColumnarTable) CopyRow(dst []Value, row int) []Value {
	dst = dst[:len(t.cols)]
	for j := range t.cols {
		dst[j] = t.cols[j].at(row)
	}
	return dst
}

// ScanColumn implements ColumnScanner: a sequential widening copy out of the
// column's narrow storage.
func (t *ColumnarTable) ScanColumn(col int, from int, dst []Value) int {
	m := scanLen(t.n, from, len(dst))
	if m == 0 {
		return 0
	}
	t.cols[col].scan(from, dst[:m])
	return m
}

// GatherColumn implements ColumnGatherer.
func (t *ColumnarTable) GatherColumn(dst []Value, col int, rows []int) {
	t.cols[col].gather(dst[:len(rows)], rows)
}

// GatherColumnVia implements ColumnViaGatherer — the fused double-remap
// gather a SelectView stacked on this table uses.
func (t *ColumnarTable) GatherColumnVia(dst []Value, col int, idx []int, rows []int) {
	t.cols[col].gatherVia(dst[:len(rows)], idx, rows)
}

// Reserve grows every column's capacity to hold n more rows without
// reallocation.
func (t *ColumnarTable) Reserve(n int) {
	for j := range t.cols {
		t.cols[j].reserve(n)
	}
}

// AppendRow appends one row after validating width and domain membership.
func (t *ColumnarTable) AppendRow(row []Value) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("relational: columnar table %q expects %d columns, row has %d", t.Name, len(t.cols), len(row))
	}
	for j, v := range row {
		if !t.schema.Cols[j].Domain.Contains(v) {
			return fmt.Errorf("relational: columnar table %q column %q: value %d outside domain of size %d",
				t.Name, t.schema.Cols[j].Name, v, t.schema.Cols[j].Domain.Size)
		}
	}
	for j, v := range row {
		t.cols[j].append(v)
	}
	t.n++
	return nil
}

// MustAppendRow is AppendRow for generator code where rows are correct by
// construction.
func (t *ColumnarTable) MustAppendRow(row []Value) {
	if err := t.AppendRow(row); err != nil {
		panic(err)
	}
}

// AppendRows bulk-appends a row-major block (len(block) must be a multiple
// of the width), sharing the per-column strided validation with
// Table.AppendRows. On error nothing is appended.
func (t *ColumnarTable) AppendRows(block []Value) error {
	nRows, err := validateBlock(t.schema, t.Name, block)
	if err != nil {
		return err
	}
	w := len(t.cols)
	t.Reserve(nRows)
	for j := 0; j < w; j++ {
		c := &t.cols[j]
		for k, at := 0, j; k < nRows; k, at = k+1, at+w {
			c.append(block[at])
		}
	}
	t.n += nRows
	return nil
}

// MustAppendRows is AppendRows for generator code.
func (t *ColumnarTable) MustAppendRows(block []Value) {
	if err := t.AppendRows(block); err != nil {
		panic(err)
	}
}

// MaterializeColumnar evaluates any relation into a ColumnarTable — the
// columnar sibling of Materialize. Like Materialize the result is an
// independent snapshot. Sources that implement ColumnScanner are drained
// column-at-a-time (sequential reads on both sides); anything else is read
// row by row through CopyRow. Cell values outside their column's domain
// indicate a corrupted source relation and panic, mirroring the invariant
// AppendRow enforces on the write path.
func MaterializeColumnar(r Relation, name string) *ColumnarTable {
	schema := r.Schema()
	n := r.NumRows()
	out := NewColumnarTable(name, schema, n)
	w := schema.Width()
	if w == 0 || n == 0 {
		return out
	}
	buf := make([]Value, min(n, 4096)*w)
	if cs, ok := r.(ColumnScanner); ok {
		chunk := len(buf) / w
		for j := 0; j < w; j++ {
			size := Value(schema.Cols[j].Domain.Size)
			c := &out.cols[j]
			for from := 0; from < n; from += chunk {
				m := cs.ScanColumn(j, from, buf[:min(chunk, n-from)])
				for _, v := range buf[:m] {
					if v < 0 || v >= size {
						panic(fmt.Sprintf("relational: materialize columnar %q column %q: value %d outside domain of size %d",
							name, schema.Cols[j].Name, v, size))
					}
					c.append(v)
				}
			}
		}
		out.n = n
		return out
	}
	row := buf[:w]
	for i := 0; i < n; i++ {
		r.CopyRow(row, i)
		out.MustAppendRow(row)
	}
	return out
}
