package relational

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// buildCustomerStar builds the paper's running example: Customers (fact)
// with a foreign key into Employers (dimension).
func buildCustomerStar(t *testing.T) *StarSchema {
	t.Helper()
	empDom := NewDomain("EmployerID", 3)
	stateDom := NewLabeledDomain("State", []string{"CA", "WI"})
	revDom := NewLabeledDomain("Revenue", []string{"low", "high"})
	employers := NewTable("Employers", MustSchema(
		Column{Name: "EmployerID", Kind: KindPrimaryKey, Domain: empDom},
		Column{Name: "State", Kind: KindFeature, Domain: stateDom},
		Column{Name: "Revenue", Kind: KindFeature, Domain: revDom},
	), 3)
	employers.MustAppendRow([]Value{0, 0, 1})
	employers.MustAppendRow([]Value{1, 1, 0})
	employers.MustAppendRow([]Value{2, 0, 0})

	churnDom := NewLabeledDomain("Churn", []string{"no", "yes"})
	genderDom := NewLabeledDomain("Gender", []string{"F", "M"})
	customers := NewTable("Customers", MustSchema(
		Column{Name: "Churn", Kind: KindTarget, Domain: churnDom},
		Column{Name: "Gender", Kind: KindFeature, Domain: genderDom},
		Column{Name: "Employer", Kind: KindForeignKey, Domain: empDom, Refs: "Employers"},
	), 6)
	rows := [][]Value{
		{0, 0, 0}, {1, 1, 1}, {0, 0, 2}, {1, 1, 0}, {0, 1, 1}, {1, 0, 2},
	}
	for _, r := range rows {
		customers.MustAppendRow(r)
	}
	ss, err := NewStarSchema(customers, employers)
	if err != nil {
		t.Fatalf("NewStarSchema: %v", err)
	}
	return ss
}

func TestSchemaRejectsDuplicates(t *testing.T) {
	d := NewDomain("d", 2)
	_, err := NewSchema(
		Column{Name: "a", Kind: KindFeature, Domain: d},
		Column{Name: "a", Kind: KindFeature, Domain: d},
	)
	if err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestSchemaRejectsFKWithoutRefs(t *testing.T) {
	d := NewDomain("d", 2)
	_, err := NewSchema(Column{Name: "fk", Kind: KindForeignKey, Domain: d})
	if err == nil {
		t.Fatal("expected missing-Refs error")
	}
}

func TestDomainLabels(t *testing.T) {
	d := NewLabeledDomain("color", []string{"red", "green"})
	if d.Label(0) != "red" || d.Label(1) != "green" {
		t.Fatalf("labels wrong: %q %q", d.Label(0), d.Label(1))
	}
	if !strings.Contains(d.Label(5), "invalid") {
		t.Fatalf("out-of-range label should mark invalid, got %q", d.Label(5))
	}
	anon := NewDomain("fk", 4)
	if anon.Label(2) != "fk=2" {
		t.Fatalf("anonymous label = %q", anon.Label(2))
	}
}

func TestTableAppendValidation(t *testing.T) {
	d := NewDomain("d", 2)
	tab := NewTable("t", MustSchema(Column{Name: "x", Kind: KindFeature, Domain: d}), 1)
	if err := tab.AppendRow([]Value{1, 1}); err == nil {
		t.Fatal("expected width error")
	}
	if err := tab.AppendRow([]Value{5}); err == nil {
		t.Fatal("expected domain error")
	}
	if err := tab.AppendRow([]Value{1}); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	if tab.NumRows() != 1 || tab.At(0, 0) != 1 {
		t.Fatal("row not stored")
	}
}

func TestTableSetValidation(t *testing.T) {
	d := NewDomain("d", 2)
	tab := NewTable("t", MustSchema(Column{Name: "x", Kind: KindFeature, Domain: d}), 1)
	tab.MustAppendRow([]Value{0})
	if err := tab.Set(0, 0, 9); err == nil {
		t.Fatal("expected out-of-domain error")
	}
	if err := tab.Set(0, 0, 1); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if tab.At(0, 0) != 1 {
		t.Fatal("Set did not store value")
	}
}

func TestStarSchemaValidation(t *testing.T) {
	ss := buildCustomerStar(t)
	tr, err := ss.TupleRatio("Employers")
	if err != nil {
		t.Fatalf("TupleRatio: %v", err)
	}
	if tr != 2.0 {
		t.Fatalf("tuple ratio = %v, want 2.0 (6 customers / 3 employers)", tr)
	}
	if _, err := ss.TupleRatio("Nope"); err == nil {
		t.Fatal("expected error for unknown dimension")
	}
	names := ss.DimensionNames()
	if len(names) != 1 || names[0] != "Employers" {
		t.Fatalf("DimensionNames = %v", names)
	}
}

func TestStarSchemaRejectsNonDenseKeys(t *testing.T) {
	empDom := NewDomain("EmployerID", 2)
	dim := NewTable("Employers", MustSchema(
		Column{Name: "EmployerID", Kind: KindPrimaryKey, Domain: empDom},
	), 2)
	dim.MustAppendRow([]Value{1})
	dim.MustAppendRow([]Value{0})
	fact := NewTable("S", MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "FK", Kind: KindForeignKey, Domain: empDom, Refs: "Employers"},
	), 0)
	if _, err := NewStarSchema(fact, dim); err == nil {
		t.Fatal("expected dense-identity key error")
	}
}

func TestStarSchemaRejectsCardinalityMismatch(t *testing.T) {
	empDom := NewDomain("EmployerID", 3)
	dim := NewTable("Employers", MustSchema(
		Column{Name: "EmployerID", Kind: KindPrimaryKey, Domain: empDom},
	), 2)
	dim.MustAppendRow([]Value{0})
	dim.MustAppendRow([]Value{1}) // only 2 rows, domain says 3
	fact := NewTable("S", MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "FK", Kind: KindForeignKey, Domain: empDom, Refs: "Employers"},
	), 0)
	if _, err := NewStarSchema(fact, dim); err == nil {
		t.Fatal("expected key-cardinality error")
	}
}

func TestJoinProducesFDAndWidth(t *testing.T) {
	ss := buildCustomerStar(t)
	joined, err := Join(ss)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// Fact width 3 + 2 dimension features.
	if joined.Schema().Width() != 5 {
		t.Fatalf("joined width = %d, want 5", joined.Schema().Width())
	}
	if joined.NumRows() != ss.Fact.NumRows() {
		t.Fatalf("KFK join must preserve fact cardinality: %d vs %d", joined.NumRows(), ss.Fact.NumRows())
	}
	if err := VerifyKFKFDs(joined, ss); err != nil {
		t.Fatalf("FD FK→XR must hold in join output: %v", err)
	}
	// Spot-check one row: customer 1 has employer 1 → State=WI(1), Revenue=low(0).
	stateCol := joined.Schema().Index("Employers.State")
	revCol := joined.Schema().Index("Employers.Revenue")
	if stateCol < 0 || revCol < 0 {
		t.Fatalf("joined schema missing dimension columns: %v", joined.Schema().Names())
	}
	if joined.At(1, stateCol) != 1 || joined.At(1, revCol) != 0 {
		t.Fatalf("join lookup wrong: state=%d rev=%d", joined.At(1, stateCol), joined.At(1, revCol))
	}
}

func TestVerifyFDDetectsViolation(t *testing.T) {
	d2 := NewDomain("d", 2)
	tab := NewTable("t", MustSchema(
		Column{Name: "a", Kind: KindFeature, Domain: d2},
		Column{Name: "b", Kind: KindFeature, Domain: d2},
	), 3)
	tab.MustAppendRow([]Value{0, 0})
	tab.MustAppendRow([]Value{0, 1}) // a=0 maps to both 0 and 1
	if err := VerifyFD(tab, 0, 1); err == nil {
		t.Fatal("expected FD violation")
	}
}

// Property: the KFK join always satisfies FK → dimension features, for
// randomly generated star schemas.
func TestJoinFDProperty(t *testing.T) {
	f := func(seed uint64, nRRaw, nSRaw uint8) bool {
		r := rng.New(seed)
		nR := int(nRRaw%20) + 2
		nS := int(nSRaw%50) + 4
		keyDom := NewDomain("RID", nR)
		featDom := NewDomain("xr", 3)
		dim := NewTable("R", MustSchema(
			Column{Name: "RID", Kind: KindPrimaryKey, Domain: keyDom},
			Column{Name: "XR1", Kind: KindFeature, Domain: featDom},
			Column{Name: "XR2", Kind: KindFeature, Domain: featDom},
		), nR)
		for i := 0; i < nR; i++ {
			dim.MustAppendRow([]Value{Value(i), Value(r.Intn(3)), Value(r.Intn(3))})
		}
		fact := NewTable("S", MustSchema(
			Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
			Column{Name: "XS", Kind: KindFeature, Domain: featDom},
			Column{Name: "FK", Kind: KindForeignKey, Domain: keyDom, Refs: "R"},
		), nS)
		for i := 0; i < nS; i++ {
			fact.MustAppendRow([]Value{Value(r.Intn(2)), Value(r.Intn(3)), Value(r.Intn(nR))})
		}
		ss, err := NewStarSchema(fact, dim)
		if err != nil {
			return false
		}
		joined, err := Join(ss)
		if err != nil {
			return false
		}
		return VerifyKFKFDs(joined, ss) == nil && joined.NumRows() == nS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitFractions(t *testing.T) {
	ss := buildCustomerStar(t)
	joined, err := Join(ss)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	// Inflate to 100 rows for a meaningful split.
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i % joined.NumRows()
	}
	big := joined.SelectRows("big", idx)
	sp, err := PaperSplit(big, rng.New(1))
	if err != nil {
		t.Fatalf("PaperSplit: %v", err)
	}
	if sp.Train.NumRows() != 50 || sp.Validation.NumRows() != 25 || sp.Test.NumRows() != 25 {
		t.Fatalf("split sizes %d/%d/%d, want 50/25/25",
			sp.Train.NumRows(), sp.Validation.NumRows(), sp.Test.NumRows())
	}
	// Determinism.
	sp2, _ := PaperSplit(big, rng.New(1))
	for i := 0; i < sp.Train.NumRows(); i++ {
		for j := 0; j < sp.Train.Schema().Width(); j++ {
			if sp.Train.At(i, j) != sp2.Train.At(i, j) {
				t.Fatal("split not deterministic")
			}
		}
	}
}

func TestSplitRejectsBadFractions(t *testing.T) {
	ss := buildCustomerStar(t)
	if _, err := SplitFractions(ss.Fact, 0.9, 0.2, rng.New(1)); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, err := SplitFractions(ss.Fact, 0, 0.2, rng.New(1)); err == nil {
		t.Fatal("expected fraction error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ss := buildCustomerStar(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ss.Fact); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, "Customers", ss.Fact.Schema())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumRows() != ss.Fact.NumRows() {
		t.Fatalf("row count %d != %d", back.NumRows(), ss.Fact.NumRows())
	}
	for i := 0; i < back.NumRows(); i++ {
		for j := 0; j < back.Schema().Width(); j++ {
			if back.At(i, j) != ss.Fact.At(i, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSVRejectsUnknownLabel(t *testing.T) {
	ss := buildCustomerStar(t)
	in := "Churn,Gender,Employer\nmaybe,F,0\n"
	if _, err := ReadCSV(strings.NewReader(in), "bad", ss.Fact.Schema()); err == nil {
		t.Fatal("expected unknown-label error")
	}
}

func TestCSVRejectsHeaderMismatch(t *testing.T) {
	ss := buildCustomerStar(t)
	in := "A,B,C\n0,0,0\n"
	if _, err := ReadCSV(strings.NewReader(in), "bad", ss.Fact.Schema()); err == nil {
		t.Fatal("expected header error")
	}
}

func TestSelectRowsAndClone(t *testing.T) {
	ss := buildCustomerStar(t)
	sub := ss.Fact.SelectRows("sub", []int{5, 0, 5})
	if sub.NumRows() != 3 {
		t.Fatalf("SelectRows rows = %d", sub.NumRows())
	}
	if sub.At(0, 2) != 2 || sub.At(1, 2) != 0 {
		t.Fatal("SelectRows order wrong")
	}
	cl := ss.Fact.Clone("copy")
	if err := cl.Set(0, 0, 1); err != nil {
		t.Fatalf("Set on clone: %v", err)
	}
	if ss.Fact.At(0, 0) == cl.At(0, 0) {
		t.Fatal("Clone must not alias original storage")
	}
}

func TestColumnsOfKindAndNames(t *testing.T) {
	ss := buildCustomerStar(t)
	fks := ss.Fact.Schema().ColumnsOfKind(KindForeignKey)
	if len(fks) != 1 || fks[0] != 2 {
		t.Fatalf("ColumnsOfKind(FK) = %v", fks)
	}
	if got := ss.Fact.Schema().FeatureNames(); len(got) != 1 || got[0] != "Gender" {
		t.Fatalf("FeatureNames = %v", got)
	}
	if ColumnKind(99).String() == "" {
		t.Fatal("String must not be empty for unknown kinds")
	}
}
