package relational

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// pageSize is the allocation unit of a segment heap file. Segments are
// serialized as one contiguous blob starting on a page boundary, so a
// segment read is a single aligned pread and the file layout stays simple
// enough to inspect with a hex dump: page 0 of every blob starts with the
// segMagic header.
const pageSize = 4096

// segMagic marks the first bytes of every on-disk segment blob.
var segMagic = [4]byte{'S', 'E', 'G', '1'}

// Pager owns one append-only heap file holding spilled segments. Appends are
// serialized by a mutex; reads use pread (ReadAt) and are safe concurrently
// with each other and with appends, since a blob is immutable once written
// and readers only ever ask for offsets the pager has already handed out.
type Pager struct {
	mu   sync.Mutex
	f    *os.File
	path string
	end  int64 // next page-aligned write offset
}

// NewPager creates (truncating) the heap file <dir>/<name>.seg.
func NewPager(dir, name string) (*Pager, error) {
	path := filepath.Join(dir, name+".seg")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relational: pager: %w", err)
	}
	return &Pager{f: f, path: path}, nil
}

// Path returns the heap file's path.
func (p *Pager) Path() string { return p.path }

// Close closes and removes the heap file.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	if rmErr := os.Remove(p.path); err == nil {
		err = rmErr
	}
	p.f = nil
	return err
}

// appendBlob writes blob at the next page boundary and returns its offset.
func (p *Pager) appendBlob(blob []byte) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return 0, fmt.Errorf("relational: pager: closed")
	}
	off := p.end
	if _, err := p.f.WriteAt(blob, off); err != nil {
		return 0, fmt.Errorf("relational: pager write: %w", err)
	}
	pages := (int64(len(blob)) + pageSize - 1) / pageSize
	p.end = off + pages*pageSize
	return off, nil
}

// readBlob preads length bytes at off.
func (p *Pager) readBlob(off int64, length int) ([]byte, error) {
	blob := make([]byte, length)
	if _, err := p.f.ReadAt(blob, off); err != nil {
		return nil, fmt.Errorf("relational: pager read: %w", err)
	}
	return blob, nil
}

// Column width tags in the serialized segment layout.
const (
	widthU8  = 1
	widthU16 = 2
	widthU32 = 4
)

// encodeSegment serializes a sealed segment:
//
//	magic | u32 nrows | u32 ncols | ncols × (u8 widthTag | u32 byteLen | raw LE bytes)
//
// Codes are stored at their in-memory width, so a spilled segment costs the
// same bytes on disk as resident (plus the header and page-rounding slack).
func encodeSegment(s *segment) []byte {
	size := len(segMagic) + 8
	for j := range s.cols {
		size += 5 + colByteLen(&s.cols[j], s.n)
	}
	blob := make([]byte, 0, size)
	blob = append(blob, segMagic[:]...)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(s.n))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(s.cols)))
	for j := range s.cols {
		c := &s.cols[j]
		switch {
		case c.u8 != nil:
			blob = append(blob, widthU8)
			blob = binary.LittleEndian.AppendUint32(blob, uint32(s.n))
			blob = append(blob, c.u8[:s.n]...)
		case c.u16 != nil:
			blob = append(blob, widthU16)
			blob = binary.LittleEndian.AppendUint32(blob, uint32(2*s.n))
			for _, v := range c.u16[:s.n] {
				blob = binary.LittleEndian.AppendUint16(blob, v)
			}
		default:
			blob = append(blob, widthU32)
			blob = binary.LittleEndian.AppendUint32(blob, uint32(4*s.n))
			for _, v := range c.u32[:s.n] {
				blob = binary.LittleEndian.AppendUint32(blob, uint32(v))
			}
		}
	}
	return blob
}

// colByteLen returns the payload bytes of one column at the segment's width.
func colByteLen(c *colData, n int) int {
	switch {
	case c.u8 != nil:
		return n
	case c.u16 != nil:
		return 2 * n
	default:
		return 4 * n
	}
}

// decodeSegment parses an encodeSegment blob back into a resident segment.
// Corruption is an error, not a panic: a heap file is external state.
func decodeSegment(blob []byte, wantRows, wantCols int) (*segment, error) {
	if len(blob) < len(segMagic)+8 || [4]byte(blob[:4]) != segMagic {
		return nil, fmt.Errorf("relational: segment blob: bad magic")
	}
	n := int(binary.LittleEndian.Uint32(blob[4:]))
	ncols := int(binary.LittleEndian.Uint32(blob[8:]))
	if n != wantRows || ncols != wantCols {
		return nil, fmt.Errorf("relational: segment blob: header %d×%d, expected %d×%d", n, ncols, wantRows, wantCols)
	}
	s := &segment{n: n, cols: make([]colData, ncols)}
	at := len(segMagic) + 8
	for j := 0; j < ncols; j++ {
		if at+5 > len(blob) {
			return nil, fmt.Errorf("relational: segment blob: truncated column %d header", j)
		}
		tag := blob[at]
		length := int(binary.LittleEndian.Uint32(blob[at+1:]))
		at += 5
		if at+length > len(blob) {
			return nil, fmt.Errorf("relational: segment blob: truncated column %d payload", j)
		}
		payload := blob[at : at+length]
		at += length
		switch tag {
		case widthU8:
			if length != n {
				return nil, fmt.Errorf("relational: segment blob: column %d u8 length %d != %d", j, length, n)
			}
			s.cols[j].u8 = append([]uint8(nil), payload...)
		case widthU16:
			if length != 2*n {
				return nil, fmt.Errorf("relational: segment blob: column %d u16 length %d != %d", j, length, 2*n)
			}
			vs := make([]uint16, n)
			for i := range vs {
				vs[i] = binary.LittleEndian.Uint16(payload[2*i:])
			}
			s.cols[j].u16 = vs
		case widthU32:
			if length != 4*n {
				return nil, fmt.Errorf("relational: segment blob: column %d u32 length %d != %d", j, length, 4*n)
			}
			vs := make([]Value, n)
			for i := range vs {
				vs[i] = Value(binary.LittleEndian.Uint32(payload[4*i:]))
			}
			s.cols[j].u32 = vs
		default:
			return nil, fmt.Errorf("relational: segment blob: column %d has unknown width tag %d", j, tag)
		}
	}
	return s, nil
}
