package relational

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/fault"
)

// segFileSuffix names segment heap files; fsck and orphan cleanup match it.
const segFileSuffix = ".seg"

// livePagers tracks heap-file paths with an open Pager in this process, so
// SweepOrphans never removes a file another live table is still reading.
var livePagers sync.Map // path → struct{}

// SweepOrphans removes heap files (*.seg) and stray temp files (*.seg.tmp)
// in dir that no live Pager in this process owns — the leftovers of a
// crashed or error-aborted earlier run. It assumes single-process ownership
// of a spill directory, which is how every caller uses one. It returns the
// removed paths.
func SweepOrphans(fsys fault.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("relational: sweep orphans: %w", err)
	}
	var removed []string
	var firstErr error
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if !strings.HasSuffix(name, segFileSuffix) && !strings.HasSuffix(name, segFileSuffix+".tmp") {
			continue
		}
		path := filepath.Join(dir, name)
		if _, live := livePagers.Load(path); live {
			continue
		}
		if err := fsys.Remove(path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed = append(removed, path)
	}
	return removed, firstErr
}

// pageSize is the allocation unit of a segment heap file. Segments are
// serialized as one contiguous blob starting on a page boundary, so a
// segment read is a single aligned pread and the file layout stays simple
// enough to inspect with a hex dump: page 0 of every blob starts with the
// segMagic header.
const pageSize = 4096

// segMagic marks the first bytes of every on-disk segment blob.
var segMagic = [4]byte{'S', 'E', 'G', '1'}

// segFormatVersion is the current on-disk blob format. Version 2 added the
// self-describing header (payload length) and the CRC32C checksum; version 1
// blobs (pre-checksum) are rejected rather than trusted.
const segFormatVersion = 2

// segHeaderLen is the fixed v2 blob header:
//
//	magic(4) | u32 version | u32 payloadLen | u32 crc32c(payload)
const segHeaderLen = 16

// castagnoli is the CRC32C polynomial table — hardware-accelerated on
// amd64/arm64, and the checksum used by iSCSI, ext4, and most storage
// engines for the same reason.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptSegmentError reports a sealed segment that could not be read back
// intact from its heap file: a failed pread, a torn or truncated blob, a
// checksum mismatch, or a malformed payload. It identifies the table, the
// segment index, and the heap-file byte offset so the damage can be located
// with `hamlet -fsck` or a hex dump. It is delivered by panic from the
// Relation read methods (which cannot return errors); the core layer
// recovers it at training/eval entry points and returns it as an error.
type CorruptSegmentError struct {
	Table   string
	Segment int
	Offset  int64
	Err     error
}

func (e *CorruptSegmentError) Error() string {
	return fmt.Sprintf("relational: corrupt segment: table %q segment %d at heap offset %d: %v",
		e.Table, e.Segment, e.Offset, e.Err)
}

func (e *CorruptSegmentError) Unwrap() error { return e.Err }

// Pager owns one append-only heap file holding spilled segments. Appends are
// serialized by a mutex; reads use pread (ReadAt) and are safe concurrently
// with each other and with appends, since a blob is immutable once written
// and readers only ever ask for offsets the pager has already handed out.
// All I/O goes through the fault.FS seam so tests can script failures.
type Pager struct {
	mu   sync.Mutex
	fs   fault.FS
	f    fault.File
	path string
	end  int64 // next page-aligned write offset
}

// NewPager creates (truncating) the heap file <dir>/<name>.seg on the real
// filesystem.
func NewPager(dir, name string) (*Pager, error) {
	return NewPagerFS(fault.OS, dir, name)
}

// NewPagerFS is NewPager over an injectable filesystem.
func NewPagerFS(fsys fault.FS, dir, name string) (*Pager, error) {
	path := filepath.Join(dir, name+segFileSuffix)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("relational: pager: %w", err)
	}
	livePagers.Store(path, struct{}{})
	return &Pager{fs: fsys, f: f, path: path}, nil
}

// Path returns the heap file's path.
func (p *Pager) Path() string { return p.path }

// Close closes and removes the heap file.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Close()
	livePagers.Delete(p.path)
	if rmErr := p.fs.Remove(p.path); err == nil {
		err = rmErr
	}
	p.f = nil
	return err
}

// appendBlob writes blob at the next page boundary and returns its offset.
// The write offset only advances on success, so a torn or failed write
// leaves the file logically unchanged — the next append overwrites the
// partial bytes.
func (p *Pager) appendBlob(blob []byte) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return 0, fmt.Errorf("relational: pager: closed")
	}
	off := p.end
	if _, err := p.f.WriteAt(blob, off); err != nil {
		return 0, fmt.Errorf("relational: pager write: %w", err)
	}
	pages := (int64(len(blob)) + pageSize - 1) / pageSize
	p.end = off + pages*pageSize
	return off, nil
}

// readBlob preads length bytes at off.
func (p *Pager) readBlob(off int64, length int) ([]byte, error) {
	blob := make([]byte, length)
	if _, err := p.f.ReadAt(blob, off); err != nil {
		return nil, fmt.Errorf("pager read: %w", err)
	}
	return blob, nil
}

// Column width tags in the serialized segment layout.
const (
	widthU8  = 1
	widthU16 = 2
	widthU32 = 4
)

// encodeSegment serializes a sealed segment as a v2 blob:
//
//	magic | u32 version | u32 payloadLen | u32 crc32c | payload
//
// where payload is
//
//	u32 nrows | u32 ncols | ncols × (u8 widthTag | u32 byteLen | raw LE bytes)
//
// Codes are stored at their in-memory width, so a spilled segment costs the
// same bytes on disk as resident (plus the header and page-rounding slack).
// The checksum covers the payload; the header fields are validated
// structurally on decode.
func encodeSegment(s *segment) []byte {
	size := segHeaderLen + 8
	for j := range s.cols {
		size += 5 + colByteLen(&s.cols[j], s.n)
	}
	blob := make([]byte, segHeaderLen, size)
	copy(blob, segMagic[:])
	binary.LittleEndian.PutUint32(blob[4:], segFormatVersion)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(s.n))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(s.cols)))
	for j := range s.cols {
		c := &s.cols[j]
		switch {
		case c.u8 != nil:
			blob = append(blob, widthU8)
			blob = binary.LittleEndian.AppendUint32(blob, uint32(s.n))
			blob = append(blob, c.u8[:s.n]...)
		case c.u16 != nil:
			blob = append(blob, widthU16)
			blob = binary.LittleEndian.AppendUint32(blob, uint32(2*s.n))
			for _, v := range c.u16[:s.n] {
				blob = binary.LittleEndian.AppendUint16(blob, v)
			}
		default:
			blob = append(blob, widthU32)
			blob = binary.LittleEndian.AppendUint32(blob, uint32(4*s.n))
			for _, v := range c.u32[:s.n] {
				blob = binary.LittleEndian.AppendUint32(blob, uint32(v))
			}
		}
	}
	payload := blob[segHeaderLen:]
	binary.LittleEndian.PutUint32(blob[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(blob[12:], crc32.Checksum(payload, castagnoli))
	return blob
}

// colByteLen returns the payload bytes of one column at the segment's width.
func colByteLen(c *colData, n int) int {
	switch {
	case c.u8 != nil:
		return n
	case c.u16 != nil:
		return 2 * n
	default:
		return 4 * n
	}
}

// parseSegmentHeader validates the fixed fields of a v2 blob header (magic,
// version, plausible payload length) and returns the payload length. It does
// not touch the payload — callers use it to size the payload read before
// checkSegmentHeader verifies the checksum.
func parseSegmentHeader(hdr []byte) (plen int, err error) {
	if len(hdr) < segHeaderLen {
		return 0, fmt.Errorf("blob %d bytes, shorter than the %d-byte header", len(hdr), segHeaderLen)
	}
	if [4]byte(hdr[:4]) != segMagic {
		return 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != segFormatVersion {
		return 0, fmt.Errorf("unsupported segment format version %d (want %d)", v, segFormatVersion)
	}
	plen = int(binary.LittleEndian.Uint32(hdr[8:]))
	if plen < 8 {
		return 0, fmt.Errorf("implausible payload length %d", plen)
	}
	return plen, nil
}

// checkSegmentHeader validates a v2 blob header against the bytes that
// follow it and returns the payload. It catches torn writes (payload length
// past the blob), bit rot (CRC mismatch), and format drift (bad magic or
// version) before any payload byte is trusted.
func checkSegmentHeader(blob []byte) ([]byte, error) {
	plen, err := parseSegmentHeader(blob)
	if err != nil {
		return nil, err
	}
	if plen > len(blob)-segHeaderLen {
		return nil, fmt.Errorf("payload length %d does not fit blob of %d bytes (torn write?)", plen, len(blob))
	}
	payload := blob[segHeaderLen : segHeaderLen+plen]
	want := binary.LittleEndian.Uint32(blob[12:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("checksum mismatch: stored %08x, computed %08x", want, got)
	}
	return payload, nil
}

// decodeSegment parses an encodeSegment blob back into a resident segment,
// verifying the header and CRC32C first. Corruption is an error, not a
// panic: a heap file is external state. wantRows/wantCols < 0 skips the
// expectation check (fsck walks files without table metadata).
func decodeSegment(blob []byte, wantRows, wantCols int) (*segment, error) {
	payload, err := checkSegmentHeader(blob)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(payload))
	ncols := int(binary.LittleEndian.Uint32(payload[4:]))
	if wantRows >= 0 && (n != wantRows || ncols != wantCols) {
		return nil, fmt.Errorf("header %d×%d, expected %d×%d", n, ncols, wantRows, wantCols)
	}
	if n < 0 || ncols < 0 || ncols > len(payload) {
		return nil, fmt.Errorf("implausible header %d×%d", n, ncols)
	}
	s := &segment{n: n, cols: make([]colData, ncols)}
	at := 8
	for j := 0; j < ncols; j++ {
		if at+5 > len(payload) {
			return nil, fmt.Errorf("truncated column %d header", j)
		}
		tag := payload[at]
		length := int(binary.LittleEndian.Uint32(payload[at+1:]))
		at += 5
		if length < 0 || at+length > len(payload) {
			return nil, fmt.Errorf("truncated column %d payload", j)
		}
		col := payload[at : at+length]
		at += length
		switch tag {
		case widthU8:
			if length != n {
				return nil, fmt.Errorf("column %d u8 length %d != %d", j, length, n)
			}
			s.cols[j].u8 = append([]uint8(nil), col...)
		case widthU16:
			if length != 2*n {
				return nil, fmt.Errorf("column %d u16 length %d != %d", j, length, 2*n)
			}
			vs := make([]uint16, n)
			for i := range vs {
				vs[i] = binary.LittleEndian.Uint16(col[2*i:])
			}
			s.cols[j].u16 = vs
		case widthU32:
			if length != 4*n {
				return nil, fmt.Errorf("column %d u32 length %d != %d", j, length, 4*n)
			}
			vs := make([]Value, n)
			for i := range vs {
				vs[i] = Value(binary.LittleEndian.Uint32(col[4*i:]))
			}
			s.cols[j].u32 = vs
		default:
			return nil, fmt.Errorf("column %d has unknown width tag %d", j, tag)
		}
	}
	return s, nil
}
