package relational

import "repro/internal/obs"

// Storage-layer telemetry, registered once on the process-wide obs registry.
// Two families:
//
//   - segment cache: per-process totals of the out-of-core tier's LRU cache.
//     Only the pager path records here — an in-memory SegmentedTable has no
//     cache to hit or miss, so the non-spilled acquire fast path stays
//     untouched (the SegParScan/NBFitSegmented parity benches prove no tax).
//   - zone maps: segments skipped vs scanned by zone-map-pruned equality
//     scans. Recorded in two batched adds per SelectEq, not per segment.
//
// hamletd's /metrics and /stats both read these counters, so the live answer
// to "is the segment cache thrashing" is one scrape away instead of a bench
// rerun.
var (
	// SegCacheHits counts acquires satisfied by a resident sealed segment.
	SegCacheHits = obs.Default.NewCounter("hamlet_segcache_hits_total",
		"segment-cache acquires satisfied without a heap-file read")
	// SegCacheMisses counts faults — acquires that had to pread the segment
	// back from the heap file.
	SegCacheMisses = obs.Default.NewCounter("hamlet_segcache_misses_total",
		"segment-cache acquires that faulted the segment in from disk")
	// SegCacheEvictions counts LRU evictions of resident segments.
	SegCacheEvictions = obs.Default.NewCounter("hamlet_segcache_evictions_total",
		"sealed segments evicted from the resident set")
	// SegCacheFaultedBytes accumulates the resident bytes of faulted-in
	// segments — the cache's disk-traffic proxy.
	SegCacheFaultedBytes = obs.Default.NewCounter("hamlet_segcache_faulted_bytes_total",
		"bytes paged back in by segment faults")
	// ZoneSegmentsSkipped counts segments a zone map proved free of the
	// probed value (no data touched, no fault taken).
	ZoneSegmentsSkipped = obs.Default.NewCounter(`hamlet_zonemap_segments_total{outcome="skipped"}`,
		"segments pruned by zone maps in equality scans")
	// ZoneSegmentsScanned counts segments that survived pruning and were
	// actually scanned.
	ZoneSegmentsScanned = obs.Default.NewCounter(`hamlet_zonemap_segments_total{outcome="scanned"}`,
		"segments scanned after zone-map pruning in equality scans")
	// StorageCorruptionDetected counts segment reads that failed the
	// checksum/decode or the pread itself — every one of these surfaced as a
	// CorruptSegmentError, never as silent wrong bytes.
	StorageCorruptionDetected = obs.Default.NewCounter("hamlet_storage_corruption_detected_total",
		"heap-file segment reads rejected as corrupt (checksum, decode, or I/O failure)")
)
