package relational

import (
	"fmt"
	"sort"
)

// Predicate decides whether a row belongs to a selection result.
type Predicate func(row []Value) bool

// Select (relational σ) materializes the rows of r satisfying pred, in
// order. Data scientists building fact tables from raw event tables need σ
// and π constantly; these helpers keep that preprocessing inside the
// library instead of ad-hoc loops. The predicate receives a scratch row that
// is only valid for the duration of the call.
func Select(r Relation, name string, pred Predicate) *Table {
	schema := r.Schema()
	out := NewTable(name, schema, 0)
	n := r.NumRows()
	row := make([]Value, schema.Width())
	for i := 0; i < n; i++ {
		r.CopyRow(row, i)
		if pred(row) {
			out.rows = append(out.rows, row...)
		}
	}
	return out
}

// segmentZoned is the zone-map surface SelectEq needs to prove whole
// segments free of a value. SegmentedTable implements it.
type segmentZoned interface {
	Relation
	ColumnScanner
	NumSegments() int
	SegmentRows(s int) (lo, hi int)
	SegmentMayContain(s, col int, v Value) bool
}

// SelectEq is Select with an equality predicate on one column. On a
// segmented source it consults the per-segment zone maps first: a segment
// whose [min, max] excludes v is skipped without touching its data (or, when
// spilled, without faulting it in). Matching rows come out in ascending row
// order either way, so the result is identical to the generic scan.
func SelectEq(r Relation, name string, col int, v Value) (*Table, error) {
	schema := r.Schema()
	if col < 0 || col >= schema.Width() {
		return nil, fmt.Errorf("relational: column %d out of range", col)
	}
	if !schema.Cols[col].Domain.Contains(v) {
		return nil, fmt.Errorf("relational: value %d outside domain of %q", v, schema.Cols[col].Name)
	}
	if sz, ok := r.(segmentZoned); ok {
		return selectEqZoned(sz, name, col, v), nil
	}
	return Select(r, name, func(row []Value) bool { return row[col] == v }), nil
}

// selectEqZoned is the segment-skipping equality scan: per surviving
// segment, one sequential scan of the predicate column and a CopyRow per hit.
func selectEqZoned(r segmentZoned, name string, col int, v Value) *Table {
	schema := r.Schema()
	out := NewTable(name, schema, 0)
	row := make([]Value, schema.Width())
	var buf []Value
	var skipped, scanned uint64
	for s, ns := 0, r.NumSegments(); s < ns; s++ {
		if !r.SegmentMayContain(s, col, v) {
			skipped++
			continue
		}
		scanned++
		lo, hi := r.SegmentRows(s)
		if m := hi - lo; cap(buf) < m {
			buf = make([]Value, m)
		}
		got := r.ScanColumn(col, lo, buf[:hi-lo])
		for k := 0; k < got; k++ {
			if buf[k] == v {
				r.CopyRow(row, lo+k)
				out.rows = append(out.rows, row...)
			}
		}
	}
	// Two batched adds per scan, not one per segment.
	ZoneSegmentsSkipped.Add(skipped)
	ZoneSegmentsScanned.Add(scanned)
	return out
}

// Project (relational π) materializes a new table with only the named
// columns, in the given order. Projection never deduplicates (bag
// semantics), matching the paper's π in T ← π(R ⋈ S). For a lazy
// alternative see NewProjectView.
func Project(r Relation, name string, cols []string) (*Table, error) {
	schema := r.Schema()
	idx := make([]int, len(cols))
	for j, c := range cols {
		i := schema.Index(c)
		if i < 0 {
			return nil, fmt.Errorf("relational: project: unknown column %q", c)
		}
		idx[j] = i
	}
	view, err := NewProjectView(r, idx)
	if err != nil {
		return nil, err
	}
	return Materialize(view, name), nil
}

// groupBySliceThreshold bounds the domain size for which GroupBy uses a
// dense slice accumulator instead of a map. Above it the map's memory
// proportional to *observed* distinct values wins.
const groupBySliceThreshold = 1 << 16

// GroupBy counts rows per value of one column, sorted by descending count
// (ties by ascending value). It is the workhorse behind tuple-ratio
// estimation from raw data and FK skew inspection. Small closed domains use
// a dense slice accumulator (no hashing in the per-row loop); larger ones
// fall back to a map.
func GroupBy(r Relation, col int) ([]GroupCount, error) {
	schema := r.Schema()
	if col < 0 || col >= schema.Width() {
		return nil, fmt.Errorf("relational: column %d out of range", col)
	}
	n := r.NumRows()
	var out []GroupCount
	if dom := schema.Cols[col].Domain.Size; dom <= groupBySliceThreshold {
		counts := make([]int, dom)
		for i := 0; i < n; i++ {
			counts[r.At(i, col)]++
		}
		for v, c := range counts {
			if c > 0 {
				out = append(out, GroupCount{Value: Value(v), Count: c})
			}
		}
	} else {
		counts := make(map[Value]int)
		for i := 0; i < n; i++ {
			counts[r.At(i, col)]++
		}
		out = make([]GroupCount, 0, len(counts))
		for v, c := range counts {
			out = append(out, GroupCount{Value: v, Count: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	return out, nil
}

// GroupCount is one group of GroupBy: the grouping value and its row count.
type GroupCount struct {
	Value Value
	Count int
}

// DistinctCount returns the number of distinct values in a column — the
// n_R estimate when the dimension table itself is unavailable and the tuple
// ratio must be derived from the fact table's FK column alone.
func DistinctCount(r Relation, col int) (int, error) {
	groups, err := GroupBy(r, col)
	if err != nil {
		return 0, err
	}
	return len(groups), nil
}

// EstimateTupleRatio computes n_S / distinct(FK) from a fact table alone:
// the advisor's decision statistic when even the dimension table's
// cardinality is unknown. It errs on the optimistic side (distinct observed
// values ≤ |D_FK|), so callers comparing against a safety threshold get a
// conservative *decision* — a smaller denominator would only raise the
// ratio; using the full domain size when known is still preferred.
func EstimateTupleRatio(fact Relation, fkCol int) (float64, error) {
	c := fact.Schema().Cols[fkCol]
	if c.Kind != KindForeignKey {
		return 0, fmt.Errorf("relational: column %q is %v, not a foreign key", c.Name, c.Kind)
	}
	d, err := DistinctCount(fact, fkCol)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		return 0, fmt.Errorf("relational: empty fact table")
	}
	return float64(fact.NumRows()) / float64(d), nil
}
