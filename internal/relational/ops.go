package relational

import (
	"fmt"
	"sort"
)

// Predicate decides whether a row belongs to a selection result.
type Predicate func(row []Value) bool

// Select (relational σ) materializes the rows of t satisfying pred, in
// order. Data scientists building fact tables from raw event tables need σ
// and π constantly; these helpers keep that preprocessing inside the
// library instead of ad-hoc loops.
func Select(t *Table, name string, pred Predicate) *Table {
	out := NewTable(name, t.Schema, 0)
	for i := 0; i < t.NumRows(); i++ {
		row := t.Row(i)
		if pred(row) {
			out.rows = append(out.rows, row...)
		}
	}
	return out
}

// SelectEq is Select with an equality predicate on one column.
func SelectEq(t *Table, name string, col int, v Value) (*Table, error) {
	if col < 0 || col >= t.Schema.Width() {
		return nil, fmt.Errorf("relational: column %d out of range", col)
	}
	if !t.Schema.Cols[col].Domain.Contains(v) {
		return nil, fmt.Errorf("relational: value %d outside domain of %q", v, t.Schema.Cols[col].Name)
	}
	return Select(t, name, func(row []Value) bool { return row[col] == v }), nil
}

// Project (relational π) materializes a new table with only the named
// columns, in the given order. Projection never deduplicates (bag
// semantics), matching the paper's π in T ← π(R ⋈ S).
func Project(t *Table, name string, cols []string) (*Table, error) {
	idx := make([]int, len(cols))
	newCols := make([]Column, len(cols))
	for j, c := range cols {
		i := t.Schema.Index(c)
		if i < 0 {
			return nil, fmt.Errorf("relational: project: unknown column %q", c)
		}
		idx[j] = i
		newCols[j] = t.Schema.Cols[i]
	}
	schema, err := NewSchema(newCols...)
	if err != nil {
		return nil, err
	}
	out := NewTable(name, schema, t.NumRows())
	row := make([]Value, len(idx))
	for i := 0; i < t.NumRows(); i++ {
		src := t.Row(i)
		for j, c := range idx {
			row[j] = src[c]
		}
		out.rows = append(out.rows, row...)
	}
	return out, nil
}

// GroupCount is one group of GroupBy: the grouping value and its row count.
type GroupCount struct {
	Value Value
	Count int
}

// GroupBy counts rows per value of one column, sorted by descending count
// (ties by ascending value). It is the workhorse behind tuple-ratio
// estimation from raw data and FK skew inspection.
func GroupBy(t *Table, col int) ([]GroupCount, error) {
	if col < 0 || col >= t.Schema.Width() {
		return nil, fmt.Errorf("relational: column %d out of range", col)
	}
	counts := make(map[Value]int)
	for i := 0; i < t.NumRows(); i++ {
		counts[t.At(i, col)]++
	}
	out := make([]GroupCount, 0, len(counts))
	for v, c := range counts {
		out = append(out, GroupCount{Value: v, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	return out, nil
}

// DistinctCount returns the number of distinct values in a column — the
// n_R estimate when the dimension table itself is unavailable and the tuple
// ratio must be derived from the fact table's FK column alone.
func DistinctCount(t *Table, col int) (int, error) {
	groups, err := GroupBy(t, col)
	if err != nil {
		return 0, err
	}
	return len(groups), nil
}

// EstimateTupleRatio computes n_S / distinct(FK) from a fact table alone:
// the advisor's decision statistic when even the dimension table's
// cardinality is unknown. It errs on the optimistic side (distinct observed
// values ≤ |D_FK|), so callers comparing against a safety threshold get a
// conservative *decision* — a smaller denominator would only raise the
// ratio; using the full domain size when known is still preferred.
func EstimateTupleRatio(fact *Table, fkCol int) (float64, error) {
	c := fact.Schema.Cols[fkCol]
	if c.Kind != KindForeignKey {
		return 0, fmt.Errorf("relational: column %q is %v, not a foreign key", c.Name, c.Kind)
	}
	d, err := DistinctCount(fact, fkCol)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		return 0, fmt.Errorf("relational: empty fact table")
	}
	return float64(fact.NumRows()) / float64(d), nil
}
