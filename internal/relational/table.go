package relational

import (
	"fmt"
)

// Table is a column-named, row-major matrix of categorical codes. Rows are
// stored contiguously ([]Value of length Width per row) for cache-friendly
// scans; all learners in this repository consume tables through views that
// avoid copying. Table implements Relation and is its only physical
// (materialized) implementation.
type Table struct {
	Name   string
	schema *Schema
	width  int     // cached schema.Width(); hot accessors avoid the pointer chase
	rows   []Value // len == NumRows * width
}

// NewTable creates an empty table with capacity hint rows.
func NewTable(name string, schema *Schema, capHint int) *Table {
	return &Table{
		Name:   name,
		schema: schema,
		width:  schema.Width(),
		rows:   make([]Value, 0, capHint*schema.Width()),
	}
}

// Schema implements Relation.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows implements Relation.
func (t *Table) NumRows() int {
	if t.width == 0 {
		return 0
	}
	return len(t.rows) / t.width
}

// AppendRow appends one row after validating width and domain membership.
func (t *Table) AppendRow(row []Value) error {
	if len(row) != t.width {
		return fmt.Errorf("relational: table %q expects %d columns, row has %d", t.Name, t.width, len(row))
	}
	for i, v := range row {
		if !t.schema.Cols[i].Domain.Contains(v) {
			return fmt.Errorf("relational: table %q column %q: value %d outside domain of size %d",
				t.Name, t.schema.Cols[i].Name, v, t.schema.Cols[i].Domain.Size)
		}
	}
	t.rows = append(t.rows, row...)
	return nil
}

// MustAppendRow is AppendRow for generator code where rows are correct by
// construction.
func (t *Table) MustAppendRow(row []Value) {
	if err := t.AppendRow(row); err != nil {
		panic(err)
	}
}

// Reserve grows the table's capacity to hold n more rows without
// reallocation.
func (t *Table) Reserve(n int) {
	need := len(t.rows) + n*t.width
	if cap(t.rows) >= need {
		return
	}
	grown := make([]Value, len(t.rows), need)
	copy(grown, t.rows)
	t.rows = grown
}

// AppendRows bulk-appends a row-major block (len(block) must be a multiple
// of the table width). It is the ingestion fast path: domain validation is
// hoisted out of the per-value loop into one strided pass per column, so
// the inner check is a bound compare instead of a schema/domain pointer
// chase per cell. On error nothing is appended.
func (t *Table) AppendRows(block []Value) error {
	if _, err := validateBlock(t.schema, t.Name, block); err != nil {
		return err
	}
	t.rows = append(t.rows, block...)
	return nil
}

// validateBlock is the shared bulk-ingestion check of both storage engines:
// the block must be a whole number of rows, and each column is verified
// against its domain bound in one strided pass. Returns the row count.
func validateBlock(schema *Schema, name string, block []Value) (int, error) {
	w := schema.Width()
	if w == 0 || len(block)%w != 0 {
		return 0, fmt.Errorf("relational: table %q: block of %d values is not a multiple of width %d", name, len(block), w)
	}
	nRows := len(block) / w
	for j := 0; j < w; j++ {
		size := Value(schema.Cols[j].Domain.Size)
		for k, at := 0, j; k < nRows; k, at = k+1, at+w {
			if v := block[at]; v < 0 || v >= size {
				return 0, fmt.Errorf("relational: table %q column %q row %d: value %d outside domain of size %d",
					name, schema.Cols[j].Name, k, v, size)
			}
		}
	}
	return nRows, nil
}

// MustAppendRows is AppendRows for generator code where rows are correct by
// construction.
func (t *Table) MustAppendRows(block []Value) {
	if err := t.AppendRows(block); err != nil {
		panic(err)
	}
}

// Row returns a read-only view of row i. The returned slice aliases the
// table's storage; callers must not modify it.
func (t *Table) Row(i int) []Value {
	return t.rows[i*t.width : (i+1)*t.width : (i+1)*t.width]
}

// At implements Relation.
func (t *Table) At(row, col int) Value {
	return t.rows[row*t.width+col]
}

// CopyRow implements Relation.
func (t *Table) CopyRow(dst []Value, row int) []Value {
	dst = dst[:t.width]
	copy(dst, t.rows[row*t.width:(row+1)*t.width])
	return dst
}

// Set overwrites the value at (row, col) after a domain check.
func (t *Table) Set(row, col int, v Value) error {
	if !t.schema.Cols[col].Domain.Contains(v) {
		return fmt.Errorf("relational: table %q column %q: value %d outside domain",
			t.Name, t.schema.Cols[col].Name, v)
	}
	t.rows[row*t.width+col] = v
	return nil
}

// ScanColumn implements ColumnScanner: a strided walk over the row-major
// storage. The columnar engine does strictly better here (sequential narrow
// reads); this implementation exists so the batch training path works
// against either physical layout.
func (t *Table) ScanColumn(col int, from int, dst []Value) int {
	m := scanLen(t.NumRows(), from, len(dst))
	w := t.width
	at := from*w + col
	for k := 0; k < m; k++ {
		dst[k] = t.rows[at]
		at += w
	}
	return m
}

// GatherColumn implements ColumnGatherer.
func (t *Table) GatherColumn(dst []Value, col int, rows []int) {
	w := t.width
	dst = dst[:len(rows)]
	for k, r := range rows {
		dst[k] = t.rows[r*w+col]
	}
}

// GatherColumnVia implements ColumnViaGatherer — the fused double-remap
// gather a SelectView stacked on this table uses.
func (t *Table) GatherColumnVia(dst []Value, col int, idx []int, rows []int) {
	w := t.width
	dst = dst[:len(rows)]
	for k, r := range rows {
		dst[k] = t.rows[idx[r]*w+col]
	}
}

// ColumnValues copies column col into a fresh slice.
func (t *Table) ColumnValues(col int) []Value {
	n := t.NumRows()
	w := t.width
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		out[i] = t.rows[i*w+col]
	}
	return out
}

// SelectRows materializes a new table containing the given row indices in
// order. Indices may repeat; they must be in range. For a lazy alternative
// see NewSelectView.
func (t *Table) SelectRows(name string, idx []int) *Table {
	out := NewTable(name, t.schema, len(idx))
	for _, i := range idx {
		out.rows = append(out.rows, t.Row(i)...)
	}
	return out
}

// Clone deep-copies the table (schema is shared; schemas are immutable by
// convention).
func (t *Table) Clone(name string) *Table {
	out := &Table{Name: name, schema: t.schema, width: t.width, rows: append([]Value(nil), t.rows...)}
	return out
}

// StarSchema bundles one fact table S with its dimension tables R_1..R_q in
// the paper's notation. Dimension tables are addressed by name; fact-table
// foreign-key columns carry the referenced dimension's name in Column.Refs.
type StarSchema struct {
	Fact       *Table
	Dimensions map[string]*Table
	// TargetCol is the index of the Y column in Fact.
	TargetCol int
}

// NewStarSchema validates referential structure: the fact table must have
// exactly one target column, every FK column must reference a known
// dimension whose primary key domain matches the FK domain, and every
// dimension must have exactly one primary-key column whose values are the
// dense identity (row i has RID i), which is how KFK joins stay O(1).
func NewStarSchema(fact *Table, dims ...*Table) (*StarSchema, error) {
	ss := &StarSchema{Fact: fact, Dimensions: make(map[string]*Table, len(dims)), TargetCol: -1}
	for _, d := range dims {
		if _, dup := ss.Dimensions[d.Name]; dup {
			return nil, fmt.Errorf("relational: duplicate dimension table %q", d.Name)
		}
		pks := d.schema.ColumnsOfKind(KindPrimaryKey)
		if len(pks) != 1 {
			return nil, fmt.Errorf("relational: dimension %q must have exactly 1 primary key, has %d", d.Name, len(pks))
		}
		pk := pks[0]
		if d.schema.Cols[pk].Domain.Size != d.NumRows() {
			return nil, fmt.Errorf("relational: dimension %q primary key domain size %d != row count %d",
				d.Name, d.schema.Cols[pk].Domain.Size, d.NumRows())
		}
		for i := 0; i < d.NumRows(); i++ {
			if d.At(i, pk) != Value(i) {
				return nil, fmt.Errorf("relational: dimension %q row %d has RID %d; dense identity required",
					d.Name, i, d.At(i, pk))
			}
		}
		ss.Dimensions[d.Name] = d
	}
	targets := fact.schema.ColumnsOfKind(KindTarget)
	if len(targets) != 1 {
		return nil, fmt.Errorf("relational: fact table %q must have exactly 1 target column, has %d", fact.Name, len(targets))
	}
	ss.TargetCol = targets[0]
	for _, fkCol := range fact.schema.ColumnsOfKind(KindForeignKey) {
		c := fact.schema.Cols[fkCol]
		dim, ok := ss.Dimensions[c.Refs]
		if !ok {
			return nil, fmt.Errorf("relational: fact FK %q references unknown dimension %q", c.Name, c.Refs)
		}
		pk := dim.schema.ColumnsOfKind(KindPrimaryKey)[0]
		if dim.schema.Cols[pk].Domain.Size != c.Domain.Size {
			return nil, fmt.Errorf("relational: FK %q domain size %d != dimension %q key domain size %d",
				c.Name, c.Domain.Size, c.Refs, dim.schema.Cols[pk].Domain.Size)
		}
	}
	return ss, nil
}

// DimensionNames returns dimension table names in fact-schema FK order.
func (ss *StarSchema) DimensionNames() []string {
	var out []string
	for _, fkCol := range ss.Fact.schema.ColumnsOfKind(KindForeignKey) {
		out = append(out, ss.Fact.schema.Cols[fkCol].Refs)
	}
	return out
}

// TupleRatio returns n_S / n_R for the named dimension table — the paper's
// central decision statistic. Crucially this needs only the dimension
// table's *cardinality* (its key domain size), not its contents, which is
// why the decision can be made before procuring the table.
func (ss *StarSchema) TupleRatio(dim string) (float64, error) {
	for _, fkCol := range ss.Fact.schema.ColumnsOfKind(KindForeignKey) {
		c := ss.Fact.schema.Cols[fkCol]
		if c.Refs == dim {
			return float64(ss.Fact.NumRows()) / float64(c.Domain.Size), nil
		}
	}
	return 0, fmt.Errorf("relational: no foreign key references dimension %q", dim)
}
