package relational

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// spilledTable builds a fully sealed, fully spilled segmented table whose
// every read faults in from disk (CacheBytes 1 evicts each segment on
// release), and returns it with its heap-file path.
func spilledTable(t *testing.T, segSize, nSegs int) (*SegmentedTable, *Table, string) {
	t.Helper()
	dir := t.TempDir()
	tab := randomWideTable(t, segSize*nSegs, uint64(segSize*nSegs)+3)
	st := segmentedFromTable(t, tab, SegmentOptions{
		SegmentSize: segSize,
		SpillDir:    dir,
		CacheBytes:  1,
	})
	t.Cleanup(func() { st.Close() })
	if !st.Spilled() {
		t.Fatal("table did not spill")
	}
	return st, tab, filepath.Join(dir, tab.Name+"_seg"+segFileSuffix)
}

// readPanic runs f and returns the *CorruptSegmentError it panicked with,
// failing the test on any other outcome.
func readPanic(t *testing.T, f func()) *CorruptSegmentError {
	t.Helper()
	var cse *CorruptSegmentError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("corrupt read returned normally")
			}
			err, ok := r.(error)
			if !ok || !errors.As(err, &cse) {
				t.Fatalf("read panicked with %v, want *CorruptSegmentError", r)
			}
		}()
		f()
	}()
	return cse
}

// TestCorruptSegmentDetected is the torn-page property: a single flipped bit
// anywhere in a spilled segment's payload makes the next fault-in fail with
// a typed *CorruptSegmentError naming the table and segment — the engine can
// never silently train on wrong bytes.
func TestCorruptSegmentDetected(t *testing.T) {
	const segSize = 64
	st, tab, path := spilledTable(t, segSize, 2)
	requireSameRelation(t, tab, st) // sanity: clean reads round-trip first

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the first segment's blob (past the header).
	raw[segHeaderLen+7] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	before := StorageCorruptionDetected.Value()
	cse := readPanic(t, func() { st.At(0, 0) })
	if cse.Table != tab.Name+"_seg" || cse.Segment != 0 {
		t.Fatalf("error names %s segment %d, want %s segment 0", cse.Table, cse.Segment, tab.Name+"_seg")
	}
	if !strings.Contains(cse.Error(), "corrupt segment") {
		t.Fatalf("error text %q", cse.Error())
	}
	if StorageCorruptionDetected.Value() != before+1 {
		t.Fatal("corruption counter did not move")
	}
	// The second segment's blob is untouched; reads there still work.
	if got, want := st.At(segSize, 0), tab.At(segSize, 0); got != want {
		t.Fatalf("clean segment read %d, want %d", got, want)
	}
}

// TestCorruptHeaderDetected: damage to the blob header (bad magic) is caught
// before any payload is trusted.
func TestCorruptHeaderDetected(t *testing.T) {
	st, _, path := spilledTable(t, 32, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 'X' // magic
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cse := readPanic(t, func() { st.At(0, 0) })
	if !strings.Contains(cse.Err.Error(), "magic") {
		t.Fatalf("header corruption error %q does not mention magic", cse.Err)
	}
}

// TestFsck covers the offline verifier: a live spill directory is clean; a
// flipped byte, an orphaned temp file, and a truncated heap file each
// surface as issues; unrelated files are ignored.
func TestFsck(t *testing.T) {
	const segSize = 32
	st, tab, path := spilledTable(t, segSize, 3)
	dir := filepath.Dir(path)

	rep, err := FsckDir(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Files != 1 || rep.Segments != 3 {
		t.Fatalf("clean dir: %+v", rep)
	}

	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "crashed.seg.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[segHeaderLen+3] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = FsckDir(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Issues) != 2 {
		t.Fatalf("issues = %v, want orphaned temp + checksum", rep.Issues)
	}
	var sawTmp, sawCRC bool
	for _, is := range rep.Issues {
		s := is.String()
		sawTmp = sawTmp || strings.Contains(s, "orphaned temp")
		sawCRC = sawCRC || strings.Contains(s, "checksum")
	}
	if !sawTmp || !sawCRC {
		t.Fatalf("issues = %v, want orphaned-temp and checksum entries", rep.Issues)
	}

	// Truncation mid-blob: the header promises more bytes than the file has.
	if err := os.Truncate(path, int64(segHeaderLen+4)); err != nil {
		t.Fatal(err)
	}
	rep, err = FsckDir(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, is := range rep.Issues {
		if strings.Contains(is.String(), "torn write") {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("truncated file not flagged as torn: %v", rep.Issues)
	}
	_ = st // keep the table (and its live pager) alive through the walk
	_ = tab
}

// TestSweepOrphans: the sweep removes stray heap and temp files but never a
// live pager's file or anything that is not a segment artifact.
func TestSweepOrphans(t *testing.T) {
	st, _, path := spilledTable(t, 32, 1)
	dir := filepath.Dir(path)
	for _, name := range []string{"dead.seg", "dead.seg.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := SweepOrphans(fault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two dead files", removed)
	}
	for _, want := range []string{path, filepath.Join(dir, "keep.txt")} {
		if _, err := os.Stat(want); err != nil {
			t.Fatalf("sweep removed %s: %v", want, err)
		}
	}
	for _, gone := range []string{"dead.seg", "dead.seg.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s survived the sweep", gone)
		}
	}
	// After Close the table's own heap file is fair game for a later sweep —
	// Close removes it itself, so the directory ends empty of segments.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Close left the heap file behind")
	}
}

// TestPagerShortRead: an injected short read surfaces as a typed corruption
// error, not as garbage rows.
func TestPagerShortRead(t *testing.T) {
	const segSize = 32
	dir := t.TempDir()
	tab := randomWideTable(t, 2*segSize, 5)
	inj := fault.NewInjector(fault.OS, 1, fault.Rule{
		Op: fault.OpRead, Kind: fault.KindShort, Every: 1,
	})
	st, err := NewSegmentedTable("sr", tab.Schema(), SegmentOptions{
		SegmentSize: segSize,
		SpillDir:    dir,
		CacheBytes:  1,
		FS:          inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	row := make([]Value, tab.Schema().Width())
	for i := 0; i < tab.NumRows(); i++ {
		tab.CopyRow(row, i)
		if err := st.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if inj.FiredTotal() != 0 {
		t.Fatalf("append path fired read faults: %s", inj.FiredString())
	}
	cse := readPanic(t, func() { st.At(0, 0) })
	if !fault.IsDiskFault(cse.Err) {
		t.Fatalf("short read surfaced as %v, want a disk fault", cse.Err)
	}
	if inj.FiredTotal() == 0 {
		t.Fatal("injector never fired")
	}
}
