package relational

import (
	"testing"

	"repro/internal/rng"
)

func opsTable(t *testing.T) *Table {
	t.Helper()
	d4 := NewDomain("d4", 4)
	d2 := NewDomain("d2", 2)
	keyDom := NewDomain("RID", 3)
	tab := NewTable("events", MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: d2},
		Column{Name: "x", Kind: KindFeature, Domain: d4},
		Column{Name: "FK", Kind: KindForeignKey, Domain: keyDom, Refs: "R"},
	), 6)
	rows := [][]Value{
		{0, 0, 0},
		{1, 1, 0},
		{0, 2, 1},
		{1, 3, 0},
		{0, 0, 1},
		{1, 1, 0},
	}
	for _, r := range rows {
		tab.MustAppendRow(r)
	}
	return tab
}

func TestSelect(t *testing.T) {
	tab := opsTable(t)
	pos := Select(tab, "pos", func(row []Value) bool { return row[0] == 1 })
	if pos.NumRows() != 3 {
		t.Fatalf("selected %d rows, want 3", pos.NumRows())
	}
	for i := 0; i < pos.NumRows(); i++ {
		if pos.At(i, 0) != 1 {
			t.Fatal("selection kept a non-matching row")
		}
	}
	eq, err := SelectEq(tab, "fk0", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq.NumRows() != 4 {
		t.Fatalf("SelectEq rows = %d, want 4", eq.NumRows())
	}
	if _, err := SelectEq(tab, "bad", 9, 0); err == nil {
		t.Fatal("bad column must error")
	}
	if _, err := SelectEq(tab, "bad", 2, 99); err == nil {
		t.Fatal("out-of-domain value must error")
	}
}

func TestProject(t *testing.T) {
	tab := opsTable(t)
	p, err := Project(tab, "proj", []string{"FK", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Width() != 2 || p.Schema().Cols[0].Name != "FK" || p.Schema().Cols[1].Name != "Y" {
		t.Fatalf("projection schema wrong: %v", p.Schema().Names())
	}
	if p.NumRows() != tab.NumRows() {
		t.Fatal("projection must keep bag semantics (no dedup)")
	}
	if p.At(1, 0) != 0 || p.At(1, 1) != 1 {
		t.Fatal("projection reordered values incorrectly")
	}
	if _, err := Project(tab, "bad", []string{"zzz"}); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestGroupByAndDistinct(t *testing.T) {
	tab := opsTable(t)
	groups, err := GroupBy(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	// FK counts: 0→4, 1→2; sorted by descending count.
	if len(groups) != 2 || groups[0].Value != 0 || groups[0].Count != 4 || groups[1].Count != 2 {
		t.Fatalf("GroupBy = %+v", groups)
	}
	d, err := DistinctCount(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("DistinctCount = %d, want 2", d)
	}
	if _, err := GroupBy(tab, 9); err == nil {
		t.Fatal("bad column must error")
	}
}

func TestGroupBySortStability(t *testing.T) {
	// Equal counts must sort ascending by value for deterministic reports.
	d3 := NewDomain("d3", 3)
	tab := NewTable("t", MustSchema(Column{Name: "x", Kind: KindFeature, Domain: d3}), 4)
	for _, v := range []Value{2, 1, 2, 1} {
		tab.MustAppendRow([]Value{v})
	}
	groups, err := GroupBy(tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if groups[0].Value != 1 || groups[1].Value != 2 {
		t.Fatalf("tie order wrong: %+v", groups)
	}
}

func TestEstimateTupleRatio(t *testing.T) {
	tab := opsTable(t)
	tr, err := EstimateTupleRatio(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 3.0 { // 6 rows / 2 observed FK values
		t.Fatalf("estimated ratio %v, want 3.0", tr)
	}
	if _, err := EstimateTupleRatio(tab, 1); err == nil {
		t.Fatal("non-FK column must error")
	}
	empty := NewTable("e", tab.Schema(), 0)
	if _, err := EstimateTupleRatio(empty, 2); err == nil {
		t.Fatal("empty fact table must error")
	}
}

func TestEstimateConvergesToTrueRatio(t *testing.T) {
	// With many rows, the estimate approaches n_S / n_R because every FK
	// value gets observed.
	r := rng.New(1)
	keyDom := NewDomain("RID", 50)
	tab := NewTable("S", MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "FK", Kind: KindForeignKey, Domain: keyDom, Refs: "R"},
	), 5000)
	for i := 0; i < 5000; i++ {
		tab.MustAppendRow([]Value{Value(r.Intn(2)), Value(r.Intn(50))})
	}
	tr, err := EstimateTupleRatio(tab, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 100 {
		t.Fatalf("estimate %v, want exactly 100 (all 50 values observed)", tr)
	}
}
