package relational

import (
	"fmt"
)

// Join materializes the projected KFK equi-join
//
//	T ← π(R_1 ⋈ … ⋈ R_q ⋈ S)
//
// that the paper calls JoinAll's input: the fact table's columns followed by
// every dimension table's feature columns (primary keys are dropped — they
// are redundant with the FK columns). Because each dimension's primary key is
// the dense identity, each lookup is a direct row index and the join is a
// single O(n_S · width) pass.
//
// The output schema order is: all fact columns (target, home features,
// foreign keys), then for each FK in fact-schema order, the referenced
// dimension's feature columns renamed "<dim>.<col>". Open-domain FKs still
// join (the paper joins Expedia's search table); openness only matters for
// which columns a feature view may use.
func Join(ss *StarSchema) (*Table, error) {
	fact := ss.Fact
	fkCols := fact.Schema.ColumnsOfKind(KindForeignKey)

	cols := append([]Column(nil), fact.Schema.Cols...)
	type dimPlan struct {
		fkCol   int
		dim     *Table
		featIdx []int
	}
	var plans []dimPlan
	for _, fkCol := range fkCols {
		ref := fact.Schema.Cols[fkCol].Refs
		dim := ss.Dimensions[ref]
		if dim == nil {
			return nil, fmt.Errorf("relational: join: unknown dimension %q", ref)
		}
		var featIdx []int
		for i, c := range dim.Schema.Cols {
			if c.Kind == KindFeature {
				featIdx = append(featIdx, i)
				cols = append(cols, Column{
					Name:   dim.Name + "." + c.Name,
					Kind:   KindFeature,
					Domain: c.Domain,
				})
			}
		}
		plans = append(plans, dimPlan{fkCol: fkCol, dim: dim, featIdx: featIdx})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("relational: join: %w", err)
	}

	out := NewTable(fact.Name+"_joined", schema, fact.NumRows())
	row := make([]Value, schema.Width())
	for i := 0; i < fact.NumRows(); i++ {
		copy(row, fact.Row(i))
		at := fact.Schema.Width()
		for _, p := range plans {
			fk := fact.At(i, p.fkCol)
			if int(fk) >= p.dim.NumRows() || fk < 0 {
				return nil, fmt.Errorf("relational: join: fact row %d FK %q = %d has no match in %q",
					i, fact.Schema.Cols[p.fkCol].Name, fk, p.dim.Name)
			}
			dimRow := p.dim.Row(int(fk))
			for _, fi := range p.featIdx {
				row[at] = dimRow[fi]
				at++
			}
		}
		out.rows = append(out.rows, row...)
	}
	return out, nil
}

// VerifyFD checks that the functional dependency det → dep holds in table t:
// every pair of rows agreeing on column det also agrees on column dep. This
// is the property (FK → X_R in the join output) that makes avoiding joins
// safe at all; the simulation and dataset generators are validated with it.
func VerifyFD(t *Table, det, dep int) error {
	detDom := t.Schema.Cols[det].Domain.Size
	seen := make([]Value, detDom)
	for i := range seen {
		seen[i] = -1
	}
	for i := 0; i < t.NumRows(); i++ {
		d := t.At(i, det)
		v := t.At(i, dep)
		if seen[d] == -1 {
			seen[d] = v
			continue
		}
		if seen[d] != v {
			return fmt.Errorf("relational: FD %s→%s violated at row %d: %s=%d maps to both %d and %d",
				t.Schema.Cols[det].Name, t.Schema.Cols[dep].Name, i, t.Schema.Cols[det].Name, d, seen[d], v)
		}
	}
	return nil
}

// VerifyKFKFDs verifies, on a joined table, that each foreign key column
// functionally determines every feature column brought in from its
// dimension table (columns named "<dim>.<feat>").
func VerifyKFKFDs(joined *Table, ss *StarSchema) error {
	for _, fkCol := range joined.Schema.ColumnsOfKind(KindForeignKey) {
		ref := joined.Schema.Cols[fkCol].Refs
		prefix := ref + "."
		for i, c := range joined.Schema.Cols {
			if c.Kind == KindFeature && len(c.Name) > len(prefix) && c.Name[:len(prefix)] == prefix {
				if err := VerifyFD(joined, fkCol, i); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
