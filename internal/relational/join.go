package relational

import (
	"fmt"
)

// dimPlan is one dimension's contribution to the join output: the fact FK
// column that addresses it and the dimension feature columns it exports.
type dimPlan struct {
	fkCol   int
	dim     *Table
	featIdx []int
}

// JoinView is the factorized KFK equi-join
//
//	T ← π(R_1 ⋈ … ⋈ R_q ⋈ S)
//
// as a zero-copy Relation: the fact table's columns followed by every
// dimension table's feature columns (primary keys are dropped — they are
// redundant with the FK columns), with nothing materialized. Because each
// dimension's primary key is the dense identity, At resolves a foreign
// column with a single extra array index: fact FK lookup, then direct
// dimension row access. The view holds only the schema and per-column plan
// (O(width) memory) regardless of n_S, which is what cuts JoinAll peak
// memory from O(n_S·(w_S+Σw_R)) to O(n_S·w_S).
//
// The output schema order matches the historical materialized Join: all fact
// columns (target, home features, foreign keys), then for each FK in
// fact-schema order, the referenced dimension's feature columns renamed
// "<dim>.<col>". Open-domain FKs still join (the paper joins Expedia's
// search table); openness only matters for which columns a feature view may
// use. Referential integrity (every FK within its dimension's row range) is
// checked once at construction so At and CopyRow run unchecked.
type JoinView struct {
	fact   *Table
	schema *Schema
	factW  int
	plans  []dimPlan
	// Per output column >= factW: which plan and which dimension column.
	colPlan []int32
	colDim  []int32
}

// NewJoinView builds the factorized join over a star schema, validating
// referential integrity with one pass over the fact table's FK columns.
func NewJoinView(ss *StarSchema) (*JoinView, error) {
	fact := ss.Fact
	fkCols := fact.schema.ColumnsOfKind(KindForeignKey)

	cols := append([]Column(nil), fact.schema.Cols...)
	var plans []dimPlan
	var colPlan []int32
	var colDim []int32
	for _, fkCol := range fkCols {
		ref := fact.schema.Cols[fkCol].Refs
		dim := ss.Dimensions[ref]
		if dim == nil {
			return nil, fmt.Errorf("relational: join: unknown dimension %q", ref)
		}
		var featIdx []int
		for i, c := range dim.schema.Cols {
			if c.Kind == KindFeature {
				featIdx = append(featIdx, i)
				cols = append(cols, Column{
					Name:   dim.Name + "." + c.Name,
					Kind:   KindFeature,
					Domain: c.Domain,
				})
				colPlan = append(colPlan, int32(len(plans)))
				colDim = append(colDim, int32(i))
			}
		}
		plans = append(plans, dimPlan{fkCol: fkCol, dim: dim, featIdx: featIdx})
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("relational: join: %w", err)
	}
	// Referential integrity up front so row access is unchecked.
	n := fact.NumRows()
	for _, p := range plans {
		dimN := p.dim.NumRows()
		for i := 0; i < n; i++ {
			fk := fact.At(i, p.fkCol)
			if int(fk) >= dimN || fk < 0 {
				return nil, fmt.Errorf("relational: join: fact row %d FK %q = %d has no match in %q",
					i, fact.schema.Cols[p.fkCol].Name, fk, p.dim.Name)
			}
		}
	}
	return &JoinView{
		fact:    fact,
		schema:  schema,
		factW:   fact.width,
		plans:   plans,
		colPlan: colPlan,
		colDim:  colDim,
	}, nil
}

// Schema implements Relation.
func (v *JoinView) Schema() *Schema { return v.schema }

// NumRows implements Relation.
func (v *JoinView) NumRows() int { return v.fact.NumRows() }

// At implements Relation: fact columns read through; foreign columns resolve
// the FK indirection at access time.
func (v *JoinView) At(row, col int) Value {
	if col < v.factW {
		return v.fact.At(row, col)
	}
	p := &v.plans[v.colPlan[col-v.factW]]
	fk := v.fact.At(row, p.fkCol)
	return p.dim.At(int(fk), int(v.colDim[col-v.factW]))
}

// CopyRow implements Relation: one contiguous fact-row copy, then one FK
// lookup per dimension (not per cell).
func (v *JoinView) CopyRow(dst []Value, row int) []Value {
	w := v.schema.Width()
	dst = dst[:w]
	copy(dst, v.fact.rows[row*v.factW:(row+1)*v.factW])
	at := v.factW
	for i := range v.plans {
		p := &v.plans[i]
		fk := v.fact.At(row, p.fkCol)
		dimRow := p.dim.Row(int(fk))
		for _, fi := range p.featIdx {
			dst[at] = dimRow[fi]
			at++
		}
	}
	return dst
}

// ScanColumn implements ColumnScanner. A fact column is a strided scan of
// the fact table; a foreign column is a gather — read the FK column, then
// index the dimension's storage — which is exactly the batched form of the
// per-cell indirection At performs. Referential integrity was validated at
// construction, so the inner loops run unchecked.
func (v *JoinView) ScanColumn(col int, from int, dst []Value) int {
	m := scanLen(v.fact.NumRows(), from, len(dst))
	if col < v.factW {
		return v.fact.ScanColumn(col, from, dst[:m])
	}
	p := &v.plans[v.colPlan[col-v.factW]]
	dimCol := int(v.colDim[col-v.factW])
	dim, dimW := p.dim, p.dim.width
	fw := v.factW
	at := from*fw + p.fkCol
	for k := 0; k < m; k++ {
		fk := v.fact.rows[at]
		dst[k] = dim.rows[int(fk)*dimW+dimCol]
		at += fw
	}
	return m
}

// GatherColumn implements ColumnGatherer with the same fact/foreign split
// as ScanColumn, over arbitrary row indices.
func (v *JoinView) GatherColumn(dst []Value, col int, rows []int) {
	dst = dst[:len(rows)]
	if col < v.factW {
		v.fact.GatherColumn(dst, col, rows)
		return
	}
	p := &v.plans[v.colPlan[col-v.factW]]
	dimCol := int(v.colDim[col-v.factW])
	dim, dimW := p.dim, p.dim.width
	fw := v.factW
	for k, r := range rows {
		fk := v.fact.rows[r*fw+p.fkCol]
		dst[k] = dim.rows[int(fk)*dimW+dimCol]
	}
}

// GatherColumnVia implements ColumnViaGatherer — the fused double-remap
// gather a SelectView stacked on this join uses.
func (v *JoinView) GatherColumnVia(dst []Value, col int, idx []int, rows []int) {
	dst = dst[:len(rows)]
	if col < v.factW {
		fw := v.factW
		for k, r := range rows {
			dst[k] = v.fact.rows[idx[r]*fw+col]
		}
		return
	}
	p := &v.plans[v.colPlan[col-v.factW]]
	dimCol := int(v.colDim[col-v.factW])
	dim, dimW := p.dim, p.dim.width
	fw := v.factW
	for k, r := range rows {
		fk := v.fact.rows[idx[r]*fw+p.fkCol]
		dst[k] = dim.rows[int(fk)*dimW+dimCol]
	}
}

// Fact returns the underlying fact table.
func (v *JoinView) Fact() *Table { return v.fact }

// AssembleRow fills dst (len >= the join schema width) with the joined row
// for an arbitrary fact-shaped row — one that need not exist in the fact
// table. This is the serving-time gather: an inference request arrives as
// fact attributes plus foreign-key ids, and the dimension features are
// resolved through the same per-dimension plans CopyRow uses. Foreign-key
// values must be in range for their dimension (callers validate request
// inputs up front, as NewJoinView validated the fact table); the target slot
// is copied through like any other fact column.
func (v *JoinView) AssembleRow(dst []Value, factRow []Value) []Value {
	dst = dst[:v.schema.Width()]
	copy(dst, factRow[:v.factW])
	at := v.factW
	for i := range v.plans {
		p := &v.plans[i]
		fk := factRow[p.fkCol]
		dimRow := p.dim.Row(int(fk))
		for _, fi := range p.featIdx {
			dst[at] = dimRow[fi]
			at++
		}
	}
	return dst
}

// Join materializes the projected KFK equi-join that the paper calls
// JoinAll's input. It is now a thin wrapper — Materialize over the
// factorized JoinView — kept for compatibility and for consumers that truly
// need physical storage (CSV export, the FD verifiers' tight loops). The
// join is a single O(n_S · width) pass.
func Join(ss *StarSchema) (*Table, error) {
	v, err := NewJoinView(ss)
	if err != nil {
		return nil, err
	}
	return Materialize(v, ss.Fact.Name+"_joined"), nil
}

// VerifyFD checks that the functional dependency det → dep holds in relation
// t: every pair of rows agreeing on column det also agrees on column dep.
// This is the property (FK → X_R in the join output) that makes avoiding
// joins safe at all; the simulation and dataset generators are validated
// with it.
func VerifyFD(t Relation, det, dep int) error {
	schema := t.Schema()
	detDom := schema.Cols[det].Domain.Size
	seen := make([]Value, detDom)
	for i := range seen {
		seen[i] = -1
	}
	n := t.NumRows()
	for i := 0; i < n; i++ {
		d := t.At(i, det)
		v := t.At(i, dep)
		if seen[d] == -1 {
			seen[d] = v
			continue
		}
		if seen[d] != v {
			return fmt.Errorf("relational: FD %s→%s violated at row %d: %s=%d maps to both %d and %d",
				schema.Cols[det].Name, schema.Cols[dep].Name, i, schema.Cols[det].Name, d, seen[d], v)
		}
	}
	return nil
}

// VerifyKFKFDs verifies, on a joined relation (materialized or JoinView),
// that each foreign key column functionally determines every feature column
// brought in from its dimension table (columns named "<dim>.<feat>").
func VerifyKFKFDs(joined Relation, ss *StarSchema) error {
	schema := joined.Schema()
	for _, fkCol := range schema.ColumnsOfKind(KindForeignKey) {
		ref := schema.Cols[fkCol].Refs
		prefix := ref + "."
		for i, c := range schema.Cols {
			if c.Kind == KindFeature && len(c.Name) > len(prefix) && c.Name[:len(prefix)] == prefix {
				if err := VerifyFD(joined, fkCol, i); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
