package relational

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary byte streams into the CSV reader; it must
// never panic and must only accept inputs that round-trip cleanly.
func FuzzReadCSV(f *testing.F) {
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewLabeledDomain("Y", []string{"no", "yes"})},
		Column{Name: "x", Kind: KindFeature, Domain: NewDomain("x", 4)},
	)
	f.Add("Y,x\nno,0\nyes,3\n")
	f.Add("Y,x\n")
	f.Add("")
	f.Add("Y,x\nno,9\n")       // out of domain
	f.Add("Y,x\nmaybe,1\n")    // unknown label
	f.Add("A,B\nno,0\n")       // wrong header
	f.Add("Y,x\nno\n")         // short row
	f.Add("Y,x\nno,0,extra\n") // long row
	f.Add("Y,x\r\nno,0\r\n")   // CRLF
	f.Add("Y,x\n\"no\",\"1\"\n")
	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadCSV(strings.NewReader(input), "fuzz", schema)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must round-trip: write then re-read identically.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tab); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf, "fuzz2", schema)
		if err != nil {
			t.Fatalf("serialized table failed to parse: %v", err)
		}
		if back.NumRows() != tab.NumRows() {
			t.Fatalf("round trip changed row count: %d vs %d", back.NumRows(), tab.NumRows())
		}
		for i := 0; i < tab.NumRows(); i++ {
			for j := 0; j < schema.Width(); j++ {
				if tab.At(i, j) != back.At(i, j) {
					t.Fatalf("round trip changed cell (%d,%d)", i, j)
				}
			}
		}
	})
}
