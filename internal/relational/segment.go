package relational

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// DefaultSegmentSize is the rows-per-segment default. 32768 rows keeps a
// uint8 column's segment at 32 KiB (one L1 data cache) and a uint16 column
// at 64 KiB, so a per-segment scan task works cache-resident while the
// per-segment overheads (zone-map block, pager header, task dispatch)
// amortize over tens of thousands of rows. See ARCHITECTURE.md for the
// measurement behind the choice.
const DefaultSegmentSize = 32768

// SegmentOptions configures a SegmentedTable.
type SegmentOptions struct {
	// SegmentSize is the rows per sealed segment (default DefaultSegmentSize).
	SegmentSize int
	// SpillDir enables the out-of-core tier when non-empty: every sealed
	// segment is written to a heap file in this directory and segments are
	// evicted from memory (LRU, never while pinned by a scan) whenever the
	// resident set exceeds CacheBytes.
	SpillDir string
	// CacheBytes bounds the resident sealed-segment bytes when spilling.
	// <= 0 means segments are written to disk but never evicted.
	CacheBytes int64
	// FS is the filesystem the out-of-core tier writes through. Nil means
	// the real filesystem (fault.OS); tests and the chaos CLI flags pass a
	// fault.Injector to script heap-file failures.
	FS fault.FS
}

// segment is one immutable columnar chunk of a SegmentedTable: the same
// width-narrowed colData vectors as a ColumnarTable, capped at the table's
// segment size. Sealed segments are never written again, which is what makes
// eviction and concurrent reads safe without per-cell locks.
type segment struct {
	n    int
	cols []colData
}

// footprint returns the segment's resident byte size (column payloads).
func (s *segment) footprint() int64 {
	var b int64
	for j := range s.cols {
		b += int64(colByteLen(&s.cols[j], s.n))
	}
	return b
}

// segEntry is the always-resident bookkeeping of one sealed segment: its
// zone maps, its heap-file location, and the cache state. The data pointer
// is nil while the segment is evicted; pins counts in-flight readers so the
// evictor never drops a segment a scan is walking (a reader that loses the
// benign race with eviction simply re-faults — segments are immutable, so a
// stale pointer is still correct, just no longer counted as resident).
type segEntry struct {
	data    atomic.Pointer[segment]
	zmaps   []ZoneMap
	bytes   int64
	off     int64 // heap-file offset; -1 when never spilled
	blobLen int
	pins    atomic.Int32
	lastUse atomic.Int64
}

// SegmentedTable is the third physical relation: a ColumnarTable partitioned
// into fixed-size immutable columnar segments. It serves the same
// Relation/ColumnScanner/ColumnGatherer surface with bit-identical cell
// values, and adds three capabilities the monolithic slab cannot offer:
//
//   - per-segment ZoneMaps, so selective scans and split searches can prove
//     segments (or whole columns) irrelevant and skip them;
//   - segment-per-morsel parallelism: SegmentSize exposes the partition so
//     ml-side fan-outs align scan tasks to segment boundaries;
//   - an out-of-core tier: with SegmentOptions.SpillDir set, sealed segments
//     live in a page-aligned heap file and an LRU-pinned cache keeps at most
//     CacheBytes of them resident, so fact tables larger than RAM can train
//     and batch-score (slower, but bit-identically).
//
// Construct empty with NewSegmentedTable and fill with AppendRow(s) — rows
// seal into segments as they fill — or evaluate any relation into one with
// MaterializeSegmented. Writes are single-goroutine; reads are safe for any
// number of concurrent readers once construction is done (and, with a pager,
// reads are also safe concurrently with eviction at any time).
type SegmentedTable struct {
	Name    string
	schema  *Schema
	segSize int
	// segShift/segMask replace the per-row divmod with shift/mask when
	// segSize is a power of two (the default and every recommended size);
	// segShift is 0 for other sizes and locate falls back to division.
	segShift uint
	segMask  int
	n        int

	entries []*segEntry
	tail    *segment // open segment being filled; never spilled
	zs      zoneScratch
	// colLo/colHi are running whole-table [min, max] bounds per column,
	// maintained as rows append so ColumnRange never rescans the open tail.
	colLo, colHi []Value

	pager      *Pager
	cacheBytes int64
	mu         sync.Mutex // guards resident accounting + fault/evict decisions
	resident   int64      // bytes of sealed segments currently resident
	tick       atomic.Int64
}

// NewSegmentedTable creates an empty segmented table. An error is returned
// only when the spill heap file cannot be created.
func NewSegmentedTable(name string, schema *Schema, opts SegmentOptions) (*SegmentedTable, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	t := &SegmentedTable{
		Name:       name,
		schema:     schema,
		segSize:    opts.SegmentSize,
		cacheBytes: opts.CacheBytes,
	}
	if sz := opts.SegmentSize; sz&(sz-1) == 0 {
		t.segShift = uint(bits.TrailingZeros(uint(sz)))
		t.segMask = sz - 1
	}
	w := schema.Width()
	t.colLo, t.colHi = make([]Value, w), make([]Value, w)
	for j := range t.colLo {
		t.colLo[j] = Value(schema.Cols[j].Domain.Size)
		t.colHi[j] = -1
	}
	if opts.SpillDir != "" {
		fsys := opts.FS
		if fsys == nil {
			fsys = fault.OS
		}
		p, err := NewPagerFS(fsys, opts.SpillDir, name)
		if err != nil {
			return nil, err
		}
		t.pager = p
	}
	t.tail = t.newSegment()
	return t, nil
}

// newSegment allocates an empty open segment with full-segment capacity.
func (t *SegmentedTable) newSegment() *segment {
	s := &segment{cols: make([]colData, t.schema.Width())}
	for j := range s.cols {
		s.cols[j] = newColData(t.schema.Cols[j].Domain.Size, t.segSize)
	}
	return s
}

// Close releases the out-of-core tier (closing and removing the heap file).
// In-memory tables need no Close; calling it anyway is a no-op. The table
// must not be read after Close when segments have been evicted.
func (t *SegmentedTable) Close() error {
	if t.pager == nil {
		return nil
	}
	return t.pager.Close()
}

// Schema implements Relation.
func (t *SegmentedTable) Schema() *Schema { return t.schema }

// NumRows implements Relation.
func (t *SegmentedTable) NumRows() int { return t.n }

// SegmentSize returns the rows-per-segment partition size. The ml layer uses
// it to align morsel fan-outs to segment boundaries.
func (t *SegmentedTable) SegmentSize() int { return t.segSize }

// NumSegments returns the segment count, including the open tail when it
// holds rows.
func (t *SegmentedTable) NumSegments() int {
	ns := len(t.entries)
	if t.tail.n > 0 {
		ns++
	}
	return ns
}

// SegmentRows returns the half-open global row range [lo, hi) of segment s.
func (t *SegmentedTable) SegmentRows(s int) (lo, hi int) {
	lo = s * t.segSize
	hi = lo + t.segSize
	if hi > t.n {
		hi = t.n
	}
	return lo, hi
}

// SegmentZone returns the zone map of (segment s, column col). ok is false
// for the open tail segment, whose statistics are not yet sealed — callers
// must treat it as "may contain anything".
func (t *SegmentedTable) SegmentZone(s, col int) (ZoneMap, bool) {
	if s >= len(t.entries) {
		return ZoneMap{}, false
	}
	return t.entries[s].zmaps[col], true
}

// SegmentMayContain reports whether segment s may hold value v in column
// col. False is a proof of absence (zone-map range check); the unsealed tail
// always reports true.
func (t *SegmentedTable) SegmentMayContain(s, col int, v Value) bool {
	z, ok := t.SegmentZone(s, col)
	return !ok || z.MayContain(v)
}

// ColumnRange implements ColumnRanger: the observed [min, max] of a column.
// The bounds are maintained as rows append (O(1) here — split searches call
// this per node per feature), covering sealed segments and the open tail
// alike. ok is false for an empty table. A constant column (min == max) lets
// consumers skip the column entirely — the decision-tree split search does.
func (t *SegmentedTable) ColumnRange(col int) (min, max Value, ok bool) {
	if t.n == 0 {
		return 0, 0, false
	}
	return t.colLo[col], t.colHi[col], true
}

// Spilled reports whether the out-of-core tier is active.
func (t *SegmentedTable) Spilled() bool { return t.pager != nil }

// ResidentBytes returns the bytes of sealed segments currently in memory
// (always the full table when not spilling).
func (t *SegmentedTable) ResidentBytes() int64 {
	if t.pager == nil {
		var b int64
		for _, e := range t.entries {
			b += e.bytes
		}
		return b
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resident
}

// seal freezes the full tail: zone maps are computed, the segment is
// (optionally) written to the heap file, and a fresh tail is opened.
func (t *SegmentedTable) seal() error {
	s := t.tail
	e := &segEntry{
		zmaps: make([]ZoneMap, len(s.cols)),
		bytes: s.footprint(),
		off:   -1,
	}
	for j := range s.cols {
		e.zmaps[j] = t.zs.buildZoneMap(&s.cols[j], s.n, t.schema.Cols[j].Domain.Size)
	}
	e.data.Store(s)
	e.lastUse.Store(t.tick.Add(1))
	if t.pager != nil {
		blob := encodeSegment(s)
		off, err := t.pager.appendBlob(blob)
		if err != nil {
			return err
		}
		e.off, e.blobLen = off, len(blob)
		t.mu.Lock()
		t.resident += e.bytes
		t.entries = append(t.entries, e)
		t.evictLocked()
		t.mu.Unlock()
	} else {
		t.entries = append(t.entries, e)
	}
	t.tail = t.newSegment()
	return nil
}

// evictLocked drops least-recently-used unpinned segments until the resident
// set fits the cache budget. Called with t.mu held. Pinned segments are
// skipped, so a cache smaller than the working set degrades to thrash, never
// to incorrectness.
func (t *SegmentedTable) evictLocked() {
	if t.cacheBytes <= 0 {
		return
	}
	for t.resident > t.cacheBytes {
		var victim *segEntry
		var oldest int64
		for _, e := range t.entries {
			if e.data.Load() == nil || e.pins.Load() != 0 {
				continue
			}
			if u := e.lastUse.Load(); victim == nil || u < oldest {
				victim, oldest = e, u
			}
		}
		if victim == nil {
			return // everything resident is pinned; run over budget
		}
		victim.data.Store(nil)
		t.resident -= victim.bytes
		SegCacheEvictions.Inc()
	}
}

// fault pages entry e back in and returns it pinned. The heap-file read runs
// under the table mutex, serializing concurrent faults — the simple regime
// for a cache whose point is correctness under memory pressure, not disk
// throughput. A read or decode failure (I/O error, torn blob, checksum
// mismatch) panics with a typed *CorruptSegmentError — the Relation read
// methods have no error return — which the core layer recovers at its
// training and eval entry points; silent wrong bytes are never served.
func (t *SegmentedTable) fault(si int, e *segEntry) *segment {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := e.data.Load(); s != nil { // raced with another fault
		e.pins.Add(1)
		e.lastUse.Store(t.tick.Add(1))
		SegCacheHits.Inc()
		return s
	}
	blob, err := t.pager.readBlob(e.off, e.blobLen)
	if err != nil {
		StorageCorruptionDetected.Inc()
		panic(&CorruptSegmentError{Table: t.Name, Segment: si, Offset: e.off, Err: err})
	}
	s, err := decodeSegment(blob, t.segSize, t.schema.Width())
	if err != nil {
		StorageCorruptionDetected.Inc()
		panic(&CorruptSegmentError{Table: t.Name, Segment: si, Offset: e.off, Err: err})
	}
	e.pins.Add(1)
	e.lastUse.Store(t.tick.Add(1))
	e.data.Store(s)
	t.resident += e.bytes
	SegCacheMisses.Inc()
	SegCacheFaultedBytes.Add(uint64(e.bytes))
	t.evictLocked()
	return s
}

// acquire pins segment si for reading and returns its data. Callers must
// release(si) when done. The tail needs no pin (it is never evicted).
func (t *SegmentedTable) acquire(si int) *segment {
	if si >= len(t.entries) {
		return t.tail
	}
	e := t.entries[si]
	if t.pager == nil {
		return e.data.Load()
	}
	e.pins.Add(1)
	if s := e.data.Load(); s != nil {
		e.lastUse.Store(t.tick.Add(1))
		// Hint by segment index so concurrent per-segment scan tasks land on
		// different counter stripes instead of one contended cache line.
		SegCacheHits.IncHint(uint(si))
		return s
	}
	e.pins.Add(-1)
	return t.fault(si, e)
}

// locate maps a row to its (segment, offset) pair — shift/mask when the
// segment size is a power of two, divmod otherwise. The divide is the hot
// instruction of shuffled gathers, so the fast path matters.
func (t *SegmentedTable) locate(row int) (si, off int) {
	if t.segShift > 0 {
		return row >> t.segShift, row & t.segMask
	}
	return row / t.segSize, row % t.segSize
}

// release unpins a segment acquired with acquire.
func (t *SegmentedTable) release(si int) {
	if t.pager == nil || si >= len(t.entries) {
		return
	}
	t.entries[si].pins.Add(-1)
}

// At implements Relation. With an active pager every call pins and unpins
// one segment; batch readers should prefer ScanColumn / GatherColumn, which
// pin once per segment run.
func (t *SegmentedTable) At(row, col int) Value {
	si, off := t.locate(row)
	s := t.acquire(si)
	v := s.cols[col].at(off)
	t.release(si)
	return v
}

// CopyRow implements Relation: one pin, one strided read per column.
func (t *SegmentedTable) CopyRow(dst []Value, row int) []Value {
	si, off := t.locate(row)
	s := t.acquire(si)
	dst = dst[:len(s.cols)]
	for j := range s.cols {
		dst[j] = s.cols[j].at(off)
	}
	t.release(si)
	return dst
}

// ScanColumn implements ColumnScanner, routing the request segment by
// segment: each covered segment is pinned once, its stretch of the column
// widened sequentially out of narrow storage, then released.
func (t *SegmentedTable) ScanColumn(col int, from int, dst []Value) int {
	m := scanLen(t.n, from, len(dst))
	written := 0
	for written < m {
		row := from + written
		si, off := t.locate(row)
		s := t.acquire(si)
		take := s.n - off
		if take > m-written {
			take = m - written
		}
		s.cols[col].scan(off, dst[written:written+take])
		t.release(si)
		written += take
	}
	return m
}

// GatherColumn implements ColumnGatherer. Consecutive rows that fall in the
// same segment share one pin; a shuffled row set degrades to a pin per
// transition, which is two atomic adds against an in-memory table's none —
// the cost of evictability.
func (t *SegmentedTable) GatherColumn(dst []Value, col int, rows []int) {
	dst = dst[:len(rows)]
	if len(t.entries) == 0 {
		// Whole table still in the open tail (never evictable): the
		// width-specialized single-slab gather, same speed as ColumnarTable.
		t.tail.cols[col].gather(dst, rows)
		return
	}
	cur := -1
	var c *colData
	for k, r := range rows {
		si, off := t.locate(r)
		if si != cur {
			if cur >= 0 {
				t.release(cur)
			}
			c = &t.acquire(si).cols[col]
			cur = si
		}
		dst[k] = c.at(off)
	}
	if cur >= 0 {
		t.release(cur)
	}
}

// GatherColumnVia implements ColumnViaGatherer — the fused double-remap
// gather a SelectView stacked on this table uses.
func (t *SegmentedTable) GatherColumnVia(dst []Value, col int, idx []int, rows []int) {
	dst = dst[:len(rows)]
	if len(t.entries) == 0 {
		t.tail.cols[col].gatherVia(dst, idx, rows)
		return
	}
	cur := -1
	var c *colData
	for k, r := range rows {
		i := idx[r]
		si, off := t.locate(i)
		if si != cur {
			if cur >= 0 {
				t.release(cur)
			}
			c = &t.acquire(si).cols[col]
			cur = si
		}
		dst[k] = c.at(off)
	}
	if cur >= 0 {
		t.release(cur)
	}
}

// Reserve grows the open tail's capacity toward a full segment. Capacity
// beyond the current segment is allocated as segments open, so n larger than
// the tail's remaining space is clamped.
func (t *SegmentedTable) Reserve(n int) {
	room := t.segSize - t.tail.n
	if n > room {
		n = room
	}
	if n > 0 {
		for j := range t.tail.cols {
			t.tail.cols[j].reserve(n)
		}
	}
}

// AppendRow appends one row after validating width and domain membership,
// sealing the tail into an immutable segment when it fills.
func (t *SegmentedTable) AppendRow(row []Value) error {
	if len(row) != t.schema.Width() {
		return fmt.Errorf("relational: segmented table %q expects %d columns, row has %d", t.Name, t.schema.Width(), len(row))
	}
	for j, v := range row {
		if !t.schema.Cols[j].Domain.Contains(v) {
			return fmt.Errorf("relational: segmented table %q column %q: value %d outside domain of size %d",
				t.Name, t.schema.Cols[j].Name, v, t.schema.Cols[j].Domain.Size)
		}
	}
	for j, v := range row {
		t.tail.cols[j].append(v)
		if v < t.colLo[j] {
			t.colLo[j] = v
		}
		if v > t.colHi[j] {
			t.colHi[j] = v
		}
	}
	t.tail.n++
	t.n++
	if t.tail.n == t.segSize {
		return t.seal()
	}
	return nil
}

// MustAppendRow is AppendRow for generator code where rows are correct by
// construction.
func (t *SegmentedTable) MustAppendRow(row []Value) {
	if err := t.AppendRow(row); err != nil {
		panic(err)
	}
}

// AppendRows bulk-appends a row-major block, sealing segments as they fill —
// the ingestion fast path shared with the other engines (BulkTable): one
// strided validation pass per column, then column-strided appends chunked by
// the tail's remaining space. On a validation error nothing is appended;
// a spill-write error leaves earlier chunks appended.
func (t *SegmentedTable) AppendRows(block []Value) error {
	nRows, err := validateBlock(t.schema, t.Name, block)
	if err != nil {
		return err
	}
	w := t.schema.Width()
	for done := 0; done < nRows; {
		take := t.segSize - t.tail.n
		if take > nRows-done {
			take = nRows - done
		}
		for j := 0; j < w; j++ {
			c := &t.tail.cols[j]
			lo, hi := t.colLo[j], t.colHi[j]
			for k, at := 0, done*w+j; k < take; k, at = k+1, at+w {
				v := block[at]
				c.append(v)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			t.colLo[j], t.colHi[j] = lo, hi
		}
		t.tail.n += take
		t.n += take
		done += take
		if t.tail.n == t.segSize {
			if err := t.seal(); err != nil {
				return err
			}
		}
	}
	return nil
}

// MustAppendRows is AppendRows for generator code.
func (t *SegmentedTable) MustAppendRows(block []Value) {
	if err := t.AppendRows(block); err != nil {
		panic(err)
	}
}

// MaterializeSegmented evaluates any relation into a SegmentedTable — the
// segmented sibling of MaterializeColumnar, and the path core.NewEnvSegmented
// uses to turn the factorized join into sealed, skippable, spillable
// segments. ColumnScanner sources are drained one segment chunk at a time
// (each chunk reads every column sequentially, then seals), so ingestion's
// resident working set is one open segment regardless of table size; other
// sources fall back to row-at-a-time appends. Like MaterializeColumnar,
// source cell values outside their column's domain indicate a corrupted
// relation and panic.
func MaterializeSegmented(r Relation, name string, opts SegmentOptions) (*SegmentedTable, error) {
	out, err := NewSegmentedTable(name, r.Schema(), opts)
	if err != nil {
		return nil, err
	}
	// A panic while draining the source (domain violation, or corruption
	// faulted in from the source relation) must not strand the heap file.
	defer func() {
		if r := recover(); r != nil {
			out.Close()
			panic(r)
		}
	}()
	schema := r.Schema()
	w := schema.Width()
	n := r.NumRows()
	if w == 0 || n == 0 {
		return out, nil
	}
	cs, batched := r.(ColumnScanner)
	if !batched {
		row := make([]Value, w)
		for i := 0; i < n; i++ {
			r.CopyRow(row, i)
			if err := out.AppendRow(row); err != nil {
				out.Close() // remove the partly-written heap file
				return nil, err
			}
		}
		return out, nil
	}
	buf := make([]Value, min(n, out.segSize))
	for base := 0; base < n; base += out.segSize {
		m := min(out.segSize, n-base)
		for j := 0; j < w; j++ {
			size := Value(schema.Cols[j].Domain.Size)
			c := &out.tail.cols[j]
			lo, hi := out.colLo[j], out.colHi[j]
			for from := base; from < base+m; {
				got := cs.ScanColumn(j, from, buf[:base+m-from])
				for _, v := range buf[:got] {
					if v < 0 || v >= size {
						panic(fmt.Sprintf("relational: materialize segmented %q column %q: value %d outside domain of size %d",
							name, schema.Cols[j].Name, v, size))
					}
					c.append(v)
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				from += got
			}
			out.colLo[j], out.colHi[j] = lo, hi
		}
		out.tail.n = m
		out.n += m
		if m == out.segSize {
			if err := out.seal(); err != nil {
				out.Close() // remove the partly-written heap file
				return nil, err
			}
		}
	}
	return out, nil
}
