package relational

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
)

// FsckIssue is one problem found while verifying a heap file.
type FsckIssue struct {
	File   string
	Offset int64 // byte offset of the bad blob; -1 for file-level problems
	Err    error
}

func (i FsckIssue) String() string {
	if i.Offset < 0 {
		return fmt.Sprintf("%s: %v", i.File, i.Err)
	}
	return fmt.Sprintf("%s @ %d: %v", i.File, i.Offset, i.Err)
}

// FsckReport summarizes a heap-file verification pass.
type FsckReport struct {
	Files    int   // heap files visited
	Segments int   // blobs that verified clean
	Bytes    int64 // payload bytes verified
	Issues   []FsckIssue
}

// OK reports whether the walk found no problems.
func (r *FsckReport) OK() bool { return len(r.Issues) == 0 }

// FsckDir walks every *.seg heap file in dir and verifies each segment blob:
// magic, format version, payload length, CRC32C, and column structure. It is
// the offline counterpart of the fault-in verification the pager does on
// every read — `hamlet -fsck <spilldir>` exposes it on the CLI. Temp files
// left behind by a crashed run (*.seg.tmp) are reported as issues too.
func FsckDir(fsys fault.FS, dir string) (*FsckReport, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("relational: fsck: %w", err)
	}
	rep := &FsckReport{}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		path := dir + "/" + name
		if strings.HasSuffix(name, segFileSuffix+".tmp") {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: -1,
				Err: fmt.Errorf("orphaned temp file (crashed run?)")})
			continue
		}
		if !strings.HasSuffix(name, segFileSuffix) {
			continue
		}
		rep.Files++
		if err := fsckFile(fsys, path, rep); err != nil {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: -1, Err: err})
		}
	}
	return rep, nil
}

// fsckFile walks one heap file blob by blob. Blobs start on page boundaries
// and carry their payload length in the header, so the walk needs no table
// metadata. A bad header stops the walk of that file — without a trustworthy
// length there is no reliable way to find the next blob.
func fsckFile(fsys fault.FS, path string, rep *FsckReport) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	hdr := make([]byte, segHeaderLen)
	var blob []byte
	for off := int64(0); off < size; {
		if _, err := f.ReadAt(hdr, off); err != nil {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: off,
				Err: fmt.Errorf("header read: %w", err)})
			return nil
		}
		// Validate the header shape first (magic/version/length) so a
		// corrupt length cannot drive a huge allocation or a wild walk.
		plen, err := parseSegmentHeader(hdr)
		if err != nil {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: off, Err: err})
			return nil
		}
		if off+segHeaderLen+int64(plen) > size {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: off,
				Err: fmt.Errorf("payload length %d does not fit file of %d bytes (torn write?)", plen, size)})
			return nil
		}
		blobLen := segHeaderLen + plen
		if cap(blob) < blobLen {
			blob = make([]byte, blobLen)
		}
		blob = blob[:blobLen]
		if _, err := f.ReadAt(blob, off); err != nil {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: off,
				Err: fmt.Errorf("blob read: %w", err)})
			return nil
		}
		if _, err := decodeSegment(blob, -1, -1); err != nil {
			rep.Issues = append(rep.Issues, FsckIssue{File: path, Offset: off, Err: err})
		} else {
			rep.Segments++
			rep.Bytes += int64(plen)
		}
		pages := (int64(blobLen) + pageSize - 1) / pageSize
		off += pages * pageSize
	}
	return nil
}

// WriteFsckReport renders the report in the `hamlet -fsck` output format.
func WriteFsckReport(w io.Writer, rep *FsckReport) {
	fmt.Fprintf(w, "fsck: %d file(s), %d segment(s), %d payload byte(s) verified\n",
		rep.Files, rep.Segments, rep.Bytes)
	for _, issue := range rep.Issues {
		fmt.Fprintf(w, "fsck: CORRUPT %s\n", issue)
	}
	if rep.OK() {
		fmt.Fprintln(w, "fsck: clean")
	}
}
