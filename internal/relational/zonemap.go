package relational

import "math/bits"

// ZoneMap is the per-(segment, column) statistics block a SegmentedTable
// keeps resident even when the segment's data has been spilled to disk: the
// observed min/max code and an approximate distinct count. Scans use it to
// *prove* a segment irrelevant — an equality predicate outside [Min, Max]
// cannot match any row, and a column whose zone maps all agree on Min == Max
// is constant — and skip the segment without faulting it in (the
// provenance-based data-skipping idea specialized to dictionary codes).
//
// Distinct is exact when the column's domain fits the seal-time tracking
// bitmap (zoneBitmapSlots values) and a collision-lossy underestimate above
// that; consumers must treat it as a hint (cardinality ordering, skip
// heuristics), never as a proof. Min/Max are always exact.
type ZoneMap struct {
	Min, Max Value
	Distinct int
}

// MayContain reports whether value v can occur in the segment's column.
// False is a proof of absence; true is only an absence of proof.
func (z ZoneMap) MayContain(v Value) bool { return v >= z.Min && v <= z.Max }

// Constant reports whether every row of the segment's column holds the same
// value (Min == Max).
func (z ZoneMap) Constant() bool { return z.Min == z.Max }

// zoneBitmapSlots bounds the seal-time distinct-tracking bitmap: domains up
// to this size are counted exactly; larger domains hash (mod) into the
// bitmap, making Distinct an underestimate. 4096 slots = 512 bytes of
// transient scratch per column, reused across seals.
const zoneBitmapSlots = 1 << 12

// zoneScratch is the reusable seal-time bitmap.
type zoneScratch struct {
	bits []uint64
}

// buildZoneMap computes the zone map of one sealed column in a single pass.
func (zs *zoneScratch) buildZoneMap(c *colData, n int, domainSize int) ZoneMap {
	slots := domainSize
	if slots > zoneBitmapSlots {
		slots = zoneBitmapSlots
	}
	words := (slots + 63) / 64
	if cap(zs.bits) < words {
		zs.bits = make([]uint64, words)
	}
	b := zs.bits[:words]
	for i := range b {
		b[i] = 0
	}
	z := ZoneMap{Min: Value(domainSize), Max: -1}
	mark := func(v Value) {
		if v < z.Min {
			z.Min = v
		}
		if v > z.Max {
			z.Max = v
		}
		s := int(v) % slots
		b[s>>6] |= 1 << (s & 63)
	}
	switch {
	case c.u8 != nil:
		for _, v := range c.u8[:n] {
			mark(Value(v))
		}
	case c.u16 != nil:
		for _, v := range c.u16[:n] {
			mark(Value(v))
		}
	default:
		for _, v := range c.u32[:n] {
			mark(v)
		}
	}
	for _, w := range b {
		z.Distinct += bits.OnesCount64(w)
	}
	return z
}
