// Package relational implements the star-schema substrate the paper's study
// runs on: categorical columns with closed finite domains, fact and dimension
// tables linked by key–foreign-key (KFK) constraints, and the projected
// equi-join T ← π(R ⋈_{RID=FK} S) that materializes the full training table.
//
// The paper's setting (§2) assumes all features are categorical with known
// finite domains (an "Others" placeholder absorbs unseen values), that the
// fact table S carries the target Y and foreign keys FK_1..FK_q, and that
// each dimension table R_i contributes foreign features X_Ri functionally
// determined by FK_i. This package enforces and can verify that functional
// dependency, which is the entire basis for avoiding joins safely.
package relational

import (
	"fmt"
	"sort"
)

// Value is the integer code of a categorical value within its Domain.
// Code -1 is reserved to mean "missing / not applicable" and never appears
// in a valid materialized table.
type Value = int32

// Domain is a closed, finite categorical domain. Values are dense codes
// [0, Size); Labels optionally names them for display. The paper assumes all
// feature domains are closed (§2.2): foreign keys draw values only from the
// referenced table's primary-key column, and an "Others" label can be a
// member like any other.
type Domain struct {
	Name   string
	Size   int
	Labels []string // optional, len == Size when present
}

// NewDomain creates an anonymous domain of the given size.
func NewDomain(name string, size int) *Domain {
	if size <= 0 {
		panic(fmt.Sprintf("relational: domain %q must have positive size, got %d", name, size))
	}
	return &Domain{Name: name, Size: size}
}

// NewLabeledDomain creates a domain whose values carry display labels.
func NewLabeledDomain(name string, labels []string) *Domain {
	if len(labels) == 0 {
		panic(fmt.Sprintf("relational: labeled domain %q must have at least one label", name))
	}
	return &Domain{Name: name, Size: len(labels), Labels: append([]string(nil), labels...)}
}

// Label returns the display label of code v, or a synthesized one.
func (d *Domain) Label(v Value) string {
	if int(v) < 0 || int(v) >= d.Size {
		return fmt.Sprintf("%s<invalid:%d>", d.Name, v)
	}
	if d.Labels != nil {
		return d.Labels[v]
	}
	return fmt.Sprintf("%s=%d", d.Name, v)
}

// Contains reports whether code v is a member of the domain.
func (d *Domain) Contains(v Value) bool {
	return v >= 0 && int(v) < d.Size
}

// ColumnKind distinguishes the roles a column can play in the paper's
// notation: plain features (X_S, X_R), primary keys (RID), foreign keys
// (FK_i), and the class label Y.
type ColumnKind int

const (
	// KindFeature is an ordinary categorical feature column.
	KindFeature ColumnKind = iota
	// KindPrimaryKey is a dimension table's RID column.
	KindPrimaryKey
	// KindForeignKey is a fact-table column referencing a dimension RID.
	KindForeignKey
	// KindTarget is the class label Y (binary in this study).
	KindTarget
)

func (k ColumnKind) String() string {
	switch k {
	case KindFeature:
		return "feature"
	case KindPrimaryKey:
		return "primary-key"
	case KindForeignKey:
		return "foreign-key"
	case KindTarget:
		return "target"
	default:
		return fmt.Sprintf("ColumnKind(%d)", int(k))
	}
}

// Column describes one column of a table: a name, a kind, a domain, and —
// for foreign keys — the name of the referenced dimension table.
type Column struct {
	Name   string
	Kind   ColumnKind
	Domain *Domain
	// Refs names the dimension table a KindForeignKey column references.
	Refs string
	// Open marks a foreign key whose domain is "open" in the paper's sense
	// (e.g. Expedia's search id): past values never recur, so the column can
	// never be used as a feature and its dimension table can never be
	// discarded via the FK-as-representative argument.
	Open bool
}

// Schema is an ordered list of columns.
type Schema struct {
	Cols   []Column
	byName map[string]int
}

// NewSchema builds a schema and indexes columns by name. Duplicate column
// names are rejected.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.Cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relational: column %d has empty name", i)
		}
		if c.Domain == nil {
			return nil, fmt.Errorf("relational: column %q has nil domain", c.Name)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relational: duplicate column name %q", c.Name)
		}
		if c.Kind == KindForeignKey && c.Refs == "" {
			return nil, fmt.Errorf("relational: foreign key %q missing referenced table", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known-correct schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Column returns the named column and whether it exists.
func (s *Schema) Column(name string) (Column, bool) {
	i := s.Index(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Cols[i], true
}

// Width returns the number of columns.
func (s *Schema) Width() int { return len(s.Cols) }

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// ColumnsOfKind returns the indices of all columns with the given kind,
// in schema order.
func (s *Schema) ColumnsOfKind(k ColumnKind) []int {
	var out []int
	for i, c := range s.Cols {
		if c.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// FeatureNames returns the names of all KindFeature columns.
func (s *Schema) FeatureNames() []string {
	var out []string
	for _, c := range s.Cols {
		if c.Kind == KindFeature {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}
