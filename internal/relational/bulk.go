package relational

// BulkTable is the write surface shared by both storage engines' bulk
// ingestion paths.
type BulkTable interface {
	Schema() *Schema
	AppendRows(block []Value) error
}

// BulkAppender stages rows in a chunk-sized block and flushes them to a
// table through AppendRows — the shared form of the generator/reader
// ingestion loop: per-column domain validation without transiently holding
// a second full copy of the table. Callers Append each row and must Flush
// (or MustFlush) once at the end.
type BulkAppender struct {
	dst   BulkTable
	width int
	limit int // flush threshold in values (chunkRows * width)
	block []Value
}

// bulkChunkRows is the default staging-chunk size: large enough that the
// per-chunk validation pass amortizes, small enough (a few hundred KiB)
// that the staging block stays cache-friendly and never rivals the table.
const bulkChunkRows = 8192

// NewBulkAppender wraps a destination table. capHintRows bounds the staging
// block below the chunk size for small tables; pass the expected row count
// (or 0 for the default chunk).
func NewBulkAppender(dst BulkTable, capHintRows int) *BulkAppender {
	w := dst.Schema().Width()
	rows := bulkChunkRows
	if capHintRows > 0 && capHintRows < rows {
		rows = capHintRows
	}
	return &BulkAppender{dst: dst, width: w, limit: bulkChunkRows * w, block: make([]Value, 0, rows*w)}
}

// Append stages one row (len must equal the schema width) and flushes the
// block when it reaches the chunk size.
func (b *BulkAppender) Append(row []Value) error {
	b.block = append(b.block, row...)
	if len(b.block) >= b.limit {
		return b.Flush()
	}
	return nil
}

// MustAppend is Append for generator code where rows are correct by
// construction.
func (b *BulkAppender) MustAppend(row []Value) {
	if err := b.Append(row); err != nil {
		panic(err)
	}
}

// Flush appends any staged rows to the destination.
func (b *BulkAppender) Flush() error {
	if len(b.block) == 0 {
		return nil
	}
	if err := b.dst.AppendRows(b.block); err != nil {
		return err
	}
	b.block = b.block[:0]
	return nil
}

// MustFlush is Flush for generator code.
func (b *BulkAppender) MustFlush() {
	if err := b.Flush(); err != nil {
		panic(err)
	}
}
