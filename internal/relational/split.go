package relational

import (
	"fmt"

	"repro/internal/rng"
)

// Split holds the three-way partition the paper uses for every dataset:
// 50% training, 25% validation (grid search / feature selection), 25%
// holdout test (§3.2).
type Split struct {
	Train, Validation, Test *Table
}

// SplitFractions splits table rows into train/validation/test by the given
// fractions after a seeded shuffle. Fractions must be positive and sum to at
// most 1; the test split receives the remainder.
func SplitFractions(t *Table, trainFrac, valFrac float64, r *rng.RNG) (Split, error) {
	if trainFrac <= 0 || valFrac <= 0 || trainFrac+valFrac >= 1 {
		return Split{}, fmt.Errorf("relational: invalid split fractions train=%v val=%v", trainFrac, valFrac)
	}
	n := t.NumRows()
	if n < 4 {
		return Split{}, fmt.Errorf("relational: table %q too small to split (%d rows)", t.Name, n)
	}
	perm := r.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	if nTrain == 0 || nVal == 0 || nTrain+nVal >= n {
		return Split{}, fmt.Errorf("relational: degenerate split of %d rows", n)
	}
	return Split{
		Train:      t.SelectRows(t.Name+"_train", perm[:nTrain]),
		Validation: t.SelectRows(t.Name+"_val", perm[nTrain:nTrain+nVal]),
		Test:       t.SelectRows(t.Name+"_test", perm[nTrain+nVal:]),
	}, nil
}

// PaperSplit applies the paper's fixed 50/25/25 partition.
func PaperSplit(t *Table, r *rng.RNG) (Split, error) {
	return SplitFractions(t, 0.50, 0.25, r)
}
