package relational

import (
	"fmt"

	"repro/internal/rng"
)

// Split holds the three-way partition the paper uses for every dataset:
// 50% training, 25% validation (grid search / feature selection), 25%
// holdout test (§3.2). Since the factorized-execution refactor the three
// parts are lazy SelectViews over the source relation — a split of a
// JoinView costs three index slices, not three table copies.
type Split struct {
	Train, Validation, Test Relation
}

// SplitFractions splits relation rows into train/validation/test by the
// given fractions after a seeded shuffle. Fractions must be positive and sum
// to at most 1; the test split receives the remainder. The returned views
// share the source relation's storage.
func SplitFractions(r Relation, trainFrac, valFrac float64, rnd *rng.RNG) (Split, error) {
	if trainFrac <= 0 || valFrac <= 0 || trainFrac+valFrac >= 1 {
		return Split{}, fmt.Errorf("relational: invalid split fractions train=%v val=%v", trainFrac, valFrac)
	}
	n := r.NumRows()
	if n < 4 {
		return Split{}, fmt.Errorf("relational: relation too small to split (%d rows)", n)
	}
	perm := rnd.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	if nTrain == 0 || nVal == 0 || nTrain+nVal >= n {
		return Split{}, fmt.Errorf("relational: degenerate split of %d rows", n)
	}
	train, err := NewSelectView(r, perm[:nTrain])
	if err != nil {
		return Split{}, err
	}
	val, err := NewSelectView(r, perm[nTrain:nTrain+nVal])
	if err != nil {
		return Split{}, err
	}
	test, err := NewSelectView(r, perm[nTrain+nVal:])
	if err != nil {
		return Split{}, err
	}
	return Split{Train: train, Validation: val, Test: test}, nil
}

// PaperSplit applies the paper's fixed 50/25/25 partition.
func PaperSplit(r Relation, rnd *rng.RNG) (Split, error) {
	return SplitFractions(r, 0.50, 0.25, rnd)
}

// Materialize evaluates all three parts into contiguous tables named
// "<base>_train" / "<base>_val" / "<base>_test" — the historical eager
// behaviour, used by the pipeline-equivalence tests and by callers that
// rescan splits many times.
func (s Split) Materialize(base string) Split {
	return Split{
		Train:      Materialize(s.Train, base+"_train"),
		Validation: Materialize(s.Validation, base+"_val"),
		Test:       Materialize(s.Test, base+"_test"),
	}
}
