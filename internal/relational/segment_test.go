package relational

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/rng"
)

// segmentedFromTable fills a SegmentedTable with the rows of src.
func segmentedFromTable(t testing.TB, src *Table, opts SegmentOptions) *SegmentedTable {
	t.Helper()
	st, err := NewSegmentedTable(src.Name+"_seg", src.Schema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]Value, src.Schema().Width())
	for i := 0; i < src.NumRows(); i++ {
		src.CopyRow(row, i)
		if err := st.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSegmentedMatchesTable is the segmented engine's equivalence property:
// row counts straddling every segment boundary (empty, single row, one row
// short of a seal, exactly one segment, one over, several segments plus a
// tail) read back bit-identically to the row-major table under every API.
func TestSegmentedMatchesTable(t *testing.T) {
	const segSize = 64
	for _, n := range []int{0, 1, segSize - 1, segSize, segSize + 1, 3*segSize + 17} {
		tab := randomWideTable(t, n, uint64(n)+1)
		st := segmentedFromTable(t, tab, SegmentOptions{SegmentSize: segSize})
		requireSameRelation(t, tab, st)
		wantSegs := (n + segSize - 1) / segSize
		if got := st.NumSegments(); got != wantSegs {
			t.Fatalf("n=%d: NumSegments() = %d, want %d", n, got, wantSegs)
		}
	}
}

// TestSegmentedSpilledMatchesTable re-runs the equivalence property with the
// out-of-core tier active and a cache budget small enough to force eviction
// and re-faulting during the comparison reads.
func TestSegmentedSpilledMatchesTable(t *testing.T) {
	const segSize = 64
	tab := randomWideTable(t, 5*segSize+9, 11)
	st := segmentedFromTable(t, tab, SegmentOptions{
		SegmentSize: segSize,
		SpillDir:    t.TempDir(),
		CacheBytes:  1024, // roughly one segment's worth; forces thrash
	})
	defer st.Close()
	if !st.Spilled() {
		t.Fatal("table with SpillDir must report Spilled")
	}
	requireSameRelation(t, tab, st)
	if rb := st.ResidentBytes(); rb > 4*1024 {
		t.Fatalf("resident bytes %d stayed far above the 1024-byte budget", rb)
	}
}

// TestSegmentedAppendRowsMatchesAppendRow checks the bulk path seals the
// same segments as row-at-a-time appends, including the validation contract.
func TestSegmentedAppendRowsMatchesAppendRow(t *testing.T) {
	const segSize = 32
	tab := randomWideTable(t, 3*segSize+5, 3)
	w := tab.Schema().Width()
	block := make([]Value, 0, tab.NumRows()*w)
	row := make([]Value, w)
	for i := 0; i < tab.NumRows(); i++ {
		block = append(block, tab.CopyRow(row, i)...)
	}
	st, err := NewSegmentedTable("bulk", tab.Schema(), SegmentOptions{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	st.Reserve(tab.NumRows())
	if err := st.AppendRows(block); err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, tab, st)

	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "x", Kind: KindFeature, Domain: NewDomain("x", 4)},
	)
	for _, tt := range []struct {
		name  string
		block []Value
		want  string
	}{
		{"ragged", []Value{0, 1, 0}, "multiple of width"},
		{"negative", []Value{0, -1}, "outside domain"},
		{"toobig", []Value{0, 1, 1, 4}, "outside domain"},
	} {
		bad, err := NewSegmentedTable("t", schema, SegmentOptions{SegmentSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := bad.AppendRows(tt.block); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Fatalf("%s: AppendRows err = %v, want %q", tt.name, err, tt.want)
		}
		if bad.NumRows() != 0 {
			t.Fatalf("%s: failed append must not add rows", tt.name)
		}
	}
}

// TestSegmentedZoneMaps pins the zone-map semantics: exact min/max per
// sealed segment, MayContain as a proof of absence, ColumnRange folding
// sealed segments with the open tail, and the constant-column proof.
func TestSegmentedZoneMaps(t *testing.T) {
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "clustered", Kind: KindFeature, Domain: NewDomain("c", 1000)},
		Column{Name: "constant", Kind: KindFeature, Domain: NewDomain("k", 8)},
	)
	st, err := NewSegmentedTable("zm", schema, SegmentOptions{SegmentSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Clustered column: segment s holds values in [s*10, s*10+9].
	for i := 0; i < 35; i++ {
		st.MustAppendRow([]Value{Value(i % 2), Value(i), 5})
	}
	z, ok := st.SegmentZone(1, 1)
	if !ok || z.Min != 10 || z.Max != 19 || z.Distinct != 10 {
		t.Fatalf("segment 1 zone = %+v ok=%v, want min 10 max 19 distinct 10", z, ok)
	}
	if !z.MayContain(15) || z.MayContain(25) || z.MayContain(9) {
		t.Fatalf("MayContain wrong on %+v", z)
	}
	if z, _ := st.SegmentZone(0, 2); !z.Constant() || z.Min != 5 {
		t.Fatalf("constant column zone = %+v, want constant 5", z)
	}
	// The open tail (rows 30..34) has no sealed statistics.
	if _, ok := st.SegmentZone(3, 1); ok {
		t.Fatal("tail segment must report no zone map")
	}
	if !st.SegmentMayContain(3, 1, 999) {
		t.Fatal("tail must report MayContain for everything")
	}
	// ColumnRange folds sealed zones and scans the tail.
	if lo, hi, ok := st.ColumnRange(1); !ok || lo != 0 || hi != 34 {
		t.Fatalf("ColumnRange(clustered) = [%d,%d] ok=%v, want [0,34]", lo, hi, ok)
	}
	if lo, hi, ok := st.ColumnRange(2); !ok || lo != 5 || hi != 5 {
		t.Fatalf("ColumnRange(constant) = [%d,%d] ok=%v, want [5,5]", lo, hi, ok)
	}
	empty, _ := NewSegmentedTable("e", schema, SegmentOptions{})
	if _, _, ok := empty.ColumnRange(1); ok {
		t.Fatal("empty table must report no column range")
	}
}

// TestSelectEqZoneSkipMatchesGeneric checks the segment-skipping SelectEq
// returns exactly the generic scan's result on a clustered column (where
// most segments are provably skippable) and on an unclustered one.
func TestSelectEqZoneSkipMatchesGeneric(t *testing.T) {
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "bucket", Kind: KindFeature, Domain: NewDomain("b", 64)},
		Column{Name: "noise", Kind: KindFeature, Domain: NewDomain("n", 16)},
	)
	r := rng.New(9)
	tab := NewTable("src", schema, 0)
	for i := 0; i < 500; i++ {
		tab.MustAppendRow([]Value{Value(r.Intn(2)), Value(i / 8 % 64), Value(r.Intn(16))})
	}
	st := segmentedFromTable(t, tab, SegmentOptions{SegmentSize: 48})
	for _, col := range []int{1, 2} {
		for _, v := range []Value{0, 7, 13} {
			want, err := SelectEq(tab, "w", col, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SelectEq(st, "g", col, v)
			if err != nil {
				t.Fatal(err)
			}
			requireSameRelation(t, want, got)
		}
	}
	if _, err := SelectEq(st, "bad", 1, 9999); err == nil {
		t.Fatal("out-of-domain value must error")
	}
}

// TestMaterializeSegmented checks the chunked scanner drain, the CopyRow
// fallback, and the empty edge against Materialize.
func TestMaterializeSegmented(t *testing.T) {
	ss := testStar(t, 200, 13, 7, 21)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	rowT := Materialize(jv, "rows")
	segT, err := MaterializeSegmented(jv, "segs", SegmentOptions{SegmentSize: 37})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, rowT, segT)

	seg2, err := MaterializeSegmented(noScan{jv}, "segs2", SegmentOptions{SegmentSize: 37})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, rowT, seg2)

	schema := MustSchema(Column{Name: "x", Kind: KindFeature, Domain: NewDomain("x", 4)})
	empty, err := MaterializeSegmented(NewTable("empty", schema, 0), "e", SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 || empty.NumSegments() != 0 {
		t.Fatalf("empty materialize: %d rows, %d segments", empty.NumRows(), empty.NumSegments())
	}
}

// TestSegmentedViaSelectView checks the fused double-remap gather path a
// split view routes through the segmented engine.
func TestSegmentedViaSelectView(t *testing.T) {
	tab := randomWideTable(t, 300, 21)
	st := segmentedFromTable(t, tab, SegmentOptions{SegmentSize: 64})
	r := rng.New(4)
	idx := make([]int, 120)
	for i := range idx {
		idx[i] = r.Intn(tab.NumRows())
	}
	want, err := NewSelectView(tab, idx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewSelectView(st, idx)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, want, got)
	// The view forwards the segmented source's column range.
	lo, hi, ok := got.ColumnRange(0)
	wlo, whi, wok := st.ColumnRange(0)
	if !ok || !wok || lo != wlo || hi != whi {
		t.Fatalf("view ColumnRange = [%d,%d] ok=%v, source [%d,%d] ok=%v", lo, hi, ok, wlo, whi, wok)
	}
}

// TestReadCSVIntoSegmented round-trips a table through CSV into a segmented
// table whose segment size forces several seals mid-stream.
func TestReadCSVIntoSegmented(t *testing.T) {
	tab := randomWideTable(t, 250, 31)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	st, err := NewSegmentedTable("csv", tab.Schema(), SegmentOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadCSVInto(bytes.NewReader(buf.Bytes()), st); err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, tab, st)
}

// TestSegmentedOutOfCoreLifecycle checks the heap file exists while the
// table lives, eviction keeps the resident set near the budget during bulk
// reads, and Close removes the file.
func TestSegmentedOutOfCoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	tab := randomWideTable(t, 400, 13)
	st := segmentedFromTable(t, tab, SegmentOptions{SegmentSize: 32, SpillDir: dir, CacheBytes: 2048})
	path := st.pager.Path()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("heap file missing while table alive: %v", err)
	}
	buf := make([]Value, tab.NumRows())
	for j := 0; j < tab.Schema().Width(); j++ {
		st.ScanColumn(j, 0, buf)
	}
	if rb := st.ResidentBytes(); rb > 8*1024 {
		t.Fatalf("resident bytes %d, want near the 2048 budget", rb)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("heap file must be removed on Close, stat err = %v", err)
	}
}

// TestSegmentedConcurrentSpilledReads hammers a spilled table under a cache
// budget that holds only a fraction of the segments, from many goroutines
// mixing scans, gathers, and point reads — the pin/unpin-vs-evict race the
// LRU cache must survive. Run under -race this is the satellite coverage
// for concurrent pin/unpin while scans are in flight.
func TestSegmentedConcurrentSpilledReads(t *testing.T) {
	const segSize = 64
	tab := randomWideTable(t, 8*segSize+11, 17)
	st := segmentedFromTable(t, tab, SegmentOptions{
		SegmentSize: segSize,
		SpillDir:    t.TempDir(),
		CacheBytes:  3 * 1024,
	})
	defer st.Close()
	n := st.NumRows()
	w := st.Schema().Width()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(100 + g))
			buf := make([]Value, 200)
			rows := make([]int, 64)
			rowBuf := make([]Value, w)
			for iter := 0; iter < 30; iter++ {
				j := r.Intn(w)
				from := r.Intn(n)
				m := st.ScanColumn(j, from, buf)
				for k := 0; k < m; k++ {
					if want := tab.At(from+k, j); buf[k] != want {
						t.Errorf("g%d: ScanColumn(%d,%d)[%d] = %d want %d", g, j, from, k, buf[k], want)
						return
					}
				}
				for k := range rows {
					rows[k] = r.Intn(n)
				}
				st.GatherColumn(buf[:len(rows)], j, rows)
				for k, row := range rows {
					if want := tab.At(row, j); buf[k] != want {
						t.Errorf("g%d: GatherColumn[%d] = %d want %d", g, k, buf[k], want)
						return
					}
				}
				i := r.Intn(n)
				st.CopyRow(rowBuf, i)
				for j := 0; j < w; j++ {
					if want := tab.At(i, j); rowBuf[j] != want {
						t.Errorf("g%d: CopyRow(%d)[%d] = %d want %d", g, i, j, rowBuf[j], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSegmentCodecRejectsCorruption checks decodeSegment errors (never
// panics) on truncated or mangled blobs — heap files are external state.
func TestSegmentCodecRejectsCorruption(t *testing.T) {
	s := &segment{n: 4, cols: make([]colData, 2)}
	s.cols[0] = newColData(10, 4)
	s.cols[1] = newColData(70000, 4)
	for i := 0; i < 4; i++ {
		s.cols[0].append(Value(i))
		s.cols[1].append(Value(i * 1000))
	}
	blob := encodeSegment(s)
	back, err := decodeSegment(blob, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if back.cols[0].at(i) != Value(i) || back.cols[1].at(i) != Value(i*1000) {
			t.Fatalf("round trip diverged at row %d", i)
		}
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"badmagic":  func(b []byte) []byte { b = append([]byte(nil), b...); b[0] = 'X'; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"shorthdr":  func(b []byte) []byte { return b[:6] },
		"badrows": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[4] = 99
			return b
		},
	} {
		if _, err := decodeSegment(mangle(append([]byte(nil), blob...)), 4, 2); err == nil {
			t.Fatalf("%s: corrupted blob must error", name)
		}
	}
}

// FuzzSegmentedEquivalence feeds arbitrary row bytes and an arbitrary
// segment size into the segmented engine and requires every accepted row
// set to read back identically to the monolithic ColumnarTable — the seeds
// pin the boundary cases (empty, single row, segsize±1, exact fill,
// multi-segment).
func FuzzSegmentedEquivalence(f *testing.F) {
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "a", Kind: KindFeature, Domain: NewDomain("a", 300)},
		Column{Name: "b", Kind: KindFeature, Domain: NewDomain("b", 5)},
	)
	w := schema.Width()
	rowsOf := func(rows ...[]byte) []byte {
		var out []byte
		for _, r := range rows {
			out = append(out, r...)
		}
		return out
	}
	valid := []byte{1, 200, 3}
	f.Add(uint8(4), []byte{})                                         // empty
	f.Add(uint8(4), rowsOf(valid))                                    // single row
	f.Add(uint8(4), rowsOf(valid, valid, valid))                      // segsize-1
	f.Add(uint8(4), rowsOf(valid, valid, valid, valid))               // exact fill
	f.Add(uint8(4), rowsOf(valid, valid, valid, valid, valid))        // segsize+1
	f.Add(uint8(2), rowsOf(valid, valid, valid, valid, valid, valid)) // multi-segment
	f.Add(uint8(1), rowsOf(valid, valid, valid))                      // row-per-segment
	f.Add(uint8(0), rowsOf(valid, valid))                             // default size
	f.Fuzz(func(t *testing.T, segSize uint8, raw []byte) {
		n := len(raw) / w
		ct := NewColumnarTable("ct", schema, n)
		st, err := NewSegmentedTable("st", schema, SegmentOptions{SegmentSize: int(segSize)})
		if err != nil {
			t.Fatal(err)
		}
		row := make([]Value, w)
		for i := 0; i < n; i++ {
			for j := 0; j < w; j++ {
				row[j] = Value(raw[i*w+j])
			}
			errC := ct.AppendRow(row)
			errS := st.AppendRow(row)
			if (errC == nil) != (errS == nil) {
				t.Fatalf("engines disagree on row %v: columnar err %v, segmented err %v", row, errC, errS)
			}
		}
		if ct.NumRows() != st.NumRows() {
			t.Fatalf("row counts diverged: %d vs %d", ct.NumRows(), st.NumRows())
		}
		for i := 0; i < ct.NumRows(); i++ {
			for j := 0; j < w; j++ {
				if ct.At(i, j) != st.At(i, j) {
					t.Fatalf("At(%d,%d) diverged", i, j)
				}
			}
		}
		bufC := make([]Value, 3)
		bufS := make([]Value, 3)
		for j := 0; j < w; j++ {
			for from := 0; from <= ct.NumRows(); from += 2 {
				mC := ct.ScanColumn(j, from, bufC)
				mS := st.ScanColumn(j, from, bufS)
				if mC != mS {
					t.Fatalf("scan lengths diverged at (%d,%d): %d vs %d", j, from, mC, mS)
				}
				for k := 0; k < mC; k++ {
					if bufC[k] != bufS[k] {
						t.Fatalf("scan values diverged at (%d,%d)[%d]", j, from, k)
					}
				}
			}
			// Sealed zone maps must be consistent with the data they cover.
			for s := 0; s < st.NumSegments(); s++ {
				z, ok := st.SegmentZone(s, j)
				if !ok {
					continue
				}
				lo, hi := st.SegmentRows(s)
				for i := lo; i < hi; i++ {
					v := st.At(i, j)
					if !z.MayContain(v) {
						t.Fatalf("zone map %+v of segment %d column %d excludes present value %d", z, s, j, v)
					}
				}
			}
		}
	})
}
