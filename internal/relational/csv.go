package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a relation as CSV: a header row of column names
// followed by one row per tuple. Values are written as their labels when the
// domain is labeled, otherwise as integer codes. Lazy relations (JoinView,
// SelectView, …) stream out row by row without being materialized.
func WriteCSV(w io.Writer, t Relation) error {
	schema := t.Schema()
	cw := csv.NewWriter(w)
	if err := cw.Write(schema.Names()); err != nil {
		return fmt.Errorf("relational: csv header: %w", err)
	}
	rec := make([]string, schema.Width())
	row := make([]Value, schema.Width())
	n := t.NumRows()
	for i := 0; i < n; i++ {
		t.CopyRow(row, i)
		for j, v := range row {
			d := schema.Cols[j].Domain
			if d.Labels != nil {
				rec[j] = d.Labels[v]
			} else {
				rec[j] = strconv.Itoa(int(v))
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relational: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream into a table with the given schema. The header
// must match the schema's column names exactly and in order. Unlabeled
// domains expect integer codes; labeled domains expect labels.
func ReadCSV(r io.Reader, name string, schema *Schema) (*Table, error) {
	t := NewTable(name, schema, 64)
	if err := ReadCSVInto(r, t); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadCSVInto parses a CSV stream into any bulk-ingestible destination —
// a *Table, or a *SegmentedTable that seals (and, out of core, spills)
// segments as the staged chunks land. The destination's schema drives
// parsing exactly as in ReadCSV.
func ReadCSVInto(r io.Reader, dst BulkTable) error {
	schema := dst.Schema()
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("relational: csv header: %w", err)
	}
	names := schema.Names()
	if len(header) != len(names) {
		return fmt.Errorf("relational: csv has %d columns, schema has %d", len(header), len(names))
	}
	for i := range names {
		if header[i] != names[i] {
			return fmt.Errorf("relational: csv column %d is %q, schema expects %q", i, header[i], names[i])
		}
	}
	// Build label lookup per labeled column.
	lookups := make([]map[string]Value, schema.Width())
	for j, c := range schema.Cols {
		if c.Domain.Labels != nil {
			m := make(map[string]Value, c.Domain.Size)
			for v, lab := range c.Domain.Labels {
				m[lab] = Value(v)
			}
			lookups[j] = m
		}
	}
	// Rows are staged through the bulk-ingestion path. Domain membership is
	// checked at parse time (label lookups guarantee it for labeled columns),
	// which pins the error to the offending line; the bulk append's
	// per-column revalidation is cheap.
	bulk := NewBulkAppender(dst, 0)
	row := make([]Value, schema.Width())
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("relational: csv line %d: %w", line, err)
		}
		for j, field := range rec {
			if lookups[j] != nil {
				v, ok := lookups[j][field]
				if !ok {
					return fmt.Errorf("relational: csv line %d column %q: unknown label %q", line, names[j], field)
				}
				row[j] = v
				continue
			}
			iv, err := strconv.Atoi(field)
			if err != nil {
				return fmt.Errorf("relational: csv line %d column %q: %w", line, names[j], err)
			}
			if !schema.Cols[j].Domain.Contains(Value(iv)) {
				return fmt.Errorf("relational: csv line %d column %q: value %d outside domain of size %d",
					line, names[j], iv, schema.Cols[j].Domain.Size)
			}
			row[j] = Value(iv)
		}
		if err := bulk.Append(row); err != nil {
			return fmt.Errorf("relational: csv: %w", err)
		}
	}
	if err := bulk.Flush(); err != nil {
		return fmt.Errorf("relational: csv: %w", err)
	}
	return nil
}
