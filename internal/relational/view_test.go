package relational

import (
	"testing"

	"repro/internal/rng"
)

// testStar builds a small two-dimension star schema with deterministic
// pseudo-random contents.
func testStar(t testing.TB, nS, nR1, nR2 int, seed uint64) *StarSchema {
	t.Helper()
	r := rng.New(seed)

	mkDim := func(name string, nR, dR int) *Table {
		cols := []Column{{Name: "RID", Kind: KindPrimaryKey, Domain: NewDomain(name+"_RID", nR)}}
		for j := 0; j < dR; j++ {
			cols = append(cols, Column{Name: "f" + string(rune('a'+j)), Kind: KindFeature, Domain: NewDomain("d4", 4)})
		}
		dim := NewTable(name, MustSchema(cols...), nR)
		row := make([]Value, len(cols))
		for i := 0; i < nR; i++ {
			row[0] = Value(i)
			for j := 1; j < len(cols); j++ {
				row[j] = Value(r.Intn(4))
			}
			dim.MustAppendRow(row)
		}
		return dim
	}
	d1 := mkDim("R1", nR1, 3)
	d2 := mkDim("R2", nR2, 2)

	fcols := []Column{
		{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		{Name: "xs", Kind: KindFeature, Domain: NewDomain("d4", 4)},
		{Name: "fk1", Kind: KindForeignKey, Domain: d1.Schema().Cols[0].Domain, Refs: "R1"},
		{Name: "fk2", Kind: KindForeignKey, Domain: d2.Schema().Cols[0].Domain, Refs: "R2"},
	}
	fact := NewTable("S", MustSchema(fcols...), nS)
	for i := 0; i < nS; i++ {
		fact.MustAppendRow([]Value{Value(r.Intn(2)), Value(r.Intn(4)), Value(r.Intn(nR1)), Value(r.Intn(nR2))})
	}
	ss, err := NewStarSchema(fact, d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// eagerJoin is an independent reference implementation of the historical
// materialized join, kept in the tests as the oracle the factorized path is
// checked against byte-for-byte.
func eagerJoin(t testing.TB, ss *StarSchema) *Table {
	t.Helper()
	fact := ss.Fact
	cols := append([]Column(nil), fact.Schema().Cols...)
	type plan struct {
		fkCol   int
		dim     *Table
		featIdx []int
	}
	var plans []plan
	for _, fkCol := range fact.Schema().ColumnsOfKind(KindForeignKey) {
		dim := ss.Dimensions[fact.Schema().Cols[fkCol].Refs]
		var featIdx []int
		for i, c := range dim.Schema().Cols {
			if c.Kind == KindFeature {
				featIdx = append(featIdx, i)
				cols = append(cols, Column{Name: dim.Name + "." + c.Name, Kind: KindFeature, Domain: c.Domain})
			}
		}
		plans = append(plans, plan{fkCol: fkCol, dim: dim, featIdx: featIdx})
	}
	out := NewTable(fact.Name+"_joined", MustSchema(cols...), fact.NumRows())
	row := make([]Value, len(cols))
	for i := 0; i < fact.NumRows(); i++ {
		copy(row, fact.Row(i))
		at := fact.Schema().Width()
		for _, p := range plans {
			dimRow := p.dim.Row(int(fact.At(i, p.fkCol)))
			for _, fi := range p.featIdx {
				row[at] = dimRow[fi]
				at++
			}
		}
		out.MustAppendRow(row)
	}
	return out
}

func sameRelation(t *testing.T, want, got Relation) {
	t.Helper()
	ws, gs := want.Schema(), got.Schema()
	if ws.Width() != gs.Width() {
		t.Fatalf("width %d vs %d", ws.Width(), gs.Width())
	}
	for j := range ws.Cols {
		if ws.Cols[j].Name != gs.Cols[j].Name || ws.Cols[j].Kind != gs.Cols[j].Kind {
			t.Fatalf("column %d: %+v vs %+v", j, ws.Cols[j], gs.Cols[j])
		}
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("rows %d vs %d", want.NumRows(), got.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		for j := 0; j < ws.Width(); j++ {
			if want.At(i, j) != got.At(i, j) {
				t.Fatalf("cell (%d,%d): %d vs %d", i, j, want.At(i, j), got.At(i, j))
			}
		}
	}
}

func TestJoinViewMatchesEagerJoinByteForByte(t *testing.T) {
	ss := testStar(t, 200, 13, 7, 3)
	ref := eagerJoin(t, ss)

	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	// Cell-level equality of the lazy view.
	sameRelation(t, ref, jv)
	// Materialize(view) must reproduce the eager output exactly, and the
	// compatibility wrapper Join is that materialization.
	sameRelation(t, ref, Materialize(jv, ref.Name))
	joined, err := Join(ss)
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, ref, joined)
	if joined.Name != "S_joined" {
		t.Fatalf("materialized name %q", joined.Name)
	}
	// CopyRow agrees with At.
	w := jv.Schema().Width()
	buf := make([]Value, w)
	for _, i := range []int{0, 1, 99, 199} {
		jv.CopyRow(buf, i)
		for j := 0; j < w; j++ {
			if buf[j] != jv.At(i, j) {
				t.Fatalf("CopyRow(%d)[%d] = %d, At = %d", i, j, buf[j], jv.At(i, j))
			}
		}
	}
}

func TestJoinViewRejectsDanglingFK(t *testing.T) {
	ss := testStar(t, 50, 8, 5, 11)
	// Forge an FK beyond the dimension's rows. Domain size equals row count
	// here, so corrupt the raw storage through the package-internal slice.
	fk1 := ss.Fact.Schema().Index("fk1")
	ss.Fact.rows[3*ss.Fact.width+fk1] = Value(8) // rows are 0..7
	if _, err := NewJoinView(ss); err == nil {
		t.Fatal("dangling FK must fail view construction")
	}
	if _, err := Join(ss); err == nil {
		t.Fatal("dangling FK must fail materialized join")
	}
}

func TestJoinViewObservesBaseWrites(t *testing.T) {
	// The zero-copy contract: a write to a dimension table is visible
	// through the join view without rebuilding anything.
	ss := testStar(t, 40, 6, 4, 17)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	dim := ss.Dimensions["R1"]
	col := jv.Schema().Index("R1.fa")
	fk1 := ss.Fact.Schema().Index("fk1")
	row := 9
	dimRow := int(ss.Fact.At(row, fk1))
	old := jv.At(row, col)
	newVal := (old + 1) % 4
	if err := dim.Set(dimRow, 1, newVal); err != nil {
		t.Fatal(err)
	}
	if got := jv.At(row, col); got != newVal {
		t.Fatalf("join view did not observe dimension write: got %d, want %d", got, newVal)
	}
	// A materialized snapshot, by contrast, must NOT change.
	snap := Materialize(jv, "snap")
	if err := dim.Set(dimRow, 1, old); err != nil {
		t.Fatal(err)
	}
	if got := snap.At(row, col); got != newVal {
		t.Fatalf("materialized snapshot changed under it: got %d, want %d", got, newVal)
	}
}

func TestSelectAndProjectViews(t *testing.T) {
	ss := testStar(t, 30, 5, 3, 23)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{29, 0, 7, 7, 15}
	sv, err := NewSelectView(jv, idx)
	if err != nil {
		t.Fatal(err)
	}
	if sv.NumRows() != len(idx) {
		t.Fatalf("select view rows %d", sv.NumRows())
	}
	for k, i := range idx {
		for j := 0; j < jv.Schema().Width(); j++ {
			if sv.At(k, j) != jv.At(i, j) {
				t.Fatalf("select view cell (%d,%d) mismatch", k, j)
			}
		}
	}
	if _, err := NewSelectView(jv, []int{30}); err == nil {
		t.Fatal("out-of-range index must be rejected")
	}

	cols := []int{2, 0}
	pv, err := NewProjectView(sv, cols)
	if err != nil {
		t.Fatal(err)
	}
	if pv.Schema().Cols[0].Name != sv.Schema().Cols[2].Name {
		t.Fatal("project view schema not remapped")
	}
	for k := range idx {
		for jj, c := range cols {
			if pv.At(k, jj) != sv.At(k, c) {
				t.Fatalf("project view cell (%d,%d) mismatch", k, jj)
			}
		}
	}
	if _, err := NewProjectView(sv, []int{99}); err == nil {
		t.Fatal("out-of-range column must be rejected")
	}
	// Materializing the stack equals walking it.
	sameRelation(t, pv, Materialize(pv, "mat"))
}

func TestSplitIsLazyAndMaterializes(t *testing.T) {
	ss := testStar(t, 64, 6, 4, 29)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	split, err := PaperSplit(jv, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := split.Train.(*SelectView); !ok {
		t.Fatalf("split part is %T, want *SelectView", split.Train)
	}
	total := split.Train.NumRows() + split.Validation.NumRows() + split.Test.NumRows()
	if total != jv.NumRows() {
		t.Fatalf("split covers %d of %d rows", total, jv.NumRows())
	}
	mat := split.Materialize("S")
	tr, ok := mat.Train.(*Table)
	if !ok || tr.Name != "S_train" {
		t.Fatalf("materialized train is %T %q", mat.Train, tr.Name)
	}
	sameRelation(t, split.Train, mat.Train)
	sameRelation(t, split.Validation, mat.Validation)
	sameRelation(t, split.Test, mat.Test)
}

// FuzzJoinViewMatchesMaterialized drives randomized star schemas and checks
// every cell of the lazy join view against the eager reference join.
func FuzzJoinViewMatchesMaterialized(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint8(4), uint8(3))
	f.Add(uint64(42), uint16(1), uint8(1), uint8(1))
	f.Add(uint64(7), uint16(300), uint8(40), uint8(17))
	f.Fuzz(func(t *testing.T, seed uint64, nS uint16, nR1, nR2 uint8) {
		if nS == 0 || nR1 == 0 || nR2 == 0 {
			return
		}
		ss := testStar(t, int(nS)%512+1, int(nR1)+1, int(nR2)+1, seed)
		ref := eagerJoin(t, ss)
		jv, err := NewJoinView(ss)
		if err != nil {
			t.Fatal(err)
		}
		sameRelation(t, ref, jv)
	})
}
