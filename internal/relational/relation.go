package relational

import "fmt"

// Relation is the read interface over rectangular categorical data: anything
// with a schema, a row count, and random cell access. *Table implements it
// with contiguous storage; JoinView, SelectView, and ProjectView implement it
// lazily, resolving accesses through foreign-key or index indirection without
// materializing the result. Learners and experiment harnesses consume data
// exclusively through this interface (via ml.FromRelation), which is what
// lets a JoinAll pipeline run without ever paying for the joined table.
//
// Implementations must be safe for concurrent readers: At and CopyRow may be
// called from multiple goroutines once the relation is constructed.
type Relation interface {
	// Schema describes the columns.
	Schema() *Schema
	// NumRows returns the row count.
	NumRows() int
	// At returns the value at (row, col). Both indices must be in range.
	At(row, col int) Value
	// CopyRow copies row i into dst, which must have length >= the schema
	// width, and returns dst truncated to the width. It is the bulk fast
	// path: implementations resolve any per-row indirection (FK lookups,
	// index remaps) once instead of once per cell.
	CopyRow(dst []Value, row int) []Value
}

// ColumnRanger is implemented by relations that can report the observed
// [min, max] value range of a column without scanning it — SegmentedTable
// folds its zone maps; views forward to their source. ok is false when no
// bound is known (empty relation, source without statistics). The returned
// range may be wider than the rows actually visible through the relation
// (a SelectView forwards its source's bounds), so consumers may use it only
// for sound over-approximations: min == max proves a column constant, a
// value outside [min, max] proves absence, but the bounds themselves are
// not guaranteed tight.
type ColumnRanger interface {
	ColumnRange(col int) (min, max Value, ok bool)
}

// copyRowGeneric is the At-based CopyRow fallback shared by views.
func copyRowGeneric(r Relation, dst []Value, row int) []Value {
	w := r.Schema().Width()
	dst = dst[:w]
	for j := 0; j < w; j++ {
		dst[j] = r.At(row, j)
	}
	return dst
}

// Materialize evaluates any relation into a contiguous Table. It is the
// explicit boundary between the lazy, zero-copy world and code that needs
// physical storage (CSV export, repeated random scans where indirection
// costs dominate, the FD verifiers' O(1)-per-cell guarantees). The result
// is always an independent snapshot: it never aliases the source, so later
// writes to the source are not observed.
func Materialize(r Relation, name string) *Table {
	schema := r.Schema()
	w := schema.Width()
	n := r.NumRows()
	out := NewTable(name, schema, n)
	out.rows = out.rows[:n*w]
	for i := 0; i < n; i++ {
		r.CopyRow(out.rows[i*w:(i+1)*w], i)
	}
	return out
}

// SelectView is a lazy row-subset view over any relation: row i of the view
// is row idx[i] of the source. Indices may repeat. It is the lazy analogue of
// Table.SelectRows and the substrate of train/validation/test splits.
type SelectView struct {
	src Relation
	idx []int
}

// NewSelectView validates the indices and wraps the source. The index slice
// is retained, not copied; callers must not mutate it afterwards.
func NewSelectView(src Relation, idx []int) (*SelectView, error) {
	n := src.NumRows()
	for k, i := range idx {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("relational: select view index %d: row %d outside [0,%d)", k, i, n)
		}
	}
	return &SelectView{src: src, idx: idx}, nil
}

// Schema implements Relation.
func (v *SelectView) Schema() *Schema { return v.src.Schema() }

// NumRows implements Relation.
func (v *SelectView) NumRows() int { return len(v.idx) }

// At implements Relation.
func (v *SelectView) At(row, col int) Value { return v.src.At(v.idx[row], col) }

// CopyRow implements Relation.
func (v *SelectView) CopyRow(dst []Value, row int) []Value {
	return v.src.CopyRow(dst, v.idx[row])
}

// ScanColumn implements ColumnScanner: a contiguous slice of the view's
// index remap becomes a gather against the source. The source's gather
// devirtualizes the inner loop, so a split-over-join scan costs one
// interface call per morsel, not per cell.
func (v *SelectView) ScanColumn(col int, from int, dst []Value) int {
	m := scanLen(len(v.idx), from, len(dst))
	if m == 0 {
		return 0
	}
	rows := v.idx[from : from+m]
	if g, ok := v.src.(ColumnGatherer); ok {
		g.GatherColumn(dst[:m], col, rows)
		return m
	}
	for k, r := range rows {
		dst[k] = v.src.At(r, col)
	}
	return m
}

// GatherColumn implements ColumnGatherer, composing the view's row remap
// with the caller's. The physical tables and JoinView get a fused
// double-indirection loop; other sources fall back to At.
func (v *SelectView) GatherColumn(dst []Value, col int, rows []int) {
	switch s := v.src.(type) {
	case *Table:
		s.GatherColumnVia(dst, col, v.idx, rows)
	case *ColumnarTable:
		s.GatherColumnVia(dst, col, v.idx, rows)
	case *SegmentedTable:
		s.GatherColumnVia(dst, col, v.idx, rows)
	case *JoinView:
		s.GatherColumnVia(dst, col, v.idx, rows)
	default:
		dst = dst[:len(rows)]
		for k, r := range rows {
			dst[k] = v.src.At(v.idx[r], col)
		}
	}
}

// ColumnRange implements ColumnRanger by forwarding the source's bounds.
// The view's rows are a subset of the source's, so the source range is a
// sound (possibly loose) over-approximation of the view's.
func (v *SelectView) ColumnRange(col int) (min, max Value, ok bool) {
	if cr, k := v.src.(ColumnRanger); k && len(v.idx) > 0 {
		return cr.ColumnRange(col)
	}
	return 0, 0, false
}

// ProjectView is a lazy column-subset view (relational π without
// materialization): column j of the view is column cols[j] of the source.
type ProjectView struct {
	src    Relation
	cols   []int
	schema *Schema
}

// NewProjectView builds the projected schema and wraps the source. The cols
// slice is retained, not copied.
func NewProjectView(src Relation, cols []int) (*ProjectView, error) {
	srcSchema := src.Schema()
	newCols := make([]Column, len(cols))
	for j, c := range cols {
		if c < 0 || c >= srcSchema.Width() {
			return nil, fmt.Errorf("relational: project view column %d outside [0,%d)", c, srcSchema.Width())
		}
		newCols[j] = srcSchema.Cols[c]
	}
	schema, err := NewSchema(newCols...)
	if err != nil {
		return nil, err
	}
	return &ProjectView{src: src, cols: cols, schema: schema}, nil
}

// Schema implements Relation.
func (v *ProjectView) Schema() *Schema { return v.schema }

// NumRows implements Relation.
func (v *ProjectView) NumRows() int { return v.src.NumRows() }

// At implements Relation.
func (v *ProjectView) At(row, col int) Value { return v.src.At(row, v.cols[col]) }

// CopyRow implements Relation.
func (v *ProjectView) CopyRow(dst []Value, row int) []Value {
	dst = dst[:len(v.cols)]
	for j, c := range v.cols {
		dst[j] = v.src.At(row, c)
	}
	return dst
}

// ScanColumn implements ColumnScanner: a column remap, then forward.
func (v *ProjectView) ScanColumn(col int, from int, dst []Value) int {
	if cs, ok := v.src.(ColumnScanner); ok {
		return cs.ScanColumn(v.cols[col], from, dst)
	}
	m := scanLen(v.src.NumRows(), from, len(dst))
	c := v.cols[col]
	for k := 0; k < m; k++ {
		dst[k] = v.src.At(from+k, c)
	}
	return m
}

// ColumnRange implements ColumnRanger: a column remap, then forward.
func (v *ProjectView) ColumnRange(col int) (min, max Value, ok bool) {
	if cr, k := v.src.(ColumnRanger); k {
		return cr.ColumnRange(v.cols[col])
	}
	return 0, 0, false
}

// GatherColumn implements ColumnGatherer.
func (v *ProjectView) GatherColumn(dst []Value, col int, rows []int) {
	if g, ok := v.src.(ColumnGatherer); ok {
		g.GatherColumn(dst, v.cols[col], rows)
		return
	}
	dst = dst[:len(rows)]
	c := v.cols[col]
	for k, r := range rows {
		dst[k] = v.src.At(r, c)
	}
}
