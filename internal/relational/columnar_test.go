package relational

import (
	"strings"
	"testing"

	"repro/internal/rng"
)

// randomWideTable builds a table whose column domains force all three
// storage widths (u8, u16, u32) in the columnar engine.
func randomWideTable(t testing.TB, n int, seed uint64) *Table {
	t.Helper()
	r := rng.New(seed)
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "narrow", Kind: KindFeature, Domain: NewDomain("d4", 4)},
		Column{Name: "edge8", Kind: KindFeature, Domain: NewDomain("d256", 256)},
		Column{Name: "mid", Kind: KindFeature, Domain: NewDomain("d300", 300)},
		Column{Name: "edge16", Kind: KindFeature, Domain: NewDomain("d65536", 1<<16)},
		Column{Name: "wide", Kind: KindFeature, Domain: NewDomain("d70000", 70000)},
	)
	tab := NewTable("wide", schema, n)
	for i := 0; i < n; i++ {
		tab.MustAppendRow([]Value{
			Value(r.Intn(2)), Value(r.Intn(4)), Value(r.Intn(256)),
			Value(r.Intn(300)), Value(r.Intn(1 << 16)), Value(r.Intn(70000)),
		})
	}
	return tab
}

// requireSameRelation checks two relations cell-for-cell through At,
// CopyRow, ScanColumn, and GatherColumn.
func requireSameRelation(t *testing.T, want, got Relation) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("row count: want %d got %d", want.NumRows(), got.NumRows())
	}
	w := want.Schema().Width()
	if got.Schema().Width() != w {
		t.Fatalf("width: want %d got %d", w, got.Schema().Width())
	}
	n := want.NumRows()
	rowW := make([]Value, w)
	rowG := make([]Value, w)
	for i := 0; i < n; i++ {
		want.CopyRow(rowW, i)
		got.CopyRow(rowG, i)
		for j := 0; j < w; j++ {
			if rowW[j] != rowG[j] {
				t.Fatalf("CopyRow(%d)[%d]: want %d got %d", i, j, rowW[j], rowG[j])
			}
			if a, b := want.At(i, j), got.At(i, j); a != b {
				t.Fatalf("At(%d,%d): want %d got %d", i, j, a, b)
			}
		}
	}
	ws, wok := want.(ColumnScanner)
	gs, gok := got.(ColumnScanner)
	if !wok || !gok {
		t.Fatalf("both relations must implement ColumnScanner (%T %v, %T %v)", want, wok, got, gok)
	}
	// Scan with deliberately awkward offsets and a short dst to exercise the
	// clamping contract.
	for j := 0; j < w; j++ {
		for _, from := range []int{0, 1, n / 3, n - 1, n, n + 5} {
			if from < 0 { // n == 0 makes n-1 negative; offsets must be in range
				continue
			}
			bufW := make([]Value, 7)
			bufG := make([]Value, 7)
			mw := ws.ScanColumn(j, from, bufW)
			mg := gs.ScanColumn(j, from, bufG)
			if mw != mg {
				t.Fatalf("ScanColumn(%d, %d) length: want %d got %d", j, from, mw, mg)
			}
			for k := 0; k < mw; k++ {
				if bufW[k] != bufG[k] {
					t.Fatalf("ScanColumn(%d, %d)[%d]: want %d got %d", j, from, k, bufW[k], bufG[k])
				}
			}
		}
	}
	wg, wok := want.(ColumnGatherer)
	gg, gok := got.(ColumnGatherer)
	if !wok || !gok {
		t.Fatalf("both relations must implement ColumnGatherer (%T %v, %T %v)", want, wok, got, gok)
	}
	if n > 2 {
		rows := []int{n - 1, 0, n / 2, 0, n - 1}
		bufW := make([]Value, len(rows))
		bufG := make([]Value, len(rows))
		for j := 0; j < w; j++ {
			wg.GatherColumn(bufW, j, rows)
			gg.GatherColumn(bufG, j, rows)
			for k := range rows {
				if bufW[k] != bufG[k] {
					t.Fatalf("GatherColumn(%d)[%d]: want %d got %d", j, k, bufW[k], bufG[k])
				}
			}
		}
	}
}

// TestColumnarTableMatchesTable is the storage-engine equivalence property:
// a ColumnarTable filled with the same rows as a row-major Table is
// bit-identical under every read API, across all three column widths.
func TestColumnarTableMatchesTable(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		tab := randomWideTable(t, 257, seed)
		ct := NewColumnarTable("wide_col", tab.Schema(), 0)
		row := make([]Value, tab.Schema().Width())
		for i := 0; i < tab.NumRows(); i++ {
			tab.CopyRow(row, i)
			if err := ct.AppendRow(row); err != nil {
				t.Fatal(err)
			}
		}
		requireSameRelation(t, tab, ct)
	}
}

func TestColumnarAppendRowsMatchesAppendRow(t *testing.T) {
	tab := randomWideTable(t, 100, 3)
	w := tab.Schema().Width()
	block := make([]Value, 0, tab.NumRows()*w)
	row := make([]Value, w)
	for i := 0; i < tab.NumRows(); i++ {
		block = append(block, tab.CopyRow(row, i)...)
	}
	ct := NewColumnarTable("bulk", tab.Schema(), tab.NumRows())
	if err := ct.AppendRows(block); err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, tab, ct)

	rt := NewTable("bulk_row", tab.Schema(), tab.NumRows())
	if err := rt.AppendRows(block); err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, tab, rt)
}

func TestAppendRowsRejectsBadInput(t *testing.T) {
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "x", Kind: KindFeature, Domain: NewDomain("x", 4)},
	)
	for _, tt := range []struct {
		name  string
		block []Value
		want  string
	}{
		{"ragged", []Value{0, 1, 0}, "multiple of width"},
		{"negative", []Value{0, -1}, "outside domain"},
		{"toobig", []Value{0, 1, 1, 4}, "outside domain"},
	} {
		rt := NewTable("t", schema, 1)
		if err := rt.AppendRows(tt.block); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Fatalf("%s: Table.AppendRows err = %v, want %q", tt.name, err, tt.want)
		}
		if rt.NumRows() != 0 {
			t.Fatalf("%s: failed append must not add rows", tt.name)
		}
		ct := NewColumnarTable("t", schema, 1)
		if err := ct.AppendRows(tt.block); err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Fatalf("%s: ColumnarTable.AppendRows err = %v, want %q", tt.name, err, tt.want)
		}
		if ct.NumRows() != 0 {
			t.Fatalf("%s: failed append must not add rows", tt.name)
		}
	}
}

// TestViewStackScanColumn pins the tentpole contract: ScanColumn through the
// whole view stack — JoinView (FK gather), SelectView (row remap),
// ProjectView (column remap), stacked combinations — agrees with At on the
// same relation, for both physical engines underneath the split views.
func TestViewStackScanColumn(t *testing.T) {
	ss := testStar(t, 300, 17, 29, 11)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	idx := make([]int, 120)
	for i := range idx {
		idx[i] = r.Intn(jv.NumRows())
	}
	sel, err := NewSelectView(jv, idx)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProjectView(sel, []int{3, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	cols := MaterializeColumnar(jv, "cols")
	selCol, err := NewSelectView(cols, idx)
	if err != nil {
		t.Fatal(err)
	}

	for name, rel := range map[string]Relation{
		"join": jv, "select-over-join": sel, "project-over-select": proj,
		"columnar": cols, "select-over-columnar": selCol,
	} {
		cs := rel.(ColumnScanner)
		w := rel.Schema().Width()
		n := rel.NumRows()
		buf := make([]Value, 13)
		for j := 0; j < w; j++ {
			for from := 0; from <= n; from += 13 {
				m := cs.ScanColumn(j, from, buf)
				wantM := n - from
				if wantM > len(buf) {
					wantM = len(buf)
				}
				if m != wantM {
					t.Fatalf("%s: ScanColumn(%d,%d) returned %d want %d", name, j, from, m, wantM)
				}
				for k := 0; k < m; k++ {
					if want := rel.At(from+k, j); buf[k] != want {
						t.Fatalf("%s: ScanColumn(%d,%d)[%d] = %d, At = %d", name, j, from, k, buf[k], want)
					}
				}
			}
		}
	}
}

// TestMaterializeColumnarMatchesMaterialize checks the two Materialize
// variants agree on a lazy join, and that the row-at-a-time fallback path
// (source without ScanColumn) agrees too.
func TestMaterializeColumnarMatchesMaterialize(t *testing.T) {
	ss := testStar(t, 200, 13, 7, 21)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	rowT := Materialize(jv, "rows")
	colT := MaterializeColumnar(jv, "cols")
	requireSameRelation(t, rowT, colT)

	// Strip the scanner interface to force the CopyRow fallback.
	colT2 := MaterializeColumnar(noScan{jv}, "cols2")
	requireSameRelation(t, rowT, colT2)
}

// TestMaterializeColumnarEmpty pins the empty-relation edge on both the
// scanner and the CopyRow-fallback paths.
func TestMaterializeColumnarEmpty(t *testing.T) {
	schema := MustSchema(Column{Name: "x", Kind: KindFeature, Domain: NewDomain("x", 4)})
	empty := NewTable("empty", schema, 0)
	if got := MaterializeColumnar(empty, "e1").NumRows(); got != 0 {
		t.Fatalf("scanner path: %d rows, want 0", got)
	}
	if got := MaterializeColumnar(noScan{empty}, "e2").NumRows(); got != 0 {
		t.Fatalf("fallback path: %d rows, want 0", got)
	}
}

// noScan hides every optional batch interface of the wrapped relation.
type noScan struct{ r Relation }

func (n noScan) Schema() *Schema                    { return n.r.Schema() }
func (n noScan) NumRows() int                       { return n.r.NumRows() }
func (n noScan) At(i, j int) Value                  { return n.r.At(i, j) }
func (n noScan) CopyRow(dst []Value, i int) []Value { return n.r.CopyRow(dst, i) }

// TestSelectViewScanFallback checks the At fallback inside the view
// forwarding (source implements neither ColumnScanner nor ColumnGatherer).
func TestSelectViewScanFallback(t *testing.T) {
	ss := testStar(t, 150, 11, 5, 31)
	jv, err := NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{5, 0, 149, 7, 7, 31}
	fast, err := NewSelectView(jv, idx)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewSelectView(noScan{jv}, idx)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, fast, slow)

	pFast, err := NewProjectView(jv, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	pSlow, err := NewProjectView(noScan{jv}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, pFast, pSlow)
}

// FuzzColumnarEquivalence feeds arbitrary row bytes into both storage
// engines and requires every accepted row set to read back identically.
func FuzzColumnarEquivalence(f *testing.F) {
	schema := MustSchema(
		Column{Name: "Y", Kind: KindTarget, Domain: NewDomain("Y", 2)},
		Column{Name: "a", Kind: KindFeature, Domain: NewDomain("a", 300)},
		Column{Name: "b", Kind: KindFeature, Domain: NewDomain("b", 5)},
	)
	f.Add([]byte{0, 1, 2, 1, 0, 4})
	f.Add([]byte{1, 255, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		w := schema.Width()
		n := len(raw) / w
		rt := NewTable("rt", schema, n)
		ct := NewColumnarTable("ct", schema, n)
		row := make([]Value, w)
		for i := 0; i < n; i++ {
			for j := 0; j < w; j++ {
				row[j] = Value(raw[i*w+j])
			}
			errR := rt.AppendRow(row)
			errC := ct.AppendRow(row)
			if (errR == nil) != (errC == nil) {
				t.Fatalf("engines disagree on row %v: row-major err %v, columnar err %v", row, errR, errC)
			}
		}
		if rt.NumRows() != ct.NumRows() {
			t.Fatalf("row counts diverged: %d vs %d", rt.NumRows(), ct.NumRows())
		}
		for i := 0; i < rt.NumRows(); i++ {
			for j := 0; j < w; j++ {
				if rt.At(i, j) != ct.At(i, j) {
					t.Fatalf("At(%d,%d) diverged", i, j)
				}
			}
		}
		bufR := make([]Value, 3)
		bufC := make([]Value, 3)
		for j := 0; j < w; j++ {
			for from := 0; from <= rt.NumRows(); from += 2 {
				mR := rt.ScanColumn(j, from, bufR)
				mC := ct.ScanColumn(j, from, bufC)
				if mR != mC {
					t.Fatalf("scan lengths diverged at (%d,%d): %d vs %d", j, from, mR, mC)
				}
				for k := 0; k < mR; k++ {
					if bufR[k] != bufC[k] {
						t.Fatalf("scan values diverged at (%d,%d)[%d]", j, from, k)
					}
				}
			}
		}
	})
}
