// Package report exports experiment results as CSV and JSON so the rendered
// text tables can be re-plotted outside Go (the paper's figures are line
// plots; the cmd/ binaries print series, and this package gives them a
// machine-readable form).
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/ml"
)

// WriteAccuracyCSV exports Tables 2/3/5/6-style cells as CSV with columns
// dataset, model, view, test_acc, train_acc.
func WriteAccuracyCSV(w io.Writer, cells []experiments.AccuracyCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "model", "view", "test_acc", "train_acc"}); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	for _, c := range cells {
		rec := []string{
			c.Dataset, c.Model, c.View.String(),
			strconv.FormatFloat(c.TestAcc, 'f', 6, 64),
			strconv.FormatFloat(c.TrainAcc, 'f', 6, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePanelCSV exports a simulation figure panel as CSV with one row per
// swept value: param, then per-view avg test error, bias, and net variance.
func WritePanelCSV(w io.Writer, p experiments.Panel) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "panel", "learner", "param"}
	for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
		header = append(header,
			v.String()+"_err", v.String()+"_bias", v.String()+"_netvar")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	for _, pt := range p.Points {
		rec := []string{p.Figure, p.Label, p.Learner, strconv.FormatFloat(pt.Param, 'g', -1, 64)}
		for _, v := range []ml.View{ml.JoinAll, ml.NoJoin, ml.NoFK} {
			d := pt.Views[v]
			rec = append(rec,
				strconv.FormatFloat(d.AvgTestError, 'f', 6, 64),
				strconv.FormatFloat(d.AvgBias, 'f', 6, 64),
				strconv.FormatFloat(d.NetVariance, 'f', 6, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bundle collects every artifact of a full reproduction run for JSON export.
type Bundle struct {
	// Cells holds accuracy results (Tables 2/3/5/6).
	Cells []experiments.AccuracyCell `json:"cells,omitempty"`
	// Panels holds simulation series (Figures 2-9).
	Panels []experiments.Panel `json:"panels,omitempty"`
	// Compression holds Figure 10 panels.
	Compression []experiments.CompressionPanel `json:"compression,omitempty"`
	// Smoothing holds Figure 11 panels.
	Smoothing []experiments.SmoothingPanel `json:"smoothing,omitempty"`
}

// WriteJSON exports a bundle as indented JSON.
func WriteJSON(w io.Writer, b Bundle) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// ReadJSON parses a bundle previously written by WriteJSON.
func ReadJSON(r io.Reader) (Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return Bundle{}, fmt.Errorf("report: %w", err)
	}
	return b, nil
}
