package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/sim"
)

func sampleCells() []experiments.AccuracyCell {
	return []experiments.AccuracyCell{
		{Dataset: "Yelp", Model: "DecisionTree(gini)", View: ml.JoinAll, TestAcc: 0.88, TrainAcc: 0.94},
		{Dataset: "Yelp", Model: "DecisionTree(gini)", View: ml.NoJoin, TestAcc: 0.88, TrainAcc: 0.94},
	}
}

func samplePanel() experiments.Panel {
	var views [3]sim.ViewResult
	views[ml.JoinAll].AvgTestError = 0.1
	views[ml.NoJoin].AvgTestError = 0.11
	views[ml.NoFK].AvgTestError = 0.09
	views[ml.NoJoin].NetVariance = 0.02
	return experiments.Panel{
		Figure: "2", Label: "B", XName: "nR", Learner: "DecisionTree(gini)",
		Points: []sim.SweepPoint{
			{Param: 40, RunResult: sim.RunResult{Views: views}},
		},
	}
}

func TestWriteAccuracyCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAccuracyCSV(&buf, sampleCells()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if lines[0] != "dataset,model,view,test_acc,train_acc" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Yelp,DecisionTree(gini),JoinAll,0.880000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWritePanelCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePanelCSV(&buf, samplePanel()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "JoinAll_err") || !strings.Contains(out, "NoJoin_netvar") {
		t.Fatalf("header missing columns:\n%s", out)
	}
	if !strings.Contains(out, "2,B,DecisionTree(gini),40") {
		t.Fatalf("row missing:\n%s", out)
	}
	if !strings.Contains(out, "0.020000") {
		t.Fatalf("net variance missing:\n%s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := Bundle{
		Cells:  sampleCells(),
		Panels: []experiments.Panel{samplePanel()},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 2 || back.Cells[0].Dataset != "Yelp" {
		t.Fatalf("cells round trip wrong: %+v", back.Cells)
	}
	if len(back.Panels) != 1 || back.Panels[0].Points[0].Param != 40 {
		t.Fatalf("panels round trip wrong: %+v", back.Panels)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected parse error")
	}
}
