package nb

import (
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

func TestFitRejectsEmpty(t *testing.T) {
	if err := New(Config{}).Fit(&ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected error")
	}
}

func TestLearnsConditionalSignal(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 3)}
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		x0 := relational.Value(r.Intn(2))
		y := int8(x0)
		if r.Bernoulli(0.1) {
			y = 1 - y
		}
		ds.X = append(ds.X, x0, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, y)
	}
	m := New(Config{})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc < 0.85 {
		t.Fatalf("accuracy %v, want >= 0.85", acc)
	}
}

func TestLaplaceSmoothingHandlesUnseenValue(t *testing.T) {
	// Value 2 of feature 0 never appears in training; prediction must not
	// blow up (no -Inf) and should follow the prior.
	ds := &ml.Dataset{
		Features: feats(3),
		X:        []relational.Value{0, 0, 1, 1, 1},
		Y:        []int8{0, 0, 1, 1, 1},
	}
	m := New(Config{Alpha: 1})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]relational.Value{2})
	if got != 1 {
		t.Fatalf("unseen value should fall back to prior-dominant class 1, got %d", got)
	}
}

func TestPosteriorMatchesHandComputation(t *testing.T) {
	// 4 examples, 1 binary feature; verify the smoothed posterior decision
	// boundary against hand-computed values.
	ds := &ml.Dataset{
		Features: feats(2),
		X:        []relational.Value{0, 0, 1, 1},
		Y:        []int8{0, 0, 1, 1},
	}
	m := New(Config{Alpha: 1})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// P(Y=0)=P(Y=1)=0.5; P(x=0|Y=0) = (2+1)/(2+2) = 0.75;
	// P(x=0|Y=1) = (0+1)/(2+2) = 0.25. So x=0 → class 0, x=1 → class 1.
	if m.Predict([]relational.Value{0}) != 0 || m.Predict([]relational.Value{1}) != 1 {
		t.Fatal("hand-computed posterior decision violated")
	}
}

func TestSetActiveSuppressesFeature(t *testing.T) {
	// Feature 0 predicts perfectly; feature 1 carries a weaker opposite
	// association on the input we probe. Deactivating the dominant feature
	// must flip the prediction for {0, 0}.
	ds := &ml.Dataset{
		Features: feats(2, 2),
		X: []relational.Value{
			0, 1,
			0, 1,
			0, 1,
			0, 0,
			1, 0,
			1, 0,
			1, 0,
			1, 1,
		},
		Y: []int8{0, 0, 0, 0, 1, 1, 1, 1},
	}
	m := New(Config{})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	before := m.Predict([]relational.Value{0, 0})
	m.SetActive(0, false)
	after := m.Predict([]relational.Value{0, 0})
	if before == after {
		t.Fatal("deactivating the dominant feature should flip the prediction")
	}
	if got := m.ActiveFeatures(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ActiveFeatures = %v", got)
	}
}

func TestBackwardSelectDropsNoise(t *testing.T) {
	// Build train/validation where feature 0 is pure signal and features
	// 1..4 are noise that hurts validation slightly; BFS should keep
	// accuracy at least at the all-features level and typically drop noise.
	r := rng.New(5)
	gen := func(n int, rr *rng.RNG) *ml.Dataset {
		ds := &ml.Dataset{Features: feats(2, 8, 8, 8, 8)}
		for i := 0; i < n; i++ {
			x0 := relational.Value(rr.Intn(2))
			y := int8(x0)
			if rr.Bernoulli(0.05) {
				y = 1 - y
			}
			ds.X = append(ds.X, x0,
				relational.Value(rr.Intn(8)), relational.Value(rr.Intn(8)),
				relational.Value(rr.Intn(8)), relational.Value(rr.Intn(8)))
			ds.Y = append(ds.Y, y)
		}
		return ds
	}
	train := gen(400, r)
	val := gen(200, r)
	m, valAcc, err := BackwardSelect(Config{}, train, val)
	if err != nil {
		t.Fatal(err)
	}
	full := New(Config{})
	if err := full.Fit(train); err != nil {
		t.Fatal(err)
	}
	if fullAcc := ml.Accuracy(full, val); valAcc < fullAcc {
		t.Fatalf("BFS validation accuracy %v must be >= full-model %v", valAcc, fullAcc)
	}
	// Signal feature must survive.
	kept := m.ActiveFeatures()
	has0 := false
	for _, j := range kept {
		if j == 0 {
			has0 = true
		}
	}
	if !has0 {
		t.Fatalf("BFS dropped the signal feature; kept %v", kept)
	}
}

func TestBackwardSelectNeverDropsLastFeature(t *testing.T) {
	ds := &ml.Dataset{
		Features: feats(2),
		X:        []relational.Value{0, 1, 0, 1},
		Y:        []int8{1, 0, 0, 1}, // pure noise
	}
	m, _, err := BackwardSelect(Config{}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ActiveFeatures()) != 1 {
		t.Fatalf("must keep >= 1 feature, kept %d", len(m.ActiveFeatures()))
	}
}

func TestBackwardSelectEmptyValidation(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2), X: []relational.Value{0}, Y: []int8{1}}
	if _, _, err := BackwardSelect(Config{}, ds, &ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected empty-validation error")
	}
}

func TestAlphaDefaultAndName(t *testing.T) {
	m := New(Config{Alpha: -3})
	if m.cfg.Alpha != 1 {
		t.Fatalf("alpha default not applied: %v", m.cfg.Alpha)
	}
	if m.Name() != "NaiveBayes" {
		t.Fatal("name wrong")
	}
	if math.IsNaN(ln(1)) || ln(1) != 0 {
		t.Fatal("ln broken")
	}
}

func TestForwardSelectFindsSignal(t *testing.T) {
	r := rng.New(71)
	gen := func(n int, rr *rng.RNG) *ml.Dataset {
		ds := &ml.Dataset{Features: feats(2, 8, 8)}
		for i := 0; i < n; i++ {
			x0 := relational.Value(rr.Intn(2))
			y := int8(x0)
			if rr.Bernoulli(0.05) {
				y = 1 - y
			}
			ds.X = append(ds.X, x0, relational.Value(rr.Intn(8)), relational.Value(rr.Intn(8)))
			ds.Y = append(ds.Y, y)
		}
		return ds
	}
	train := gen(400, r)
	val := gen(200, r)
	m, valAcc, err := ForwardSelect(Config{}, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if valAcc < 0.85 {
		t.Fatalf("forward selection validation accuracy %v too low", valAcc)
	}
	kept := m.ActiveFeatures()
	has0 := false
	for _, j := range kept {
		if j == 0 {
			has0 = true
		}
	}
	if !has0 {
		t.Fatalf("forward selection missed the signal feature; kept %v", kept)
	}
}

func TestForwardSelectNeverReturnsEmptyModel(t *testing.T) {
	// Pure-noise data: no addition improves on the prior, so the fallback
	// must still leave one feature active.
	ds := &ml.Dataset{
		Features: feats(2),
		X:        []relational.Value{0, 1, 0, 1},
		Y:        []int8{1, 0, 0, 1},
	}
	m, _, err := ForwardSelect(Config{}, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ActiveFeatures()) != 1 {
		t.Fatalf("want exactly 1 active feature, got %v", m.ActiveFeatures())
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfectly predictive binary feature: MI = H(Y) = 1 bit.
	ds := &ml.Dataset{
		Features: feats(2),
		X:        []relational.Value{0, 0, 1, 1, 0, 0, 1, 1},
		Y:        []int8{0, 0, 1, 1, 0, 0, 1, 1},
	}
	if mi := MutualInformation(ds, 0); math.Abs(mi-1) > 1e-12 {
		t.Fatalf("perfect predictor MI = %v, want 1", mi)
	}
	// Independent feature: MI ≈ 0.
	ds2 := &ml.Dataset{
		Features: feats(2),
		X:        []relational.Value{0, 0, 1, 0, 0, 1, 1, 1},
		Y:        []int8{0, 1, 0, 1, 0, 1, 0, 1},
	}
	if mi := MutualInformation(ds2, 0); mi > 1e-9 {
		t.Fatalf("independent feature MI = %v, want 0", mi)
	}
	if MutualInformation(&ml.Dataset{Features: feats(2)}, 0) != 0 {
		t.Fatal("empty dataset MI must be 0")
	}
}

func TestFilterSelectKeepsTopK(t *testing.T) {
	r := rng.New(73)
	ds := &ml.Dataset{Features: feats(2, 8, 8, 8)}
	for i := 0; i < 600; i++ {
		x0 := relational.Value(r.Intn(2))
		y := int8(x0)
		if r.Bernoulli(0.05) {
			y = 1 - y
		}
		ds.X = append(ds.X, x0, relational.Value(r.Intn(8)), relational.Value(r.Intn(8)), relational.Value(r.Intn(8)))
		ds.Y = append(ds.Y, y)
	}
	m, valAcc, err := FilterSelect(Config{}, ds, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	kept := m.ActiveFeatures()
	if len(kept) != 1 || kept[0] != 0 {
		t.Fatalf("filter must keep exactly the signal feature, kept %v", kept)
	}
	if valAcc < 0.9 {
		t.Fatalf("filter accuracy %v too low", valAcc)
	}
	// k clamping.
	m2, _, err := FilterSelect(Config{}, ds, ds, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.ActiveFeatures()) != 4 {
		t.Fatalf("k beyond d must clamp to d, kept %v", m2.ActiveFeatures())
	}
	if _, _, err := FilterSelect(Config{}, ds, &ml.Dataset{Features: feats(2)}, 1); err == nil {
		t.Fatal("empty validation must error")
	}
}

// TestBatchFitMatchesRowAtATime pins the batch counting path to the
// historical example-at-a-time loop: identical models (priors, conditional
// tables) and identical predictions, on dense and on subset-view datasets.
func TestBatchFitMatchesRowAtATime(t *testing.T) {
	r := rng.New(17)
	ds := &ml.Dataset{Features: feats(4, 7, 2, 300)}
	n := 3000
	for i := 0; i < n; i++ {
		x := []relational.Value{
			relational.Value(r.Intn(4)), relational.Value(r.Intn(7)),
			relational.Value(r.Intn(2)), relational.Value(r.Intn(300)),
		}
		ds.X = append(ds.X, x...)
		y := int8(0)
		if int(x[0])+int(x[3])%3 > 2 {
			y = 1
		}
		ds.Y = append(ds.Y, y)
	}
	sub := make([]int, 0, n/2)
	for i := 0; i < n; i += 2 {
		sub = append(sub, i)
	}
	for name, train := range map[string]*ml.Dataset{
		"dense":         ds,
		"subset-view":   ds.Subset(sub),
		"feature-remap": ds.SelectFeatures([]int{3, 0, 1}),
	} {
		batch := New(Config{})
		if err := batch.Fit(train); err != nil {
			t.Fatalf("%s: batch fit: %v", name, err)
		}
		rows := New(Config{RowAtATime: true})
		if err := rows.Fit(train); err != nil {
			t.Fatalf("%s: row fit: %v", name, err)
		}
		if batch.logPrior != rows.logPrior {
			t.Fatalf("%s: priors diverged: %v vs %v", name, batch.logPrior, rows.logPrior)
		}
		if len(batch.logLik) != len(rows.logLik) {
			t.Fatalf("%s: logLik sizes diverged", name)
		}
		for k := range batch.logLik {
			if batch.logLik[k] != rows.logLik[k] {
				t.Fatalf("%s: logLik[%d] diverged: %v vs %v", name, k, batch.logLik[k], rows.logLik[k])
			}
		}
		buf := make([]relational.Value, train.NumFeatures())
		for i := 0; i < train.NumExamples(); i++ {
			row := train.RowInto(buf, i)
			if batch.Predict(row) != rows.Predict(row) {
				t.Fatalf("%s: prediction %d diverged", name, i)
			}
		}
	}
}
