package nb

import "repro/internal/obs"

var (
	// countSpan times the conditional-count pass — naive Bayes' whole
	// training cost on either access path.
	countSpan = obs.TrainSpan("nb_count", "naive Bayes conditional-count pass")
	// reduceSpan times the merge of per-(feature, span) count slabs into the
	// final table — the reduce step of the columnar fan-out.
	reduceSpan = obs.TrainSpan("reduce", "merge of per-task partial aggregates")
)
