package nb

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// BackwardSelect fits Naive Bayes on train and greedily deactivates
// features: at each round it tentatively drops each remaining feature,
// keeps the drop that most improves validation accuracy, and stops when no
// single drop improves it. The fitted model with its final active set is
// returned along with the validation accuracy achieved.
//
// The conditional tables are fitted once; dropping a feature under Naive
// Bayes just omits its likelihood term, so the wrapper's cost is entirely
// validation scans — O(rounds × features × |validation|), the cost profile
// that makes the Figure 1 NB runtimes so sensitive to avoiding joins.
func BackwardSelect(cfg Config, train, validation *ml.Dataset) (*NaiveBayes, float64, error) {
	if validation.NumExamples() == 0 {
		return nil, 0, fmt.Errorf("nb: empty validation set")
	}
	model := New(cfg)
	if err := model.Fit(train); err != nil {
		return nil, 0, err
	}
	best := ml.Accuracy(model, validation)
	for {
		bestDrop := -1
		bestAcc := best
		for _, j := range model.ActiveFeatures() {
			if len(model.ActiveFeatures()) == 1 {
				break // never drop the last feature
			}
			model.SetActive(j, false)
			acc := ml.Accuracy(model, validation)
			model.SetActive(j, true)
			if acc > bestAcc+1e-12 {
				bestAcc = acc
				bestDrop = j
			}
		}
		if bestDrop < 0 {
			return model, best, nil
		}
		model.SetActive(bestDrop, false)
		best = bestAcc
	}
}

// ln is a tiny indirection so nb.go needn't import math directly in call
// sites (kept for readability of the likelihood code).
func ln(x float64) float64 { return math.Log(x) }
