package nb

import (
	"fmt"

	"repro/internal/ml"
)

// Params is the complete serializable state of a fitted NaiveBayes model:
// everything Predict needs besides the feature list (which the model artifact
// stores alongside, since the encoder offsets derive from it).
type Params struct {
	// Alpha is the Laplace pseudo-count the model was fitted with.
	Alpha float64
	// LogPrior[c] is log P(Y=c).
	LogPrior [2]float64
	// LogLik is the flat conditional table, laid out as in NaiveBayes.
	LogLik []float64
	// Active mirrors the backward-selection feature mask.
	Active []bool
}

// ExportParams snapshots the fitted model's state. Slices are copies; the
// model is not aliased.
func (nb *NaiveBayes) ExportParams() (Params, error) {
	if nb.enc == nil {
		return Params{}, fmt.Errorf("nb: export before Fit")
	}
	return Params{
		Alpha:    nb.cfg.Alpha,
		LogPrior: nb.logPrior,
		LogLik:   append([]float64(nil), nb.logLik...),
		Active:   append([]bool(nil), nb.active...),
	}, nil
}

// FromParams reconstructs a fitted model from exported state. The feature
// list must be the one the model was trained with: the conditional-table
// length is validated against the implied encoder dimensions.
func FromParams(features []ml.Feature, p Params) (*NaiveBayes, error) {
	enc := ml.NewEncoder(features)
	if len(p.LogLik) != enc.Dims*2 {
		return nil, fmt.Errorf("nb: conditional table has %d entries, features imply %d", len(p.LogLik), enc.Dims*2)
	}
	if len(p.Active) != len(features) {
		return nil, fmt.Errorf("nb: active mask has %d entries for %d features", len(p.Active), len(features))
	}
	return &NaiveBayes{
		cfg:      Config{Alpha: p.Alpha},
		logPrior: p.LogPrior,
		logLik:   append([]float64(nil), p.LogLik...),
		enc:      enc,
		active:   append([]bool(nil), p.Active...),
	}, nil
}

// ExportLinear implements ml.LinearExporter: Naive Bayes' decision is the
// log-posterior difference, linear in the one-hot features with weight
// log P(x_j=v|Y=1) − log P(x_j=v|Y=0) per (feature, value) pair and the
// prior log-odds as bias. Inactive (backward-selected-away) features export
// zero weights, matching Predict's skip.
func (nb *NaiveBayes) ExportLinear(features []ml.Feature) (float64, []float64, bool) {
	if nb.enc == nil || len(features) != len(nb.active) || ml.NewEncoder(features).Dims != nb.enc.Dims {
		return 0, nil, false
	}
	w := make([]float64, nb.enc.Dims)
	for j, f := range features {
		if !nb.active[j] {
			continue
		}
		for v := 0; v < f.Cardinality; v++ {
			k := nb.enc.Offsets[j] + v
			w[k] = nb.logLik[k*2+1] - nb.logLik[k*2]
		}
	}
	return nb.logPrior[1] - nb.logPrior[0], w, true
}
