// Package nb implements categorical Naive Bayes with Laplace smoothing and
// the greedy backward feature-selection wrapper the paper pairs it with
// ("Naive Bayes with BFS", §3). Backward selection starts from the full
// feature set and repeatedly drops the feature whose removal most improves
// validation accuracy, stopping when no removal helps — this wrapper is what
// makes NoJoin's runtime win dramatic for NB (Figure 1): the search is
// quadratic in the number of features, so dropping d_R foreign features a
// priori shrinks it substantially.
package nb

import (
	"fmt"
	"time"

	"repro/internal/ml"
	"repro/internal/relational"
)

// Config configures the Naive Bayes classifier.
type Config struct {
	// Alpha is the Laplace smoothing pseudo-count (default 1, the standard
	// "add one" smoothing cited by the paper for handling sparse counts).
	Alpha float64
	// RowAtATime forces the historical example-at-a-time counting loop
	// instead of the batched column-at-a-time path. The two are bit-identical
	// (counting is order-independent integer arithmetic); the flag exists for
	// A/B benchmarks and equivalence tests.
	RowAtATime bool
}

// fitMorsel is the chunk size of one ScanFeature step on the batch path:
// large enough to amortize the per-morsel interface call, small enough that
// the value buffer (8 KiB) and the feature's count range stay cache-resident.
const fitMorsel = 2048

// NaiveBayes is a categorical Naive Bayes classifier over a (possibly
// selected) subset of features.
type NaiveBayes struct {
	cfg Config
	// logPrior[c] is log P(Y=c).
	logPrior [2]float64
	// logLik[j][v][c] is log P(X_j = v | Y = c), indexed via enc offsets:
	// stored flat as logLik[enc.Index(j,v)*2 + c].
	logLik []float64
	enc    *ml.Encoder
	// active[j] reports whether feature j participates in prediction;
	// backward selection clears entries rather than re-materializing data.
	active []bool
}

// New returns an unfitted classifier.
func New(cfg Config) *NaiveBayes {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	return &NaiveBayes{cfg: cfg}
}

// Name implements ml.Named.
func (nb *NaiveBayes) Name() string { return "NaiveBayes" }

// Fit estimates priors and per-feature conditional tables.
//
// Counting runs column-at-a-time by default: the labels are scanned once
// into a dense vector, then every feature's conditional table is filled by
// morsel-sized ScanFeature batches, with features fanned out across
// goroutines (each feature owns a disjoint slice of the count array, so the
// reduction is race-free and deterministic — the counts are order-
// independent integer sums). On a columnar storage engine each batch is a
// sequential scan of one narrow column; on the row-major engine it is a
// strided gather. Config.RowAtATime restores the historical per-example
// loop; both paths produce bit-identical models.
func (nb *NaiveBayes) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("nb: empty training set")
	}
	n := train.NumExamples()
	d := train.NumFeatures()
	nb.enc = ml.NewEncoder(train.Features)
	nb.active = make([]bool, d)
	for j := range nb.active {
		nb.active[j] = true
	}

	var classN [2]float64
	counts := make([]float64, nb.enc.Dims*2)
	countT0 := time.Now()
	if nb.cfg.RowAtATime {
		for i := 0; i < n; i++ {
			classN[train.Label(i)]++
		}
		for i := 0; i < n; i++ {
			row := train.Row(i)
			c := int(train.Label(i))
			for j, v := range row {
				counts[nb.enc.Index(j, v)*2+c]++
			}
		}
	} else {
		labels := make([]int8, n)
		train.ScanLabels(labels, 0)
		for _, y := range labels {
			classN[y]++
		}
		// Fan (feature, span) tasks across the pool: every feature's scan
		// range is sharded into spans (ml.ScanSpans — whole morsels, snapped
		// to segment boundaries over a segmented engine so each task pins one
		// segment), each task tallies its span into a private slab, and the
		// slabs merge in (feature, span) order. Counts are integer-valued
		// sums, so the merged table is bit-identical to the historical
		// per-feature loop while narrow feature sets (NoJoin's handful of
		// columns) still saturate the pool.
		cuts := ml.ScanSpans(train)
		spans := len(cuts) - 1
		slabs := make([][]float64, d*spans)
		ml.ParallelFor(d*spans, func(task int) {
			j, s := task/spans, task%spans
			lo, hi := cuts[s], cuts[s+1]
			if lo == hi {
				return
			}
			slab := make([]float64, train.Features[j].Cardinality*2)
			buf := make([]relational.Value, min(fitMorsel, hi-lo))
			for from := lo; from < hi; {
				m := train.ScanFeature(buf[:min(len(buf), hi-from)], j, from)
				for k := 0; k < m; k++ {
					slab[int(buf[k])*2+int(labels[from+k])]++
				}
				from += m
			}
			slabs[task] = slab
		})
		reduceT0 := time.Now()
		for j := 0; j < d; j++ {
			base := nb.enc.Offsets[j] * 2
			for s := 0; s < spans; s++ {
				slab := slabs[j*spans+s]
				for i, c := range slab {
					counts[base+i] += c
				}
			}
		}
		reduceSpan.ObserveSince(reduceT0)
	}
	countSpan.ObserveSince(countT0)
	for c := 0; c < 2; c++ {
		nb.logPrior[c] = logf((classN[c] + nb.cfg.Alpha) / (float64(n) + 2*nb.cfg.Alpha))
	}
	nb.logLik = make([]float64, nb.enc.Dims*2)
	for j := 0; j < d; j++ {
		card := float64(train.Features[j].Cardinality)
		for v := 0; v < train.Features[j].Cardinality; v++ {
			k := nb.enc.Index(j, relational.Value(v))
			for c := 0; c < 2; c++ {
				nb.logLik[k*2+c] = logf((counts[k*2+c] + nb.cfg.Alpha) / (classN[c] + nb.cfg.Alpha*card))
			}
		}
	}
	return nil
}

// SetActive enables or disables a feature for prediction (used by backward
// selection). It panics if called before Fit or with j out of range.
func (nb *NaiveBayes) SetActive(j int, on bool) { nb.active[j] = on }

// ActiveFeatures returns the indices of currently active features.
func (nb *NaiveBayes) ActiveFeatures() []int {
	var out []int
	for j, on := range nb.active {
		if on {
			out = append(out, j)
		}
	}
	return out
}

// Predict classifies one example using only active features.
func (nb *NaiveBayes) Predict(row []relational.Value) int8 {
	s0, s1 := nb.logPrior[0], nb.logPrior[1]
	for j, v := range row {
		if !nb.active[j] {
			continue
		}
		k := nb.enc.Index(j, v)
		s0 += nb.logLik[k*2]
		s1 += nb.logLik[k*2+1]
	}
	if s1 >= s0 {
		return 1
	}
	return 0
}

func logf(x float64) float64 {
	// All inputs are strictly positive by Laplace smoothing; this wrapper
	// exists only to keep the call sites compact.
	return ln(x)
}
