package nb

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// ForwardSelect fits Naive Bayes and greedily *activates* features: starting
// from the empty set, each round adds the feature whose inclusion most
// improves validation accuracy, stopping when no addition helps. The paper
// also evaluated Naive Bayes with forward selection (§3, "did not provide
// any new insights" — we include it for completeness and for the runtime
// contrast with backward selection: forward selection touches fewer features
// per round when few features matter).
func ForwardSelect(cfg Config, train, validation *ml.Dataset) (*NaiveBayes, float64, error) {
	if validation.NumExamples() == 0 {
		return nil, 0, fmt.Errorf("nb: empty validation set")
	}
	model := New(cfg)
	if err := model.Fit(train); err != nil {
		return nil, 0, err
	}
	d := train.NumFeatures()
	for j := 0; j < d; j++ {
		model.SetActive(j, false)
	}
	// With no active features the model is the prior; score it.
	best := ml.Accuracy(model, validation)
	active := 0
	for active < d {
		bestAdd := -1
		bestAcc := best
		for j := 0; j < d; j++ {
			if model.active[j] {
				continue
			}
			model.SetActive(j, true)
			acc := ml.Accuracy(model, validation)
			model.SetActive(j, false)
			if acc > bestAcc+1e-12 {
				bestAcc = acc
				bestAdd = j
			}
		}
		if bestAdd < 0 {
			break
		}
		model.SetActive(bestAdd, true)
		best = bestAcc
		active++
	}
	// Never return a feature-less model: fall back to the single best
	// feature if nothing improved on the prior.
	if active == 0 {
		bestJ, bestAcc := 0, -1.0
		for j := 0; j < d; j++ {
			model.SetActive(j, true)
			if acc := ml.Accuracy(model, validation); acc > bestAcc {
				bestAcc = acc
				bestJ = j
			}
			model.SetActive(j, false)
		}
		model.SetActive(bestJ, true)
		best = bestAcc
	}
	return model, best, nil
}

// MutualInformation estimates I(X_j; Y) in bits from a dataset — the filter
// score used by FilterSelect.
func MutualInformation(ds *ml.Dataset, j int) float64 {
	n := ds.NumExamples()
	if n == 0 {
		return 0
	}
	card := ds.Features[j].Cardinality
	joint := make([][2]float64, card)
	var py [2]float64
	for i := 0; i < n; i++ {
		v := ds.At(i, j)
		y := ds.Label(i)
		joint[v][y]++
		py[y]++
	}
	mi := 0.0
	fn := float64(n)
	for v := 0; v < card; v++ {
		pv := (joint[v][0] + joint[v][1]) / fn
		if pv == 0 {
			continue
		}
		for y := 0; y < 2; y++ {
			pvy := joint[v][y] / fn
			if pvy == 0 {
				continue
			}
			mi += pvy * math.Log2(pvy/(pv*py[y]/fn))
		}
	}
	if mi < 0 {
		mi = 0 // guard tiny negative float residue
	}
	return mi
}

// FilterSelect keeps the k features with the highest mutual information
// with the target (computed on the training split only) and fits Naive
// Bayes on them — the filter-method variant the paper also ran. k is
// clamped to [1, d].
func FilterSelect(cfg Config, train, validation *ml.Dataset, k int) (*NaiveBayes, float64, error) {
	if validation.NumExamples() == 0 {
		return nil, 0, fmt.Errorf("nb: empty validation set")
	}
	d := train.NumFeatures()
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	type scored struct {
		j  int
		mi float64
	}
	ss := make([]scored, d)
	for j := 0; j < d; j++ {
		ss[j] = scored{j: j, mi: MutualInformation(train, j)}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].mi != ss[b].mi {
			return ss[a].mi > ss[b].mi
		}
		return ss[a].j < ss[b].j
	})
	model := New(cfg)
	if err := model.Fit(train); err != nil {
		return nil, 0, err
	}
	for j := 0; j < d; j++ {
		model.SetActive(j, false)
	}
	for _, s := range ss[:k] {
		model.SetActive(s.j, true)
	}
	return model, ml.Accuracy(model, validation), nil
}
