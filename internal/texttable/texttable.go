// Package texttable renders small aligned ASCII tables for experiment
// reports. The experiment CLIs print the same rows/series the paper's
// tables and figures report; this package keeps that output readable
// without pulling in any dependency.
package texttable

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with per-column alignment.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given header.
func New(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// Row appends a row; values are formatted with %v. Rows shorter than the
// header are padded with empty cells, longer rows are truncated.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// F formats a float with 4 decimals, the precision the paper's tables use.
func F(x float64) string { return fmt.Sprintf("%.4f", x) }

// F2 formats a float with 2 decimals (tuple ratios, speedups).
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }
