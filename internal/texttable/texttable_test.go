package texttable

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	var buf bytes.Buffer
	tab := New("Dataset", "Acc")
	tab.Row("Expedia", F(0.79452))
	tab.Row("M", 1)
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Dataset") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "0.7945") {
		t.Fatalf("F formatting wrong: %q", lines[2])
	}
	// Separator row matches column widths.
	if !strings.Contains(lines[1], "-------") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	tab := New("a", "b")
	tab.Row("only")              // short row padded
	tab.Row("x", "y", "ignored") // long row truncated
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "ignored") {
		t.Fatal("extra cells must be dropped")
	}
}

func TestFormatters(t *testing.T) {
	if F(0.5) != "0.5000" {
		t.Fatalf("F = %q", F(0.5))
	}
	if F2(39.543) != "39.54" {
		t.Fatalf("F2 = %q", F2(39.543))
	}
}
