package linear

import "repro/internal/obs"

// epochSpan times each proximal-SGD epoch (shuffle + full pass of updates).
var epochSpan = obs.TrainSpan("logreg_epoch", "one logistic-regression SGD epoch")
