package linear

import (
	"fmt"

	"repro/internal/ml"
)

// Params is the serializable state of a fitted logistic regression: the flat
// one-hot weight vector and intercept. Hyper-parameters are provenance only
// (Predict never reads them) but are kept so a decoded model reports how it
// was trained.
type Params struct {
	Lambda float64
	L2     float64
	W      []float64
	B      float64
}

// ExportParams snapshots the fitted model's state (slices are copies).
func (m *LogReg) ExportParams() (Params, error) {
	if m.enc == nil {
		return Params{}, fmt.Errorf("linear: export before Fit")
	}
	return Params{
		Lambda: m.cfg.Lambda,
		L2:     m.cfg.L2,
		W:      append([]float64(nil), m.w...),
		B:      m.b,
	}, nil
}

// FromParams reconstructs a fitted model; the feature list must match the
// training features (the weight length is validated against the implied
// encoder dimensions).
func FromParams(features []ml.Feature, p Params) (*LogReg, error) {
	enc := ml.NewEncoder(features)
	if len(p.W) != enc.Dims {
		return nil, fmt.Errorf("linear: weight vector has %d entries, features imply %d", len(p.W), enc.Dims)
	}
	m := NewLogReg(LogRegConfig{Lambda: p.Lambda, L2: p.L2})
	m.enc = enc
	m.w = append([]float64(nil), p.W...)
	m.b = p.B
	return m, nil
}

// ExportLinear implements ml.LinearExporter: logistic regression is already
// stored in the canonical linear form (log-odds = b + Σ w).
func (m *LogReg) ExportLinear(features []ml.Feature) (float64, []float64, bool) {
	if m.enc == nil || ml.NewEncoder(features).Dims != m.enc.Dims {
		return 0, nil, false
	}
	return m.b, append([]float64(nil), m.w...), true
}
