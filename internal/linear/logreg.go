// Package linear implements the linear classifiers the paper compares
// against (§3): logistic regression with L1 regularization (the glmnet
// configuration) and a primal linear SVM. Both operate on one-hot encoded
// categorical features with one weight per (feature, value) pair, so a
// foreign key with a domain of size n_R contributes n_R weights — precisely
// the capacity blow-up the prior work's VC-dimension analysis worried about.
package linear

import (
	"fmt"
	"math"
	"time"

	"repro/internal/mat"
	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

// LogRegConfig configures L1-regularized logistic regression. The defaults
// mirror the paper's glmnet settings: an automatic lambda path of NLambda
// values, convergence threshold Thresh, and iteration cap MaxIter.
type LogRegConfig struct {
	// Lambda is the L1 penalty (soft-thresholding proximal step).
	Lambda float64
	// L2 is an optional ridge penalty (plain weight decay); the paper also
	// evaluated logistic regression with L2 regularization (§3) and found
	// no new insights — both are provided.
	L2 float64
	// Epochs of SGD over the training set (default 30).
	Epochs int
	// LearningRate is the initial step size (default 0.1, decayed 1/√t).
	LearningRate float64
	// Seed drives example shuffling.
	Seed uint64
	// RowAtATime forces the historical example-at-a-time access path (one
	// RowInto gather per example per epoch) instead of the batched
	// column-at-a-time path, which scans every feature once per Fit into a
	// dense active-index matrix and amortizes that one pass over all epochs.
	// The two paths run the identical update sequence on identical index
	// values, so the models are bit-identical; the flag exists for A/B
	// benchmarks and equivalence tests.
	RowAtATime bool
}

// LogReg is an L1-regularized logistic regression classifier.
type LogReg struct {
	cfg LogRegConfig
	enc *ml.Encoder
	w   []float64
	b   float64
}

// NewLogReg returns an unfitted model.
func NewLogReg(cfg LogRegConfig) *LogReg {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	return &LogReg{cfg: cfg}
}

// Name implements ml.Named.
func (m *LogReg) Name() string { return "LogisticRegression(L1)" }

// Fit trains with proximal stochastic gradient descent: a plain logistic
// gradient step followed by the soft-thresholding proximal operator of the
// L1 penalty.
//
// Feature access runs column-at-a-time by default: every feature is scanned
// once per Fit (ml.ScanActiveIndices, (feature, span) tasks fanned across
// ml.ParallelFor) into a dense active-index matrix, and the epochs index that
// matrix instead of re-paying a row gather per example per epoch — SGD
// re-reads every feature every epoch, exactly the access pattern one column
// pass amortizes. The update sequence is unchanged, so the fitted model is
// bit-identical to the historical path, which Config.RowAtATime restores.
func (m *LogReg) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("linear: empty training set")
	}
	m.enc = ml.NewEncoder(train.Features)
	m.w = make([]float64, m.enc.Dims)
	m.b = 0
	n := train.NumExamples()
	r := rng.New(m.cfg.Seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	// exampleAt yields example i's active one-hot indices and label: slices
	// of the one-pass materialization by default, per-call scratch-row
	// gathers on the row path.
	exampleAt := ml.ExampleAccessor(train, m.enc, m.cfg.RowAtATime)

	step := m.cfg.LearningRate
	t := 1.0
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		epochT0 := time.Now()
		r.ShuffleInts(order)
		for _, i := range order {
			idx, y := exampleAt(i)
			// The epoch score is the one-hot gather-sum kernel (SGD's
			// sequential updates rule out batching whole epochs through
			// SpGemmOneHot bit-identically — each example's score reads the
			// weights as left by the previous example's update — so the
			// per-example score runs through mat's scalar form instead).
			z := mat.GatherSum(m.b, m.w, idx)
			p := sigmoid(z)
			g := p - y // d(loss)/dz
			eta := step / math.Sqrt(t)
			t++
			m.b -= eta * g
			shrink := eta * m.cfg.Lambda
			decay := 1 - eta*m.cfg.L2
			if decay < 0 {
				decay = 0
			}
			for _, k := range idx {
				wk := (m.w[k] - eta*g) * decay
				// Soft threshold (proximal L1).
				switch {
				case wk > shrink:
					wk -= shrink
				case wk < -shrink:
					wk += shrink
				default:
					wk = 0
				}
				m.w[k] = wk
			}
		}
		epochSpan.ObserveSince(epochT0)
	}
	return nil
}

// Decision returns the log-odds for a row.
func (m *LogReg) Decision(row []relational.Value) float64 {
	z := m.b
	for j, v := range row {
		z += m.w[m.enc.Index(j, v)]
	}
	return z
}

// Predict classifies one example.
func (m *LogReg) Predict(row []relational.Value) int8 {
	if m.Decision(row) >= 0 {
		return 1
	}
	return 0
}

// PredictBatch implements ml.BatchPredictor: the dataset is scored in one
// SpGemmOneHot pass (h = 1) over its active-index matrix — one batched
// column scan per feature instead of a row gather per example, then a tight
// gather-sum per row. Each decision value folds bias-first in feature order,
// exactly as Decision does, so the classes match Predict bit for bit.
func (m *LogReg) PredictBatch(ds *ml.Dataset) []int8 {
	n := ds.NumExamples()
	out := make([]int8, n)
	if n == 0 {
		return out
	}
	d := ds.NumFeatures()
	idx, _ := ml.ScanActiveIndices(ds, m.enc)
	z := make([]float64, n)
	mat.SpGemmOneHot(z, 1, idx, d, m.w, 1, n, d, 1, []float64{m.b})
	for i, zi := range z {
		if zi >= 0 {
			out[i] = 1
		}
	}
	return out
}

// NonZeroWeights counts weights the L1 penalty left active.
func (m *LogReg) NonZeroWeights() int {
	nz := 0
	for _, w := range m.w {
		if w != 0 {
			nz++
		}
	}
	return nz
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}
