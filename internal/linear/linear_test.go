package linear

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

func TestLogRegRejectsEmpty(t *testing.T) {
	if err := NewLogReg(LogRegConfig{}).Fit(&ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected error")
	}
}

func TestLogRegSeparable(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 3)}
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		x0 := relational.Value(i % 2)
		ds.X = append(ds.X, x0, relational.Value(r.Intn(3)))
		ds.Y = append(ds.Y, int8(x0))
	}
	m := NewLogReg(LogRegConfig{Lambda: 1e-4, Seed: 2})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc != 1.0 {
		t.Fatalf("separable accuracy %v, want 1.0", acc)
	}
}

func TestLogRegNoisySignal(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 5)}
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		x0 := relational.Value(r.Intn(2))
		y := int8(x0)
		if r.Bernoulli(0.1) {
			y = 1 - y
		}
		ds.X = append(ds.X, x0, relational.Value(r.Intn(5)))
		ds.Y = append(ds.Y, y)
	}
	m := NewLogReg(LogRegConfig{Lambda: 1e-3, Seed: 4})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc < 0.85 {
		t.Fatalf("noisy accuracy %v, want >= 0.85 (Bayes is 0.9)", acc)
	}
}

func TestL1SparsifiesNoiseWeights(t *testing.T) {
	// With strong L1, pure-noise features' weights should be driven to
	// (near) zero much more than with weak L1.
	build := func() *ml.Dataset {
		ds := &ml.Dataset{Features: feats(2, 50)}
		r := rng.New(5)
		for i := 0; i < 2000; i++ {
			x0 := relational.Value(r.Intn(2))
			ds.X = append(ds.X, x0, relational.Value(r.Intn(50)))
			ds.Y = append(ds.Y, int8(x0))
		}
		return ds
	}
	strong := NewLogReg(LogRegConfig{Lambda: 0.05, Seed: 6})
	weak := NewLogReg(LogRegConfig{Lambda: 0, Seed: 6})
	if err := strong.Fit(build()); err != nil {
		t.Fatal(err)
	}
	if err := weak.Fit(build()); err != nil {
		t.Fatal(err)
	}
	if strong.NonZeroWeights() >= weak.NonZeroWeights() {
		t.Fatalf("L1 should sparsify: strong=%d weak=%d nonzeros",
			strong.NonZeroWeights(), weak.NonZeroWeights())
	}
	if acc := ml.Accuracy(strong, build()); acc < 0.95 {
		t.Fatalf("strong-L1 accuracy %v dropped too far", acc)
	}
}

func TestLogRegDeterministic(t *testing.T) {
	ds := &ml.Dataset{Features: feats(4)}
	r := rng.New(7)
	for i := 0; i < 100; i++ {
		v := relational.Value(r.Intn(4))
		ds.X = append(ds.X, v)
		ds.Y = append(ds.Y, int8(int(v)%2))
	}
	fit := func() float64 {
		m := NewLogReg(LogRegConfig{Lambda: 1e-3, Seed: 9})
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		return m.Decision(ds.Row(0))
	}
	if fit() != fit() {
		t.Fatal("same seed must reproduce the model")
	}
}

func TestLogRegFKOverfitsAtLowTupleRatio(t *testing.T) {
	// The prior-work phenomenon the paper builds on: a linear model given a
	// huge-domain FK with few examples per value overfits — training
	// accuracy is far above test accuracy on fresh samples from the same
	// distribution. This is the "extra overfitting" the tuple ratio guards.
	const nR = 400
	const nTrain = 800 // tuple ratio 2
	xr := make([]int8, nR)
	r := rng.New(11)
	for i := range xr {
		xr[i] = int8(r.Intn(2))
	}
	gen := func(n int, rr *rng.RNG) *ml.Dataset {
		ds := &ml.Dataset{Features: []ml.Feature{{Name: "FK", Cardinality: nR, IsFK: true}}}
		for i := 0; i < n; i++ {
			fk := relational.Value(rr.Intn(nR))
			y := xr[fk]
			if rr.Bernoulli(0.2) {
				y = 1 - y
			}
			ds.X = append(ds.X, fk)
			ds.Y = append(ds.Y, y)
		}
		return ds
	}
	train := gen(nTrain, rng.New(13))
	test := gen(4000, rng.New(17))
	m := NewLogReg(LogRegConfig{Lambda: 0, Seed: 19})
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	trainAcc := ml.Accuracy(m, train)
	testAcc := ml.Accuracy(m, test)
	if trainAcc-testAcc < 0.03 {
		t.Fatalf("expected visible overfitting gap at tuple ratio 2: train %v test %v", trainAcc, testAcc)
	}
}

func TestLogRegColumnarMatchesRowPath(t *testing.T) {
	// The columnar epoch path (one ScanFeature pass into the active-index
	// matrix, amortized over all epochs) must produce a bit-identical model
	// to the historical row-at-a-time gathers: same index values, same
	// update sequence, so the same float trajectory.
	base := &ml.Dataset{Features: feats(2, 7, 5)}
	r := rng.New(21)
	for i := 0; i < 600; i++ {
		x0 := relational.Value(r.Intn(2))
		base.X = append(base.X, x0, relational.Value(r.Intn(7)), relational.Value(r.Intn(5)))
		base.Y = append(base.Y, int8(x0))
	}
	sub := make([]int, 400)
	for i := range sub {
		sub[i] = r.Intn(600)
	}
	for name, ds := range map[string]*ml.Dataset{"dense": base, "view": base.Subset(sub)} {
		cfg := LogRegConfig{Lambda: 1e-3, L2: 1e-4, Seed: 23}
		row := NewLogReg(LogRegConfig{Lambda: cfg.Lambda, L2: cfg.L2, Seed: cfg.Seed, RowAtATime: true})
		col := NewLogReg(cfg)
		if err := row.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if err := col.Fit(ds); err != nil {
			t.Fatal(err)
		}
		if row.b != col.b {
			t.Fatalf("%s: bias diverged: %v vs %v", name, row.b, col.b)
		}
		for k := range row.w {
			if row.w[k] != col.w[k] {
				t.Fatalf("%s: w[%d] diverged: %v vs %v", name, k, row.w[k], col.w[k])
			}
		}
	}
}

func TestName(t *testing.T) {
	if NewLogReg(LogRegConfig{}).Name() != "LogisticRegression(L1)" {
		t.Fatal("name wrong")
	}
}

func TestL2ShrinksWeightNorm(t *testing.T) {
	ds := &ml.Dataset{Features: feats(2, 5)}
	r := rng.New(81)
	for i := 0; i < 500; i++ {
		x0 := relational.Value(r.Intn(2))
		ds.X = append(ds.X, x0, relational.Value(r.Intn(5)))
		ds.Y = append(ds.Y, int8(x0))
	}
	norm := func(l2 float64) float64 {
		m := NewLogReg(LogRegConfig{L2: l2, Seed: 83})
		if err := m.Fit(ds); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, w := range m.w {
			s += w * w
		}
		return s
	}
	if norm(1) >= norm(0) {
		t.Fatalf("L2 must shrink weight norm: %v vs %v", norm(1), norm(0))
	}
	// Accuracy should survive mild L2.
	m := NewLogReg(LogRegConfig{L2: 1e-3, Seed: 83})
	if err := m.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(m, ds); acc < 0.95 {
		t.Fatalf("mild-L2 accuracy %v", acc)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	// The SpGemmOneHot batch scorer must classify exactly as the per-row
	// Predict path — same bias-first fold in feature order — including on a
	// remapped Subset view, where the active-index scan goes through the
	// dataset's row remap.
	r := rng.New(71)
	base := &ml.Dataset{Features: feats(3, 4, 2)}
	for i := 0; i < 300; i++ {
		a, b, c := r.Intn(3), r.Intn(4), r.Intn(2)
		base.X = append(base.X, relational.Value(a), relational.Value(b), relational.Value(c))
		base.Y = append(base.Y, int8((a+b)%2))
	}
	m := NewLogReg(LogRegConfig{Lambda: 1e-3, Seed: 73})
	if err := m.Fit(base); err != nil {
		t.Fatal(err)
	}
	sub := make([]int, 120)
	for i := range sub {
		sub[i] = r.Intn(300)
	}
	for name, ds := range map[string]*ml.Dataset{"dense": base, "view": base.Subset(sub)} {
		got := m.PredictBatch(ds)
		if len(got) != ds.NumExamples() {
			t.Fatalf("%s: PredictBatch returned %d classes for %d examples", name, len(got), ds.NumExamples())
		}
		buf := make([]relational.Value, ds.NumFeatures())
		for i := range got {
			if want := m.Predict(ds.RowInto(buf, i)); got[i] != want {
				t.Fatalf("%s: example %d: batch class %d != Predict %d", name, i, got[i], want)
			}
		}
		if ml.Accuracy(m, ds) != accuracySequential(m, ds) {
			t.Fatalf("%s: batched Accuracy diverged from the sequential loop", name)
		}
	}
}

// accuracySequential is the historical per-row Accuracy loop, kept here as
// the reference the BatchPredictor fast path is pinned against.
func accuracySequential(c ml.Classifier, ds *ml.Dataset) float64 {
	buf := make([]relational.Value, ds.NumFeatures())
	correct := 0
	for i := 0; i < ds.NumExamples(); i++ {
		if c.Predict(ds.RowInto(buf, i)) == ds.Label(i) {
			correct++
		}
	}
	return float64(correct) / float64(ds.NumExamples())
}
