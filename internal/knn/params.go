package knn

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/relational"
)

// Params is the serializable state of a fitted 1-NN classifier: the
// memorized training examples, row-major, in training order (order matters —
// ties break to the earliest example).
type Params struct {
	X []relational.Value // len = n × feature count
	Y []int8
}

// ExportParams materializes the memorized training set. For view-backed
// training data this is the one copy persistence pays; the live model keeps
// its zero-copy view.
func (k *OneNN) ExportParams() (Params, error) {
	if k.train == nil {
		return Params{}, fmt.Errorf("knn: export before Fit")
	}
	dense := k.train.Materialize()
	return Params{
		X: append([]relational.Value(nil), dense.X...),
		Y: append([]int8(nil), dense.Y...),
	}, nil
}

// FromParams reconstructs a fitted 1-NN classifier over dense storage.
func FromParams(features []ml.Feature, p Params) (*OneNN, error) {
	d := len(features)
	if d == 0 || len(p.X)%d != 0 {
		return nil, fmt.Errorf("knn: example block of %d values is not a multiple of %d features", len(p.X), d)
	}
	if len(p.X)/d != len(p.Y) {
		return nil, fmt.Errorf("knn: %d example rows but %d labels", len(p.X)/d, len(p.Y))
	}
	if len(p.Y) == 0 {
		return nil, fmt.Errorf("knn: empty training set")
	}
	for i, y := range p.Y {
		if y != 0 && y != 1 {
			return nil, fmt.Errorf("knn: label %d of example %d outside {0,1}", y, i)
		}
	}
	ds := &ml.Dataset{
		Features: append([]ml.Feature(nil), features...),
		X:        append([]relational.Value(nil), p.X...),
		Y:        append([]int8(nil), p.Y...),
	}
	return &OneNN{train: ds}, nil
}
