package knn

import (
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/relational"
	"repro/internal/rng"
)

func feats(cards ...int) []ml.Feature {
	out := make([]ml.Feature, len(cards))
	for i, c := range cards {
		out[i] = ml.Feature{Name: "f", Cardinality: c}
	}
	return out
}

func TestFitRejectsEmpty(t *testing.T) {
	if err := New().Fit(&ml.Dataset{Features: feats(2)}); err == nil {
		t.Fatal("expected error")
	}
}

func TestExactMatchWins(t *testing.T) {
	ds := &ml.Dataset{
		Features: feats(3, 3),
		X:        []relational.Value{0, 0, 1, 1, 2, 2},
		Y:        []int8{0, 1, 0},
	}
	k := New()
	if err := k.Fit(ds); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if k.Predict(ds.Row(i)) != ds.Label(i) {
			t.Fatalf("1-NN must have perfect training accuracy, wrong at %d", i)
		}
	}
}

func TestTrainAccuracyIsPerfectOnDistinctRows(t *testing.T) {
	// Paper Table 5: 1-NN training accuracy is 1 whenever rows are distinct.
	r := rng.New(3)
	ds := &ml.Dataset{Features: feats(50, 50)}
	for i := 0; i < 40; i++ {
		ds.X = append(ds.X, relational.Value(i), relational.Value(r.Intn(50)))
		ds.Y = append(ds.Y, int8(r.Intn(2)))
	}
	k := New()
	if err := k.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(k, ds); acc != 1.0 {
		t.Fatalf("train accuracy %v, want 1.0", acc)
	}
}

func TestNearestByHamming(t *testing.T) {
	ds := &ml.Dataset{
		Features: feats(4, 4, 4),
		X: []relational.Value{
			0, 0, 0,
			3, 3, 3,
		},
		Y: []int8{0, 1},
	}
	k := New()
	if err := k.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if k.Predict([]relational.Value{0, 0, 3}) != 0 {
		t.Fatal("closer to all-zeros row")
	}
	if k.Predict([]relational.Value{0, 3, 3}) != 1 {
		t.Fatal("closer to all-threes row")
	}
}

func TestTieBreaksToEarliest(t *testing.T) {
	ds := &ml.Dataset{
		Features: feats(4, 4),
		X: []relational.Value{
			0, 1,
			1, 0,
		},
		Y: []int8{1, 0},
	}
	k := New()
	if err := k.Fit(ds); err != nil {
		t.Fatal(err)
	}
	// {0,0} matches each stored row on one feature: tie → earliest (label 1).
	if k.Predict([]relational.Value{0, 0}) != 1 {
		t.Fatal("tie must break to the earliest training example")
	}
}

func TestFKMemorizationProperty(t *testing.T) {
	// The paper's §5 insight: when X_S is empty and FK functionally
	// determines the (discarded) X_R that defines Y, 1-NN with NoJoin
	// memorizes FK and still generalizes to test rows whose FK was seen.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nR := r.Intn(20) + 5
		labelOf := make([]int8, nR)
		for i := range labelOf {
			labelOf[i] = int8(r.Intn(2))
		}
		ds := &ml.Dataset{Features: feats(nR)}
		for i := 0; i < nR*4; i++ {
			fk := relational.Value(i % nR)
			ds.X = append(ds.X, fk)
			ds.Y = append(ds.Y, labelOf[fk])
		}
		k := New()
		if err := k.Fit(ds); err != nil {
			return false
		}
		for v := 0; v < nR; v++ {
			if k.Predict([]relational.Value{relational.Value(v)}) != labelOf[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "1-NN" {
		t.Fatal("name wrong")
	}
}
