// Package knn implements the 1-nearest-neighbour classifier the paper uses
// as its "braindead" comparator (§3, §5). On one-hot encoded categorical
// features, squared Euclidean distance is 2·(d − matches), so the nearest
// neighbour under Euclidean distance is exactly the nearest under Hamming
// distance over the categorical codes; no encoding is materialized.
//
// Ties (multiple stored examples at the minimal distance) are broken by the
// earliest training example, which makes predictions deterministic.
package knn

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/relational"
)

// OneNN is a 1-nearest-neighbour classifier. The zero value is unfitted.
type OneNN struct {
	train *ml.Dataset
}

// New returns an unfitted 1-NN classifier.
func New() *OneNN { return &OneNN{} }

// Name implements ml.Named.
func (k *OneNN) Name() string { return "1-NN" }

// Fit memorizes the training set (1-NN has no parameters; the paper notes it
// also has no hyper-parameters to tune).
func (k *OneNN) Fit(train *ml.Dataset) error {
	if train.NumExamples() == 0 {
		return fmt.Errorf("knn: empty training set")
	}
	// A private handle gives this classifier its own scratch buffer, so
	// Predict's scan of the training rows cannot race with other readers of
	// the same view-backed dataset.
	k.train = train.Handle()
	return nil
}

// Predict returns the label of the nearest stored example by Hamming
// distance (equivalently one-hot Euclidean distance).
func (k *OneNN) Predict(row []relational.Value) int8 {
	best := -1
	bestMatches := -1
	n := k.train.NumExamples()
	for i := 0; i < n; i++ {
		m := ml.MatchCount(k.train.Row(i), row)
		if m > bestMatches {
			bestMatches = m
			best = i
			if m == len(row) {
				break // exact match; no closer neighbour exists
			}
		}
	}
	return k.train.Label(best)
}
