// Package ml is the shared machine-learning layer: a categorical Dataset
// abstraction built as a view over relational tables, the Classifier
// interface every learner implements, evaluation metrics, and the
// validation-set grid search the paper uses for hyper-parameter tuning.
//
// Every learner in this repository consumes examples as vectors of
// categorical codes. One-hot semantics, where a model needs them, are
// recovered inside the model (kernel match counts, per-(feature,value)
// weights, sparse embedding rows) rather than by materializing a one-hot
// matrix; see the Encoder type.
package ml

import (
	"fmt"

	"repro/internal/relational"
)

// Feature describes one input feature of a dataset: its name, its domain
// cardinality, and whether it is a foreign-key column (several components —
// unseen-value smoothing, domain compression, the NoFK view — treat FK
// features specially).
type Feature struct {
	Name        string
	Cardinality int
	IsFK        bool
}

// Dataset is an immutable supervised learning problem: n examples, d
// categorical features, binary labels. X is row-major (len n*d); Y holds
// class labels 0/1.
type Dataset struct {
	Features []Feature
	X        []relational.Value // len = n * d
	Y        []int8             // len = n
}

// NumExamples returns n.
func (d *Dataset) NumExamples() int { return len(d.Y) }

// NumFeatures returns d.
func (d *Dataset) NumFeatures() int { return len(d.Features) }

// Row returns example i's feature codes (aliases internal storage).
func (d *Dataset) Row(i int) []relational.Value {
	k := d.NumFeatures()
	return d.X[i*k : (i+1)*k : (i+1)*k]
}

// Label returns example i's class in {0, 1}.
func (d *Dataset) Label(i int) int8 { return d.Y[i] }

// PositiveFraction returns the empirical P(Y=1).
func (d *Dataset) PositiveFraction() float64 {
	if len(d.Y) == 0 {
		return 0
	}
	pos := 0
	for _, y := range d.Y {
		if y == 1 {
			pos++
		}
	}
	return float64(pos) / float64(len(d.Y))
}

// MajorityClass returns the most frequent label (ties → 1, matching the
// convention that a vacuous model predicts the positive class on ties).
func (d *Dataset) MajorityClass() int8 {
	if d.PositiveFraction() >= 0.5 {
		return 1
	}
	return 0
}

// Subset materializes a new dataset restricted to the given example indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	k := d.NumFeatures()
	out := &Dataset{
		Features: d.Features,
		X:        make([]relational.Value, 0, len(idx)*k),
		Y:        make([]int8, 0, len(idx)),
	}
	for _, i := range idx {
		out.X = append(out.X, d.Row(i)...)
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// FromTable builds a dataset from a (typically joined) table using the given
// feature column indices and the table's target column. Target domain must be
// binary.
func FromTable(t *relational.Table, featureCols []int, targetCol int) (*Dataset, error) {
	tc := t.Schema.Cols[targetCol]
	if tc.Kind != relational.KindTarget {
		return nil, fmt.Errorf("ml: column %q is %v, not a target", tc.Name, tc.Kind)
	}
	if tc.Domain.Size != 2 {
		return nil, fmt.Errorf("ml: target %q must be binary, domain size %d", tc.Name, tc.Domain.Size)
	}
	feats := make([]Feature, len(featureCols))
	for j, c := range featureCols {
		col := t.Schema.Cols[c]
		switch col.Kind {
		case relational.KindFeature, relational.KindForeignKey:
		default:
			return nil, fmt.Errorf("ml: column %q is %v; only features and foreign keys may be inputs", col.Name, col.Kind)
		}
		feats[j] = Feature{
			Name:        col.Name,
			Cardinality: col.Domain.Size,
			IsFK:        col.Kind == relational.KindForeignKey,
		}
	}
	n := t.NumRows()
	ds := &Dataset{
		Features: feats,
		X:        make([]relational.Value, 0, n*len(featureCols)),
		Y:        make([]int8, 0, n),
	}
	for i := 0; i < n; i++ {
		row := t.Row(i)
		for _, c := range featureCols {
			ds.X = append(ds.X, row[c])
		}
		ds.Y = append(ds.Y, int8(row[targetCol]))
	}
	return ds, nil
}

// DropFeatures returns a copy of the dataset without the features at the
// given positions (used by backward feature selection and ablations).
func (d *Dataset) DropFeatures(drop map[int]bool) *Dataset {
	var keep []int
	for j := range d.Features {
		if !drop[j] {
			keep = append(keep, j)
		}
	}
	return d.SelectFeatures(keep)
}

// SelectFeatures returns a copy of the dataset with only the features at the
// given positions, in the given order.
func (d *Dataset) SelectFeatures(keep []int) *Dataset {
	n := d.NumExamples()
	out := &Dataset{
		Features: make([]Feature, len(keep)),
		X:        make([]relational.Value, 0, n*len(keep)),
		Y:        append([]int8(nil), d.Y...),
	}
	for j, k := range keep {
		out.Features[j] = d.Features[k]
	}
	for i := 0; i < n; i++ {
		row := d.Row(i)
		for _, k := range keep {
			out.X = append(out.X, row[k])
		}
	}
	return out
}
