// Package ml is the shared machine-learning layer: a categorical Dataset
// abstraction built as a view over relational data, the Classifier
// interface every learner implements, evaluation metrics, and the
// validation-set grid search the paper uses for hyper-parameter tuning.
//
// Every learner in this repository consumes examples as vectors of
// categorical codes. One-hot semantics, where a model needs them, are
// recovered inside the model (kernel match counts, per-(feature,value)
// weights, sparse embedding rows) rather than by materializing a one-hot
// matrix; see the Encoder type.
//
// Since the factorized-execution refactor a Dataset is a *view*: it binds to
// any relational.Relation (a physical Table, a zero-copy JoinView, a split
// SelectView) or to dense storage, and Subset / SelectFeatures compose
// index- and column-remaps instead of copying. Learners consume examples
// only through NumExamples / Row / RowInto / At / Label, so one JoinAll
// experiment now holds a single physical copy of the fact and dimension
// tables instead of 3–4 copies of the joined matrix.
package ml

import (
	"fmt"

	"repro/internal/relational"
)

// Feature describes one input feature of a dataset: its name, its domain
// cardinality, and whether it is a foreign-key column (several components —
// unseen-value smoothing, domain compression, the NoFK view — treat FK
// features specially).
type Feature struct {
	Name        string
	Cardinality int
	IsFK        bool
}

// view is the non-dense backing of a Dataset: a source (either a Relation or
// a borrowed dense block) plus optional row and column remaps.
type view struct {
	// Exactly one of rel / (x, y) is the source.
	rel relational.Relation
	x   []relational.Value // dense source rows, width = baseW
	y   []int8             // dense source labels (rel == nil)

	baseW  int // source row width
	target int // target column in rel (rel != nil)
	rows   []int
	n      int   // row count when rows == nil
	cols   []int // per-feature source column; nil = identity
}

// srcRow maps a view example index to a source row index.
func (v *view) srcRow(i int) int {
	if v.rows == nil {
		return i
	}
	return v.rows[i]
}

// Dataset is an immutable supervised learning problem: n examples, d
// categorical features, binary labels.
//
// A Dataset is either *dense* — X row-major (len n*d), Y class labels 0/1,
// both exported so tests and generators can build datasets directly — or
// *view-backed* (constructed by FromRelation, Subset, or SelectFeatures), in
// which case X and Y are nil and every access resolves through the backing
// relation and remap tables. Use the accessors; they are the only API that
// works for both forms.
type Dataset struct {
	Features []Feature
	X        []relational.Value // dense storage; nil when view-backed
	Y        []int8             // dense labels; nil when view-backed

	v       *view
	scratch []relational.Value
}

// NumExamples returns n.
func (d *Dataset) NumExamples() int {
	if d.v == nil {
		return len(d.Y)
	}
	if d.v.rows != nil {
		return len(d.v.rows)
	}
	return d.v.n
}

// NumFeatures returns the feature count.
func (d *Dataset) NumFeatures() int { return len(d.Features) }

// contiguous reports whether Row can alias storage directly: dense identity
// layouts and row-remapped dense views with identity columns.
func (d *Dataset) contiguous() bool {
	return d.v == nil || (d.v.rel == nil && d.v.cols == nil)
}

// Row returns example i's feature codes.
//
// For contiguous datasets the returned slice aliases internal storage (the
// historical zero-copy behaviour). For view-backed datasets it is filled
// into a per-Dataset scratch buffer and stays valid only until the next Row
// call on the same Dataset value — callers that hold a row across further
// Row calls, or that read rows from several goroutines, must use RowInto
// with their own buffer (see Accuracy) or per-goroutine Handles.
func (d *Dataset) Row(i int) []relational.Value {
	k := len(d.Features)
	if d.v == nil {
		return d.X[i*k : (i+1)*k : (i+1)*k]
	}
	if d.v.rel == nil && d.v.cols == nil {
		r := d.v.srcRow(i)
		return d.v.x[r*k : (r+1)*k : (r+1)*k]
	}
	if d.scratch == nil {
		d.scratch = make([]relational.Value, k)
	}
	return d.RowInto(d.scratch, i)
}

// RowInto copies example i's feature codes into dst (len >= NumFeatures)
// and returns dst truncated to the feature count. It never aliases dataset
// storage, making it the safe pattern for callers that pass rows into
// classifiers which may themselves iterate the same dataset.
func (d *Dataset) RowInto(dst []relational.Value, i int) []relational.Value {
	k := len(d.Features)
	dst = dst[:k]
	if d.v == nil {
		copy(dst, d.X[i*k:(i+1)*k])
		return dst
	}
	r := d.v.srcRow(i)
	if d.v.rel != nil {
		if d.v.cols == nil {
			return d.v.rel.CopyRow(dst, r)
		}
		for j, c := range d.v.cols {
			dst[j] = d.v.rel.At(r, c)
		}
		return dst
	}
	if d.v.cols == nil {
		copy(dst, d.v.x[r*d.v.baseW:r*d.v.baseW+k])
		return dst
	}
	base := r * d.v.baseW
	for j, c := range d.v.cols {
		dst[j] = d.v.x[base+c]
	}
	return dst
}

// At returns the value of feature j of example i. It is the cheapest
// accessor for single-cell reads (no row assembly) and is safe for
// concurrent use.
func (d *Dataset) At(i, j int) relational.Value {
	if d.v == nil {
		return d.X[i*len(d.Features)+j]
	}
	r := d.v.srcRow(i)
	c := j
	if d.v.cols != nil {
		c = d.v.cols[j]
	}
	if d.v.rel != nil {
		return d.v.rel.At(r, c)
	}
	return d.v.x[r*d.v.baseW+c]
}

// ScanFeature is the batch read path: it fills dst with consecutive values
// of feature j starting at example from, returning how many were written
// (min(len(dst), NumExamples()-from); 0 past the end). When the backing
// relation implements relational.ColumnScanner — every relation in the
// repository does — the scan devirtualizes into the storage engine's own
// column loop; otherwise it degrades to per-cell At. Safe for concurrent
// use: it writes only into dst.
func (d *Dataset) ScanFeature(dst []relational.Value, j, from int) int {
	k := len(d.Features)
	m := d.NumExamples() - from
	if m > len(dst) {
		m = len(dst)
	}
	if m <= 0 {
		return 0
	}
	dst = dst[:m]
	if d.v == nil {
		at := from*k + j
		for i := range dst {
			dst[i] = d.X[at]
			at += k
		}
		return m
	}
	c := j
	if d.v.cols != nil {
		c = d.v.cols[j]
	}
	if d.v.rows != nil {
		rows := d.v.rows[from : from+m]
		if d.v.rel != nil {
			if g, ok := d.v.rel.(relational.ColumnGatherer); ok {
				g.GatherColumn(dst, c, rows)
				return m
			}
			for i, r := range rows {
				dst[i] = d.v.rel.At(r, c)
			}
			return m
		}
		for i, r := range rows {
			dst[i] = d.v.x[r*d.v.baseW+c]
		}
		return m
	}
	if d.v.rel != nil {
		if cs, ok := d.v.rel.(relational.ColumnScanner); ok {
			return cs.ScanColumn(c, from, dst)
		}
		for i := range dst {
			dst[i] = d.v.rel.At(from+i, c)
		}
		return m
	}
	at := from*d.v.baseW + c
	for i := range dst {
		dst[i] = d.v.x[at]
		at += d.v.baseW
	}
	return m
}

// GatherFeature fills dst[k] with At(rows[k], j) for every k — the batch
// read for non-contiguous example subsets (a decision-tree node's example
// set). len(dst) must be >= len(rows). Like ScanFeature it routes through
// the backing relation's gather when available.
func (d *Dataset) GatherFeature(dst []relational.Value, j int, rows []int) {
	dst = dst[:len(rows)]
	if d.v == nil {
		k := len(d.Features)
		for i, r := range rows {
			dst[i] = d.X[r*k+j]
		}
		return
	}
	c := j
	if d.v.cols != nil {
		c = d.v.cols[j]
	}
	if d.v.rows != nil {
		if d.v.rel != nil {
			if g, ok := d.v.rel.(relational.ColumnViaGatherer); ok {
				g.GatherColumnVia(dst, c, d.v.rows, rows)
				return
			}
			for i, r := range rows {
				dst[i] = d.v.rel.At(d.v.rows[r], c)
			}
			return
		}
		for i, r := range rows {
			dst[i] = d.v.x[d.v.rows[r]*d.v.baseW+c]
		}
		return
	}
	if d.v.rel != nil {
		if g, ok := d.v.rel.(relational.ColumnGatherer); ok {
			g.GatherColumn(dst, c, rows)
			return
		}
		for i, r := range rows {
			dst[i] = d.v.rel.At(r, c)
		}
		return
	}
	for i, r := range rows {
		dst[i] = d.v.x[r*d.v.baseW+c]
	}
}

// ScanLabels fills dst with consecutive labels starting at example from and
// returns the count written — the label companion of ScanFeature. Learners
// on the batch path call it once per Fit and then index the materialized
// label vector instead of paying a virtual Label call per example per pass.
func (d *Dataset) ScanLabels(dst []int8, from int) int {
	m := d.NumExamples() - from
	if m > len(dst) {
		m = len(dst)
	}
	if m <= 0 {
		return 0
	}
	dst = dst[:m]
	if d.v == nil {
		copy(dst, d.Y[from:from+m])
		return m
	}
	if d.v.rel != nil && d.v.rows == nil {
		if cs, ok := d.v.rel.(relational.ColumnScanner); ok {
			buf := make([]relational.Value, min(m, 4096))
			for at := 0; at < m; {
				got := cs.ScanColumn(d.v.target, from+at, buf[:min(len(buf), m-at)])
				for i := 0; i < got; i++ {
					dst[at+i] = int8(buf[i])
				}
				at += got
			}
			return m
		}
	}
	for i := range dst {
		dst[i] = d.Label(from + i)
	}
	return m
}

// FeatureRange reports the observed [lo, hi] code range of feature j when
// the backing relation can prove one from resident statistics (a
// SegmentedTable's zone maps) without scanning any data. ok is false when no
// bound is available (dense datasets, relations without statistics). The
// range may be wider than the rows actually visible through this dataset —
// a split Subset inherits its source's bounds — so it supports only sound
// over-approximations: lo == hi proves the feature constant (the decision
// tree skips such features in its split search), nothing more.
func (d *Dataset) FeatureRange(j int) (lo, hi relational.Value, ok bool) {
	if d.v == nil || d.v.rel == nil {
		return 0, 0, false
	}
	cr, ranged := d.v.rel.(relational.ColumnRanger)
	if !ranged {
		return 0, 0, false
	}
	c := j
	if d.v.cols != nil {
		c = d.v.cols[j]
	}
	return cr.ColumnRange(c)
}

// Label returns example i's class in {0, 1}.
func (d *Dataset) Label(i int) int8 {
	if d.v == nil {
		return d.Y[i]
	}
	r := d.v.srcRow(i)
	if d.v.rel != nil {
		return int8(d.v.rel.At(r, d.v.target))
	}
	return d.v.y[r]
}

// Handle returns a cheap per-worker alias of the dataset: same backing data,
// private scratch buffer. Views make handles free (a small struct copy), and
// parallel tuning hands one to each worker so concurrent Row calls cannot
// race on scratch. For contiguous datasets it returns d unchanged.
func (d *Dataset) Handle() *Dataset {
	if d.contiguous() {
		return d
	}
	h := *d
	h.scratch = nil
	return &h
}

// PositiveFraction returns the empirical P(Y=1).
func (d *Dataset) PositiveFraction() float64 {
	n := d.NumExamples()
	if n == 0 {
		return 0
	}
	pos := 0
	for i := 0; i < n; i++ {
		if d.Label(i) == 1 {
			pos++
		}
	}
	return float64(pos) / float64(n)
}

// MajorityClass returns the most frequent label (ties → 1, matching the
// convention that a vacuous model predicts the positive class on ties).
func (d *Dataset) MajorityClass() int8 {
	if d.PositiveFraction() >= 0.5 {
		return 1
	}
	return 0
}

// Subset returns a view of the dataset restricted to the given example
// indices, in order. No example data is copied: the result shares storage
// with d (and with d's own backing, if d is already a view), composing row
// remaps. Indices may repeat. When d has no row remap yet the idx slice is
// retained as-is (callers must not mutate it afterwards); when composing
// with an existing remap it is only read.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Features: d.Features}
	if d.v == nil {
		out.v = &view{x: d.X, y: d.Y, baseW: len(d.Features), rows: idx}
		return out
	}
	nv := *d.v
	if d.v.rows == nil {
		nv.rows = idx
	} else {
		rows := make([]int, len(idx))
		for k, i := range idx {
			rows[k] = d.v.rows[i]
		}
		nv.rows = rows
	}
	out.v = &nv
	return out
}

// FromRelation builds a zero-copy dataset over any relation using the given
// feature column indices and target column. The target domain must be
// binary. Labels as well as features resolve through the relation at access
// time, so writes to the base relation are observed by the dataset.
func FromRelation(r relational.Relation, featureCols []int, targetCol int) (*Dataset, error) {
	schema := r.Schema()
	tc := schema.Cols[targetCol]
	if tc.Kind != relational.KindTarget {
		return nil, fmt.Errorf("ml: column %q is %v, not a target", tc.Name, tc.Kind)
	}
	if tc.Domain.Size != 2 {
		return nil, fmt.Errorf("ml: target %q must be binary, domain size %d", tc.Name, tc.Domain.Size)
	}
	feats := make([]Feature, len(featureCols))
	for j, c := range featureCols {
		col := schema.Cols[c]
		switch col.Kind {
		case relational.KindFeature, relational.KindForeignKey:
		default:
			return nil, fmt.Errorf("ml: column %q is %v; only features and foreign keys may be inputs", col.Name, col.Kind)
		}
		feats[j] = Feature{
			Name:        col.Name,
			Cardinality: col.Domain.Size,
			IsFK:        col.Kind == relational.KindForeignKey,
		}
	}
	return &Dataset{
		Features: feats,
		v: &view{
			rel:    r,
			baseW:  schema.Width(),
			target: targetCol,
			n:      r.NumRows(),
			cols:   append([]int(nil), featureCols...),
		},
	}, nil
}

// FromTable builds a dataset from a (typically joined) relation. It is kept
// as the historical name; since the factorized refactor it is an alias of
// FromRelation and no longer copies the data.
func FromTable(t relational.Relation, featureCols []int, targetCol int) (*Dataset, error) {
	return FromRelation(t, featureCols, targetCol)
}

// Materialize evaluates a view-backed dataset into dense storage (one copy).
// Contiguous identity datasets are returned unchanged. Learners with access
// patterns that revisit every row many times (SMO's kernel loops) call this
// once instead of paying per-access indirection.
func (d *Dataset) Materialize() *Dataset {
	if d.v == nil {
		return d
	}
	n := d.NumExamples()
	k := len(d.Features)
	out := &Dataset{
		Features: d.Features,
		X:        make([]relational.Value, n*k),
		Y:        make([]int8, n),
	}
	for i := 0; i < n; i++ {
		d.RowInto(out.X[i*k:(i+1)*k], i)
		out.Y[i] = d.Label(i)
	}
	return out
}

// MaterializedRows returns per-example row slices. For contiguous datasets
// the slices alias internal storage (no allocation beyond the spine); for
// view-backed datasets the rows are copied into one fresh block. The result
// is safe to retain and to read concurrently, unlike Row's scratch.
func (d *Dataset) MaterializedRows() [][]relational.Value {
	n := d.NumExamples()
	k := len(d.Features)
	out := make([][]relational.Value, n)
	if d.contiguous() {
		for i := range out {
			out[i] = d.Row(i)
		}
		return out
	}
	block := make([]relational.Value, n*k)
	for i := range out {
		row := block[i*k : (i+1)*k : (i+1)*k]
		d.RowInto(row, i)
		out[i] = row
	}
	return out
}

// DropFeatures returns a view of the dataset without the features at the
// given positions (used by backward feature selection and ablations).
func (d *Dataset) DropFeatures(drop map[int]bool) *Dataset {
	var keep []int
	for j := range d.Features {
		if !drop[j] {
			keep = append(keep, j)
		}
	}
	return d.SelectFeatures(keep)
}

// SelectFeatures returns a view of the dataset with only the features at
// the given positions, in the given order. No example data is copied;
// column remaps compose with any existing view.
func (d *Dataset) SelectFeatures(keep []int) *Dataset {
	feats := make([]Feature, len(keep))
	for j, k := range keep {
		feats[j] = d.Features[k]
	}
	out := &Dataset{Features: feats}
	if d.v == nil {
		out.v = &view{x: d.X, y: d.Y, baseW: len(d.Features), n: len(d.Y), cols: append([]int(nil), keep...)}
		return out
	}
	nv := *d.v
	if d.v.cols == nil {
		nv.cols = append([]int(nil), keep...)
	} else {
		cols := make([]int, len(keep))
		for j, k := range keep {
			cols[j] = d.v.cols[k]
		}
		nv.cols = cols
	}
	out.v = &nv
	return out
}
