package ml

import (
	"sync/atomic"
	"testing"
)

// withMaxParallelism runs fn with MaxParallelism pinned, restoring the
// previous setting afterwards.
func withMaxParallelism(t *testing.T, p int, fn func()) {
	t.Helper()
	old := MaxParallelism
	MaxParallelism = p
	defer func() { MaxParallelism = old }()
	fn()
}

func TestParallelForZeroItems(t *testing.T) {
	// n = 0 must return immediately without invoking fn or hanging a pool.
	for _, p := range []int{0, 1, 8} {
		withMaxParallelism(t, p, func() {
			calls := 0
			ParallelFor(0, func(int) { calls++ })
			if calls != 0 {
				t.Fatalf("MaxParallelism=%d: fn called %d times for n=0", p, calls)
			}
		})
	}
}

// TestParallelForEachIndexOnce covers the fan-out's index accounting across
// the interesting regimes: n below the worker count (fewer tasks than one
// "morsel" of parallelism, so excess workers must idle quietly), n equal to
// it, and n far above it. Every index must be visited exactly once.
func TestParallelForEachIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 16} {
		for _, n := range []int{1, 2, 3, 16, 1000} {
			withMaxParallelism(t, p, func() {
				counts := make([]atomic.Int32, n)
				ParallelFor(n, func(i int) { counts[i].Add(1) })
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("p=%d n=%d: index %d ran %d times", p, n, i, got)
					}
				}
			})
		}
	}
}

func TestParallelForSequentialWhenParallelismOne(t *testing.T) {
	// MaxParallelism = 1 must run indices in order on the calling goroutine
	// — the historical sequential execution some tests and benchmarks pin.
	withMaxParallelism(t, 1, func() {
		var order []int
		ParallelFor(5, func(i int) { order = append(order, i) })
		for i, v := range order {
			if v != i {
				t.Fatalf("sequential run visited %v", order)
			}
		}
		if len(order) != 5 {
			t.Fatalf("visited %d of 5 indices", len(order))
		}
	})
}

func TestParallelForNestedFanoutsRunSequentially(t *testing.T) {
	// A fan-out that starts while another is active must not stack a second
	// worker pool on top of the first: the inner ParallelFor runs inline on
	// its caller's goroutine, so inner iterations may touch caller-local
	// state without synchronization (the batch-path learners rely on this
	// inside GridSearch workers).
	withMaxParallelism(t, 4, func() {
		var innerTotal atomic.Int32
		ParallelFor(4, func(int) {
			local := 0 // written by the inner fn without synchronization
			ParallelFor(8, func(int) { local++ })
			if local != 8 {
				t.Errorf("inner fan-out was not sequential: local=%d", local)
			}
			innerTotal.Add(int32(local))
		})
		if got := innerTotal.Load(); got != 32 {
			t.Fatalf("inner iterations: got %d want 32", got)
		}
	})
}

func TestParallelismResolution(t *testing.T) {
	// Parallelism(n) is what the learners size per-worker scratch with; it
	// must never exceed n and must floor at 1 (including n = 0, where a
	// zero-size scratch allocation would be a footgun).
	withMaxParallelism(t, 8, func() {
		if got := Parallelism(3); got != 3 {
			t.Fatalf("Parallelism(3) with cap 8: got %d", got)
		}
		if got := Parallelism(0); got != 1 {
			t.Fatalf("Parallelism(0): got %d, want floor of 1", got)
		}
	})
	withMaxParallelism(t, 1, func() {
		if got := Parallelism(100); got != 1 {
			t.Fatalf("Parallelism(100) with cap 1: got %d", got)
		}
	})
}
