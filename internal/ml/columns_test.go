package ml

import (
	"testing"
)

// TestScanRowMajorMatchesAt pins the ScanRowMajor materialization to the
// scalar accessors on every backing the batch contract supports.
func TestScanRowMajorMatchesAt(t *testing.T) {
	for name, ds := range batchBackings(t) {
		block, labels := ScanRowMajor(ds)
		n, k := ds.NumExamples(), ds.NumFeatures()
		if len(block) != n*k {
			t.Fatalf("%s: block has %d values, want %d", name, len(block), n*k)
		}
		if len(labels) != n {
			t.Fatalf("%s: %d labels, want %d", name, len(labels), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				if got, want := block[i*k+j], ds.At(i, j); got != want {
					t.Fatalf("%s: block[%d,%d] = %d, At = %d", name, i, j, got, want)
				}
			}
		}
		for i, y := range labels {
			if want := ds.Label(i); y != want {
				t.Fatalf("%s: labels[%d] = %d, Label = %d", name, i, y, want)
			}
		}
	}
}

// TestExampleAccessorPathsAgree pins the row-at-a-time accessor to the
// materialized one on every backing: identical indices and labels are what
// make the learners' two paths bit-identical.
func TestExampleAccessorPathsAgree(t *testing.T) {
	for name, ds := range batchBackings(t) {
		enc := NewEncoder(ds.Features)
		rowAt := ExampleAccessor(ds, enc, true)
		colAt := ExampleAccessor(ds, enc, false)
		k := ds.NumFeatures()
		for i := 0; i < ds.NumExamples(); i++ {
			rIdx, rY := rowAt(i)
			cIdx, cY := colAt(i)
			if rY != cY {
				t.Fatalf("%s: label diverged at %d: %v vs %v", name, i, rY, cY)
			}
			if len(rIdx) != k || len(cIdx) != k {
				t.Fatalf("%s: index widths %d/%d, want %d", name, len(rIdx), len(cIdx), k)
			}
			for j := range rIdx {
				if rIdx[j] != cIdx[j] {
					t.Fatalf("%s: idx[%d,%d] diverged: %d vs %d", name, i, j, rIdx[j], cIdx[j])
				}
			}
		}
	}
}

// TestScanActiveIndicesMatchesEncoder pins the active-index matrix to the
// per-row Encoder.ActiveIndices contract on every backing.
func TestScanActiveIndicesMatchesEncoder(t *testing.T) {
	for name, ds := range batchBackings(t) {
		enc := NewEncoder(ds.Features)
		idx, labels := ScanActiveIndices(ds, enc)
		n, d := ds.NumExamples(), ds.NumFeatures()
		if len(idx) != n*d {
			t.Fatalf("%s: index matrix %d entries, want %d", name, len(idx), n*d)
		}
		if len(labels) != n {
			t.Fatalf("%s: %d labels, want %d", name, len(labels), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				if got, want := int(idx[i*d+j]), enc.Index(j, ds.At(i, j)); got != want {
					t.Fatalf("%s: idx[%d,%d] = %d, enc.Index = %d", name, i, j, got, want)
				}
			}
			if labels[i] != ds.Label(i) {
				t.Fatalf("%s: labels[%d] = %d, Label = %d", name, i, labels[i], ds.Label(i))
			}
		}
	}
}

// TestColumnHelpersDeterministicAcrossParallelism requires the fan-out
// helpers to produce identical output at any worker count — the writes are
// disjoint, so scheduling must never show through.
func TestColumnHelpersDeterministicAcrossParallelism(t *testing.T) {
	_, jv := viewStar(t, 300, 10, 7)
	cols := ViewColumns(jv, JoinAll, nil)
	ds, err := FromRelation(jv, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ds.Features)
	old := MaxParallelism
	defer func() { MaxParallelism = old }()

	MaxParallelism = 1
	seqBlock, seqLabels := ScanRowMajor(ds)
	seqIdx, _ := ScanActiveIndices(ds, enc)
	MaxParallelism = 8
	parBlock, parLabels := ScanRowMajor(ds)
	parIdx, _ := ScanActiveIndices(ds, enc)

	for i := range seqBlock {
		if seqBlock[i] != parBlock[i] {
			t.Fatalf("block[%d] diverged across parallelism: %d vs %d", i, seqBlock[i], parBlock[i])
		}
	}
	for i := range seqLabels {
		if seqLabels[i] != parLabels[i] {
			t.Fatalf("labels[%d] diverged across parallelism", i)
		}
	}
	for i := range seqIdx {
		if seqIdx[i] != parIdx[i] {
			t.Fatalf("idx[%d] diverged across parallelism", i)
		}
	}
}
