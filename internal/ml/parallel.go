package ml

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxParallelism caps the worker count of GridSearch and CrossValidate
// fan-outs. Zero (the default) means runtime.GOMAXPROCS(0); 1 forces the
// historical sequential execution. Results are reduced in deterministic
// order regardless of the setting, so it only affects wall-clock.
var MaxParallelism int

// parallelism resolves the effective worker count for n independent tasks.
func parallelism(n int) int {
	p := MaxParallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// parallelFor runs fn(i) for i in [0, n) on a worker pool. Iterations are
// claimed atomically, so scheduling is nondeterministic, but each index runs
// exactly once; callers write results into per-index slots and reduce them
// in index order afterwards to stay deterministic.
func parallelFor(n int, fn func(i int)) {
	workers := parallelism(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
