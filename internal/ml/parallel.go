package ml

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxParallelism caps the worker count of GridSearch and CrossValidate
// fan-outs. Zero (the default) means runtime.GOMAXPROCS(0); 1 forces the
// historical sequential execution. Results are reduced in deterministic
// order regardless of the setting, so it only affects wall-clock.
var MaxParallelism int

// parallelism resolves the effective worker count for n independent tasks.
func parallelism(n int) int {
	p := MaxParallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Parallelism reports the worker count parallel fan-outs (GridSearch,
// CrossValidate, ParallelFor) will use for n independent tasks under the
// current MaxParallelism setting. Batch-path learners size their per-worker
// scratch (morsel tally arrays) with it.
func Parallelism(n int) int { return parallelism(n) }

// ParallelFor runs fn(i) for i in [0, n) on a worker pool capped by
// MaxParallelism — the exported form of the fan-out GridSearch uses,
// shared with the learners' morsel-parallel training loops. Indices are
// claimed atomically, so scheduling is nondeterministic, but each index
// runs exactly once; callers write results into per-index slots (or
// commutative integer accumulators) and reduce in index order to stay
// deterministic.
func ParallelFor(n int, fn func(i int)) { parallelFor(n, fn) }

// activeFanouts counts parallelFor fan-outs currently in flight. A fan-out
// that starts while another is active (a batch-path learner Fit inside a
// GridSearch/CrossValidate worker) runs sequentially instead of stacking a
// second worker pool on top of the first — the outer level already owns the
// cores, and nesting would oversubscribe them up to P×P goroutines. Results
// are identical either way (per-index slots / commutative reductions); only
// scheduling changes.
var activeFanouts atomic.Int32

// parallelFor runs fn(i) for i in [0, n) on a worker pool. Iterations are
// claimed atomically, so scheduling is nondeterministic, but each index runs
// exactly once; callers write results into per-index slots and reduce them
// in index order afterwards to stay deterministic.
func parallelFor(n int, fn func(i int)) {
	workers := parallelism(n)
	if workers > 1 && activeFanouts.Load() > 0 {
		workers = 1
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	activeFanouts.Add(1)
	defer activeFanouts.Add(-1)
	var next atomic.Int64
	var wg sync.WaitGroup
	// A panic inside a worker goroutine would crash the process before the
	// caller's recover could see it (storage corruption surfaces as a typed
	// panic from segment faults). Capture the first one — value untouched, so
	// errors.As still matches — and re-throw it on the calling goroutine once
	// every worker has drained.
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					next.Store(int64(n)) // stop other workers claiming new work
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
