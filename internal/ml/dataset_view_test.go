package ml

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/rng"
)

// viewStar builds a one-dimension star schema and returns it with its lazy
// join view.
func viewStar(t *testing.T, nS, nR int, seed uint64) (*relational.StarSchema, *relational.JoinView) {
	t.Helper()
	r := rng.New(seed)
	keyDom := relational.NewDomain("RID", nR)
	dim := relational.NewTable("R", relational.MustSchema(
		relational.Column{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom},
		relational.Column{Name: "xr", Kind: relational.KindFeature, Domain: relational.NewDomain("xr", 4)},
		relational.Column{Name: "xr2", Kind: relational.KindFeature, Domain: relational.NewDomain("xr2", 4)},
	), nR)
	for i := 0; i < nR; i++ {
		dim.MustAppendRow([]relational.Value{relational.Value(i), relational.Value(r.Intn(4)), relational.Value(r.Intn(4))})
	}
	fact := relational.NewTable("S", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "xs", Kind: relational.KindFeature, Domain: relational.NewDomain("xs", 4)},
		relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"},
	), nS)
	for i := 0; i < nS; i++ {
		fact.MustAppendRow([]relational.Value{relational.Value(r.Intn(2)), relational.Value(r.Intn(4)), relational.Value(r.Intn(nR))})
	}
	ss, err := relational.NewStarSchema(fact, dim)
	if err != nil {
		t.Fatal(err)
	}
	jv, err := relational.NewJoinView(ss)
	if err != nil {
		t.Fatal(err)
	}
	return ss, jv
}

// sameDataset compares two datasets example by example through the safe
// accessors.
func sameDataset(t *testing.T, want, got *Dataset) {
	t.Helper()
	if want.NumExamples() != got.NumExamples() || want.NumFeatures() != got.NumFeatures() {
		t.Fatalf("shape (%d,%d) vs (%d,%d)",
			want.NumExamples(), want.NumFeatures(), got.NumExamples(), got.NumFeatures())
	}
	wbuf := make([]relational.Value, want.NumFeatures())
	gbuf := make([]relational.Value, got.NumFeatures())
	for i := 0; i < want.NumExamples(); i++ {
		if want.Label(i) != got.Label(i) {
			t.Fatalf("label %d: %d vs %d", i, want.Label(i), got.Label(i))
		}
		want.RowInto(wbuf, i)
		got.RowInto(gbuf, i)
		for j := range wbuf {
			if wbuf[j] != gbuf[j] {
				t.Fatalf("cell (%d,%d): %d vs %d", i, j, wbuf[j], gbuf[j])
			}
		}
	}
}

func TestViewDatasetObservesBaseWrites(t *testing.T) {
	// The documented aliasing contract: datasets are read-only *views*, so a
	// write to the base table must be visible through every layer of the
	// view stack (JoinView → ViewDataset → Subset → SelectFeatures).
	ss, jv := viewStar(t, 40, 6, 3)
	ds, err := ViewDataset(jv, ss.TargetCol, JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := ds.Subset([]int{5, 9, 5})
	// Feature order is xs, FK, R.xr, R.xr2; keep [R.xr, xs].
	sel := sub.SelectFeatures([]int{2, 0})

	// Write a home feature of fact row 9 (sub example 1, feature xs).
	old := ss.Fact.At(9, 1)
	newVal := (old + 1) % 4
	if err := ss.Fact.Set(9, 1, newVal); err != nil {
		t.Fatal(err)
	}
	if got := ds.At(9, 0); got != newVal {
		t.Fatalf("dataset did not observe fact write: %d want %d", got, newVal)
	}
	if got := sub.At(1, 0); got != newVal {
		t.Fatalf("subset did not observe fact write: %d want %d", got, newVal)
	}
	if got := sel.At(1, 1); got != newVal {
		t.Fatalf("feature-selected view did not observe fact write: %d want %d", got, newVal)
	}

	// Write a dimension feature reached through the FK indirection.
	fk := int(ss.Fact.At(5, 2))
	dim := ss.Dimensions["R"]
	oldXr := dim.At(fk, 1)
	newXr := (oldXr + 1) % 4
	if err := dim.Set(fk, 1, newXr); err != nil {
		t.Fatal(err)
	}
	if got := sel.At(0, 0); got != newXr {
		t.Fatalf("view stack did not observe dimension write: %d want %d", got, newXr)
	}

	// Labels read through too.
	oldY := ss.Fact.At(5, 0)
	if err := ss.Fact.Set(5, 0, 1-oldY); err != nil {
		t.Fatal(err)
	}
	if got := sel.Label(0); got != int8(1-oldY) {
		t.Fatalf("label did not read through: %d want %d", got, 1-oldY)
	}

	// A materialized snapshot is decoupled from subsequent writes.
	snap := sel.Materialize()
	if err := dim.Set(fk, 1, oldXr); err != nil {
		t.Fatal(err)
	}
	if got := snap.At(0, 0); got != newXr {
		t.Fatalf("materialized dataset changed under a base write: %d want %d", got, newXr)
	}
}

func TestViewCompositionMatchesMaterialized(t *testing.T) {
	ss, jv := viewStar(t, 60, 8, 7)
	full, err := ViewDataset(jv, ss.TargetCol, JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{59, 0, 17, 17, 33, 2}
	keep := []int{3, 1, 0}

	lazy := full.Subset(idx).SelectFeatures(keep)
	eager := full.Materialize().Subset(idx).Materialize().SelectFeatures(keep)
	sameDataset(t, eager, lazy)
	// And the other composition order.
	lazy2 := full.SelectFeatures(keep).Subset(idx)
	sameDataset(t, eager, lazy2)
	// Materializing the lazy stack is a fixed point.
	sameDataset(t, lazy, lazy.Materialize())

	if lazy.Materialize() == lazy {
		t.Fatal("view must materialize to a new dense dataset")
	}
	dense := lazy.Materialize()
	if dense.Materialize() != dense {
		t.Fatal("dense dataset must materialize to itself")
	}
}

func TestRowScratchAndHandles(t *testing.T) {
	ss, jv := viewStar(t, 20, 4, 11)
	ds, err := ViewDataset(jv, ss.TargetCol, JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row on a view-backed dataset reuses scratch: a second call clobbers
	// the first result. RowInto with a caller buffer is stable.
	stable := make([]relational.Value, ds.NumFeatures())
	ds.RowInto(stable, 0)
	r0 := ds.Row(0)
	_ = ds.Row(1)
	same := true
	for j := range r0 {
		if r0[j] != stable[j] {
			same = false
		}
	}
	if same && ds.NumFeatures() > 0 {
		// Rows 0 and 1 could coincide; force distinction via direct check.
		distinct := false
		for j := 0; j < ds.NumFeatures(); j++ {
			if ds.At(0, j) != ds.At(1, j) {
				distinct = true
			}
		}
		if distinct {
			t.Fatal("Row(1) did not reuse the scratch buffer; the zero-copy contract changed")
		}
	}

	// Handles have independent scratch: interleaved reads don't clobber.
	h1, h2 := ds.Handle(), ds.Handle()
	if h1 == ds || h1 == h2 {
		t.Fatal("view-backed handles must be distinct values")
	}
	a := h1.Row(2)
	b := h2.Row(3)
	for j := range a {
		if a[j] != ds.At(2, j) {
			t.Fatalf("h1 row clobbered at %d", j)
		}
		if b[j] != ds.At(3, j) {
			t.Fatalf("h2 row wrong at %d", j)
		}
	}

	// Dense datasets alias storage; Handle is the identity.
	dense := ds.Materialize()
	if dense.Handle() != dense {
		t.Fatal("dense handle must be the dataset itself")
	}
	dr := dense.Row(2)
	_ = dense.Row(3)
	for j := range dr {
		if dr[j] != dense.At(2, j) {
			t.Fatal("dense rows must not share scratch")
		}
	}
}

func TestMaterializedRowsAreStable(t *testing.T) {
	ss, jv := viewStar(t, 15, 3, 13)
	ds, err := ViewDataset(jv, ss.TargetCol, JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := ds.MaterializedRows()
	if len(rows) != ds.NumExamples() {
		t.Fatalf("rows %d", len(rows))
	}
	// Stable: untouched by subsequent scratch use on the dataset.
	want := append([]relational.Value(nil), rows[4]...)
	_ = ds.Row(7)
	_ = ds.Row(8)
	for j := range want {
		if rows[4][j] != want[j] {
			t.Fatal("materialized rows must not alias scratch")
		}
		if rows[4][j] != ds.At(4, j) {
			t.Fatal("materialized row content wrong")
		}
	}
}

func TestGridSearchParallelMatchesSequential(t *testing.T) {
	ss, jv := viewStar(t, 80, 5, 17)
	full, err := ViewDataset(jv, ss.TargetCol, JoinAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	train := full.Subset(seqIdx(0, 40))
	val := full.Subset(seqIdx(40, 80))
	grid := NewGrid().Axis("thresh", 0, 1, 2, 3, 4, 5)
	factory := func(p GridPoint) (Classifier, error) {
		return &thresholdClassifier{thresh: p["thresh"]}, nil
	}

	defer func() { MaxParallelism = 0 }()
	MaxParallelism = 1
	seq, err := GridSearch(grid, factory, train, val)
	if err != nil {
		t.Fatal(err)
	}
	MaxParallelism = 8
	par, err := GridSearch(grid, factory, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestValAcc != par.BestValAcc || seq.BestPoint["thresh"] != par.BestPoint["thresh"] ||
		seq.PointsTried != par.PointsTried {
		t.Fatalf("parallel grid search diverged: %+v vs %+v", seq, par)
	}

	MaxParallelism = 1
	cvSeq, err := CrossValidate(func() (Classifier, error) { return &thresholdClassifier{thresh: 2}, nil },
		full, 5, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	MaxParallelism = 8
	cvPar, err := CrossValidate(func() (Classifier, error) { return &thresholdClassifier{thresh: 2}, nil },
		full, 5, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if cvSeq != cvPar {
		t.Fatalf("parallel cross-validation diverged: %v vs %v", cvSeq, cvPar)
	}
}

func seqIdx(from, to int) []int {
	out := make([]int, to-from)
	for i := range out {
		out[i] = from + i
	}
	return out
}
