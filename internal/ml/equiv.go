package ml

import (
	"fmt"
	"math"

	"repro/internal/relational"
)

// This file is the accuracy-level verification tier's measurement core.
//
// The repo's first tier of equivalence is bit-identity: an optimized access
// path must reproduce the reference model's parameters exactly (the
// RowAtATime A/B tests). Some optimizations cannot clear that bar by
// construction — they change the optimization trajectory, not just the data
// movement — so the second tier asks the question that actually matters for
// the paper's claims: does the approximate path learn a model of the same
// held-out quality? CompareClassifiers measures that divergence and
// Tolerance bounds it; core.VerifyAccuracy runs the measurement across the
// dataset × engine matrix for every registered approximate kernel.

// Prober is an optional Classifier extension exposing the positive-class
// probability; when both sides of a comparison implement it, the harness
// also reports a held-out log-loss delta.
type Prober interface {
	Probability(row []relational.Value) float64
}

// Tolerance bounds the acceptable held-out divergence between a reference
// classifier and an approximate sibling. Zero-valued fields are not
// checked.
type Tolerance struct {
	// AccDelta caps |refAcc − approxAcc| on the holdout split.
	AccDelta float64
	// Disagreement caps the fraction of holdout examples the two fitted
	// models classify differently. Accuracy deltas can cancel (the approx
	// model trading wins for losses nets to zero); disagreement cannot, so
	// it catches a model that is "equally accurate" by being differently
	// wrong everywhere.
	Disagreement float64
	// LossDelta caps |refLoss − approxLoss| (mean log-loss) when both
	// classifiers expose probabilities; ignored otherwise.
	LossDelta float64
}

// EquivDelta is one measured reference/approximate divergence.
type EquivDelta struct {
	RefAcc, ApproxAcc float64
	// Disagreement is the fraction of holdout examples classified
	// differently by the two models.
	Disagreement float64
	// RefLoss/ApproxLoss are mean log-losses, valid only when HasLoss (both
	// classifiers implement Prober).
	RefLoss, ApproxLoss float64
	HasLoss             bool
}

// AccDelta returns |RefAcc − ApproxAcc|.
func (d EquivDelta) AccDelta() float64 { return math.Abs(d.RefAcc - d.ApproxAcc) }

// LossDelta returns |RefLoss − ApproxLoss| (0 when losses were not
// measured).
func (d EquivDelta) LossDelta() float64 {
	if !d.HasLoss {
		return 0
	}
	return math.Abs(d.RefLoss - d.ApproxLoss)
}

// Check returns a descriptive error when the measured divergence exceeds
// the tolerance, nil when it is within.
func (t Tolerance) Check(d EquivDelta) error {
	if t.AccDelta > 0 && d.AccDelta() > t.AccDelta {
		return fmt.Errorf("accuracy delta %.4f exceeds tolerance %.4f (ref %.4f, approx %.4f)",
			d.AccDelta(), t.AccDelta, d.RefAcc, d.ApproxAcc)
	}
	if t.Disagreement > 0 && d.Disagreement > t.Disagreement {
		return fmt.Errorf("disagreement %.4f exceeds tolerance %.4f", d.Disagreement, t.Disagreement)
	}
	if t.LossDelta > 0 && d.HasLoss && d.LossDelta() > t.LossDelta {
		return fmt.Errorf("log-loss delta %.4f exceeds tolerance %.4f (ref %.4f, approx %.4f)",
			d.LossDelta(), t.LossDelta, d.RefLoss, d.ApproxLoss)
	}
	return nil
}

// predictions scores every example once, through the batched path when the
// classifier offers one (the scratch-row copy mirrors Accuracy's: Predict
// implementations may retain nothing, but Row's shared scratch cannot be
// handed to them while labels are read interleaved).
func predictions(c Classifier, ds *Dataset) []int8 {
	if bp, ok := c.(BatchPredictor); ok {
		return bp.PredictBatch(ds)
	}
	n := ds.NumExamples()
	out := make([]int8, n)
	buf := make([]relational.Value, ds.NumFeatures())
	for i := 0; i < n; i++ {
		out[i] = c.Predict(ds.RowInto(buf, i))
	}
	return out
}

// logLoss is the mean cross-entropy of p's probabilities against the
// labels, with the probabilities clamped away from {0, 1} so one saturated
// wrong answer cannot dominate the mean.
func logLoss(p Prober, ds *Dataset) float64 {
	const clamp = 1e-12
	n := ds.NumExamples()
	if n == 0 {
		return 0
	}
	buf := make([]relational.Value, ds.NumFeatures())
	sum := 0.0
	for i := 0; i < n; i++ {
		pr := p.Probability(ds.RowInto(buf, i))
		if pr < clamp {
			pr = clamp
		} else if pr > 1-clamp {
			pr = 1 - clamp
		}
		if ds.Label(i) == 1 {
			sum -= math.Log(pr)
		} else {
			sum -= math.Log(1 - pr)
		}
	}
	return sum / float64(n)
}

// CompareClassifiers scores two fitted classifiers on the same holdout
// dataset and returns their divergence: per-side accuracy, the example-wise
// disagreement rate, and (when both expose probabilities) mean log-losses.
// Both classifiers must already be fitted.
func CompareClassifiers(ref, approx Classifier, holdout *Dataset) EquivDelta {
	n := holdout.NumExamples()
	pr := predictions(ref, holdout)
	pa := predictions(approx, holdout)
	var refHit, approxHit, differ int
	for i := 0; i < n; i++ {
		truth := holdout.Label(i)
		if pr[i] == truth {
			refHit++
		}
		if pa[i] == truth {
			approxHit++
		}
		if pr[i] != pa[i] {
			differ++
		}
	}
	d := EquivDelta{}
	if n > 0 {
		d.RefAcc = float64(refHit) / float64(n)
		d.ApproxAcc = float64(approxHit) / float64(n)
		d.Disagreement = float64(differ) / float64(n)
	}
	rp, rok := ref.(Prober)
	ap, aok := approx.(Prober)
	if rok && aok {
		d.RefLoss = logLoss(rp, holdout)
		d.ApproxLoss = logLoss(ap, holdout)
		d.HasLoss = true
	}
	return d
}
