package ml

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/rng"
)

func TestKFoldPartitions(t *testing.T) {
	r := rng.New(1)
	folds, err := KFold(10, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("folds cover %d of 10 indices", len(seen))
	}
	// Sizes differ by at most one.
	min, max := 99, 0
	for _, f := range folds {
		if len(f) < min {
			min = len(f)
		}
		if len(f) > max {
			max = len(f)
		}
	}
	if max-min > 1 {
		t.Fatalf("fold sizes unbalanced: min %d max %d", min, max)
	}
}

func TestKFoldValidation(t *testing.T) {
	r := rng.New(2)
	if _, err := KFold(10, 1, r); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := KFold(2, 5, r); err == nil {
		t.Fatal("n < k must error")
	}
}

// cvDataset: feature 0 predicts the label with 10% noise.
func cvDataset(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	ds := &Dataset{Features: []Feature{
		{Name: "sig", Cardinality: 2},
		{Name: "noise", Cardinality: 4},
	}}
	for i := 0; i < n; i++ {
		x := r.Intn(2)
		y := int8(x)
		if r.Bernoulli(0.1) {
			y = 1 - y
		}
		ds.X = append(ds.X, relational.Value(x), relational.Value(r.Intn(4)))
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestCrossValidateEstimatesAccuracy(t *testing.T) {
	ds := cvDataset(500, 3)
	acc, err := CrossValidate(func() (Classifier, error) {
		return &thresholdClassifier{thresh: 1}, nil
	}, ds, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// The threshold classifier matches the signal: CV accuracy ≈ 0.9.
	if acc < 0.85 || acc > 0.95 {
		t.Fatalf("CV accuracy %v, want ≈0.9", acc)
	}
}

func TestGridSearchCVPicksSignalThreshold(t *testing.T) {
	ds := cvDataset(300, 5)
	grid := NewGrid().Axis("thresh", 0, 1, 2)
	res, err := GridSearchCV(grid, func(p GridPoint) (Classifier, error) {
		return &thresholdClassifier{thresh: p["thresh"]}, nil
	}, ds, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint["thresh"] != 1 {
		t.Fatalf("best point %v, want thresh=1", res.BestPoint)
	}
	if res.PointsTried != 3 || res.Best == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
}

func TestGridSearchCVDeterministic(t *testing.T) {
	ds := cvDataset(200, 9)
	grid := NewGrid().Axis("thresh", 0, 1, 2)
	run := func() float64 {
		res, err := GridSearchCV(grid, func(p GridPoint) (Classifier, error) {
			return &thresholdClassifier{thresh: p["thresh"]}, nil
		}, ds, 4, 13)
		if err != nil {
			t.Fatal(err)
		}
		return res.BestValAcc
	}
	if run() != run() {
		t.Fatal("same seed must reproduce CV results")
	}
}
