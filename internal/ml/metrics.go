package ml

import "repro/internal/obs"

// scanSpan times the column-at-a-time training-set materializations — the
// "scan" phase of every columnar Fit. One observation per ScanRowMajor /
// ScanActiveIndices call, so the cost is two clock reads per Fit, not per row.
var scanSpan = obs.TrainSpan("scan",
	"column-at-a-time feature scans materializing training blocks")
