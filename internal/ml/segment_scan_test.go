package ml

import (
	"testing"

	"repro/internal/relational"
)

// requireValidCuts checks the ScanSpans contract: monotonic cut points
// covering exactly [0, n].
func requireValidCuts(t *testing.T, cuts []int, n int) {
	t.Helper()
	if len(cuts) < 2 || cuts[0] != 0 || cuts[len(cuts)-1] != n {
		t.Fatalf("cuts %v do not cover [0, %d]", cuts, n)
	}
	for s := 1; s < len(cuts); s++ {
		if cuts[s] < cuts[s-1] {
			t.Fatalf("cuts %v not monotonic at %d", cuts, s)
		}
	}
}

// TestScanSpansSegmentAligned checks that over an unremapped segmented
// relation every span stays within one segment (the segment-per-task
// property), across table sizes above and below the worker pool's appetite.
func TestScanSpansSegmentAligned(t *testing.T) {
	_, jv := viewStar(t, 600, 12, 9)
	cols := ViewColumns(jv, JoinAll, nil)
	for _, segSize := range []int{32, 100, 1 << 20} {
		st, err := relational.MaterializeSegmented(jv, "st", relational.SegmentOptions{SegmentSize: segSize})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := FromRelation(st, cols, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := ds.NumExamples()
		cuts := ScanSpans(ds)
		requireValidCuts(t, cuts, n)
		for s := 1; s < len(cuts)-1; s++ {
			// Interior cuts must not make any span straddle a segment
			// boundary: a span's first and last row share a segment.
			lo, hi := cuts[s-1], cuts[s]-1
			if hi >= lo && lo/segSize != hi/segSize {
				t.Fatalf("segSize %d: span [%d,%d] straddles a segment boundary (cuts %v)", segSize, lo, hi, cuts)
			}
		}
	}
}

// TestScanSpansFallbacks checks the arithmetic spans on non-segmented and
// row-remapped datasets, and the empty edge.
func TestScanSpansFallbacks(t *testing.T) {
	_, jv := viewStar(t, 300, 12, 9)
	cols := ViewColumns(jv, JoinAll, nil)
	ds, err := FromRelation(jv, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireValidCuts(t, ScanSpans(ds), ds.NumExamples())

	st, err := relational.MaterializeSegmented(jv, "st", relational.SegmentOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	segDS, err := FromRelation(st, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub := segDS.Subset([]int{5, 1, 200, 9})
	requireValidCuts(t, ScanSpans(sub), 4)

	requireValidCuts(t, ScanSpans(segDS.Subset([]int{})), 0)
}

// TestScanRowMajorSpilledSegmented runs the (feature, span) fan-out against
// an out-of-core segmented table whose cache budget holds only a fraction of
// the segments: concurrent scan tasks fault, pin, and evict segments under
// each other. Under -race this is the fan-out half of the concurrency
// satellite; the assertion pins bit-identical output vs the dense dataset.
func TestScanRowMajorSpilledSegmented(t *testing.T) {
	_, jv := viewStar(t, 800, 12, 9)
	cols := ViewColumns(jv, JoinAll, nil)
	st, err := relational.MaterializeSegmented(jv, "st", relational.SegmentOptions{
		SegmentSize: 64,
		SpillDir:    t.TempDir(),
		CacheBytes:  2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ds, err := FromRelation(st, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FromRelation(jv, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBlock, wantLabels := ScanRowMajor(ref.Materialize())
	gotBlock, gotLabels := ScanRowMajor(ds)
	if len(wantBlock) != len(gotBlock) {
		t.Fatalf("block sizes diverged: %d vs %d", len(wantBlock), len(gotBlock))
	}
	for i := range wantBlock {
		if wantBlock[i] != gotBlock[i] {
			t.Fatalf("block[%d]: want %d got %d", i, wantBlock[i], gotBlock[i])
		}
	}
	for i := range wantLabels {
		if wantLabels[i] != gotLabels[i] {
			t.Fatalf("labels[%d]: want %d got %d", i, wantLabels[i], gotLabels[i])
		}
	}
}

// TestFeatureRangeRouting checks FeatureRange resolves through column remaps
// to the segmented source's zone-map fold, and reports no range for dense or
// statistics-free backings.
func TestFeatureRangeRouting(t *testing.T) {
	_, jv := viewStar(t, 400, 12, 9)
	cols := ViewColumns(jv, JoinAll, nil)
	st, err := relational.MaterializeSegmented(jv, "st", relational.SegmentOptions{SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromRelation(st, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < ds.NumFeatures(); j++ {
		lo, hi, ok := ds.FeatureRange(j)
		if !ok {
			t.Fatalf("feature %d: no range over segmented backing", j)
		}
		// The bound must cover every visible value (sound over-approximation).
		n := ds.NumExamples()
		for i := 0; i < n; i++ {
			if v := ds.At(i, j); v < lo || v > hi {
				t.Fatalf("feature %d: value %d outside reported range [%d,%d]", j, v, lo, hi)
			}
		}
	}
	// A feature remap must consult the right source column.
	remap := ds.SelectFeatures([]int{ds.NumFeatures() - 1})
	lo, hi, ok := remap.FeatureRange(0)
	wlo, whi, wok := ds.FeatureRange(ds.NumFeatures() - 1)
	if ok != wok || lo != wlo || hi != whi {
		t.Fatalf("remapped FeatureRange = [%d,%d] %v, want [%d,%d] %v", lo, hi, ok, wlo, whi, wok)
	}
	if _, _, ok := ds.Materialize().FeatureRange(0); ok {
		t.Fatal("dense dataset must report no feature range")
	}
	refDS, err := FromRelation(jv, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := refDS.FeatureRange(0); ok {
		t.Fatal("join view has no statistics; FeatureRange must report none")
	}
}
