package ml

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// View names the three feature sets the paper compares on every dataset
// (§3.2, §4): JoinAll uses [X_S, FK, X_R]; NoJoin drops all foreign features
// a priori, keeping [X_S, FK]; NoFK keeps [X_S, X_R] but drops the foreign
// keys themselves.
type View int

const (
	// JoinAll is the current widespread practice: join every table, use
	// home features, foreign keys, and foreign features.
	JoinAll View = iota
	// NoJoin avoids all joins: home features and foreign keys only. This is
	// the approach whose safety the paper studies.
	NoJoin
	// NoFK keeps everything except the foreign-key columns; the paper uses
	// it as a probe for whether FKs themselves carry signal.
	NoFK
)

func (v View) String() string {
	switch v {
	case JoinAll:
		return "JoinAll"
	case NoJoin:
		return "NoJoin"
	case NoFK:
		return "NoFK"
	default:
		return fmt.Sprintf("View(%d)", int(v))
	}
}

// ViewColumns selects the feature column indices of a joined table that a
// view uses. Foreign features are recognized by the "<dim>." name prefix
// introduced by relational.Join. Open-domain foreign keys (Column.Open) are
// excluded from every view, as the paper does for Expedia's search id —
// their values cannot recur at test time, so they are unusable as features.
//
// omitDims optionally drops the foreign features of specific dimension
// tables only (used by the Table 4 robustness sweep); nil means no extra
// omissions.
func ViewColumns(joined relational.Relation, v View, omitDims map[string]bool) []int {
	var cols []int
	for i, c := range joined.Schema().Cols {
		switch c.Kind {
		case relational.KindForeignKey:
			if c.Open {
				continue
			}
			if v == NoFK {
				continue
			}
			cols = append(cols, i)
		case relational.KindFeature:
			dim, isForeign := foreignDim(c.Name)
			if isForeign {
				if v == NoJoin {
					continue
				}
				if omitDims[dim] {
					continue
				}
			}
			cols = append(cols, i)
		}
	}
	return cols
}

// foreignDim splits a joined column name "<dim>.<feat>" and reports whether
// the column is a foreign feature.
func foreignDim(name string) (string, bool) {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i], true
	}
	return "", false
}

// ViewDataset builds the supervised dataset for a view over a joined table.
func ViewDataset(joined relational.Relation, targetCol int, v View, omitDims map[string]bool) (*Dataset, error) {
	cols := ViewColumns(joined, v, omitDims)
	if len(cols) == 0 {
		return nil, fmt.Errorf("ml: view %v selects no feature columns", v)
	}
	return FromTable(joined, cols, targetCol)
}
