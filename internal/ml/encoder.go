package ml

import "repro/internal/relational"

// Encoder maps (feature, value) pairs to dense one-hot dimensions. Linear
// models keep one weight per dimension; the ANN keeps one embedding row per
// dimension. Offsets[j] is the first dimension of feature j; the total
// one-hot width is Dims.
type Encoder struct {
	Offsets []int
	Dims    int
}

// NewEncoder builds the offset table for a feature list.
func NewEncoder(features []Feature) *Encoder {
	e := &Encoder{Offsets: make([]int, len(features))}
	for j, f := range features {
		e.Offsets[j] = e.Dims
		e.Dims += f.Cardinality
	}
	return e
}

// Index returns the one-hot dimension of value v of feature j.
func (e *Encoder) Index(j int, v relational.Value) int {
	return e.Offsets[j] + int(v)
}

// ActiveIndices fills dst with the one-hot dimensions active for the given
// row and returns it. len(dst) must equal the number of features.
func (e *Encoder) ActiveIndices(row []relational.Value, dst []int) []int {
	for j, v := range row {
		dst[j] = e.Offsets[j] + int(v)
	}
	return dst
}

// MatchCount returns the number of features on which two rows agree — the
// dot product of their one-hot encodings. All kernels in this study reduce
// to functions of this count:
//
//	linear:    k(x,z) = matches
//	poly(d=2): k(x,z) = (γ·matches)²   [e1071's polynomial form with coef0=0]
//	RBF:       k(x,z) = exp(−γ·‖x−z‖²) = exp(−2γ·(d − matches))
//
// since for one-hot categorical vectors ‖x−z‖² = 2(d − matches). Computing
// kernels this way is exact and avoids materializing one-hot vectors; the
// equivalence is checked by TestKernelsMatchExplicitOneHot and benchmarked by
// the kernel ablation bench.
func MatchCount(a, b []relational.Value) int {
	m := 0
	for i := range a {
		if a[i] == b[i] {
			m++
		}
	}
	return m
}
