package ml

import (
	"math"
	"strings"
	"testing"

	"repro/internal/relational"
)

// tableClassifier predicts from a fixed lookup over feature 0 — a stub with
// controllable predictions (and optional probabilities) for harness tests.
type tableClassifier struct {
	byCode []int8
	probs  []float64 // optional; enables the Prober extension via probed
}

func (c *tableClassifier) Fit(*Dataset) error { return nil }
func (c *tableClassifier) Predict(row []relational.Value) int8 {
	return c.byCode[int(row[0])]
}

type probedTable struct{ tableClassifier }

func (c *probedTable) Probability(row []relational.Value) float64 {
	return c.probs[int(row[0])]
}

// equivDataset has one feature with four codes, one example each, labels
// 0,0,1,1 — so table stubs can dial in any accuracy/disagreement pattern.
func equivDataset() *Dataset {
	return &Dataset{
		Features: []Feature{{Name: "a", Cardinality: 4}},
		X:        []relational.Value{0, 1, 2, 3},
		Y:        []int8{0, 0, 1, 1},
	}
}

func TestCompareClassifiersDeltas(t *testing.T) {
	ds := equivDataset()
	ref := &tableClassifier{byCode: []int8{0, 0, 1, 1}}    // 4/4 correct
	approx := &tableClassifier{byCode: []int8{0, 1, 0, 1}} // 2/4 correct, differs on 2
	d := CompareClassifiers(ref, approx, ds)
	if d.RefAcc != 1 || d.ApproxAcc != 0.5 {
		t.Fatalf("accuracies = %v/%v, want 1/0.5", d.RefAcc, d.ApproxAcc)
	}
	if d.AccDelta() != 0.5 || d.Disagreement != 0.5 {
		t.Fatalf("delta %v disagreement %v, want 0.5/0.5", d.AccDelta(), d.Disagreement)
	}
	if d.HasLoss {
		t.Fatal("plain stubs expose no probabilities; HasLoss must be false")
	}
}

func TestCompareClassifiersDisagreementCatchesCancellation(t *testing.T) {
	// Both models score 2/4, but on disjoint examples: the accuracy delta
	// is 0 while half the holdout flips class — exactly the failure mode
	// the disagreement bound exists for.
	ds := equivDataset()
	ref := &tableClassifier{byCode: []int8{0, 1, 1, 0}}
	approx := &tableClassifier{byCode: []int8{1, 0, 0, 1}}
	d := CompareClassifiers(ref, approx, ds)
	if d.AccDelta() != 0 {
		t.Fatalf("acc delta = %v, want 0", d.AccDelta())
	}
	if d.Disagreement != 1 {
		t.Fatalf("disagreement = %v, want 1", d.Disagreement)
	}
	if err := (Tolerance{AccDelta: 0.01}).Check(d); err != nil {
		t.Fatalf("accuracy-only tolerance should pass: %v", err)
	}
	if err := (Tolerance{AccDelta: 0.01, Disagreement: 0.25}).Check(d); err == nil {
		t.Fatal("disagreement bound should reject total prediction flip")
	}
}

func TestCompareClassifiersLogLoss(t *testing.T) {
	ds := equivDataset()
	ref := &probedTable{tableClassifier{byCode: []int8{0, 0, 1, 1}}}
	ref.probs = []float64{0.1, 0.1, 0.9, 0.9}
	approx := &probedTable{tableClassifier{byCode: []int8{0, 0, 1, 1}}}
	approx.probs = []float64{0.2, 0.2, 0.8, 0.8}
	d := CompareClassifiers(ref, approx, ds)
	if !d.HasLoss {
		t.Fatal("both sides implement Prober; losses must be measured")
	}
	wantRef := -math.Log(0.9)
	wantApprox := -math.Log(0.8)
	if math.Abs(d.RefLoss-wantRef) > 1e-12 || math.Abs(d.ApproxLoss-wantApprox) > 1e-12 {
		t.Fatalf("losses = %v/%v, want %v/%v", d.RefLoss, d.ApproxLoss, wantRef, wantApprox)
	}
	if err := (Tolerance{LossDelta: 0.05}).Check(d); err == nil {
		t.Fatal("loss delta ~0.118 must exceed a 0.05 bound")
	}
	if err := (Tolerance{LossDelta: 0.2}).Check(d); err != nil {
		t.Fatalf("loss delta within 0.2 bound should pass: %v", err)
	}
}

func TestToleranceCheckMessages(t *testing.T) {
	d := EquivDelta{RefAcc: 0.9, ApproxAcc: 0.8, Disagreement: 0.3}
	err := (Tolerance{AccDelta: 0.05}).Check(d)
	if err == nil || !strings.Contains(err.Error(), "accuracy delta") {
		t.Fatalf("want accuracy-delta error, got %v", err)
	}
	err = (Tolerance{AccDelta: 0.2, Disagreement: 0.1}).Check(d)
	if err == nil || !strings.Contains(err.Error(), "disagreement") {
		t.Fatalf("want disagreement error, got %v", err)
	}
	if err := (Tolerance{}).Check(d); err != nil {
		t.Fatalf("zero tolerance checks nothing, got %v", err)
	}
}
