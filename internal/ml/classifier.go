package ml

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relational"
)

// Classifier is the interface every learner implements. Fit trains on a
// dataset; Predict classifies one example given as categorical codes in the
// same feature order the model was trained with.
type Classifier interface {
	Fit(train *Dataset) error
	Predict(row []relational.Value) int8
}

// Named is implemented by classifiers that expose a display name for report
// rows (e.g. "Decision Tree (gini)").
type Named interface {
	Name() string
}

// BatchPredictor is an optional Classifier extension: PredictBatch
// classifies every example of a dataset in one batched pass — typically a
// mat kernel over the dataset's active-index matrix instead of a per-example
// row gather and Predict call. Implementations must return exactly the class
// Predict returns for every example (the evaluation paths treat the two as
// interchangeable), with out[i] the class of example i.
type BatchPredictor interface {
	PredictBatch(ds *Dataset) []int8
}

// Accuracy returns the fraction of examples in ds classified correctly by c.
// Classifiers implementing BatchPredictor are scored in one batched pass;
// for the rest, rows are copied into a local buffer before prediction so
// that classifiers which internally iterate the same dataset (1-NN evaluated
// on its own training set) never see their argument clobbered by scratch
// reuse. The two paths count identical classes, so the choice never changes
// an accuracy.
func Accuracy(c Classifier, ds *Dataset) float64 {
	n := ds.NumExamples()
	if n == 0 {
		return 0
	}
	correct := 0
	if bp, ok := c.(BatchPredictor); ok {
		for i, cls := range bp.PredictBatch(ds) {
			if cls == ds.Label(i) {
				correct++
			}
		}
		return float64(correct) / float64(n)
	}
	buf := make([]relational.Value, ds.NumFeatures())
	for i := 0; i < n; i++ {
		if c.Predict(ds.RowInto(buf, i)) == ds.Label(i) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// Error returns the 0-1 loss of c on ds (1 − Accuracy).
func Error(c Classifier, ds *Dataset) float64 {
	return 1 - Accuracy(c, ds)
}

// Confusion is a 2×2 confusion matrix for binary classification.
type Confusion struct {
	TP, FP, TN, FN int
}

// Confuse evaluates c on ds and tallies the confusion matrix.
func Confuse(c Classifier, ds *Dataset) Confusion {
	var m Confusion
	buf := make([]relational.Value, ds.NumFeatures())
	for i := 0; i < ds.NumExamples(); i++ {
		pred, truth := c.Predict(ds.RowInto(buf, i)), ds.Label(i)
		switch {
		case pred == 1 && truth == 1:
			m.TP++
		case pred == 1 && truth == 0:
			m.FP++
		case pred == 0 && truth == 0:
			m.TN++
		default:
			m.FN++
		}
	}
	return m
}

// Accuracy returns the accuracy implied by the confusion matrix.
func (m Confusion) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// GridPoint is one hyper-parameter assignment: a name → value map.
type GridPoint map[string]float64

// clone copies a grid point.
func (g GridPoint) clone() GridPoint {
	out := make(GridPoint, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// String renders the point with sorted keys for deterministic logs.
func (g GridPoint) String() string {
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%g", k, g[k])
	}
	return s + "}"
}

// Grid enumerates the cross product of per-parameter value axes, exactly the
// "standard grid search" of §3.2.
type Grid struct {
	names []string
	axes  [][]float64
}

// NewGrid returns an empty grid (a single empty point).
func NewGrid() *Grid { return &Grid{} }

// Axis appends a parameter axis and returns the grid for chaining.
func (g *Grid) Axis(name string, values ...float64) *Grid {
	g.names = append(g.names, name)
	g.axes = append(g.axes, append([]float64(nil), values...))
	return g
}

// Points enumerates every point in the cross product, in deterministic
// lexicographic order of the axes as added.
func (g *Grid) Points() []GridPoint {
	points := []GridPoint{{}}
	for ai, name := range g.names {
		var next []GridPoint
		for _, p := range points {
			for _, v := range g.axes[ai] {
				q := p.clone()
				q[name] = v
				next = append(next, q)
			}
		}
		points = next
	}
	return points
}

// Factory constructs a classifier for a grid point.
type Factory func(GridPoint) (Classifier, error)

// TuneResult reports a completed grid search.
type TuneResult struct {
	Best        Classifier
	BestPoint   GridPoint
	BestValAcc  float64
	PointsTried int
}

// GridSearch trains a classifier at every grid point on train, evaluates on
// validation accuracy, and refits nothing: the best already-fitted model is
// returned (the paper tunes on the validation split and reports holdout test
// accuracy of the tuned model). Ties keep the earlier point, making results
// deterministic.
//
// Grid points are fitted and evaluated on a worker pool (see
// MaxParallelism): classifiers are constructed sequentially — factories need
// not be safe for concurrent calls — then each worker fits on its own
// Dataset handle and the winner is reduced online (max accuracy, earliest
// grid index on ties), so the result is bit-identical to a sequential run.
// View-backed datasets make the per-worker handles free.
func GridSearch(grid *Grid, factory Factory, train, validation *Dataset) (TuneResult, error) {
	points := grid.Points()
	if len(points) == 0 {
		return TuneResult{}, fmt.Errorf("ml: empty grid")
	}
	models := make([]Classifier, len(points))
	for i, p := range points {
		c, err := factory(p)
		if err != nil {
			return TuneResult{}, fmt.Errorf("ml: grid point %v: %w", p, err)
		}
		models[i] = c
	}
	// Online winner reduction: losers become garbage as soon as they are
	// judged, so at most workers+1 fitted models are live at once. Per-point
	// accuracies are deterministic, so "max accuracy, earliest grid index on
	// ties" selects the same winner as the historical sequential loop
	// regardless of completion order.
	var mu sync.Mutex
	res := TuneResult{BestValAcc: -1}
	bestIdx := -1
	errs := make([]error, len(points))
	parallelFor(len(points), func(i int) {
		c := models[i]
		models[i] = nil
		if err := c.Fit(train.Handle()); err != nil {
			errs[i] = fmt.Errorf("ml: fit at %v: %w", points[i], err)
			return
		}
		acc := Accuracy(c, validation.Handle())
		mu.Lock()
		if acc > res.BestValAcc || (acc == res.BestValAcc && i < bestIdx) {
			res.Best = c
			res.BestPoint = points[i]
			res.BestValAcc = acc
			bestIdx = i
		}
		mu.Unlock()
	})
	for _, err := range errs {
		if err != nil {
			return TuneResult{}, err
		}
	}
	res.PointsTried = len(points)
	return res, nil
}

// ConstantClassifier predicts a fixed class; the baseline for sanity checks
// and the fallback for degenerate training sets.
type ConstantClassifier struct{ Class int8 }

// Fit sets the class to the training majority.
func (c *ConstantClassifier) Fit(train *Dataset) error {
	c.Class = train.MajorityClass()
	return nil
}

// Predict returns the fixed class.
func (c *ConstantClassifier) Predict([]relational.Value) int8 { return c.Class }

// ExportLinear implements LinearExporter: a constant model is the degenerate
// linear model with zero weights and a bias carrying the class sign.
func (c *ConstantClassifier) ExportLinear(features []Feature) (float64, []float64, bool) {
	bias := -1.0
	if c.Class == 1 {
		bias = 1
	}
	return bias, make([]float64, NewEncoder(features).Dims), true
}

// Name implements Named.
func (c *ConstantClassifier) Name() string { return "Majority" }
