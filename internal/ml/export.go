package ml

import "repro/internal/relational"

// Scorer is implemented by classifiers that expose a real-valued confidence
// for the positive class: Predict(row) == 1 exactly when Decision(row) >= 0.
// The SVM and logistic regression satisfy it directly; the serving layer and
// the one-vs-rest reduction use it wherever a margin is more useful than a
// hard label.
type Scorer interface {
	Decision(row []relational.Value) float64
}

// LinearExporter is the param-export surface of classifiers whose decision
// function is linear in the one-hot encoding of the categorical features:
//
//	Decision(x) = bias + Σ_j w[enc.Index(j, x_j)]
//
// with enc = NewEncoder(features) and Predict(x) = 1 iff Decision(x) >= 0.
// Naive Bayes (log-posterior difference), logistic regression (log-odds) and
// the linear-kernel SVM (support weights folded per (feature, value) pair)
// all export this form. It is the seam the factorized serving engine builds
// on: for a model linear in the features, each dimension table's contribution
// to the score is a per-dimension-row constant that can be precomputed once
// and reused across every request carrying that foreign key — the
// prediction-time analogue of avoiding the KFK join at training time.
//
// ExportLinear returns ok == false when the classifier cannot be expressed
// this way (non-linear kernels, unfitted models); features must be the
// feature list the model was trained with. The returned slice is a fresh
// copy owned by the caller.
type LinearExporter interface {
	ExportLinear(features []Feature) (bias float64, w []float64, ok bool)
}
