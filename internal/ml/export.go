package ml

import "repro/internal/relational"

// Scorer is implemented by classifiers that expose a real-valued confidence
// for the positive class: Predict(row) == 1 exactly when Decision(row) >= 0.
// The SVM and logistic regression satisfy it directly; the serving layer and
// the one-vs-rest reduction use it wherever a margin is more useful than a
// hard label.
type Scorer interface {
	Decision(row []relational.Value) float64
}

// LinearExporter is the param-export surface of classifiers whose decision
// function is linear in the one-hot encoding of the categorical features:
//
//	Decision(x) = bias + Σ_j w[enc.Index(j, x_j)]
//
// with enc = NewEncoder(features) and Predict(x) = 1 iff Decision(x) >= 0.
// Naive Bayes (log-posterior difference), logistic regression (log-odds) and
// the linear-kernel SVM (support weights folded per (feature, value) pair)
// all export this form. It is the seam the factorized serving engine builds
// on: for a model linear in the features, each dimension table's contribution
// to the score is a per-dimension-row constant that can be precomputed once
// and reused across every request carrying that foreign key — the
// prediction-time analogue of avoiding the KFK join at training time.
//
// ExportLinear returns ok == false when the classifier cannot be expressed
// this way (non-linear kernels, unfitted models); features must be the
// feature list the model was trained with. The returned slice is a fresh
// copy owned by the caller.
type LinearExporter interface {
	ExportLinear(features []Feature) (bias float64, w []float64, ok bool)
}

// HiddenLinearExporter is the param-export surface of classifiers whose
// *first layer* is linear in the one-hot encoding while the rest of the
// decision function is a dense map of that hidden vector (the MLP: sparse
// embedding-style input layer, then dense ReLU layers):
//
//	z[u] = bias[u] + Σ_j w[enc.Index(j, x_j)*h + u]   for u < h
//	class = ClassifyHidden(z)
//
// with enc = NewEncoder(features). It is the serving seam that lifts the
// factorized partial-score trick one layer into the network: because z is
// linear in the features, each dimension table's contribution to z is a
// per-dimension-row h-vector that can be precomputed once and added per
// request — one vector add per dimension table instead of one embedding-row
// add per dimension feature, and no join gather at all.
//
// ExportHiddenLinear returns ok == false when the classifier cannot be
// expressed this way (unfitted models, mismatched features); the returned
// slices are fresh copies owned by the caller, with w holding one h-wide row
// per one-hot dimension in encoder order.
//
// ClassifyHidden classifies n examples whose first-layer pre-activations are
// packed row-major in z (n rows of h); z is scratch and may be clobbered.
// The tail layers must fold each output element sequentially in the same
// order as the per-row Predict (the mat kernels' bit-identity contract), so
// for identical z the classes equal Predict's. Hoisting per-dimension
// partials reassociates the first-layer sum, so cross-path class agreement
// is pinned empirically by the serving equivalence tests, exactly as the
// linear engines pin factorized-vs-eager classes.
type HiddenLinearExporter interface {
	ExportHiddenLinear(features []Feature) (bias []float64, w []float64, h int, ok bool)
	ClassifyHidden(dst []int8, z []float64, n int)
}
