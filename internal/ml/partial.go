package ml

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// PartialSpec selects a middle ground between JoinAll and NoJoin: for each
// dimension table, keep only the named foreign features (all others are
// avoided). The paper's §5.2 observes that the FD axioms allow foreign
// features to be split into arbitrary subsets before being avoided —
// "a new trade-off space between fully avoiding a foreign table and fully
// using it" — and leaves exploring it as future work; this type makes the
// trade-off expressible.
//
// Keys are dimension table names; values are the *unqualified* feature
// names within that dimension (relational.Join qualifies them as
// "<dim>.<feature>"). A dimension absent from the map contributes no
// foreign features (as in NoJoin). Foreign keys are always kept, as in both
// JoinAll and NoJoin.
type PartialSpec map[string][]string

// PartialViewColumns selects the feature columns of a joined table under a
// partial spec. It returns an error if a named feature does not exist.
func PartialViewColumns(joined relational.Relation, spec PartialSpec) ([]int, error) {
	want := make(map[string]bool)
	for dim, feats := range spec {
		for _, f := range feats {
			want[dim+"."+f] = true
		}
	}
	var cols []int
	for i, c := range joined.Schema().Cols {
		switch c.Kind {
		case relational.KindForeignKey:
			if c.Open {
				continue
			}
			cols = append(cols, i)
		case relational.KindFeature:
			if _, isForeign := splitForeign(c.Name); isForeign {
				if want[c.Name] {
					cols = append(cols, i)
					delete(want, c.Name)
				}
				continue
			}
			cols = append(cols, i)
		}
	}
	if len(want) > 0 {
		missing := make([]string, 0, len(want))
		for k := range want {
			missing = append(missing, k)
		}
		return nil, fmt.Errorf("ml: partial spec names unknown foreign features: %s", strings.Join(missing, ", "))
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("ml: partial spec selects no feature columns")
	}
	return cols, nil
}

// splitForeign mirrors foreignDim for partial views.
func splitForeign(name string) (string, bool) {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i], true
	}
	return "", false
}

// PartialViewDataset builds the supervised dataset for a partial view.
func PartialViewDataset(joined relational.Relation, targetCol int, spec PartialSpec) (*Dataset, error) {
	cols, err := PartialViewColumns(joined, spec)
	if err != nil {
		return nil, err
	}
	return FromTable(joined, cols, targetCol)
}

// ForeignFeatureNames lists, per dimension, the unqualified foreign feature
// names available in a joined table — the menu a PartialSpec chooses from.
func ForeignFeatureNames(joined relational.Relation) map[string][]string {
	out := make(map[string][]string)
	for _, c := range joined.Schema().Cols {
		if c.Kind != relational.KindFeature {
			continue
		}
		if dim, ok := splitForeign(c.Name); ok {
			out[dim] = append(out[dim], c.Name[len(dim)+1:])
		}
	}
	return out
}
