package ml

import (
	"testing"

	"repro/internal/relational"
	"repro/internal/rng"
)

// batchBackings builds one logical dataset over every backing the batch
// accessors must handle: dense storage, relation views (row-major and
// columnar, with and without split-style select views), and composed
// Subset/SelectFeatures remaps. All are views of the same cells, so the
// batch reads must agree with the scalar accessors on each.
func batchBackings(t *testing.T) map[string]*Dataset {
	t.Helper()
	_, jv := viewStar(t, 400, 12, 9)
	cols := ViewColumns(jv, JoinAll, nil)
	full, err := FromRelation(jv, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	idx := make([]int, 150)
	for i := range idx {
		idx[i] = r.Intn(jv.NumRows())
	}
	sel, err := relational.NewSelectView(jv, idx)
	if err != nil {
		t.Fatal(err)
	}
	overSelect, err := FromRelation(sel, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	ct := relational.MaterializeColumnar(jv, "ct")
	overColumnar, err := FromRelation(ct, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	selCol, err := relational.NewSelectView(ct, idx)
	if err != nil {
		t.Fatal(err)
	}
	overSelectColumnar, err := FromRelation(selCol, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := relational.MaterializeSegmented(jv, "st", relational.SegmentOptions{SegmentSize: 96})
	if err != nil {
		t.Fatal(err)
	}
	overSegmented, err := FromRelation(st, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	selSeg, err := relational.NewSelectView(st, idx)
	if err != nil {
		t.Fatal(err)
	}
	overSelectSegmented, err := FromRelation(selSeg, cols, 0)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Dataset{
		"dense":                    full.Materialize(),
		"relation":                 full,
		"select-over-join":         overSelect,
		"columnar":                 overColumnar,
		"select-over-columnar":     overSelectColumnar,
		"segmented":                overSegmented,
		"select-over-segmented":    overSelectSegmented,
		"subset":                   full.Subset(idx),
		"subset-of-dense":          full.Materialize().Subset(idx),
		"feature-remap":            full.SelectFeatures([]int{2, 0}),
		"subset-plus-remap":        full.Subset(idx).SelectFeatures([]int{2, 0}),
		"dense-subset-plus-remap":  full.Materialize().Subset(idx).SelectFeatures([]int{2, 0}),
		"remap-of-subset-of-dense": full.Materialize().SelectFeatures([]int{1, 2}).Subset(idx),
	}
}

// TestScanFeatureMatchesAt pins ScanFeature (all offsets, short buffers) and
// GatherFeature (repeated, unordered rows) to At on every backing.
func TestScanFeatureMatchesAt(t *testing.T) {
	for name, ds := range batchBackings(t) {
		n := ds.NumExamples()
		buf := make([]relational.Value, 17)
		for j := 0; j < ds.NumFeatures(); j++ {
			for from := 0; from <= n+3; from += 17 {
				m := ds.ScanFeature(buf, j, from)
				want := n - from
				if want > len(buf) {
					want = len(buf)
				}
				if want < 0 {
					want = 0
				}
				if m != want {
					t.Fatalf("%s: ScanFeature(%d,%d) returned %d want %d", name, j, from, m, want)
				}
				for k := 0; k < m; k++ {
					if got, want := buf[k], ds.At(from+k, j); got != want {
						t.Fatalf("%s: ScanFeature(%d,%d)[%d] = %d, At = %d", name, j, from, k, got, want)
					}
				}
			}
		}
		if n < 3 {
			t.Fatalf("%s: backing too small", name)
		}
		rows := []int{n - 1, 0, n / 2, 0, n - 1, 1}
		out := make([]relational.Value, len(rows))
		for j := 0; j < ds.NumFeatures(); j++ {
			ds.GatherFeature(out, j, rows)
			for k, i := range rows {
				if got, want := out[k], ds.At(i, j); got != want {
					t.Fatalf("%s: GatherFeature(%d)[%d] = %d, At = %d", name, j, k, got, want)
				}
			}
		}
	}
}

// TestScanLabelsMatchesLabel pins ScanLabels to Label on every backing.
func TestScanLabelsMatchesLabel(t *testing.T) {
	for name, ds := range batchBackings(t) {
		n := ds.NumExamples()
		buf := make([]int8, 23)
		for from := 0; from <= n+3; from += 23 {
			m := ds.ScanLabels(buf, from)
			want := n - from
			if want > len(buf) {
				want = len(buf)
			}
			if want < 0 {
				want = 0
			}
			if m != want {
				t.Fatalf("%s: ScanLabels(%d) returned %d want %d", name, from, m, want)
			}
			for k := 0; k < m; k++ {
				if buf[k] != ds.Label(from+k) {
					t.Fatalf("%s: ScanLabels(%d)[%d] = %d, Label = %d", name, from, k, buf[k], ds.Label(from+k))
				}
			}
		}
	}
}
