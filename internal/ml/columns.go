package ml

import (
	"time"

	"repro/internal/relational"
)

// columnMorsel is the chunk size of one ScanFeature step on the learners'
// column-materialization path: large enough to amortize the per-morsel
// interface call into the storage engine, small enough that the value buffer
// (8 KiB) stays cache-resident. It matches the morsel the NB batch counter
// uses.
const columnMorsel = 2048

// columnSpans shards n examples across the pool: every (feature, span) pair
// becomes one independent task, so narrow feature sets still saturate the
// workers. Spans are whole-morsel multiples of 1/spans of the range.
func columnSpans(n, d int) int {
	spans := Parallelism(d * ((n + columnMorsel - 1) / columnMorsel))
	if spans < 1 {
		spans = 1
	}
	return spans
}

// segmentSized is implemented by storage engines partitioned into fixed-size
// segments (relational.SegmentedTable); ScanSpans uses it to align scan
// tasks to the partition.
type segmentSized interface{ SegmentSize() int }

// ScanSpans returns the span boundaries the (feature, span) fan-outs cut the
// example range into: cut points c with c[0] = 0 and c[len(c)-1] = n, span s
// covering examples [c[s], c[s+1]). When the dataset is an unremapped view
// over a segmented relation, cuts snap to segment boundaries so every scan
// task works one segment — one cache pin per task, no mid-task faults, and
// the segment-per-task parallelism the storage layer is partitioned for
// (segments are grouped when there are more of them than useful spans, and
// subdivided when the table is smaller than the worker pool wants).
// Row-remapped datasets (split views) keep the arithmetic spans: their scans
// are gathers, not sequential segment walks. Every consumer writes disjoint
// cells or reduces in span order, so the choice of boundaries affects
// performance only — results stay bit-identical.
func ScanSpans(d *Dataset) []int {
	n := d.NumExamples()
	target := columnSpans(n, d.NumFeatures())
	if d.v != nil && d.v.rel != nil && d.v.rows == nil {
		if ss, ok := d.v.rel.(segmentSized); ok {
			return segmentCuts(n, ss.SegmentSize(), target)
		}
	}
	cuts := make([]int, target+1)
	for s := range cuts {
		cuts[s] = n * s / target
	}
	return cuts
}

// segmentCuts builds segment-aligned cut points covering [0, n): whole
// segments grouped into target spans when segments abound, per-segment
// arithmetic subdivision when the worker pool wants more spans than the
// table has segments.
func segmentCuts(n, seg, target int) []int {
	numSegs := (n + seg - 1) / seg
	if numSegs == 0 {
		return []int{0, 0}
	}
	if numSegs >= target {
		cuts := make([]int, target+1)
		for s := 0; s < target; s++ {
			cuts[s] = seg * (numSegs * s / target)
		}
		cuts[target] = n
		return cuts
	}
	parts := (target + numSegs - 1) / numSegs
	cuts := make([]int, 0, numSegs*parts+1)
	cuts = append(cuts, 0)
	for g := 0; g < numSegs; g++ {
		lo := g * seg
		hi := min(lo+seg, n)
		for p := 1; p <= parts; p++ {
			cuts = append(cuts, lo+(hi-lo)*p/parts)
		}
	}
	return cuts
}

// forEachFeatureSpan is the shared fan-out skeleton of the one-pass
// materializers: (feature, span) tasks spread across ml.ParallelFor, each
// consuming its span of one feature in morsel-sized ScanFeature batches and
// handing every cell to write(example, feature, value). Spans come from
// ScanSpans, so over a segmented relation each task stays within one
// segment. Callers write disjoint destination cells per (example, feature),
// so the fan-out is deterministic regardless of scheduling.
func forEachFeatureSpan(d *Dataset, write func(i, j int, v relational.Value)) {
	k := d.NumFeatures()
	cuts := ScanSpans(d)
	spans := len(cuts) - 1
	ParallelFor(k*spans, func(task int) {
		j, s := task/spans, task%spans
		lo, hi := cuts[s], cuts[s+1]
		if lo == hi {
			return
		}
		buf := make([]relational.Value, min(columnMorsel, hi-lo))
		for from := lo; from < hi; {
			m := d.ScanFeature(buf[:min(len(buf), hi-from)], j, from)
			for i := 0; i < m; i++ {
				write(from+i, j, buf[i])
			}
			from += m
		}
	})
}

// ScanRowMajor materializes the dataset into one dense row-major block
// (example i's row is block[i*k : (i+1)*k]) plus the label vector,
// consuming each feature column-at-a-time through morsel-sized ScanFeature
// batches — the one-pass cache the learners that must read two rows at a
// time (SMO's kernel loops, the retained support set) amortize over their
// epochs. Compared with Dataset.Materialize it replaces n×k single-cell
// view accesses with k batched column scans pushed down into the storage
// engine, and it needs no transient column copy: every value scatters
// straight into its row slot.
//
// (feature, span) tasks fan out across ml.ParallelFor (forEachFeatureSpan);
// every task writes a disjoint set of block cells, so the result is
// deterministic regardless of scheduling and bit-identical to a sequential
// pass.
func ScanRowMajor(d *Dataset) (block []relational.Value, labels []int8) {
	t0 := time.Now()
	defer scanSpan.ObserveSince(t0)
	n := d.NumExamples()
	k := d.NumFeatures()
	block = make([]relational.Value, n*k)
	if d.v == nil {
		// Plain dense dataset: the row-major block already exists — copy it
		// instead of re-deriving it cell-by-cell through the scan fan-out.
		copy(block, d.X[:n*k])
	} else {
		forEachFeatureSpan(d, func(i, j int, v relational.Value) {
			block[i*k+j] = v
		})
	}
	labels = make([]int8, n)
	d.ScanLabels(labels, 0)
	return block, labels
}

// ExampleAccessor returns a closure yielding example i's active one-hot
// indices and label — the access seam the embedding-style learners run
// example-at-a-time epochs through (logreg SGD on both paths; the MLP's
// historical row path — its batched path consumes ScanActiveIndices'
// matrix directly as mini-batch GEMM operands). With
// rowAtATime false it materializes the active-index matrix once via
// ScanActiveIndices and serves slices of it; with rowAtATime true it
// gathers through a private scratch row per call (the historical path).
// Both forms yield identical values, so a learner switching between them
// trains bit-identically. The returned closure reuses internal buffers and
// must stay on one goroutine; the indices are valid until the next call.
func ExampleAccessor(d *Dataset, enc *Encoder, rowAtATime bool) func(i int) ([]int32, float64) {
	k := d.NumFeatures()
	if rowAtATime {
		rowBuf := make([]relational.Value, k)
		idx := make([]int32, k)
		return func(i int) ([]int32, float64) {
			row := d.RowInto(rowBuf, i)
			for j, v := range row {
				idx[j] = int32(enc.Index(j, v))
			}
			return idx, float64(d.Label(i))
		}
	}
	idxMat, labels := ScanActiveIndices(d, enc)
	return func(i int) ([]int32, float64) {
		return idxMat[i*k : (i+1)*k], float64(labels[i])
	}
}

// ScanActiveIndices materializes the one-hot active-index matrix of the
// dataset — idx[i*d+j] = enc.Index(j, At(i, j)) — plus the label vector,
// consuming each feature column-at-a-time through ScanFeature. The matrix is
// what the embedding-style learners (logistic regression, the MLP's sparse
// input layer) index their weight tables with; materializing it once per Fit
// replaces the per-example Row gather + Encoder.ActiveIndices call every
// epoch re-pays on the row-at-a-time path.
//
// Like ScanRowMajor it fans (feature, span) tasks across ml.ParallelFor
// with disjoint writes, so the result is deterministic and bit-identical to
// a sequential pass.
func ScanActiveIndices(d *Dataset, enc *Encoder) (idx []int32, labels []int8) {
	t0 := time.Now()
	defer scanSpan.ObserveSince(t0)
	n := d.NumExamples()
	k := d.NumFeatures()
	idx = make([]int32, n*k)
	if d.v == nil {
		// Plain dense dataset (batch-serving assembles one, and tests build
		// them directly): offset the row-major block in one tight pass
		// instead of paying the scan fan-out's per-cell indirection.
		for i := 0; i < n; i++ {
			row := d.X[i*k : (i+1)*k]
			out := idx[i*k : (i+1)*k]
			for j, v := range row {
				out[j] = int32(enc.Offsets[j]) + int32(v)
			}
		}
	} else {
		forEachFeatureSpan(d, func(i, j int, v relational.Value) {
			idx[i*k+j] = int32(enc.Offsets[j]) + int32(v)
		})
	}
	labels = make([]int8, n)
	d.ScanLabels(labels, 0)
	return idx, labels
}
