package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/relational"
	"repro/internal/rng"
)

// tinyDataset builds a 2-feature XOR-ish dataset for interface tests.
func tinyDataset() *Dataset {
	return &Dataset{
		Features: []Feature{
			{Name: "a", Cardinality: 2},
			{Name: "b", Cardinality: 3},
		},
		X: []relational.Value{
			0, 0,
			0, 1,
			1, 0,
			1, 2,
		},
		Y: []int8{0, 0, 1, 1},
	}
}

func TestDatasetAccessors(t *testing.T) {
	d := tinyDataset()
	if d.NumExamples() != 4 || d.NumFeatures() != 2 {
		t.Fatalf("shape (%d,%d)", d.NumExamples(), d.NumFeatures())
	}
	if got := d.Row(3); got[0] != 1 || got[1] != 2 {
		t.Fatalf("Row(3) = %v", got)
	}
	if d.Label(2) != 1 {
		t.Fatal("Label(2) wrong")
	}
	if d.PositiveFraction() != 0.5 {
		t.Fatalf("PositiveFraction = %v", d.PositiveFraction())
	}
	if d.MajorityClass() != 1 {
		t.Fatal("tie must resolve to class 1")
	}
}

func TestSubsetAndSelectFeatures(t *testing.T) {
	d := tinyDataset()
	s := d.Subset([]int{3, 0})
	if s.NumExamples() != 2 || s.Label(0) != 1 || s.Row(1)[1] != 0 {
		t.Fatalf("Subset wrong: %+v", s)
	}
	f := d.SelectFeatures([]int{1})
	if f.NumFeatures() != 1 || f.Features[0].Name != "b" {
		t.Fatalf("SelectFeatures wrong: %+v", f.Features)
	}
	if f.Row(3)[0] != 2 {
		t.Fatal("SelectFeatures did not reindex columns")
	}
	g := d.DropFeatures(map[int]bool{0: true})
	if g.NumFeatures() != 1 || g.Features[0].Name != "b" {
		t.Fatalf("DropFeatures wrong: %+v", g.Features)
	}
}

func TestEncoderOffsets(t *testing.T) {
	d := tinyDataset()
	e := NewEncoder(d.Features)
	if e.Dims != 5 {
		t.Fatalf("Dims = %d, want 5", e.Dims)
	}
	if e.Index(0, 1) != 1 || e.Index(1, 0) != 2 || e.Index(1, 2) != 4 {
		t.Fatal("Index mapping wrong")
	}
	dst := make([]int, 2)
	got := e.ActiveIndices([]relational.Value{1, 2}, dst)
	if got[0] != 1 || got[1] != 4 {
		t.Fatalf("ActiveIndices = %v", got)
	}
}

func TestMatchCountEqualsOneHotDot(t *testing.T) {
	// Property: MatchCount(a,b) equals the dot product of explicit one-hot
	// encodings, and 2*(d - MatchCount) equals squared euclidean distance.
	f := func(seed uint64, dRaw uint8) bool {
		d := int(dRaw%8) + 1
		r := rng.New(seed)
		feats := make([]Feature, d)
		for j := range feats {
			feats[j] = Feature{Name: "f", Cardinality: r.Intn(5) + 2}
		}
		e := NewEncoder(feats)
		a := make([]relational.Value, d)
		b := make([]relational.Value, d)
		for j := range a {
			a[j] = relational.Value(r.Intn(feats[j].Cardinality))
			b[j] = relational.Value(r.Intn(feats[j].Cardinality))
		}
		oneHot := func(row []relational.Value) []float64 {
			v := make([]float64, e.Dims)
			for j, val := range row {
				v[e.Index(j, val)] = 1
			}
			return v
		}
		va, vb := oneHot(a), oneHot(b)
		dot, sq := 0.0, 0.0
		for i := range va {
			dot += va[i] * vb[i]
			diff := va[i] - vb[i]
			sq += diff * diff
		}
		m := MatchCount(a, b)
		return float64(m) == dot && math.Abs(sq-2*float64(d-m)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyAndConfusion(t *testing.T) {
	d := tinyDataset()
	c := &ConstantClassifier{Class: 1}
	if got := Accuracy(c, d); got != 0.5 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Error(c, d); got != 0.5 {
		t.Fatalf("Error = %v", got)
	}
	m := Confuse(c, d)
	if m.TP != 2 || m.FP != 2 || m.TN != 0 || m.FN != 0 {
		t.Fatalf("confusion = %+v", m)
	}
	if m.Accuracy() != 0.5 {
		t.Fatalf("confusion accuracy = %v", m.Accuracy())
	}
}

func TestConstantClassifierFit(t *testing.T) {
	d := tinyDataset()
	d.Y = []int8{0, 0, 0, 1}
	c := &ConstantClassifier{}
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if c.Class != 0 {
		t.Fatal("majority fit wrong")
	}
	if c.Name() == "" {
		t.Fatal("Name empty")
	}
}

func TestGridEnumeration(t *testing.T) {
	g := NewGrid().Axis("a", 1, 2).Axis("b", 10, 20, 30)
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("grid size %d, want 6", len(pts))
	}
	// First point pairs the first value of every axis; order is
	// deterministic.
	if pts[0]["a"] != 1 || pts[0]["b"] != 10 {
		t.Fatalf("first point %v", pts[0])
	}
	if pts[5]["a"] != 2 || pts[5]["b"] != 30 {
		t.Fatalf("last point %v", pts[5])
	}
	if NewGrid().Points()[0].String() != "{}" {
		t.Fatal("empty grid must contain a single empty point")
	}
	if pts[0].String() != "{a=1 b=10}" {
		t.Fatalf("String = %q", pts[0].String())
	}
}

// thresholdClassifier predicts 1 iff feature 0 >= its threshold parameter;
// used to validate grid search picks the best validation point.
type thresholdClassifier struct{ thresh float64 }

func (c *thresholdClassifier) Fit(*Dataset) error { return nil }
func (c *thresholdClassifier) Predict(row []relational.Value) int8 {
	if float64(row[0]) >= c.thresh {
		return 1
	}
	return 0
}

func TestGridSearchPicksBestValidation(t *testing.T) {
	train := tinyDataset()
	val := tinyDataset()
	grid := NewGrid().Axis("thresh", 0, 1, 2)
	res, err := GridSearch(grid, func(p GridPoint) (Classifier, error) {
		return &thresholdClassifier{thresh: p["thresh"]}, nil
	}, train, val)
	if err != nil {
		t.Fatal(err)
	}
	// thresh=1 perfectly separates the tiny dataset (feature0==1 → class 1).
	if res.BestPoint["thresh"] != 1 {
		t.Fatalf("best point %v", res.BestPoint)
	}
	if res.BestValAcc != 1.0 {
		t.Fatalf("best val acc %v", res.BestValAcc)
	}
	if res.PointsTried != 3 {
		t.Fatalf("points tried %d", res.PointsTried)
	}
}

func TestGridSearchTieKeepsEarlier(t *testing.T) {
	train := tinyDataset()
	val := tinyDataset()
	grid := NewGrid().Axis("thresh", 5, 6) // both always predict 0: tie
	res, err := GridSearch(grid, func(p GridPoint) (Classifier, error) {
		return &thresholdClassifier{thresh: p["thresh"]}, nil
	}, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPoint["thresh"] != 5 {
		t.Fatalf("tie should keep first point, got %v", res.BestPoint)
	}
}

func TestViewColumns(t *testing.T) {
	// Build a tiny star and join it, then check each view's column set.
	keyDom := relational.NewDomain("RID", 2)
	dim := relational.NewTable("R", relational.MustSchema(
		relational.Column{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom},
		relational.Column{Name: "xr", Kind: relational.KindFeature, Domain: relational.NewDomain("xr", 2)},
	), 2)
	dim.MustAppendRow([]relational.Value{0, 0})
	dim.MustAppendRow([]relational.Value{1, 1})
	fact := relational.NewTable("S", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "xs", Kind: relational.KindFeature, Domain: relational.NewDomain("xs", 2)},
		relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R"},
	), 4)
	for i := 0; i < 4; i++ {
		fact.MustAppendRow([]relational.Value{relational.Value(i % 2), relational.Value(i % 2), relational.Value(i % 2)})
	}
	ss, err := relational.NewStarSchema(fact, dim)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := relational.Join(ss)
	if err != nil {
		t.Fatal(err)
	}

	name := func(cols []int) []string {
		var out []string
		for _, c := range cols {
			out = append(out, joined.Schema().Cols[c].Name)
		}
		return out
	}
	checkNames := func(got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %v want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("got %v want %v", got, want)
			}
		}
	}
	checkNames(name(ViewColumns(joined, JoinAll, nil)), []string{"xs", "FK", "R.xr"})
	checkNames(name(ViewColumns(joined, NoJoin, nil)), []string{"xs", "FK"})
	checkNames(name(ViewColumns(joined, NoFK, nil)), []string{"xs", "R.xr"})
	checkNames(name(ViewColumns(joined, JoinAll, map[string]bool{"R": true})), []string{"xs", "FK"})

	ds, err := ViewDataset(joined, ss.TargetCol, NoJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 2 || !ds.Features[1].IsFK {
		t.Fatalf("NoJoin dataset features %+v", ds.Features)
	}
}

func TestViewOpenFKExcluded(t *testing.T) {
	keyDom := relational.NewDomain("RID", 2)
	dim := relational.NewTable("R", relational.MustSchema(
		relational.Column{Name: "RID", Kind: relational.KindPrimaryKey, Domain: keyDom},
		relational.Column{Name: "xr", Kind: relational.KindFeature, Domain: relational.NewDomain("xr", 2)},
	), 2)
	dim.MustAppendRow([]relational.Value{0, 1})
	dim.MustAppendRow([]relational.Value{1, 0})
	fact := relational.NewTable("S", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: relational.NewDomain("Y", 2)},
		relational.Column{Name: "FK", Kind: relational.KindForeignKey, Domain: keyDom, Refs: "R", Open: true},
	), 2)
	fact.MustAppendRow([]relational.Value{0, 0})
	fact.MustAppendRow([]relational.Value{1, 1})
	ss, err := relational.NewStarSchema(fact, dim)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := relational.Join(ss)
	if err != nil {
		t.Fatal(err)
	}
	cols := ViewColumns(joined, JoinAll, nil)
	for _, c := range cols {
		if joined.Schema().Cols[c].Kind == relational.KindForeignKey {
			t.Fatal("open FK must never be a feature")
		}
	}
	// NoJoin on an open-FK-only fact table selects nothing → error.
	if _, err := ViewDataset(joined, ss.TargetCol, NoJoin, nil); err == nil {
		t.Fatal("expected empty-view error")
	}
}

func TestFromTableValidation(t *testing.T) {
	d3 := relational.NewDomain("Y3", 3)
	tab := relational.NewTable("t", relational.MustSchema(
		relational.Column{Name: "Y", Kind: relational.KindTarget, Domain: d3},
		relational.Column{Name: "x", Kind: relational.KindFeature, Domain: relational.NewDomain("x", 2)},
	), 1)
	tab.MustAppendRow([]relational.Value{2, 1})
	if _, err := FromTable(tab, []int{1}, 0); err == nil {
		t.Fatal("non-binary target must be rejected")
	}
	if _, err := FromTable(tab, []int{0}, 0); err == nil {
		t.Fatal("target as feature must be rejected")
	}
}

func TestViewStringer(t *testing.T) {
	if JoinAll.String() != "JoinAll" || NoJoin.String() != "NoJoin" || NoFK.String() != "NoFK" {
		t.Fatal("View names wrong")
	}
	if View(9).String() == "" {
		t.Fatal("unknown view must still render")
	}
}
