package ml

import (
	"fmt"

	"repro/internal/rng"
)

// KFold partitions example indices into k folds after a seeded shuffle.
// Fold sizes differ by at most one. rpart tunes cp by 10-fold
// cross-validation internally; this helper lets callers reproduce that
// tuning style when no held-out validation split exists (the paper's
// datasets are pre-split, so GridSearch is the default path, but library
// adopters with a single table need CV).
func KFold(n, k int, r *rng.RNG) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: need at least 2 folds, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("ml: %d examples cannot fill %d folds", n, k)
	}
	perm := r.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds, nil
}

// CrossValidate estimates the mean validation accuracy of a classifier
// configuration over k folds: for each fold, train the factory's classifier
// on the remaining folds and evaluate on the held-out one.
//
// Folds run on a worker pool (see MaxParallelism). Classifiers are
// constructed sequentially — the factory need not be safe for concurrent
// calls — and per-fold accuracies are summed in fold order, so the result is
// bit-identical to a sequential run. The per-fold train/holdout Subsets are
// zero-copy views, which is what makes the fan-out cheap.
func CrossValidate(factory func() (Classifier, error), ds *Dataset, k int, r *rng.RNG) (float64, error) {
	folds, err := KFold(ds.NumExamples(), k, r)
	if err != nil {
		return 0, err
	}
	models := make([]Classifier, len(folds))
	for fi := range folds {
		c, err := factory()
		if err != nil {
			return 0, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		models[fi] = c
	}
	accs := make([]float64, len(folds))
	errs := make([]error, len(folds))
	parallelFor(len(folds), func(fi int) {
		var trainIdx []int
		for fj, fold := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, fold...)
			}
		}
		if err := models[fi].Fit(ds.Subset(trainIdx)); err != nil {
			errs[fi] = fmt.Errorf("ml: fold %d: %w", fi, err)
			return
		}
		accs[fi] = Accuracy(models[fi], ds.Subset(folds[fi]))
	})
	total := 0.0
	for fi := range folds {
		if errs[fi] != nil {
			return 0, errs[fi]
		}
		total += accs[fi]
	}
	return total / float64(k), nil
}

// GridSearchCV tunes a grid by k-fold cross-validation on a single dataset
// and then refits the winning configuration on all of it. Ties keep the
// earlier grid point, as in GridSearch.
func GridSearchCV(grid *Grid, factory Factory, ds *Dataset, k int, seed uint64) (TuneResult, error) {
	points := grid.Points()
	if len(points) == 0 {
		return TuneResult{}, fmt.Errorf("ml: empty grid")
	}
	res := TuneResult{BestValAcc: -1}
	for _, p := range points {
		// Each grid point sees identical folds: same seed.
		acc, err := CrossValidate(func() (Classifier, error) {
			return factory(p)
		}, ds, k, rng.New(seed))
		if err != nil {
			return TuneResult{}, fmt.Errorf("ml: grid point %v: %w", p, err)
		}
		res.PointsTried++
		if acc > res.BestValAcc {
			res.BestValAcc = acc
			res.BestPoint = p
		}
	}
	best, err := factory(res.BestPoint)
	if err != nil {
		return TuneResult{}, err
	}
	if err := best.Fit(ds); err != nil {
		return TuneResult{}, err
	}
	res.Best = best
	return res, nil
}
